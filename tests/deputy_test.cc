// Deputy behaviour tests (§2.1): every check kind both passes on legal code
// and traps on violations; static discharge removes provable checks; trusted
// code is exempt; annotations are untrusted (a wrong annotation is caught).
#include <gtest/gtest.h>

#include "src/driver/compiler.h"

namespace ivy {
namespace {

VmResult RunSrc(const std::string& src, ToolConfig cfg = ToolConfig{}) {
  auto comp = CompileOne(src, cfg);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  if (!comp->ok) {
    return VmResult{};
  }
  auto vm = MakeVm(*comp);
  return vm->Call("main");
}

TEST(Deputy, CountAnnotationInBoundsPasses) {
  const char* src = R"(
    int sum(int* count(n) a, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) { s += a[i]; }
      return s;
    }
    int main(void) {
      int v[4];
      v[0] = 1; v[1] = 2; v[2] = 3; v[3] = 4;
      return sum(v, 4);
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 10);
}

TEST(Deputy, CountAnnotationOverrunTraps) {
  const char* src = R"(
    int get(int* count(n) a, int n, int i) { return a[i]; }
    int main(void) {
      int v[4];
      return get(v, 4, 7);
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kBounds);
}

TEST(Deputy, NegativeIndexTraps) {
  const char* src = R"(
    int get(int* count(n) a, int n, int i) { return a[i]; }
    int main(void) { int v[4]; return get(v, 4, -1); }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kBounds);
}

TEST(Deputy, WrongAnnotationIsCaughtNotTrusted) {
  // "These annotations are not trusted by the compiler": claiming 8 elements
  // for a 4-element array is caught at the call site.
  const char* src = R"(
    int get(int* count(8) a) { return a[6]; }
    int main(void) { int v[4]; return get(v); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  // Static: capacity 4 < required 8 is a compile-time error.
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("requires"));
}

TEST(Deputy, FixedArrayBoundsTrap) {
  const char* src = R"(
    int main(void) {
      int a[4];
      int i = 2;
      a[i * 3] = 1;  // index 6
      return 0;
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kBounds);
}

TEST(Deputy, OptPointerNullDerefTraps) {
  const char* src = R"(
    struct node { int v; };
    int main(void) {
      struct node* opt p = null;
      return p->v;
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kNullDeref);
}

TEST(Deputy, GuardedOptPointerPasses) {
  const char* src = R"(
    struct node { int v; };
    int read_it(struct node* opt p) {
      if (!p) { return -1; }
      return p->v;  // guarded: check discharged
    }
    int main(void) {
      struct node n;
      n.v = 9;
      return read_it(&n);
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 9);
}

TEST(Deputy, NarrowingOptToNonOptTraps) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt maybe(void) { return null; }
    int main(void) {
      struct node* p = maybe();  // narrowing check fires
      return 0;
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kNullDeref);
}

TEST(Deputy, UnionWhenGuardPassesAndTraps) {
  const char* src = R"(
    struct msg {
      int tag;
      union {
        int num when(tag == 1);
        char letter when(tag == 2);
      } u;
    };
    int main(void) {
      struct msg m;
      m.tag = 1;
      m.u.num = 42;       // ok: tag == 1
      m.tag = 2;
      return m.u.num;     // trap: tag != 1
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kUnionTag);
}

TEST(Deputy, UnguardedUnionAccessRequiresTrusted) {
  const char* src = R"(
    union raw { int i; char c; };
    union raw g;
    int main(void) { g.i = 3; return g.i; }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("trusted"));
}

TEST(Deputy, TrustedBlockAllowsUnguardedUnion) {
  const char* src = R"(
    union raw { int i; char c; };
    union raw g;
    int main(void) {
      trusted { g.i = 65; return g.c; }
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 65);
}

TEST(Deputy, NulltermIterationPassesAndOverrunTraps) {
  const char* src = R"(
    int len(char* nullterm s) {
      int n = 0;
      while (*s) { s = s + 1; n = n + 1; }
      return n;
    }
    int main(void) {
      char* nullterm msg = "hello";
      int n = len(msg);
      // Now step past the terminator deliberately:
      char* nullterm p = "";
      p = p + 1;  // *p == 0: advancing traps
      return n;
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kNtOverrun);
}

TEST(Deputy, BoundAnnotationChecked) {
  const char* src = R"(
    int peek(int* bound(lo, hi) p, int* lo, int* hi) { return *p; }
    int main(void) {
      int arr[8];
      arr[7] = 3;
      // p points at arr[7], bounds [arr, arr+8): legal.
      return peek(arr + 7, arr, arr + 8);
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 3);
}

TEST(Deputy, DischargeCountsLoopChecks) {
  const char* src = R"(
    int main(void) {
      int a[16];
      int s = 0;
      for (int i = 0; i < 16; i++) { a[i] = i; }
      for (int i = 0; i < 16; i++) { s += a[i]; }
      return s;
    }
  )";
  ToolConfig with;
  auto cw = CompileOne(src, with);
  ASSERT_TRUE(cw->ok);
  EXPECT_EQ(cw->check_stats.bounds_emitted, 0);
  EXPECT_GE(cw->check_stats.bounds_discharged, 2);

  ToolConfig without;
  without.discharge = false;
  auto cwo = CompileOne(src, without);
  ASSERT_TRUE(cwo->ok);
  EXPECT_GE(cwo->check_stats.bounds_emitted, 2);
}

TEST(Deputy, DischargeRespectsModifiedInductionVariable) {
  // i is modified in the body: the range fact must NOT hold.
  const char* src = R"(
    int main(void) {
      int a[8];
      for (int i = 0; i < 8; i++) {
        a[i] = 0;
        i = i + 2;  // extra modification invalidates the fact
      }
      return 0;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  EXPECT_GE(comp->check_stats.bounds_emitted, 1);
}

TEST(Deputy, CallSiteCountCheckSameSymbolDischarged) {
  const char* src = R"(
    int takes(char* count(n) p, int n) { return n; }
    int caller(char* count(len) buf, int len) { return takes(buf, len); }
    int main(void) { char b[8]; return caller(b, 8); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  EXPECT_GE(comp->check_stats.callsite_discharged, 1);
  auto vm = MakeVm(*comp);
  EXPECT_TRUE(vm->Call("main").ok);
}

TEST(Deputy, CallSiteCapacityViolationTraps) {
  const char* src = R"(
    void fill(char* count(n) p, int n) { for (int i = 0; i < n; i++) { p[i] = 0; } }
    int main(void) {
      char small[4];
      int want = 16;
      fill(small, want);  // capacity 4 < required 16: runtime check
      return 0;
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kBounds);
}

TEST(Deputy, FieldScopedCountChecked) {
  const char* src = R"(
    struct buf { int cap; char* count(cap) data; };
    int main(void) {
      struct buf b;
      char storage[8];
      b.cap = 8;
      b.data = storage;
      b.data[5] = 7;    // in bounds
      int i = 11;
      return b.data[i]; // out of bounds vs b.cap
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kBounds);
}

TEST(Deputy, TrustedPointerUncheckedEvenWhenWild) {
  const char* src = R"(
    int main(void) {
      int x = 5;
      int* trusted p = &x;
      p = p + 100;  // wild arithmetic, no Deputy check (VM memfault guards)
      p = p - 100;
      return *p;
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 5);
}

TEST(Deputy, IntToPointerForgeryRejectedOutsideTrusted) {
  auto comp = CompileOne("int main(void) { int* p = (int*)1234; return 0; }", ToolConfig{});
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("trusted"));
}

TEST(Deputy, CrossRecordCastRejected) {
  const char* src = R"(
    struct a { int x; };
    struct b { int y; int z; };
    int main(void) {
      struct a v;
      struct b* p = (struct b*)&v;
      return 0;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  EXPECT_FALSE(comp->ok);
}

TEST(Deputy, ErasedProgramSkipsAllChecks) {
  // With Deputy off, the overrun silently corrupts (caught only by the VM's
  // own memory fault if it leaves mapped memory) — the paper's motivation.
  const char* src = R"(
    int get(int* count(n) a, int n, int i) { return a[i]; }
    int main(void) {
      int v[4];
      int w[4];
      w[0] = 99;
      return get(v, 4, 4);  // reads into w's storage, no trap
    }
  )";
  ToolConfig off;
  off.deputy = false;
  VmResult r = RunSrc(src, off);
  EXPECT_TRUE(r.ok) << r.trap_msg;  // silent out-of-bounds read
}

}  // namespace
}  // namespace ivy
