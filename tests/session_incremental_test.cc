// AnalysisSession: the corpus-level determinism and incremental-exactness
// contracts, property-tested over the seeded synthetic corpus generator.
//
//   1. Batched == independent: a ForEachModule run over N modules produces,
//      per module, findings byte-identical to N independent single-module
//      CompileAndRun invocations; the merged corpus view is independent of
//      registration order.
//   2. Incremental == cold: after any sequence of function edits, a warm
//      Run() (which re-analyzes only dirty modules and re-solves only the
//      dirty region inside them) matches a cold session over the same
//      sources byte for byte — while the solver counters prove the dirty
//      region actually stayed small.
//   3. Provenance: the exported annotation repository stamps findings with
//      their module, and RetractModule removes exactly one module's records.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/support/rng.h"
#include "src/tool/pipeline.h"
#include "src/tool/session.h"
#include "tests/synth_corpus.h"

namespace ivy {
namespace {

std::string Dump(const std::vector<Finding>& findings) {
  Json arr = Json::MakeArray();
  for (const Finding& f : findings) {
    arr.Append(f.ToJson());
  }
  return arr.Dump();
}

ModuleSources MakeModule(const std::string& name, uint64_t seed, int functions) {
  SynthCorpusOptions opt;
  opt.functions = functions;
  opt.seed = seed;
  // A function-pointer table chain gives the points-to solve a real
  // workload, so the incremental counters measure something meaningful.
  opt.hook_tables = 4;
  return ModuleSources{name, {SourceFile{name + ".mc", GenerateSynthCorpus(opt)}}};
}

std::vector<ModuleSources> MakeCorpus(int modules, uint64_t seed_base, int functions) {
  std::vector<ModuleSources> out;
  for (int m = 0; m < modules; ++m) {
    char name[16];
    std::snprintf(name, sizeof(name), "mod_%02d", m);
    out.push_back(MakeModule(name, seed_base + static_cast<uint64_t>(m), functions));
  }
  return out;
}

PipelineBuilder TestPipeline() {
  PipelineBuilder b;
  b.Tool("blockstop").Tool("stackcheck").Tool("errcheck").Tool("locksafe");
  return b;
}

// Valid replacement definitions for fn_<i> of a `total`-function corpus.
std::string BlockingLeaf(int i) {
  return "void " + SynthFuncName(i) + "(int n) {\n  int pad[16]; pad[0] = n;\n  msleep(n);\n}\n";
}
std::string QuietLeaf(int i) {
  return "void " + SynthFuncName(i) + "(int n) {\n  int pad[4]; pad[0] = n;\n  udelay(1);\n}\n";
}
std::string SpinCaller(int i, int total) {
  std::string callee = SynthFuncName(i + 1 < total ? i + 1 : 0);
  return "void " + SynthFuncName(i) + "(int n) {\n  int pad[8]; pad[0] = n;\n  spin_lock(&lk_0);\n  if (n > 0) { " +
         callee + "(n - 1); }\n  spin_unlock(&lk_0);\n}\n";
}
std::string VariantFor(uint64_t pick, int i, int total) {
  switch (pick % 3) {
    case 0:
      return BlockingLeaf(i);
    case 1:
      return QuietLeaf(i);
    default:
      return SpinCaller(i, total);
  }
}

TEST(AnalysisSession, BatchedMatchesIndependentRuns) {
  const int kModules = 10;
  const int kFunctions = 48;
  std::vector<ModuleSources> corpus = MakeCorpus(kModules, 100, kFunctions);

  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  SessionResult batched = session.Run();
  EXPECT_EQ(batched.modules_analyzed, kModules);
  EXPECT_EQ(batched.compile_failures, 0);

  Pipeline independent = TestPipeline().Build();
  for (const ModuleSources& m : corpus) {
    PipelineRun run = independent.CompileAndRun(m.files);
    ASSERT_TRUE(run.comp->ok) << m.name << ": " << run.comp->Errors();
    const ModuleRunResult* mr = batched.ModuleFor(m.name);
    ASSERT_NE(mr, nullptr) << m.name;
    EXPECT_FALSE(run.result.findings.empty()) << m.name;
    EXPECT_EQ(Dump(mr->result.findings), Dump(run.result.findings)) << m.name;
  }

  // The prelude was lexed exactly once for the whole corpus.
  EXPECT_EQ(session.prelude_reuses(), kModules - 1);
}

TEST(AnalysisSession, MergedFindingsIndependentOfRegistrationOrder) {
  std::vector<ModuleSources> corpus = MakeCorpus(6, 300, 48);

  AnalysisSession forward = TestPipeline().ForEachModule(corpus).BuildSession();
  std::vector<ModuleSources> reversed(corpus.rbegin(), corpus.rend());
  AnalysisSession backward = TestPipeline().ForEachModule(reversed).BuildSession();

  EXPECT_EQ(Dump(forward.Run().findings), Dump(backward.Run().findings));
}

TEST(AnalysisSession, ShardedSessionByteIdentical) {
  std::vector<ModuleSources> corpus = MakeCorpus(4, 500, 64);
  AnalysisSession serial = TestPipeline().ForEachModule(corpus).BuildSession();
  SessionResult serial_result = serial.Run();

  PipelineBuilder sharded_builder = TestPipeline();
  sharded_builder.ShardFunctions(3).ForEachModule(corpus);
  AnalysisSession sharded = sharded_builder.BuildSession();
  SessionResult sharded_result = sharded.Run();

  EXPECT_FALSE(serial_result.findings.empty());
  EXPECT_EQ(Dump(sharded_result.findings), Dump(serial_result.findings));
}

TEST(AnalysisSession, IncrementalSingleEditMatchesColdAndStaysLocal) {
  const int kModules = 10;
  const int kFunctions = 64;
  std::vector<ModuleSources> corpus = MakeCorpus(kModules, 700, kFunctions);
  const std::string edited = "mod_03";

  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  session.Run();
  ModuleStats cold_stats = session.StatsFor(edited);
  ASSERT_TRUE(cold_stats.valid);
  ASSERT_TRUE(cold_stats.cold);
  ASSERT_GT(cold_stats.pointsto_propagations, 0);
  ASSERT_GT(cold_stats.mayblock_evals, 0);

  // Edit one low-index function: its call-graph ancestors (the dirty
  // region) are a small prefix of the chain.
  ASSERT_TRUE(session.ReplaceFunction(edited, SynthFuncName(5), BlockingLeaf(5)));
  SessionResult warm = session.Run();
  EXPECT_EQ(warm.modules_analyzed, 1);
  EXPECT_EQ(warm.modules_reused, kModules - 1);

  // Byte-for-byte identical to a cold session over the edited sources.
  AnalysisSession cold = TestPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(cold.ReplaceFunction(edited, SynthFuncName(5), BlockingLeaf(5)));
  SessionResult cold_result = cold.Run();
  EXPECT_FALSE(cold_result.findings.empty());
  EXPECT_EQ(Dump(warm.findings), Dump(cold_result.findings));

  // The solver counters prove only the dirty region was re-solved: the warm
  // points-to re-derived a fraction of the facts (the rest were seeded),
  // and the may-block fixpoint evaluated only the affected ancestors.
  ModuleStats warm_stats = session.StatsFor(edited);
  ASSERT_TRUE(warm_stats.valid);
  EXPECT_FALSE(warm_stats.cold);
  EXPECT_EQ(warm_stats.dirty_functions, 1);
  EXPECT_GT(warm_stats.pointsto_seeded_facts, 0);
  EXPECT_LT(warm_stats.pointsto_propagations, cold_stats.pointsto_propagations / 2);
  EXPECT_LT(warm_stats.mayblock_evals, cold_stats.mayblock_evals / 2);
}

TEST(AnalysisSession, InvalidateWithoutEditReanalyzesWarmAndIdentical) {
  std::vector<ModuleSources> corpus = MakeCorpus(4, 900, 48);
  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  std::string golden = Dump(session.Run().findings);
  ModuleStats cold_stats = session.StatsFor("mod_01");

  session.Invalidate("mod_01");
  SessionResult warm = session.Run();
  EXPECT_EQ(warm.modules_analyzed, 1);
  EXPECT_EQ(Dump(warm.findings), golden);

  ModuleStats warm_stats = session.StatsFor("mod_01");
  EXPECT_FALSE(warm_stats.cold);
  EXPECT_EQ(warm_stats.dirty_functions, 0);  // nothing actually changed
  EXPECT_LT(warm_stats.pointsto_propagations, cold_stats.pointsto_propagations);
}

TEST(AnalysisSession, RandomizedEditSequencesMatchColdRuns) {
  // The acceptance property: after ANY edit sequence, incremental findings
  // are byte-identical to a cold full run over the same sources. Sharded
  // pipeline, so the may-block seed and the shared pool are exercised too.
  const int kModules = 6;
  const int kFunctions = 48;
  for (uint64_t seed : {11u, 23u}) {
    std::vector<ModuleSources> corpus = MakeCorpus(kModules, 1000 + seed, kFunctions);
    PipelineBuilder warm_builder = TestPipeline();
    warm_builder.ShardFunctions(2).ForEachModule(corpus);
    AnalysisSession session = warm_builder.BuildSession();
    session.Run();

    Rng rng(seed);
    std::vector<std::pair<std::string, std::pair<int, std::string>>> edits;
    for (int step = 0; step < 4; ++step) {
      int m = static_cast<int>(rng.Below(kModules));
      char name[16];
      std::snprintf(name, sizeof(name), "mod_%02d", m);
      int fn = 1 + static_cast<int>(rng.Below(kFunctions - 2));
      std::string def = VariantFor(rng.Below(3), fn, kFunctions);
      ASSERT_TRUE(session.ReplaceFunction(name, SynthFuncName(fn), def))
          << name << " " << SynthFuncName(fn);
      edits.push_back({name, {fn, def}});

      SessionResult warm = session.Run();
      EXPECT_EQ(warm.compile_failures, 0) << "seed " << seed << " step " << step;
      EXPECT_EQ(warm.modules_analyzed, 1);

      // Cold replay: a fresh session over the original corpus with the same
      // edit sequence applied, run once from scratch.
      PipelineBuilder cold_builder = TestPipeline();
      cold_builder.ShardFunctions(2).ForEachModule(corpus);
      AnalysisSession cold = cold_builder.BuildSession();
      for (const auto& [mod, edit] : edits) {
        ASSERT_TRUE(cold.ReplaceFunction(mod, SynthFuncName(edit.first), edit.second));
      }
      SessionResult cold_result = cold.Run();
      EXPECT_EQ(Dump(warm.findings), Dump(cold_result.findings))
          << "seed " << seed << " step " << step;

      // Incremental work never exceeds cold work.
      ModuleStats warm_stats = session.StatsFor(name);
      ModuleStats cold_stats = cold.StatsFor(name);
      EXPECT_LE(warm_stats.pointsto_propagations, cold_stats.pointsto_propagations)
          << "seed " << seed << " step " << step;
      EXPECT_LE(warm_stats.mayblock_evals, cold_stats.mayblock_evals);
    }
  }
}

TEST(AnalysisSession, CompileFailureIsSurfacedAndRecovers) {
  std::vector<ModuleSources> corpus = MakeCorpus(3, 1500, 48);
  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  std::string golden = Dump(session.Run().findings);

  ASSERT_TRUE(session.ReplaceFunction(
      "mod_01", SynthFuncName(3),
      "void " + SynthFuncName(3) + "(int n) {\n  this is not mini c;\n}\n"));
  SessionResult broken = session.Run();
  EXPECT_EQ(broken.compile_failures, 1);
  const ModuleRunResult* bad = broken.ModuleFor("mod_01");
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->ok);
  EXPECT_FALSE(bad->compile_errors.empty());
  bool surfaced = false;
  for (const Finding& f : broken.findings) {
    surfaced |= f.tool == "session" && f.module == "mod_01" &&
                f.severity == FindingSeverity::kError;
  }
  EXPECT_TRUE(surfaced);
  // The other modules' cached results survived.
  EXPECT_EQ(broken.modules_reused, 2);

  // Fixing the function restores the original corpus output exactly (the
  // failed build dropped the snapshots, so this re-analysis is cold).
  ASSERT_TRUE(session.ReplaceFunction("mod_01", SynthFuncName(3), QuietLeaf(3)));
  SessionResult fixed = session.Run();
  EXPECT_EQ(fixed.compile_failures, 0);

  AnalysisSession cold = TestPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(cold.ReplaceFunction("mod_01", SynthFuncName(3), QuietLeaf(3)));
  EXPECT_EQ(Dump(fixed.findings), Dump(cold.Run().findings));
  EXPECT_NE(Dump(fixed.findings), golden);  // the edit is visible
}

TEST(AnalysisSession, ReplaceFunctionUnknownTargets) {
  std::vector<ModuleSources> corpus = MakeCorpus(2, 1600, 48);
  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  EXPECT_FALSE(session.ReplaceFunction("no_such_module", SynthFuncName(1), QuietLeaf(1)));
  EXPECT_FALSE(session.ReplaceFunction("mod_00", "no_such_function",
                                       "void no_such_function(int n) { pad[0] = n; }"));
  // Builtin *declarations* (e.g. msleep in the prelude) are not definitions
  // in the module sources either.
  EXPECT_FALSE(session.ReplaceFunction("mod_00", "msleep", "void msleep(int n) {}"));
}

TEST(AnalysisSession, ReplaceFunctionBodyWithBraceLiterals) {
  // Regression: the splice is driven by the lexer's token stream, so braces
  // inside string/char literals and comments can never skew the definition
  // span (the old textual scanner had to re-implement literal skipping —
  // and miscounting there splices into the wrong function).
  const char* text =
      "void alpha(int n) {\n"
      "  // stray closer } and opener { in a comment\n"
      "  /* \" unbalanced quote and } */\n"
      "  char c;\n"
      "  c = '}';\n"
      "  if (n > '{') { alpha(n - 1); }\n"
      "}\n"
      "void beta(int n) {\n"
      "  char* nullterm s;\n"
      "  s = \"}}}{{{\";\n"
      "  msleep(n);\n"
      "}\n"
      "void gamma(int n) {\n"
      "  if (n > 0) { beta(n - 1); }\n"
      "}\n";
  std::vector<ModuleSources> corpus{{"m", {SourceFile{"m.mc", text}}}};
  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  SessionResult first = session.Run();
  ASSERT_EQ(first.compile_failures, 0)
      << first.ModuleFor("m")->compile_errors;
  auto mayblock_count = [](const SessionResult& r) {
    const ToolResult* bs = r.ModuleFor("m")->result.ResultFor("blockstop");
    return bs == nullptr ? int64_t{-1} : bs->Metric("mayblock_funcs");
  };
  // beta (msleep) and gamma (calls beta) may block.
  EXPECT_EQ(mayblock_count(first), 2);

  // Replace gamma — its definition sits AFTER the brace-laden literals, so
  // a miscounting scanner would splice into beta's string instead.
  ASSERT_TRUE(session.ReplaceFunction(
      "m", "gamma", "void gamma(int n) {\n  udelay(n);\n}\n"));
  SessionResult second = session.Run();
  ASSERT_EQ(second.compile_failures, 0)
      << second.ModuleFor("m")->compile_errors;
  EXPECT_EQ(mayblock_count(second), 1);  // only beta still blocks

  // And replace beta itself, whose own body holds the "}" literals.
  ASSERT_TRUE(session.ReplaceFunction(
      "m", "beta", "void beta(int n) {\n  udelay(n);\n}\n"));
  SessionResult third = session.Run();
  ASSERT_EQ(third.compile_failures, 0) << third.ModuleFor("m")->compile_errors;
  EXPECT_EQ(mayblock_count(third), 0);
}

TEST(AnalysisSession, AnnoDbCarriesProvenanceAndRetracts) {
  std::vector<ModuleSources> corpus = MakeCorpus(3, 1700, 48);
  AnalysisSession session = TestPipeline().ForEachModule(corpus).BuildSession();
  session.Run();

  AnnoDb db = session.ExportAnnoDb();
  ASSERT_FALSE(db.findings().empty());
  std::set<std::string> modules_seen;
  for (const Finding& f : db.findings()) {
    modules_seen.insert(f.module);
  }
  EXPECT_EQ(modules_seen, (std::set<std::string>{"mod_00", "mod_01", "mod_02"}));

  // Retraction removes exactly one module's records — findings, stamped
  // fact entries, and summary rows alike — and survives a JSON round trip,
  // so a repository consumer can do the same.
  Json j = db.ToJson();
  AnnoDb loaded = AnnoDb::FromJson(j);
  size_t total = loaded.findings().size();
  size_t mod1 = 0;
  for (const Finding& f : loaded.findings()) {
    mod1 += f.module == "mod_01" ? 1 : 0;
  }
  size_t mod1_facts = 0;
  for (const auto& [name, facts] : loaded.funcs()) {
    mod1_facts += facts.module == "mod_01" ? 1 : 0;
  }
  for (const auto& [name, facts] : loaded.records()) {
    mod1_facts += facts.module == "mod_01" ? 1 : 0;
  }
  for (const auto& [key, row] : loaded.summaries()) {
    mod1_facts += key.first == "mod_01" ? 1 : 0;
  }
  ASSERT_GT(mod1, 0u);
  ASSERT_GT(mod1_facts, 0u);
  EXPECT_EQ(loaded.RetractModule("mod_01"), static_cast<int>(mod1 + mod1_facts));
  EXPECT_EQ(loaded.findings().size(), total - mod1);
  for (const Finding& f : loaded.findings()) {
    EXPECT_NE(f.module, "mod_01");
  }
  for (const auto& [name, facts] : loaded.funcs()) {
    EXPECT_NE(facts.module, "mod_01") << name;
  }
  for (const auto& [key, row] : loaded.summaries()) {
    EXPECT_NE(key.first, "mod_01");
  }

  // After an edit, the re-exported repository reflects exactly the new
  // corpus state (retract + re-merge happens inside the session).
  ASSERT_TRUE(session.ReplaceFunction("mod_01", SynthFuncName(2), BlockingLeaf(2)));
  session.Run();
  AnnoDb db2 = session.ExportAnnoDb();
  AnalysisSession cold = TestPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(cold.ReplaceFunction("mod_01", SynthFuncName(2), BlockingLeaf(2)));
  cold.Run();
  EXPECT_EQ(db2.ToJson().Dump(), cold.ExportAnnoDb().ToJson().Dump());
}

}  // namespace
}  // namespace ivy
