// Seeded Mini-C corpus generator for the sharding determinism tests and the
// serial-vs-sharded benchmarks. Fully deterministic: the same
// SynthCorpusOptions always produce the same source text (Rng is the
// repo's portable xorshift64*, not <random>).
//
// The generated program is shaped to exercise every path the sharded
// kernels take:
//   - a call-chain backbone fn_i -> fn_{i+1} plus random forward fan-out,
//     so may-block facts propagate over long distances (many serial
//     Gauss-Seidel rounds; the worklist's advantage),
//   - blocking leaves (msleep) at the tail and sparsely mid-chain,
//   - spinlock and irq-off sections around calls (BlockStop violations),
//   - interrupt_handler entries (atomic-context seeds for the BFS),
//   - noblock/assert_nonatomic wrappers reached through function-pointer
//     hooks (the "silenced by run-time check" notes),
//   - optional self/mutual recursion (StackCheck's cyclic SCCs) and varied
//     local-array frame sizes (StackCheck depths).
#ifndef TESTS_SYNTH_CORPUS_H_
#define TESTS_SYNTH_CORPUS_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "src/support/rng.h"

namespace ivy {

struct SynthCorpusOptions {
  int functions = 120;
  uint64_t seed = 1;
  int locks = 8;
  bool recursion = true;  // self + mutual cycles (off = pure DAG)
  bool hooks = true;      // fn-ptr dispatch incl. a noblock target
  // Max forward distance of the random fan-out calls. Small spans keep the
  // call graph chain-like, so facts must travel far hop by hop.
  int fanout_span = 16;
  // A mid-chain function blocks directly with probability 1/mid_blocking_every;
  // 0 disables mid-chain blocking entirely, leaving only the tail leaves and
  // the two noblock wrappers as may-block seeds — the worst case for
  // rescan-everything fixpoints (longest propagation distances) and exactly
  // the profile the serial-vs-sharded benchmark measures.
  int mid_blocking_every = 40;
  // Alternate the chain direction every `block` functions: even blocks chain
  // ascending (fn_i -> fn_{i+1}), odd blocks descending (fn_i -> fn_{i-1},
  // entered from the top via a bridge call). Mixed-direction flow is what
  // real call graphs look like, and it is the serial fixpoint's worst case:
  // whichever direction a rescan loop iterates, half the propagation now
  // advances one hop per round. The worklist kernels don't care.
  bool descending_blocks = false;
  int block = 50;
  // Function-pointer table chain (0 = off): `hook_tables` global tables,
  // each initialized with two random targets plus everything the previous
  // table holds, and each dispatched indirectly. Facts accumulate down the
  // chain, so the points-to fixpoint does O(tables^2) derivations — the
  // workload AnalysisSession's incremental warm start has to skip when an
  // edit leaves the table inits clean.
  int hook_tables = 0;
};

inline std::string SynthFuncName(int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "fn_%04d", i);
  return buf;
}

inline std::string GenerateSynthCorpus(const SynthCorpusOptions& opt) {
  Rng rng(opt.seed);
  const int n = opt.functions < 8 ? 8 : opt.functions;
  const int locks = opt.locks < 1 ? 1 : opt.locks;
  const int noblock_a = n / 3;
  const int noblock_b = (2 * n) / 3;

  std::string out = "// synthetic corpus: functions=" + std::to_string(n) +
                    " seed=" + std::to_string(opt.seed) + "\n";
  for (int l = 0; l < locks; ++l) {
    out += "int lk_" + std::to_string(l) + ";\n";
  }
  if (opt.hooks || opt.hook_tables > 0) {
    out += "typedef void work_fn(int x);\n";
  }
  if (opt.hooks) {
    out += "work_fn* opt hook_a;\n";
    out += "work_fn* opt hook_b;\n";
  }
  for (int t = 0; t < opt.hook_tables; ++t) {
    out += "work_fn* opt table_" + std::to_string(t) + ";\n";
  }

  for (int i = 0; i < n; ++i) {
    const std::string name = SynthFuncName(i);
    const bool is_noblock = i == noblock_a || i == noblock_b;
    const bool is_handler = !is_noblock && rng.Chance(1, 50);
    const int pad = 4 << rng.Below(5);  // 4..64 ints: varied frame sizes

    out += "void " + name + "(int n)";
    if (is_noblock) {
      out += " noblock";
    } else if (is_handler) {
      out += " interrupt_handler";
    }
    out += " {\n";
    out += "  int pad[" + std::to_string(pad) + "]; pad[0] = n;\n";
    if (is_noblock) {
      // The paper's pattern: begins with the run-time check, then blocks.
      out += "  assert_nonatomic();\n  msleep(n);\n";
      if (i + 1 < n) {
        out += "  " + SynthFuncName(i + 1) + "(n - 1);\n";
      }
      out += "}\n";
      continue;
    }

    const bool spin_section = rng.Chance(1, 4);
    const bool irq_section = !spin_section && rng.Chance(1, 8);
    const int lock = static_cast<int>(rng.Below(static_cast<uint64_t>(locks)));
    if (spin_section) {
      out += "  spin_lock(&lk_" + std::to_string(lock) + ");\n";
    } else if (irq_section) {
      out += "  local_irq_disable();\n";
    }

    // Backbone + fan-out. Without descending_blocks every call target is
    // forward (j > i) and cycles only come from the explicit recursion
    // knobs below. With descending_blocks, odd blocks chain downward and all
    // their edges (backbone, fan-out, bridges) stay index-decreasing inside
    // the block, so the blocks remain acyclic too.
    const int block = opt.block < 2 ? 2 : opt.block;
    const bool descending = opt.descending_blocks && (i / block) % 2 == 1;
    const int max_span = opt.fanout_span < 1 ? 1 : opt.fanout_span;
    if (!descending) {
      if (i + 1 < n) {
        out += "  if (n > 0) { " + SynthFuncName(i + 1) + "(n - 1); }\n";
      }
      if (opt.descending_blocks && i % block == block - 1 && i + block < n) {
        // Bridge into the next (descending) block through its top.
        out += "  " + SynthFuncName(i + block) + "(n - 1);\n";
      }
      int extra = static_cast<int>(rng.Below(3));
      for (int e = 0; e < extra && i + 2 < n; ++e) {
        int span = n - i - 2;
        int j = i + 2 + static_cast<int>(
                            rng.Below(static_cast<uint64_t>(span > max_span ? max_span : span)));
        out += "  " + SynthFuncName(j) + "(n);\n";
      }
    } else {
      if (i % block != 0) {
        out += "  if (n > 0) { " + SynthFuncName(i - 1) + "(n - 1); }\n";
      } else if (i + block < n) {
        // Bottom of the descending block: bridge forward to the next block.
        out += "  " + SynthFuncName(i + block) + "(n - 1);\n";
      }
      int extra = static_cast<int>(rng.Below(3));
      int reach = i % block;  // how far down the block we can jump
      for (int e = 0; e < extra && reach >= 2; ++e) {
        int span = reach - 1;
        int j = i - 2 - static_cast<int>(
                            rng.Below(static_cast<uint64_t>(span > max_span ? max_span : span)));
        out += "  " + SynthFuncName(j) + "(n);\n";
      }
    }
    // Blocking leaves: the last functions always block; mid-chain blocking
    // is sparse (or absent) so may-block facts travel far before a seed.
    if (i >= n - 3 ||
        (opt.mid_blocking_every > 0 &&
         rng.Chance(1, static_cast<uint64_t>(opt.mid_blocking_every)))) {
      out += "  msleep(1);\n";
    } else if (rng.Chance(1, 6)) {
      out += "  udelay(1);\n";
    }
    if (opt.recursion && rng.Chance(1, 25)) {
      out += "  if (n > 3) { " + name + "(n - 1); }\n";  // self cycle
    }
    if (opt.recursion && i > 0 && rng.Chance(1, 40)) {
      out += "  if (n > 5) { " + SynthFuncName(i - 1) + "(n - 2); }\n";  // mutual cycle
    }

    if (spin_section) {
      out += "  spin_unlock(&lk_" + std::to_string(lock) + ");\n";
    } else if (irq_section) {
      out += "  local_irq_enable();\n";
    }
    out += "}\n";
  }

  for (int t = 0; t < opt.hook_tables; ++t) {
    const std::string table = "table_" + std::to_string(t);
    out += "void " + table + "_init(int n) {\n";
    for (int e = 0; e < 2; ++e) {
      int j = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      out += "  " + table + " = " + SynthFuncName(j) + ";\n";
    }
    if (t > 0) {
      // Chain edge: this table inherits everything the previous one holds,
      // so facts flow table_0 -> table_1 -> ... during the solve.
      out += "  " + table + " = table_" + std::to_string(t - 1) + ";\n";
    }
    out += "  if (n < 0) { " + table + " = 0; }\n";
    out += "}\n";
    out += "void " + table + "_run(int n) {\n";
    out += "  work_fn* opt h = " + table + ";\n";
    out += "  if (h) { h(n); }\n";
    out += "}\n";
  }

  if (opt.hooks) {
    // hook_a points at a noblock wrapper: dispatching it under a spinlock is
    // exactly the paper's "false positive silenced by a run-time check".
    out += "void init_hooks(void) {\n";
    out += "  hook_a = " + SynthFuncName(noblock_a) + ";\n";
    out += "  hook_b = " + SynthFuncName(1) + ";\n";
    out += "}\n";
    out += "void dispatch_a(int n) {\n";
    out += "  spin_lock(&lk_0);\n";
    out += "  work_fn* opt h = hook_a;\n";
    out += "  if (h) { h(n); }\n";
    out += "  spin_unlock(&lk_0);\n";
    out += "}\n";
    out += "void dispatch_b(int n) {\n";
    out += "  work_fn* opt h = hook_b;\n";
    out += "  if (h) { h(n); }\n";
    out += "}\n";
  }
  return out;
}

}  // namespace ivy

#endif  // TESTS_SYNTH_CORPUS_H_
