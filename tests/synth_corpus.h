// Seeded Mini-C corpus generator for the sharding determinism tests and the
// serial-vs-sharded benchmarks. Fully deterministic: the same
// SynthCorpusOptions always produce the same source text (Rng is the
// repo's portable xorshift64*, not <random>).
//
// The generated program is shaped to exercise every path the sharded
// kernels take:
//   - a call-chain backbone fn_i -> fn_{i+1} plus random forward fan-out,
//     so may-block facts propagate over long distances (many serial
//     Gauss-Seidel rounds; the worklist's advantage),
//   - blocking leaves (msleep) at the tail and sparsely mid-chain,
//   - spinlock and irq-off sections around calls (BlockStop violations),
//   - interrupt_handler entries (atomic-context seeds for the BFS),
//   - noblock/assert_nonatomic wrappers reached through function-pointer
//     hooks (the "silenced by run-time check" notes),
//   - optional self/mutual recursion (StackCheck's cyclic SCCs) and varied
//     local-array frame sizes (StackCheck depths).
#ifndef TESTS_SYNTH_CORPUS_H_
#define TESTS_SYNTH_CORPUS_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/support/rng.h"
#include "src/tool/pipeline.h"

namespace ivy {

struct SynthCorpusOptions {
  int functions = 120;
  uint64_t seed = 1;
  int locks = 8;
  // Name prefix applied to every generated symbol (functions, locks, hooks,
  // typedefs). Empty (the default) reproduces the historical output byte for
  // byte; the linked-corpus generator below uses per-module prefixes so N
  // modules can be concatenated into one merged-source program without
  // redefinition errors.
  std::string prefix;
  bool recursion = true;  // self + mutual cycles (off = pure DAG)
  bool hooks = true;      // fn-ptr dispatch incl. a noblock target
  // Max forward distance of the random fan-out calls. Small spans keep the
  // call graph chain-like, so facts must travel far hop by hop.
  int fanout_span = 16;
  // A mid-chain function blocks directly with probability 1/mid_blocking_every;
  // 0 disables mid-chain blocking entirely, leaving only the tail leaves and
  // the two noblock wrappers as may-block seeds — the worst case for
  // rescan-everything fixpoints (longest propagation distances) and exactly
  // the profile the serial-vs-sharded benchmark measures.
  int mid_blocking_every = 40;
  // Alternate the chain direction every `block` functions: even blocks chain
  // ascending (fn_i -> fn_{i+1}), odd blocks descending (fn_i -> fn_{i-1},
  // entered from the top via a bridge call). Mixed-direction flow is what
  // real call graphs look like, and it is the serial fixpoint's worst case:
  // whichever direction a rescan loop iterates, half the propagation now
  // advances one hop per round. The worklist kernels don't care.
  bool descending_blocks = false;
  int block = 50;
  // Function-pointer table chain (0 = off): `hook_tables` global tables,
  // each initialized with two random targets plus everything the previous
  // table holds, and each dispatched indirectly. Facts accumulate down the
  // chain, so the points-to fixpoint does O(tables^2) derivations — the
  // workload AnalysisSession's incremental warm start has to skip when an
  // edit leaves the table inits clean.
  int hook_tables = 0;
};

inline std::string SynthFuncName(const std::string& prefix, int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "fn_%04d", i);
  return prefix + buf;
}

inline std::string SynthFuncName(int i) { return SynthFuncName(std::string(), i); }

inline std::string GenerateSynthCorpus(const SynthCorpusOptions& opt) {
  Rng rng(opt.seed);
  const int n = opt.functions < 8 ? 8 : opt.functions;
  const int locks = opt.locks < 1 ? 1 : opt.locks;
  const int noblock_a = n / 3;
  const int noblock_b = (2 * n) / 3;
  const std::string& px = opt.prefix;

  std::string out = "// synthetic corpus: functions=" + std::to_string(n) +
                    " seed=" + std::to_string(opt.seed) + "\n";
  for (int l = 0; l < locks; ++l) {
    out += "int " + px + "lk_" + std::to_string(l) + ";\n";
  }
  if (opt.hooks || opt.hook_tables > 0) {
    out += "typedef void " + px + "work_fn(int x);\n";
  }
  if (opt.hooks) {
    out += px + "work_fn* opt " + px + "hook_a;\n";
    out += px + "work_fn* opt " + px + "hook_b;\n";
  }
  for (int t = 0; t < opt.hook_tables; ++t) {
    out += px + "work_fn* opt " + px + "table_" + std::to_string(t) + ";\n";
  }

  for (int i = 0; i < n; ++i) {
    const std::string name = SynthFuncName(px, i);
    const bool is_noblock = i == noblock_a || i == noblock_b;
    const bool is_handler = !is_noblock && rng.Chance(1, 50);
    const int pad = 4 << rng.Below(5);  // 4..64 ints: varied frame sizes

    out += "void " + name + "(int n)";
    if (is_noblock) {
      out += " noblock";
    } else if (is_handler) {
      out += " interrupt_handler";
    }
    out += " {\n";
    out += "  int pad[" + std::to_string(pad) + "]; pad[0] = n;\n";
    if (is_noblock) {
      // The paper's pattern: begins with the run-time check, then blocks.
      out += "  assert_nonatomic();\n  msleep(n);\n";
      if (i + 1 < n) {
        out += "  " + SynthFuncName(px, i + 1) + "(n - 1);\n";
      }
      out += "}\n";
      continue;
    }

    const bool spin_section = rng.Chance(1, 4);
    const bool irq_section = !spin_section && rng.Chance(1, 8);
    const int lock = static_cast<int>(rng.Below(static_cast<uint64_t>(locks)));
    if (spin_section) {
      out += "  spin_lock(&" + px + "lk_" + std::to_string(lock) + ");\n";
    } else if (irq_section) {
      out += "  local_irq_disable();\n";
    }

    // Backbone + fan-out. Without descending_blocks every call target is
    // forward (j > i) and cycles only come from the explicit recursion
    // knobs below. With descending_blocks, odd blocks chain downward and all
    // their edges (backbone, fan-out, bridges) stay index-decreasing inside
    // the block, so the blocks remain acyclic too.
    const int block = opt.block < 2 ? 2 : opt.block;
    const bool descending = opt.descending_blocks && (i / block) % 2 == 1;
    const int max_span = opt.fanout_span < 1 ? 1 : opt.fanout_span;
    if (!descending) {
      if (i + 1 < n) {
        out += "  if (n > 0) { " + SynthFuncName(px, i + 1) + "(n - 1); }\n";
      }
      if (opt.descending_blocks && i % block == block - 1 && i + block < n) {
        // Bridge into the next (descending) block through its top.
        out += "  " + SynthFuncName(px, i + block) + "(n - 1);\n";
      }
      int extra = static_cast<int>(rng.Below(3));
      for (int e = 0; e < extra && i + 2 < n; ++e) {
        int span = n - i - 2;
        int j = i + 2 + static_cast<int>(
                            rng.Below(static_cast<uint64_t>(span > max_span ? max_span : span)));
        out += "  " + SynthFuncName(px, j) + "(n);\n";
      }
    } else {
      if (i % block != 0) {
        out += "  if (n > 0) { " + SynthFuncName(px, i - 1) + "(n - 1); }\n";
      } else if (i + block < n) {
        // Bottom of the descending block: bridge forward to the next block.
        out += "  " + SynthFuncName(px, i + block) + "(n - 1);\n";
      }
      int extra = static_cast<int>(rng.Below(3));
      int reach = i % block;  // how far down the block we can jump
      for (int e = 0; e < extra && reach >= 2; ++e) {
        int span = reach - 1;
        int j = i - 2 - static_cast<int>(
                            rng.Below(static_cast<uint64_t>(span > max_span ? max_span : span)));
        out += "  " + SynthFuncName(px, j) + "(n);\n";
      }
    }
    // Blocking leaves: the last functions always block; mid-chain blocking
    // is sparse (or absent) so may-block facts travel far before a seed.
    if (i >= n - 3 ||
        (opt.mid_blocking_every > 0 &&
         rng.Chance(1, static_cast<uint64_t>(opt.mid_blocking_every)))) {
      out += "  msleep(1);\n";
    } else if (rng.Chance(1, 6)) {
      out += "  udelay(1);\n";
    }
    if (opt.recursion && rng.Chance(1, 25)) {
      out += "  if (n > 3) { " + name + "(n - 1); }\n";  // self cycle
    }
    if (opt.recursion && i > 0 && rng.Chance(1, 40)) {
      out += "  if (n > 5) { " + SynthFuncName(px, i - 1) + "(n - 2); }\n";  // mutual cycle
    }

    if (spin_section) {
      out += "  spin_unlock(&" + px + "lk_" + std::to_string(lock) + ");\n";
    } else if (irq_section) {
      out += "  local_irq_enable();\n";
    }
    out += "}\n";
  }

  for (int t = 0; t < opt.hook_tables; ++t) {
    const std::string table = px + "table_" + std::to_string(t);
    out += "void " + table + "_init(int n) {\n";
    for (int e = 0; e < 2; ++e) {
      int j = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      out += "  " + table + " = " + SynthFuncName(px, j) + ";\n";
    }
    if (t > 0) {
      // Chain edge: this table inherits everything the previous one holds,
      // so facts flow table_0 -> table_1 -> ... during the solve.
      out += "  " + table + " = " + px + "table_" + std::to_string(t - 1) + ";\n";
    }
    out += "  if (n < 0) { " + table + " = 0; }\n";
    out += "}\n";
    out += "void " + table + "_run(int n) {\n";
    out += "  " + px + "work_fn* opt h = " + table + ";\n";
    out += "  if (h) { h(n); }\n";
    out += "}\n";
  }

  if (opt.hooks) {
    // hook_a points at a noblock wrapper: dispatching it under a spinlock is
    // exactly the paper's "false positive silenced by a run-time check".
    out += "void " + px + "init_hooks(void) {\n";
    out += "  " + px + "hook_a = " + SynthFuncName(px, noblock_a) + ";\n";
    out += "  " + px + "hook_b = " + SynthFuncName(px, 1) + ";\n";
    out += "}\n";
    out += "void " + px + "dispatch_a(int n) {\n";
    out += "  spin_lock(&" + px + "lk_0);\n";
    out += "  " + px + "work_fn* opt h = " + px + "hook_a;\n";
    out += "  if (h) { h(n); }\n";
    out += "  spin_unlock(&" + px + "lk_0);\n";
    out += "}\n";
    out += "void " + px + "dispatch_b(int n) {\n";
    out += "  " + px + "work_fn* opt h = " + px + "hook_b;\n";
    out += "  if (h) { h(n); }\n";
    out += "}\n";
  }
  return out;
}

// ---------------------------------------------------------------------------
// Linked corpora: N per-module programs with cross-module calls through bare
// extern declarations. Every symbol is module-prefixed, so the concatenation
// of all module files compiles as ONE merged-source program (declarations
// merge with the definitions, exactly like headers) — the reference the
// linked session's fixpoint is tested against.
// ---------------------------------------------------------------------------

struct LinkedCorpusOptions {
  int modules = 4;
  int functions = 40;  // per module
  uint64_t seed = 1;
  // Extern call sites per module into randomly chosen functions of random
  // other modules; roughly half sit under a spinlock (atomic-entry facts).
  int cross_calls = 4;
  // Adjacent-module call cycles (mA_cyc -> mB_cyc_back -> mA_cyc): exercises
  // retraction safety and the cross-recursive stack facts.
  bool cross_cycles = true;
  // Function-pointer escape: module m+1 registers one of its own (blocking)
  // tail functions into module m's registrar; m dispatches it under a
  // spinlock. Needs the points-to half of the summary exchange to resolve.
  bool cross_register = true;
  int hook_tables = 0;
  int mid_blocking_every = 40;
};

inline std::string LinkedModuleName(int m) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "mod_%02d", m);
  return buf;
}

inline std::string LinkedModulePrefix(int m) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "m%02d_", m);
  return buf;
}

inline std::vector<ModuleSources> GenerateLinkedCorpus(const LinkedCorpusOptions& opt) {
  const int mods = opt.modules < 2 ? 2 : opt.modules;
  const int n = opt.functions < 8 ? 8 : opt.functions;
  Rng rng(opt.seed * 0x9e3779b97f4a7c15ULL + 1);

  std::vector<std::string> texts(static_cast<size_t>(mods));
  for (int m = 0; m < mods; ++m) {
    SynthCorpusOptions base;
    base.functions = n;
    base.seed = opt.seed + static_cast<uint64_t>(m) * 131;
    base.prefix = LinkedModulePrefix(m);
    base.hook_tables = opt.hook_tables;
    base.mid_blocking_every = opt.mid_blocking_every;
    texts[static_cast<size_t>(m)] = GenerateSynthCorpus(base);
  }

  // Cross-module call sites: new caller functions appended per module, each
  // calling an extern-declared function of another module. xc_0 chains
  // through every module (m.xc_0 -> m+1.xc_0 -> ... -> tail msleep), so
  // may-block facts must travel the whole corpus hop by hop — the
  // convergence-round workload.
  for (int m = 0; m < mods; ++m) {
    const std::string px = LinkedModulePrefix(m);
    std::string& out = texts[static_cast<size_t>(m)];
    std::string decls;
    std::string defs;

    // Module 0's xc_0 is an interrupt handler, so irq-reachability must
    // travel the whole xc_0 chain across every module — and each module's
    // xc_1 (spinlocked, see below) is then reached in irq context, while
    // the base corpus also takes the same lock in process context.
    defs += "void " + px + "xc_0(int n)" + (m == 0 ? " interrupt_handler" : "") +
            " {\n  int pad[8]; pad[0] = n;\n";
    if (m + 1 < mods) {
      decls += "void " + LinkedModulePrefix(m + 1) + "xc_0(int n);\n";
      defs += "  if (n > 0) { " + LinkedModulePrefix(m + 1) + "xc_0(n - 1); }\n";
    } else {
      defs += "  msleep(n);\n";
    }
    if (opt.cross_calls >= 1) {
      defs += "  if (n > 1) { " + px + "xc_1(n - 1); }\n";
    }
    defs += "}\n";

    // An error-returning function (classified by inference: negative
    // constant return) whose result the NEXT module discards — the errcheck
    // half of the summary exchange.
    defs += "int " + px + "geterr(int n) {\n  if (n < 0) { return -5; }\n  return 0;\n}\n";
    if (m + 1 < mods) {
      decls += "int " + LinkedModulePrefix(m + 1) + "geterr(int n);\n";
      defs += "void " + px + "use_err(int n) {\n  " + LinkedModulePrefix(m + 1) +
              "geterr(n);\n}\n";
    }

    for (int c = 1; c <= opt.cross_calls; ++c) {
      int target_mod = static_cast<int>(rng.Below(static_cast<uint64_t>(mods - 1)));
      target_mod += target_mod >= m ? 1 : 0;
      int target_fn = static_cast<int>(rng.Below(static_cast<uint64_t>(n)));
      std::string target = SynthFuncName(LinkedModulePrefix(target_mod), target_fn);
      decls += "void " + target + "(int n);\n";
      bool atomic = rng.Chance(1, 2);
      defs += "void " + px + "xc_" + std::to_string(c) + "(int n) {\n";
      defs += "  int pad[8]; pad[0] = n;\n";
      if (atomic) {
        defs += "  spin_lock(&" + px + "lk_0);\n";
      }
      defs += "  " + target + "(n - 1);\n";
      if (atomic) {
        defs += "  spin_unlock(&" + px + "lk_0);\n";
      }
      defs += "}\n";
    }

    if (opt.cross_cycles && m + 1 < mods && m % 2 == 0) {
      // mA_cyc -> mB_cyc_back -> mA_cyc, with a blocking leaf inside the
      // cycle every other pair.
      const std::string peer = LinkedModulePrefix(m + 1);
      decls += "void " + peer + "cyc_back(int n);\n";
      defs += "void " + px + "cyc(int n) {\n  int pad[16]; pad[0] = n;\n";
      defs += "  if (n > 0) { " + peer + "cyc_back(n - 1); }\n";
      if ((m / 2) % 2 == 0) {
        defs += "  msleep(1);\n";
      }
      defs += "}\n";
      // A local entry ABOVE the cross-module cycle: its depth must stack its
      // own frame on the cycle's corpus-level depth exactly once (the
      // double-count regression for cross-recursive callees).
      defs += "void " + px + "cyc_entry(int n) {\n  int pad[32]; pad[0] = n;\n  " + px +
              "cyc(n);\n}\n";
    }
    if (opt.cross_cycles && m > 0 && m % 2 == 1) {
      const std::string peer = LinkedModulePrefix(m - 1);
      decls += "void " + peer + "cyc(int n);\n";
      defs += "void " + px + "cyc_back(int n) {\n  int pad[16]; pad[0] = n;\n";
      defs += "  if (n > 0) { " + peer + "cyc(n - 1); }\n";
      defs += "}\n";
    }

    if (opt.cross_register) {
      // Registrar: other modules hand this module a function pointer; the
      // dispatch runs it under a spinlock. The registered target must be
      // extern-declared here, or the imported points-to fact cannot resolve.
      defs += px + "work_fn* opt " + px + "hook_r;\n";
      defs += "void " + px + "reg(" + px + "work_fn* opt h) {\n  " + px + "hook_r = h;\n}\n";
      defs += "void " + px + "dispatch_r(int n) {\n";
      defs += "  spin_lock(&" + px + "lk_1);\n";
      defs += "  " + px + "work_fn* opt h = " + px + "hook_r;\n";
      defs += "  if (h) { h(n); }\n";
      defs += "  spin_unlock(&" + px + "lk_1);\n";
      defs += "}\n";
      if (m + 1 < mods) {
        // Declare the function module m+1 will register with us.
        decls += "void " + SynthFuncName(LinkedModulePrefix(m + 1), n - 1) + "(int n);\n";
      }
      if (m > 0) {
        // Register our always-blocking tail function with module m-1.
        const std::string peer = LinkedModulePrefix(m - 1);
        decls += "void " + peer + "reg(" + px + "work_fn* opt h);\n";
        defs += "void " + px + "do_reg(int n) {\n";
        defs += "  " + px + "work_fn* opt t = " + SynthFuncName(px, n - 1) + ";\n";
        defs += "  if (n > 0) { " + peer + "reg(t); }\n";
        defs += "}\n";
      }
    }

    out += "// cross-module section\n" + decls + defs;
  }

  std::vector<ModuleSources> corpus;
  corpus.reserve(static_cast<size_t>(mods));
  for (int m = 0; m < mods; ++m) {
    corpus.push_back(ModuleSources{
        LinkedModuleName(m),
        {SourceFile{LinkedModuleName(m) + ".mc", texts[static_cast<size_t>(m)]}}});
  }
  return corpus;
}

// The merged-source reference: every module's file in one program, in module
// order. File names (and so rendered finding locations) match the per-module
// compilations.
inline std::vector<SourceFile> MergedLinkedSources(const std::vector<ModuleSources>& corpus) {
  std::vector<SourceFile> files;
  for (const ModuleSources& m : corpus) {
    files.insert(files.end(), m.files.begin(), m.files.end());
  }
  return files;
}

}  // namespace ivy

#endif  // TESTS_SYNTH_CORPUS_H_
