// hbench harness integration: the suite matches Table 1's 21 rows, results
// are deterministic, and the bandwidth/latency shape holds.
#include <gtest/gtest.h>

#include "src/hbench/hbench.h"
#include "src/kernel/corpus.h"

namespace ivy {
namespace {

TEST(Hbench, SuiteMatchesTable1Rows) {
  const std::vector<HbenchSpec>& suite = HbenchSuite();
  ASSERT_EQ(suite.size(), 21u);
  // The paper's exact row names, in order.
  const char* expected[] = {
      "bw_bzero",  "bw_file_rd", "bw_mem_cp", "bw_mem_rd",   "bw_mem_wr",  "bw_mmap_rd",
      "bw_pipe",   "bw_tcp",     "lat_connect", "lat_ctx",   "lat_ctx2",   "lat_fs",
      "lat_fslayer", "lat_mmap", "lat_pipe",  "lat_proc",    "lat_rpc",    "lat_sig",
      "lat_syscall", "lat_tcp",  "lat_udp"};
  for (size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, std::string(expected[i]));
  }
}

TEST(Hbench, MeasurementsDeterministic) {
  ToolConfig cfg;
  auto comp = CompileKernel(cfg);
  ASSERT_TRUE(comp->ok);
  const HbenchSpec& spec = HbenchSuite()[8];  // lat_connect
  int64_t a = MeasureCycles(*comp, spec);
  int64_t b = MeasureCycles(*comp, spec);
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

TEST(Hbench, DeputizedNeverFasterAndShapeHolds) {
  ToolConfig base;
  base.deputy = false;
  ToolConfig deputy;
  std::vector<HbenchResult> results = RunHbenchComparison(base, deputy);
  ASSERT_EQ(results.size(), 21u);
  double bw_worst = 0;
  double lat_worst = 0;
  for (const HbenchResult& r : results) {
    ASSERT_GT(r.base_cycles, 0) << r.name;
    ASSERT_GT(r.tool_cycles, 0) << r.name;
    EXPECT_GE(r.relative, 0.999) << r.name << ": deterministic VM can't speed up";
    EXPECT_LT(r.relative, 2.0) << r.name << ": overhead out of plausible range";
    if (r.name.rfind("bw_", 0) == 0) {
      bw_worst = std::max(bw_worst, r.relative);
    } else {
      lat_worst = std::max(lat_worst, r.relative);
    }
  }
  EXPECT_LT(bw_worst, 1.10) << "bandwidth rows must stay near 1.0 (Table 1)";
  EXPECT_GT(lat_worst, 1.10) << "latency rows must carry visible check cost";
}

}  // namespace
}  // namespace ivy
