// BlockStop unit tests (§2.3): blocking-set propagation, GFP_WAIT handling,
// IRQ-state tracking, interrupt contexts, and the noblock run-time-check
// silencing semantics.
#include <gtest/gtest.h>

#include "src/blockstop/blockstop.h"
#include "src/driver/compiler.h"
#include "src/tool/analysis_context.h"

namespace ivy {
namespace {

BlockStopReport Analyze(const std::string& src, bool field_sensitive = false) {
  auto comp = CompileOne(src, ToolConfig{});
  EXPECT_TRUE(comp->ok) << comp->Errors();
  AnalysisContext ctx(comp.get(), field_sensitive);
  BlockStop bs(&comp->prog, comp->sema.get(), &ctx.callgraph());
  return bs.Run();
}

TEST(BlockStop, DirectBlockingCallUnderSpinlock) {
  const char* src = R"(
    int lk;
    void bad(void) {
      spin_lock(&lk);
      msleep(10);
      spin_unlock(&lk);
    }
  )";
  BlockStopReport r = Analyze(src);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].callee, "msleep");
}

TEST(BlockStop, BlockingAfterUnlockIsFine) {
  const char* src = R"(
    int lk;
    void good(void) {
      spin_lock(&lk);
      spin_unlock(&lk);
      msleep(10);
    }
  )";
  EXPECT_TRUE(Analyze(src).violations.empty());
}

TEST(BlockStop, IrqDisableRegionTracked) {
  const char* src = R"(
    void bad(void) {
      local_irq_disable();
      schedule();
      local_irq_enable();
    }
    void good(void) {
      local_irq_disable();
      local_irq_enable();
      schedule();
    }
  )";
  BlockStopReport r = Analyze(src);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].caller, "bad");
}

TEST(BlockStop, TransitiveBlockingPropagates) {
  const char* src = R"(
    int lk;
    void leaf(void) { wait_event(&lk); }
    void mid(void) { leaf(); }
    void outer(void) {
      spin_lock(&lk);
      mid();
      spin_unlock(&lk);
    }
  )";
  BlockStopReport r = Analyze(src);
  // The outer violation plus the cascade through the atomic context
  // propagated into mid and leaf (each call site is reported once).
  ASSERT_GE(r.violations.size(), 1u);
  bool outer_found = false;
  for (const BlockingViolation& v : r.violations) {
    if (v.caller == "outer" && v.callee == "mid") {
      outer_found = true;
    }
  }
  EXPECT_TRUE(outer_found);
  EXPECT_TRUE(r.mayblock.count("mid") == 1);
  EXPECT_TRUE(r.mayblock.count("leaf") == 1);
}

TEST(BlockStop, GfpWaitConstantsDecideKmalloc) {
  const char* src = R"(
    int lk;
    void atomic_alloc_ok(void) {
      spin_lock(&lk);
      void* p = kmalloc(64, GFP_ATOMIC);
      kfree(p);
      spin_unlock(&lk);
    }
    void wait_alloc_bad(void) {
      spin_lock(&lk);
      void* p = kmalloc(64, GFP_KERNEL);
      kfree(p);
      spin_unlock(&lk);
    }
  )";
  BlockStopReport r = Analyze(src);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].caller, "wait_alloc_bad");
}

TEST(BlockStop, BlockingIfWrapperStaysConditional) {
  // A kmalloc wrapper annotated blocking_if(flags) is decided at ITS call
  // sites, not at the kmalloc call inside it.
  const char* src = R"(
    int lk;
    void* my_alloc(int size, int flags) blocking_if(flags) {
      return kmalloc(size, flags);
    }
    void ok(void) {
      spin_lock(&lk);
      void* p = my_alloc(32, GFP_ATOMIC);
      kfree(p);
      spin_unlock(&lk);
    }
    void bad(void) {
      spin_lock(&lk);
      void* p = my_alloc(32, GFP_KERNEL);
      kfree(p);
      spin_unlock(&lk);
    }
  )";
  BlockStopReport r = Analyze(src);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].caller, "bad");
}

TEST(BlockStop, InterruptHandlerContextIsAtomic) {
  const char* src = R"(
    void handler(int x) interrupt_handler {
      might_sleep();
    }
  )";
  BlockStopReport r = Analyze(src);
  ASSERT_EQ(r.violations.size(), 1u);
  EXPECT_EQ(r.violations[0].caller, "handler");
}

TEST(BlockStop, AtomicContextPropagatesToCallees) {
  const char* src = R"(
    void helper(void) { might_sleep(); }
    void handler(int x) interrupt_handler { helper(); }
  )";
  BlockStopReport r = Analyze(src);
  // Two findings rolled up: handler calls may-block helper; helper itself
  // blocks in an atomic-entered context.
  ASSERT_GE(r.violations.size(), 1u);
  bool found = false;
  for (const BlockingViolation& v : r.violations) {
    if (v.caller == "handler" && v.callee == "helper") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(BlockStop, NoblockRuntimeCheckSilencesIndirectFp) {
  const char* src = R"(
    typedef int op_fn(int x);
    struct ops { op_fn* opt sleeper; op_fn* opt fast; };
    struct ops table;
    int lk;
    int sleepy(int x) noblock { assert_nonatomic(); msleep(x); return 0; }
    int quick(int x) { return x; }
    void init(void) { table.sleeper = sleepy; table.fast = quick; }
    void atomic_dispatch(int x) {
      spin_lock(&lk);
      op_fn* opt f = table.fast;   // insensitive ptsto also sees `sleepy`
      if (f) { f(x); }
      spin_unlock(&lk);
    }
  )";
  BlockStopReport insens = Analyze(src, /*field_sensitive=*/false);
  EXPECT_TRUE(insens.violations.empty());
  ASSERT_EQ(insens.silenced.size(), 1u);
  EXPECT_EQ(insens.silenced[0].callee, "sleepy");
  EXPECT_EQ(insens.runtime_checks, 1);

  BlockStopReport sens = Analyze(src, /*field_sensitive=*/true);
  EXPECT_TRUE(sens.violations.empty());
  EXPECT_TRUE(sens.silenced.empty()) << "field sensitivity removes the FP entirely";
}

TEST(BlockStop, SpinLockIrqsaveRestoresEntryState) {
  const char* src = R"(
    int lk;
    void fine(void) {
      int flags = spin_lock_irqsave(&lk);
      spin_unlock_irqrestore(&lk, flags);
      msleep(1);
    }
  )";
  EXPECT_TRUE(Analyze(src).violations.empty());
}

TEST(BlockStop, BranchJoinIsConservative) {
  const char* src = R"(
    int lk;
    void maybe_atomic(int c) {
      if (c) {
        spin_lock(&lk);
      }
      schedule();   // atomic on one path: must be reported
      if (c) {
        spin_unlock(&lk);
      }
    }
  )";
  BlockStopReport r = Analyze(src);
  EXPECT_EQ(r.violations.size(), 1u);
}

TEST(BlockStop, DynamicBackstopTrapsAtRuntime) {
  // The hybrid story: the same bug, executed, hits the VM's might_sleep trap.
  const char* src = R"(
    int lk;
    int main(void) {
      spin_lock(&lk);
      msleep(1);
      spin_unlock(&lk);
      return 0;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kMightSleepAtomic);
}

TEST(BlockStop, AssertNonatomicPanicsWhenAssertionWrong) {
  const char* src = R"(
    int lk;
    int checked(void) noblock { assert_nonatomic(); return 0; }
    int main(void) {
      local_irq_disable();
      int r = checked();   // the run-time check the paper inserted fires
      local_irq_enable();
      return r;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kPanic);
}

}  // namespace
}  // namespace ivy
