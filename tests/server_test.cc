// AnnodServer tests: end-to-end byte-identity against a cold batch run,
// query filtering parity with FindingQuery, epoch pinning and retention,
// graceful shutdown while a relink is in flight (no deadlock, no partial
// epoch), and the concurrency stress test — 32 query clients against a
// corpus receiving continuous edits, every response internally consistent
// with its pinned epoch (same epoch => same bytes), and the final epoch
// byte-identical to a cold RunLinked() over the same final sources.
//
// This file runs under ThreadSanitizer in CI (.github/workflows/ci.yml).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/client.h"
#include "src/server/epoch.h"
#include "src/server/server.h"
#include "src/tool/session.h"
#include "tools/synth_common.h"

namespace ivy {
namespace {

LinkedCorpusOptions SmallCorpus(uint64_t seed = 2) {
  LinkedCorpusOptions opt;
  opt.modules = 3;
  opt.functions = 16;
  opt.seed = seed;
  return opt;
}

AnnodServer::Options ServerOptions(int retain = 8) {
  AnnodServer::Options o;
  o.pipeline = SynthServePipeline().Build();
  o.epoch_retain = retain;
  return o;
}

// Cold batch reference over (possibly edited) synth sources.
std::shared_ptr<EpochSnapshot> ColdSnapshot(
    const LinkedCorpusOptions& opt,
    const std::vector<std::pair<std::string, std::pair<std::string, std::string>>>&
        replacements = {}) {
  AnalysisSession session =
      SynthServePipeline().ForEachModule(GenerateLinkedCorpus(opt)).BuildSession();
  for (const auto& [module, edit] : replacements) {
    EXPECT_TRUE(session.ReplaceFunction(module, edit.first, edit.second));
  }
  SessionResult result = session.RunLinked();
  EXPECT_EQ(result.compile_failures, 0);
  EXPECT_TRUE(session.link_stats().converged);
  return BuildEpochSnapshot(1, result, session.link_table());
}

void SeedCorpus(AnnodServer& server, const std::string& corpus,
                const LinkedCorpusOptions& opt) {
  ASSERT_TRUE(server.OpenCorpus(corpus));
  for (ModuleSources& mod : GenerateLinkedCorpus(opt)) {
    ASSERT_TRUE(server.EnqueueUpsert(corpus, std::move(mod)));
  }
  ASSERT_GT(server.SyncEpoch(corpus), 0u);
}

TEST(Server, WarmSnapshotMatchesColdBatchByteForByte) {
  const LinkedCorpusOptions opt = SmallCorpus();
  AnnodServer server(ServerOptions());
  SeedCorpus(server, "synth", opt);

  auto warm = server.Snapshot("synth");
  ASSERT_NE(warm, nullptr);
  auto cold = ColdSnapshot(opt);
  EXPECT_FALSE(warm->findings_canon.empty());
  EXPECT_EQ(warm->findings_canon, cold->findings_canon);
  EXPECT_EQ(warm->summaries_canon, cold->summaries_canon);
  EXPECT_TRUE(warm->link.converged);
}

TEST(Server, WireQueriesMatchInProcessSnapshotAndFilters) {
  const LinkedCorpusOptions opt = SmallCorpus();
  AnnodServer server(ServerOptions());
  SeedCorpus(server, "synth", opt);

  std::string err;
  ASSERT_TRUE(server.Start("127.0.0.1:0", &err)) << err;
  AnnodClient client;
  ASSERT_TRUE(client.Connect(server.bound_address(), &err)) << err;
  ASSERT_TRUE(client.Ping(&err)) << err;

  auto snap = server.Snapshot("synth");
  ASSERT_NE(snap, nullptr);

  {
    // Unfiltered: every canonical row, in snapshot order.
    FindingsQueryMsg q;
    q.corpus = "synth";
    RowsReplyMsg reply;
    ASSERT_TRUE(client.QueryFindings(q, &reply, &err)) << err;
    EXPECT_EQ(reply.epoch, snap->id);
    EXPECT_EQ(reply.total, snap->findings.size());
    EXPECT_EQ(reply.rows, snap->findings_canon);
  }
  {
    // Filtered: exactly what FindingQuery selects client-side.
    FindingsQueryMsg q;
    q.corpus = "synth";
    q.tool = "stackcheck";
    q.module = "mod_01";
    RowsReplyMsg reply;
    ASSERT_TRUE(client.QueryFindings(q, &reply, &err)) << err;
    FindingQuery fq;
    fq.tool = "stackcheck";
    fq.module = "mod_01";
    std::vector<std::string> expected;
    for (size_t i = 0; i < snap->findings.size(); ++i) {
      if (fq.Matches(snap->findings[i])) {
        expected.push_back(snap->findings_canon[i]);
      }
    }
    EXPECT_FALSE(expected.empty());
    EXPECT_EQ(reply.rows, expected);
    EXPECT_EQ(reply.total, snap->findings.size());
  }
  {
    SummariesQueryMsg q;
    q.corpus = "synth";
    q.module = "mod_02";
    RowsReplyMsg reply;
    ASSERT_TRUE(client.QuerySummaries(q, &reply, &err)) << err;
    std::vector<std::string> expected;
    for (size_t i = 0; i < snap->summaries.size(); ++i) {
      if (snap->summaries[i].module == "mod_02") {
        expected.push_back(snap->summaries_canon[i]);
      }
    }
    EXPECT_FALSE(expected.empty());
    EXPECT_EQ(reply.rows, expected);
  }
  {
    StatsReplyMsg stats;
    ASSERT_TRUE(client.Stats("synth", &stats, &err)) << err;
    EXPECT_EQ(stats.epoch, snap->id);
    EXPECT_EQ(stats.findings, snap->findings.size());
    EXPECT_EQ(stats.converged, 1);
  }
  {
    // Error paths surface as kError, not closed connections.
    FindingsQueryMsg q;
    q.corpus = "nope";
    RowsReplyMsg reply;
    EXPECT_FALSE(client.QueryFindings(q, &reply, &err));
    EXPECT_NE(err.find("unknown corpus"), std::string::npos) << err;
    ASSERT_TRUE(client.Ping(&err)) << err;  // still usable
  }

  ASSERT_TRUE(client.Shutdown(&err)) << err;
  server.Wait();
}

TEST(Server, EpochPinningKeepsOldSnapshotsQueryable) {
  const LinkedCorpusOptions opt = SmallCorpus();
  AnnodServer server(ServerOptions());
  SeedCorpus(server, "synth", opt);

  auto pinned = server.Snapshot("synth");
  ASSERT_NE(pinned, nullptr);
  const uint64_t pinned_id = pinned->id;
  const std::vector<std::string> pinned_rows = pinned->findings_canon;

  // A new blocking body changes the corpus; the pinned epoch must not move.
  ASSERT_TRUE(server.EnqueueReplaceFunction(
      "synth", "mod_01", "m01_fn_0005",
      "void m01_fn_0005(int n) {\n  int pad[4]; pad[0] = n;\n  msleep(n);\n}\n"));
  const uint64_t new_epoch = server.SyncEpoch("synth");
  ASSERT_GT(new_epoch, pinned_id);

  auto old_snap = server.Snapshot("synth", pinned_id);
  ASSERT_NE(old_snap, nullptr) << "pinned epoch evicted too early";
  EXPECT_EQ(old_snap->findings_canon, pinned_rows);

  auto latest = server.Snapshot("synth");
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->id, new_epoch);
  EXPECT_NE(latest->findings_canon, pinned_rows);

  // The edited corpus still matches its own cold batch run.
  auto cold = ColdSnapshot(
      opt, {{"mod_01",
             {"m01_fn_0005",
              "void m01_fn_0005(int n) {\n  int pad[4]; pad[0] = n;\n  msleep(n);\n}\n"}}});
  EXPECT_EQ(latest->findings_canon, cold->findings_canon);
  EXPECT_EQ(latest->summaries_canon, cold->summaries_canon);
}

TEST(Server, EpochRetentionEvictsBeyondRing) {
  const LinkedCorpusOptions opt = SmallCorpus();
  AnnodServer server(ServerOptions(/*retain=*/2));
  SeedCorpus(server, "synth", opt);
  const uint64_t first = server.Snapshot("synth")->id;

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server.EnqueueReplaceFunction(
        "synth", "mod_01", "m01_fn_0005",
        "void m01_fn_0005(int n) {\n  int pad[" + std::to_string(4 + 4 * i) +
            "]; pad[0] = n;\n  msleep(n);\n}\n"));
    ASSERT_GT(server.SyncEpoch("synth"), 0u);
  }
  EXPECT_EQ(server.Snapshot("synth", first), nullptr) << "evicted epoch served";
  EXPECT_NE(server.Snapshot("synth"), nullptr);
}

// The regression test for the drain path: shutdown arrives while the initial
// relink of a corpus is still converging. Must not deadlock, and must never
// publish a partial (non-converged) epoch.
TEST(Server, ShutdownWhileRelinkingPublishesNoPartialEpoch) {
  LinkedCorpusOptions opt;
  opt.modules = 6;
  opt.functions = 48;
  opt.seed = 3;

  for (int round = 0; round < 3; ++round) {
    AnnodServer server(ServerOptions());
    ASSERT_TRUE(server.OpenCorpus("synth"));
    for (ModuleSources& mod : GenerateLinkedCorpus(opt)) {
      ASSERT_TRUE(server.EnqueueUpsert("synth", std::move(mod)));
    }
    // No sync: the fixpoint is (very likely) mid-flight right now. Vary the
    // race window a little between rounds.
    if (round > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20 * round));
    }
    server.RequestShutdown();
    server.Wait();  // deadlock here is the bug this test pins down

    // Whatever made it out before the cancel must be whole: converged link,
    // no cancelled stats.
    auto snap = server.Snapshot("synth");
    if (snap != nullptr && snap->id > 1) {
      EXPECT_TRUE(snap->link.converged) << "partial epoch published";
      EXPECT_FALSE(snap->link.cancelled);
    }
  }
}

// ---------------------------------------------------------------------------
// The stress test: 32 concurrent wire clients, continuous edits, epoch
// consistency (same epoch => same bytes) and final byte-identity. TSan runs
// this in CI.
// ---------------------------------------------------------------------------

TEST(ServerStress, ThirtyTwoClientsAgainstContinuousEdits) {
  const LinkedCorpusOptions opt = SmallCorpus(/*seed=*/4);
  AnnodServer server(ServerOptions());
  SeedCorpus(server, "synth", opt);
  std::string err;
  ASSERT_TRUE(server.Start("127.0.0.1:0", &err)) << err;
  const std::string addr = server.bound_address();

  constexpr int kClients = 32;
  constexpr int kQueriesPerClient = 8;
  const std::string kEditTarget = "m01_fn_0005";

  // Writer: a stream of alternating edits, one relink each.
  std::atomic<bool> stop_edits{false};
  std::thread editor([&server, &stop_edits, &kEditTarget] {
    int flavor = 0;
    while (!stop_edits.load(std::memory_order_acquire)) {
      const std::string body =
          "void " + kEditTarget + "(int n) {\n  int pad[" +
          std::to_string(4 << (flavor % 3)) + "]; pad[0] = n;\n  msleep(n);\n}\n";
      server.EnqueueReplaceFunction("synth", "mod_01", kEditTarget, body);
      ++flavor;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // Readers: each client records (epoch, payload-hash) per query shape; any
  // two responses from the same epoch must be byte-identical.
  std::mutex seen_mu;
  std::map<std::pair<uint64_t, int>, std::string> seen;  // (epoch, shape) -> digest
  std::atomic<int> failures{0};

  auto digest = [](const RowsReplyMsg& reply) {
    std::string d = std::to_string(reply.total) + "|";
    for (const std::string& row : reply.rows) {
      d += row;
      d += '\n';
    }
    return d;
  };

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int cidx = 0; cidx < kClients; ++cidx) {
    clients.emplace_back([&, cidx] {
      AnnodClient client;
      std::string cerr;
      if (!client.Connect(addr, &cerr)) {
        ++failures;
        return;
      }
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const int shape = (cidx + i) % 3;
        RowsReplyMsg reply;
        bool ok = false;
        if (shape == 0) {
          FindingsQueryMsg q;
          q.corpus = "synth";
          ok = client.QueryFindings(q, &reply, &cerr);
        } else if (shape == 1) {
          FindingsQueryMsg q;
          q.corpus = "synth";
          q.tool = "blockstop";
          q.module = "mod_01";
          ok = client.QueryFindings(q, &reply, &cerr);
        } else {
          SummariesQueryMsg q;
          q.corpus = "synth";
          q.module = "mod_01";
          ok = client.QuerySummaries(q, &reply, &cerr);
        }
        if (!ok) {
          ++failures;
          continue;
        }
        // Re-query the SAME epoch by id: must reproduce the bytes exactly
        // (unless the ring already evicted it under the edit storm).
        if (shape == 0) {
          FindingsQueryMsg q;
          q.corpus = "synth";
          q.epoch = reply.epoch;
          RowsReplyMsg again;
          if (client.QueryFindings(q, &again, &cerr)) {
            if (again.epoch != reply.epoch || again.rows != reply.rows) {
              ++failures;
            }
          }
        }
        const std::string d = digest(reply);
        std::lock_guard<std::mutex> lock(seen_mu);
        auto [it, inserted] =
            seen.emplace(std::make_pair(reply.epoch, shape), d);
        if (!inserted && it->second != d) {
          ++failures;  // same epoch, same query, different bytes
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  stop_edits.store(true, std::memory_order_release);
  editor.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(seen.size(), 0u);

  // Quiesce, then the final epoch must be byte-identical to a cold batch
  // run over the same final sources.
  const uint64_t final_epoch = server.SyncEpoch("synth");
  ASSERT_GT(final_epoch, 0u);
  auto final_snap = server.Snapshot("synth", final_epoch);
  ASSERT_NE(final_snap, nullptr);

  // Reconstruct the last applied edit: the editor thread applied `flavor`
  // bodies in sequence; re-derive the final body from the server's view by
  // matching against the three possible pads.
  bool matched = false;
  for (int flavor = 0; flavor < 3 && !matched; ++flavor) {
    const std::string body =
        "void " + kEditTarget + "(int n) {\n  int pad[" +
        std::to_string(4 << flavor) + "]; pad[0] = n;\n  msleep(n);\n}\n";
    auto cold = ColdSnapshot(opt, {{"mod_01", {kEditTarget, body}}});
    if (final_snap->findings_canon == cold->findings_canon &&
        final_snap->summaries_canon == cold->summaries_canon) {
      matched = true;
    }
  }
  EXPECT_TRUE(matched)
      << "final epoch matches no cold run of any applied edit state";

  server.RequestShutdown();
  server.Wait();
}

}  // namespace
}  // namespace ivy
