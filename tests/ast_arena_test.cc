// Arena-backed AST invariants: slab layout, per-function id spans, string
// interning, the linear-slab fingerprint (heap-vs-arena identity, location
// insensitivity), and parse-error robustness (leak-freedom is by
// construction — POD nodes in an arena — so the fuzz loop here runs under
// the sanitizer jobs to prove no error path crashes or double-builds).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/fingerprint.h"
#include "src/tool/pipeline.h"
#include "src/tool/session.h"
#include "tests/synth_corpus.h"

namespace ivy {
namespace {

std::unique_ptr<Compilation> CompileMode(const std::string& text, bool heap) {
  PipelineBuilder b;
  b.HeapAst(heap);
  return b.Build().Compile({SourceFile{"t.mc", text}});
}

std::unique_ptr<Compilation> CompileOk(const std::string& text, bool heap = false) {
  auto comp = CompileMode(text, heap);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  return comp;
}

constexpr const char* kSample = R"(
struct buf { int len; char* count(len) data; };
int g_total;
int helper(int n) { return n + 1; }
void work(struct buf* b, int n) {
  int i;
  int acc;
  acc = 0;
  for (i = 0; i < n; i = i + 1) {
    if (b->len > i) {
      acc = acc + helper(i);
    }
  }
  g_total = acc;
}
)";

// Every node reachable from a function body carries an id inside that
// function's slab span, link fields point at allocated nodes, and the
// pointer stored at ExprAt(id) is the node itself (slab addresses are
// stable).
TEST(AstArena, SpansCoverReachableNodes) {
  auto comp = CompileOk(kSample);
  const Program& prog = comp->prog;
  for (const FuncDecl* fn : prog.funcs) {
    if (fn->body == nullptr) {
      continue;
    }
    ASSERT_LE(fn->expr_begin, fn->expr_end);
    ASSERT_LE(fn->expr_end, static_cast<uint32_t>(prog.expr_count()));
    ASSERT_LE(fn->stmt_begin, fn->stmt_end);
    ASSERT_LE(fn->stmt_end, static_cast<uint32_t>(prog.stmt_count()));
    ASSERT_LE(fn->decl_begin, fn->decl_end);
    ASSERT_LE(fn->decl_end, static_cast<uint32_t>(prog.decl_count()));
    EXPECT_GE(fn->body->id, fn->stmt_begin);
    EXPECT_LT(fn->body->id, fn->stmt_end);
    for (uint32_t i = fn->expr_begin; i < fn->expr_end; ++i) {
      const Expr* e = prog.ExprAt(ExprId{i});
      ASSERT_EQ(e->id, i);  // slab address <-> id round trip
      EXPECT_TRUE(e->loc.IsValid());
      EXPECT_GE(e->loc.line, 1);
      // Links stay inside the same function's span (acyclicity follows:
      // every edge goes to a node with a distinct id in a finite range,
      // checked structurally below).
      for (const Expr* child : {e->a, e->b, e->c}) {
        if (child != nullptr) {
          EXPECT_GE(child->id, fn->expr_begin);
          EXPECT_LT(child->id, fn->expr_end);
          EXPECT_NE(child, e);
        }
      }
      for (const Expr* arg : e->args) {
        ASSERT_NE(arg, nullptr);
        EXPECT_GE(arg->id, fn->expr_begin);
        EXPECT_LT(arg->id, fn->expr_end);
      }
    }
    for (uint32_t i = fn->stmt_begin; i < fn->stmt_end; ++i) {
      const Stmt* s = prog.StmtAt(StmtId{i});
      ASSERT_EQ(s->id, i);
      EXPECT_TRUE(s->loc.IsValid());
      for (const Stmt* child : {s->init, s->then_stmt, s->else_stmt}) {
        if (child != nullptr) {
          EXPECT_GE(child->id, fn->stmt_begin);
          EXPECT_LT(child->id, fn->stmt_end);
          EXPECT_NE(child, s);
        }
      }
      for (const Stmt* child : s->body) {
        ASSERT_NE(child, nullptr);
        EXPECT_NE(child, s);
      }
    }
  }
}

// The AST is a forest over the slabs: walking every function's body visits
// each statement at most once (no sharing, no cycles).
TEST(AstArena, BodyWalkIsAcyclic) {
  auto comp = CompileOk(kSample);
  std::set<const Stmt*> visited;
  std::vector<const Stmt*> stack;
  for (const FuncDecl* fn : comp->prog.funcs) {
    if (fn->body != nullptr) {
      stack.push_back(fn->body);
    }
  }
  while (!stack.empty()) {
    const Stmt* s = stack.back();
    stack.pop_back();
    ASSERT_TRUE(visited.insert(s).second) << "statement reached twice";
    for (const Stmt* child : {s->init, s->then_stmt, s->else_stmt}) {
      if (child != nullptr) {
        stack.push_back(child);
      }
    }
    for (const Stmt* child : s->body) {
      stack.push_back(child);
    }
  }
}

// Arena-mode interning deduplicates: every occurrence of one spelling gets
// the same id, and the cached content hash matches a fresh computation.
TEST(AstArena, InterningDeduplicates) {
  auto comp = CompileOk(kSample);
  const Program& prog = comp->prog;
  std::map<std::string, uint32_t> id_of;
  int idents = 0;
  for (uint32_t i = 0; i < prog.expr_count(); ++i) {
    const Expr* e = prog.ExprAt(ExprId{i});
    if (e->kind != ExprKind::kIdent || e->str_id == kNoStr) {
      continue;
    }
    ++idents;
    auto [it, fresh] = id_of.emplace(std::string(e->str_val), e->str_id);
    EXPECT_EQ(it->second, e->str_id) << "same spelling, different intern id";
    EXPECT_EQ(prog.StrHash(e->str_id), StrContentHash(e->str_val));
  }
  EXPECT_GT(idents, static_cast<int>(id_of.size()));  // dedup actually fired
}

// The same source compiled in arena and per-node-heap mode yields identical
// fingerprints (full, signature, preamble) and identical referenced-name
// sets — the arena must be invisible to the incremental dirty-bit layer.
TEST(AstArena, FingerprintsIdenticalAcrossAllocModes) {
  SynthCorpusOptions opt;
  opt.functions = 40;
  opt.seed = 99;
  const std::string text = GenerateSynthCorpus(opt);
  auto arena = CompileOk(text, /*heap=*/false);
  auto heap = CompileOk(text, /*heap=*/true);
  EXPECT_EQ(FingerprintPreamble(arena->prog), FingerprintPreamble(heap->prog));
  ASSERT_EQ(arena->prog.funcs.size(), heap->prog.funcs.size());
  for (size_t i = 0; i < arena->prog.funcs.size(); ++i) {
    const FuncDecl* fa = arena->prog.funcs[i];
    const FuncDecl* fh = heap->prog.funcs[i];
    ASSERT_EQ(fa->name, fh->name);
    if (fa->body == nullptr) {
      continue;
    }
    FunctionFingerprint a = FingerprintFunctionFull(arena->prog, fa);
    FunctionFingerprint h = FingerprintFunctionFull(heap->prog, fh);
    EXPECT_EQ(a.full, h.full) << fa->name;
    EXPECT_EQ(a.sig, h.sig) << fa->name;
    EXPECT_EQ(a.refs, h.refs) << fa->name;
  }
}

// Relative-id mixing makes the fingerprint independent of where a function
// sits in the module: shifting a function down the slabs (by adding code
// before it) must not change its fingerprint.
TEST(AstArena, FingerprintIgnoresSlabPosition) {
  const std::string fn_def = "int stable(int n) { return n * 2 + 1; }\n";
  auto base = CompileOk(fn_def);
  auto shifted = CompileOk(
      "void filler(int n) { int x; x = n + 3; g_pad = x; }\nint g_pad;\n" + fn_def);
  const FuncDecl* f1 = base->prog.FindFunc("stable");
  const FuncDecl* f2 = shifted->prog.FindFunc("stable");
  ASSERT_NE(f1, nullptr);
  ASSERT_NE(f2, nullptr);
  EXPECT_NE(f1->expr_begin, f2->expr_begin);  // it really did move
  EXPECT_EQ(FingerprintFunction(base->prog, f1), FingerprintFunction(shifted->prog, f2));
}

// ReplaceFunction splices a new definition into a live session: the edited
// function's fingerprint changes, untouched functions keep theirs, and the
// re-analysis matches a cold session over the edited source.
TEST(AstArena, ReplaceFunctionSplicesAndRefingerprints) {
  SynthCorpusOptions opt;
  opt.functions = 30;
  opt.seed = 7;
  const std::string text = GenerateSynthCorpus(opt);
  const std::string target = SynthFuncName(5);
  const std::string new_def =
      "void " + target + "(int n) {\n  int pad[8]; pad[0] = n;\n  msleep(n);\n}\n";

  PipelineBuilder b;
  b.Tool("blockstop").Tool("stackcheck");
  b.ForEachModule({{"m", {SourceFile{"m.mc", text}}}});
  AnalysisSession session = b.BuildSession();
  session.Run();

  const Compilation* before = session.CompilationFor("m");
  ASSERT_NE(before, nullptr);
  const FuncDecl* fn_before = before->prog.FindFunc(target);
  ASSERT_NE(fn_before, nullptr);
  const uint64_t fp_before = FingerprintFunction(before->prog, fn_before);
  const FuncDecl* other_before = before->prog.FindFunc(SynthFuncName(9));
  ASSERT_NE(other_before, nullptr);
  const uint64_t fp_other = FingerprintFunction(before->prog, other_before);

  ASSERT_TRUE(session.ReplaceFunction("m", target, new_def));
  SessionResult warm = session.Run();

  const Compilation* after = session.CompilationFor("m");
  ASSERT_NE(after, nullptr);
  const FuncDecl* fn_after = after->prog.FindFunc(target);
  ASSERT_NE(fn_after, nullptr);
  EXPECT_NE(FingerprintFunction(after->prog, fn_after), fp_before);
  const FuncDecl* other_after = after->prog.FindFunc(SynthFuncName(9));
  ASSERT_NE(other_after, nullptr);
  EXPECT_EQ(FingerprintFunction(after->prog, other_after), fp_other);

  // Cold reference: a fresh session over the already-edited source.
  size_t pos = text.find("void " + target + "(int n)");
  ASSERT_NE(pos, std::string::npos);
  size_t end = text.find("\n}\n", pos);
  ASSERT_NE(end, std::string::npos);
  std::string edited = text.substr(0, pos) + new_def + text.substr(end + 3);
  PipelineBuilder cb;
  cb.Tool("blockstop").Tool("stackcheck");
  cb.ForEachModule({{"m", {SourceFile{"m.mc", edited}}}});
  AnalysisSession cold = cb.BuildSession();
  SessionResult cold_result = cold.Run();
  ASSERT_EQ(warm.findings.size(), cold_result.findings.size());
  for (size_t i = 0; i < warm.findings.size(); ++i) {
    EXPECT_EQ(warm.findings[i].ToString(), cold_result.findings[i].ToString());
  }
}

// Prelude intern sharing: the second module compiled against one
// FrontendCache seeds its interner from the first module's snapshot, and
// fingerprints match an unshared compile exactly.
TEST(AstArena, PreludeInternSnapshotSharing) {
  PipelineBuilder b;
  Pipeline p = b.Build();
  FrontendCache cache;
  const std::string text = "int f(int n) { return n + 41; }\n";
  auto first = p.Compile({SourceFile{"a.mc", text}}, &cache);
  ASSERT_TRUE(first->ok) << first->Errors();
  ASSERT_NE(cache.prelude_interns, nullptr);
  EXPECT_EQ(cache.intern_seeds, 0);
  auto second = p.Compile({SourceFile{"b.mc", text}}, &cache);
  ASSERT_TRUE(second->ok) << second->Errors();
  EXPECT_EQ(cache.intern_seeds, 1);
  auto lone = p.Compile({SourceFile{"c.mc", text}});
  ASSERT_TRUE(lone->ok);
  const FuncDecl* fs = second->prog.FindFunc("f");
  const FuncDecl* fl = lone->prog.FindFunc("f");
  ASSERT_NE(fs, nullptr);
  ASSERT_NE(fl, nullptr);
  EXPECT_EQ(FingerprintFunction(second->prog, fs), FingerprintFunction(lone->prog, fl));
  EXPECT_EQ(FingerprintPreamble(second->prog), FingerprintPreamble(lone->prog));
}

// Parse-error fuzz: random truncations and byte mutations of a valid module
// must never crash the frontend (POD arena nodes make error-path leaks
// impossible by construction; sanitizer CI jobs run this same loop), and
// diagnostics must be deterministic — the same broken input renders the
// same errors twice.
TEST(AstArena, ParseErrorFuzzIsCrashFreeAndDeterministic) {
  SynthCorpusOptions opt;
  opt.functions = 12;
  opt.seed = 3;
  const std::string base = GenerateSynthCorpus(opt);
  uint64_t rng = 0x9e3779b97f4a7c15ULL;  // fixed seed: failures must replay
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const char kJunk[] = "({)}*;&b0\"'";
  for (int round = 0; round < 60; ++round) {
    std::string text = base;
    if (round % 2 == 0) {
      text.resize(next() % text.size());  // truncation
    } else {
      for (int m = 0; m < 4; ++m) {  // scattered mutations
        text[next() % text.size()] = kJunk[next() % (sizeof(kJunk) - 1)];
      }
    }
    auto one = CompileMode(text, /*heap=*/false);
    auto two = CompileMode(text, /*heap=*/false);
    EXPECT_EQ(one->Errors(), two->Errors()) << "diagnostics not deterministic";
  }
}

}  // namespace
}  // namespace ivy
