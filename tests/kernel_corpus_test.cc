// Compiles and boots the synthetic kernel corpus under every tool
// configuration — the reproduction's core integration test.
#include <gtest/gtest.h>

#include "src/kernel/corpus.h"

namespace ivy {
namespace {

TEST(KernelCorpus, CompilesWithDeputy) {
  ToolConfig cfg;
  auto comp = CompileKernel(cfg);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  EXPECT_GT(comp->check_stats.TotalEmitted(), 0);
  EXPECT_GT(comp->check_stats.TotalDischarged(), 0);
}

TEST(KernelCorpus, CompilesWithErasure) {
  ToolConfig cfg;
  cfg.deputy = false;
  auto comp = CompileKernel(cfg);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  EXPECT_EQ(comp->check_stats.TotalEmitted(), 0);
}

TEST(KernelCorpus, BootsAndRunsCleanly) {
  ToolConfig cfg;
  auto comp = CompileKernel(cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult boot = vm->Call("boot_kernel", {5});
  ASSERT_TRUE(boot.ok) << TrapKindName(boot.trap) << " @ "
                       << comp->sm.Render(boot.trap_loc) << ": " << boot.trap_msg;
  EXPECT_NE(vm->log().find("ivy-linux booted"), std::string::npos);
}

TEST(KernelCorpus, BootVerifiesAllFreesUnderCCount) {
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileKernel(cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult boot = vm->Call("boot_kernel", {10});
  ASSERT_TRUE(boot.ok) << TrapKindName(boot.trap) << " @ "
                       << comp->sm.Render(boot.trap_loc) << ": " << boot.trap_msg;
  const HeapStats& stats = vm->heap().stats();
  EXPECT_GT(stats.frees_attempted, 100);
  EXPECT_EQ(stats.frees_bad, 0) << "boot frees must all verify (E3)";
}

TEST(KernelCorpus, LightUseHasResidualBadFrees) {
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileKernel(cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("boot_kernel", {5}).ok);
  VmResult use = vm->Call("light_use", {64});
  ASSERT_TRUE(use.ok) << TrapKindName(use.trap) << " @ "
                      << comp->sm.Render(use.trap_loc) << ": " << use.trap_msg;
  const HeapStats& stats = vm->heap().stats();
  EXPECT_GT(stats.frees_bad, 0) << "the tcp_reset bad-free path must fire";
  double ratio = vm->heap().GoodFreeRatio();
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.0);
}

TEST(KernelCorpus, HbenchEntryPointsRun) {
  ToolConfig cfg;
  auto comp = CompileKernel(cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("boot_kernel", {2}).ok);
  ASSERT_TRUE(vm->Call("hb_setup").ok);
  const char* benches[] = {
      "hb_bw_file_rd", "hb_bw_mem_rd",  "hb_bw_mem_wr",   "hb_bw_mmap_rd", "hb_bw_pipe",
      "hb_bw_tcp",     "hb_lat_connect", "hb_lat_ctx",    "hb_lat_ctx2",   "hb_lat_fs",
      "hb_lat_fslayer", "hb_lat_mmap",  "hb_lat_pipe",    "hb_lat_proc",   "hb_lat_rpc",
      "hb_lat_sig",    "hb_lat_syscall", "hb_lat_tcp",    "hb_lat_udp",
  };
  for (const char* name : benches) {
    VmResult r = vm->Call(name, {4});
    EXPECT_TRUE(r.ok) << name << ": " << TrapKindName(r.trap) << " @ "
                      << comp->sm.Render(r.trap_loc) << ": " << r.trap_msg;
  }
  VmResult bz = vm->Call("hb_bw_bzero", {4096, 4});
  EXPECT_TRUE(bz.ok) << bz.trap_msg;
  VmResult cp = vm->Call("hb_bw_mem_cp", {4096, 4});
  EXPECT_TRUE(cp.ok) << cp.trap_msg;
}

}  // namespace
}  // namespace ivy
