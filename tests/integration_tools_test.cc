// Cross-tool integration: all three soundness tools cooperating on one
// program, exactly the paper's composition story — Deputy's type safety makes
// the points-to analysis sound, CCount protects the heap the other analyses
// assume, and the run-time halves back up the static halves.
#include <gtest/gtest.h>

#include "src/annodb/annodb.h"
#include "src/blockstop/blockstop.h"
#include "src/driver/compiler.h"
#include "src/kernel/corpus.h"
#include "src/tool/analysis_context.h"

namespace ivy {
namespace {

TEST(Integration, AllToolsOnOneDriver) {
  const char* src = R"(
    // A toy driver exercising all three tools at once.
    typedef int ring_op(struct ring* r, int v);

    struct ring {
      int cap;
      int head;
      int lock;
      int* count(cap) opt slots;
      ring_op* opt push;
    };

    struct ring* opt the_ring;

    int ring_push(struct ring* r, int v) {
      spin_lock(&r->lock);
      if (r->head < r->cap) {
        int* count(r->cap) opt s = r->slots;
        if (s) {
          s[r->head] = v;
          r->head = r->head + 1;
        }
      }
      spin_unlock(&r->lock);
      return r->head;
    }

    int ring_create(int cap) {
      struct ring* r = (struct ring*)kmalloc(sizeof(struct ring), GFP_KERNEL);
      if (!r) { return -12; }
      r->cap = cap;
      r->slots = (int*)kmalloc(cap * sizeof(int), GFP_KERNEL);
      r->push = ring_push;
      the_ring = r;
      return 0;
    }

    int ring_destroy(void) {
      struct ring* opt r = the_ring;
      if (!r) { return -22; }
      the_ring = null;
      int* opt s = r->slots;
      r->slots = null;
      r->push = null;
      kfree((void*)s);
      kfree(r);
      return 0;
    }

    int main(void) {
      if (ring_create(16) != 0) { return -1; }
      struct ring* opt r = the_ring;
      if (!r) { return -2; }
      ring_op* opt op = r->push;
      if (op) {
        for (int i = 0; i < 16; i++) { op(r, i * i); }
      }
      int used = r->head;
      if (ring_destroy() != 0) { return -3; }
      return used * 100 + __bad_frees();
    }
  )";
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();

  // Dynamic: runs clean, all frees verify.
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  ASSERT_TRUE(r.ok) << TrapKindName(r.trap) << ": " << r.trap_msg;
  EXPECT_EQ(r.value, 1600);
  EXPECT_EQ(vm->heap().stats().frees_good, 2);

  // Static: the ring_push fn-ptr resolves, and no blocking-in-atomic exists
  // (kmalloc(GFP_KERNEL) happens outside the lock).
  AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
  BlockStop bs(&comp->prog, comp->sema.get(), &ctx.callgraph());
  BlockStopReport report = bs.Run();
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.mayblock.count("ring_create"), 1u);  // GFP_KERNEL alloc
  EXPECT_EQ(report.mayblock.count("ring_push"), 0u);    // lock-only path
}

TEST(Integration, BuggyVariantCaughtByAllThree) {
  const char* src = R"(
    struct item { struct item* opt next; int v; };
    struct item* opt inventory;
    int lk;

    // Bug 1 (BlockStop): allocates with GFP_KERNEL under a spinlock.
    int restock(void) {
      spin_lock(&lk);
      struct item* it = (struct item*)kmalloc(sizeof(struct item), GFP_ATOMIC);
      if (it) {
        it->next = inventory;
        inventory = it;
      }
      spin_unlock(&lk);
      return 0;
    }

    // Bug 2 (CCount): frees the head while the list still links it.
    int shrink(void) {
      struct item* opt head = inventory;
      if (!head) { return 0; }
      kfree(head);   // inventory still points at it
      return __bad_frees();
    }

    // Bug 3 (Deputy): off-by-one over a counted buffer.
    int tally(int* count(n) book, int n) {
      int s = 0;
      int i = 0;
      while (i <= n) {   // <= : one past the end
        s += book[i];
        i = i + 1;
      }
      return s;
    }

    int main(void) {
      restock();
      int bad = shrink();
      int book[4];
      return bad + tally(book, 4);
    }
  )";
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();

  // Deputy's run-time check stops the overrun (after CCount logged the bad
  // free without stopping the kernel — log-and-leak semantics).
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kBounds);
  EXPECT_EQ(vm->heap().stats().frees_bad, 1);
}

TEST(Integration, CorpusRunsUnderEveryToolCombination) {
  for (int mode = 0; mode < 8; ++mode) {
    ToolConfig cfg;
    cfg.deputy = (mode & 1) != 0;
    cfg.ccount = (mode & 2) != 0;
    cfg.smp = (mode & 4) != 0;
    auto comp = CompileKernel(cfg);
    ASSERT_TRUE(comp->ok) << "mode " << mode << "\n" << comp->Errors();
    auto vm = MakeVm(*comp);
    VmResult boot = vm->Call("boot_kernel", {3});
    ASSERT_TRUE(boot.ok) << "mode " << mode << ": " << boot.trap_msg;
    VmResult use = vm->Call("light_use", {8});
    ASSERT_TRUE(use.ok) << "mode " << mode << ": " << use.trap_msg;
  }
}

TEST(Integration, AnnoDbRoundTripOnCorpus) {
  auto comp = CompileKernel(ToolConfig{});
  ASSERT_TRUE(comp->ok);
  AnalysisContext ctx(comp.get(), /*field_sensitive=*/false);
  BlockStop bs(&comp->prog, comp->sema.get(), &ctx.callgraph());
  BlockStopReport report = bs.Run();
  AnnoDb db = AnnoDb::Extract(comp->prog, *comp->sema, comp->module, &report);
  EXPECT_GT(db.funcs().size(), 100u);
  EXPECT_GT(db.records().size(), 15u);
  std::string err;
  AnnoDb back = AnnoDb::FromJson(Json::Parse(db.ToJson().Dump(), &err));
  EXPECT_TRUE(err.empty());
  EXPECT_EQ(back.funcs().size(), db.funcs().size());
  EXPECT_TRUE(back.funcs().at("read_chan").may_block);
  EXPECT_TRUE(back.funcs().at("read_chan").noblock);
}

TEST(Integration, DeterministicAcrossCompilations) {
  // Two independent compilations and runs of the same corpus produce
  // identical cycle counts — the reproducibility claim behind every table.
  ToolConfig cfg;
  cfg.ccount = true;
  auto c1 = CompileKernel(cfg);
  auto c2 = CompileKernel(cfg);
  ASSERT_TRUE(c1->ok && c2->ok);
  auto v1 = MakeVm(*c1);
  auto v2 = MakeVm(*c2);
  VmResult r1 = v1->Call("boot_kernel", {7});
  VmResult r2 = v2->Call("boot_kernel", {7});
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(v1->heap().stats().frees_good, v2->heap().stats().frees_good);
}

}  // namespace
}  // namespace ivy
