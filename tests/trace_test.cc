// ivytrace (src/support/trace.h): the observability layer's own contracts.
//
//   1. Concurrent span emission is safe (this file runs under TSan in CI)
//      and loses nothing below the ring capacity.
//   2. Per-thread rings are bounded: past kRingCapacity the oldest spans are
//      overwritten, never reallocated, and the newest survive.
//   3. The Chrome trace_event export is real JSON — names with quotes,
//      backslashes, and control bytes round-trip through Json::Parse.
//   4. Histogram percentiles match a sorted-vector reference evaluated at
//      the same rank, and never under-report (bucket upper bounds).
//   5. The determinism contract: tracing + metrics on vs off yields
//      byte-identical findings and summaries for a linked session run and
//      for an in-process AnnodServer epoch.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/server/epoch.h"
#include "src/server/server.h"
#include "src/support/json.h"
#include "src/support/trace.h"
#include "src/tool/session.h"
#include "tools/synth_common.h"

namespace ivy {
namespace {

// Every test leaves tracing off and the rings/metrics empty for the next.
struct TraceGuard {
  ~TraceGuard() {
    trace::SetEnabled(false);
    trace::ResetForTest();
  }
};

size_t CountEvents(const Json& root, const std::string& name) {
  const Json* events = root.Find("traceEvents");
  if (events == nullptr) {
    return 0;
  }
  size_t n = 0;
  for (const Json& ev : events->array()) {
    const Json* ev_name = ev.Find("name");
    if (ev_name != nullptr && ev_name->AsString() == name) {
      ++n;
    }
  }
  return n;
}

TEST(TraceSpan, DisabledSpansRecordNothing) {
  TraceGuard guard;
  trace::ResetForTest();
  ASSERT_FALSE(trace::Enabled());
  {
    TRACE_SPAN("t.off", {"k", int64_t{1}});
  }
  EXPECT_EQ(CountEvents(trace::TraceSink::ToJson(), "t.off"), 0u);
}

TEST(TraceSpan, ConcurrentEmissionIsCompleteUnderCapacity) {
  TraceGuard guard;
  trace::ResetForTest();
  trace::SetEnabled(true);

  constexpr int kThreads = 8;
  constexpr int kSpansEach = 200;  // well under the 4096-event ring
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        TRACE_SPAN("t.concurrent", {"i", static_cast<int64_t>(i)});
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }

  Json root = trace::TraceSink::ToJson();
  EXPECT_EQ(CountEvents(root, "t.concurrent"),
            static_cast<size_t>(kThreads) * kSpansEach);

  // Events within one tid must be start-ordered (the export sorts globally;
  // a steady clock makes per-thread order a real invariant).
  const Json* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  double last_ts = -1.0;
  for (const Json& ev : events->array()) {
    double ts = ev.Find("ts")->AsDouble();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
}

TEST(TraceSpan, RingWrapsKeepingNewestSpans) {
  TraceGuard guard;
  trace::ResetForTest();
  trace::SetEnabled(true);

  constexpr int kEmit = 5000;  // past the 4096 ring capacity
  for (int i = 0; i < kEmit; ++i) {
    trace::Span span("t.wrap." + std::to_string(i));
  }

  Json root = trace::TraceSink::ToJson();
  // The oldest overflowed out; the newest survived.
  EXPECT_EQ(CountEvents(root, "t.wrap.0"), 0u);
  EXPECT_EQ(CountEvents(root, "t.wrap." + std::to_string(kEmit - 1)), 1u);

  size_t wrap_events = 0;
  for (const Json& ev : root.Find("traceEvents")->array()) {
    const std::string& name = ev.Find("name")->AsString();
    if (name.rfind("t.wrap.", 0) == 0) {
      ++wrap_events;
    }
  }
  EXPECT_EQ(wrap_events, 4096u);  // exactly the ring capacity, no growth
}

TEST(TraceSpan, ExportEscapesHostileNamesAndParsesBack) {
  TraceGuard guard;
  trace::ResetForTest();
  trace::SetEnabled(true);

  const std::string hostile = "q\"b\\s\n\tx";
  {
    trace::Span span(hostile);
  }
  {
    trace::Span span("t.args", {"edge", INT64_MIN}, {"zero", int64_t{0}});
  }

  std::string text = trace::TraceSink::ToJson().Dump(-1);
  std::string err;
  Json parsed = Json::Parse(text, &err);
  ASSERT_TRUE(err.empty()) << err;

  EXPECT_EQ(CountEvents(parsed, hostile), 1u);
  // Args survive with full int64 range.
  bool found_args = false;
  for (const Json& ev : parsed.Find("traceEvents")->array()) {
    if (ev.Find("name")->AsString() == "t.args") {
      const Json* args = ev.Find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->Find("edge")->AsInt(), INT64_MIN);
      EXPECT_EQ(args->Find("zero")->AsInt(), 0);
      found_args = true;
    }
  }
  EXPECT_TRUE(found_args);
}

TEST(TraceSpan, LongNamesTruncateAtCapacity) {
  TraceGuard guard;
  trace::ResetForTest();
  trace::SetEnabled(true);

  const std::string longname(200, 'n');
  {
    trace::Span span(longname);
  }
  EXPECT_EQ(CountEvents(trace::TraceSink::ToJson(),
                        longname.substr(0, trace::Event::kNameCap)),
            1u);
}

// ---------------------------------------------------------------------------
// Histogram percentiles vs a sorted-vector reference
// ---------------------------------------------------------------------------

// What Percentile(p) must return, computed from the raw samples: find the
// rank-th smallest sample (same rank rule as the implementation documents),
// then report its bucket's upper bound.
uint64_t ReferencePercentile(std::vector<uint64_t> samples, double p) {
  std::sort(samples.begin(), samples.end());
  uint64_t n = samples.size();
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank < 1) {
    rank = 1;
  }
  if (rank > n) {
    rank = n;
  }
  uint64_t sample = samples[rank - 1];
  return trace::Histogram::BucketUpperBound(trace::Histogram::BucketIndex(sample));
}

TEST(TraceHistogram, PercentilesMatchSortedReference) {
  // Deterministic LCG spread over several octaves plus the exact range.
  std::vector<uint64_t> samples;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 10000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    samples.push_back((x >> 33) % 1000000);  // 0 .. 1e6: exact + log buckets
  }

  trace::Histogram h;
  uint64_t sum = 0;
  for (uint64_t s : samples) {
    h.Record(s);
    sum += s;
  }
  EXPECT_EQ(h.Count(), samples.size());
  EXPECT_EQ(h.Sum(), sum);

  for (double p : {0.0, 1.0, 25.0, 50.0, 75.0, 95.0, 99.0, 99.9, 100.0}) {
    EXPECT_EQ(h.Percentile(p), ReferencePercentile(samples, p)) << "p=" << p;
  }

  // Pessimism: the reported percentile never under-reports the true sample
  // at that rank (bucket upper bounds), and log-bucket error stays < 25%.
  std::vector<uint64_t> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {50.0, 95.0, 99.0}) {
    uint64_t rank = static_cast<uint64_t>(p / 100.0 * sorted.size());
    uint64_t truth = sorted[rank - 1];
    uint64_t reported = h.Percentile(p);
    EXPECT_GE(reported, truth);
    EXPECT_LE(reported, truth + truth / 4 + 1);
  }
}

TEST(TraceHistogram, ExactBucketsBelowSixteen) {
  trace::Histogram h;
  for (uint64_t v = 0; v < 16; ++v) {
    h.Record(v);
  }
  // With one sample per value 0..15, every percentile is exact.
  EXPECT_EQ(h.Percentile(100), 15u);
  EXPECT_EQ(h.Percentile(50), 7u);
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(trace::Histogram::BucketUpperBound(trace::Histogram::BucketIndex(v)), v);
  }
}

TEST(TraceHistogram, BucketBoundsAreConsistent) {
  // Every value maps to a bucket whose upper bound is >= the value and
  // whose index is monotone in the value.
  int last_idx = -1;
  for (uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 31ull, 32ull, 100ull,
                     1000ull, 65535ull, 65536ull, 1ull << 40, ~0ull >> 1}) {
    int idx = trace::Histogram::BucketIndex(v);
    EXPECT_GE(idx, last_idx);
    EXPECT_GE(trace::Histogram::BucketUpperBound(idx), v);
    last_idx = idx;
  }
}

TEST(TraceMetrics, RegistryRendersDeterministically) {
  TraceGuard guard;
  trace::ResetForTest();
  trace::GetCounter("ztest.count")->Add(3);
  trace::GetGauge("ztest.gauge")->RecordMax(7);
  trace::GetGauge("ztest.gauge")->RecordMax(5);  // max keeps 7
  trace::GetHistogram("ztest.hist_us")->Record(100);

  std::string rendered = trace::RenderMetrics();
  EXPECT_NE(rendered.find("ztest.count 3\n"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("ztest.gauge 7\n"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("ztest.hist_us count=1"), std::string::npos) << rendered;
  // Same registry, same bytes.
  EXPECT_EQ(rendered, trace::RenderMetrics());
}

// ---------------------------------------------------------------------------
// The determinism contract: tracing observes, never decides
// ---------------------------------------------------------------------------

LinkedCorpusOptions PropertyCorpus(uint64_t seed) {
  LinkedCorpusOptions opt;
  opt.modules = 3;
  opt.functions = 16;
  opt.seed = seed;
  return opt;
}

// Canonical byte form of a converged run: every summary row, then every
// finding, exactly the bytes the link fixpoint itself diffs.
std::string CanonicalRun(const LinkedCorpusOptions& opt) {
  AnalysisSession session =
      SynthServePipeline().ForEachModule(GenerateLinkedCorpus(opt)).BuildSession();
  SessionResult result = session.RunLinked();
  EXPECT_EQ(result.compile_failures, 0);
  EXPECT_TRUE(session.link_stats().converged);
  auto snap = BuildEpochSnapshot(1, result, session.link_table());
  std::string out;
  for (const std::string& row : snap->summaries_canon) {
    out += row;
    out += '\n';
  }
  for (const std::string& row : snap->findings_canon) {
    out += row;
    out += '\n';
  }
  return out;
}

TEST(TraceDeterminism, SessionRunIsByteIdenticalTracedVsUntraced) {
  TraceGuard guard;
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    trace::SetEnabled(false);
    std::string untraced = CanonicalRun(PropertyCorpus(seed));

    trace::ResetForTest();
    trace::SetEnabled(true);
    std::string traced = CanonicalRun(PropertyCorpus(seed));
    trace::SetEnabled(false);

    ASSERT_FALSE(untraced.empty());
    EXPECT_EQ(untraced, traced) << "seed " << seed;
  }
}

std::string ServerEpochBytes(bool traced, const LinkedCorpusOptions& opt) {
  trace::SetEnabled(traced);
  AnnodServer::Options sopts;
  sopts.pipeline = SynthServePipeline().Build();
  AnnodServer server(std::move(sopts));
  EXPECT_TRUE(server.OpenCorpus("synth"));
  for (ModuleSources& mod : GenerateLinkedCorpus(opt)) {
    EXPECT_TRUE(server.EnqueueUpsert("synth", std::move(mod)));
  }
  EXPECT_GT(server.SyncEpoch("synth"), 0u);
  auto snap = server.Snapshot("synth");
  EXPECT_NE(snap, nullptr);
  trace::SetEnabled(false);
  if (snap == nullptr) {
    return std::string();
  }
  std::string out;
  for (const std::string& row : snap->summaries_canon) {
    out += row;
    out += '\n';
  }
  for (const std::string& row : snap->findings_canon) {
    out += row;
    out += '\n';
  }
  return out;
}

TEST(TraceDeterminism, ServerEpochIsByteIdenticalTracedVsUntraced) {
  TraceGuard guard;
  LinkedCorpusOptions opt = PropertyCorpus(11);
  std::string untraced = ServerEpochBytes(false, opt);
  trace::ResetForTest();
  std::string traced = ServerEpochBytes(true, opt);
  ASSERT_FALSE(untraced.empty());
  EXPECT_EQ(untraced, traced);
}

TEST(TraceDeterminism, TracedRunActuallyRecordsSessionSpans) {
  // Guard against the instrumentation silently rotting: a traced linked run
  // must leave link-round spans and solve counters behind.
  TraceGuard guard;
  trace::ResetForTest();
  trace::SetEnabled(true);
  CanonicalRun(PropertyCorpus(3));
  trace::SetEnabled(false);

  EXPECT_GE(CountEvents(trace::TraceSink::ToJson(), "session.link_round"), 1u);
  EXPECT_GT(trace::GetCounter("session.solve_cold")->Value() +
                trace::GetCounter("session.solve_warm")->Value(),
            0u);
}

}  // namespace
}  // namespace ivy
