// Differential property tests for the ivybc bytecode VM: every program that
// runs through the tree-walking Vm must produce a byte-identical VmResult —
// value, trap kind/location/message, cycles, steps — plus identical logs,
// lock facts, and heap statistics when run through BcVm. The corpus spans
// the vm_test runtime programs, the synthetic kernel, seeded synth-corpus
// programs, and serialized images decoded back from bytes; a seeded fuzz
// sweep then checks that corrupt images are rejected by DecodeBcImage or
// VerifyBcModule instead of reaching the interpreter.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/bc/bcvm.h"
#include "src/bc/bytecode.h"
#include "src/bc/compile.h"
#include "src/bc/verify.h"
#include "src/driver/compiler.h"
#include "src/kernel/corpus.h"
#include "src/support/rng.h"
#include "tests/synth_corpus.h"

namespace ivy {
namespace {

struct CallSpec {
  std::string fn;
  std::vector<int64_t> args;
};

void ExpectSameResult(const VmResult& t, const VmResult& b, const std::string& what) {
  EXPECT_EQ(t.ok, b.ok) << what;
  EXPECT_EQ(t.value, b.value) << what;
  EXPECT_EQ(t.trap, b.trap) << what << ": tree=" << TrapKindName(t.trap)
                            << " bc=" << TrapKindName(b.trap);
  EXPECT_EQ(t.trap_loc.file, b.trap_loc.file) << what;
  EXPECT_EQ(t.trap_loc.line, b.trap_loc.line) << what;
  EXPECT_EQ(t.trap_loc.col, b.trap_loc.col) << what;
  EXPECT_EQ(t.trap_msg, b.trap_msg) << what;
  EXPECT_EQ(t.cycles, b.cycles) << what;
  EXPECT_EQ(t.steps, b.steps) << what;
}

void ExpectSameMachine(const Machine& t, const Machine& b, const std::string& what) {
  EXPECT_EQ(t.log(), b.log()) << what;
  EXPECT_EQ(t.cycles(), b.cycles()) << what;
  EXPECT_EQ(t.steps(), b.steps()) << what;
  EXPECT_EQ(t.irqs_enabled(), b.irqs_enabled()) << what;
  EXPECT_EQ(t.context_switches(), b.context_switches()) << what;
  EXPECT_EQ(t.might_sleep_checks(), b.might_sleep_checks()) << what;
  EXPECT_EQ(t.lock_order_edges(), b.lock_order_edges()) << what;

  std::map<uint64_t, std::tuple<bool, bool, bool>> tu, bu;
  for (const auto& [addr, u] : t.lock_usage()) {
    tu[addr] = {u.in_irq, u.process_irqs_on, u.process_irqs_off};
  }
  for (const auto& [addr, u] : b.lock_usage()) {
    bu[addr] = {u.in_irq, u.process_irqs_on, u.process_irqs_off};
  }
  EXPECT_EQ(tu, bu) << what;

  const HeapStats& th = t.heap().stats();
  const HeapStats& bh = b.heap().stats();
  EXPECT_EQ(th.allocs, bh.allocs) << what;
  EXPECT_EQ(th.frees_attempted, bh.frees_attempted) << what;
  EXPECT_EQ(th.frees_good, bh.frees_good) << what;
  EXPECT_EQ(th.frees_bad, bh.frees_bad) << what;
  EXPECT_EQ(th.frees_deferred, bh.frees_deferred) << what;
  EXPECT_EQ(th.bytes_live, bh.bytes_live) << what;
  EXPECT_EQ(th.bytes_peak, bh.bytes_peak) << what;
  EXPECT_EQ(th.rc_increments, bh.rc_increments) << what;
  EXPECT_EQ(th.rc_decrements, bh.rc_decrements) << what;
  EXPECT_EQ(t.heap().bad_free_sites().size(), b.heap().bad_free_sites().size()) << what;
}

// Runs the same call sequence through a fresh tree VM and a fresh bytecode
// VM over one compilation and asserts every observable matches.
void DiffCalls(const Compilation& comp, const std::vector<CallSpec>& calls,
               VmConfig vcfg, const std::string& what) {
  auto tree = MakeVm(comp, vcfg);
  std::string err;
  auto bc = MakeBcVm(comp, vcfg, nullptr, &err);
  ASSERT_NE(bc, nullptr) << what << ": " << err;
  ASSERT_TRUE(VerifyBcModule(bc->module(), &err)) << what << ": " << err;
  for (const CallSpec& c : calls) {
    VmResult rt = tree->Call(c.fn, c.args);
    VmResult rb = bc->Call(c.fn, c.args);
    ExpectSameResult(rt, rb, what + " call " + c.fn);
  }
  ExpectSameMachine(*tree, *bc, what + " final state");
}

void DiffSrc(const std::string& src, ToolConfig cfg, VmConfig vcfg,
             const std::string& what) {
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << what << ":\n" << comp->Errors();
  DiffCalls(*comp, {{"main", {}}}, vcfg, what);
}

std::vector<ToolConfig> AllToolConfigs() {
  ToolConfig deputy;
  ToolConfig erased;
  erased.deputy = false;
  ToolConfig ccount;
  ccount.ccount = true;
  ToolConfig full;
  full.ccount = true;
  full.smp = true;
  full.track_locals = true;
  return {deputy, erased, ccount, full};
}

// The vm_test runtime programs plus extra arithmetic/trap/indirection
// coverage, each run under every tool configuration. Several of these trap
// on purpose; the assertion is identity, not success.
TEST(BcDiff, RuntimePrograms) {
  const struct {
    const char* name;
    const char* src;
  } programs[] = {
      {"irq_nesting", R"(
        int main(void) {
          int before = irqs_disabled();
          int f1 = local_irq_save();
          int inside = irqs_disabled();
          int f2 = local_irq_save();
          local_irq_restore(f2);
          int still = irqs_disabled();
          local_irq_restore(f1);
          int after = irqs_disabled();
          return before * 1000 + inside * 100 + still * 10 + after;
        })"},
      {"deadlock", R"(
        int lk;
        int main(void) { spin_lock(&lk); spin_lock(&lk); return 0; })"},
      {"unlock_unheld", "int lk; int main(void) { spin_unlock(&lk); return 0; }"},
      {"trigger_irq", R"(
        typedef void h_fn(int x);
        int seen_disabled;
        int arg_seen;
        void handler(int x) { arg_seen = x; seen_disabled = irqs_disabled(); }
        int main(void) {
          trigger_irq(handler, 7);
          return arg_seen * 100 + seen_disabled * 10 + irqs_disabled();
        })"},
      {"block_in_handler", R"(
        typedef void h_fn(int x);
        void handler(int x) { schedule(); }
        int main(void) { trigger_irq(handler, 0); return 0; })"},
      {"user_copies", R"(
        int main(void) {
          char out[16];
          char in[16];
          for (int i = 0; i < 16; i++) { out[i] = 'A' + i; }
          copy_to_user(4096, out, 16);
          copy_from_user(in, 4096, 16);
          int ok = 1;
          for (int i = 0; i < 16; i++) { if (in[i] != 'A' + i) { ok = 0; } }
          return ok;
        })"},
      {"printk", R"(
        int main(void) {
          printk("d=%d x=%x c=%c s=%s pct=%% done\n", -5, 255, 'Q', "str");
          return 0;
        })"},
      {"panic", R"(int main(void) { panic("it broke"); return 0; })"},
      {"stack_overflow", R"(
        int deep(int n) {
          int pad[64];
          pad[0] = n;
          return deep(n + 1) + pad[0];
        }
        int main(void) { return deep(0); })"},
      {"heap_churn", R"(
        struct node { int v; struct node* opt next; };
        struct node* opt g;
        int main(void) {
          for (int i = 0; i < 50; i++) {
            struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
            n->v = i;
            g = n;
            g = null;
            kfree(n);
          }
          return 0;
        })"},
      {"wild_pointer", R"(
        int main(void) {
          trusted {
            int* trusted p = (int*)99999999999;
            return *p;
          }
        })"},
      {"lock_order", R"(
        int a;
        int b;
        int main(void) {
          spin_lock(&a);
          spin_lock(&b);
          spin_unlock(&b);
          spin_unlock(&a);
          return 0;
        })"},
      {"global_inits", R"(
        int base = 41;
        char* nullterm tag = "xyz";
        int tail(char* nullterm s) {
          int n = 0;
          while (*s) { s = s + 1; n = n + 1; }
          return n;
        }
        int main(void) { return base + tail(tag); })"},
      {"div_by_zero", R"(
        int z;
        int main(void) { return 7 / z; })"},
      {"rem_by_zero", R"(
        int z;
        int main(void) { return 7 % z; })"},
      {"arith_mix", R"(
        int main(void) {
          int s = 0;
          for (int i = 1; i < 40; i++) {
            s = s + (i * 3) / 2 - (s % i);
            s = s ^ (i << 3);
            s = s | (i & 21);
            s = s + (-i) + ~i + !i;
            if (s > 100000 || s < -100000) { s = s >> 2; }
          }
          return s;
        })"},
      {"indirect_calls", R"(
        typedef int op_fn(int a, int b);
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        op_fn* opt cur;
        int main(void) {
          int s = 0;
          cur = add;
          s = s + cur(3, 4);
          cur = mul;
          s = s + cur(3, 4);
          return s;
        })"},
      {"byte_params", R"(
        int mix(char a, int b, char c) { return a * 100 + b * 10 + c; }
        int main(void) { return mix('A' - 60, 7, 'B' - 60); })"},
      {"array_walk", R"(
        int sum(int* buf, int n) {
          int s = 0;
          for (int i = 0; i < n; i++) { s += buf[i]; }
          return s;
        }
        int main(void) {
          int v[32];
          for (int i = 0; i < 32; i++) { v[i] = i * i; }
          return sum(v, 32);
        })"},
      {"string_walk", R"(
        int len(char* nullterm s) {
          int n = 0;
          while (*s) { s = s + 1; n = n + 1; }
          return n;
        }
        int main(void) { return len("hello world"); })"},
  };
  for (const auto& p : programs) {
    int ci = 0;
    for (const ToolConfig& cfg : AllToolConfigs()) {
      DiffSrc(p.src, cfg, VmConfig{},
              std::string(p.name) + " cfg" + std::to_string(ci++));
    }
  }
}

// Satellite regression: VmConfig::max_steps is enforced by bytecode dispatch
// with the same trap kind, location, and step count as the tree VM.
TEST(BcDiff, MaxStepsParity) {
  auto comp = CompileOne("int main(void) { int s = 0; while (1) { s = s + 1; } return s; }",
                         ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  VmConfig vcfg;
  vcfg.max_steps = 100000;
  auto tree = MakeVm(*comp, vcfg);
  auto bc = MakeBcVm(*comp, vcfg);
  ASSERT_NE(bc, nullptr);
  VmResult rt = tree->Call("main");
  VmResult rb = bc->Call("main");
  EXPECT_FALSE(rt.ok);
  EXPECT_EQ(rt.trap, TrapKind::kTimeout);
  EXPECT_EQ(rt.steps, vcfg.max_steps + 1) << "traps on the first over-budget fetch";
  ExpectSameResult(rt, rb, "watchdog");
}

// Satellite regression: VmConfig::stack_bytes is enforced with the same
// kStackOverflow trap at the same declaration location.
TEST(BcDiff, StackBytesParity) {
  const char* src = R"(
    int deep(int n) {
      int pad[32];
      pad[0] = n;
      return deep(n + 1) + pad[0];
    }
    int main(void) { return deep(0); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  VmConfig vcfg;
  vcfg.stack_bytes = 1 << 14;
  auto tree = MakeVm(*comp, vcfg);
  auto bc = MakeBcVm(*comp, vcfg);
  ASSERT_NE(bc, nullptr);
  VmResult rt = tree->Call("main");
  VmResult rb = bc->Call("main");
  EXPECT_FALSE(rt.ok);
  EXPECT_EQ(rt.trap, TrapKind::kStackOverflow);
  ExpectSameResult(rt, rb, "stack limit");
}

// The synthetic kernel, booted and exercised under every tool configuration:
// the integration-scale identity check.
TEST(BcDiff, KernelCorpus) {
  std::vector<CallSpec> calls = {
      {"boot_kernel", {5}}, {"light_use", {64}},      {"hb_setup", {}},
      {"hb_lat_proc", {40}}, {"hb_bw_pipe", {8}},     {"hb_lat_syscall", {60}},
  };
  int ci = 0;
  for (const ToolConfig& cfg : AllToolConfigs()) {
    auto comp = CompileKernel(cfg);
    ASSERT_TRUE(comp->ok) << comp->Errors();
    DiffCalls(*comp, calls, VmConfig{}, "kernel cfg" + std::to_string(ci++));
  }
}

// Seeded synthetic corpus programs: deep call chains, fn-pointer hooks,
// interrupt handlers, msleep leaves, recursion.
TEST(BcDiff, SynthCorpus) {
  for (uint64_t seed : {3ull, 17ull}) {
    SynthCorpusOptions opt;
    opt.functions = 48;
    opt.seed = seed;
    opt.hook_tables = 2;
    std::string src = GenerateSynthCorpus(opt);
    ToolConfig cfg;
    cfg.ccount = true;
    auto comp = CompileOne(src, cfg);
    ASSERT_TRUE(comp->ok) << comp->Errors();
    std::vector<CallSpec> calls = {{SynthFuncName(0), {3}},
                                   {SynthFuncName(10), {2}},
                                   {SynthFuncName(25), {1}}};
    DiffCalls(*comp, calls, VmConfig{}, "synth seed " + std::to_string(seed));
  }
}

// A compiled module survives Encode -> Decode -> Verify and the decoded
// image (no AST, no frontend artifacts) still runs identically.
TEST(BcDiff, ImageRoundTrip) {
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileKernel(cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  std::string err;
  auto bc = CompileToBc(comp->module, &err);
  ASSERT_NE(bc, nullptr) << err;
  ASSERT_TRUE(VerifyBcModule(*bc, &err)) << err;

  std::string image = EncodeBcImage(*bc);
  EXPECT_GT(image.size(), 8u);
  auto decoded = std::make_shared<BcModule>();
  ASSERT_TRUE(DecodeBcImage(image, decoded.get(), &err)) << err;
  ASSERT_TRUE(VerifyBcModule(*decoded, &err)) << err;
  EXPECT_EQ(EncodeBcImage(*decoded), image) << "re-encode must be stable";

  std::string dis = DisassembleBc(*decoded);
  EXPECT_NE(dis.find("boot_kernel"), std::string::npos);

  auto tree = MakeVm(*comp);
  auto bvm = MakeBcVm(*comp, VmConfig{}, decoded, &err);
  ASSERT_NE(bvm, nullptr) << err;
  for (const CallSpec& c :
       std::vector<CallSpec>{{"boot_kernel", {5}}, {"light_use", {64}}}) {
    ExpectSameResult(tree->Call(c.fn, c.args), bvm->Call(c.fn, c.args),
                     "decoded " + c.fn);
  }
  ExpectSameMachine(*tree, *bvm, "decoded final state");
}

TEST(BcDiff, DecodeRejectsGarbage) {
  std::string err;
  BcModule m;
  EXPECT_FALSE(DecodeBcImage("", &m, &err));
  EXPECT_FALSE(DecodeBcImage("\xA7", &m, &err));
  EXPECT_FALSE(DecodeBcImage("not an image at all", &m, &err));

  auto comp = CompileOne("int main(void) { return 42; }", ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto bc = CompileToBc(comp->module, &err);
  ASSERT_NE(bc, nullptr) << err;
  std::string image = EncodeBcImage(*bc);

  std::string bad_magic = image;
  bad_magic[0] = 0x00;
  EXPECT_FALSE(DecodeBcImage(bad_magic, &m, &err));
  std::string bad_version = image;
  bad_version[2] = static_cast<char>(kBcVersion + 1);
  EXPECT_FALSE(DecodeBcImage(bad_version, &m, &err));
  std::string trailing = image + "x";
  EXPECT_FALSE(DecodeBcImage(trailing, &m, &err)) << "trailing bytes must be rejected";
}

// Fuzz sweep: every strict prefix of a valid image fails to decode, and
// seeded single-byte corruptions are either rejected by decode/verify or —
// when the mutation lands in semantically inert bytes — still run without
// leaving the sandbox (the ASan CI job gives this test its teeth).
TEST(BcDiff, FuzzedImagesRejectedOrContained) {
  const char* src = R"(
    int g = 5;
    int twice(int x) { return x + x; }
    int main(void) {
      int s = g;
      for (int i = 0; i < 10; i++) { s = twice(s) % 1000; }
      printk("s=%d\n", s);
      return s;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  std::string err;
  auto bc = CompileToBc(comp->module, &err);
  ASSERT_NE(bc, nullptr) << err;
  std::string image = EncodeBcImage(*bc);

  for (size_t len = 0; len < image.size(); ++len) {
    BcModule m;
    EXPECT_FALSE(DecodeBcImage(image.substr(0, len), &m, &err))
        << "prefix of length " << len << " decoded";
  }

  Rng rng(0xB17EC0DEull);
  int rejected = 0;
  int contained = 0;
  const int kMutants = 800;
  for (int i = 0; i < kMutants; ++i) {
    std::string mutant = image;
    size_t pos = 8 + rng.Below(mutant.size() - 8);  // keep the header valid
    mutant[pos] = static_cast<char>(rng.Below(256));
    if (mutant == image) {
      continue;
    }
    auto m = std::make_shared<BcModule>();
    if (!DecodeBcImage(mutant, m.get(), &err) || !VerifyBcModule(*m, &err)) {
      ++rejected;
      continue;
    }
    // The verifier accepted it, so executing it must be memory-safe even if
    // the semantics changed (a flipped constant, a renamed function, ...).
    ++contained;
    VmConfig vcfg;
    vcfg.max_steps = 100000;
    vcfg.mem_bytes = 4ull << 20;
    vcfg.stack_bytes = 256 << 10;
    auto bvm = MakeBcVm(*comp, vcfg, m, &err);
    ASSERT_NE(bvm, nullptr) << err;
    (void)bvm->Call("main");
  }
  EXPECT_GT(rejected, kMutants / 2) << "most single-byte corruptions must be caught";
  EXPECT_GT(contained, 0) << "sweep never exercised the accepted-mutant path";
}

// VmConfig::profile is pure observation: the per-opcode counters must not
// perturb a single observable — value, trap, cycles, steps, log, locks,
// heap — across the kernel corpus, while actually counting every dispatched
// instruction (ivytrace's determinism contract, VM edition).
TEST(BcDiff, ProfilingDoesNotPerturbObservables) {
  std::vector<CallSpec> calls = {
      {"boot_kernel", {5}}, {"light_use", {64}}, {"hb_setup", {}},
      {"hb_lat_proc", {40}},
  };
  for (const ToolConfig& cfg : AllToolConfigs()) {
    auto comp = CompileKernel(cfg);
    ASSERT_TRUE(comp->ok) << comp->Errors();

    std::string err;
    auto plain = MakeBcVm(*comp, VmConfig{}, nullptr, &err);
    ASSERT_NE(plain, nullptr) << err;
    VmConfig pcfg;
    pcfg.profile = true;
    auto profiled = MakeBcVm(*comp, pcfg, nullptr, &err);
    ASSERT_NE(profiled, nullptr) << err;

    EXPECT_TRUE(plain->op_profile().empty());
    ASSERT_EQ(profiled->op_profile().size(), static_cast<size_t>(BcOp::kCount_));

    for (const CallSpec& c : calls) {
      VmResult rp = plain->Call(c.fn, c.args);
      VmResult rq = profiled->Call(c.fn, c.args);
      ExpectSameResult(rp, rq, "profile parity call " + c.fn);
    }
    ExpectSameMachine(*plain, *profiled, "profile parity final state");

    // The counters really counted: every counted step is a profiled opcode
    // (implicit returns are profiled but not counted as steps, so the
    // profile total is >= steps).
    uint64_t total = 0;
    for (uint64_t n : profiled->op_profile()) {
      total += n;
    }
    EXPECT_GE(total, static_cast<uint64_t>(profiled->steps()));
    EXPECT_GT(total, 0u);
  }
}

}  // namespace
}  // namespace ivy
