// Tests for the unified ToolPass pipeline API: registry lookup, Requires()
// ordering, the shared AnalysisContext compute-once cache, deterministic
// parallel-vs-serial finding merges, and the unified-findings JSON feeding
// annodb.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/annodb/annodb.h"
#include "src/blockstop/blockstop.h"
#include "src/kernel/corpus.h"
#include "src/stackcheck/stackcheck.h"
#include "src/tool/pipeline.h"
#include "src/tool/registry.h"

namespace ivy {
namespace {

// One program with a known finding for four different tools: a GFP_KERNEL
// allocation under a spinlock (blockstop), an ABBA lock inversion
// (locksafe), a discarded error code (errcheck), and recursion (stackcheck).
const char* kFourBugs = R"(
  struct item { struct item* opt next; int v; };
  struct item* opt inventory;
  int la;
  int lb;

  int restock(void) {
    spin_lock(&la);
    struct item* it = (struct item*)kmalloc(sizeof(struct item), GFP_KERNEL);
    if (it) {
      it->next = inventory;
      inventory = it;
    }
    spin_unlock(&la);
    return 0;
  }

  void path1(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); }
  void path2(void) { spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb); }

  int may_fail(void) errcode(-5) { return -5; }
  void careless(void) { may_fail(); }

  int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
  int main(void) { return fact(3); }
)";

TEST(ToolRegistry, AllSixToolsRegistered) {
  ToolRegistry& reg = ToolRegistry::Instance();
  for (const char* name :
       {"deputy", "ccount", "blockstop", "locksafe", "stackcheck", "errcheck"}) {
    EXPECT_TRUE(reg.Has(name)) << name;
    auto pass = reg.Create(name);
    ASSERT_NE(pass, nullptr) << name;
    EXPECT_EQ(pass->name(), name);
  }
  std::vector<std::string> names = reg.Names();
  EXPECT_GE(names.size(), 6u);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(ToolRegistry, UnknownToolIsAnError) {
  EXPECT_FALSE(ToolRegistry::Instance().Has("fancy-new-tool"));
  EXPECT_EQ(ToolRegistry::Instance().Create("fancy-new-tool"), nullptr);

  // Through the pipeline, an unknown name becomes an error finding rather
  // than a crash or a silent skip.
  Pipeline p = PipelineBuilder().Tool("fancy-new-tool").Tool("errcheck").Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  ASSERT_FALSE(run.result.findings.empty());
  EXPECT_EQ(run.result.findings[0].tool, "pipeline");
  EXPECT_EQ(run.result.findings[0].severity, FindingSeverity::kError);
  // The known tool still ran.
  EXPECT_NE(run.result.ResultFor("errcheck"), nullptr);
}

TEST(ToolPipeline, PlanOrdersRequiredAnalysesBeforePasses) {
  Pipeline p = PipelineBuilder().Tool("blockstop").Tool("stackcheck").Build();
  std::vector<std::string> plan = p.Plan();
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0], "analysis:pointsto");
  EXPECT_EQ(plan[1], "analysis:callgraph");
  EXPECT_EQ(plan[2], "pass:blockstop");
  EXPECT_EQ(plan[3], "pass:stackcheck");

  // A pass with no requirements schedules no analyses.
  Pipeline deputy_only = PipelineBuilder().Tool("deputy").Build();
  std::vector<std::string> lean = deputy_only.Plan();
  ASSERT_EQ(lean.size(), 1u);
  EXPECT_EQ(lean[0], "pass:deputy");
}

TEST(ToolPipeline, CallgraphComputedExactlyOnceAcrossFourTools) {
  Pipeline p = PipelineBuilder()
                   .Tool("blockstop")
                   .Tool("locksafe")
                   .Tool("stackcheck")
                   .Tool("errcheck")
                   .Build();
  auto comp = p.Compile({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  AnalysisContext ctx(comp.get());
  PipelineResult result = p.RunTools(ctx);
  EXPECT_EQ(ctx.callgraph_builds(), 1);
  EXPECT_EQ(ctx.pointsto_builds(), 1);
  EXPECT_EQ(result.callgraph_builds, 1);
  EXPECT_EQ(result.pointsto_builds, 1);
  EXPECT_EQ(result.results.size(), 4u);

  // Each tool found its planted bug.
  const ToolResult* bs = result.ResultFor("blockstop");
  ASSERT_NE(bs, nullptr);
  EXPECT_GE(bs->Metric("violations"), 1);
  const ToolResult* ls = result.ResultFor("locksafe");
  ASSERT_NE(ls, nullptr);
  EXPECT_EQ(ls->Metric("deadlock_cycles"), 1);
  const ToolResult* ec = result.ResultFor("errcheck");
  ASSERT_NE(ec, nullptr);
  EXPECT_GE(ec->Metric("unchecked_sites"), 1);
  const ToolResult* sc = result.ResultFor("stackcheck");
  ASSERT_NE(sc, nullptr);
  EXPECT_GE(sc->Metric("recursive_funcs"), 1);
}

TEST(ToolPipeline, RepeatedRunsReuseTheCache) {
  Pipeline p = PipelineBuilder().AllTools().Build();
  auto comp = p.Compile({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(comp->ok);
  AnalysisContext ctx(comp.get());
  p.RunTools(ctx);
  p.RunTools(ctx);  // second run over the same context: nothing rebuilt
  EXPECT_EQ(ctx.callgraph_builds(), 1);
  EXPECT_EQ(ctx.pointsto_builds(), 1);
}

TEST(ToolPipeline, ParallelAndSerialMergesAreIdentical) {
  auto run_with = [](bool parallel) {
    Pipeline p = PipelineBuilder().AllTools().Parallel(parallel).Build();
    auto comp = CompileKernel(p.config());
    EXPECT_TRUE(comp->ok);
    AnalysisContext ctx(comp.get());
    PipelineResult result = p.RunTools(ctx);
    Json merged = Json::MakeArray();
    for (const Finding& f : result.findings) {
      merged.Append(f.ToJson());
    }
    return merged.Dump();
  };
  std::string serial = run_with(false);
  std::string parallel = run_with(true);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ToolPipeline, ShardFunctionsKeepsFindingsByteIdentical) {
  auto findings_with = [](int shards) {
    Pipeline p = PipelineBuilder().AllTools().ShardFunctions(shards).Build();
    PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", kFourBugs}});
    EXPECT_TRUE(run.comp->ok);
    Json merged = Json::MakeArray();
    for (const Finding& f : run.result.findings) {
      merged.Append(f.ToJson());
    }
    return merged.Dump();
  };
  std::string serial = findings_with(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(findings_with(4), serial);
  EXPECT_EQ(findings_with(0), serial);  // 0 = hardware concurrency

  // The sharded run advertises its shard count; per-tool options still win
  // over the pipeline-wide value.
  Pipeline p = PipelineBuilder()
                   .Tool("blockstop")
                   .Tool("stackcheck", ToolOptions().SetInt("shards", 2))
                   .ShardFunctions(4)
                   .Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(run.comp->ok);
  const ToolResult* bs = run.result.ResultFor("blockstop");
  ASSERT_NE(bs, nullptr);
  EXPECT_GE(bs->Metric("shards"), 1);
  const ToolResult* sc = run.result.ResultFor("stackcheck");
  ASSERT_NE(sc, nullptr);
  EXPECT_LE(sc->Metric("shards"), 2);
}

TEST(ToolPipeline, PerToolOptionBagsReachThePass) {
  // A one-byte budget forces a stackcheck error on any entry with locals.
  Pipeline p = PipelineBuilder()
                   .Tool("stackcheck",
                         ToolOptions().SetInt("budget", 1).Set("entries", "restock,path1"))
                   .Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(run.comp->ok);
  const ToolResult* sc = run.result.ResultFor("stackcheck");
  ASSERT_NE(sc, nullptr);
  EXPECT_EQ(sc->Metric("budget"), 1);
  EXPECT_EQ(sc->Metric("entries"), 2);
  EXPECT_EQ(sc->Metric("fits_budget"), 0);
  const StackCheckReport* report = sc->DetailAs<StackCheckReport>();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->budget, 1);
}

TEST(ToolPipeline, LegacyReportsStayReachableAsDetailViews) {
  Pipeline p = PipelineBuilder().Tool("blockstop").Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(run.comp->ok);
  const ToolResult* bs = run.result.ResultFor("blockstop");
  ASSERT_NE(bs, nullptr);
  const BlockStopReport* report = bs->DetailAs<BlockStopReport>();
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(static_cast<int64_t>(report->violations.size()), bs->Metric("violations"));
  // The finding view and the legacy view agree.
  EXPECT_EQ(bs->CountAtLeast(FindingSeverity::kError),
            static_cast<int>(report->violations.size()));
}

TEST(ToolPipeline, FindingJsonRoundTrip) {
  Finding f;
  f.tool = "blockstop";
  f.severity = FindingSeverity::kError;
  f.loc = SourceLoc{2, 14, 7};
  f.message = "call may block in atomic context";
  f.witness = {"restock", "kmalloc", "blocking_if(GFP_WAIT)"};
  Finding back = Finding::FromJson(f.ToJson());
  EXPECT_EQ(back.tool, f.tool);
  EXPECT_EQ(back.severity, f.severity);
  EXPECT_EQ(back.loc.file, f.loc.file);
  EXPECT_EQ(back.loc.line, f.loc.line);
  EXPECT_EQ(back.loc.col, f.loc.col);
  EXPECT_EQ(back.message, f.message);
  EXPECT_EQ(back.witness, f.witness);
}

TEST(ToolPipeline, UnifiedFindingsFeedAnnodb) {
  Pipeline p = PipelineBuilder().AllTools().Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", kFourBugs}});
  ASSERT_TRUE(run.comp->ok);
  ASSERT_NE(run.ctx, nullptr);
  AnnoDb db = AnnoDb::Extract(*run.ctx, &run.result);
  EXPECT_EQ(db.findings().size(), run.result.findings.size());
  EXPECT_FALSE(db.findings().empty());
  // The blockstop detail fed the may-block facts, as before.
  EXPECT_TRUE(db.funcs().at("restock").may_block);

  // Findings survive the JSON round trip.
  std::string err;
  AnnoDb back = AnnoDb::FromJson(Json::Parse(db.ToJson().Dump(), &err));
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(back.findings().size(), db.findings().size());
  EXPECT_EQ(back.findings()[0].tool, db.findings()[0].tool);
  EXPECT_EQ(back.findings()[0].message, db.findings()[0].message);
}

TEST(ToolPipeline, CompileFailureYieldsNoContext) {
  Pipeline p = PipelineBuilder().AllTools().Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", "int main(void) { return ; }"}});
  EXPECT_FALSE(run.comp->ok);
  EXPECT_EQ(run.ctx, nullptr);
  EXPECT_TRUE(run.result.results.empty());
}

TEST(ToolPipeline, DefaultConstructedCompilationRendersNoErrors) {
  Compilation comp;
  EXPECT_EQ(comp.Errors(), "");  // used to dereference a null DiagEngine
}

TEST(ToolPipeline, LegacyCompileShimStillWorks) {
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileOne("int main(void) { return 42; }", cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 42);
}

}  // namespace
}  // namespace ivy
