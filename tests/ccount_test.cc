// CCount behaviour tests (§2.2): reference counting on pointer writes, free
// verification, nulling fixes, delayed_free scopes for cycles, the mod-256
// wraparound miss, and the track-locals mode of footnote 2.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/vm/heap.h"

namespace ivy {
namespace {

std::pair<VmResult, std::unique_ptr<Vm>> RunCc(const std::string& src,
                                               ToolConfig cfg = ToolConfig{}) {
  cfg.ccount = true;
  auto comp = CompileOne(src, cfg);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  if (!comp->ok) {
    return {VmResult{}, nullptr};
  }
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  return {r, std::move(vm)};
}

TEST(CCount, CleanFreeVerifies) {
  const char* src = R"(
    struct node { int v; struct node* opt next; };
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      n->v = 1;
      kfree(n);
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(vm->heap().stats().frees_good, 1);
}

TEST(CCount, DanglingGlobalReferenceMakesFreeBad) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt keeper;
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      keeper = n;       // global reference: counted
      kfree(n);         // bad free: keeper still references n
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 1);
  EXPECT_EQ(vm->heap().stats().frees_bad, 1);
}

TEST(CCount, NullingFixMakesFreeGood) {
  // The paper's porting fix: "nulling out some extra pointers, usually
  // around the time the corresponding object is freed."
  const char* src = R"(
    struct node { int v; };
    struct node* opt keeper;
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      keeper = n;
      keeper = null;    // the fix
      kfree(n);
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
}

TEST(CCount, HeapToHeapReferencesCounted) {
  const char* src = R"(
    struct node { struct node* opt next; int v; };
    int main(void) {
      struct node* a = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      struct node* b = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      a->next = b;
      kfree(b);          // bad: a->next dangles
      int bad1 = __bad_frees();
      a->next = null;
      kfree(a);          // good
      return bad1 * 10 + __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 11);  // one bad (b), then still just that one
}

TEST(CCount, FreeingReferencingObjectReleasesItsOutgoingRefs) {
  // Freeing `a` (which points to b) must decrement b's count — that is why
  // CCount "requires accurate type information when objects are freed".
  const char* src = R"(
    struct node { struct node* opt next; int v; };
    int main(void) {
      struct node* a = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      struct node* b = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      a->next = b;
      kfree(a);          // good; drops a->next's reference to b
      kfree(b);          // good: no references remain
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(vm->heap().stats().frees_good, 2);
}

TEST(CCount, CycleWithoutDelayedScopeIsBad) {
  const char* src = R"(
    struct node { struct node* opt peer; int v; };
    int main(void) {
      struct node* a = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      struct node* b = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      a->peer = b;
      b->peer = a;
      kfree(a);  // bad: b->peer still references a
      kfree(b);
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_GE(r.value, 1);
}

TEST(CCount, DelayedFreeScopeHandlesCycles) {
  // "A delayed free scope ... greatly simplifying the checks for complex or
  // cyclical data structures."
  const char* src = R"(
    struct node { struct node* opt peer; int v; };
    int main(void) {
      struct node* a = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      struct node* b = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      a->peer = b;
      b->peer = a;
      delayed_free {
        kfree(a);
        kfree(b);
      }
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(vm->heap().stats().frees_good, 2);
}

TEST(CCount, DoubleFreeDetected) {
  const char* src = R"(
    int main(void) {
      char* count(16) opt p = (char*)kmalloc(16, GFP_KERNEL);
      kfree((void*)p);
      kfree((void*)p);   // double free
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 1);
}

TEST(CCount, KfreeNullIsNoop) {
  auto [r, vm] = RunCc("int main(void) { kfree(null); return __bad_frees(); }");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
  EXPECT_EQ(vm->heap().stats().frees_attempted, 0);
}

TEST(CCount, RcOfReflectsReferences) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt g1;
    struct node* opt g2;
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      g1 = n;
      g2 = n;
      int two = __rc_of((void*)n);
      g1 = null;
      int one = __rc_of((void*)n);
      return two * 10 + one;
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 21);
}

TEST(CCount, WraparoundMissAt256) {
  // "Bad frees of objects with k*256 references will be missed."
  const char* src = R"(
    struct cell { int v; };
    struct cell* opt table[512];
    int main(void) {
      struct cell* c = (struct cell*)kmalloc(sizeof(struct cell), GFP_KERNEL);
      for (int i = 0; i < 256; i++) { table[i] = c; }
      kfree(c);          // 256 dangling refs: counter wrapped to 0 -> MISSED
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0) << "the paper's admitted unsoundness must reproduce";
  EXPECT_EQ(vm->heap().stats().frees_good, 1);
}

TEST(CCount, At255ReferencesStillCaught) {
  const char* src = R"(
    struct cell { int v; };
    struct cell* opt table[512];
    int main(void) {
      struct cell* c = (struct cell*)kmalloc(sizeof(struct cell), GFP_KERNEL);
      for (int i = 0; i < 255; i++) { table[i] = c; }
      kfree(c);
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 1);
}

TEST(CCount, LocalReferencesNotTrackedByDefault) {
  // Footnote 2: "the kernel version of CCount does not track references from
  // local variables" — a local pointer alone does not make a free bad.
  const char* src = R"(
    struct node { int v; };
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      struct node* alias = n;   // local ref: NOT counted
      kfree(n);
      return __bad_frees() * 10 + (alias != null);
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 1);  // 0 bad frees, alias non-null
}

TEST(CCount, TrackLocalsModeCatchesLocalDangling) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt stash(struct node* opt n) { return n; }
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      struct node* alias = n;
      kfree(n);
      return __bad_frees() + (alias == null);
    }
  )";
  ToolConfig cfg;
  cfg.track_locals = true;
  auto [r, vm] = RunCc(src, cfg);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_GE(r.value, 1);  // the local alias makes the free bad
}

TEST(CCount, TypedMemcpyMaintainsCounts) {
  const char* src = R"(
    struct holder { struct holder* opt ref; int v; };
    struct holder* opt target;
    int main(void) {
      struct holder* a = (struct holder*)kmalloc(sizeof(struct holder), GFP_KERNEL);
      struct holder* b = (struct holder*)kmalloc(sizeof(struct holder), GFP_KERNEL);
      struct holder* t = (struct holder*)kmalloc(sizeof(struct holder), GFP_KERNEL);
      a->ref = t;
      // Copy a's contents into b: b->ref now also references t.
      trusted { memcpy((char*)b, (char*)a, sizeof(struct holder)); }
      int rc = __rc_of((void*)t);
      b->ref = null;
      a->ref = null;
      kfree(t);
      return rc * 10 + __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 20);  // rc was 2 after the copy; free verified after nulling
}

TEST(CCount, MemsetClearsCounts) {
  const char* src = R"(
    struct holder { struct holder* opt ref; int v; };
    int main(void) {
      struct holder* a = (struct holder*)kmalloc(sizeof(struct holder), GFP_KERNEL);
      struct holder* t = (struct holder*)kmalloc(sizeof(struct holder), GFP_KERNEL);
      a->ref = t;
      trusted { memset((char*)a, 0, sizeof(struct holder)); }  // typed clear
      kfree(t);  // good: memset dropped a->ref's count
      a->ref = null;
      kfree(a);
      return __bad_frees();
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
}

TEST(CCount, IncrementBeforeDecrementSelfAssign) {
  // `p = p` must not transit the count through zero (the paper's ordering).
  const char* src = R"(
    struct node { int v; };
    struct node* opt g;
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      g = n;
      g = g;   // inc new (same chunk) before dec old
      return __rc_of((void*)n);
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 1);
}

TEST(CCount, StatsTrackIncDec) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt g;
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      g = n;
      g = null;
      g = n;
      g = null;
      kfree(n);
      return 0;
    }
  )";
  auto [r, vm] = RunCc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(vm->heap().stats().rc_increments, 2);
  EXPECT_EQ(vm->heap().stats().rc_decrements, 2);
}

TEST(CCount, ErasureNoRcTraffic) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt g;
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      g = n;
      kfree(n);   // would be bad under CCount; with it off, nothing recorded
      return 0;
    }
  )";
  ToolConfig cfg;  // ccount stays false
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("main").ok);
  EXPECT_EQ(vm->heap().stats().rc_increments, 0);
  EXPECT_EQ(vm->heap().stats().frees_bad, 0);
}

// Heap-level unit tests (no Mini-C).
TEST(HeapUnit, AllocAlignmentAndZeroing) {
  Memory mem(1 << 20);
  mem.stack_base = 8192;
  mem.stack_size = 4096;
  mem.heap_base = 16384;
  Program empty_prog;
  TypeLayoutRegistry layouts = TypeLayoutRegistry::Build(empty_prog);
  Heap heap(&mem, &layouts, /*ccount=*/true);
  uint64_t a = heap.Alloc(10, kTypeIdNoPtr);
  uint64_t b = heap.Alloc(100, kTypeIdNoPtr);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 16, 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(mem.Read(a + i, 1), 0);
  }
}

TEST(HeapUnit, FreeListReusesBlocks) {
  Memory mem(1 << 20);
  mem.stack_base = 8192;
  mem.stack_size = 4096;
  mem.heap_base = 16384;
  Program empty_prog;
  TypeLayoutRegistry layouts = TypeLayoutRegistry::Build(empty_prog);
  Heap heap(&mem, &layouts, true);
  uint64_t a = heap.Alloc(48, kTypeIdNoPtr);
  heap.Free(a, SourceLoc{});
  uint64_t b = heap.Alloc(48, kTypeIdNoPtr);
  EXPECT_EQ(a, b) << "same-size allocation should reuse the freed block";
}

TEST(HeapUnit, FindLocatesInteriorPointers) {
  Memory mem(1 << 20);
  mem.stack_base = 8192;
  mem.stack_size = 4096;
  mem.heap_base = 16384;
  Program empty_prog;
  TypeLayoutRegistry layouts = TypeLayoutRegistry::Build(empty_prog);
  Heap heap(&mem, &layouts, true);
  uint64_t a = heap.Alloc(64, kTypeIdNoPtr);
  const HeapObject* obj = heap.Find(a + 40);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->base, a);
  EXPECT_EQ(heap.Find(a + 64), nullptr);
}

TEST(HeapUnit, OomReturnsNull) {
  Memory mem(64 * 1024);
  mem.stack_base = 8192;
  mem.stack_size = 4096;
  mem.heap_base = 16384;
  Program empty_prog;
  TypeLayoutRegistry layouts = TypeLayoutRegistry::Build(empty_prog);
  Heap heap(&mem, &layouts, true);
  uint64_t a = heap.Alloc(1 << 20, kTypeIdNoPtr);
  EXPECT_EQ(a, 0u);
}

}  // namespace
}  // namespace ivy
