// The cross-module link stage (AnalysisSession::RunLinked): corpus-level
// fact fixpoint via annodb summaries.
//
//   1. Linked == merged-source: on corpora whose modules share facts only
//      through declared extern functions, the converged linked findings
//      (canonically rendered and sorted — the linked merge orders by module
//      first, a merged program by pass) equal the single merged-source
//      program's, including cross-module may-block propagation, atomic-entry
//      contexts, irq-reachability, error-return facts, fn-ptr registration
//      through extern calls, and cross-module recursion. StackCheck's
//      per-report budget-overrun finding is the one shape that cannot match
//      (one report per module vs one merged report), so the property runs
//      with an unreachable budget and checks the depth maps directly.
//   2. Determinism: converged findings are byte-identical across module
//      registration order and shard counts.
//   3. Incremental relink == cold relink, and the fixpoint re-analyzes only
//      the cross-module component of the edit.
//   4. Convergence: the fixpoint settles without oscillation and reports
//      its round count.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/stackcheck/stackcheck.h"
#include "src/tool/pipeline.h"
#include "src/tool/session.h"
#include "tests/synth_corpus.h"

namespace ivy {
namespace {

constexpr int64_t kHugeBudget = int64_t{1} << 40;

PipelineBuilder LinkedPipeline(int shards = 1) {
  PipelineBuilder b;
  ToolOptions sc;
  sc.SetInt("budget", kHugeBudget);
  b.Tool("blockstop").Tool("stackcheck", sc).Tool("errcheck").Tool("locksafe");
  b.ShardFunctions(shards);
  return b;
}

std::string Dump(const std::vector<Finding>& findings) {
  Json arr = Json::MakeArray();
  for (const Finding& f : findings) {
    arr.Append(f.ToJson());
  }
  return arr.Dump();
}

// Canonical rendering: tool/severity/rendered-location/message/witness.
// Rendered locations use file *names*, which match between a module's own
// compilation and the merged program; raw file ids do not.
std::vector<std::string> CanonSorted(const std::vector<Finding>& findings,
                                     const SourceManager* sm) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    out.push_back(f.ToString(sm));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> LinkedCanon(AnalysisSession& session, const SessionResult& result) {
  std::vector<std::string> all;
  for (const ModuleRunResult& mr : result.modules) {
    const Compilation* comp = session.CompilationFor(mr.module);
    EXPECT_NE(comp, nullptr) << mr.module;
    std::vector<std::string> canon =
        CanonSorted(mr.result.findings, comp != nullptr ? &comp->sm : nullptr);
    all.insert(all.end(), canon.begin(), canon.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST(SessionLinked, LinkedMatchesMergedSource) {
  for (uint64_t seed : {3u, 17u}) {
    LinkedCorpusOptions opt;
    opt.modules = 4;
    opt.functions = 32;
    opt.seed = seed;
    std::vector<ModuleSources> corpus = GenerateLinkedCorpus(opt);

    AnalysisSession session = LinkedPipeline().ForEachModule(corpus).BuildSession();
    SessionResult linked = session.RunLinked();
    ASSERT_EQ(linked.compile_failures, 0) << "seed " << seed;
    ASSERT_TRUE(session.link_stats().converged) << "seed " << seed;
    EXPECT_GE(session.link_stats().rounds, 2) << "seed " << seed;
    EXPECT_GT(session.link_stats().cross_edges, 0) << "seed " << seed;
    // No session-level findings (no multi-definition conflicts, converged).
    for (const Finding& f : linked.findings) {
      EXPECT_NE(f.tool, "session") << f.message;
    }

    Pipeline merged_pipeline = LinkedPipeline().Build();
    PipelineRun merged = merged_pipeline.CompileAndRun(MergedLinkedSources(corpus));
    ASSERT_TRUE(merged.comp->ok) << "seed " << seed << ": " << merged.comp->Errors();

    std::vector<std::string> linked_canon = LinkedCanon(session, linked);
    std::vector<std::string> merged_canon =
        CanonSorted(merged.result.findings, &merged.comp->sm);
    EXPECT_FALSE(merged_canon.empty());
    ASSERT_EQ(linked_canon, merged_canon) << "seed " << seed;

    // StackCheck detail: corpus-level depths and the recursive set must
    // match the merged condensation function by function.
    std::map<std::string, int64_t> linked_depths;
    std::set<std::string> linked_recursive;
    for (const ModuleRunResult& mr : linked.modules) {
      const ToolResult* r = mr.result.ResultFor("stackcheck");
      ASSERT_NE(r, nullptr);
      const StackCheckReport* rep = r->DetailAs<StackCheckReport>();
      ASSERT_NE(rep, nullptr);
      linked_depths.insert(rep->entry_depths.begin(), rep->entry_depths.end());
      linked_recursive.insert(rep->recursive.begin(), rep->recursive.end());
    }
    const StackCheckReport* merged_rep =
        merged.result.ResultFor("stackcheck")->DetailAs<StackCheckReport>();
    ASSERT_NE(merged_rep, nullptr);
    EXPECT_EQ(linked_depths, merged_rep->entry_depths) << "seed " << seed;
    EXPECT_EQ(linked_recursive, merged_rep->recursive) << "seed " << seed;
    EXPECT_FALSE(linked_recursive.empty());  // the cross-module cycle is real
  }
}

TEST(SessionLinked, ConvergedFindingsDeterministic) {
  LinkedCorpusOptions opt;
  opt.modules = 4;
  opt.functions = 28;
  opt.seed = 5;
  std::vector<ModuleSources> corpus = GenerateLinkedCorpus(opt);

  AnalysisSession forward = LinkedPipeline().ForEachModule(corpus).BuildSession();
  std::string golden = Dump(forward.RunLinked().findings);
  ASSERT_TRUE(forward.link_stats().converged);
  EXPECT_FALSE(golden.empty());

  std::vector<ModuleSources> reversed(corpus.rbegin(), corpus.rend());
  AnalysisSession backward = LinkedPipeline().ForEachModule(reversed).BuildSession();
  EXPECT_EQ(Dump(backward.RunLinked().findings), golden);

  AnalysisSession sharded = LinkedPipeline(3).ForEachModule(corpus).BuildSession();
  EXPECT_EQ(Dump(sharded.RunLinked().findings), golden);
}

TEST(SessionLinked, IncrementalRelinkMatchesColdAndStaysInComponent) {
  LinkedCorpusOptions opt;
  opt.modules = 3;
  opt.functions = 24;
  opt.seed = 9;
  std::vector<ModuleSources> corpus = GenerateLinkedCorpus(opt);
  // An isolated module: no cross calls in or out, so it sits in its own
  // link component and must never be re-analyzed by other modules' edits.
  SynthCorpusOptions iso;
  iso.functions = 16;
  iso.seed = 77;
  iso.prefix = "iso_";
  corpus.push_back(ModuleSources{"zz_iso", {SourceFile{"zz_iso.mc", GenerateSynthCorpus(iso)}}});

  AnalysisSession session = LinkedPipeline().ForEachModule(corpus).BuildSession();
  session.RunLinked();
  ASSERT_TRUE(session.link_stats().converged);

  // Re-linking an unchanged corpus is one cheap round: nothing re-analyzed.
  SessionResult idle = session.RunLinked();
  EXPECT_EQ(session.link_stats().rounds, 1);
  EXPECT_EQ(session.link_stats().module_analyses, 0);
  EXPECT_EQ(idle.modules_reused, static_cast<int>(corpus.size()));

  // Edit inside the linked component: make a mid-chain function of mod_01 a
  // blocking leaf. Cross importers re-converge; the isolated module reuses
  // its cached result through every round.
  const std::string fn = SynthFuncName(LinkedModulePrefix(1), 5);
  const std::string def =
      "void " + fn + "(int n) {\n  int pad[16]; pad[0] = n;\n  msleep(n);\n}\n";
  ASSERT_TRUE(session.ReplaceFunction("mod_01", fn, def));
  SessionResult warm = session.RunLinked();
  ASSERT_TRUE(session.link_stats().converged);
  EXPECT_LE(session.link_stats().module_analyses,
            session.link_stats().rounds * (static_cast<int>(corpus.size()) - 1));

  AnalysisSession cold = LinkedPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(cold.ReplaceFunction("mod_01", fn, def));
  SessionResult cold_result = cold.RunLinked();
  ASSERT_TRUE(cold.link_stats().converged);
  EXPECT_EQ(Dump(warm.findings), Dump(cold_result.findings));

  // Editing only the isolated module re-analyzes only it.
  ASSERT_TRUE(session.ReplaceFunction("zz_iso", SynthFuncName("iso_", 3),
                                      "void " + SynthFuncName("iso_", 3) +
                                          "(int n) {\n  int pad[4]; pad[0] = n;\n  udelay(1);\n}\n"));
  session.RunLinked();
  ASSERT_TRUE(session.link_stats().converged);
  EXPECT_EQ(session.link_stats().module_analyses, 1);
}

TEST(SessionLinked, SummariesExportedAndRetractable) {
  LinkedCorpusOptions opt;
  opt.modules = 3;
  opt.functions = 24;
  opt.seed = 21;
  std::vector<ModuleSources> corpus = GenerateLinkedCorpus(opt);
  AnalysisSession session = LinkedPipeline().ForEachModule(corpus).BuildSession();
  session.RunLinked();
  ASSERT_TRUE(session.link_stats().converged);

  // The converged table carries both halves of the exchange.
  const AnnoDb& table = session.link_table();
  ASSERT_FALSE(table.summaries().empty());
  bool saw_mayblock_definer = false;
  bool saw_usage_atomic = false;
  bool saw_param_points = false;
  bool saw_stack = false;
  for (const auto& [key, row] : table.summaries()) {
    if (row.defined && row.may_block && !row.block_witness.empty()) {
      saw_mayblock_definer = true;
    }
    if (row.defined && row.stack_below >= 0) {
      saw_stack = true;
    }
    if (!row.defined && row.entered_atomic) {
      saw_usage_atomic = true;
    }
    if (!row.defined && !row.param_points.empty()) {
      saw_param_points = true;
    }
  }
  EXPECT_TRUE(saw_mayblock_definer);
  EXPECT_TRUE(saw_usage_atomic);
  EXPECT_TRUE(saw_param_points);
  EXPECT_TRUE(saw_stack);

  // The repository export includes the table, round-trips through JSON, and
  // retraction drops exactly one module's rows (facts and summaries both).
  AnnoDb db = session.ExportAnnoDb();
  ASSERT_FALSE(db.summaries().empty());
  std::string err;
  AnnoDb loaded = AnnoDb::FromJson(Json::Parse(db.ToJson().Dump(), &err));
  ASSERT_TRUE(err.empty()) << err;
  EXPECT_EQ(loaded.ToJson().Dump(), db.ToJson().Dump());

  size_t before = loaded.summaries().size();
  size_t mod1_rows = 0;
  for (const auto& [key, row] : loaded.summaries()) {
    mod1_rows += key.first == "mod_01" ? 1 : 0;
  }
  ASSERT_GT(mod1_rows, 0u);
  loaded.RetractModule("mod_01");
  EXPECT_EQ(loaded.summaries().size(), before - mod1_rows);
  for (const auto& [key, row] : loaded.summaries()) {
    EXPECT_NE(key.first, "mod_01");
  }
  for (const auto& [name, facts] : loaded.funcs()) {
    EXPECT_NE(facts.module, "mod_01") << name;
  }

  // Re-merging the same export is idempotent for summary rows.
  AnnoDb twice = session.ExportAnnoDb();
  std::string once_dump = twice.ToJson().Dump();
  twice.Merge(session.ExportAnnoDb());
  EXPECT_EQ(twice.ToJson().Dump(), once_dump);
}

TEST(SessionLinked, RemoveModuleRetractsItsFactsFromTheTable) {
  LinkedCorpusOptions opt;
  opt.modules = 3;
  opt.functions = 24;
  opt.seed = 41;
  std::vector<ModuleSources> corpus = GenerateLinkedCorpus(opt);
  AnalysisSession session = LinkedPipeline().ForEachModule(corpus).BuildSession();
  session.RunLinked();
  ASSERT_TRUE(session.link_stats().converged);

  // Dropping mod_02 must drop its facts: the relinked corpus equals a cold
  // two-module link, not the stale three-module fixpoint.
  ASSERT_TRUE(session.RemoveModule("mod_02"));
  SessionResult relinked = session.RunLinked();
  ASSERT_TRUE(session.link_stats().converged);
  for (const auto& [key, row] : session.link_table().summaries()) {
    EXPECT_NE(key.first, "mod_02");
  }

  corpus.pop_back();
  AnalysisSession cold = LinkedPipeline().ForEachModule(corpus).BuildSession();
  EXPECT_EQ(Dump(relinked.findings), Dump(cold.RunLinked().findings));
}

TEST(SessionLinked, UnlinkedRunStaysIndependent) {
  // Run() (no link stage) must keep its historical semantics: modules
  // analyzed as independent programs, no imported facts.
  LinkedCorpusOptions opt;
  opt.modules = 2;
  opt.functions = 20;
  opt.seed = 33;
  std::vector<ModuleSources> corpus = GenerateLinkedCorpus(opt);

  AnalysisSession plain = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult unlinked = plain.Run();
  AnalysisSession linked = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult converged = linked.RunLinked();

  // The linked run sees strictly more: cross-module facts add findings.
  EXPECT_NE(Dump(unlinked.findings), Dump(converged.findings));
  EXPECT_GT(converged.findings.size(), unlinked.findings.size());
}

}  // namespace
}  // namespace ivy
