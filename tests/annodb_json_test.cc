// Tests for the §3.2 annotation repository and its JSON substrate.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/annodb/annodb.h"
#include "src/driver/compiler.h"
#include "src/support/json.h"
#include "src/support/rng.h"
#include "src/tool/analysis_context.h"
#include "src/tool/pipeline.h"

namespace ivy {
namespace {

TEST(Json, ScalarRoundTrip) {
  std::string err;
  EXPECT_EQ(Json::Parse("42", &err).AsInt(), 42);
  EXPECT_EQ(Json::Parse("-17", &err).AsInt(), -17);
  EXPECT_TRUE(Json::Parse("true", &err).AsBool());
  EXPECT_FALSE(Json::Parse("false", &err).AsBool(true));
  EXPECT_TRUE(Json::Parse("null", &err).is_null());
  EXPECT_DOUBLE_EQ(Json::Parse("2.5", &err).AsDouble(), 2.5);
  EXPECT_EQ(Json::Parse("\"a\\nb\"", &err).AsString(), "a\nb");
}

TEST(Json, NestedStructures) {
  std::string err;
  Json j = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})", &err);
  EXPECT_TRUE(err.empty()) << err;
  const Json* a = j.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->At(1).AsInt(), 2);
  EXPECT_EQ(a->At(2).Find("b")->AsString(), "c");
}

TEST(Json, DumpParseIdentity) {
  Json j = Json::MakeObject();
  j["name"] = Json::MakeString("kmalloc");
  j["blocking"] = Json::MakeBool(true);
  Json arr = Json::MakeArray();
  arr.Append(Json::MakeInt(-12));
  arr.Append(Json::MakeInt(-22));
  j["codes"] = std::move(arr);
  std::string text = j.Dump();
  std::string err;
  Json back = Json::Parse(text, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.Dump(), text);
}

TEST(Json, ErrorsReported) {
  std::string err;
  Json::Parse("{broken", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::Parse("[1, 2", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::Parse("\"unterminated", &err);
  EXPECT_FALSE(err.empty());
}

TEST(Json, EscapesInDump) {
  Json j = Json::MakeString("tab\there \"quoted\"\n");
  std::string text = j.Dump(-1);
  std::string err;
  EXPECT_EQ(Json::Parse(text, &err).AsString(), "tab\there \"quoted\"\n");
}

// ---------------------------------------------------------------------------
// \u escape decoding (the strtol-truncation bugfix): hex is validated, code
// points come out as real UTF-8, surrogate pairs combine, and every malformed
// escape is a parse error — not silent garbage.
// ---------------------------------------------------------------------------

TEST(Json, UnicodeEscapeDecodesToUtf8) {
  std::string err;
  EXPECT_EQ(Json::Parse("\"\\u00e9\"", &err).AsString(), "\xc3\xa9");  // é
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(Json::Parse("\"\\u0041\"", &err).AsString(), "A");
  EXPECT_EQ(Json::Parse("\"\\u4e2d\"", &err).AsString(), "\xe4\xb8\xad");  // 中
  // Control characters (what the writer itself emits as \u00XX).
  EXPECT_EQ(Json::Parse("\"\\u0007\"", &err).AsString(), "\x07");
  EXPECT_EQ(Json::Parse("\"\\u0000\"", &err).AsString(), std::string(1, '\0'));
}

TEST(Json, SurrogatePairsCombine) {
  std::string err;
  // U+1F600 as \ud83d\ude00 -> 4-byte UTF-8.
  EXPECT_EQ(Json::Parse("\"\\ud83d\\ude00\"", &err).AsString(), "\xf0\x9f\x98\x80");
  EXPECT_TRUE(err.empty()) << err;
}

TEST(Json, MalformedUnicodeEscapesAreErrors) {
  // Before the fix: "\u12" decoded as garbage, "\uZZZZ" as code point 0,
  // and a truncated escape was swallowed. All must Fail() now.
  for (const char* bad : {
           "\"\\u12\"",          // truncated hex
           "\"\\u\"",            // no hex at all
           "\"\\uZZZZ\"",        // non-hex digits
           "\"\\u00g1\"",        // one bad digit
           "\"\\ud83d\"",        // lone high surrogate
           "\"\\ud83dx\"",       // high surrogate, no \u follows
           "\"\\ud83d\\u0041\"", // high surrogate + non-low-surrogate
           "\"\\ude00\"",        // lone low surrogate
           "\"\\q\"",            // unknown escape
           "\"\\u123",           // EOF inside the escape
       }) {
    std::string err;
    Json::Parse(bad, &err);
    EXPECT_FALSE(err.empty()) << "accepted: " << bad;
  }
}

TEST(Json, WriterEscapeRoundTripsArbitraryBytes) {
  // Seeded fuzz: any byte string the writer escapes must parse back to the
  // same bytes (the writer emits \u00XX for control characters, so this
  // exercises the new decoder on every round).
  Rng rng(0x5eed);
  for (int round = 0; round < 200; ++round) {
    std::string s;
    const int len = static_cast<int>(rng.Below(40));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.Below(256)));
    }
    std::string text = Json::MakeString(s).Dump(-1);
    std::string err;
    Json back = Json::Parse(text, &err);
    ASSERT_TRUE(err.empty()) << err << " for " << text;
    EXPECT_EQ(back.AsString(), s);
  }
}

const char* kSmallKernel = R"(
  struct item { struct item* opt next; int v; };
  int pool_lock;
  int get_item(struct item* it) errcode(-1) {
    if (!it) { return -1; }
    return it->v;
  }
  void reaper(void) blocking { msleep(5); }
)";

TEST(AnnoDb, ExtractCapturesAttributes) {
  auto comp = CompileOne(kSmallKernel, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  AnnoDb db = AnnoDb::Extract(comp->prog, *comp->sema, comp->module);
  ASSERT_EQ(db.funcs().count("reaper"), 1u);
  EXPECT_TRUE(db.funcs().at("reaper").blocking);
  ASSERT_EQ(db.funcs().count("get_item"), 1u);
  EXPECT_EQ(db.funcs().at("get_item").errcodes, std::vector<int64_t>({-1}));
  ASSERT_EQ(db.records().count("item"), 1u);
  EXPECT_EQ(db.records().at("item").ptr_offsets, std::vector<int64_t>({0}));
}

TEST(AnnoDb, JsonRoundTripPreservesFacts) {
  auto comp = CompileOne(kSmallKernel, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  AnnoDb db = AnnoDb::Extract(comp->prog, *comp->sema, comp->module);
  std::string err;
  AnnoDb back = AnnoDb::FromJson(Json::Parse(db.ToJson().Dump(), &err));
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.funcs().size(), db.funcs().size());
  EXPECT_TRUE(back.funcs().at("reaper").blocking);
  EXPECT_EQ(back.records().at("item").size, db.records().at("item").size);
}

TEST(AnnoDb, MergeFillsGapsAndUnionsFacts) {
  Json a = Json::MakeObject();
  a["functions"]["f"]["blocking"] = Json::MakeBool(false);
  Json b = Json::MakeObject();
  b["functions"]["f"]["blocking"] = Json::MakeBool(true);
  b["functions"]["g"]["blocking"] = Json::MakeBool(false);
  AnnoDb da = AnnoDb::FromJson(a);
  AnnoDb dbb = AnnoDb::FromJson(b);
  int added = da.Merge(dbb);
  EXPECT_EQ(added, 1);                       // g is new
  EXPECT_TRUE(da.funcs().at("f").blocking);  // blocking OR-ed conservatively
}

TEST(AnnoDb, MergeDeduplicatesFindings) {
  auto make_finding = [](const std::string& tool, int32_t line, const std::string& msg) {
    Finding f;
    f.tool = tool;
    f.severity = FindingSeverity::kWarning;
    f.loc = SourceLoc{0, line, 4};
    f.message = msg;
    return f;
  };
  AnnoDb a;
  a.SetFindings({make_finding("blockstop", 10, "call may block"),
                 make_finding("errcheck", 20, "discarded error")});
  AnnoDb b;
  b.SetFindings({make_finding("blockstop", 10, "call may block"),   // dup of a[0]
                 make_finding("blockstop", 10, "different message"),  // same loc, new msg
                 make_finding("stackcheck", 0, "budget exceeded")});
  a.Merge(b);
  ASSERT_EQ(a.findings().size(), 4u);  // 2 + 2 new, 1 dup dropped
  EXPECT_EQ(a.findings()[2].message, "different message");
  EXPECT_EQ(a.findings()[3].tool, "stackcheck");

  // Round trip, then re-merge the same database: idempotent.
  std::string err;
  AnnoDb back = AnnoDb::FromJson(Json::Parse(a.ToJson().Dump(), &err));
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(back.findings().size(), 4u);
  back.Merge(a);
  EXPECT_EQ(back.findings().size(), 4u) << "re-merging the same export must not duplicate";
  back.Merge(b);
  EXPECT_EQ(back.findings().size(), 4u);
}

TEST(AnnoDb, MergeSelfIsIdempotentForPipelineExports) {
  // The regression the ROADMAP calls out: two pipeline runs over the same
  // sources, exported and merged, used to double every finding.
  auto comp = CompileOne(kSmallKernel, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  AnalysisContext ctx(comp.get());
  Pipeline p = PipelineBuilder().Tool("blockstop").Tool("errcheck").Build();
  PipelineResult result = p.RunTools(ctx);
  AnnoDb first = AnnoDb::Extract(ctx, &result);
  AnnoDb second = AnnoDb::Extract(ctx, &result);
  size_t baseline = first.findings().size();
  first.Merge(second);
  EXPECT_EQ(first.findings().size(), baseline);
}

// ---------------------------------------------------------------------------
// Strict param_points indices (the atoi-aliasing bugfix): a malformed key
// rejects the row with a diagnostic instead of corrupting parameter 0.
// ---------------------------------------------------------------------------

std::string UsageRowWithKey(const std::string& key) {
  return std::string(R"({"summaries": [{"module": "net", "function": "recv", )") +
         R"("defined": false, "param_points": {")" + key + R"(": ["heap"]}}]})";
}

TEST(AnnoDb, MalformedParamPointsKeyRejectsRow) {
  for (const char* bad : {"abc", "01", "7x", " 3", "-1", "", "99999"}) {
    std::string err;
    Json j = Json::Parse(UsageRowWithKey(bad), &err);
    ASSERT_TRUE(err.empty()) << err;
    std::vector<std::string> errors;
    AnnoDb db = AnnoDb::FromJson(j, &errors);
    EXPECT_EQ(db.summaries().size(), 0u) << "row with key '" << bad << "' loaded";
    ASSERT_EQ(errors.size(), 1u) << "no diagnostic for key '" << bad << "'";
    EXPECT_NE(errors[0].find("param_points"), std::string::npos) << errors[0];
    EXPECT_NE(errors[0].find("net:recv"), std::string::npos) << errors[0];
  }
}

TEST(AnnoDb, WellFormedParamPointsKeyLoads) {
  std::string err;
  Json j = Json::Parse(UsageRowWithKey("3"), &err);
  ASSERT_TRUE(err.empty()) << err;
  std::vector<std::string> errors;
  AnnoDb db = AnnoDb::FromJson(j, &errors);
  EXPECT_TRUE(errors.empty());
  ASSERT_EQ(db.summaries().size(), 1u);
  const FuncSummary& s = db.summaries().begin()->second;
  ASSERT_EQ(s.param_points.count(3), 1u);
  EXPECT_EQ(s.param_points.at(3), std::vector<std::string>({"heap"}));
  EXPECT_EQ(s.param_points.count(0), 0u) << "index 3 must not alias onto 0";
}

TEST(AnnoDb, StrictRowFailureDoesNotAbortSiblings) {
  // One bad row in a list must not take the good ones down with it.
  std::string text =
      R"({"summaries": [)"
      R"({"module": "a", "function": "ok1", "defined": false},)"
      R"({"module": "a", "function": "bad", "defined": false, "param_points": {"x": []}},)"
      R"({"module": "a", "function": "ok2", "defined": false}]})";
  std::string err;
  Json j = Json::Parse(text, &err);
  ASSERT_TRUE(err.empty()) << err;
  std::vector<std::string> errors;
  AnnoDb db = AnnoDb::FromJson(j, &errors);
  EXPECT_EQ(db.summaries().size(), 2u);
  EXPECT_EQ(db.summaries().count({"a", "ok1"}), 1u);
  EXPECT_EQ(db.summaries().count({"a", "ok2"}), 1u);
  ASSERT_EQ(errors.size(), 1u);
}

TEST(AnnoDb, ApplyAttributesEnablesAnalysis) {
  // An unannotated module + a repository entry = BlockStop finds the bug.
  const char* module_src = R"(
    int lk;
    void vendor_wait(void);
    void isr_path(void) {
      spin_lock(&lk);
      vendor_wait();
      spin_unlock(&lk);
    }
  )";
  Json contrib = Json::MakeObject();
  contrib["functions"]["vendor_wait"]["blocking"] = Json::MakeBool(true);
  AnnoDb db = AnnoDb::FromJson(contrib);

  auto comp = CompileOne(module_src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  {
    // One AnalysisContext per program version: ApplyAttributes mutates the
    // program, so the cached analyses must not be carried across it.
    AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
    BlockStop before(&comp->prog, comp->sema.get(), &ctx.callgraph());
    EXPECT_TRUE(before.Run().violations.empty()) << "no facts, no findings";
  }
  EXPECT_EQ(db.ApplyAttributes(&comp->prog), 1);
  {
    AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
    BlockStop after(&comp->prog, comp->sema.get(), &ctx.callgraph());
    EXPECT_EQ(after.Run().violations.size(), 1u);
  }
}

}  // namespace
}  // namespace ivy
