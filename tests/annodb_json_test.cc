// Tests for the §3.2 annotation repository and its JSON substrate.
#include <gtest/gtest.h>

#include "src/annodb/annodb.h"
#include "src/driver/compiler.h"
#include "src/support/json.h"
#include "src/tool/analysis_context.h"
#include "src/tool/pipeline.h"

namespace ivy {
namespace {

TEST(Json, ScalarRoundTrip) {
  std::string err;
  EXPECT_EQ(Json::Parse("42", &err).AsInt(), 42);
  EXPECT_EQ(Json::Parse("-17", &err).AsInt(), -17);
  EXPECT_TRUE(Json::Parse("true", &err).AsBool());
  EXPECT_FALSE(Json::Parse("false", &err).AsBool(true));
  EXPECT_TRUE(Json::Parse("null", &err).is_null());
  EXPECT_DOUBLE_EQ(Json::Parse("2.5", &err).AsDouble(), 2.5);
  EXPECT_EQ(Json::Parse("\"a\\nb\"", &err).AsString(), "a\nb");
}

TEST(Json, NestedStructures) {
  std::string err;
  Json j = Json::Parse(R"({"a": [1, 2, {"b": "c"}], "d": {}})", &err);
  EXPECT_TRUE(err.empty()) << err;
  const Json* a = j.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->At(1).AsInt(), 2);
  EXPECT_EQ(a->At(2).Find("b")->AsString(), "c");
}

TEST(Json, DumpParseIdentity) {
  Json j = Json::MakeObject();
  j["name"] = Json::MakeString("kmalloc");
  j["blocking"] = Json::MakeBool(true);
  Json arr = Json::MakeArray();
  arr.Append(Json::MakeInt(-12));
  arr.Append(Json::MakeInt(-22));
  j["codes"] = std::move(arr);
  std::string text = j.Dump();
  std::string err;
  Json back = Json::Parse(text, &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.Dump(), text);
}

TEST(Json, ErrorsReported) {
  std::string err;
  Json::Parse("{broken", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::Parse("[1, 2", &err);
  EXPECT_FALSE(err.empty());
  err.clear();
  Json::Parse("\"unterminated", &err);
  EXPECT_FALSE(err.empty());
}

TEST(Json, EscapesInDump) {
  Json j = Json::MakeString("tab\there \"quoted\"\n");
  std::string text = j.Dump(-1);
  std::string err;
  EXPECT_EQ(Json::Parse(text, &err).AsString(), "tab\there \"quoted\"\n");
}

const char* kSmallKernel = R"(
  struct item { struct item* opt next; int v; };
  int pool_lock;
  int get_item(struct item* it) errcode(-1) {
    if (!it) { return -1; }
    return it->v;
  }
  void reaper(void) blocking { msleep(5); }
)";

TEST(AnnoDb, ExtractCapturesAttributes) {
  auto comp = CompileOne(kSmallKernel, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  AnnoDb db = AnnoDb::Extract(comp->prog, *comp->sema, comp->module);
  ASSERT_EQ(db.funcs().count("reaper"), 1u);
  EXPECT_TRUE(db.funcs().at("reaper").blocking);
  ASSERT_EQ(db.funcs().count("get_item"), 1u);
  EXPECT_EQ(db.funcs().at("get_item").errcodes, std::vector<int64_t>({-1}));
  ASSERT_EQ(db.records().count("item"), 1u);
  EXPECT_EQ(db.records().at("item").ptr_offsets, std::vector<int64_t>({0}));
}

TEST(AnnoDb, JsonRoundTripPreservesFacts) {
  auto comp = CompileOne(kSmallKernel, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  AnnoDb db = AnnoDb::Extract(comp->prog, *comp->sema, comp->module);
  std::string err;
  AnnoDb back = AnnoDb::FromJson(Json::Parse(db.ToJson().Dump(), &err));
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(back.funcs().size(), db.funcs().size());
  EXPECT_TRUE(back.funcs().at("reaper").blocking);
  EXPECT_EQ(back.records().at("item").size, db.records().at("item").size);
}

TEST(AnnoDb, MergeFillsGapsAndUnionsFacts) {
  Json a = Json::MakeObject();
  a["functions"]["f"]["blocking"] = Json::MakeBool(false);
  Json b = Json::MakeObject();
  b["functions"]["f"]["blocking"] = Json::MakeBool(true);
  b["functions"]["g"]["blocking"] = Json::MakeBool(false);
  AnnoDb da = AnnoDb::FromJson(a);
  AnnoDb dbb = AnnoDb::FromJson(b);
  int added = da.Merge(dbb);
  EXPECT_EQ(added, 1);                       // g is new
  EXPECT_TRUE(da.funcs().at("f").blocking);  // blocking OR-ed conservatively
}

TEST(AnnoDb, MergeDeduplicatesFindings) {
  auto make_finding = [](const std::string& tool, int32_t line, const std::string& msg) {
    Finding f;
    f.tool = tool;
    f.severity = FindingSeverity::kWarning;
    f.loc = SourceLoc{0, line, 4};
    f.message = msg;
    return f;
  };
  AnnoDb a;
  a.SetFindings({make_finding("blockstop", 10, "call may block"),
                 make_finding("errcheck", 20, "discarded error")});
  AnnoDb b;
  b.SetFindings({make_finding("blockstop", 10, "call may block"),   // dup of a[0]
                 make_finding("blockstop", 10, "different message"),  // same loc, new msg
                 make_finding("stackcheck", 0, "budget exceeded")});
  a.Merge(b);
  ASSERT_EQ(a.findings().size(), 4u);  // 2 + 2 new, 1 dup dropped
  EXPECT_EQ(a.findings()[2].message, "different message");
  EXPECT_EQ(a.findings()[3].tool, "stackcheck");

  // Round trip, then re-merge the same database: idempotent.
  std::string err;
  AnnoDb back = AnnoDb::FromJson(Json::Parse(a.ToJson().Dump(), &err));
  EXPECT_TRUE(err.empty()) << err;
  ASSERT_EQ(back.findings().size(), 4u);
  back.Merge(a);
  EXPECT_EQ(back.findings().size(), 4u) << "re-merging the same export must not duplicate";
  back.Merge(b);
  EXPECT_EQ(back.findings().size(), 4u);
}

TEST(AnnoDb, MergeSelfIsIdempotentForPipelineExports) {
  // The regression the ROADMAP calls out: two pipeline runs over the same
  // sources, exported and merged, used to double every finding.
  auto comp = CompileOne(kSmallKernel, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  AnalysisContext ctx(comp.get());
  Pipeline p = PipelineBuilder().Tool("blockstop").Tool("errcheck").Build();
  PipelineResult result = p.RunTools(ctx);
  AnnoDb first = AnnoDb::Extract(ctx, &result);
  AnnoDb second = AnnoDb::Extract(ctx, &result);
  size_t baseline = first.findings().size();
  first.Merge(second);
  EXPECT_EQ(first.findings().size(), baseline);
}

TEST(AnnoDb, ApplyAttributesEnablesAnalysis) {
  // An unannotated module + a repository entry = BlockStop finds the bug.
  const char* module_src = R"(
    int lk;
    void vendor_wait(void);
    void isr_path(void) {
      spin_lock(&lk);
      vendor_wait();
      spin_unlock(&lk);
    }
  )";
  Json contrib = Json::MakeObject();
  contrib["functions"]["vendor_wait"]["blocking"] = Json::MakeBool(true);
  AnnoDb db = AnnoDb::FromJson(contrib);

  auto comp = CompileOne(module_src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  {
    // One AnalysisContext per program version: ApplyAttributes mutates the
    // program, so the cached analyses must not be carried across it.
    AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
    BlockStop before(&comp->prog, comp->sema.get(), &ctx.callgraph());
    EXPECT_TRUE(before.Run().violations.empty()) << "no facts, no findings";
  }
  EXPECT_EQ(db.ApplyAttributes(&comp->prog), 1);
  {
    AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
    BlockStop after(&comp->prog, comp->sema.get(), &ctx.callgraph());
    EXPECT_EQ(after.Run().violations.size(), 1u);
  }
}

}  // namespace
}  // namespace ivy
