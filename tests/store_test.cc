// The persistent analysis store (src/store/store.h) and the session
// plumbing over it (SaveStore/LoadStore, RunLinkedDistributed):
//
//   1. Format totality, wire_test-style: encode/decode round trips, every
//      strict prefix rejected, bad magic/version/flag bytes rejected, and
//      seeded random/mutated-byte fuzz that must never crash or over-read.
//   2. Warm start: a fresh session that LoadStores a converged run relinks
//      in one idle round with zero module analyses and byte-identical
//      findings; a warm session + edit equals a cold session + same edit.
//   3. Crash recovery: an unconverged store loads with every module dirty
//      and re-derives the identical fixpoint.
//   4. Distributed relink (in-process run_worker hook): byte-identical to
//      single-process RunLinked across worker counts; a failed worker
//      leaves the run resumable.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/store/store.h"
#include "src/support/rng.h"
#include "src/tool/pipeline.h"
#include "src/tool/session.h"
#include "tests/synth_corpus.h"

namespace ivy {
namespace {

constexpr int64_t kHugeBudget = int64_t{1} << 40;

PipelineBuilder LinkedPipeline(int shards = 1) {
  PipelineBuilder b;
  ToolOptions sc;
  sc.SetInt("budget", kHugeBudget);
  b.Tool("blockstop").Tool("stackcheck", sc).Tool("errcheck").Tool("locksafe");
  b.ShardFunctions(shards);
  return b;
}

std::string Dump(const std::vector<Finding>& findings) {
  Json arr = Json::MakeArray();
  for (const Finding& f : findings) {
    arr.Append(f.ToJson());
  }
  return arr.Dump();
}

std::vector<ModuleSources> SmallCorpus() {
  LinkedCorpusOptions opt;
  opt.modules = 3;
  opt.functions = 16;
  opt.seed = 4;
  return GenerateLinkedCorpus(opt);
}

// A store path in the test temp dir, with its sidecar files scrubbed.
class StorePath {
 public:
  explicit StorePath(const std::string& name)
      : path_(::testing::TempDir() + "ivy_store_test_" + name + ".store") {
    Scrub();
  }
  ~StorePath() { Scrub(); }
  const std::string& get() const { return path_; }

 private:
  void Scrub() {
    std::remove(path_.c_str());
    std::remove((path_ + ".lock").c_str());
    std::remove((path_ + ".round").c_str());
  }
  std::string path_;
};

StoreFile SampleStore() {
  StoreFile sf;
  sf.corpus_digest = 0x0123456789abcdefull;
  sf.linked = true;
  sf.converged = true;

  StoreModule a;
  a.name = "alpha";
  a.files = {{"alpha.mc", "void a(void) {}\n"}, {"alpha2.mc", ""}};
  a.source_digest = SourcesDigest(a.files);
  a.analyzed = true;
  a.ok = true;
  a.preamble_fp = 0xfeed;
  a.func_fps["a"] = {11, 12};
  a.func_fps["b"] = {21, 22};
  a.import_sig = "sig-bytes\x01\x02";
  a.has_link_names = true;
  a.defined_names = {"a", "b"};
  a.extern_refs = {"c"};
  a.findings_canon = {R"({"tool":"blockstop","message":"m"})"};
  sf.modules["alpha"] = a;

  StoreModule d;  // dirty at save time: sources only
  d.name = "beta";
  d.files = {{"beta.mc", "void c(void) {}\n"}};
  d.source_digest = SourcesDigest(d.files);
  sf.modules["beta"] = d;

  sf.summaries[{"alpha", "a"}] = R"({"module":"alpha","function":"a","defined":true})";
  sf.summaries[{"beta", "c"}] = R"({"module":"beta","function":"c","defined":true})";
  return sf;
}

// ---------------------------------------------------------------------------
// Format
// ---------------------------------------------------------------------------

TEST(StoreFormat, RoundTrip) {
  StoreFile sf = SampleStore();
  std::string bytes = EncodeStore(sf);
  StoreFile back;
  std::string err;
  ASSERT_TRUE(DecodeStore(bytes, &back, &err)) << err;
  EXPECT_EQ(back.corpus_digest, sf.corpus_digest);
  EXPECT_EQ(back.linked, sf.linked);
  EXPECT_EQ(back.converged, sf.converged);
  ASSERT_EQ(back.modules.size(), 2u);
  const StoreModule& a = back.modules.at("alpha");
  EXPECT_EQ(a.files, sf.modules.at("alpha").files);
  EXPECT_EQ(a.source_digest, sf.modules.at("alpha").source_digest);
  EXPECT_TRUE(a.analyzed);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.preamble_fp, 0xfeedu);
  EXPECT_EQ(a.func_fps, sf.modules.at("alpha").func_fps);
  EXPECT_EQ(a.import_sig, sf.modules.at("alpha").import_sig);
  EXPECT_TRUE(a.has_link_names);
  EXPECT_EQ(a.defined_names, sf.modules.at("alpha").defined_names);
  EXPECT_EQ(a.extern_refs, sf.modules.at("alpha").extern_refs);
  EXPECT_EQ(a.findings_canon, sf.modules.at("alpha").findings_canon);
  EXPECT_FALSE(back.modules.at("beta").analyzed);
  EXPECT_EQ(back.summaries, sf.summaries);
  // Deterministic bytes: re-encoding the decode is the identity.
  EXPECT_EQ(EncodeStore(back), bytes);
}

TEST(StoreFormat, EveryStrictPrefixRejected) {
  std::string bytes = EncodeStore(SampleStore());
  StoreFile out;
  for (size_t n = 0; n < bytes.size(); ++n) {
    std::string err;
    EXPECT_FALSE(DecodeStore(bytes.substr(0, n), &out, &err))
        << "prefix of " << n << " bytes accepted";
  }
}

TEST(StoreFormat, TrailingBytesRejected) {
  std::string bytes = EncodeStore(SampleStore()) + "x";
  StoreFile out;
  std::string err;
  EXPECT_FALSE(DecodeStore(bytes, &out, &err));
  EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(StoreFormat, BadHeaderRejected) {
  const std::string good = EncodeStore(SampleStore());
  StoreFile out;
  for (size_t byte : {size_t{0}, size_t{1}, size_t{2}}) {  // magic0/magic1/version
    std::string bad = good;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x5a);
    std::string err;
    EXPECT_FALSE(DecodeStore(bad, &out, &err)) << "header byte " << byte;
  }
  // Unknown flag bits are a format extension signal, not noise to ignore.
  std::string bad = good;
  bad[3] = static_cast<char>(bad[3] | 0x80);
  std::string err;
  EXPECT_FALSE(DecodeStore(bad, &out, &err));
}

TEST(StoreFormat, RandomBytesFuzz) {
  Rng rng(0xdecade);
  StoreFile out;
  for (int round = 0; round < 300; ++round) {
    std::string bytes;
    const int len = static_cast<int>(rng.Below(200));
    for (int i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.Below(256)));
    }
    if (rng.Chance(1, 2) && bytes.size() >= kStoreHeaderSize) {
      // Half the rounds get a valid header so the body decoders get hit.
      bytes[0] = static_cast<char>(kStoreMagic0);
      bytes[1] = static_cast<char>(kStoreMagic1);
      bytes[2] = static_cast<char>(kStoreVersion);
      bytes[3] = static_cast<char>(rng.Below(4));
    }
    std::string err;
    DecodeStore(bytes, &out, &err);  // must not crash or over-read
  }
}

TEST(StoreFormat, MutatedByteFuzz) {
  const std::string good = EncodeStore(SampleStore());
  Rng rng(0xbadc0de);
  for (int round = 0; round < 300; ++round) {
    std::string bytes = good;
    const int flips = 1 + static_cast<int>(rng.Below(3));
    for (int i = 0; i < flips; ++i) {
      bytes[rng.Below(bytes.size())] ^= static_cast<char>(1 + rng.Below(255));
    }
    StoreFile out;
    std::string err;
    if (DecodeStore(bytes, &out, &err)) {
      EncodeStore(out);  // a benign mutation must still re-encode safely
    }
  }
}

TEST(StoreFormat, FileRoundTripAndMissingFile) {
  StorePath path("file_round_trip");
  StoreFile sf = SampleStore();
  std::string err;
  ASSERT_TRUE(WriteStoreFile(path.get(), sf, &err)) << err;
  StoreFile back;
  ASSERT_TRUE(ReadStoreFile(path.get(), &back, &err)) << err;
  EXPECT_EQ(EncodeStore(back), EncodeStore(sf));
  StoreFile missing;
  EXPECT_FALSE(ReadStoreFile(path.get() + ".nope", &missing, &err));
}

// ---------------------------------------------------------------------------
// Warm start
// ---------------------------------------------------------------------------

TEST(StoreSession, WarmStartIsByteIdenticalAndFree) {
  StorePath path("warm_start");
  std::vector<ModuleSources> corpus = SmallCorpus();

  AnalysisSession cold = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult cold_result = cold.RunLinked();
  ASSERT_TRUE(cold.link_stats().converged);
  std::string err;
  ASSERT_TRUE(cold.SaveStore(path.get(), &err)) << err;

  // The daemon restart shape: same corpus re-registered, then LoadStore.
  AnalysisSession warm = LinkedPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(warm.LoadStore(path.get(), &err)) << err;
  SessionResult warm_result = warm.RunLinked();
  ASSERT_TRUE(warm.link_stats().converged);
  EXPECT_EQ(warm.link_stats().rounds, 1) << "warm relink must be one idle round";
  EXPECT_EQ(warm.link_stats().module_analyses, 0);
  EXPECT_EQ(Dump(warm_result.findings), Dump(cold_result.findings));
  EXPECT_EQ(warm_result.modules_reused, static_cast<int>(corpus.size()));
}

TEST(StoreSession, WarmStartAdoptsStoreOnlyModules) {
  StorePath path("adopt");
  std::vector<ModuleSources> corpus = SmallCorpus();
  AnalysisSession cold = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult cold_result = cold.RunLinked();
  std::string err;
  ASSERT_TRUE(cold.SaveStore(path.get(), &err)) << err;

  // An empty session: every module comes from the store (sources included).
  AnalysisSession warm = LinkedPipeline().BuildSession();
  ASSERT_TRUE(warm.LoadStore(path.get(), &err)) << err;
  EXPECT_EQ(warm.module_count(), corpus.size());
  SessionResult warm_result = warm.RunLinked();
  EXPECT_EQ(warm.link_stats().module_analyses, 0);
  EXPECT_EQ(Dump(warm_result.findings), Dump(cold_result.findings));
}

TEST(StoreSession, WarmEditMatchesColdEdit) {
  StorePath path("warm_edit");
  std::vector<ModuleSources> corpus = SmallCorpus();
  {
    AnalysisSession s = LinkedPipeline().ForEachModule(corpus).BuildSession();
    s.RunLinked();
    std::string err;
    ASSERT_TRUE(s.SaveStore(path.get(), &err)) << err;
  }

  const std::string fn = SynthFuncName(LinkedModulePrefix(1), 5);
  const std::string def =
      "void " + fn + "(int n) {\n  int pad[16]; pad[0] = n;\n  msleep(n);\n}\n";

  AnalysisSession warm = LinkedPipeline().ForEachModule(corpus).BuildSession();
  std::string err;
  ASSERT_TRUE(warm.LoadStore(path.get(), &err)) << err;
  ASSERT_TRUE(warm.ReplaceFunction("mod_01", fn, def));
  SessionResult warm_result = warm.RunLinked();
  ASSERT_TRUE(warm.link_stats().converged);
  // Only the edited component re-analyzes over the restored table.
  EXPECT_LT(warm.link_stats().module_analyses,
            warm.link_stats().rounds * static_cast<int>(corpus.size()));

  AnalysisSession cold = LinkedPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(cold.ReplaceFunction("mod_01", fn, def));
  SessionResult cold_result = cold.RunLinked();
  EXPECT_EQ(Dump(warm_result.findings), Dump(cold_result.findings));
}

TEST(StoreSession, StaleCorpusDigestRejected) {
  StorePath path("stale_digest");
  std::vector<ModuleSources> corpus = SmallCorpus();
  AnalysisSession s = LinkedPipeline().ForEachModule(corpus).BuildSession();
  s.RunLinked();
  std::string err;
  ASSERT_TRUE(s.SaveStore(path.get(), &err)) << err;

  // A different recipe (different tool set) must refuse the facts.
  PipelineBuilder other;
  other.Tool("blockstop");
  AnalysisSession mismatched = other.ForEachModule(corpus).BuildSession();
  EXPECT_FALSE(mismatched.LoadStore(path.get(), &err));
  EXPECT_NE(err.find("digest"), std::string::npos) << err;
  // ... while the identical recipe accepts them; shard count is NOT part of
  // the digest (it cannot change results).
  AnalysisSession sharded = LinkedPipeline(3).ForEachModule(corpus).BuildSession();
  EXPECT_TRUE(sharded.LoadStore(path.get(), &err)) << err;
}

TEST(StoreSession, CorruptAndMalformedStoresRejected) {
  StorePath path("corrupt");
  std::vector<ModuleSources> corpus = SmallCorpus();
  AnalysisSession s = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult cold_result = s.RunLinked();
  std::string err;
  ASSERT_TRUE(s.SaveStore(path.get(), &err)) << err;

  // A malformed summary row (bad JSON) fails the load atomically.
  StoreFile sf;
  ASSERT_TRUE(ReadStoreFile(path.get(), &sf, &err)) << err;
  ASSERT_FALSE(sf.summaries.empty());
  sf.summaries.begin()->second = "{not json";
  ASSERT_TRUE(WriteStoreFile(path.get(), sf, &err)) << err;
  AnalysisSession fresh = LinkedPipeline().ForEachModule(corpus).BuildSession();
  EXPECT_FALSE(fresh.LoadStore(path.get(), &err));
  // The failed load left the session cold but intact: a cold run still
  // produces the canonical result.
  SessionResult after = fresh.RunLinked();
  EXPECT_EQ(Dump(after.findings), Dump(cold_result.findings));
}

TEST(StoreSession, UnconvergedStoreRecoversIdentically) {
  StorePath path("unconverged");
  std::vector<ModuleSources> corpus = SmallCorpus();
  AnalysisSession s = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult cold_result = s.RunLinked();
  std::string err;
  ASSERT_TRUE(s.SaveStore(path.get(), &err)) << err;

  // Simulate a mid-run crash: same table, converged bit off. The loader
  // must distrust round attribution and mark everything dirty.
  StoreFile sf;
  ASSERT_TRUE(ReadStoreFile(path.get(), &sf, &err)) << err;
  sf.converged = false;
  ASSERT_TRUE(WriteStoreFile(path.get(), sf, &err)) << err;

  AnalysisSession warm = LinkedPipeline().ForEachModule(corpus).BuildSession();
  ASSERT_TRUE(warm.LoadStore(path.get(), &err)) << err;
  SessionResult recovered = warm.RunLinked();
  ASSERT_TRUE(warm.link_stats().converged);
  EXPECT_GT(warm.link_stats().module_analyses, 0) << "recovery must re-derive";
  EXPECT_EQ(Dump(recovered.findings), Dump(cold_result.findings));
}

// ---------------------------------------------------------------------------
// Distributed relink (in-process workers via the run_worker hook)
// ---------------------------------------------------------------------------

DistributedLinkOptions InProcessOptions(const std::string& store, int workers) {
  DistributedLinkOptions opts;
  opts.store_path = store;
  opts.workers = workers;
  opts.run_worker = [store](const std::vector<std::string>& modules, std::string* err) {
    return AnalysisSession::RunStoreWorker(LinkedPipeline().Build(), store, modules, err);
  };
  return opts;
}

TEST(StoreDistributed, MatchesSingleProcessAcrossWorkerCounts) {
  std::vector<ModuleSources> corpus = SmallCorpus();
  AnalysisSession single = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult golden = single.RunLinked();
  ASSERT_TRUE(single.link_stats().converged);

  for (int workers : {1, 2, 3}) {
    StorePath path("dist_w" + std::to_string(workers));
    AnalysisSession dist = LinkedPipeline().ForEachModule(corpus).BuildSession();
    SessionResult result = dist.RunLinkedDistributed(InProcessOptions(path.get(), workers));
    ASSERT_TRUE(dist.link_stats().converged) << "workers=" << workers;
    EXPECT_EQ(Dump(result.findings), Dump(golden.findings)) << "workers=" << workers;
    EXPECT_EQ(dist.link_stats().rounds, single.link_stats().rounds);
    EXPECT_EQ(dist.link_stats().module_analyses, single.link_stats().module_analyses);
    EXPECT_EQ(dist.link_stats().summary_rows, single.link_stats().summary_rows);
    // The saved store is itself a valid warm start.
    AnalysisSession warm = LinkedPipeline().ForEachModule(corpus).BuildSession();
    std::string err;
    ASSERT_TRUE(warm.LoadStore(path.get(), &err)) << err;
    SessionResult rewarm = warm.RunLinked();
    EXPECT_EQ(warm.link_stats().module_analyses, 0);
    EXPECT_EQ(Dump(rewarm.findings), Dump(golden.findings));
  }
}

TEST(StoreDistributed, WorkerFailureLeavesRunResumable) {
  StorePath path("dist_fail");
  std::vector<ModuleSources> corpus = SmallCorpus();
  AnalysisSession single = LinkedPipeline().ForEachModule(corpus).BuildSession();
  SessionResult golden = single.RunLinked();

  AnalysisSession dist = LinkedPipeline().ForEachModule(corpus).BuildSession();
  DistributedLinkOptions failing = InProcessOptions(path.get(), 3);
  failing.run_worker = [&path](const std::vector<std::string>& modules, std::string* err) {
    for (const std::string& m : modules) {
      if (m == "mod_01") {
        *err = "worker died (test hook)";
        return false;  // deterministic mid-round death, shard unreported
      }
    }
    return AnalysisSession::RunStoreWorker(LinkedPipeline().Build(), path.get(), modules, err);
  };
  SessionResult failed = dist.RunLinkedDistributed(failing);
  EXPECT_FALSE(dist.link_stats().converged);
  bool reported = false;
  for (const Finding& f : failed.findings) {
    reported = reported || f.message.find("distributed relink failed") != std::string::npos;
  }
  EXPECT_TRUE(reported) << "a worker failure must surface as a finding";

  // Same session retries: dirty modules stayed dirty, the store stayed
  // consistent — the rerun converges to the canonical bytes.
  SessionResult retried = dist.RunLinkedDistributed(InProcessOptions(path.get(), 2));
  ASSERT_TRUE(dist.link_stats().converged);
  EXPECT_EQ(Dump(retried.findings), Dump(golden.findings));

  // And so does a cold process pointed at the store the failure left behind.
  AnalysisSession fresh = LinkedPipeline().ForEachModule(corpus).BuildSession();
  std::string err;
  ASSERT_TRUE(fresh.LoadStore(path.get(), &err)) << err;
  SessionResult resumed = fresh.RunLinked();
  ASSERT_TRUE(fresh.link_stats().converged);
  EXPECT_EQ(Dump(resumed.findings), Dump(golden.findings));
}

}  // namespace
}  // namespace ivy
