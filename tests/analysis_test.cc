// Points-to and call-graph tests (§2.3's analysis substrate).
#include <gtest/gtest.h>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/driver/compiler.h"

namespace ivy {
namespace {

// Finds the single indirect call expression inside `fn` and returns its
// resolved target names.
std::vector<std::string> TargetNames(const Compilation& comp, const PointsTo& pt,
                                     const std::string& fn_name) {
  CallGraph cg = CallGraph::Build(comp.prog, *comp.sema, pt);
  const FuncDecl* fn = comp.sema->func_map().at(fn_name);
  std::vector<std::string> names;
  for (const CallSite& site : cg.SitesOf(fn)) {
    for (const FuncDecl* t : site.indirect) {
      names.push_back(t->name);
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

const char* kDispatchProgram = R"(
  typedef int op_fn(int x);
  struct ops { op_fn* opt first; op_fn* opt second; };
  struct ops table;
  int double_it(int x) { return x * 2; }
  int triple_it(int x) { return x * 3; }
  int unrelated(int x) { return x; }
  void init(void) {
    table.first = double_it;
    table.second = triple_it;
  }
  int call_first(int x) {
    op_fn* opt f = table.first;
    if (f) { return f(x); }
    return 0;
  }
  int main(void) { init(); return call_first(4); }
)";

TEST(PointsTo, FieldSensitiveSeparatesSlots) {
  auto comp = CompileOne(kDispatchProgram, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  PointsTo pt(&comp->prog, comp->sema.get(), /*field_sensitive=*/true);
  pt.Solve();
  std::vector<std::string> names = TargetNames(*comp, pt, "call_first");
  EXPECT_EQ(names, std::vector<std::string>({"double_it"}));
}

TEST(PointsTo, FieldInsensitiveMergesSlots) {
  auto comp = CompileOne(kDispatchProgram, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  PointsTo pt(&comp->prog, comp->sema.get(), /*field_sensitive=*/false);
  pt.Solve();
  std::vector<std::string> names = TargetNames(*comp, pt, "call_first");
  // Both slots merge into one cell: the imprecision behind the paper's FPs.
  EXPECT_EQ(names, std::vector<std::string>({"double_it", "triple_it"}));
}

TEST(PointsTo, FlowsThroughLocalsAndParams) {
  const char* src = R"(
    typedef int op_fn(int x);
    int inc(int x) { return x + 1; }
    int apply(op_fn* f, int x) { return f(x); }
    int main(void) {
      op_fn* g = inc;
      return apply(g, 1);
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  PointsTo pt(&comp->prog, comp->sema.get(), true);
  pt.Solve();
  EXPECT_EQ(TargetNames(*comp, pt, "apply"), std::vector<std::string>({"inc"}));
  // Soundness: the VM must agree the call works.
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 2);
}

TEST(PointsTo, FlowsThroughReturnsAndConditionals) {
  const char* src = R"(
    typedef int op_fn(int x);
    int a_fn(int x) { return 1; }
    int b_fn(int x) { return 2; }
    op_fn* pick(int which) { return which ? a_fn : b_fn; }
    int run(int which) {
      op_fn* f = pick(which);
      return f(0);
    }
    int main(void) { return run(1) * 10 + run(0); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  PointsTo pt(&comp->prog, comp->sema.get(), true);
  pt.Solve();
  EXPECT_EQ(TargetNames(*comp, pt, "run"), std::vector<std::string>({"a_fn", "b_fn"}));
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 12);
}

TEST(PointsTo, ArrayTablesCollapse) {
  const char* src = R"(
    typedef int op_fn(int x);
    op_fn* opt table[4];
    int one(int x) { return 1; }
    int two(int x) { return 2; }
    void init(void) { table[0] = one; table[1] = two; }
    int dispatch(int i) {
      op_fn* opt f = table[i];
      if (f) { return f(0); }
      return -1;
    }
    int main(void) { init(); return dispatch(1); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  PointsTo pt(&comp->prog, comp->sema.get(), true);
  pt.Solve();
  EXPECT_EQ(TargetNames(*comp, pt, "dispatch"), std::vector<std::string>({"one", "two"}));
}

TEST(PointsTo, SoundnessAgainstVm) {
  // Whatever function the VM actually calls must be in the points-to set.
  auto comp = CompileOne(kDispatchProgram, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  PointsTo pt(&comp->prog, comp->sema.get(), true);
  pt.Solve();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 8);  // double_it(4) — and double_it is the resolved target
}

TEST(CallGraph, DirectAndBuiltinEdges) {
  const char* src = R"(
    void leaf(void) { }
    void mid(void) { leaf(); kfree(null); }
    int main(void) { mid(); return 0; }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  PointsTo pt(&comp->prog, comp->sema.get(), true);
  pt.Solve();
  CallGraph cg = CallGraph::Build(comp->prog, *comp->sema, pt);
  const FuncDecl* mid = comp->sema->func_map().at("mid");
  const auto& sites = cg.SitesOf(mid);
  ASSERT_EQ(sites.size(), 2u);
  int direct = 0;
  int builtin = 0;
  for (const CallSite& s : sites) {
    direct += s.direct != nullptr;
    builtin += s.builtin != nullptr;
  }
  EXPECT_EQ(direct, 1);
  EXPECT_EQ(builtin, 1);
  std::set<const FuncDecl*> callees = cg.Callees(mid);
  EXPECT_EQ(callees.size(), 1u);
}

TEST(CallGraph, TriggerIrqTargetsBecomeIrqEntries) {
  const char* src = R"(
    typedef void irq_fn(int x);
    int hits;
    void my_handler(int x) { hits = hits + x; }
    int main(void) {
      trigger_irq(my_handler, 5);
      return hits;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  PointsTo pt(&comp->prog, comp->sema.get(), true);
  pt.Solve();
  CallGraph cg = CallGraph::Build(comp->prog, *comp->sema, pt);
  bool found = false;
  for (const FuncDecl* fn : cg.irq_entries()) {
    if (fn->name == "my_handler") {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 5);
}

TEST(CallGraph, KernelCorpusScale) {
  auto comp = Compile({}, ToolConfig{});
  ASSERT_TRUE(comp->ok);
}

}  // namespace
}  // namespace ivy
