// Tests for the procfs/bio corpus subsystems and the IR verifier.
#include <gtest/gtest.h>

#include "src/ir/verify.h"
#include "src/kernel/corpus.h"

namespace ivy {
namespace {

TEST(IrVerify, CorpusModuleIsValid) {
  for (bool deputy : {false, true}) {
    ToolConfig cfg;
    cfg.deputy = deputy;
    auto comp = CompileKernel(cfg);
    ASSERT_TRUE(comp->ok) << comp->Errors();
    std::vector<std::string> problems = VerifyModule(comp->module);
    EXPECT_TRUE(problems.empty()) << problems[0];
  }
}

TEST(IrVerify, SmallProgramsValid) {
  const char* programs[] = {
      "int main(void) { return 0; }",
      "int f(int x) { return x > 0 ? f(x - 1) : 0; } int main(void) { return f(3); }",
      "int main(void) { int a[4]; for (int i = 0; i < 4; i++) { a[i] = i; } return a[2]; }",
  };
  for (const char* src : programs) {
    auto comp = CompileOne(src, ToolConfig{});
    ASSERT_TRUE(comp->ok) << comp->Errors();
    std::vector<std::string> problems = VerifyModule(comp->module);
    EXPECT_TRUE(problems.empty()) << src << ": " << problems[0];
  }
}

class ProcfsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ToolConfig cfg;
    cfg.ccount = true;
    comp_ = CompileKernel(cfg);
    ASSERT_TRUE(comp_->ok) << comp_->Errors();
    vm_ = MakeVm(*comp_);
    ASSERT_TRUE(vm_->Call("boot_kernel", {3}).ok);
  }
  std::unique_ptr<Compilation> comp_;
  std::unique_ptr<Vm> vm_;
};

TEST_F(ProcfsTest, ProcStatFormatsKernelState) {
  // Read /proc/stat through a Mini-C shim that prints the generated text.
  const char* shim = R"(
    int proc_probe(void) {
      char buf[128];
      int n = proc_read("stat", buf, 128);
      if (n <= 0) { return n; }
      printk("%s", buf);
      return n;
    }
  )";
  // Recompile corpus + shim as one program.
  std::vector<SourceFile> files = KernelSources();
  files.push_back(SourceFile{"probe.mc", shim});
  ToolConfig cfg;
  auto comp = Compile(files, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("boot_kernel", {4}).ok);
  vm->ClearLog();
  VmResult r = vm->Call("proc_probe");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_NE(vm->log().find("forks "), std::string::npos) << vm->log();
  EXPECT_NE(vm->log().find("signals "), std::string::npos);
}

TEST_F(ProcfsTest, UnknownProcEntryReturnsEnoent) {
  const char* shim = R"(
    int probe_missing(void) {
      char buf[64];
      return proc_read("nope", buf, 64);
    }
  )";
  std::vector<SourceFile> files = KernelSources();
  files.push_back(SourceFile{"probe.mc", shim});
  auto comp = Compile(files, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("boot_kernel", {2}).ok);
  EXPECT_EQ(vm->Call("probe_missing").value, -2);
}

TEST(BlockLayer, ElevatorSortsAndRoundTrips) {
  const char* shim = R"(
    int blk_probe(void) {
      char a[64];
      char b[64];
      for (int i = 0; i < 64; i++) { a[i] = 'A' + i % 26; }
      // Write out of order: the elevator queues them sorted.
      blk_write_sync(9, a, 64);
      blk_write_sync(3, a, 64);
      blk_write_sync(7, a, 64);
      int n = blk_read_sync(3, b, 64);
      if (n != 64) { return -1; }
      for (int i = 0; i < 64; i++) {
        if (b[i] != a[i]) { return -2; }
      }
      return bios_completed;
    }
  )";
  std::vector<SourceFile> files = KernelSources();
  files.push_back(SourceFile{"probe.mc", shim});
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = Compile(files, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("boot_kernel", {2}).ok);
  VmResult r = vm->Call("blk_probe");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_GE(r.value, 3);  // at least the three probe bios completed
  EXPECT_EQ(vm->heap().stats().frees_bad, 0) << "bio frees must all verify";
}

TEST(BlockLayer, QueuedBiosSurviveUntilFlush) {
  const char* shim = R"(
    int blk_queue_probe(void) {
      for (int i = 0; i < 8; i++) {
        struct bio* opt b = bio_alloc(GFP_KERNEL);
        if (!b) { return -1; }
        b->sector = 8 - i;    // reverse order exercises the sorted insert
        b->len = 16;
        b->write = 1;
        blk_submit(b);
      }
      int depth = blk_queue.depth;
      int done = blk_flush();
      return depth * 100 + done;
    }
  )";
  std::vector<SourceFile> files = KernelSources();
  files.push_back(SourceFile{"probe.mc", shim});
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = Compile(files, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("boot_kernel", {2}).ok);
  VmResult r = vm->Call("blk_queue_probe");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 808);
  EXPECT_EQ(vm->heap().stats().frees_bad, 0);
}

}  // namespace
}  // namespace ivy
