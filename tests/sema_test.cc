// Semantic-analysis tests: layout rules, typing rules, scoping, and the
// Deputy-specific legality checks sema enforces before lowering.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"

namespace ivy {
namespace {

std::unique_ptr<Compilation> Check(const std::string& src) {
  return CompileOne(src, ToolConfig{});
}

TEST(SemaLayout, StructOffsetsAndPadding) {
  auto comp = Check(R"(
    struct s { char a; int b; char c; char d; int e; };
    int main(void) { return sizeof(struct s); }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  const RecordDecl* s = comp->prog.FindRecord("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->fields[0].offset, 0);   // a
  EXPECT_EQ(s->fields[1].offset, 8);   // b (int aligned)
  EXPECT_EQ(s->fields[2].offset, 16);  // c
  EXPECT_EQ(s->fields[3].offset, 17);  // d packs next to c
  EXPECT_EQ(s->fields[4].offset, 24);  // e re-aligned
  EXPECT_EQ(s->size, 32);
}

TEST(SemaLayout, UnionSizeIsMaxMember) {
  auto comp = Check(R"(
    struct holder {
      int tag;
      union { int big when(tag == 1); char small when(tag == 2); } u;
    };
    int main(void) { return sizeof(struct holder); }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  EXPECT_EQ(comp->prog.FindRecord("holder")->size, 16);
}

TEST(SemaLayout, RecursiveValueFieldRejected) {
  auto comp = Check("struct s { struct s inner; };");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("recursively"));
}

TEST(SemaLayout, SelfPointerIsFine) {
  auto comp = Check(R"(
    struct node { struct node* opt next; int v; };
    int main(void) { return sizeof(struct node); }
  )");
  EXPECT_TRUE(comp->ok) << comp->Errors();
}

TEST(SemaTypes, ArithmeticOnPointersRules) {
  EXPECT_TRUE(Check(R"(
    int main(void) {
      int a[4];
      int* p = a;
      int* q = p + 2;
      return q - p;   // element difference
    }
  )")->ok);
  EXPECT_FALSE(Check(R"(
    int main(void) {
      int a[4];
      int* p = a;
      int* q = p * 2;  // multiplication of pointers is illegal
      return 0;
    }
  )")->ok);
}

TEST(SemaTypes, PointerDifferenceScales) {
  auto comp = Check(R"(
    int main(void) {
      int a[8];
      int* p = a;
      int* count(8) q = a;
      return (q + 6) - p;
    }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 6);
}

TEST(SemaTypes, ArgumentCountMismatchRejected) {
  auto comp = Check(R"(
    int f(int a, int b) { return a + b; }
    int main(void) { return f(1); }
  )");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("arguments"));
}

TEST(SemaTypes, VarargsAllowsExtras) {
  auto comp = Check(R"(
    int main(void) { return printk("%d %d %d\n", 1, 2, 3); }
  )");
  EXPECT_TRUE(comp->ok) << comp->Errors();
}

TEST(SemaTypes, VoidDerefRejected) {
  auto comp = Check(R"(
    int main(void) {
      void* p = kmalloc(8, GFP_KERNEL);
      return *p;
    }
  )");
  EXPECT_FALSE(comp->ok);
}

TEST(SemaTypes, AssignToRValueRejected) {
  auto comp = Check("int main(void) { 1 + 2 = 3; return 0; }");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("lvalue"));
}

TEST(SemaTypes, ReturnTypeMismatchRejected) {
  auto comp = Check(R"(
    struct s { int x; };
    struct s g;
    int main(void) { return &g; }
  )");
  EXPECT_FALSE(comp->ok);
}

TEST(SemaTypes, VoidFunctionValueUseRejected) {
  auto comp = Check(R"(
    void nothing(void) { }
    int main(void) { return nothing() + 1; }
  )");
  EXPECT_FALSE(comp->ok);
}

TEST(SemaScopes, ShadowingAndBlockScopes) {
  auto comp = Check(R"(
    int x = 1;
    int main(void) {
      int x = 2;
      {
        int x = 3;
        if (x != 3) { return -1; }
      }
      return x;
    }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 2);
}

TEST(SemaScopes, DuplicateLocalRejected) {
  auto comp = Check("int main(void) { int a = 1; int a = 2; return a; }");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("redeclaration"));
}

TEST(SemaScopes, DuplicateFunctionRejected) {
  auto comp = Check("int f(void) { return 1; } int f(void) { return 2; }");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("redefinition"));
}

TEST(SemaScopes, DeclThenDefMergesAttributes) {
  auto comp = Check(R"(
    int worker(void) blocking;
    int worker(void) { return 1; }
    int main(void) { return worker(); }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  EXPECT_TRUE(comp->sema->func_map().at("worker")->attrs.blocking);
}

TEST(SemaScopes, BreakOutsideLoopRejected) {
  auto comp = Check("int main(void) { break; return 0; }");
  EXPECT_FALSE(comp->ok);
}

TEST(SemaAnnots, CountMustBeInteger) {
  auto comp = Check(R"(
    struct s { int x; };
    int f(int* count(p) a, struct s* p) { return 0; }
  )");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("integer"));
}

TEST(SemaAnnots, FieldCountMustNameSibling) {
  auto comp = Check(R"(
    struct buf { char* count(nosuch) data; };
  )");
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("unknown field"));
}

TEST(SemaAnnots, WhenOutsideInlineUnionRejected) {
  auto comp = Check(R"(
    struct s { int tag; int x when(tag == 1); };
  )");
  EXPECT_FALSE(comp->ok);
}

TEST(SemaStats, TrustedAccountingTracksBlocks) {
  auto comp = Check(R"(
    int main(void) {
      trusted {
        int x = 1;
        int y = 2;
        return x + y;
      }
    }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  EXPECT_EQ(comp->sema->stats().trusted_blocks, 1);
  EXPECT_GE(comp->sema->stats().trusted_lines.size(), 3u);
}

TEST(SemaStats, AnnotationSitesCounted) {
  auto comp = Check(R"(
    struct b { int n; char* count(n) d; };
    int f(char* nullterm s, int* opt p) blocking { return 0; }
    int main(void) { return 0; }
  )");
  ASSERT_TRUE(comp->ok) << comp->Errors();
  // count(n) field, nullterm param, opt param, blocking attr.
  EXPECT_GE(comp->sema->stats().annotation_sites, 4);
}

}  // namespace
}  // namespace ivy
