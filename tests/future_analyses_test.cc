// Tests for the §3.1 future analyses: LockSafe, StackCheck and ErrCheck.
#include <gtest/gtest.h>

#include "src/analysis/callgraph.h"
#include "src/driver/compiler.h"
#include "src/errcheck/errcheck.h"
#include "src/kernel/corpus.h"
#include "src/locksafe/locksafe.h"
#include "src/stackcheck/stackcheck.h"
#include "src/tool/analysis_context.h"

namespace ivy {
namespace {

// The shared-cache idiom: one AnalysisContext per compilation, every tool
// pulls the same memoized call graph.
struct Analyzed {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<AnalysisContext> ctx;
  const CallGraph* cg = nullptr;
};

Analyzed Build(const std::string& src) {
  Analyzed a;
  a.comp = CompileOne(src, ToolConfig{});
  EXPECT_TRUE(a.comp->ok) << a.comp->Errors();
  a.ctx = std::make_unique<AnalysisContext>(a.comp.get(), /*field_sensitive=*/true);
  a.cg = &a.ctx->callgraph();
  return a;
}

TEST(LockSafe, DetectsAbbaInversion) {
  const char* src = R"(
    int la;
    int lb;
    void path1(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); }
    void path2(void) { spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb); }
  )";
  Analyzed a = Build(src);
  LockSafe ls(&a.comp->prog, a.comp->sema.get(), a.cg);
  LockSafeReport r = ls.Run();
  ASSERT_EQ(r.deadlock_cycles.size(), 1u);
  EXPECT_EQ(r.deadlock_cycles[0].size(), 2u);
}

TEST(LockSafe, ConsistentOrderIsClean) {
  const char* src = R"(
    int la;
    int lb;
    void path1(void) { spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la); }
    void path2(void) { spin_lock(&la); spin_unlock(&la); spin_lock(&lb); spin_unlock(&lb); }
  )";
  Analyzed a = Build(src);
  LockSafe ls(&a.comp->prog, a.comp->sema.get(), a.cg);
  EXPECT_TRUE(ls.Run().deadlock_cycles.empty());
}

TEST(LockSafe, IrqVsProcessInvariant) {
  const char* src = R"(
    typedef void h_fn(int x);
    int stats;
    void handler(int x) interrupt_handler { spin_lock(&stats); spin_unlock(&stats); }
    void reader(void) { spin_lock(&stats); spin_unlock(&stats); }  // irqs on!
  )";
  Analyzed a = Build(src);
  LockSafe ls(&a.comp->prog, a.comp->sema.get(), a.cg);
  LockSafeReport r = ls.Run();
  ASSERT_EQ(r.irq_unsafe_locks.size(), 1u);
  EXPECT_EQ(r.irq_unsafe_locks[0], "stats");
}

TEST(LockSafe, IrqsaveUsageIsSafe) {
  const char* src = R"(
    typedef void h_fn(int x);
    int stats;
    void handler(int x) interrupt_handler { spin_lock(&stats); spin_unlock(&stats); }
    void reader(void) {
      int f = spin_lock_irqsave(&stats);   // disables irqs: safe
      spin_unlock_irqrestore(&stats, f);
    }
  )";
  Analyzed a = Build(src);
  LockSafe ls(&a.comp->prog, a.comp->sema.get(), a.cg);
  EXPECT_TRUE(ls.Run().irq_unsafe_locks.empty());
}

TEST(LockSafe, RuntimeValidatorSeesStructNames) {
  const char* src = R"(
    int la;
    int lb;
    int main(void) {
      spin_lock(&la); spin_lock(&lb); spin_unlock(&lb); spin_unlock(&la);
      spin_lock(&lb); spin_lock(&la); spin_unlock(&la); spin_unlock(&lb);
      return 0;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("main").ok);
  LockSafeReport r = LockSafe::ValidateRuntime(*vm, comp->module);
  EXPECT_EQ(r.deadlock_cycles.size(), 1u);
}

TEST(StackCheck, SumsDeepestChain) {
  const char* src = R"(
    void leaf(void) { int pad[8]; pad[0] = 0; }          // 64-byte frame
    void mid(void) { int pad[16]; pad[0] = 0; leaf(); }  // 128 + 64
    void top(void) { mid(); }
  )";
  Analyzed a = Build(src);
  StackCheck sc(a.cg, &a.comp->module, 8192);
  StackCheckReport r = sc.Run({"top"});
  EXPECT_TRUE(r.fits_budget);
  // leaf=64, mid=128+pad, top has no locals: depth = frames summed.
  EXPECT_GE(r.entry_depths["top"], 64 + 128);
  EXPECT_LE(r.entry_depths["top"], 64 + 144 + 16);
}

TEST(StackCheck, BudgetExceededFlagged) {
  const char* src = R"(
    void huge(void) { int pad[2000]; pad[0] = 0; }
    void top(void) { huge(); }
  )";
  Analyzed a = Build(src);
  StackCheck sc(a.cg, &a.comp->module, 8192);
  StackCheckReport r = sc.Run({"top"});
  EXPECT_FALSE(r.fits_budget);
  EXPECT_GT(r.worst_case, 8192);
}

TEST(StackCheck, RecursionNeedsRuntimeChecks) {
  const char* src = R"(
    int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
    int top(void) { return fact(5); }
  )";
  Analyzed a = Build(src);
  StackCheck sc(a.cg, &a.comp->module, 8192);
  StackCheckReport r = sc.Run({"top"});
  EXPECT_FALSE(r.fits_budget);
  EXPECT_EQ(r.recursive.count("fact"), 1u);
}

TEST(StackCheck, IndirectCallsIncluded) {
  const char* src = R"(
    typedef void op_fn(void);
    op_fn* opt hook;
    void fat(void) { int pad[100]; pad[0] = 0; }
    void install(void) { hook = fat; }
    void top(void) {
      op_fn* opt f = hook;
      if (f) { f(); }
    }
  )";
  Analyzed a = Build(src);
  StackCheck sc(a.cg, &a.comp->module, 8192);
  StackCheckReport r = sc.Run({"top"});
  EXPECT_GE(r.entry_depths["top"], 800);
}

TEST(ErrCheck, DiscardedResultFlagged) {
  const char* src = R"(
    int may_fail(void) errcode(-5) { return -5; }
    void careless(void) { may_fail(); }
  )";
  Analyzed a = Build(src);
  ErrCheck ec(&a.comp->prog, a.comp->sema.get(), a.cg);
  ErrCheckReport r = ec.Run();
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, "discarded");
  EXPECT_EQ(r.findings[0].caller, "careless");
}

TEST(ErrCheck, TestedResultIsClean) {
  const char* src = R"(
    int may_fail(void) errcode(-5) { return -5; }
    int careful(void) {
      int r = may_fail();
      if (r < 0) { return r; }
      return 0;
    }
  )";
  Analyzed a = Build(src);
  ErrCheck ec(&a.comp->prog, a.comp->sema.get(), a.cg);
  ErrCheckReport r = ec.Run();
  EXPECT_TRUE(r.findings.empty());
  EXPECT_EQ(r.checked_sites, 1);
}

TEST(ErrCheck, NeverTestedAssignmentFlagged) {
  const char* src = R"(
    int may_fail(void) errcode(-5) { return -5; }
    int sloppy(void) {
      int r = may_fail();
      return 0;   // r never consulted
    }
  )";
  Analyzed a = Build(src);
  ErrCheck ec(&a.comp->prog, a.comp->sema.get(), a.cg);
  ErrCheckReport r = ec.Run();
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].kind, "never-tested");
}

TEST(ErrCheck, NegativeConstantReturnsInferred) {
  // The paper's alternative: "negative constant return values are error
  // codes" without any annotation.
  const char* src = R"(
    int lookup(int k) { if (k < 0) { return -2; } return k; }
    void uses(void) { lookup(5); }
  )";
  Analyzed a = Build(src);
  ErrCheck ec(&a.comp->prog, a.comp->sema.get(), a.cg);
  ErrCheckReport r = ec.Run();
  EXPECT_EQ(r.inferred_funcs, 1);
  EXPECT_EQ(r.findings.size(), 1u);
}

TEST(ErrCheck, PropagatedReturnIsHandled) {
  const char* src = R"(
    int may_fail(void) errcode(-5) { return -5; }
    int forwards(void) { return may_fail(); }   // caller will check
  )";
  Analyzed a = Build(src);
  ErrCheck ec(&a.comp->prog, a.comp->sema.get(), a.cg);
  EXPECT_TRUE(ec.Run().findings.empty());
}

TEST(FutureAnalyses, CorpusFindsPlantedIssues) {
  auto comp = CompileKernel(ToolConfig{});
  ASSERT_TRUE(comp->ok);
  AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
  const CallGraph& cg = ctx.callgraph();

  LockSafe ls(&comp->prog, comp->sema.get(), &cg);
  LockSafeReport lr = ls.Run();
  EXPECT_GE(lr.deadlock_cycles.size(), 1u) << "netdev tx/stats inversion";
  EXPECT_GE(lr.irq_unsafe_locks.size(), 1u) << "stats_lock irq invariant";

  StackCheck sc(&cg, &comp->module, 8192);
  StackCheckReport sr = sc.Run({"boot_kernel", "syscall_entry"});
  EXPECT_TRUE(sr.recursive.empty());
  EXPECT_LE(sr.worst_case, 8192);

  ErrCheck ec(&comp->prog, comp->sema.get(), &cg);
  ErrCheckReport er = ec.Run();
  EXPECT_GT(er.err_returning_funcs, 10);
  EXPECT_GT(er.findings.size(), 5u);

  // All three tools shared one call graph build.
  EXPECT_EQ(ctx.callgraph_builds(), 1);
}

}  // namespace
}  // namespace ivy
