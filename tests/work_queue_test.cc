// Stress tests for the work-stealing pool under the sharding layer: many
// tiny tasks, exception propagation (deterministic: lowest submission index
// wins), reuse after failure, nested submission, and clean shutdown while
// busy — the properties FunctionSharder's determinism contract leans on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "src/support/work_queue.h"
#include "src/tool/function_sharder.h"

namespace ivy {
namespace {

TEST(WorkQueue, TenThousandTinyTasks) {
  WorkQueue wq(4);
  EXPECT_EQ(wq.thread_count(), 4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10000; ++i) {
    wq.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  wq.Wait();
  EXPECT_EQ(counter.load(), 10000);
  // The queue is reusable: a second burst on the same pool.
  for (int i = 0; i < 10000; ++i) {
    wq.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  wq.Wait();
  EXPECT_EQ(counter.load(), 20000);
}

TEST(WorkQueue, ExceptionPropagatesAndDoesNotDeadlock) {
  WorkQueue wq(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 1000; ++i) {
    wq.Submit([i, &ran] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i % 100 == 13) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
  }
  // Several tasks threw; Wait rethrows exactly one — the earliest-submitted
  // (task 13), matching what a serial loop would have hit first.
  try {
    wq.Wait();
    FAIL() << "Wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 13");
  }
  // Every task still ran: one bad task never wedges or starves the pool.
  EXPECT_EQ(ran.load(), 1000);

  // And the pool stays usable after a failure.
  std::atomic<int> after{0};
  for (int i = 0; i < 100; ++i) {
    wq.Submit([&after] { after.fetch_add(1, std::memory_order_relaxed); });
  }
  EXPECT_NO_THROW(wq.Wait());
  EXPECT_EQ(after.load(), 100);
}

TEST(WorkQueue, NestedSubmitIsCoveredByWait) {
  WorkQueue wq(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    wq.Submit([&wq, &counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
      wq.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  wq.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(WorkQueue, ShutdownWhileBusyIsClean) {
  std::atomic<int> ran{0};
  {
    WorkQueue wq(2);
    for (int i = 0; i < 500; ++i) {
      wq.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No Wait(): destruction must stop after the in-flight tasks, discard
    // the rest, and join without deadlocking.
  }
  EXPECT_LE(ran.load(), 500);
  // ran may legitimately be small; the assertion that matters is that we
  // reached this line at all (no hang) and ASan/TSan see no damage.
}

TEST(WorkQueue, ExplicitShutdownIsIdempotent) {
  WorkQueue wq(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 16; ++i) {
    wq.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  wq.Wait();
  wq.Shutdown();
  wq.Shutdown();  // second call is a no-op
  EXPECT_EQ(counter.load(), 16);
}

TEST(WorkQueue, SubmitAfterShutdownIsDiscardedNotDeadlock) {
  WorkQueue wq(2);
  wq.Shutdown();
  std::atomic<int> counter{0};
  wq.Submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  wq.Wait();  // nothing pending: must return immediately, not hang forever
  EXPECT_EQ(counter.load(), 0);
}

TEST(FunctionSharder, PartitionIsContiguousAndBalanced) {
  FunctionSharder sharder({}, 4);
  auto ranges = sharder.Partition(10);
  ASSERT_EQ(ranges.size(), 4u);
  // 10 items over 4 shards: 3,3,2,2 — contiguous, in order, no gaps.
  EXPECT_EQ(ranges[0], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(ranges[1], (std::pair<size_t, size_t>{3, 6}));
  EXPECT_EQ(ranges[2], (std::pair<size_t, size_t>{6, 8}));
  EXPECT_EQ(ranges[3], (std::pair<size_t, size_t>{8, 10}));
  // Fewer items than shards: one chunk per item, never an empty chunk.
  EXPECT_EQ(sharder.Partition(2).size(), 2u);
  EXPECT_TRUE(sharder.Partition(0).empty());
}

TEST(TaskGroup, IsolatesCompletionAndErrorsPerGroup) {
  // Two groups sharing one pool: each Wait() observes only its own tasks,
  // and an exception in one group never surfaces in the other — the
  // property that lets every pass (and every module) share a session pool.
  WorkQueue wq(4);
  TaskGroup good(wq);
  TaskGroup bad(wq);
  std::atomic<int> good_done{0};
  for (int i = 0; i < 64; ++i) {
    good.Submit([&good_done] { good_done.fetch_add(1); });
    bad.Submit([i] {
      if (i % 2 == 0) {
        throw std::runtime_error("boom " + std::to_string(i));
      }
    });
  }
  EXPECT_NO_THROW(good.Wait());
  EXPECT_EQ(good_done.load(), 64);
  // Lowest submission index in *this* group: i == 0.
  try {
    bad.Wait();
    FAIL() << "expected the group's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 0");
  }
  // Both groups stay usable after Wait.
  good.Submit([&good_done] { good_done.fetch_add(1); });
  good.Wait();
  EXPECT_EQ(good_done.load(), 65);
}

TEST(TaskGroup, RunsInlineAfterShutdown) {
  WorkQueue wq(2);
  wq.Shutdown();
  TaskGroup group(wq);
  std::atomic<int> ran{0};
  group.Submit([&ran] { ran.fetch_add(1); });
  group.Wait();  // degraded to inline execution — still completes
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroup, ConcurrentGroupsStress) {
  WorkQueue wq(4);
  std::atomic<int64_t> total{0};
  std::vector<std::thread> drivers;
  for (int d = 0; d < 4; ++d) {
    drivers.emplace_back([&wq, &total] {
      for (int round = 0; round < 20; ++round) {
        TaskGroup group(wq);
        for (int i = 0; i < 50; ++i) {
          group.Submit([&total] { total.fetch_add(1); });
        }
        group.Wait();
      }
    });
  }
  for (std::thread& t : drivers) {
    t.join();
  }
  EXPECT_EQ(total.load(), 4 * 20 * 50);
}

TEST(TaskGroup, TwoFailingKernelsRethrowLowestIndexDeterministically) {
  // The session scenario: two pass kernels share one pool and BOTH fail.
  // Each group must rethrow the exception its own serial loop would have
  // hit first — the lowest submission index within that group — on every
  // repetition, no matter how the workers interleave the two kernels'
  // tasks.
  WorkQueue wq(4);
  for (int iter = 0; iter < 200; ++iter) {
    TaskGroup kernel_a(wq);
    TaskGroup kernel_b(wq);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i) {
      kernel_a.Submit([i, &ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 7 == 3) {
          throw std::runtime_error("a" + std::to_string(i));
        }
      });
      kernel_b.Submit([i, &ran] {
        ran.fetch_add(1, std::memory_order_relaxed);
        if (i % 5 == 2) {
          throw std::runtime_error("b" + std::to_string(i));
        }
      });
    }
    // Lowest throwing index in kernel_a is 3, in kernel_b is 2 — always.
    try {
      kernel_a.Wait();
      FAIL() << "kernel_a did not throw (iter " << iter << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "a3") << "iter " << iter;
    }
    try {
      kernel_b.Wait();
      FAIL() << "kernel_b did not throw (iter " << iter << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "b2") << "iter " << iter;
    }
    EXPECT_EQ(ran.load(), 128) << "iter " << iter;
    // Both groups drained and stay reusable: a clean second burst.
    std::atomic<int> again{0};
    kernel_a.Submit([&again] { again.fetch_add(1); });
    kernel_b.Submit([&again] { again.fetch_add(1); });
    kernel_a.Wait();
    kernel_b.Wait();
    EXPECT_EQ(again.load(), 2);
  }
}

TEST(TaskGroup, CancelSkipsQueuedPayloadsButStillDrains) {
  WorkQueue wq(1);  // one worker: everything behind the blocker stays queued
  TaskGroup group(wq);

  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  group.Submit([&release] {
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (int i = 0; i < 16; ++i) {
    group.Submit([&ran] { ran.fetch_add(1); });
  }

  group.Cancel();
  EXPECT_TRUE(group.cancelled());
  release.store(true, std::memory_order_release);
  group.Wait();  // drains: skipped payloads still count as done

  EXPECT_EQ(ran.load(), 0) << "queued payload ran after Cancel()";

  // Submissions after the cancel are skipped outright too.
  group.Submit([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGroup, CancelDoesNotInterruptInFlightPayload) {
  WorkQueue wq(1);
  TaskGroup group(wq);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<bool> finished{false};
  group.Submit([&] {
    started.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    finished.store(true, std::memory_order_release);
  });
  while (!started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  group.Cancel();  // in-flight payload must run to completion
  release.store(true, std::memory_order_release);
  group.Wait();
  EXPECT_TRUE(finished.load());
}

TEST(TaskGroup, CancelOnDeadQueueSkipsInlineFallback) {
  WorkQueue wq(1);
  wq.Shutdown();
  TaskGroup group(wq);
  group.Cancel();
  std::atomic<int> ran{0};
  // Submit on a dead queue falls back to inline execution — which must also
  // honor the cancel.
  group.Submit([&ran] { ran.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(FunctionSharder, MapChunksReducesInChunkOrder) {
  FunctionSharder sharder({}, 3);
  WorkQueue wq(3);
  std::vector<std::vector<size_t>> chunks = sharder.MapChunks<size_t>(
      wq, 100, [](int, size_t begin, size_t end) {
        std::vector<size_t> out;
        for (size_t i = begin; i < end; ++i) {
          out.push_back(i);
        }
        return out;
      });
  std::vector<size_t> flat;
  for (const auto& c : chunks) {
    flat.insert(flat.end(), c.begin(), c.end());
  }
  ASSERT_EQ(flat.size(), 100u);
  for (size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(flat[i], i);  // flattening reproduces serial order
  }
}

}  // namespace
}  // namespace ivy
