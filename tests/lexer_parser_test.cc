// Frontend unit tests: lexer token coverage and parser structure/precedence.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/mc/lexer.h"

namespace ivy {
namespace {

std::vector<Token> LexAll(const std::string& text) {
  SourceManager sm;
  int32_t id = sm.AddFile("t.mc", text);
  DiagEngine diags(&sm);
  Lexer lexer(sm, id, &diags);
  return lexer.Lex();
}

TEST(Lexer, PunctuationAndOperators) {
  auto toks = LexAll("+ - * / % << >> <= >= == != && || ++ -- -> ... += <<=");
  std::vector<Tok> kinds;
  for (const Token& t : toks) {
    kinds.push_back(t.kind);
  }
  std::vector<Tok> expect = {Tok::kPlus,    Tok::kMinus,   Tok::kStar,      Tok::kSlash,
                             Tok::kPercent, Tok::kShl,     Tok::kShr,       Tok::kLessEq,
                             Tok::kGreaterEq, Tok::kEqEq,  Tok::kBangEq,    Tok::kAmpAmp,
                             Tok::kPipePipe, Tok::kPlusPlus, Tok::kMinusMinus, Tok::kArrow,
                             Tok::kEllipsis, Tok::kPlusEq, Tok::kShlEq,     Tok::kEof};
  EXPECT_EQ(kinds, expect);
}

TEST(Lexer, IntLiterals) {
  auto toks = LexAll("0 42 0xff 0X10");
  EXPECT_EQ(toks[0].int_val, 0);
  EXPECT_EQ(toks[1].int_val, 42);
  EXPECT_EQ(toks[2].int_val, 255);
  EXPECT_EQ(toks[3].int_val, 16);
}

TEST(Lexer, CharAndStringEscapes) {
  auto toks = LexAll(R"('a' '\n' '\0' "hi\tthere\n")");
  EXPECT_EQ(toks[0].int_val, 'a');
  EXPECT_EQ(toks[1].int_val, '\n');
  EXPECT_EQ(toks[2].int_val, 0);
  EXPECT_EQ(toks[3].text, "hi\tthere\n");
}

TEST(Lexer, CommentsAreSkipped) {
  auto toks = LexAll("a // line\n /* block\n spanning */ b");
  ASSERT_EQ(toks.size(), 3u);  // a, b, eof
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, KeywordsVsIdentifiers) {
  auto toks = LexAll("int interrupts count counter");
  EXPECT_EQ(toks[0].kind, Tok::kKwInt);
  EXPECT_EQ(toks[1].kind, Tok::kIdent);
  EXPECT_EQ(toks[2].kind, Tok::kKwCount);
  EXPECT_EQ(toks[3].kind, Tok::kIdent);
}

TEST(Lexer, SourceLocations) {
  auto toks = LexAll("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.col, 3);
}

TEST(Lexer, UnterminatedStringReported) {
  SourceManager sm;
  int32_t id = sm.AddFile("t.mc", "\"abc");
  DiagEngine diags(&sm);
  Lexer lexer(sm, id, &diags);
  lexer.Lex();
  EXPECT_GT(diags.error_count(), 0);
}

// Parser structure tests exercised through compilation.
int64_t Eval(const std::string& expr) {
  auto comp = CompileOne("int main(void) { return " + expr + "; }", ToolConfig{});
  EXPECT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  EXPECT_TRUE(r.ok) << r.trap_msg;
  return r.value;
}

struct PrecCase {
  const char* expr;
  int64_t expected;
};

class PrecedenceTest : public ::testing::TestWithParam<PrecCase> {};

TEST_P(PrecedenceTest, MatchesC) {
  EXPECT_EQ(Eval(GetParam().expr), GetParam().expected) << GetParam().expr;
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, PrecedenceTest,
    ::testing::Values(PrecCase{"2 + 3 * 4", 14}, PrecCase{"(2 + 3) * 4", 20},
                      PrecCase{"10 - 4 - 3", 3}, PrecCase{"2 << 3 + 1", 32},
                      PrecCase{"7 & 3 | 8", 11}, PrecCase{"1 | 2 ^ 3", 1},
                      PrecCase{"6 / 2 % 2", 1}, PrecCase{"1 < 2 == 1", 1},
                      PrecCase{"0 || 1 && 0", 0}, PrecCase{"!0 + !5", 1},
                      PrecCase{"~0 & 15", 15}, PrecCase{"-3 * -4", 12},
                      PrecCase{"1 ? 2 : 3", 2}, PrecCase{"0 ? 2 : 1 ? 4 : 5", 4},
                      PrecCase{"100 >> 2 >> 1", 12}, PrecCase{"5 % 3 + 1", 3}));

TEST(Parser, TypedefsAndCasts) {
  const char* src = R"(
    typedef int my_int;
    typedef char byte;
    int main(void) {
      my_int x = 300;
      byte b = (byte)x;     // truncates
      return (my_int)b;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 300 & 0xff);
}

TEST(Parser, NestedStructsAndArrays) {
  const char* src = R"(
    struct inner { int a; int b; };
    struct outer { struct inner pair[3]; int tail; };
    int main(void) {
      struct outer o;
      for (int i = 0; i < 3; i++) { o.pair[i].a = i; o.pair[i].b = i * 10; }
      o.tail = 5;
      return o.pair[2].a + o.pair[1].b + o.tail;  // 2 + 10 + 5
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 17);
}

TEST(Parser, MultiDeclaratorsAndForScopes) {
  const char* src = R"(
    int main(void) {
      int a = 1, b = 2, c;
      c = a + b;
      for (int a = 10; a < 12; a++) { c += a; }  // shadowing
      return c + a;  // 3+10+11 + 1
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 25);
}

TEST(Parser, AnnotationKeywordsAsFieldNames) {
  const char* src = R"(
    struct q { int count; int opt; int when; };
    int main(void) {
      struct q v;
      v.count = 1; v.opt = 2; v.when = 3;
      return v.count + v.opt + v.when;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 6);
}

TEST(Parser, EnumWithExplicitValues) {
  const char* src = R"(
    enum flags { A = 1 << 4, B, C = A | B };
    int main(void) { return C; }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  EXPECT_EQ(vm->Call("main").value, 16 | 17);
}

TEST(Parser, FunctionAttributesParse) {
  const char* src = R"(
    void helper(int flags) blocking_if(flags);
    void sleeper(void) blocking;
    int checked(void) noblock errcode(-1, -12) { assert_nonatomic(); return 0; }
    void handler(int x) interrupt_handler { }
    int main(void) { return checked(); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  FuncDecl* checked = comp->sema->func_map().at("checked");
  EXPECT_TRUE(checked->attrs.noblock);
  ASSERT_EQ(checked->attrs.errcodes.size(), 2u);
  EXPECT_EQ(checked->attrs.errcodes[0], -1);
  FuncDecl* helper = comp->sema->func_map().at("helper");
  EXPECT_EQ(helper->attrs.blocking_if_param, 0);
  EXPECT_TRUE(comp->sema->func_map().at("handler")->attrs.interrupt_handler);
}

TEST(Parser, ErrorRecoveryContinues) {
  // Two errors in distinct declarations should both be reported.
  const char* src = R"(
    int f(void) { return @; }
    int g(void) { return #; }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  EXPECT_FALSE(comp->ok);
  EXPECT_GE(comp->diags->error_count(), 2);
}

}  // namespace
}  // namespace ivy
