// VM runtime model tests: IRQ state, spinlocks, interrupt dispatch, user
// copies, traps, determinism, and the cost model's observability.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"

namespace ivy {
namespace {

VmResult RunSrc(const std::string& src, ToolConfig cfg = ToolConfig{}) {
  auto comp = CompileOne(src, cfg);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  if (!comp->ok) {
    return VmResult{};
  }
  auto vm = MakeVm(*comp);
  return vm->Call("main");
}

TEST(VmRuntime, IrqSaveRestoreNesting) {
  const char* src = R"(
    int main(void) {
      int before = irqs_disabled();
      int f1 = local_irq_save();
      int inside = irqs_disabled();
      int f2 = local_irq_save();   // nested save sees disabled
      local_irq_restore(f2);       // restores to disabled
      int still = irqs_disabled();
      local_irq_restore(f1);       // restores to enabled
      int after = irqs_disabled();
      return before * 1000 + inside * 100 + still * 10 + after;
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 110);
}

TEST(VmRuntime, RecursiveSpinlockDeadlocks) {
  const char* src = R"(
    int lk;
    int main(void) {
      spin_lock(&lk);
      spin_lock(&lk);
      return 0;
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kDeadlock);
}

TEST(VmRuntime, UnlockOfUnheldLockTraps) {
  VmResult r = RunSrc("int lk; int main(void) { spin_unlock(&lk); return 0; }");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kAssertFail);
}

TEST(VmRuntime, TriggerIrqRunsHandlerAtomically) {
  const char* src = R"(
    typedef void h_fn(int x);
    int seen_disabled;
    int arg_seen;
    void handler(int x) {
      arg_seen = x;
      seen_disabled = irqs_disabled();
    }
    int main(void) {
      trigger_irq(handler, 7);
      // After dispatch interrupts are back on.
      return arg_seen * 100 + seen_disabled * 10 + irqs_disabled();
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 710);
}

TEST(VmRuntime, BlockingInsideHandlerTraps) {
  const char* src = R"(
    typedef void h_fn(int x);
    void handler(int x) { schedule(); }
    int main(void) { trigger_irq(handler, 0); return 0; }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kMightSleepAtomic);
}

TEST(VmRuntime, CopyToFromUserRoundTrip) {
  const char* src = R"(
    int main(void) {
      char out[16];
      char in[16];
      for (int i = 0; i < 16; i++) { out[i] = 'A' + i; }
      copy_to_user(4096, out, 16);
      copy_from_user(in, 4096, 16);
      int ok = 1;
      for (int i = 0; i < 16; i++) {
        if (in[i] != 'A' + i) { ok = 0; }
      }
      return ok;
    }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 1);
}

TEST(VmRuntime, PrintkFormats) {
  const char* src = R"(
    int main(void) {
      printk("d=%d x=%x c=%c s=%s pct=%% done\n", -5, 255, 'Q', "str");
      return 0;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("main").ok);
  EXPECT_EQ(vm->log(), "d=-5 x=ff c=Q s=str pct=% done\n");
}

TEST(VmRuntime, PanicCarriesMessage) {
  VmResult r = RunSrc(R"(int main(void) { panic("it broke"); return 0; })");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kPanic);
  EXPECT_NE(r.trap_msg.find("it broke"), std::string::npos);
}

TEST(VmRuntime, StackOverflowOnRunawayRecursion) {
  const char* src = R"(
    int deep(int n) {
      int pad[64];
      pad[0] = n;
      return deep(n + 1) + pad[0];
    }
    int main(void) { return deep(0); }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kStackOverflow);
}

TEST(VmRuntime, WatchdogStopsInfiniteLoop) {
  const char* src = "int main(void) { while (1) { } return 0; }";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  VmConfig vcfg;
  vcfg.max_steps = 100000;
  auto vm = MakeVm(*comp, vcfg);
  VmResult r = vm->Call("main");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kTimeout);
}

TEST(VmRuntime, DeterministicCycles) {
  const char* src = R"(
    int work(void) {
      int s = 0;
      for (int i = 0; i < 100; i++) { s += i * i; }
      return s;
    }
    int main(void) { return work(); }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto vm1 = MakeVm(*comp);
  auto vm2 = MakeVm(*comp);
  VmResult r1 = vm1->Call("main");
  VmResult r2 = vm2->Call("main");
  EXPECT_EQ(r1.cycles, r2.cycles);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.value, r2.value);
}

TEST(VmRuntime, SmpCostsOnlyAffectRcUpdates) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt g;
    int main(void) {
      for (int i = 0; i < 50; i++) {
        struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
        g = n;
        g = null;
        kfree(n);
      }
      return 0;
    }
  )";
  ToolConfig up;
  up.ccount = true;
  ToolConfig smp = up;
  smp.smp = true;
  auto cup = CompileOne(src, up);
  auto csmp = CompileOne(src, smp);
  ASSERT_TRUE(cup->ok);
  auto vup = MakeVm(*cup);
  auto vsmp = MakeVm(*csmp);
  VmResult r1 = vup->Call("main");
  VmResult r2 = vsmp->Call("main");
  ASSERT_TRUE(r1.ok && r2.ok);
  EXPECT_GT(r2.cycles, r1.cycles) << "locked refcount ops must cost more";
  EXPECT_EQ(r1.steps, r2.steps) << "instruction stream is identical";
}

TEST(VmRuntime, WildPointerMemFaultInTrustedCode) {
  const char* src = R"(
    int main(void) {
      trusted {
        int* trusted p = (int*)99999999999;
        return *p;
      }
    }
  )";
  VmResult r = RunSrc(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kMemFault);
}

TEST(VmRuntime, LockOrderEdgesRecorded) {
  const char* src = R"(
    int a;
    int b;
    int main(void) {
      spin_lock(&a);
      spin_lock(&b);
      spin_unlock(&b);
      spin_unlock(&a);
      return 0;
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok);
  auto vm = MakeVm(*comp);
  ASSERT_TRUE(vm->Call("main").ok);
  EXPECT_EQ(vm->lock_order_edges().size(), 1u);
}

TEST(VmRuntime, GlobalInitializersApplied) {
  const char* src = R"(
    int base = 41;
    char* nullterm tag = "xyz";
    int tail(char* nullterm s) {
      int n = 0;
      while (*s) { s = s + 1; n = n + 1; }
      return n;
    }
    int main(void) { return base + tail(tag); }
  )";
  VmResult r = RunSrc(src);
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 44);
}

}  // namespace
}  // namespace ivy
