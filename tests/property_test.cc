// Property-based and parameterized sweeps over core invariants:
//  * constant folding agrees with VM evaluation on random expressions,
//  * Deputy bounds checks trap exactly when the index is out of range,
//  * the refcount shadow balances (increments - decrements = live refs),
//  * counter-width wraparound misses occur exactly at k * 2^width,
//  * erasure: tool configuration never changes a correct program's result.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"
#include "src/support/rng.h"

namespace ivy {
namespace {

// --- random expression evaluation vs host semantics -------------------------

struct ExprGen {
  Rng rng;
  explicit ExprGen(uint64_t seed) : rng(seed) {}

  // Generates an expression and its host-evaluated value. Divisions are
  // avoided (trap semantics differ from UB); shifts are bounded.
  std::string Gen(int depth, int64_t* value) {
    if (depth <= 0 || rng.Chance(1, 3)) {
      int64_t v = rng.Range(-50, 50);
      *value = v;
      if (v < 0) {
        return "(0 - " + std::to_string(-v) + ")";
      }
      return std::to_string(v);
    }
    int64_t a = 0;
    int64_t b = 0;
    std::string ea = Gen(depth - 1, &a);
    std::string eb = Gen(depth - 1, &b);
    switch (rng.Below(6)) {
      case 0:
        *value = a + b;
        return "(" + ea + " + " + eb + ")";
      case 1:
        *value = a - b;
        return "(" + ea + " - " + eb + ")";
      case 2:
        *value = a * b;
        return "(" + ea + " * " + eb + ")";
      case 3:
        *value = a < b;
        return "(" + ea + " < " + eb + ")";
      case 4:
        *value = (a != 0 && b != 0) ? 1 : 0;
        return "(" + ea + " && " + eb + ")";
      default:
        *value = a == b;
        return "(" + ea + " == " + eb + ")";
    }
  }
};

class ExprEvalProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExprEvalProperty, VmMatchesHost) {
  ExprGen gen(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 8; ++i) {
    int64_t expected = 0;
    std::string expr = gen.Gen(4, &expected);
    auto comp = CompileOne("int main(void) { return " + expr + "; }", ToolConfig{});
    ASSERT_TRUE(comp->ok) << expr << "\n" << comp->Errors();
    auto vm = MakeVm(*comp);
    VmResult r = vm->Call("main");
    ASSERT_TRUE(r.ok) << expr;
    EXPECT_EQ(r.value, expected) << expr;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprEvalProperty, ::testing::Range(1, 9));

// --- bounds checks: trap iff out of range -----------------------------------

class BoundsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BoundsProperty, TrapExactlyWhenOutOfRange) {
  int idx = GetParam();
  std::string src = R"(
    int get(int* count(n) a, int n, int i) { return a[i]; }
    int main(void) {
      int v[8];
      for (int i = 0; i < 8; i++) { v[i] = i * 3; }
      return get(v, 8, )" + std::to_string(idx) + R"();
    }
  )";
  auto comp = CompileOne(src, ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  if (idx >= 0 && idx < 8) {
    ASSERT_TRUE(r.ok) << "index " << idx << " wrongly trapped";
    EXPECT_EQ(r.value, idx * 3);
  } else {
    ASSERT_FALSE(r.ok) << "index " << idx << " wrongly allowed";
    EXPECT_EQ(r.trap, TrapKind::kBounds);
  }
}

INSTANTIATE_TEST_SUITE_P(Indices, BoundsProperty,
                         ::testing::Values(-3, -1, 0, 1, 4, 7, 8, 9, 100));

// --- refcount balance over random linked structures -------------------------

class RcBalanceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RcBalanceProperty, IncrementsBalanceDecrements) {
  // Build a random singly-linked list, then tear it down with nulling frees;
  // all frees must verify and the shadow must balance.
  int n = GetParam();
  std::string src = R"(
    struct node { struct node* opt next; int v; };
    struct node* opt head;
    int main(void) {
      for (int i = 0; i < )" + std::to_string(n) + R"(; i++) {
        struct node* x = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
        x->next = head;
        head = x;
      }
      while (head) {
        struct node* dead = head;
        head = dead->next;
        dead->next = null;
        kfree(dead);
      }
      return __bad_frees();
    }
  )";
  ToolConfig cfg;
  cfg.ccount = true;
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value, 0);
  const HeapStats& stats = vm->heap().stats();
  EXPECT_EQ(stats.frees_good, n);
  EXPECT_EQ(stats.rc_increments, stats.rc_decrements)
      << "every reference created must be released";
}

INSTANTIATE_TEST_SUITE_P(Sizes, RcBalanceProperty, ::testing::Values(1, 2, 7, 32, 100));

// --- wraparound misses at exactly k * 2^width -------------------------------

struct WrapCase {
  int width;
  int refs;
  bool missed;  // expected: free wrongly accepted
};

class WrapProperty : public ::testing::TestWithParam<WrapCase> {};

TEST_P(WrapProperty, MissExactlyAtMultiples) {
  const WrapCase& c = GetParam();
  std::string src = R"(
    struct cell { int v; };
    struct cell* opt table[600];
    int main(void) {
      struct cell* x = (struct cell*)kmalloc(sizeof(struct cell), GFP_KERNEL);
      for (int i = 0; i < )" + std::to_string(c.refs) + R"(; i++) { table[i] = x; }
      kfree(x);
      return __bad_frees();
    }
  )";
  ToolConfig cfg;
  cfg.ccount = true;
  cfg.rc_width_bits = c.width;
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(r.value == 0, c.missed) << "width=" << c.width << " refs=" << c.refs;
}

INSTANTIATE_TEST_SUITE_P(Widths, WrapProperty,
                         ::testing::Values(WrapCase{8, 256, true}, WrapCase{8, 255, false},
                                           WrapCase{8, 257, false}, WrapCase{8, 512, true},
                                           WrapCase{4, 16, true}, WrapCase{4, 15, false},
                                           WrapCase{4, 48, true}, WrapCase{6, 64, true},
                                           WrapCase{6, 63, false}));

// --- erasure: tool configs agree on correct programs ------------------------

class EraseProperty : public ::testing::TestWithParam<int> {};

TEST_P(EraseProperty, AllConfigsSameResult) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  int n = static_cast<int>(rng.Range(1, 12));
  int mul = static_cast<int>(rng.Range(1, 5));
  std::string src = R"(
    struct box { int v; struct box* opt next; };
    int run(int n, int mul) {
      struct box* opt head = null;
      int sum = 0;
      for (int i = 0; i < n; i++) {
        struct box* b = (struct box*)kmalloc(sizeof(struct box), GFP_KERNEL);
        b->v = i * mul;
        b->next = head;
        head = b;
      }
      while (head) {
        struct box* d = head;
        sum += d->v;
        head = d->next;
        d->next = null;
        kfree(d);
      }
      return sum;
    }
    int main(void) { return run()" +
                    std::to_string(n) + ", " + std::to_string(mul) + R"(); }
  )";
  int64_t reference = 0;
  bool first = true;
  for (int mode = 0; mode < 4; ++mode) {
    ToolConfig cfg;
    cfg.deputy = (mode & 1) != 0;
    cfg.ccount = (mode & 2) != 0;
    auto comp = CompileOne(src, cfg);
    ASSERT_TRUE(comp->ok) << comp->Errors();
    auto vm = MakeVm(*comp);
    VmResult r = vm->Call("main");
    ASSERT_TRUE(r.ok) << "mode " << mode << ": " << r.trap_msg;
    if (first) {
      reference = r.value;
      first = false;
    } else {
      EXPECT_EQ(r.value, reference) << "mode " << mode;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EraseProperty, ::testing::Range(1, 7));

}  // namespace
}  // namespace ivy
