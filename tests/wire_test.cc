// Wire-format tests for the annod protocol (src/server/wire.h): encode/decode
// round trips for every message, totality of the decoders (truncated frames,
// oversized lengths, bad magic/version bytes are rejected — never a crash or
// over-read), and a seeded structure-aware fuzz pass.
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/server/wire.h"
#include "src/support/rng.h"
#include "src/support/socket.h"

namespace ivy {
namespace {

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(WirePrimitives, ScalarAndStringRoundTrip) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutStr("hello\0world");  // embedded NUL stays within the literal prefix
  w.PutStr("");
  w.PutStrVec({"a", "", "ccc"});
  const std::string payload = w.Take();

  WireReader r(payload);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s1;
  std::string s2;
  std::vector<std::string> vec;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  ASSERT_TRUE(r.GetStr(&s1));
  ASSERT_TRUE(r.GetStr(&s2));
  ASSERT_TRUE(r.GetStrVec(&vec));
  EXPECT_TRUE(r.Finish());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(vec, (std::vector<std::string>{"a", "", "ccc"}));
}

TEST(WireMessages, EveryMessageRoundTrips) {
  {
    CorpusMsg m;
    m.corpus = "kernel";
    CorpusMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.corpus, "kernel");
  }
  {
    FindingsQueryMsg m;
    m.corpus = "c";
    m.epoch = 42;
    m.function = "read_chan";
    m.tool = "blockstop";
    m.module = "net";
    FindingsQueryMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.corpus, "c");
    EXPECT_EQ(out.epoch, 42u);
    EXPECT_EQ(out.function, "read_chan");
    EXPECT_EQ(out.tool, "blockstop");
    EXPECT_EQ(out.module, "net");
  }
  {
    SummariesQueryMsg m;
    m.corpus = "c";
    m.epoch = 7;
    m.function = "f";
    m.module = "m";
    SummariesQueryMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.epoch, 7u);
    EXPECT_EQ(out.module, "m");
  }
  {
    UpsertModuleMsg m;
    m.corpus = "c";
    m.module = "net";
    m.files = {{"a.mc", "void f() {}"}, {"b.mc", ""}};
    UpsertModuleMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.module, "net");
    ASSERT_EQ(out.files.size(), 2u);
    EXPECT_EQ(out.files[0].first, "a.mc");
    EXPECT_EQ(out.files[0].second, "void f() {}");
    EXPECT_EQ(out.files[1].second, "");
  }
  {
    ReplaceFunctionMsg m;
    m.corpus = "c";
    m.module = "net";
    m.function = "udp_sendmsg";
    m.definition = "void udp_sendmsg(int n) { msleep(n); }";
    ReplaceFunctionMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.function, "udp_sendmsg");
    EXPECT_EQ(out.definition, m.definition);
  }
  {
    RemoveModuleMsg m;
    m.corpus = "c";
    m.module = "net";
    RemoveModuleMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.module, "net");
  }
  {
    ErrorMsg m;
    m.message = "unknown corpus 'x'";
    ErrorMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.message, m.message);
  }
  {
    EpochMsg m;
    m.epoch = UINT64_MAX;
    EpochMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.epoch, UINT64_MAX);
  }
  {
    RowsReplyMsg m;
    m.epoch = 3;
    m.total = 97;
    m.rows = {"{\"a\":1}", "{\"b\":2}"};
    RowsReplyMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.epoch, 3u);
    EXPECT_EQ(out.total, 97u);
    EXPECT_EQ(out.rows, m.rows);
  }
  {
    StatsReplyMsg m;
    m.epoch = 5;
    m.modules = 8;
    m.findings = 123;
    m.summary_rows = 456;
    m.link_rounds = 4;
    m.converged = 1;
    m.queued_edits = 2;
    m.relinks = 9;
    m.apply_errors = {"replace_function m:f: no such module/function"};
    StatsReplyMsg out;
    ASSERT_TRUE(out.Decode(m.Encode()));
    EXPECT_EQ(out.epoch, 5u);
    EXPECT_EQ(out.modules, 8u);
    EXPECT_EQ(out.findings, 123u);
    EXPECT_EQ(out.summary_rows, 456u);
    EXPECT_EQ(out.link_rounds, 4u);
    EXPECT_EQ(out.converged, 1);
    EXPECT_EQ(out.queued_edits, 2u);
    EXPECT_EQ(out.relinks, 9u);
    EXPECT_EQ(out.apply_errors, m.apply_errors);
  }
}

// ---------------------------------------------------------------------------
// Totality: truncation, trailing garbage, malformed headers
// ---------------------------------------------------------------------------

// Every strict prefix of a valid payload must be rejected (all fields are
// fixed-width or length-prefixed, so a cut can never look complete), and so
// must the payload with trailing garbage (Finish() demands exact length).
template <typename Msg>
void ExpectTruncationRejected(const Msg& m) {
  const std::string payload = m.Encode();
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    Msg out;
    EXPECT_FALSE(out.Decode(payload.substr(0, cut))) << "prefix length " << cut;
  }
  Msg out;
  EXPECT_FALSE(out.Decode(payload + '\0')) << "trailing garbage accepted";
}

TEST(WireTotality, TruncatedPayloadsRejectedAtEveryByte) {
  FindingsQueryMsg fq;
  fq.corpus = "corpus";
  fq.epoch = 12;
  fq.function = "fn";
  fq.tool = "blockstop";
  fq.module = "mod";
  ExpectTruncationRejected(fq);

  UpsertModuleMsg up;
  up.corpus = "c";
  up.module = "m";
  up.files = {{"a.mc", "text"}, {"b.mc", "more"}};
  ExpectTruncationRejected(up);

  RowsReplyMsg rows;
  rows.epoch = 9;
  rows.total = 3;
  rows.rows = {"r1", "r2", "r3"};
  ExpectTruncationRejected(rows);

  StatsReplyMsg st;
  st.epoch = 1;
  st.apply_errors = {"e1", "e2"};
  ExpectTruncationRejected(st);
}

TEST(WireTotality, HeaderValidation) {
  const std::string frame = EncodeFrame(MsgType::kPing, "abc");
  ASSERT_GE(frame.size(), kFrameHeaderSize);
  uint8_t hdr[kFrameHeaderSize];
  std::copy(frame.begin(), frame.begin() + kFrameHeaderSize, hdr);

  MsgType type;
  uint32_t length = 0;
  std::string err;
  ASSERT_TRUE(DecodeFrameHeader(hdr, &type, &length, &err)) << err;
  EXPECT_EQ(type, MsgType::kPing);
  EXPECT_EQ(length, 3u);

  {
    uint8_t bad[kFrameHeaderSize];
    std::copy(hdr, hdr + kFrameHeaderSize, bad);
    bad[0] = 0x00;  // bad magic0
    EXPECT_FALSE(DecodeFrameHeader(bad, &type, &length, &err));
  }
  {
    uint8_t bad[kFrameHeaderSize];
    std::copy(hdr, hdr + kFrameHeaderSize, bad);
    bad[1] = 0xFF;  // bad magic1
    EXPECT_FALSE(DecodeFrameHeader(bad, &type, &length, &err));
  }
  {
    uint8_t bad[kFrameHeaderSize];
    std::copy(hdr, hdr + kFrameHeaderSize, bad);
    bad[2] = kWireVersion + 1;  // future version
    EXPECT_FALSE(DecodeFrameHeader(bad, &type, &length, &err));
    EXPECT_NE(err.find("version"), std::string::npos) << err;
  }
  {
    uint8_t bad[kFrameHeaderSize];
    std::copy(hdr, hdr + kFrameHeaderSize, bad);
    // Length far beyond kMaxFramePayload: rejected before any allocation.
    bad[4] = 0xFF;
    bad[5] = 0xFF;
    bad[6] = 0xFF;
    bad[7] = 0xFF;
    EXPECT_FALSE(DecodeFrameHeader(bad, &type, &length, &err));
  }
}

// Adversarial length prefixes must not make GetStr/GetStrVec over-read or
// reserve absurd memory: a count or length larger than the remaining bytes
// fails immediately.
TEST(WireTotality, OversizedInnerLengthsRejected) {
  {
    WireWriter w;
    w.PutU32(0xFFFFFFFFu);  // string length prefix with no bytes behind it
    WireReader r(w.buf());
    std::string s;
    EXPECT_FALSE(r.GetStr(&s));
  }
  {
    WireWriter w;
    w.PutU32(0x40000000u);  // a billion strings, zero bytes of content
    WireReader r(w.buf());
    std::vector<std::string> v;
    EXPECT_FALSE(r.GetStrVec(&v));
  }
  {
    UpsertModuleMsg out;
    WireWriter w;
    w.PutStr("c");
    w.PutStr("m");
    w.PutU32(0x7FFFFFFFu);  // file-pair count overrunning the payload
    EXPECT_FALSE(out.Decode(w.buf()));
  }
}

// ---------------------------------------------------------------------------
// Seeded fuzz: random bytes through every decoder — nothing may crash
// ---------------------------------------------------------------------------

TEST(WireFuzz, RandomPayloadsNeverCrashDecoders) {
  Rng rng(20260808);
  for (int round = 0; round < 2000; ++round) {
    const size_t len = rng.Below(64);
    std::string payload;
    payload.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.Below(256)));
    }
    // The return value is irrelevant; surviving every input is the property.
    CorpusMsg{}.Decode(payload);
    FindingsQueryMsg{}.Decode(payload);
    SummariesQueryMsg{}.Decode(payload);
    UpsertModuleMsg{}.Decode(payload);
    ReplaceFunctionMsg{}.Decode(payload);
    RemoveModuleMsg{}.Decode(payload);
    ErrorMsg{}.Decode(payload);
    EpochMsg{}.Decode(payload);
    RowsReplyMsg{}.Decode(payload);
    StatsReplyMsg{}.Decode(payload);

    uint8_t hdr[kFrameHeaderSize];
    for (size_t i = 0; i < kFrameHeaderSize; ++i) {
      hdr[i] = static_cast<uint8_t>(rng.Below(256));
    }
    MsgType type;
    uint32_t length = 0;
    std::string err;
    DecodeFrameHeader(hdr, &type, &length, &err);
  }
}

// Mutation fuzz: flip bytes of VALID frames and feed them through a real
// socket pair — ReadFrame either rejects them or yields a frame, but never
// crashes, hangs, or over-reads.
TEST(WireFuzz, MutatedFramesOverSocket) {
  ListenSocket listener;
  std::string err;
  ASSERT_TRUE(listener.Listen("127.0.0.1:0", &err)) << err;

  Rng rng(7);
  for (int round = 0; round < 40; ++round) {
    FindingsQueryMsg q;
    q.corpus = "corpus";
    q.function = "fn";
    std::string frame = EncodeFrame(MsgType::kQueryFindings, q.Encode());
    const int flips = 1 + static_cast<int>(rng.Below(4));
    for (int f = 0; f < flips; ++f) {
      frame[rng.Below(frame.size())] ^= static_cast<char>(1 + rng.Below(255));
    }
    // Truncate some rounds mid-frame as well.
    if (rng.Chance(1, 3)) {
      frame.resize(rng.Below(frame.size()) + 1);
    }

    Socket client = ConnectTo(listener.bound_address(), &err);
    ASSERT_TRUE(client.valid()) << err;
    Socket server = listener.Accept(&err);
    ASSERT_TRUE(server.valid()) << err;

    std::thread writer([&client, &frame] {
      client.WriteFull(frame.data(), frame.size());
      client.Close();  // EOF terminates any partial read
    });
    Frame got;
    std::string rerr;
    int r = ReadFrame(server, &got, &rerr);
    EXPECT_LE(r, 1);
    writer.join();
  }
}

TEST(WireFrameIO, CleanEofAndFrameRoundTripOverSocket) {
  ListenSocket listener;
  std::string err;
  ASSERT_TRUE(listener.Listen("127.0.0.1:0", &err)) << err;

  Socket client = ConnectTo(listener.bound_address(), &err);
  ASSERT_TRUE(client.valid()) << err;
  Socket server = listener.Accept(&err);
  ASSERT_TRUE(server.valid()) << err;

  ASSERT_TRUE(WriteFrame(client, MsgType::kSync, CorpusMsg{"c"}.Encode(), &err))
      << err;
  Frame got;
  ASSERT_EQ(ReadFrame(server, &got, &err), 1) << err;
  EXPECT_EQ(got.type, MsgType::kSync);
  CorpusMsg m;
  ASSERT_TRUE(m.Decode(got.payload));
  EXPECT_EQ(m.corpus, "c");

  client.Close();
  EXPECT_EQ(ReadFrame(server, &got, &err), 0);  // clean EOF between frames
}

}  // namespace
}  // namespace ivy
