// ToolRegistry edge cases and pass-level scheduling: duplicate registration
// is rejected (first factory wins), RunAfter() dependencies order execution,
// and a dependency cycle is reported as a pipeline error finding — never a
// hang. Kept in its own binary: these tests register extra passes in the
// process-global registry, which must not leak into AllTools() pipelines of
// other test suites.
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/tool/pipeline.h"
#include "src/tool/registry.h"

namespace ivy {
namespace {

const char* kTinyProgram = "int main(void) { return 0; }";

// A configurable probe pass. Each Run appends its name to a shared log so
// tests can assert scheduling order.
std::mutex g_log_mu;
std::vector<std::string> g_run_log;

class ProbePass : public ToolPass {
 public:
  ProbePass(std::string name, std::vector<std::string> after, std::string marker)
      : name_(std::move(name)), after_(std::move(after)), marker_(std::move(marker)) {}

  std::string name() const override { return name_; }
  std::vector<std::string> RunAfter() const override { return after_; }

  ToolResult Run(AnalysisContext&) override {
    {
      std::lock_guard<std::mutex> lock(g_log_mu);
      g_run_log.push_back(name_);
    }
    ToolResult r(name_);
    r.set_summary(marker_);
    return r;
  }

 private:
  std::string name_;
  std::vector<std::string> after_;
  std::string marker_;
};

ToolRegistry::Factory Probe(const std::string& name,
                            std::vector<std::string> after = {},
                            const std::string& marker = "") {
  return [name, after, marker] {
    return std::make_unique<ProbePass>(name, after, marker);
  };
}

TEST(ToolRegistry, DuplicateRegistrationRejected) {
  ToolRegistry& reg = ToolRegistry::Instance();
  ASSERT_TRUE(reg.Register("zz-dup-probe", Probe("zz-dup-probe", {}, "first")));
  // The duplicate is rejected and the original factory survives.
  EXPECT_FALSE(reg.Register("zz-dup-probe", Probe("zz-dup-probe", {}, "second")));
  auto pass = reg.Create("zz-dup-probe");
  ASSERT_NE(pass, nullptr);
  EXPECT_EQ(pass->name(), "zz-dup-probe");
}

TEST(ToolRegistry, DuplicateRegistrationKeepsOriginalFactory) {
  ToolRegistry& reg = ToolRegistry::Instance();
  ASSERT_TRUE(reg.Register("zz-dup-probe2", Probe("zz-dup-probe2", {}, "first")));
  EXPECT_FALSE(reg.Register("zz-dup-probe2", Probe("zz-dup-probe2", {}, "second")));
  Pipeline p = PipelineBuilder().Tool("zz-dup-probe2").Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"t.mc", kTinyProgram}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  const ToolResult* r = run.result.ResultFor("zz-dup-probe2");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->summary(), "first");
  // A builtin cannot be shadowed either.
  EXPECT_FALSE(reg.Register("errcheck", Probe("errcheck")));
}

TEST(ToolRegistry, RunAfterOrdersExecution) {
  ToolRegistry& reg = ToolRegistry::Instance();
  ASSERT_TRUE(reg.Register("zz-late", Probe("zz-late", {"zz-early"})));
  ASSERT_TRUE(reg.Register("zz-early", Probe("zz-early")));
  for (bool parallel : {false, true}) {
    {
      std::lock_guard<std::mutex> lock(g_log_mu);
      g_run_log.clear();
    }
    // Requested late-first: the scheduler must still run zz-early first,
    // while the merged results keep request order.
    Pipeline p = PipelineBuilder().Tool("zz-late").Tool("zz-early").Parallel(parallel).Build();
    PipelineRun run = p.CompileAndRun({SourceFile{"t.mc", kTinyProgram}});
    ASSERT_TRUE(run.comp->ok);
    std::lock_guard<std::mutex> lock(g_log_mu);
    ASSERT_EQ(g_run_log.size(), 2u) << "parallel=" << parallel;
    EXPECT_EQ(g_run_log[0], "zz-early");
    EXPECT_EQ(g_run_log[1], "zz-late");
    ASSERT_EQ(run.result.results.size(), 2u);
    EXPECT_EQ(run.result.results[0].tool(), "zz-late");
    EXPECT_EQ(run.result.results[1].tool(), "zz-early");
  }
}

TEST(ToolRegistry, RunAfterCycleIsErrorNotHang) {
  ToolRegistry& reg = ToolRegistry::Instance();
  ASSERT_TRUE(reg.Register("zz-cycle-a", Probe("zz-cycle-a", {"zz-cycle-b"})));
  ASSERT_TRUE(reg.Register("zz-cycle-b", Probe("zz-cycle-b", {"zz-cycle-a"})));
  {
    std::lock_guard<std::mutex> lock(g_log_mu);
    g_run_log.clear();
  }
  Pipeline p = PipelineBuilder()
                   .Tool("zz-cycle-a")
                   .Tool("zz-cycle-b")
                   .Tool("errcheck")
                   .Build();
  // If cycle handling regressed into an infinite loop this test times out —
  // that *is* the failure mode under test.
  PipelineRun run = p.CompileAndRun({SourceFile{"t.mc", kTinyProgram}});
  ASSERT_TRUE(run.comp->ok);

  // The cyclic passes never ran; the healthy pass did.
  {
    std::lock_guard<std::mutex> lock(g_log_mu);
    EXPECT_TRUE(g_run_log.empty());
  }
  ASSERT_EQ(run.result.results.size(), 3u);
  EXPECT_NE(run.result.ResultFor("errcheck"), nullptr);

  // And the cycle surfaced as a pipeline error finding naming both passes.
  bool cycle_reported = false;
  for (const Finding& f : run.result.findings) {
    if (f.tool == "pipeline" && f.severity == FindingSeverity::kError &&
        f.message.find("cycle") != std::string::npos) {
      cycle_reported = true;
      EXPECT_NE(f.message.find("zz-cycle-a"), std::string::npos);
      EXPECT_NE(f.message.find("zz-cycle-b"), std::string::npos);
    }
  }
  EXPECT_TRUE(cycle_reported);
}

TEST(ToolRegistry, PassDownstreamOfCycleIsSkippedButNotCalledCyclic) {
  ToolRegistry& reg = ToolRegistry::Instance();
  ASSERT_TRUE(reg.Register("zz-loop-a", Probe("zz-loop-a", {"zz-loop-b"})));
  ASSERT_TRUE(reg.Register("zz-loop-b", Probe("zz-loop-b", {"zz-loop-a"})));
  ASSERT_TRUE(reg.Register("zz-downstream", Probe("zz-downstream", {"zz-loop-a"})));
  Pipeline p = PipelineBuilder()
                   .Tool("zz-loop-a")
                   .Tool("zz-loop-b")
                   .Tool("zz-downstream")
                   .Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"t.mc", kTinyProgram}});
  ASSERT_TRUE(run.comp->ok);
  std::string cycle_msg;
  std::string downstream_msg;
  for (const Finding& f : run.result.findings) {
    if (f.tool != "pipeline") {
      continue;
    }
    if (f.message.find("cycle involving") != std::string::npos) {
      cycle_msg = f.message;
    }
    if (f.message.find("zz-downstream") != std::string::npos) {
      downstream_msg = f.message;
    }
  }
  // The cycle finding names exactly the cycle members; the healthy
  // downstream pass gets its own "not run" explanation instead of being
  // lumped into the cycle.
  EXPECT_NE(cycle_msg.find("zz-loop-a"), std::string::npos);
  EXPECT_NE(cycle_msg.find("zz-loop-b"), std::string::npos);
  EXPECT_EQ(cycle_msg.find("zz-downstream"), std::string::npos);
  EXPECT_NE(downstream_msg.find("not run"), std::string::npos);
}

TEST(ToolRegistry, SelfReferenceAndUnknownDepsAreIgnored) {
  // RunAfter naming yourself is ignored (a pass trivially runs "after
  // itself"); naming an absent tool is ignored too — neither may wedge the
  // scheduler.
  ToolRegistry& reg = ToolRegistry::Instance();
  ASSERT_TRUE(reg.Register("zz-selfish", Probe("zz-selfish", {"zz-selfish", "zz-not-there"})));
  Pipeline p = PipelineBuilder().Tool("zz-selfish").Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"t.mc", kTinyProgram}});
  ASSERT_TRUE(run.comp->ok);
  ASSERT_EQ(run.result.results.size(), 1u);
  EXPECT_EQ(run.result.ErrorCount(), 0);
}

}  // namespace
}  // namespace ivy
