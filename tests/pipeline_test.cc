// End-to-end pipeline tests: source -> parse -> sema -> lower -> execute.
// These are the smoke tests that every other module's tests build on.
#include <gtest/gtest.h>

#include "src/driver/compiler.h"

namespace ivy {
namespace {

// Compiles with default tools (Deputy on) and runs `main()`.
VmResult RunProgram(const std::string& src, ToolConfig cfg = ToolConfig{}) {
  auto comp = CompileOne(src, cfg);
  EXPECT_TRUE(comp->ok) << comp->Errors();
  if (!comp->ok) {
    return VmResult{};
  }
  auto vm = MakeVm(*comp);
  return vm->Call("main");
}

int64_t RunValue(const std::string& src) {
  VmResult r = RunProgram(src);
  EXPECT_TRUE(r.ok) << TrapKindName(r.trap) << ": " << r.trap_msg;
  return r.value;
}

TEST(Pipeline, ReturnsConstant) {
  EXPECT_EQ(RunValue("int main(void) { return 42; }"), 42);
}

TEST(Pipeline, Arithmetic) {
  EXPECT_EQ(RunValue("int main(void) { return (3 + 4) * 5 - 10 / 2; }"), 30);
  EXPECT_EQ(RunValue("int main(void) { return 17 % 5; }"), 2);
  EXPECT_EQ(RunValue("int main(void) { return 1 << 10; }"), 1024);
  EXPECT_EQ(RunValue("int main(void) { return -7 + 3; }"), -4);
  EXPECT_EQ(RunValue("int main(void) { return ~0 & 0xff; }"), 255);
}

TEST(Pipeline, Comparisons) {
  EXPECT_EQ(RunValue("int main(void) { return 3 < 4; }"), 1);
  EXPECT_EQ(RunValue("int main(void) { return 4 <= 3; }"), 0);
  EXPECT_EQ(RunValue("int main(void) { return (1 == 1) + (2 != 3); }"), 2);
}

TEST(Pipeline, ShortCircuit) {
  // The right operand of && must not run when the left is false.
  const char* src = R"(
    int g;
    int bump(void) { g = g + 1; return 1; }
    int main(void) {
      int r = 0 && bump();
      __assert(g == 0);
      r = 1 || bump();
      __assert(g == 0);
      r = 1 && bump();
      __assert(g == 1);
      return r;
    }
  )";
  EXPECT_EQ(RunValue(src), 1);
}

TEST(Pipeline, LocalsAndLoops) {
  const char* src = R"(
    int main(void) {
      int sum = 0;
      for (int i = 0; i < 10; i++) {
        sum += i;
      }
      int j = 0;
      while (j < 5) { sum = sum + 1; j++; }
      do { sum = sum + 1; } while (0);
      return sum;
    }
  )";
  EXPECT_EQ(RunValue(src), 45 + 5 + 1);
}

TEST(Pipeline, BreakContinue) {
  const char* src = R"(
    int main(void) {
      int sum = 0;
      for (int i = 0; i < 100; i++) {
        if (i % 2 == 0) { continue; }
        if (i > 10) { break; }
        sum += i;
      }
      return sum;  // 1+3+5+7+9 = 25
    }
  )";
  EXPECT_EQ(RunValue(src), 25);
}

TEST(Pipeline, FunctionsAndRecursion) {
  const char* src = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main(void) { return fib(12); }
  )";
  EXPECT_EQ(RunValue(src), 144);
}

TEST(Pipeline, PointersAndAddressOf) {
  const char* src = R"(
    void set(int* p, int v) { *p = v; }
    int main(void) {
      int x = 1;
      set(&x, 99);
      return x;
    }
  )";
  EXPECT_EQ(RunValue(src), 99);
}

TEST(Pipeline, ArraysWithCountedLoop) {
  const char* src = R"(
    int main(void) {
      int a[8];
      for (int i = 0; i < 8; i++) { a[i] = i * i; }
      int sum = 0;
      for (int i = 0; i < 8; i++) { sum += a[i]; }
      return sum;  // 0+1+4+...+49 = 140
    }
  )";
  EXPECT_EQ(RunValue(src), 140);
}

TEST(Pipeline, StructsAndFields) {
  const char* src = R"(
    struct point { int x; int y; char tag; };
    int main(void) {
      struct point p;
      p.x = 3; p.y = 4; p.tag = 'z';
      struct point* q = &p;
      q->x = q->x * 10;
      return p.x + p.y + (q->tag == 'z');
    }
  )";
  EXPECT_EQ(RunValue(src), 35);
}

TEST(Pipeline, CharSemantics) {
  const char* src = R"(
    int main(void) {
      char c = 300;    // truncates to 44
      char d = 'A';
      return c + d;    // 44 + 65
    }
  )";
  EXPECT_EQ(RunValue(src), 109);
}

TEST(Pipeline, KmallocRoundTrip) {
  const char* src = R"(
    struct node { int value; struct node* next; };
    int main(void) {
      struct node* n = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      if (!n) { return -1; }
      n->value = 7;
      int v = n->value;
      kfree(n);
      return v;
    }
  )";
  EXPECT_EQ(RunValue(src), 7);
}

TEST(Pipeline, EnumsAndTernary) {
  const char* src = R"(
    enum { A = 5, B, C = 10 };
    int main(void) { return (B == 6) ? A + C : 0; }
  )";
  EXPECT_EQ(RunValue(src), 15);
}

TEST(Pipeline, GlobalsWithInit) {
  const char* src = R"(
    int counter = 100;
    int table[4];
    int main(void) {
      table[0] = counter;
      counter += 1;
      return table[0] + counter;
    }
  )";
  EXPECT_EQ(RunValue(src), 201);
}

TEST(Pipeline, StringsAndPrintk) {
  const char* src = R"(
    int main(void) {
      printk("hello %s %d\n", "world", 42);
      return 0;
    }
  )";
  ToolConfig cfg;
  auto comp = CompileOne(src, cfg);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  ASSERT_TRUE(r.ok) << r.trap_msg;
  EXPECT_EQ(vm->log(), "hello world 42\n");
}

TEST(Pipeline, FunctionPointers) {
  const char* src = R"(
    typedef int binop(int a, int b);
    int add(int a, int b) { return a + b; }
    int mul(int a, int b) { return a * b; }
    int apply(binop* f, int x, int y) { return f(x, y); }
    int main(void) {
      binop* f = add;
      int r = apply(f, 2, 3);
      f = mul;
      return r + apply(f, 2, 3);  // 5 + 6
    }
  )";
  EXPECT_EQ(RunValue(src), 11);
}

TEST(Pipeline, SizeofAndLayout) {
  const char* src = R"(
    struct s { char c; int x; char d; };
    int main(void) { return sizeof(struct s) + sizeof(int) + sizeof(char*); }
  )";
  // char(1) pad(7) int(8) char(1) pad(7) = 24; + 8 + 8.
  EXPECT_EQ(RunValue(src), 40);
}

TEST(Pipeline, DivByZeroTraps) {
  const char* src = "int main(void) { int z = 0; return 5 / z; }";
  VmResult r = RunProgram(src);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.trap, TrapKind::kDivByZero);
}

TEST(Pipeline, ParseErrorsReported) {
  auto comp = CompileOne("int main(void) { return 1 + ; }", ToolConfig{});
  EXPECT_FALSE(comp->ok);
  EXPECT_GT(comp->diags->error_count(), 0);
}

TEST(Pipeline, SemaUndeclaredIdentifier) {
  auto comp = CompileOne("int main(void) { return nope; }", ToolConfig{});
  EXPECT_FALSE(comp->ok);
  EXPECT_TRUE(comp->diags->Contains("undeclared"));
}

TEST(Pipeline, ErasureSemantics) {
  // The same program must behave identically with tools off (erasure).
  const char* src = R"(
    int main(void) {
      int a[4];
      int sum = 0;
      for (int i = 0; i < 4; i++) { a[i] = i; sum += a[i]; }
      return sum;
    }
  )";
  ToolConfig off;
  off.deputy = false;
  auto comp = CompileOne(src, off);
  ASSERT_TRUE(comp->ok) << comp->Errors();
  auto vm = MakeVm(*comp);
  VmResult r = vm->Call("main");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.value, 6);
  EXPECT_EQ(comp->check_stats.TotalEmitted(), 0);
}

}  // namespace
}  // namespace ivy
