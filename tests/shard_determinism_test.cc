// The sharding determinism contract, property-tested: BlockStop and
// StackCheck must produce byte-identical findings JSON under the serial
// reference kernels, sharded(1), and sharded(8), across randomized corpora
// from the seeded generator in tests/synth_corpus.h. This is the guarantee
// that lets the pipeline turn sharding on without invalidating golden
// outputs, annodb diffs, or the paper tables.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/blockstop/blockstop.h"
#include "src/driver/compiler.h"
#include "src/errcheck/errcheck.h"
#include "src/locksafe/locksafe.h"
#include "src/stackcheck/stackcheck.h"
#include "src/support/work_queue.h"
#include "src/tool/analysis_context.h"
#include "src/tool/function_sharder.h"
#include "src/tool/pipeline.h"
#include "tests/synth_corpus.h"

namespace ivy {
namespace {

std::string Dump(const std::vector<Finding>& findings) {
  Json arr = Json::MakeArray();
  for (const Finding& f : findings) {
    arr.Append(f.ToJson());
  }
  return arr.Dump();
}

struct Corpus {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<AnalysisContext> ctx;
};

Corpus BuildCorpus(int functions, uint64_t seed) {
  SynthCorpusOptions opt;
  opt.functions = functions;
  opt.seed = seed;
  Corpus c;
  c.comp = CompileOne(GenerateSynthCorpus(opt), ToolConfig{});
  EXPECT_TRUE(c.comp->ok) << c.comp->Errors();
  if (c.comp->ok) {
    c.ctx = std::make_unique<AnalysisContext>(c.comp.get());
  }
  return c;
}

TEST(ShardDeterminism, SynthCorpusCompiles) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    SynthCorpusOptions opt;
    opt.seed = seed;
    auto comp = CompileOne(GenerateSynthCorpus(opt), ToolConfig{});
    EXPECT_TRUE(comp->ok) << "seed " << seed << ": " << comp->Errors();
  }
}

TEST(ShardDeterminism, BlockStopByteIdenticalAcrossStrategies) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    const int functions = 48 + static_cast<int>(seed % 5) * 16;
    Corpus c = BuildCorpus(functions, seed);
    ASSERT_NE(c.ctx, nullptr);
    const CallGraph& cg = c.ctx->callgraph();

    BlockStop serial_bs(&c.comp->prog, c.comp->sema.get(), &cg);
    BlockStopReport serial = serial_bs.Run();
    std::string golden = Dump(serial.ToFindings());
    // The property must not hold vacuously: the generator plants real
    // violations and at least one silenced note (the noblock hook).
    EXPECT_FALSE(serial.violations.empty()) << "seed " << seed;
    EXPECT_FALSE(serial.silenced.empty()) << "seed " << seed;

    for (int shards : {1, 8}) {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      WorkQueue wq(sharder.shard_count());
      BlockStop bs(&c.comp->prog, c.comp->sema.get(), &cg);
      BlockStopReport report = bs.Run(sharder, wq);
      EXPECT_EQ(Dump(report.ToFindings()), golden)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(report.mayblock, serial.mayblock)
          << "seed " << seed << " shards " << shards;
    }
  }
}

TEST(ShardDeterminism, StackCheckByteIdenticalAcrossStrategies) {
  for (uint64_t seed : {3u, 11u}) {
    Corpus c = BuildCorpus(64, seed);
    ASSERT_NE(c.ctx, nullptr);
    const CallGraph& cg = c.ctx->callgraph();

    // A tiny budget forces the overrun finding; recursion in the generator
    // forces the per-function warnings — both paths exercised.
    StackCheck serial_sc(&cg, &c.comp->module, /*budget=*/64);
    StackCheckReport serial = serial_sc.Run({});
    std::string golden = Dump(serial.ToFindings());
    EXPECT_FALSE(serial.ToFindings().empty()) << "seed " << seed;

    for (int shards : {1, 8}) {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      WorkQueue wq(sharder.shard_count());
      StackCheck sc(&cg, &c.comp->module, /*budget=*/64);
      StackCheckReport report = sc.Run({}, sharder, wq);
      EXPECT_EQ(Dump(report.ToFindings()), golden)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(report.entry_depths, serial.entry_depths)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(report.recursive, serial.recursive);
      EXPECT_EQ(report.worst_case, serial.worst_case);
      EXPECT_EQ(report.worst_entry, serial.worst_entry);
    }
  }
}

TEST(ShardDeterminism, ExplicitEntryListSharded) {
  Corpus c = BuildCorpus(48, 5);
  ASSERT_NE(c.ctx, nullptr);
  const CallGraph& cg = c.ctx->callgraph();
  std::vector<std::string> entries = {SynthFuncName(0), SynthFuncName(7), "no_such_entry"};
  StackCheck serial_sc(&cg, &c.comp->module);
  std::string golden = Dump(serial_sc.Run(entries).ToFindings());
  FunctionSharder sharder(cg.DefinedFuncs(), 4);
  WorkQueue wq(sharder.shard_count());
  StackCheck sc(&cg, &c.comp->module);
  StackCheckReport report = sc.Run(entries, sharder, wq);
  EXPECT_EQ(Dump(report.ToFindings()), golden);
  EXPECT_EQ(report.entry_depths.size(), 2u);  // the bogus entry is skipped
}

TEST(ShardDeterminism, MixedDirectionBlocksByteIdentical) {
  // The benchmark's worst-case profile: chain direction alternates per
  // block, so the serial loop needs many rounds and the BFS frontier stays
  // long-lived — the strategies diverge most here if they ever will.
  SynthCorpusOptions opt;
  opt.functions = 96;
  opt.seed = 17;
  opt.fanout_span = 4;
  opt.mid_blocking_every = 0;
  opt.descending_blocks = true;
  opt.block = 16;
  auto comp = CompileOne(GenerateSynthCorpus(opt), ToolConfig{});
  ASSERT_TRUE(comp->ok) << comp->Errors();
  AnalysisContext ctx(comp.get());
  const CallGraph& cg = ctx.callgraph();

  BlockStop serial_bs(&comp->prog, comp->sema.get(), &cg);
  std::string golden = Dump(serial_bs.Run().ToFindings());
  for (int shards : {1, 3, 8}) {
    FunctionSharder sharder(cg.DefinedFuncs(), shards);
    WorkQueue wq(sharder.shard_count());
    BlockStop bs(&comp->prog, comp->sema.get(), &cg);
    EXPECT_EQ(Dump(bs.Run(sharder, wq).ToFindings()), golden) << "shards " << shards;
  }

  StackCheck serial_sc(&cg, &comp->module);
  std::string sc_golden = Dump(serial_sc.Run({}).ToFindings());
  FunctionSharder sharder(cg.DefinedFuncs(), 8);
  WorkQueue wq(sharder.shard_count());
  StackCheck sc(&cg, &comp->module);
  EXPECT_EQ(Dump(sc.Run({}, sharder, wq).ToFindings()), sc_golden);
}

TEST(ShardDeterminism, LockSafeByteIdenticalAcrossStrategies) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    Corpus c = BuildCorpus(64, seed);
    ASSERT_NE(c.ctx, nullptr);
    const CallGraph& cg = c.ctx->callgraph();

    LockSafe serial_ls(&c.comp->prog, c.comp->sema.get(), &cg);
    LockSafeReport serial = serial_ls.Run();
    std::string golden = Dump(serial.ToFindings("static"));
    // The generator plants spinlock sections, so the walk sees real locks.
    EXPECT_GT(serial.locks_seen, 0) << "seed " << seed;

    for (int shards : {1, 3, 8}) {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      WorkQueue wq(sharder.worker_count());
      LockSafe ls(&c.comp->prog, c.comp->sema.get(), &cg);
      LockSafeReport report = ls.Run(sharder, wq);
      EXPECT_EQ(Dump(report.ToFindings("static")), golden)
          << "seed " << seed << " shards " << shards;
      // The full edge list (order included) matches the serial first-seen
      // order, not just the findings derived from it.
      ASSERT_EQ(report.edges.size(), serial.edges.size());
      for (size_t i = 0; i < report.edges.size(); ++i) {
        EXPECT_EQ(report.edges[i].held, serial.edges[i].held);
        EXPECT_EQ(report.edges[i].acquired, serial.edges[i].acquired);
        EXPECT_EQ(report.edges[i].func, serial.edges[i].func);
      }
      EXPECT_EQ(report.locks_seen, serial.locks_seen);
      EXPECT_EQ(report.irq_unsafe_locks, serial.irq_unsafe_locks);
    }
  }
}

TEST(ShardDeterminism, ErrCheckByteIdenticalAcrossStrategies) {
  // The synth corpus has no error-returning functions, so extend it with an
  // err-heavy tail: annotated and inferred error sources, discarded and
  // never-tested results, plus checked sites.
  for (uint64_t seed : {5u, 13u}) {
    SynthCorpusOptions opt;
    opt.functions = 48;
    opt.seed = seed;
    std::string src = GenerateSynthCorpus(opt);
    src += R"(
int try_alloc(int n) errcode(-12) { if (n > 4) { return -12; } return 0; }
int try_map(int n) { if (n > 2) { return -22; } return n; }
void careless_a(int n) { try_alloc(n); }
void careless_b(int n) { int r = try_map(n); r = r + 1; }
int careful(int n) {
  int r = try_alloc(n);
  if (r < 0) { return r; }
  return try_map(n);
}
)";
    auto comp = CompileOne(src, ToolConfig{});
    ASSERT_TRUE(comp->ok) << comp->Errors();
    AnalysisContext ctx(comp.get());
    const CallGraph& cg = ctx.callgraph();

    ErrCheck serial_ec(&comp->prog, comp->sema.get(), &cg);
    ErrCheckReport serial = serial_ec.Run();
    std::string golden = Dump(serial.ToFindings());
    EXPECT_FALSE(serial.findings.empty()) << "seed " << seed;
    EXPECT_GT(serial.annotated_funcs, 0);
    EXPECT_GT(serial.inferred_funcs, 0);
    EXPECT_GT(serial.checked_sites, 0);

    for (int shards : {1, 3, 8}) {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      WorkQueue wq(sharder.worker_count());
      ErrCheck ec(&comp->prog, comp->sema.get(), &cg);
      ErrCheckReport report = ec.Run(sharder, wq);
      EXPECT_EQ(Dump(report.ToFindings()), golden)
          << "seed " << seed << " shards " << shards;
      EXPECT_EQ(report.err_returning_funcs, serial.err_returning_funcs);
      EXPECT_EQ(report.annotated_funcs, serial.annotated_funcs);
      EXPECT_EQ(report.inferred_funcs, serial.inferred_funcs);
      EXPECT_EQ(report.checked_sites, serial.checked_sites);
    }
  }
}

TEST(ShardDeterminism, SharedPoolAcrossPassesByteIdentical) {
  // All four sharded passes on one shared pool (what a session attaches)
  // must match per-pass pools and the serial reference.
  SynthCorpusOptions opt;
  opt.functions = 72;
  opt.seed = 21;
  std::string src = GenerateSynthCorpus(opt);

  auto findings_with = [&src](int shards) {
    Pipeline p = PipelineBuilder()
                     .Tool("blockstop")
                     .Tool("stackcheck")
                     .Tool("errcheck")
                     .Tool("locksafe")
                     .ShardFunctions(shards)
                     .Build();
    PipelineRun run = p.CompileAndRun({SourceFile{"synth.mc", src}});
    EXPECT_TRUE(run.comp->ok) << run.comp->Errors();
    return Dump(run.result.findings);
  };

  std::string serial = findings_with(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(findings_with(4), serial);
  EXPECT_EQ(findings_with(0), serial);
}

TEST(ShardDeterminism, PipelineShardFunctionsByteIdentical) {
  SynthCorpusOptions opt;
  opt.functions = 72;
  opt.seed = 9;
  std::string src = GenerateSynthCorpus(opt);

  auto findings_with = [&src](int shards) {
    Pipeline p = PipelineBuilder()
                     .Tool("blockstop")
                     .Tool("stackcheck")
                     .Tool("errcheck")
                     .ShardFunctions(shards)
                     .Build();
    PipelineRun run = p.CompileAndRun({SourceFile{"synth.mc", src}});
    EXPECT_TRUE(run.comp->ok) << run.comp->Errors();
    return Dump(run.result.findings);
  };

  std::string serial = findings_with(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(findings_with(8), serial);
  EXPECT_EQ(findings_with(0), serial);  // 0 = hardware concurrency
}

}  // namespace
}  // namespace ivy
