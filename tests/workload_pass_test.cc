// The workload pass: VM workload functions scheduled as a pipeline stage.
// Covers trap/bad-free/might-sleep findings, the boot spec, missing
// functions, determinism across runs, and module provenance through an
// AnalysisSession's annodb export (what tools/annodb_query serves).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/tool/pipeline.h"
#include "src/tool/session.h"

namespace ivy {
namespace {

const Finding* FindContaining(const std::vector<Finding>& fs, const std::string& needle) {
  for (const Finding& f : fs) {
    if (f.message.find(needle) != std::string::npos) {
      return &f;
    }
  }
  return nullptr;
}

TEST(WorkloadPass, TrapsAndMissingFunctionsBecomeFindings) {
  const char* src = R"(
    int ok_fn(int n) { return n * 2; }
    int trap_fn(int n) { return 7 / (n - n); }
  )";
  Pipeline p = PipelineBuilder()
                   .RunWorkload({"ok_fn:3", "trap_fn:1", "missing_fn"})
                   .Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", src}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  const ToolResult* r = run.result.ResultFor("workload");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->Metric("functions"), 3);
  EXPECT_EQ(r->Metric("ran"), 2);
  EXPECT_EQ(r->Metric("traps"), 1);
  EXPECT_GT(r->Metric("cycles"), 0);

  const Finding* trap = FindContaining(r->findings(), "workload 'trap_fn' trapped");
  ASSERT_NE(trap, nullptr);
  EXPECT_EQ(trap->severity, FindingSeverity::kError);
  EXPECT_NE(trap->message.find("division by zero"), std::string::npos);
  EXPECT_GT(trap->loc.line, 0) << "trap findings carry the trapping source location";
  ASSERT_FALSE(trap->witness.empty());
  EXPECT_EQ(trap->witness[0], "trap_fn");

  const Finding* missing = FindContaining(r->findings(), "missing_fn");
  ASSERT_NE(missing, nullptr);
  EXPECT_EQ(missing->severity, FindingSeverity::kWarning);
  EXPECT_NE(missing->message.find("not defined"), std::string::npos);
}

TEST(WorkloadPass, CCountBadFreesSurfaceWithWitness) {
  const char* src = R"(
    struct node { int v; };
    struct node* opt g;
    void leaky(int n) {
      struct node* p = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
      p->v = n;
      g = p;          // residual reference survives the free
      kfree(p);
    }
  )";
  Pipeline p = PipelineBuilder().CCount(true).RunWorkload({"leaky:5"}).Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", src}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  const ToolResult* r = run.result.ResultFor("workload");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->Metric("traps"), 0);
  EXPECT_EQ(r->Metric("bad_free_sites"), 1);
  const Finding* bad = FindContaining(r->findings(), "bad free");
  ASSERT_NE(bad, nullptr);
  EXPECT_EQ(bad->severity, FindingSeverity::kWarning);
  EXPECT_NE(bad->message.find("residual references"), std::string::npos);
  ASSERT_FALSE(bad->witness.empty());
  EXPECT_EQ(bad->witness[0], "leaky");
}

TEST(WorkloadPass, MightSleepInAtomicContextIsAFinding) {
  const char* src = R"(
    int lk;
    void sleeper(int n) {
      spin_lock(&lk);
      schedule();
      spin_unlock(&lk);
    }
  )";
  Pipeline p = PipelineBuilder().RunWorkload({"sleeper"}).Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", src}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  const ToolResult* r = run.result.ResultFor("workload");
  ASSERT_NE(r, nullptr);
  const Finding* f = FindContaining(r->findings(), "atomic context");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, FindingSeverity::kError);
}

TEST(WorkloadPass, BootSpecRunsBeforeEachWorkload) {
  const char* src = R"(
    int ready;
    void setup(int v) { ready = v; }
    int probe(int n) {
      if (ready != 7) { panic("boot did not run"); }
      return n;
    }
  )";
  Pipeline with_boot =
      PipelineBuilder().RunWorkload({"probe:1"}, "setup:7").Build();
  PipelineRun run = with_boot.CompileAndRun({SourceFile{"input.mc", src}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  const ToolResult* r = run.result.ResultFor("workload");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->Metric("traps"), 0) << "boot must have initialized the global";

  // A trapping boot is an error finding and the workload is skipped.
  Pipeline bad_boot =
      PipelineBuilder().RunWorkload({"probe:1"}, "setup:6").Build();
  PipelineRun run2 = bad_boot.CompileAndRun({SourceFile{"input.mc", src}});
  const ToolResult* r2 = run2.result.ResultFor("workload");
  ASSERT_NE(r2, nullptr);
  const Finding* f = FindContaining(r2->findings(), "workload 'probe' trapped");
  ASSERT_NE(f, nullptr);
  EXPECT_NE(f->message.find("boot did not run"), std::string::npos);
}

TEST(WorkloadPass, NoOpWithoutConfiguredFunctions) {
  Pipeline p = PipelineBuilder().AllTools().Build();
  PipelineRun run = p.CompileAndRun({SourceFile{"input.mc", "int main(void) { return 0; }"}});
  ASSERT_TRUE(run.comp->ok) << run.comp->Errors();
  const ToolResult* r = run.result.ResultFor("workload");
  ASSERT_NE(r, nullptr);
  EXPECT_TRUE(r->findings().empty());
  EXPECT_NE(r->summary().find("no workload functions"), std::string::npos);
}

TEST(WorkloadPass, DeterministicAcrossRuns) {
  const char* src = R"(
    int lk;
    struct node { int v; };
    struct node* opt g;
    void churn(int n) {
      for (int i = 0; i < n; i++) {
        struct node* p = (struct node*)kmalloc(sizeof(struct node), GFP_KERNEL);
        g = p;
        kfree(p);
      }
    }
    void locker(int n) { spin_lock(&lk); schedule(); spin_unlock(&lk); }
    int divver(int n) { return n / (n - n); }
  )";
  Pipeline p = PipelineBuilder()
                   .CCount(true)
                   .Parallel(true)
                   .RunWorkload({"churn:8", "locker:1", "divver:3"})
                   .Build();
  PipelineRun a = p.CompileAndRun({SourceFile{"input.mc", src}});
  PipelineRun b = p.CompileAndRun({SourceFile{"input.mc", src}});
  ASSERT_TRUE(a.comp->ok && b.comp->ok);
  EXPECT_EQ(a.result.ToString(&a.comp->sm), b.result.ToString(&b.comp->sm));
  const ToolResult* r = a.result.ResultFor("workload");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->Metric("traps"), 2);
  EXPECT_EQ(r->Metric("bad_free_sites"), 1);
}

// The §3.2 path: session-run workload findings land in the annodb export
// stamped with module provenance, so annodb_query's FindingQuery can select
// them by module, tool, and function.
TEST(WorkloadPass, SessionExportCarriesModuleProvenance) {
  const char* src = R"(
    int wl_entry(int n) { return 9 / (n - n); }
  )";
  AnalysisSession session = PipelineBuilder()
                                .RunWorkload({"wl_entry:4"})
                                .ForEachModule({{"m_net", {SourceFile{"net.mc", src}}}})
                                .BuildSession();
  SessionResult sr = session.Run();
  ASSERT_EQ(sr.compile_failures, 0);
  const Finding* f = FindContaining(sr.findings, "workload 'wl_entry' trapped");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->module, "m_net");

  AnnoDb db = session.ExportAnnoDb();
  FindingQuery q;
  q.tool = "workload";
  q.module = "m_net";
  q.function = "wl_entry";
  int matched = 0;
  for (const Finding& df : db.findings()) {
    if (q.Matches(df)) {
      ++matched;
    }
  }
  EXPECT_EQ(matched, 1) << "workload finding must be queryable from the annodb export";
}

}  // namespace
}  // namespace ivy
