// A2: points-to precision ablation. The paper: "We also encountered false
// positives, mostly due to the overly-conservative points-to analysis of
// function pointers. Replacing our simple points-to analysis with one that
// is field- and context-sensitive would improve the results."
#include <cstdio>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/blockstop/blockstop.h"
#include "src/kernel/corpus.h"

namespace {

void RunOne(const ivy::Compilation& comp, bool field_sensitive) {
  ivy::PointsTo pt(&comp.prog, comp.sema.get(), field_sensitive);
  pt.Solve();
  ivy::CallGraph cg = ivy::CallGraph::Build(comp.prog, *comp.sema, pt);
  ivy::BlockStop bs(&comp.prog, comp.sema.get(), &cg);
  ivy::BlockStopReport report = bs.Run();
  std::printf("  %-18s indirect targets: %3lld total   real bugs: %zu   FPs silenced: %zu\n",
              field_sensitive ? "field-sensitive" : "field-insensitive",
              static_cast<long long>(report.indirect_target_total), report.violations.size(),
              report.silenced.size());
}

}  // namespace

int main() {
  ivy::ToolConfig cfg;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }
  std::printf("A2: BlockStop precision vs points-to field sensitivity\n");
  std::printf("-------------------------------------------------------\n");
  RunOne(*comp, /*field_sensitive=*/false);
  RunOne(*comp, /*field_sensitive=*/true);
  std::printf(
      "\nThe field-insensitive analysis (the paper's configuration) merges every\n"
      "function-pointer slot of a record, so blocking `read` handlers alias the\n"
      "atomically-invoked `receive_buf`/`ndo_start_xmit` slots: those are the false\n"
      "positives the 15 run-time checks silence. Field sensitivity separates the\n"
      "slots and the false positives vanish while both real bugs remain.\n");
  return 0;
}
