// A3: reference-count width ablation. The paper's scheme is an 8-bit counter
// per 16-byte chunk (6.25% space overhead) and admits "bad frees of objects
// with k*256 references will be missed ... for total safety, an overflow
// check could be used." This bench constructs exactly that adversarial case
// and sweeps the counter width to show the missed-detection boundary.
#include <cstdio>
#include <string>

#include "src/driver/compiler.h"

namespace {

// A program that creates `refs` references to one object, then frees it
// while all of them still dangle. With a w-bit counter the free is wrongly
// accepted whenever refs % 2^w == 0.
std::string AdversarialProgram(int refs) {
  return R"(
    struct cell { int v; };
    struct cell* opt table[1024];
    int main(void) {
      struct cell* c = (struct cell*)kmalloc(sizeof(struct cell), GFP_KERNEL);
      for (int i = 0; i < )" +
         std::to_string(refs) + R"(; i++) {
        table[i] = c;
      }
      kfree(c);  // every table slot still references c
      return __bad_frees();
    }
  )";
}

}  // namespace

int main() {
  std::printf("A3: refcount counter-width sweep (paper: 8-bit counters, mod-256 misses)\n");
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("  width   refs=255   refs=256   refs=512   refs=300   space overhead\n");
  for (int width : {4, 6, 8}) {
    std::printf("  %d-bit ", width);
    for (int refs : {255, 256, 512, 300}) {
      ivy::ToolConfig cfg;
      cfg.ccount = true;
      cfg.rc_width_bits = width;
      auto comp = ivy::CompileOne(AdversarialProgram(refs), cfg);
      if (!comp->ok) {
        std::printf("  compile-fail");
        continue;
      }
      auto vm = ivy::MakeVm(*comp);
      ivy::VmResult r = vm->Call("main");
      bool caught = r.ok && r.value > 0;
      bool wraps = refs % (1 << width) == 0;
      std::printf("   %-8s", caught ? "caught" : (wraps ? "MISSED" : "caught?"));
    }
    // One counter of `width` bits per 16-byte chunk.
    std::printf("   %.2f%%\n", 100.0 * width / 8.0 / 16.0);
  }
  std::printf(
      "\nThe paper's 8-bit/16-byte scheme (6.25%% space) misses exactly the k*256\n"
      "cases; narrower counters trade space for more frequent misses. \"For total\n"
      "safety, an overflow check could be used.\"\n");
  return 0;
}
