// E2: CCount run-time overhead on fork and module-loading, uniprocessor vs
// SMP. The paper measured 19%/8% (UP) and 63%/12% (SMP, Pentium 4 locked
// ops); the gap comes from the same mechanism here: fork's page-table copy
// is pointer-store traffic, each store paying two reference-count updates,
// and locked updates cost ~10x plain ones.
#include <cstdio>

#include "src/hbench/hbench.h"
#include "src/kernel/corpus.h"

namespace {

void ReportTrap(const ivy::Compilation& comp, const char* fn, const ivy::VmResult& r) {
  std::fprintf(stderr, "bench_ccount: %s trapped: %s: %s at %s\n", fn,
               ivy::TrapKindName(r.trap), r.trap_msg.c_str(),
               comp.sm.Render(r.trap_loc).c_str());
}

int64_t Measure(const ivy::Compilation& comp, const char* fn, std::vector<int64_t> args) {
  auto vm = ivy::MakeVm(comp);
  ivy::VmResult boot = vm->Call("boot_kernel", {2});
  if (!boot.ok) {
    ReportTrap(comp, "boot_kernel", boot);
    return -1;
  }
  ivy::VmResult setup = vm->Call("hb_setup");
  if (!setup.ok) {
    ReportTrap(comp, "hb_setup", setup);
    return -1;
  }
  int64_t before = vm->cycles();
  ivy::VmResult r = vm->Call(fn, args);
  if (!r.ok) {
    ReportTrap(comp, fn, r);
    return -1;
  }
  return vm->cycles() - before;
}

}  // namespace

int main() {
  ivy::ToolConfig base;
  base.deputy = false;
  ivy::ToolConfig up = base;
  up.ccount = true;
  ivy::ToolConfig smp = up;
  smp.smp = true;

  auto cbase = ivy::CompileKernel(base);
  auto cup = ivy::CompileKernel(up);
  auto csmp = ivy::CompileKernel(smp);
  if (!cbase->ok || !cup->ok || !csmp->ok) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }

  struct Row {
    const char* name;
    const char* fn;
    std::vector<int64_t> args;
    double paper_up;
    double paper_smp;
  };
  const Row rows[] = {
      {"fork", "hb_lat_proc", {160}, 0.19, 0.63},
      {"module-loading", "hb_mod_load", {80}, 0.08, 0.12},
  };

  std::printf("E2: CCount overheads (paper: UP fork 19%% / modload 8%%; SMP 63%% / 12%%)\n");
  std::printf("------------------------------------------------------------------------\n");
  std::printf("  Benchmark        base cycles   UP overhead   SMP overhead   paper UP/SMP\n");
  int failures = 0;
  for (const Row& row : rows) {
    int64_t b = Measure(*cbase, row.fn, row.args);
    int64_t u = Measure(*cup, row.fn, row.args);
    int64_t s = Measure(*csmp, row.fn, row.args);
    if (b <= 0 || u <= 0 || s <= 0) {
      std::printf("  %-16s FAILED\n", row.name);
      ++failures;
      continue;
    }
    double up_ov = static_cast<double>(u - b) / static_cast<double>(b);
    double smp_ov = static_cast<double>(s - b) / static_cast<double>(b);
    std::printf("  %-16s %11lld   %9.0f%%   %10.0f%%    %3.0f%% / %3.0f%%\n", row.name,
                static_cast<long long>(b), up_ov * 100, smp_ov * 100, row.paper_up * 100,
                row.paper_smp * 100);
  }
  std::printf(
      "\nShape check: fork overhead >> module-loading overhead, and SMP >> UP on fork\n"
      "(locked refcount updates dominate the page-table pointer-copy loop).\n");
  if (failures > 0) {
    std::fprintf(stderr, "bench_ccount: %d benchmark rows failed\n", failures);
    return 1;
  }
  return 0;
}
