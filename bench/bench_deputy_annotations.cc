// E1: Deputy conversion statistics. The paper converted ~435,000 lines of
// kernel code with annotations on ~2627 lines (about 0.6%) and ~3273 trusted
// lines (under 0.8%). This bench computes the same ratios over the synthetic
// corpus, plus the check-insertion statistics the conversion produces.
#include <cstdio>

#include "src/kernel/corpus.h"

int main() {
  ivy::ToolConfig cfg;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n%s", comp->Errors().c_str());
    return 1;
  }

  int64_t total_lines = 0;
  for (const ivy::CorpusModule& m : ivy::KernelModules()) {
    for (const char* p = m.source; *p != '\0'; ++p) {
      if (*p == '\n') {
        ++total_lines;
      }
    }
  }
  const ivy::SemaStats& stats = comp->sema->stats();
  int64_t annotated = static_cast<int64_t>(stats.annotated_lines.size());
  int64_t trusted = static_cast<int64_t>(stats.trusted_lines.size());

  std::printf("E1: Deputy conversion statistics (corpus vs paper's 435 kLOC kernel)\n");
  std::printf("---------------------------------------------------------------------\n");
  std::printf("  corpus lines:            %lld   (paper: ~435,000)\n",
              static_cast<long long>(total_lines));
  std::printf("  annotated lines:         %lld = %.2f%%   (paper: 2627 = 0.6%%)\n",
              static_cast<long long>(annotated),
              100.0 * static_cast<double>(annotated) / static_cast<double>(total_lines));
  std::printf("  trusted lines:           %lld = %.2f%%   (paper: 3273 = <0.8%%)\n",
              static_cast<long long>(trusted),
              100.0 * static_cast<double>(trusted) / static_cast<double>(total_lines));
  std::printf("  annotation sites:        %d (count/bound/nullterm/opt/when/attrs)\n",
              stats.annotation_sites);
  std::printf("  trusted blocks/casts:    %d blocks, %d casts, %d trusted functions\n",
              stats.trusted_blocks, stats.trusted_casts, stats.trusted_funcs);
  std::printf("  note: the corpus is a distilled kernel, so annotation density is higher\n");
  std::printf("  than the paper's whole-tree 0.6%% -- their 435 kLOC is mostly lines that\n");
  std::printf("  need no annotation; the trusted-line ratio is directly comparable.\n\n");

  const ivy::CheckStats& checks = comp->check_stats;
  int64_t total = checks.TotalEmitted() + checks.TotalDischarged();
  std::printf("  hybrid checking split (the paper's \"most operations are checked\n");
  std::printf("  statically, and the rest are checked at run time\"):\n");
  std::printf("    checks proven statically: %lld (%.0f%%)\n",
              static_cast<long long>(checks.TotalDischarged()),
              100.0 * static_cast<double>(checks.TotalDischarged()) /
                  static_cast<double>(total));
  std::printf("    run-time checks emitted:  %lld (%.0f%%)\n",
              static_cast<long long>(checks.TotalEmitted()),
              100.0 * static_cast<double>(checks.TotalEmitted()) / static_cast<double>(total));
  std::printf("      null: %lld  bounds: %lld  union-when: %lld  nullterm: %lld  callsite: %lld\n",
              static_cast<long long>(checks.nonnull_emitted),
              static_cast<long long>(checks.bounds_emitted),
              static_cast<long long>(checks.when_emitted),
              static_cast<long long>(checks.nt_emitted),
              static_cast<long long>(checks.callsite_emitted));
  return 0;
}
