// Regenerates Table 1: relative performance of the deputized kernel on the
// 21 hbench micro-benchmarks. Baseline = all tools off (erasure semantics);
// Deputy = bounds/null/union checks on with static discharge.
#include <cstdio>

#include "src/hbench/hbench.h"

int main() {
  ivy::ToolConfig base;
  base.deputy = false;
  ivy::ToolConfig deputy;
  deputy.deputy = true;
  deputy.discharge = true;

  std::vector<ivy::HbenchResult> results = ivy::RunHbenchComparison(base, deputy);
  if (results.empty()) {
    std::fprintf(stderr, "kernel compilation failed\n");
    return 1;
  }
  std::string table = ivy::FormatTable1(results);
  std::fputs(table.c_str(), stdout);

  int failures = 0;
  double bw_max = 0;
  double lat_max = 0;
  for (const ivy::HbenchResult& r : results) {
    if (r.base_cycles <= 0 || r.tool_cycles <= 0) {
      // MeasureCycles already printed the trap kind/location to stderr.
      std::fprintf(stderr, "bench_table1: %s failed to run\n", r.name.c_str());
      ++failures;
    }
    if (r.name.rfind("bw_", 0) == 0 && r.relative > bw_max) {
      bw_max = r.relative;
    }
    if (r.name.rfind("lat_", 0) == 0 && r.relative > lat_max) {
      lat_max = r.relative;
    }
  }
  std::printf(
      "\nShape check: bandwidth tests stay near 1.00 (worst %.2f); latency tests carry\n"
      "the surviving run-time checks (worst %.2f; paper's worst was lat_udp at 1.48).\n"
      "The deterministic VM cannot reproduce the paper's sub-1.00 noise entries.\n",
      bw_max, lat_max);
  if (failures > 0) {
    std::fprintf(stderr, "bench_table1: %d of %zu benchmarks failed\n", failures,
                 results.size());
    return 1;
  }
  return 0;
}
