// E4: BlockStop on the kernel corpus. The paper "found two apparent bugs"
// and "encountered false positives, mostly due to the overly-conservative
// points-to analysis of function pointers", silenced by 15 run-time checks.
// This bench runs the whole analysis (field-insensitive points-to, as in the
// paper) and prints the violation and silenced-false-positive reports.
#include <cstdio>

#include "src/blockstop/blockstop.h"
#include "src/kernel/corpus.h"
#include "src/tool/analysis_context.h"

int main() {
  ivy::ToolConfig cfg;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n%s", comp->Errors().c_str());
    return 1;
  }

  // The paper's configuration: a simple (field-insensitive) points-to
  // analysis, made sound by Deputy/CCount's type safety.
  ivy::AnalysisContext ctx(comp.get(), /*field_sensitive=*/false);
  ivy::BlockStop bs(&comp->prog, comp->sema.get(), &ctx.callgraph());
  ivy::BlockStopReport report = bs.Run();

  std::printf("E4: BlockStop (paper: 2 apparent bugs; FPs silenced by 15 runtime checks)\n");
  std::printf("--------------------------------------------------------------------------\n");
  std::printf("%s", report.ToString().c_str());
  std::printf("\nviolation sites with source context:\n");
  for (const ivy::BlockingViolation& v : report.violations) {
    std::printf("  %s\n    %s\n", comp->sm.Render(v.loc).c_str(),
                comp->sm.LineAt(v.loc).c_str());
  }
  return 0;
}
