// E3: CCount free verification. The paper verified all ~107k frees from boot
// to the login prompt, and light use (idle + scp) brought good frees down to
// 98.5%. This bench boots the synthetic kernel at a scale calibrated to the
// paper's free population, then runs the light-use workload whose tcp_reset
// path still carries a bad free.
#include <cstdio>

#include "src/kernel/corpus.h"

int main() {
  ivy::ToolConfig cfg;
  cfg.ccount = true;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n%s", comp->Errors().c_str());
    return 1;
  }
  auto vm = ivy::MakeVm(*comp);

  // Boot, scaled so the free population lands near the paper's ~107k.
  ivy::VmResult boot = vm->Call("boot_kernel", {7140});
  if (!boot.ok) {
    std::fprintf(stderr, "boot trapped: %s\n", boot.trap_msg.c_str());
    return 1;
  }
  const ivy::HeapStats after_boot = vm->heap().stats();  // snapshot by value
  std::printf("E3: CCount free verification\n");
  std::printf("----------------------------\n");
  std::printf("  boot-to-login frees:   %lld attempted, %lld verified good, %lld bad\n",
              static_cast<long long>(after_boot.frees_attempted),
              static_cast<long long>(after_boot.frees_good),
              static_cast<long long>(after_boot.frees_bad));
  std::printf("  paper: \"we can now verify the correctness of all of the ~107k frees that\n");
  std::printf("  occur from boot time until the login prompt is available\"\n\n");

  ivy::VmResult use = vm->Call("light_use", {160});
  if (!use.ok) {
    std::fprintf(stderr, "light_use trapped: %s\n", use.trap_msg.c_str());
    return 1;
  }
  const ivy::HeapStats after_use = vm->heap().stats();
  int64_t window = after_use.frees_attempted - after_boot.frees_attempted;
  int64_t window_bad = after_use.frees_bad - after_boot.frees_bad;
  double window_good = window > 0
      ? 100.0 * static_cast<double>(window - window_bad) / static_cast<double>(window)
      : 100.0;
  std::printf("  after light use (idle + net rx + scp-like copy):\n");
  std::printf("    light-use window: %lld frees, %lld bad  ->  %.1f%% good (paper: 98.5%%)\n",
              static_cast<long long>(window), static_cast<long long>(window_bad), window_good);
  std::printf("    cumulative:       %lld frees, %lld bad  ->  %.1f%% good\n",
              static_cast<long long>(after_use.frees_attempted),
              static_cast<long long>(after_use.frees_bad),
              vm->heap().GoodFreeRatio() * 100.0);
  std::printf("  bad-free sites (logged, object leaked for soundness):\n");
  for (const auto& [key, site] : vm->heap().bad_free_sites()) {
    std::printf("    %s: %lld bad frees (%lld dangling refs at last report)\n",
                comp->sm.Render(site.loc).c_str(), static_cast<long long>(site.count),
                static_cast<long long>(site.inbound_refs));
  }
  std::printf("\n  refcount traffic: %lld increments, %lld decrements; peak live %lld bytes\n",
              static_cast<long long>(after_use.rc_increments),
              static_cast<long long>(after_use.rc_decrements),
              static_cast<long long>(after_use.bytes_peak));
  return 0;
}
