// F1: the three §3.1 "future analyses" demonstrated on the kernel corpus:
// LockSafe (deadlock order + the spinlock-vs-IRQ invariant), StackCheck
// (Capriccio-style stack bounding over the BlockStop call graph), and
// ErrCheck (error-code checking at call sites).
#include <cstdio>

#include "src/errcheck/errcheck.h"
#include "src/kernel/corpus.h"
#include "src/locksafe/locksafe.h"
#include "src/stackcheck/stackcheck.h"
#include "src/tool/analysis_context.h"

int main() {
  ivy::ToolConfig cfg;
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "compile failed\n%s", comp->Errors().c_str());
    return 1;
  }
  ivy::AnalysisContext ctx(comp.get(), /*field_sensitive=*/true);
  const ivy::CallGraph& cg = ctx.callgraph();

  std::printf("F1: the paper's proposed future analyses, running on the corpus\n");
  std::printf("================================================================\n\n");

  ivy::LockSafe locksafe(&comp->prog, comp->sema.get(), &cg);
  ivy::LockSafeReport ls = locksafe.Run();
  std::printf("%s\n", ls.ToString().c_str());

  ivy::StackCheck stackcheck(&cg, &comp->module, 8192);
  ivy::StackCheckReport sc = stackcheck.Run(
      {"syscall_entry", "boot_kernel", "timer_tick", "e1000_interrupt", "vfs_read",
       "tcp_sendmsg", "light_use"});
  std::printf("%s\n", sc.ToString().c_str());

  ivy::ErrCheck errcheck(&comp->prog, comp->sema.get(), &cg);
  ivy::ErrCheckReport ec = errcheck.Run();
  std::printf("%s", ec.ToString().c_str());

  // Runtime half of LockSafe: validate the orders the VM actually observed.
  auto vm = ivy::MakeVm(*comp);
  if (vm->Call("boot_kernel", {5}).ok && vm->Call("light_use", {32}).ok) {
    ivy::LockSafeReport rt = ivy::LockSafe::ValidateRuntime(*vm, comp->module);
    std::printf("\nLockSafe (runtime validation over a boot + light-use run):\n%s",
                rt.ToString().c_str());
  }
  return 0;
}
