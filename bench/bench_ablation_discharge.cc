// A1: static discharge ablation. Deputy's practicality claim rests on
// checking "most operations statically"; this bench turns the discharger off
// and shows what Table 1 would look like if every check ran at run time.
#include <cstdio>

#include "src/hbench/hbench.h"
#include "src/kernel/corpus.h"

int main() {
  ivy::ToolConfig base;
  base.deputy = false;
  ivy::ToolConfig with;
  with.deputy = true;
  with.discharge = true;
  ivy::ToolConfig without;
  without.deputy = true;
  without.discharge = false;

  auto cw = ivy::CompileKernel(with);
  auto cwo = ivy::CompileKernel(without);
  if (!cw->ok || !cwo->ok) {
    std::fprintf(stderr, "compile failed\n");
    return 1;
  }
  std::printf("A1: Deputy static discharge ablation\n");
  std::printf("------------------------------------\n");
  std::printf("  with discharge:    %lld checks emitted, %lld proven statically\n",
              static_cast<long long>(cw->check_stats.TotalEmitted()),
              static_cast<long long>(cw->check_stats.TotalDischarged()));
  std::printf("  without discharge: %lld checks emitted, %lld proven statically\n\n",
              static_cast<long long>(cwo->check_stats.TotalEmitted()),
              static_cast<long long>(cwo->check_stats.TotalDischarged()));

  auto cbase = ivy::CompileKernel(base);
  std::printf("  benchmark      discharge ON   discharge OFF\n");
  const char* subset[] = {"bw_mem_rd", "bw_mem_cp", "bw_tcp", "lat_udp", "lat_fs", "lat_proc"};
  for (const ivy::HbenchSpec& spec : ivy::HbenchSuite()) {
    bool wanted = false;
    for (const char* s : subset) {
      if (spec.name == std::string(s)) {
        wanted = true;
      }
    }
    if (!wanted) {
      continue;
    }
    int64_t b = ivy::MeasureCycles(*cbase, spec);
    int64_t on = ivy::MeasureCycles(*cw, spec);
    int64_t off = ivy::MeasureCycles(*cwo, spec);
    if (b <= 0 || on <= 0 || off <= 0) {
      std::printf("  %-13s FAILED\n", spec.name);
      continue;
    }
    std::printf("  %-13s %9.2fx   %9.2fx\n", spec.name,
                static_cast<double>(on) / static_cast<double>(b),
                static_cast<double>(off) / static_cast<double>(b));
  }
  std::printf(
      "\nWithout static discharge the bandwidth loops pay a per-element bounds check\n"
      "and Table 1's near-1.00 rows disappear — the hybrid static/dynamic split is\n"
      "what makes sound checking affordable (§1, \"Hybrid checking\").\n");
  return 0;
}
