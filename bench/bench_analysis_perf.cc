// Analysis-infrastructure microbenchmarks (google-benchmark): how fast the
// frontend, the points-to analysis, the call graph and the VM are on the
// whole kernel corpus. The paper's scalability claim ("it is possible to
// apply sound static analysis tools at a large scale") rests on tool speed.
#include <benchmark/benchmark.h>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/blockstop/blockstop.h"
#include "src/kernel/corpus.h"

namespace {

void BM_CompileKernel(benchmark::State& state) {
  ivy::ToolConfig cfg;
  for (auto _ : state) {
    auto comp = ivy::CompileKernel(cfg);
    benchmark::DoNotOptimize(comp->ok);
  }
}
BENCHMARK(BM_CompileKernel);

void BM_PointsToInsensitive(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
    pt.Solve();
    benchmark::DoNotOptimize(pt.node_count());
  }
}
BENCHMARK(BM_PointsToInsensitive);

void BM_PointsToFieldSensitive(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), true);
    pt.Solve();
    benchmark::DoNotOptimize(pt.node_count());
  }
}
BENCHMARK(BM_PointsToFieldSensitive);

void BM_BlockStopFull(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
    pt.Solve();
    ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
    ivy::BlockStop bs(&comp->prog, comp->sema.get(), &cg);
    ivy::BlockStopReport report = bs.Run();
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopFull);

void BM_VmBoot(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    auto vm = ivy::MakeVm(*comp);
    ivy::VmResult r = vm->Call("boot_kernel", {5});
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_VmBoot);

void BM_VmThroughputDeputy(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  auto vm = ivy::MakeVm(*comp);
  vm->Call("boot_kernel", {2});
  vm->Call("hb_setup");
  int64_t steps = 0;
  for (auto _ : state) {
    int64_t before = 0;
    ivy::VmResult r = vm->Call("hb_bw_mem_rd", {2});
    steps += r.steps - before;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_VmThroughputDeputy);

}  // namespace

BENCHMARK_MAIN();
