// Analysis-infrastructure microbenchmarks (google-benchmark): how fast the
// frontend, the points-to analysis, the call graph and the VM are on the
// whole kernel corpus. The paper's scalability claim ("it is possible to
// apply sound static analysis tools at a large scale") rests on tool speed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/blockstop/blockstop.h"
#include "src/errcheck/errcheck.h"
#include "src/kernel/corpus.h"
#include "src/locksafe/locksafe.h"
#include "src/stackcheck/stackcheck.h"
#include "src/support/work_queue.h"
#include "src/tool/function_sharder.h"
#include "src/tool/pipeline.h"
#include "tests/synth_corpus.h"

namespace {

void BM_CompileKernel(benchmark::State& state) {
  ivy::ToolConfig cfg;
  for (auto _ : state) {
    auto comp = ivy::CompileKernel(cfg);
    benchmark::DoNotOptimize(comp->ok);
  }
}
BENCHMARK(BM_CompileKernel);

void BM_PointsToInsensitive(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
    pt.Solve();
    benchmark::DoNotOptimize(pt.node_count());
  }
}
BENCHMARK(BM_PointsToInsensitive);

void BM_PointsToFieldSensitive(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), true);
    pt.Solve();
    benchmark::DoNotOptimize(pt.node_count());
  }
}
BENCHMARK(BM_PointsToFieldSensitive);

void BM_BlockStopFull(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::AnalysisContext ctx(comp.get(), /*field_sensitive=*/false);
    ivy::BlockStop bs(&comp->prog, comp->sema.get(), &ctx.callgraph());
    ivy::BlockStopReport report = bs.Run();
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopFull);

// The seed's pattern: every tool rebuilds the points-to results and the call
// graph privately (4 solves + 4 graph constructions per multi-tool run).
void BM_FourToolsRebuildPerTool(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    int64_t sink = 0;
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::BlockStop(&comp->prog, comp->sema.get(), &cg).Run().violations.size();
    }
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::LockSafe(&comp->prog, comp->sema.get(), &cg).Run().deadlock_cycles.size();
    }
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::StackCheck(&cg, &comp->module).Run({"boot_kernel"}).worst_case;
    }
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::ErrCheck(&comp->prog, comp->sema.get(), &cg).Run().findings.size();
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_FourToolsRebuildPerTool);

// The pipeline: same four tools, one shared AnalysisContext. The explicit
// check is the acceptance criterion — the call graph is computed exactly
// once per run.
void BM_FourToolsSharedPipeline(benchmark::State& state) {
  ivy::Pipeline pipeline = ivy::PipelineBuilder()
                               .Tool("blockstop")
                               .Tool("locksafe")
                               .Tool("stackcheck",
                                     ivy::ToolOptions().Set("entries", "boot_kernel"))
                               .Tool("errcheck")
                               .FieldSensitive(false)
                               .Parallel(false)  // measure the cache, not the threads
                               .Build();
  auto comp = ivy::CompileKernel(pipeline.config());
  for (auto _ : state) {
    auto ctx = pipeline.MakeContext(comp.get());
    ivy::PipelineResult result = pipeline.RunTools(*ctx);
    // Not assert(): RelWithDebInfo defines NDEBUG, and this check must hold
    // in exactly the configuration benchmarks run in.
    if (result.callgraph_builds != 1 || result.pointsto_builds != 1) {
      std::fprintf(stderr, "FATAL: shared cache regressed (callgraph %dx, points-to %dx)\n",
                   result.callgraph_builds, result.pointsto_builds);
      std::abort();
    }
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_FourToolsSharedPipeline);

// Same pipeline with the std::async scheduler enabled.
void BM_FourToolsSharedPipelineParallel(benchmark::State& state) {
  ivy::Pipeline pipeline = ivy::PipelineBuilder()
                               .Tool("blockstop")
                               .Tool("locksafe")
                               .Tool("stackcheck",
                                     ivy::ToolOptions().Set("entries", "boot_kernel"))
                               .Tool("errcheck")
                               .FieldSensitive(false)
                               .Parallel(true)
                               .Build();
  auto comp = ivy::CompileKernel(pipeline.config());
  for (auto _ : state) {
    auto ctx = pipeline.MakeContext(comp.get());
    ivy::PipelineResult result = pipeline.RunTools(*ctx);
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_FourToolsSharedPipelineParallel);

// ---------------------------------------------------------------------------
// Per-function sharding: serial reference kernels vs the sharded work-queue
// kernels on a synthesized ~500-function corpus (long call chains, spinlock
// sections, irq handlers — see tests/synth_corpus.h). The sharded numbers
// must be >= 1.5x faster than serial AND byte-identical in findings; the
// identity half is enforced here with the same FATAL pattern as the cache
// check above, so a quietly-diverging kernel can never post a winning time.
// ---------------------------------------------------------------------------

ivy::Compilation* SynthComp() {
  static std::unique_ptr<ivy::Compilation> comp = [] {
    ivy::SynthCorpusOptions opt;
    opt.functions = 500;
    opt.seed = 2024;
    // Deep-chain profile with mixed-direction blocks: may-block seeds sit
    // ~170 functions from the call sites that consume them, and half the
    // blocks chain against the scan order, so the serial rescan fixpoints
    // pay a full round per hop while the sharded worklist pays per edge.
    opt.fanout_span = 6;
    opt.mid_blocking_every = 0;
    opt.descending_blocks = true;
    auto c = ivy::CompileOne(ivy::GenerateSynthCorpus(opt), ivy::ToolConfig{});
    if (!c->ok) {
      std::fprintf(stderr, "FATAL: synth corpus does not compile\n%s\n", c->Errors().c_str());
      std::abort();
    }
    return c;
  }();
  return comp.get();
}

ivy::AnalysisContext& SynthCtx() {
  static ivy::AnalysisContext* ctx =
      new ivy::AnalysisContext(SynthComp(), /*field_sensitive=*/false);
  ctx->callgraph();  // warm outside the timed region
  return *ctx;
}

std::string FindingsDump(const std::vector<ivy::Finding>& findings) {
  ivy::Json arr = ivy::Json::MakeArray();
  for (const ivy::Finding& f : findings) {
    arr.Append(f.ToJson());
  }
  return arr.Dump();
}

void CheckShardedIdentity(const std::vector<ivy::Finding>& sharded,
                          const std::vector<ivy::Finding>& serial, const char* what) {
  if (FindingsDump(sharded) != FindingsDump(serial)) {
    std::fprintf(stderr, "FATAL: sharded %s findings diverge from serial\n", what);
    std::abort();
  }
}

void BM_BlockStopSynth500Serial(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  for (auto _ : state) {
    ivy::BlockStop bs(&ctx.prog(), &ctx.sema(), &ctx.callgraph());
    ivy::BlockStopReport report = bs.Run();
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopSynth500Serial);

void BM_BlockStopSynth500Sharded(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  const ivy::CallGraph& cg = ctx.callgraph();
  {
    ivy::BlockStop serial_bs(&ctx.prog(), &ctx.sema(), &cg);
    ivy::BlockStopReport serial = serial_bs.Run();
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::BlockStop bs(&ctx.prog(), &ctx.sema(), &cg);
    CheckShardedIdentity(bs.Run(sharder, wq).ToFindings(), serial.ToFindings(), "blockstop");
  }
  for (auto _ : state) {
    // Sharder + pool construction measured too: that is what a pass pays.
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::BlockStop bs(&ctx.prog(), &ctx.sema(), &cg);
    ivy::BlockStopReport report = bs.Run(sharder, wq);
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopSynth500Sharded)->Arg(1)->Arg(4);

void BM_StackCheckSynth500Serial(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  const ivy::CallGraph& cg = ctx.callgraph();
  for (auto _ : state) {
    ivy::StackCheck sc(&cg, &ctx.module());
    ivy::StackCheckReport report = sc.Run({});
    benchmark::DoNotOptimize(report.worst_case);
  }
}
BENCHMARK(BM_StackCheckSynth500Serial);

void BM_StackCheckSynth500Sharded(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  const ivy::CallGraph& cg = ctx.callgraph();
  {
    ivy::StackCheck serial_sc(&cg, &ctx.module());
    ivy::StackCheckReport serial = serial_sc.Run({});
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::StackCheck sc(&cg, &ctx.module());
    CheckShardedIdentity(sc.Run({}, sharder, wq).ToFindings(), serial.ToFindings(),
                         "stackcheck");
  }
  for (auto _ : state) {
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::StackCheck sc(&cg, &ctx.module());
    ivy::StackCheckReport report = sc.Run({}, sharder, wq);
    benchmark::DoNotOptimize(report.worst_case);
  }
}
BENCHMARK(BM_StackCheckSynth500Sharded)->Arg(1)->Arg(4);

void BM_VmBoot(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    auto vm = ivy::MakeVm(*comp);
    ivy::VmResult r = vm->Call("boot_kernel", {5});
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_VmBoot);

void BM_VmThroughputDeputy(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  auto vm = ivy::MakeVm(*comp);
  vm->Call("boot_kernel", {2});
  vm->Call("hb_setup");
  int64_t steps = 0;
  for (auto _ : state) {
    int64_t before = 0;
    ivy::VmResult r = vm->Call("hb_bw_mem_rd", {2});
    steps += r.steps - before;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_VmThroughputDeputy);

}  // namespace

BENCHMARK_MAIN();
