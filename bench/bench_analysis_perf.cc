// Analysis-infrastructure microbenchmarks (google-benchmark): how fast the
// frontend, the points-to analysis, the call graph and the VM are on the
// whole kernel corpus. The paper's scalability claim ("it is possible to
// apply sound static analysis tools at a large scale") rests on tool speed.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <thread>

#include <sys/resource.h>

#include "src/analysis/callgraph.h"
#include "src/analysis/fingerprint.h"
#include "src/analysis/pointsto.h"
#include "src/bc/bytecode.h"
#include "src/bc/compile.h"
#include "src/bc/verify.h"
#include "src/blockstop/blockstop.h"
#include "src/errcheck/errcheck.h"
#include "src/kernel/corpus.h"
#include "src/kernel/prelude.h"
#include "src/locksafe/locksafe.h"
#include "src/mc/lexer.h"
#include "src/mc/parser.h"
#include "src/mc/sema.h"
#include "src/vm/builtins.h"
#include "src/server/client.h"
#include "src/server/epoch.h"
#include "src/server/server.h"
#include "src/stackcheck/stackcheck.h"
#include "src/support/clock.h"
#include "src/support/trace.h"
#include "src/support/work_queue.h"
#include "src/tool/function_sharder.h"
#include "src/tool/pipeline.h"
#include "src/tool/session.h"
#include "tests/synth_corpus.h"

namespace {

void BM_CompileKernel(benchmark::State& state) {
  ivy::ToolConfig cfg;
  for (auto _ : state) {
    auto comp = ivy::CompileKernel(cfg);
    benchmark::DoNotOptimize(comp->ok);
  }
}
BENCHMARK(BM_CompileKernel);

void BM_PointsToInsensitive(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
    pt.Solve();
    benchmark::DoNotOptimize(pt.node_count());
  }
}
BENCHMARK(BM_PointsToInsensitive);

void BM_PointsToFieldSensitive(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::PointsTo pt(&comp->prog, comp->sema.get(), true);
    pt.Solve();
    benchmark::DoNotOptimize(pt.node_count());
  }
}
BENCHMARK(BM_PointsToFieldSensitive);

void BM_BlockStopFull(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    ivy::AnalysisContext ctx(comp.get(), /*field_sensitive=*/false);
    ivy::BlockStop bs(&comp->prog, comp->sema.get(), &ctx.callgraph());
    ivy::BlockStopReport report = bs.Run();
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopFull);

// The seed's pattern: every tool rebuilds the points-to results and the call
// graph privately (4 solves + 4 graph constructions per multi-tool run).
void BM_FourToolsRebuildPerTool(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    int64_t sink = 0;
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::BlockStop(&comp->prog, comp->sema.get(), &cg).Run().violations.size();
    }
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::LockSafe(&comp->prog, comp->sema.get(), &cg).Run().deadlock_cycles.size();
    }
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::StackCheck(&cg, &comp->module).Run({"boot_kernel"}).worst_case;
    }
    {
      ivy::PointsTo pt(&comp->prog, comp->sema.get(), false);
      pt.Solve();
      ivy::CallGraph cg = ivy::CallGraph::Build(comp->prog, *comp->sema, pt);
      sink += ivy::ErrCheck(&comp->prog, comp->sema.get(), &cg).Run().findings.size();
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_FourToolsRebuildPerTool);

// The pipeline: same four tools, one shared AnalysisContext. The explicit
// check is the acceptance criterion — the call graph is computed exactly
// once per run.
void BM_FourToolsSharedPipeline(benchmark::State& state) {
  ivy::Pipeline pipeline = ivy::PipelineBuilder()
                               .Tool("blockstop")
                               .Tool("locksafe")
                               .Tool("stackcheck",
                                     ivy::ToolOptions().Set("entries", "boot_kernel"))
                               .Tool("errcheck")
                               .FieldSensitive(false)
                               .Parallel(false)  // measure the cache, not the threads
                               .Build();
  auto comp = ivy::CompileKernel(pipeline.config());
  for (auto _ : state) {
    auto ctx = pipeline.MakeContext(comp.get());
    ivy::PipelineResult result = pipeline.RunTools(*ctx);
    // Not assert(): RelWithDebInfo defines NDEBUG, and this check must hold
    // in exactly the configuration benchmarks run in.
    if (result.callgraph_builds != 1 || result.pointsto_builds != 1) {
      std::fprintf(stderr, "FATAL: shared cache regressed (callgraph %dx, points-to %dx)\n",
                   result.callgraph_builds, result.pointsto_builds);
      std::abort();
    }
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_FourToolsSharedPipeline);

// Same pipeline with the std::async scheduler enabled.
void BM_FourToolsSharedPipelineParallel(benchmark::State& state) {
  ivy::Pipeline pipeline = ivy::PipelineBuilder()
                               .Tool("blockstop")
                               .Tool("locksafe")
                               .Tool("stackcheck",
                                     ivy::ToolOptions().Set("entries", "boot_kernel"))
                               .Tool("errcheck")
                               .FieldSensitive(false)
                               .Parallel(true)
                               .Build();
  auto comp = ivy::CompileKernel(pipeline.config());
  for (auto _ : state) {
    auto ctx = pipeline.MakeContext(comp.get());
    ivy::PipelineResult result = pipeline.RunTools(*ctx);
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_FourToolsSharedPipelineParallel);

// ---------------------------------------------------------------------------
// Per-function sharding: serial reference kernels vs the sharded work-queue
// kernels on a synthesized ~500-function corpus (long call chains, spinlock
// sections, irq handlers — see tests/synth_corpus.h). The sharded numbers
// must be >= 1.5x faster than serial AND byte-identical in findings; the
// identity half is enforced here with the same FATAL pattern as the cache
// check above, so a quietly-diverging kernel can never post a winning time.
// ---------------------------------------------------------------------------

ivy::Compilation* SynthComp() {
  static std::unique_ptr<ivy::Compilation> comp = [] {
    ivy::SynthCorpusOptions opt;
    opt.functions = 500;
    opt.seed = 2024;
    // Deep-chain profile with mixed-direction blocks: may-block seeds sit
    // ~170 functions from the call sites that consume them, and half the
    // blocks chain against the scan order, so the serial rescan fixpoints
    // pay a full round per hop while the sharded worklist pays per edge.
    opt.fanout_span = 6;
    opt.mid_blocking_every = 0;
    opt.descending_blocks = true;
    auto c = ivy::CompileOne(ivy::GenerateSynthCorpus(opt), ivy::ToolConfig{});
    if (!c->ok) {
      std::fprintf(stderr, "FATAL: synth corpus does not compile\n%s\n", c->Errors().c_str());
      std::abort();
    }
    return c;
  }();
  return comp.get();
}

ivy::AnalysisContext& SynthCtx() {
  static ivy::AnalysisContext* ctx =
      new ivy::AnalysisContext(SynthComp(), /*field_sensitive=*/false);
  ctx->callgraph();  // warm outside the timed region
  return *ctx;
}

std::string FindingsDump(const std::vector<ivy::Finding>& findings) {
  ivy::Json arr = ivy::Json::MakeArray();
  for (const ivy::Finding& f : findings) {
    arr.Append(f.ToJson());
  }
  return arr.Dump();
}

void CheckShardedIdentity(const std::vector<ivy::Finding>& sharded,
                          const std::vector<ivy::Finding>& serial, const char* what) {
  if (FindingsDump(sharded) != FindingsDump(serial)) {
    std::fprintf(stderr, "FATAL: sharded %s findings diverge from serial\n", what);
    std::abort();
  }
}

void BM_BlockStopSynth500Serial(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  for (auto _ : state) {
    ivy::BlockStop bs(&ctx.prog(), &ctx.sema(), &ctx.callgraph());
    ivy::BlockStopReport report = bs.Run();
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopSynth500Serial);

void BM_BlockStopSynth500Sharded(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  const ivy::CallGraph& cg = ctx.callgraph();
  {
    ivy::BlockStop serial_bs(&ctx.prog(), &ctx.sema(), &cg);
    ivy::BlockStopReport serial = serial_bs.Run();
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::BlockStop bs(&ctx.prog(), &ctx.sema(), &cg);
    CheckShardedIdentity(bs.Run(sharder, wq).ToFindings(), serial.ToFindings(), "blockstop");
  }
  for (auto _ : state) {
    // Sharder + pool construction measured too: that is what a pass pays.
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::BlockStop bs(&ctx.prog(), &ctx.sema(), &cg);
    ivy::BlockStopReport report = bs.Run(sharder, wq);
    benchmark::DoNotOptimize(report.violations.size());
  }
}
BENCHMARK(BM_BlockStopSynth500Sharded)->Arg(1)->Arg(4);

void BM_StackCheckSynth500Serial(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  const ivy::CallGraph& cg = ctx.callgraph();
  for (auto _ : state) {
    ivy::StackCheck sc(&cg, &ctx.module());
    ivy::StackCheckReport report = sc.Run({});
    benchmark::DoNotOptimize(report.worst_case);
  }
}
BENCHMARK(BM_StackCheckSynth500Serial);

void BM_StackCheckSynth500Sharded(benchmark::State& state) {
  ivy::AnalysisContext& ctx = SynthCtx();
  const ivy::CallGraph& cg = ctx.callgraph();
  {
    ivy::StackCheck serial_sc(&cg, &ctx.module());
    ivy::StackCheckReport serial = serial_sc.Run({});
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::StackCheck sc(&cg, &ctx.module());
    CheckShardedIdentity(sc.Run({}, sharder, wq).ToFindings(), serial.ToFindings(),
                         "stackcheck");
  }
  for (auto _ : state) {
    ivy::FunctionSharder sharder(cg.DefinedFuncs(), static_cast<int>(state.range(0)));
    ivy::WorkQueue wq(sharder.worker_count());
    ivy::StackCheck sc(&cg, &ctx.module());
    ivy::StackCheckReport report = sc.Run({}, sharder, wq);
    benchmark::DoNotOptimize(report.worst_case);
  }
}
BENCHMARK(BM_StackCheckSynth500Sharded)->Arg(1)->Arg(4);

// ---------------------------------------------------------------------------
// AnalysisSession: batched corpus runs vs N sequential pipelines, and
// incremental re-analysis vs cold re-runs. The same measurements, taken with
// plain chrono timers, feed BENCH_pipeline.json below (the CI perf
// artifact); the google-benchmark versions exist for interactive runs.
// ---------------------------------------------------------------------------

constexpr int kCorpusModules = 8;
constexpr int kCorpusFunctions = 400;

std::vector<ivy::ModuleSources> SessionCorpus() {
  std::vector<ivy::ModuleSources> out;
  for (int m = 0; m < kCorpusModules; ++m) {
    ivy::SynthCorpusOptions opt;
    opt.functions = kCorpusFunctions;
    opt.seed = 4000 + static_cast<uint64_t>(m);
    opt.hook_tables = 4;
    // The deep-chain profile (see SynthComp above): long propagation
    // distances make the fixpoints — what incremental re-analysis skips —
    // the dominant cost, as in a real kernel-sized module.
    opt.fanout_span = 6;
    opt.mid_blocking_every = 0;
    opt.descending_blocks = true;
    char name[16];
    std::snprintf(name, sizeof(name), "mod_%02d", m);
    out.push_back({name, {ivy::SourceFile{std::string(name) + ".mc",
                                          ivy::GenerateSynthCorpus(opt)}}});
  }
  return out;
}

ivy::PipelineBuilder SessionPipeline() {
  ivy::PipelineBuilder b;
  b.Tool("blockstop").Tool("stackcheck").Tool("errcheck").Tool("locksafe");
  return b;
}

std::string EditedDefinition() {
  return "void " + ivy::SynthFuncName(5) + "(int n) {\n  int pad[16]; pad[0] = n;\n  msleep(n);\n}\n";
}

// ---------------------------------------------------------------------------
// Frontend A/B: arena vs per-node-heap AST. Runs parse+sema (the stages the
// arena refactor targets) over the 8x400 corpus in each allocation mode and
// FATAL-checks that every function fingerprint is identical — a faster arena
// that perturbs fingerprints would silently break incremental dirty bits.
// ---------------------------------------------------------------------------

struct FrontendTiming {
  double parse_ms = 0;
  double sema_ms = 0;
  size_t ast_bytes = 0;  // arena mode: slabs+bump; heap mode: per-node blocks
};

// One module lexed ahead of time: token streams don't depend on the AST
// allocation mode, so lexing stays outside the timed region and parse_us
// measures parsing proper (the stage the arena changes).
struct LexedModule {
  std::string name;
  std::unique_ptr<ivy::SourceManager> sm = std::make_unique<ivy::SourceManager>();
  std::unique_ptr<ivy::DiagEngine> diags;
  std::vector<std::vector<ivy::Token>> tokens;  // prelude first
};

std::vector<std::unique_ptr<LexedModule>> LexCorpus(
    const std::vector<ivy::ModuleSources>& corpus) {
  std::vector<std::unique_ptr<LexedModule>> out;
  for (const ivy::ModuleSources& m : corpus) {
    auto lm = std::make_unique<LexedModule>();
    lm->name = m.name;
    lm->diags = std::make_unique<ivy::DiagEngine>(lm->sm.get());
    auto lex_file = [&lm](int32_t id) {
      ivy::Lexer lex(*lm->sm, id, lm->diags.get());
      lm->tokens.push_back(lex.Lex());
    };
    lex_file(lm->sm->AddFile("<prelude>", ivy::PreludeSource()));
    for (const ivy::SourceFile& f : m.files) {
      lex_file(lm->sm->AddFile(f.name, f.text));
    }
    out.push_back(std::move(lm));
  }
  return out;
}

FrontendTiming FrontendPass(const std::vector<std::unique_ptr<LexedModule>>& corpus,
                            ivy::AstAllocMode mode,
                            std::map<std::string, uint64_t>* fps) {
  FrontendTiming t;
  for (const std::unique_ptr<LexedModule>& m : corpus) {
    ivy::Program prog(mode);
    const uint64_t p0 = ivy::MonotonicNowNs();
    for (const std::vector<ivy::Token>& toks : m->tokens) {
      ivy::Parser parser(&prog, &toks, m->diags.get());
      parser.ParseTranslationUnit();
    }
    const uint64_t p1 = ivy::MonotonicNowNs();
    ivy::Sema sema(&prog, m->diags.get(),
                   [](const std::string& n) { return ivy::BuiltinIdForName(n); });
    bool ok = sema.Run() && m->diags->ok();
    const uint64_t p2 = ivy::MonotonicNowNs();
    if (!ok) {
      std::fprintf(stderr, "FATAL: frontend bench corpus failed sema\n");
      std::abort();
    }
    t.parse_ms += static_cast<double>(p1 - p0) / 1e6;
    t.sema_ms += static_cast<double>(p2 - p1) / 1e6;
    t.ast_bytes += prog.arena().TotalBytes();
    if (fps != nullptr) {
      for (const ivy::FuncDecl* fn : prog.funcs) {
        if (fn->body != nullptr) {
          (*fps)[m->name + "/" + fn->name] = ivy::FingerprintFunction(prog, fn);
        }
      }
    }
  }
  return t;
}

void BM_ParseSemaHeap(benchmark::State& state) {
  auto lexed = LexCorpus(SessionCorpus());
  for (auto _ : state) {
    FrontendTiming t = FrontendPass(lexed, ivy::AstAllocMode::kHeap, nullptr);
    benchmark::DoNotOptimize(t.ast_bytes);
  }
}
BENCHMARK(BM_ParseSemaHeap);

void BM_ParseSemaArena(benchmark::State& state) {
  auto lexed = LexCorpus(SessionCorpus());
  for (auto _ : state) {
    FrontendTiming t = FrontendPass(lexed, ivy::AstAllocMode::kArena, nullptr);
    benchmark::DoNotOptimize(t.ast_bytes);
  }
}
BENCHMARK(BM_ParseSemaArena);

void BM_CorpusSequentialPipelines(benchmark::State& state) {
  std::vector<ivy::ModuleSources> corpus = SessionCorpus();
  ivy::Pipeline p = SessionPipeline().Build();
  for (auto _ : state) {
    int64_t sink = 0;
    for (const ivy::ModuleSources& m : corpus) {
      ivy::PipelineRun run = p.CompileAndRun(m.files);
      sink += static_cast<int64_t>(run.result.findings.size());
    }
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_CorpusSequentialPipelines);

void BM_CorpusBatchedSession(benchmark::State& state) {
  std::vector<ivy::ModuleSources> corpus = SessionCorpus();
  for (auto _ : state) {
    ivy::PipelineBuilder b = SessionPipeline();
    b.ForEachModule(corpus);
    ivy::AnalysisSession session = b.BuildSession();
    ivy::SessionResult result = session.Run();
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_CorpusBatchedSession);

void BM_SessionIncrementalEdit(benchmark::State& state) {
  std::vector<ivy::ModuleSources> corpus = SessionCorpus();
  ivy::PipelineBuilder b = SessionPipeline();
  b.ForEachModule(corpus);
  ivy::AnalysisSession session = b.BuildSession();
  session.Run();  // cold baseline outside the timed region
  bool flip = false;
  for (auto _ : state) {
    // Alternate two definitions so every iteration has a real edit.
    state.PauseTiming();
    std::string def = flip ? EditedDefinition()
                           : "void " + ivy::SynthFuncName(5) +
                                 "(int n) {\n  int pad[4]; pad[0] = n;\n  udelay(1);\n}\n";
    flip = !flip;
    if (!session.ReplaceFunction("mod_03", ivy::SynthFuncName(5), def)) {
      std::fprintf(stderr, "FATAL: bench edit did not apply\n");
      std::abort();
    }
    state.ResumeTiming();
    ivy::SessionResult result = session.Run();
    benchmark::DoNotOptimize(result.findings.size());
  }
}
BENCHMARK(BM_SessionIncrementalEdit);

// Linked-corpus workload: cross-module calls through extern declarations,
// analyzed by the RunLinked summary fixpoint vs one merged-source program.
std::vector<ivy::ModuleSources> LinkedBenchCorpus() {
  ivy::LinkedCorpusOptions opt;
  opt.modules = 6;
  opt.functions = 120;
  opt.seed = 4242;
  return ivy::GenerateLinkedCorpus(opt);
}

// StackCheck's budget-overrun finding is one record *per report*: a linked
// corpus produces one report per module, a merged program exactly one, so
// with a reachable budget the shapes cannot match (the depths still do —
// see tests/session_linked_test.cc). The identity-checked linked workload
// runs with an unreachable budget, like the property test.
ivy::PipelineBuilder LinkedSessionPipeline() {
  ivy::PipelineBuilder b;
  ivy::ToolOptions sc;
  sc.SetInt("budget", int64_t{1} << 40);
  b.Tool("blockstop").Tool("stackcheck", sc).Tool("errcheck").Tool("locksafe");
  return b;
}

void BM_LinkedCorpusFixpoint(benchmark::State& state) {
  std::vector<ivy::ModuleSources> corpus = LinkedBenchCorpus();
  int rounds = 0;
  for (auto _ : state) {
    ivy::PipelineBuilder b = SessionPipeline();
    b.ForEachModule(corpus);
    ivy::AnalysisSession session = b.BuildSession();
    ivy::SessionResult result = session.RunLinked();
    rounds = session.link_stats().rounds;
    benchmark::DoNotOptimize(result.findings.size());
  }
  state.counters["rounds"] = rounds;
}
BENCHMARK(BM_LinkedCorpusFixpoint);

void BM_LinkedCorpusMergedSource(benchmark::State& state) {
  std::vector<ivy::ModuleSources> corpus = LinkedBenchCorpus();
  std::vector<ivy::SourceFile> merged = ivy::MergedLinkedSources(corpus);
  ivy::Pipeline p = SessionPipeline().Build();
  for (auto _ : state) {
    ivy::PipelineRun run = p.CompileAndRun(merged);
    benchmark::DoNotOptimize(run.result.findings.size());
  }
}
BENCHMARK(BM_LinkedCorpusMergedSource);

void BM_VmBoot(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  for (auto _ : state) {
    auto vm = ivy::MakeVm(*comp);
    ivy::VmResult r = vm->Call("boot_kernel", {5});
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_VmBoot);

void BM_VmThroughputDeputy(benchmark::State& state) {
  auto comp = ivy::CompileKernel(ivy::ToolConfig{});
  auto vm = ivy::MakeVm(*comp);
  vm->Call("boot_kernel", {2});
  vm->Call("hb_setup");
  int64_t steps = 0;
  for (auto _ : state) {
    int64_t before = 0;
    ivy::VmResult r = vm->Call("hb_bw_mem_rd", {2});
    steps += r.steps - before;
    benchmark::DoNotOptimize(r.value);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_VmThroughputDeputy);

// ---------------------------------------------------------------------------
// BENCH_pipeline.json: the CI perf artifact. Times batched-vs-sequential
// corpus runs and incremental-vs-cold re-analysis with plain chrono timers
// (independent of --benchmark_filter, so CI can skip the microbenchmarks and
// still track the pipeline trajectory), checks the incremental findings
// byte-identical against the cold run, and records the solver counters.
// Opt-in: runs only when $BENCH_PIPELINE_OUT names the output path — the
// multi-corpus workload must not tax interactive --benchmark_filter runs.
// ---------------------------------------------------------------------------

template <typename F>
double MedianMs(F&& fn, int reps = 3) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    const uint64_t start_ns = ivy::MonotonicNowNs();
    fn();
    times.push_back(ivy::ElapsedMsSince(start_ns));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

// Min-of-N: the right statistic for an overhead gate — the minimum is the
// run least disturbed by scheduler noise, so comparing minima isolates the
// code-path delta rather than machine load.
template <typename F>
double MinMs(F&& fn, const char* label = nullptr, int reps = 5) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    const uint64_t start_ns = ivy::MonotonicNowNs();
    fn();
    const double ms = ivy::ElapsedMsSince(start_ns);
    if (label != nullptr) {
      // Raw reps on stderr: when the overhead gate trips, the per-rep
      // sequence distinguishes a real code-path delta (flat shift) from
      // machine noise (spikes) at a glance.
      std::fprintf(stderr, "  tracing %s rep %d: %.1f ms\n", label, i, ms);
    }
    if (i == 0 || ms < best) {
      best = ms;
    }
  }
  return best;
}

// Analysis-server latency: an in-process AnnodServer over a real TCP socket
// serving an 8x400 linked corpus. Measures per-query wire latency (p50/p99)
// while a background editor streams ReplaceFunction edits — so relinks are
// continuously in flight and queries are answered from pinned epochs — and
// the edit-to-new-epoch latency a save hook would observe. The final epoch
// is FATAL-checked byte-identical to a cold batch RunLinked() over the same
// final sources: a server that answers fast from a diverged snapshot must
// never post a number.
ivy::Json ServerBenchJson() {
  ivy::LinkedCorpusOptions copt;
  copt.modules = kCorpusModules;
  copt.functions = kCorpusFunctions;
  copt.seed = 5150;
  std::vector<ivy::ModuleSources> corpus = ivy::GenerateLinkedCorpus(copt);

  ivy::AnnodServer::Options sopts;
  sopts.pipeline = LinkedSessionPipeline().Build();
  ivy::AnnodServer server(std::move(sopts));
  server.OpenCorpus("bench");
  for (const ivy::ModuleSources& m : corpus) {
    server.EnqueueUpsert("bench", m);
  }
  std::string err;
  if (!server.Start("127.0.0.1:0", &err)) {
    std::fprintf(stderr, "FATAL: server bench Start: %s\n", err.c_str());
    std::abort();
  }
  if (server.SyncEpoch("bench") == 0) {
    std::fprintf(stderr, "FATAL: server bench corpus did not publish\n");
    std::abort();
  }

  const std::string edit_module = ivy::LinkedModuleName(1);
  const std::string edit_fn = ivy::SynthFuncName(ivy::LinkedModulePrefix(1), 5);
  auto def_for = [&edit_fn](int flavor) {
    return "void " + edit_fn + "(int n) {\n  int pad[" +
           std::to_string(4 << (flavor % 3)) + "]; pad[0] = n;\n  msleep(n);\n}\n";
  };

  // Edit-to-new-epoch: submit one function edit, block until the relinked
  // epoch it lands in is queryable.
  int edit_i = 0;
  double edit_to_epoch_ms = MedianMs(
      [&server, &edit_module, &edit_fn, &def_for, &edit_i] {
        server.EnqueueReplaceFunction("bench", edit_module, edit_fn, def_for(edit_i++));
        if (server.SyncEpoch("bench") == 0) {
          std::fprintf(stderr, "FATAL: server bench edit epoch did not publish\n");
          std::abort();
        }
      },
      5);

  // Query latency with the relink worker continuously busy.
  std::atomic<bool> stop{false};
  std::thread editor([&server, &edit_module, &edit_fn, &def_for, &stop] {
    int flavor = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      server.EnqueueReplaceFunction("bench", edit_module, edit_fn, def_for(flavor++));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  ivy::AnnodClient client;
  if (!client.Connect(server.bound_address(), &err)) {
    std::fprintf(stderr, "FATAL: server bench connect: %s\n", err.c_str());
    std::abort();
  }
  constexpr int kQueries = 300;
  std::vector<double> lat_us;
  lat_us.reserve(kQueries);
  uint64_t rows_sink = 0;
  for (int i = 0; i < kQueries; ++i) {
    const uint64_t start_ns = ivy::MonotonicNowNs();
    ivy::RowsReplyMsg rows;
    bool ok;
    // Rotate the three query shapes a live client mixes: full-corpus
    // findings, per-module findings, per-module summaries.
    if (i % 3 == 2) {
      ivy::SummariesQueryMsg q;
      q.corpus = "bench";
      q.module = ivy::LinkedModuleName(i % kCorpusModules);
      ok = client.QuerySummaries(q, &rows, &err);
    } else {
      ivy::FindingsQueryMsg q;
      q.corpus = "bench";
      if (i % 3 == 1) {
        q.module = ivy::LinkedModuleName(i % kCorpusModules);
      }
      ok = client.QueryFindings(q, &rows, &err);
    }
    const double us = static_cast<double>(ivy::MonotonicNowNs() - start_ns) / 1000.0;
    if (!ok) {
      std::fprintf(stderr, "FATAL: server bench query: %s\n", err.c_str());
      std::abort();
    }
    rows_sink += rows.rows.size();
    lat_us.push_back(us);
  }
  benchmark::DoNotOptimize(rows_sink);
  stop.store(true);
  editor.join();

  // Quiesce on one final known definition, then hold the server to the
  // byte-identity contract.
  const std::string final_def = def_for(0);
  server.EnqueueReplaceFunction("bench", edit_module, edit_fn, final_def);
  if (server.SyncEpoch("bench") == 0) {
    std::abort();
  }
  std::shared_ptr<const ivy::EpochSnapshot> warm_snap = server.Snapshot("bench");
  ivy::PipelineBuilder cold_b = LinkedSessionPipeline();
  cold_b.ForEachModule(corpus);
  ivy::AnalysisSession cold_session = cold_b.BuildSession();
  if (!cold_session.ReplaceFunction(edit_module, edit_fn, final_def)) {
    std::fprintf(stderr, "FATAL: server bench cold edit did not apply\n");
    std::abort();
  }
  ivy::SessionResult cold_result = cold_session.RunLinked();
  std::shared_ptr<ivy::EpochSnapshot> cold_snap =
      ivy::BuildEpochSnapshot(1, cold_result, cold_session.link_table());
  if (warm_snap == nullptr || warm_snap->findings_canon != cold_snap->findings_canon ||
      warm_snap->summaries_canon != cold_snap->summaries_canon) {
    std::fprintf(stderr, "FATAL: server epoch diverges from cold batch run\n");
    std::abort();
  }
  uint64_t final_epoch = warm_snap->id;
  server.RequestShutdown();
  server.Wait();

  std::sort(lat_us.begin(), lat_us.end());
  double p50_us = lat_us[lat_us.size() / 2];
  double p99_us = lat_us[(lat_us.size() * 99) / 100];

  ivy::Json srv = ivy::Json::MakeObject();
  srv["modules"] = ivy::Json::MakeInt(kCorpusModules);
  srv["functions_per_module"] = ivy::Json::MakeInt(kCorpusFunctions);
  srv["queries"] = ivy::Json::MakeInt(kQueries);
  srv["query_p50_us"] = ivy::Json::MakeInt(static_cast<int64_t>(p50_us));
  srv["query_p99_us"] = ivy::Json::MakeInt(static_cast<int64_t>(p99_us));
  srv["edit_to_epoch_us"] = ivy::Json::MakeInt(static_cast<int64_t>(edit_to_epoch_ms * 1000));
  srv["epochs_published"] = ivy::Json::MakeInt(static_cast<int64_t>(final_epoch));
  srv["identical_to_cold"] = ivy::Json::MakeBool(true);
  std::fprintf(stderr,
               "BENCH server: query p50=%.0fus p99=%.0fus edit_to_epoch=%.1fms "
               "epochs=%llu\n",
               p50_us, p99_us, edit_to_epoch_ms,
               static_cast<unsigned long long>(final_epoch));
  return srv;
}

// Persistent-store warm start: a cold RunLinked() + SaveStore, then a fresh
// session (the restart shape: same corpus re-registered) LoadStore +
// RunLinked. The warm restart is FATAL-checked byte-identical to the cold
// fixpoint with zero module analyses — it must cost about one incremental
// relink, not a cold corpus run.
ivy::Json StoreBenchJson(const std::string& out_path) {
  const std::string spath = out_path + ".store.tmp";
  std::remove(spath.c_str());
  std::vector<ivy::ModuleSources> corpus = LinkedBenchCorpus();

  ivy::SessionResult cold_result;
  int cold_rounds = 0;
  double cold_ms = MedianMs(
      [&corpus, &cold_result, &cold_rounds, &spath] {
        ivy::PipelineBuilder b = LinkedSessionPipeline();
        b.ForEachModule(corpus);
        ivy::AnalysisSession fresh = b.BuildSession();
        cold_result = fresh.RunLinked();
        cold_rounds = fresh.link_stats().rounds;
        std::string err;
        if (!fresh.SaveStore(spath, &err)) {
          std::fprintf(stderr, "FATAL: store bench SaveStore: %s\n", err.c_str());
          std::abort();
        }
      },
      3);

  int64_t store_bytes = 0;
  {
    std::ifstream in(spath, std::ios::binary | std::ios::ate);
    store_bytes = static_cast<int64_t>(in.tellg());
  }

  ivy::SessionResult warm_result;
  int warm_rounds = 0;
  int warm_analyses = 0;
  double warm_ms = MedianMs(
      [&corpus, &warm_result, &warm_rounds, &warm_analyses, &spath] {
        ivy::PipelineBuilder b = LinkedSessionPipeline();
        b.ForEachModule(corpus);
        ivy::AnalysisSession restarted = b.BuildSession();
        std::string err;
        if (!restarted.LoadStore(spath, &err)) {
          std::fprintf(stderr, "FATAL: store bench LoadStore: %s\n", err.c_str());
          std::abort();
        }
        warm_result = restarted.RunLinked();
        warm_rounds = restarted.link_stats().rounds;
        warm_analyses = restarted.link_stats().module_analyses;
      },
      3);
  if (FindingsDump(warm_result.findings) != FindingsDump(cold_result.findings)) {
    std::fprintf(stderr, "FATAL: warm-started findings diverge from cold run\n");
    std::abort();
  }
  if (warm_analyses != 0) {
    std::fprintf(stderr, "FATAL: warm restart re-analyzed %d modules\n", warm_analyses);
    std::abort();
  }
  std::remove(spath.c_str());

  ivy::Json st = ivy::Json::MakeObject();
  st["modules"] = ivy::Json::MakeInt(static_cast<int64_t>(corpus.size()));
  st["cold_linked_us"] = ivy::Json::MakeInt(static_cast<int64_t>(cold_ms * 1000));
  st["rounds_cold"] = ivy::Json::MakeInt(cold_rounds);
  st["store_bytes"] = ivy::Json::MakeInt(store_bytes);
  st["warm_restart_us"] = ivy::Json::MakeInt(static_cast<int64_t>(warm_ms * 1000));
  st["rounds_warm"] = ivy::Json::MakeInt(warm_rounds);
  st["warm_module_analyses"] = ivy::Json::MakeInt(warm_analyses);
  st["identical_to_cold"] = ivy::Json::MakeBool(true);
  std::fprintf(stderr,
               "BENCH store: cold=%.1fms (%d rounds) warm_restart=%.1fms "
               "(%d rounds, 0 analyses) store=%lld bytes\n",
               cold_ms, cold_rounds, warm_ms, warm_rounds,
               static_cast<long long>(store_bytes));
  return st;
}

// ---------------------------------------------------------------------------
// vm: the tree-walking interpreter vs the ivybc bytecode VM on the two
// VM-bound workloads (bench_ccount_overhead's hot CCount run and the hbench
// deputy shapes). Wall-clock covers the hot calls only — one booted VM per
// side, boot/hb_setup outside the timed region — and every configuration is
// first FATAL-checked result-identical between the interpreters (per-call
// ok/value/trap/cycles/steps plus final machine cycles/steps/log): a faster
// but diverging interpreter must never post a number.
// ---------------------------------------------------------------------------

struct VmCallSpec {
  const char* fn;
  std::vector<int64_t> args;
};

// Boots a fresh machine, runs the hot calls once, and renders every
// observable into one string — what the tree/bytecode identity check diffs.
std::string VmRunSignature(ivy::Machine& vm, const std::vector<VmCallSpec>& hot) {
  std::string sig;
  auto add = [&sig](const char* fn, const ivy::VmResult& r) {
    sig += fn;
    sig += ":ok=" + std::to_string(r.ok ? 1 : 0);
    sig += ",value=" + std::to_string(r.value);
    sig += ",trap=" + std::string(ivy::TrapKindName(r.trap));
    sig += ",msg=" + r.trap_msg;
    sig += ",cycles=" + std::to_string(r.cycles);
    sig += ",steps=" + std::to_string(r.steps);
    sig += ";";
  };
  add("boot_kernel", vm.Call("boot_kernel", {2}));
  add("hb_setup", vm.Call("hb_setup"));
  for (const VmCallSpec& c : hot) {
    add(c.fn, vm.Call(c.fn, c.args));
  }
  sig += "|cycles=" + std::to_string(vm.cycles());
  sig += "|steps=" + std::to_string(vm.steps());
  sig += "|log=" + vm.log();
  return sig;
}

ivy::Json VmWorkloadJson(const char* label, const ivy::ToolConfig& cfg,
                         const std::vector<VmCallSpec>& hot, double* speedup_out) {
  auto comp = ivy::CompileKernel(cfg);
  if (!comp->ok) {
    std::fprintf(stderr, "FATAL: vm bench kernel (%s) failed to compile\n", label);
    std::abort();
  }

  std::string err;
  std::shared_ptr<const ivy::BcModule> bc;
  double compile_ms = MedianMs([&comp, &bc, &err, label] {
    bc = ivy::CompileToBc(comp->module, &err);
    if (bc == nullptr) {
      std::fprintf(stderr, "FATAL: vm bench (%s) CompileToBc: %s\n", label, err.c_str());
      std::abort();
    }
  });
  if (!ivy::VerifyBcModule(*bc, &err)) {
    std::fprintf(stderr, "FATAL: vm bench (%s) image fails verification: %s\n", label,
                 err.c_str());
    std::abort();
  }
  int64_t image_bytes = static_cast<int64_t>(ivy::EncodeBcImage(*bc).size());

  // Identity before any timing.
  {
    auto tree = ivy::MakeVm(*comp);
    auto fast = ivy::MakeBcVm(*comp, ivy::VmConfig{}, bc);
    if (VmRunSignature(*tree, hot) != VmRunSignature(*fast, hot)) {
      std::fprintf(stderr, "FATAL: vm bench (%s): bytecode VM diverges from tree VM\n",
                   label);
      std::abort();
    }
  }

  // One booted VM per side; the timed region is the hot calls only.
  auto time_hot = [&hot, label](ivy::Machine& vm, int64_t* pass_cycles) {
    if (!vm.Call("boot_kernel", {2}).ok || !vm.Call("hb_setup").ok) {
      std::fprintf(stderr, "FATAL: vm bench (%s) boot trapped\n", label);
      std::abort();
    }
    return MedianMs(
        [&vm, &hot, pass_cycles, label] {
          int64_t before = vm.cycles();
          for (const VmCallSpec& c : hot) {
            ivy::VmResult r = vm.Call(c.fn, c.args);
            if (!r.ok) {
              std::fprintf(stderr, "FATAL: vm bench (%s) %s trapped: %s\n", label, c.fn,
                           r.trap_msg.c_str());
              std::abort();
            }
            benchmark::DoNotOptimize(r.value);
          }
          *pass_cycles = vm.cycles() - before;
        },
        5);
  };

  auto tree = ivy::MakeVm(*comp);
  int64_t tree_cycles = 0;
  double tree_ms = time_hot(*tree, &tree_cycles);

  auto fast = ivy::MakeBcVm(*comp, ivy::VmConfig{}, bc);
  int64_t bc_cycles = 0;
  double bc_ms = time_hot(*fast, &bc_cycles);

  double speedup = bc_ms > 0 ? tree_ms / bc_ms : 0;
  if (speedup_out != nullptr) {
    *speedup_out = speedup;
  }

  ivy::Json w = ivy::Json::MakeObject();
  w["tree_us"] = ivy::Json::MakeInt(static_cast<int64_t>(tree_ms * 1000));
  w["bytecode_us"] = ivy::Json::MakeInt(static_cast<int64_t>(bc_ms * 1000));
  w["tree_cycles_per_sec"] =
      ivy::Json::MakeInt(static_cast<int64_t>(tree_cycles / (tree_ms / 1000.0)));
  w["bytecode_cycles_per_sec"] =
      ivy::Json::MakeInt(static_cast<int64_t>(bc_cycles / (bc_ms / 1000.0)));
  w["speedup"] = ivy::Json::MakeDouble(speedup);
  w["bc_compile_us"] = ivy::Json::MakeInt(static_cast<int64_t>(compile_ms * 1000));
  w["image_bytes"] = ivy::Json::MakeInt(image_bytes);
  w["identical_to_tree"] = ivy::Json::MakeBool(true);
  std::fprintf(stderr,
               "BENCH vm %s: tree=%.1fms bytecode=%.1fms speedup=%.1fx "
               "(compile=%.1fms, image=%lld bytes)\n",
               label, tree_ms, bc_ms, speedup, compile_ms,
               static_cast<long long>(image_bytes));
  return w;
}

ivy::Json VmBenchJson() {
  // bench_ccount_overhead's hot workload: refcounted pointer-store traffic.
  ivy::ToolConfig ccount;
  ccount.deputy = false;
  ccount.ccount = true;
  double ccount_speedup = 0;
  ivy::Json ccount_j = VmWorkloadJson(
      "ccount", ccount, {{"hb_lat_proc", {160}}, {"hb_mod_load", {80}}}, &ccount_speedup);

  // The hbench deputy shapes: surviving run-time checks, no refcounting.
  ivy::ToolConfig deputy;
  ivy::Json hbench_j = VmWorkloadJson(
      "hbench", deputy,
      {{"hb_lat_proc", {120}}, {"hb_lat_syscall", {600}}, {"hb_bw_pipe", {24}}}, nullptr);

  ivy::Json vm = ivy::Json::MakeObject();
  vm["ccount_workload"] = std::move(ccount_j);
  vm["hbench_workload"] = std::move(hbench_j);
  if (ccount_speedup < 10.0) {
    std::fprintf(stderr, "WARNING: bytecode VM speedup %.1fx below the 10x target\n",
                 ccount_speedup);
  }
  return vm;
}

// The ivytrace cost-contract gate (src/support/trace.h): minima over the
// same 8x400 batched corpus run in three states — baseline (tracing flag
// never meaningfully on), disabled (after enable->disable cycles:
// instrumentation compiled in, gate off — the state every production run
// sits in), and enabled. Min-of-N because the minimum is the run least
// disturbed by machine noise. A disabled path costing more than 2% over
// baseline is a FATAL: that is the whole license for instrumenting hot
// paths.
ivy::Json TracingOverheadJson() {
  std::vector<ivy::ModuleSources> corpus = SessionCorpus();
  ivy::Pipeline pipeline = SessionPipeline().Build();
  auto run_once = [&corpus, &pipeline] {
    ivy::AnalysisSession session(pipeline, /*track_incremental=*/false);
    for (const ivy::ModuleSources& m : corpus) {
      session.AddModule(m);
    }
    benchmark::DoNotOptimize(session.Run().findings.size());
  };

  // Baseline and disabled reps interleave pair-for-pair. The two states
  // differ only by flag flips, which leave no lazy state behind (rings and
  // metric slots are created by emissions, which need the flag on — and the
  // enabled phase runs last), so the pairing is sound; and pairing is what
  // makes a 2% gate measurable at all on a loaded machine: a slow phase
  // hits both sides of the same pair and cancels out of the ratio, where
  // sequential phases would book it entirely against one side.
  //
  // The gate statistic is the MEDIAN of the per-pair disabled/baseline
  // ratios — one preempted rep shifts the min and the mean but not the
  // median — and a failing measurement is re-taken up to three times before
  // it is believed. A real regression (an ungated allocation or lock on a
  // hot path) exceeds 2% in every attempt; scheduler noise does not survive
  // three medians in a row. Shared-CPU boxes routinely jitter identical
  // back-to-back runs by ±10%, so a single-shot 2% comparison would gate on
  // the machine, not the code.
  constexpr int kPairs = 7;
  constexpr int kAttempts = 3;
  auto rep_ms = [&run_once] {
    const uint64_t t0 = ivy::MonotonicNowNs();
    run_once();
    return ivy::ElapsedMsSince(t0);
  };
  double baseline_ms = 0;
  double disabled_ms = 0;
  double median_ratio = 0;
  bool passed = false;
  for (int attempt = 1; attempt <= kAttempts; ++attempt) {
    std::vector<double> ratios;
    ratios.reserve(kPairs);
    for (int i = 0; i < kPairs; ++i) {
      const double b = rep_ms();
      ivy::trace::SetEnabled(true);
      ivy::trace::SetEnabled(false);
      const double d = rep_ms();
      std::fprintf(stderr, "  tracing pair %d.%d: baseline=%.1fms disabled=%.1fms\n",
                   attempt, i, b, d);
      ratios.push_back(d / b);
      if (i == 0 || b < baseline_ms) {
        baseline_ms = b;
      }
      if (i == 0 || d < disabled_ms) {
        disabled_ms = d;
      }
    }
    std::sort(ratios.begin(), ratios.end());
    median_ratio = ratios[kPairs / 2];
    if (median_ratio <= 1.02) {
      passed = true;
      break;
    }
    std::fprintf(stderr,
                 "tracing gate attempt %d: median disabled overhead %.2f%% > 2%%, "
                 "re-measuring\n",
                 attempt, (median_ratio - 1.0) * 100.0);
  }
  ivy::trace::SetEnabled(true);
  const double enabled_ms = MinMs(run_once, "enabled", kPairs);
  ivy::trace::SetEnabled(false);

  const double disabled_pct = (median_ratio - 1.0) * 100.0;
  const double enabled_pct = (enabled_ms / baseline_ms - 1.0) * 100.0;
  if (!passed) {
    std::fprintf(stderr,
                 "FATAL: tracing disabled-path overhead %.2f%% exceeds the 2%% "
                 "contract in %d consecutive measurements (baseline=%.1fms "
                 "disabled=%.1fms)\n",
                 disabled_pct, kAttempts, baseline_ms, disabled_ms);
    std::abort();
  }

  ivy::Json t = ivy::Json::MakeObject();
  t["baseline_us"] = ivy::Json::MakeInt(static_cast<int64_t>(baseline_ms * 1000));
  t["disabled_us"] = ivy::Json::MakeInt(static_cast<int64_t>(disabled_ms * 1000));
  t["enabled_us"] = ivy::Json::MakeInt(static_cast<int64_t>(enabled_ms * 1000));
  t["disabled_overhead_pct"] = ivy::Json::MakeDouble(disabled_pct);
  t["enabled_overhead_pct"] = ivy::Json::MakeDouble(enabled_pct);
  std::fprintf(stderr,
               "tracing overhead: baseline=%.1fms disabled=%.1fms (%+.2f%%) "
               "enabled=%.1fms (%+.2f%%)\n",
               baseline_ms, disabled_ms, disabled_pct, enabled_ms, enabled_pct);
  return t;
}

// The "frontend" section of BENCH_pipeline.json: parse/sema wall time per
// allocation mode, AST footprint, the fingerprint cost (full corpus and the
// per-edit refingerprint an incremental session pays), and the process peak
// RSS. Fingerprint identity across modes is FATAL-checked — an arena result
// only counts if it is bit-for-bit the same analysis input.
ivy::Json FrontendBenchJson() {
  std::vector<ivy::ModuleSources> corpus = SessionCorpus();
  auto lexed = LexCorpus(corpus);

  auto min_timing = [&lexed](ivy::AstAllocMode mode, int reps = 5) {
    FrontendTiming best;
    for (int i = 0; i < reps; ++i) {
      FrontendTiming t = FrontendPass(lexed, mode, nullptr);
      if (i == 0 || t.parse_ms + t.sema_ms < best.parse_ms + best.sema_ms) {
        best = t;
      }
    }
    return best;
  };
  // Arena first, heap second: ru_maxrss is a monotonic high-water mark, so
  // the peak only moves during the heap passes if per-node allocation
  // genuinely has the larger footprint (malloc headers + chunk slack).
  auto peak_rss = [] {
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<int64_t>(ru.ru_maxrss) * 1024;
  };
  FrontendTiming arena = min_timing(ivy::AstAllocMode::kArena);
  const int64_t rss_after_arena = peak_rss();
  FrontendTiming heap = min_timing(ivy::AstAllocMode::kHeap);
  const int64_t rss_after_heap = peak_rss();

  std::map<std::string, uint64_t> fps_heap;
  std::map<std::string, uint64_t> fps_arena;
  FrontendPass(lexed, ivy::AstAllocMode::kHeap, &fps_heap);
  FrontendPass(lexed, ivy::AstAllocMode::kArena, &fps_arena);
  if (fps_heap != fps_arena) {
    std::fprintf(stderr, "FATAL: heap-vs-arena function fingerprints diverge\n");
    std::abort();
  }
  double speedup = (arena.parse_ms + arena.sema_ms) > 0
                       ? (heap.parse_ms + heap.sema_ms) / (arena.parse_ms + arena.sema_ms)
                       : 0;
  if (speedup < 1.3) {
    std::fprintf(stderr,
                 "WARNING: arena parse+sema speedup %.2fx below the 1.3x target "
                 "(heap=%.1fms arena=%.1fms)\n",
                 speedup, heap.parse_ms + heap.sema_ms, arena.parse_ms + arena.sema_ms);
  }

  // Fingerprint cost over a compiled module kept warm (what AnalysisSession
  // pays per Run), and the per-edit refingerprint: recompile one module with
  // one function body changed, then refingerprint every function in it.
  ivy::Pipeline pipeline = SessionPipeline().Build();
  auto comp = pipeline.Compile(corpus[3].files);
  if (!comp->ok) {
    std::abort();
  }
  uint64_t fp_sink = 0;
  double fingerprint_ms = MinMs([&comp, &fp_sink] {
    for (const ivy::FuncDecl* fn : comp->prog.funcs) {
      if (fn->body != nullptr) {
        fp_sink ^= ivy::FingerprintFunction(comp->prog, fn);
      }
    }
  });
  benchmark::DoNotOptimize(fp_sink);

  std::vector<ivy::SourceFile> edited = corpus[3].files;
  const std::string needle = "void " + ivy::SynthFuncName(5) + "(int n)";
  size_t pos = edited[0].text.find(needle);
  if (pos == std::string::npos) {
    std::fprintf(stderr, "FATAL: frontend bench edit target not found\n");
    std::abort();
  }
  edited[0].text.insert(pos, "/* edited */ ");
  auto comp2 = pipeline.Compile(edited);
  if (!comp2->ok) {
    std::abort();
  }
  double refingerprint_ms = MinMs([&comp2, &fp_sink] {
    for (const ivy::FuncDecl* fn : comp2->prog.funcs) {
      if (fn->body != nullptr) {
        fp_sink ^= ivy::FingerprintFunction(comp2->prog, fn);
      }
    }
  });
  benchmark::DoNotOptimize(fp_sink);

  ivy::Json j = ivy::Json::MakeObject();
  ivy::Json h = ivy::Json::MakeObject();
  h["parse_us"] = ivy::Json::MakeInt(static_cast<int64_t>(heap.parse_ms * 1000));
  h["sema_us"] = ivy::Json::MakeInt(static_cast<int64_t>(heap.sema_ms * 1000));
  h["ast_bytes"] = ivy::Json::MakeInt(static_cast<int64_t>(heap.ast_bytes));
  j["heap"] = std::move(h);
  ivy::Json a = ivy::Json::MakeObject();
  a["parse_us"] = ivy::Json::MakeInt(static_cast<int64_t>(arena.parse_ms * 1000));
  a["sema_us"] = ivy::Json::MakeInt(static_cast<int64_t>(arena.sema_ms * 1000));
  a["ast_bytes"] = ivy::Json::MakeInt(static_cast<int64_t>(arena.ast_bytes));
  j["arena"] = std::move(a);
  j["parse_us"] = ivy::Json::MakeInt(static_cast<int64_t>(arena.parse_ms * 1000));
  j["sema_us"] = ivy::Json::MakeInt(static_cast<int64_t>(arena.sema_ms * 1000));
  j["arena_bytes"] = ivy::Json::MakeInt(static_cast<int64_t>(arena.ast_bytes));
  j["fingerprint_us"] = ivy::Json::MakeInt(static_cast<int64_t>(fingerprint_ms * 1000));
  j["refingerprint_after_edit_us"] =
      ivy::Json::MakeInt(static_cast<int64_t>(refingerprint_ms * 1000));
  j["parse_sema_speedup"] = ivy::Json::MakeDouble(speedup);
  j["peak_rss_bytes"] = ivy::Json::MakeInt(rss_after_arena);
  j["peak_rss_after_heap_bytes"] = ivy::Json::MakeInt(rss_after_heap);
  j["identical_fingerprints"] = ivy::Json::MakeBool(true);
  std::fprintf(stderr,
               "frontend: heap parse+sema=%.1fms arena=%.1fms (%.2fx) "
               "arena_bytes=%zu heap_bytes=%zu fingerprint=%.2fms "
               "peak_rss arena=%lld heap=%lld\n",
               heap.parse_ms + heap.sema_ms, arena.parse_ms + arena.sema_ms, speedup,
               arena.ast_bytes, heap.ast_bytes, fingerprint_ms,
               static_cast<long long>(rss_after_arena),
               static_cast<long long>(rss_after_heap));
  return j;
}

void WriteBenchPipelineJson() {
  const char* out_path = std::getenv("BENCH_PIPELINE_OUT");
  if (out_path == nullptr || out_path[0] == '\0') {
    return;  // interactive run: skip the corpus workload
  }
  // Frontend A/B first: ru_maxrss is a process-lifetime high-water mark, so
  // the arena-vs-heap RSS comparison is only visible before the session
  // workloads below raise the ambient peak past anything parse+sema touches.
  ivy::Json frontend_j = FrontendBenchJson();

  std::vector<ivy::ModuleSources> corpus = SessionCorpus();
  ivy::Pipeline pipeline = SessionPipeline().Build();

  // Batched vs sequential: the whole corpus, cold, through N independent
  // pipelines vs one session (shared prelude tokens, concurrent modules).
  double sequential_ms = MedianMs([&corpus, &pipeline] {
    int64_t sink = 0;
    for (const ivy::ModuleSources& m : corpus) {
      sink += static_cast<int64_t>(pipeline.CompileAndRun(m.files).result.findings.size());
    }
    benchmark::DoNotOptimize(sink);
  });
  // track_incremental off: measure batching itself (shared prelude tokens,
  // concurrent modules), not the snapshot bookkeeping a long-lived session
  // additionally buys.
  double batched_ms = MedianMs([&corpus, &pipeline] {
    ivy::AnalysisSession session(pipeline, /*track_incremental=*/false);
    for (const ivy::ModuleSources& m : corpus) {
      session.AddModule(m);
    }
    benchmark::DoNotOptimize(session.Run().findings.size());
  });

  // Incremental vs cold re-analysis: the same edit sequence against two
  // primed sessions, one with incremental tracking and one without — each
  // timed rerun pays the same recompile, so the delta is pure solver work.
  const std::string edited_module = "mod_03";
  const std::string edited_fn = ivy::SynthFuncName(5);
  const std::string quiet_def = "void " + edited_fn +
                                "(int n) {\n  int pad[4]; pad[0] = n;\n  udelay(1);\n}\n";
  auto def_for = [&](int i) { return i % 2 == 0 ? EditedDefinition() : quiet_def; };
  auto rerun_ms = [&](ivy::AnalysisSession& session) {
    int i = 0;
    return MedianMs(
        [&session, &def_for, &i] {
          if (!session.ReplaceFunction("mod_03", ivy::SynthFuncName(5), def_for(i++))) {
            std::fprintf(stderr, "FATAL: BENCH_pipeline edit did not apply\n");
            std::abort();
          }
          benchmark::DoNotOptimize(session.Run().findings.size());
        },
        4);
  };

  ivy::PipelineBuilder warm_b = SessionPipeline();
  warm_b.ForEachModule(corpus);
  ivy::AnalysisSession warm = warm_b.BuildSession();
  warm.Run();
  double incremental_ms = rerun_ms(warm);

  ivy::AnalysisSession cold(pipeline, /*track_incremental=*/false);
  for (const ivy::ModuleSources& m : corpus) {
    cold.AddModule(m);
  }
  cold.Run();
  double cold_ms = rerun_ms(cold);

  // Identity + counters on one final deterministic edit. The incremental
  // run must stay byte-identical to the cold run — a faster but diverging
  // session must never post a winning time.
  if (!warm.ReplaceFunction(edited_module, edited_fn, EditedDefinition()) ||
      !cold.ReplaceFunction(edited_module, edited_fn, EditedDefinition())) {
    std::abort();
  }
  ivy::SessionResult warm_result = warm.Run();
  ivy::SessionResult cold_result = cold.Run();
  if (FindingsDump(warm_result.findings) != FindingsDump(cold_result.findings)) {
    std::fprintf(stderr, "FATAL: incremental session findings diverge from cold run\n");
    std::abort();
  }
  ivy::ModuleStats warm_stats = warm.StatsFor(edited_module);
  ivy::ModuleStats cold_stats = cold.StatsFor(edited_module);

  ivy::Json j = ivy::Json::MakeObject();
  ivy::Json corpus_j = ivy::Json::MakeObject();
  corpus_j["modules"] = ivy::Json::MakeInt(kCorpusModules);
  corpus_j["functions_per_module"] = ivy::Json::MakeInt(kCorpusFunctions);
  j["corpus"] = std::move(corpus_j);
  j["sequential_us"] = ivy::Json::MakeInt(static_cast<int64_t>(sequential_ms * 1000));
  j["batched_us"] = ivy::Json::MakeInt(static_cast<int64_t>(batched_ms * 1000));
  // The pre-session world re-analyzes the whole corpus after any edit
  // ("an edited module invalidates everything"); a session re-analyzes one
  // module — cold at module granularity, or warm with the solver seeds.
  j["edit_rerun_without_session_us"] =
      ivy::Json::MakeInt(static_cast<int64_t>(sequential_ms * 1000));
  j["edit_rerun_session_cold_us"] = ivy::Json::MakeInt(static_cast<int64_t>(cold_ms * 1000));
  j["edit_rerun_session_warm_us"] =
      ivy::Json::MakeInt(static_cast<int64_t>(incremental_ms * 1000));
  ivy::Json counters = ivy::Json::MakeObject();
  counters["pointsto_propagations_cold"] = ivy::Json::MakeInt(cold_stats.pointsto_propagations);
  counters["pointsto_propagations_warm"] = ivy::Json::MakeInt(warm_stats.pointsto_propagations);
  counters["pointsto_seeded_facts_warm"] = ivy::Json::MakeInt(warm_stats.pointsto_seeded_facts);
  counters["mayblock_evals_cold"] = ivy::Json::MakeInt(cold_stats.mayblock_evals);
  counters["mayblock_evals_warm"] = ivy::Json::MakeInt(warm_stats.mayblock_evals);
  counters["identical_to_cold"] = ivy::Json::MakeBool(true);
  j["incremental"] = std::move(counters);

  // Linked-corpus fixpoint: rounds to converge, linked vs merged-source
  // wall time, and the incremental relink after one edit. The canonical
  // finding sets (rendered locations, module stamps stripped, sorted) must
  // match between the linked fixpoint and the merged program — a faster but
  // diverging link stage must never post a winning time.
  std::vector<ivy::ModuleSources> linked_corpus = LinkedBenchCorpus();
  ivy::PipelineBuilder linked_b = LinkedSessionPipeline();
  linked_b.ForEachModule(linked_corpus);
  ivy::AnalysisSession linked_session = linked_b.BuildSession();
  ivy::SessionResult linked_result;
  double linked_ms = MedianMs(
      [&linked_corpus, &linked_result] {
        ivy::PipelineBuilder b = LinkedSessionPipeline();
        b.ForEachModule(linked_corpus);
        ivy::AnalysisSession fresh = b.BuildSession();
        linked_result = fresh.RunLinked();
        benchmark::DoNotOptimize(linked_result.findings.size());
      },
      3);
  linked_result = linked_session.RunLinked();
  int linked_rounds = linked_session.link_stats().rounds;

  ivy::Pipeline merged_p = LinkedSessionPipeline().Build();
  std::vector<ivy::SourceFile> merged_files = ivy::MergedLinkedSources(linked_corpus);
  ivy::PipelineRun merged_run;
  double merged_ms = MedianMs(
      [&merged_p, &merged_files, &merged_run] {
        merged_run = merged_p.CompileAndRun(merged_files);
        benchmark::DoNotOptimize(merged_run.result.findings.size());
      },
      3);
  if (merged_run.comp == nullptr || !merged_run.comp->ok) {
    std::fprintf(stderr, "FATAL: merged linked corpus failed to compile\n");
    std::abort();
  }
  std::vector<std::string> linked_canon;
  for (const ivy::ModuleRunResult& mr : linked_result.modules) {
    const ivy::Compilation* comp = linked_session.CompilationFor(mr.module);
    for (const ivy::Finding& f : mr.result.findings) {
      linked_canon.push_back(f.ToString(comp != nullptr ? &comp->sm : nullptr));
    }
  }
  std::vector<std::string> merged_canon;
  for (const ivy::Finding& f : merged_run.result.findings) {
    merged_canon.push_back(f.ToString(&merged_run.comp->sm));
  }
  std::sort(linked_canon.begin(), linked_canon.end());
  std::sort(merged_canon.begin(), merged_canon.end());
  if (linked_canon != merged_canon) {
    std::fprintf(stderr, "FATAL: linked fixpoint findings diverge from merged source\n");
    std::abort();
  }

  // Incremental relink: one edit inside the linked component.
  const std::string linked_fn = ivy::SynthFuncName(ivy::LinkedModulePrefix(1), 5);
  bool relink_flip = false;
  double relink_ms = MedianMs(
      [&linked_session, &linked_fn, &relink_flip] {
        std::string def = "void " + linked_fn + "(int n) {\n  int pad[8]; pad[0] = n;\n  " +
                          (relink_flip ? "msleep(n)" : "udelay(1)") + ";\n}\n";
        relink_flip = !relink_flip;
        if (!linked_session.ReplaceFunction("mod_01", linked_fn, def)) {
          std::fprintf(stderr, "FATAL: linked bench edit did not apply\n");
          std::abort();
        }
        benchmark::DoNotOptimize(linked_session.RunLinked().findings.size());
      },
      3);

  ivy::Json linked_j = ivy::Json::MakeObject();
  linked_j["modules"] = ivy::Json::MakeInt(static_cast<int64_t>(linked_corpus.size()));
  linked_j["rounds_to_converge"] = ivy::Json::MakeInt(linked_rounds);
  linked_j["linked_us"] = ivy::Json::MakeInt(static_cast<int64_t>(linked_ms * 1000));
  linked_j["merged_source_us"] = ivy::Json::MakeInt(static_cast<int64_t>(merged_ms * 1000));
  linked_j["relink_after_edit_us"] = ivy::Json::MakeInt(static_cast<int64_t>(relink_ms * 1000));
  linked_j["identical_to_merged"] = ivy::Json::MakeBool(true);
  j["linked"] = std::move(linked_j);
  j["frontend"] = std::move(frontend_j);
  j["server"] = ServerBenchJson();
  j["store"] = StoreBenchJson(out_path);
  j["vm"] = VmBenchJson();
  j["tracing"] = TracingOverheadJson();

  std::string path = out_path;
  std::ofstream out(path);
  out << j.Dump() << "\n";

  // Also drop a copy at the repo root (found by walking up to ROADMAP.md) so
  // the checked-in BENCH_pipeline.json stays refreshable with one run and CI
  // can upload it from a fixed path regardless of the build directory.
  std::string dir = ".";
  for (int depth = 0; depth < 8; ++depth) {
    std::ifstream probe(dir + "/ROADMAP.md");
    if (probe.good()) {
      const std::string root_copy = dir + "/BENCH_pipeline.json";
      if (root_copy != path) {
        std::ofstream rc(root_copy);
        rc << j.Dump() << "\n";
      }
      break;
    }
    dir += "/..";
  }

  std::fprintf(stderr,
               "BENCH_pipeline.json: sequential=%.1fms batched=%.1fms cold_rerun=%.1fms "
               "incremental_rerun=%.1fms linked=%.1fms (%d rounds) merged=%.1fms "
               "relink=%.1fms -> %s\n",
               sequential_ms, batched_ms, cold_ms, incremental_ms, linked_ms, linked_rounds,
               merged_ms, relink_ms, path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  WriteBenchPipelineJson();
  return 0;
}
