#include "src/hbench/hbench.h"

#include <cstdio>

#include "src/kernel/corpus.h"

namespace ivy {

const std::vector<HbenchSpec>& HbenchSuite() {
  static const auto* kSuite = new std::vector<HbenchSpec>{
      {"bw_bzero", "hb_bw_bzero", {65536, 6}, 1.01},
      {"bw_file_rd", "hb_bw_file_rd", {12}, 0.98},
      {"bw_mem_cp", "hb_bw_mem_cp", {65536, 6}, 1.00},
      {"bw_mem_rd", "hb_bw_mem_rd", {12}, 1.00},
      {"bw_mem_wr", "hb_bw_mem_wr", {12}, 1.06},
      {"bw_mmap_rd", "hb_bw_mmap_rd", {12}, 0.85},
      {"bw_pipe", "hb_bw_pipe", {24}, 0.98},
      {"bw_tcp", "hb_bw_tcp", {8}, 0.83},
      {"lat_connect", "hb_lat_connect", {160}, 1.10},
      {"lat_ctx", "hb_lat_ctx", {400}, 1.15},
      {"lat_ctx2", "hb_lat_ctx2", {160}, 1.35},
      {"lat_fs", "hb_lat_fs", {120}, 1.35},
      {"lat_fslayer", "hb_lat_fslayer", {400}, 1.04},
      {"lat_mmap", "hb_lat_mmap", {120}, 1.41},
      {"lat_pipe", "hb_lat_pipe", {400}, 1.14},
      {"lat_proc", "hb_lat_proc", {120}, 1.29},
      {"lat_rpc", "hb_lat_rpc", {200}, 1.37},
      {"lat_sig", "hb_lat_sig", {400}, 1.31},
      {"lat_syscall", "hb_lat_syscall", {600}, 0.74},
      {"lat_tcp", "hb_lat_tcp", {300}, 1.41},
      {"lat_udp", "hb_lat_udp", {300}, 1.48},
  };
  return *kSuite;
}

namespace {

// A trapping benchmark is a harness bug, not noise: say exactly what
// trapped and where before the caller turns the -1 into a failed row.
void ReportTrap(const Compilation& comp, const char* bench, const char* fn,
                const VmResult& r) {
  std::fprintf(stderr, "hbench %s: %s trapped: %s: %s at %s\n", bench, fn,
               TrapKindName(r.trap), r.trap_msg.c_str(),
               comp.sm.Render(r.trap_loc).c_str());
}

}  // namespace

int64_t MeasureCycles(const Compilation& comp, const HbenchSpec& spec) {
  auto vm = MakeVm(comp);
  VmResult boot = vm->Call("boot_kernel", {2});
  if (!boot.ok) {
    ReportTrap(comp, spec.name, "boot_kernel", boot);
    return -1;
  }
  VmResult setup = vm->Call("hb_setup");
  if (!setup.ok) {
    ReportTrap(comp, spec.name, "hb_setup", setup);
    return -1;
  }
  int64_t before = vm->cycles();
  VmResult r = vm->Call(spec.func, spec.args);
  if (!r.ok) {
    ReportTrap(comp, spec.name, spec.func, r);
    return -1;
  }
  return vm->cycles() - before;
}

std::vector<HbenchResult> RunHbenchComparison(const ToolConfig& base, const ToolConfig& tool) {
  std::vector<HbenchResult> out;
  auto base_comp = CompileKernel(base);
  auto tool_comp = CompileKernel(tool);
  if (!base_comp->ok || !tool_comp->ok) {
    return out;
  }
  for (const HbenchSpec& spec : HbenchSuite()) {
    HbenchResult r;
    r.name = spec.name;
    r.paper_value = spec.paper_value;
    r.base_cycles = MeasureCycles(*base_comp, spec);
    r.tool_cycles = MeasureCycles(*tool_comp, spec);
    if (r.base_cycles > 0 && r.tool_cycles > 0) {
      r.relative = static_cast<double>(r.tool_cycles) / static_cast<double>(r.base_cycles);
    }
    out.push_back(r);
  }
  return out;
}

std::string FormatTable1(const std::vector<HbenchResult>& results) {
  std::string out;
  out += "Table 1: Relative performance of the deputized kernel (measured vs paper)\n";
  out += "--------------------------------------------------------------------------\n";
  out += "  Benchmark      base cycles   deputy cycles   Rel. Perf.   Paper\n";
  char line[160];
  for (const HbenchResult& r : results) {
    std::snprintf(line, sizeof line, "  %-13s %12lld  %14lld   %8.2f   %5.2f\n", r.name.c_str(),
                  static_cast<long long>(r.base_cycles),
                  static_cast<long long>(r.tool_cycles), r.relative, r.paper_value);
    out += line;
  }
  return out;
}

}  // namespace ivy
