// The hbench-mc harness: regenerates Table 1 of the paper (relative
// performance of the deputized kernel on 21 hbench micro-benchmarks).
//
// Substitution note (see DESIGN.md): the paper ran hbench [Brown & Seltzer]
// on a Pentium M against a real kernel; we run the same 21 benchmark
// *shapes* against the synthetic kernel on the deterministic cycle-model VM.
// The table reports ratios, and the mechanism that produces them is the same
// as on hardware: how many Deputy run-time checks survive static discharge
// on each kernel path.
#ifndef SRC_HBENCH_HBENCH_H_
#define SRC_HBENCH_HBENCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/driver/compiler.h"

namespace ivy {

struct HbenchSpec {
  const char* name;     // paper's benchmark name, e.g. "bw_pipe"
  const char* func;     // corpus entry point, e.g. "hb_bw_pipe"
  std::vector<int64_t> args;
  double paper_value;   // the relative performance Table 1 reports
};

// The 21 benchmarks of Table 1, in the paper's order.
const std::vector<HbenchSpec>& HbenchSuite();

struct HbenchResult {
  std::string name;
  int64_t base_cycles = 0;
  int64_t tool_cycles = 0;
  double relative = 0.0;
  double paper_value = 0.0;
};

// Measures the cycles one benchmark consumes on a booted kernel VM.
// Returns -1 if the run trapped.
int64_t MeasureCycles(const Compilation& comp, const HbenchSpec& spec);

// Runs the whole suite under `base` (tools off) and `tool` configurations
// and returns per-benchmark relative performance.
std::vector<HbenchResult> RunHbenchComparison(const ToolConfig& base, const ToolConfig& tool);

// Renders the Table-1-style report (measured vs paper).
std::string FormatTable1(const std::vector<HbenchResult>& results);

}  // namespace ivy

#endif  // SRC_HBENCH_HBENCH_H_
