#include "src/errcheck/errcheck.h"

#include "src/tool/function_sharder.h"

namespace ivy {

ErrCheck::ErrCheck(const Program* prog, const Sema* sema, const CallGraph* cg)
    : prog_(prog), sema_(sema), cg_(cg) {}

void ErrCheck::ClassifyImported() {
  for (const auto& [name, fn] : sema_->func_map()) {
    (void)name;
    if (fn->body == nullptr && !fn->is_builtin && fn->attrs.returns_error) {
      err_funcs_.insert(fn);
    }
  }
}

bool ErrCheck::ReturnsNegativeConstant(const Stmt* s) const {
  if (s == nullptr) {
    return false;
  }
  if (s->kind == StmtKind::kReturn && s->expr != nullptr && s->expr->is_const &&
      s->expr->int_val < 0) {
    return true;
  }
  if (ReturnsNegativeConstant(s->init) || ReturnsNegativeConstant(s->then_stmt) ||
      ReturnsNegativeConstant(s->else_stmt)) {
    return true;
  }
  for (const Stmt* child : s->body) {
    if (ReturnsNegativeConstant(child)) {
      return true;
    }
  }
  return false;
}

bool ErrCheck::ExprMentions(const Expr* e, const Symbol* sym) {
  if (e == nullptr) {
    return false;
  }
  if (e->kind == ExprKind::kIdent && e->sym == sym) {
    return true;
  }
  if (ExprMentions(e->a, sym) || ExprMentions(e->b, sym) || ExprMentions(e->c, sym)) {
    return true;
  }
  for (const Expr* arg : e->args) {
    if (ExprMentions(arg, sym)) {
      return true;
    }
  }
  return false;
}

bool ErrCheck::SymTestedIn(const Stmt* s, const Symbol* sym) {
  if (s == nullptr) {
    return false;
  }
  if (s->cond != nullptr && ExprMentions(s->cond, sym)) {
    return true;
  }
  // A return propagating the value counts as handled (the caller checks).
  if (s->kind == StmtKind::kReturn && s->expr != nullptr && ExprMentions(s->expr, sym)) {
    return true;
  }
  if (SymTestedIn(s->init, sym) || SymTestedIn(s->then_stmt, sym) ||
      SymTestedIn(s->else_stmt, sym)) {
    return true;
  }
  for (const Stmt* child : s->body) {
    if (SymTestedIn(child, sym)) {
      return true;
    }
  }
  return false;
}

void ErrCheck::ScanStmt(const FuncDecl* fn, const Stmt* s, const Stmt* func_body,
                        ErrCheckReport* report) {
  if (s == nullptr) {
    return;
  }
  auto callee_of = [this](const Expr* e) -> const FuncDecl* {
    if (e == nullptr || e->kind != ExprKind::kCall || e->a->kind != ExprKind::kIdent) {
      return nullptr;
    }
    auto it = sema_->func_map().find(e->a->str_val);
    if (it == sema_->func_map().end() || !IsErrFunc(it->second)) {
      return nullptr;
    }
    return it->second;
  };
  // Case 1: bare expression statement discarding an error-returning call.
  if (s->kind == StmtKind::kExpr) {
    if (const FuncDecl* callee = callee_of(s->expr)) {
      report->findings.push_back(
          ErrCheckFinding{s->expr->loc, fn->name, callee->name, "discarded"});
    } else if (s->expr != nullptr && s->expr->kind == ExprKind::kAssign) {
      // Case 2: result assigned but the variable never tested afterwards.
      if (const FuncDecl* assigned = callee_of(s->expr->b)) {
        const Expr* lhs = s->expr->a;
        if (lhs->kind == ExprKind::kIdent && lhs->sym != nullptr &&
            !SymTestedIn(func_body, lhs->sym)) {
          report->findings.push_back(
              ErrCheckFinding{s->expr->loc, fn->name, assigned->name, "never-tested"});
        } else {
          ++report->checked_sites;
        }
      }
    }
  }
  // Case 3: declaration with an error-returning initializer.
  if (s->kind == StmtKind::kDecl && s->decl != nullptr) {
    if (const FuncDecl* callee = callee_of(s->decl->init)) {
      if (s->decl->sym != nullptr && !SymTestedIn(func_body, s->decl->sym)) {
        report->findings.push_back(
            ErrCheckFinding{s->decl->loc, fn->name, callee->name, "never-tested"});
      } else {
        ++report->checked_sites;
      }
    }
  }
  // Results consumed directly by conditions count as checked.
  if (s->cond != nullptr && s->cond->kind == ExprKind::kCall && callee_of(s->cond) != nullptr) {
    ++report->checked_sites;
  }
  ScanStmt(fn, s->init, func_body, report);
  ScanStmt(fn, s->then_stmt, func_body, report);
  ScanStmt(fn, s->else_stmt, func_body, report);
  for (const Stmt* child : s->body) {
    ScanStmt(fn, child, func_body, report);
  }
}

ErrCheckReport ErrCheck::Run() {
  ErrCheckReport report;
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    if (!fn->attrs.errcodes.empty()) {
      err_funcs_.insert(fn);
      ++report.annotated_funcs;
    } else if (fn->type != nullptr && fn->type->ret != nullptr && fn->type->ret->IsInteger() &&
               ReturnsNegativeConstant(fn->body)) {
      err_funcs_.insert(fn);
      ++report.inferred_funcs;
    }
  }
  for (const FuncDecl* fn : err_funcs_) {
    report.err_funcs.insert(fn->name);
  }
  ClassifyImported();
  report.err_returning_funcs = static_cast<int>(err_funcs_.size());
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    ScanStmt(fn, fn->body, fn->body, &report);
  }
  return report;
}

ErrCheckReport ErrCheck::Run(const FunctionSharder& sharder, WorkQueue& wq) {
  ErrCheckReport report;
  const std::vector<const FuncDecl*>& funcs = sharder.functions();

  // Phase 1: classify error-returning functions. Pure per function (attrs +
  // own body), merged in shard order so the counters match the serial loop.
  struct Classified {
    size_t idx;
    bool annotated;
  };
  std::vector<std::vector<Classified>> classified = sharder.MapChunks<Classified>(
      wq, funcs.size(), [this, &funcs](int, size_t begin, size_t end) {
        std::vector<Classified> out;
        for (size_t i = begin; i < end; ++i) {
          const FuncDecl* fn = funcs[i];
          if (!fn->attrs.errcodes.empty()) {
            out.push_back({i, true});
          } else if (fn->type != nullptr && fn->type->ret != nullptr &&
                     fn->type->ret->IsInteger() && ReturnsNegativeConstant(fn->body)) {
            out.push_back({i, false});
          }
        }
        return out;
      });
  for (const std::vector<Classified>& chunk : classified) {
    for (const Classified& c : chunk) {
      err_funcs_.insert(funcs[c.idx]);
      if (c.annotated) {
        ++report.annotated_funcs;
      } else {
        ++report.inferred_funcs;
      }
    }
  }
  for (const FuncDecl* fn : err_funcs_) {
    report.err_funcs.insert(fn->name);
  }
  ClassifyImported();
  report.err_returning_funcs = static_cast<int>(err_funcs_.size());

  // Phase 2: per-function call-site scans against the now-frozen err set
  // (read-only from here), flattened in shard order — the serial finding
  // order is function-declaration order, and so is this.
  std::vector<std::vector<ErrCheckReport>> scans = sharder.MapChunks<ErrCheckReport>(
      wq, funcs.size(), [this, &funcs](int, size_t begin, size_t end) {
        ErrCheckReport local;
        for (size_t i = begin; i < end; ++i) {
          ScanStmt(funcs[i], funcs[i]->body, funcs[i]->body, &local);
        }
        return std::vector<ErrCheckReport>{std::move(local)};
      });
  for (std::vector<ErrCheckReport>& chunk : scans) {
    for (ErrCheckReport& local : chunk) {
      report.findings.insert(report.findings.end(), local.findings.begin(),
                             local.findings.end());
      report.checked_sites += local.checked_sites;
    }
  }
  return report;
}

std::string ErrCheckReport::ToString() const {
  std::string out = "ErrCheck: " + std::to_string(err_returning_funcs) +
                    " error-returning functions (" + std::to_string(annotated_funcs) +
                    " annotated with errcode(), " + std::to_string(inferred_funcs) +
                    " inferred from negative constant returns)\n";
  out += "  call sites that test the result: " + std::to_string(checked_sites) + "\n";
  out += "  unchecked error results: " + std::to_string(findings.size()) + "\n";
  for (const ErrCheckFinding& f : findings) {
    out += "    [" + f.kind + "] " + f.caller + " ignores result of " + f.callee + "\n";
  }
  return out;
}

std::vector<Finding> ErrCheckReport::ToFindings() const {
  std::vector<Finding> out;
  for (const ErrCheckFinding& e : findings) {
    Finding f;
    f.tool = "errcheck";
    f.severity = FindingSeverity::kWarning;
    f.loc = e.loc;
    f.message = "error code from '" + e.callee + "' is " + e.kind;
    f.witness = {e.caller, e.callee};
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace ivy
