// ErrCheck (§3.1, third future analysis): "a simple analysis for ensuring
// that error codes are properly checked at call sites. Programmers can
// annotate each function with the set of codes that the function could
// return, or the programmer could simply indicate to the compiler that
// negative constant return values are error codes. Then a flow-sensitive
// analysis at call sites could verify that each of the error codes are
// accounted for."
//
// Error-returning functions come from two sources, exactly as the paper
// proposes: explicit `errcode(...)` annotations, and inference (a function
// whose body returns a negative constant). A call site passes if its result
// is (a) tested by a later condition mentioning the receiving variable,
// (b) consumed directly by a condition or return, or (c) explicitly cast to
// void. Discarded or never-tested results are findings.
#ifndef SRC_ERRCHECK_ERRCHECK_H_
#define SRC_ERRCHECK_ERRCHECK_H_

#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/mc/ast.h"
#include "src/tool/finding.h"

namespace ivy {

class FunctionSharder;
class WorkQueue;

struct ErrCheckFinding {
  SourceLoc loc;
  std::string caller;
  std::string callee;
  std::string kind;  // "discarded" or "never-tested"
};

struct ErrCheckReport {
  std::vector<ErrCheckFinding> findings;
  int err_returning_funcs = 0;   // annotated + inferred
  int annotated_funcs = 0;
  int inferred_funcs = 0;
  int checked_sites = 0;         // call sites that do test the result
  // Names of the *defined* error-returning functions (annotated or
  // inferred) — the bottom-up link export, so another module's call sites
  // into this one can be checked. Extern callees whose err bit was itself
  // imported are excluded (their definer exports them).
  std::set<std::string> err_funcs;

  std::string ToString() const;

  // Unified-pipeline view: every unchecked error return is a warning with
  // witness caller -> callee.
  std::vector<Finding> ToFindings() const;
};

class ErrCheck {
 public:
  ErrCheck(const Program* prog, const Sema* sema, const CallGraph* cg);

  ErrCheckReport Run();

  // Sharded kernels over `sharder` (which must partition this call graph's
  // DefinedFuncs()) driven by `wq`. Two barriered phases — classify
  // error-returning functions, then scan call sites against the frozen set —
  // each pure per function and reduced in shard order, so findings are
  // byte-identical to Run().
  ErrCheckReport Run(const FunctionSharder& sharder, WorkQueue& wq);

 private:
  // Extern-declared functions whose defining module exported an
  // error-returning fact (AnnoDb import path sets attrs.returns_error).
  void ClassifyImported();
  bool ReturnsNegativeConstant(const Stmt* s) const;
  // Collects all reads of `sym` in conditions within `s`.
  static bool SymTestedIn(const Stmt* s, const Symbol* sym);
  static bool ExprMentions(const Expr* e, const Symbol* sym);
  void ScanStmt(const FuncDecl* fn, const Stmt* s, const Stmt* func_body,
                ErrCheckReport* report);

  bool IsErrFunc(const FuncDecl* fn) const { return err_funcs_.count(fn) != 0; }

  const Program* prog_;
  const Sema* sema_;
  const CallGraph* cg_;
  std::set<const FuncDecl*> err_funcs_;
};

}  // namespace ivy

#endif  // SRC_ERRCHECK_ERRCHECK_H_
