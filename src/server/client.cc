#include "src/server/client.h"

namespace ivy {

bool AnnodClient::Connect(const std::string& address, std::string* err) {
  sock_ = ConnectTo(address, err);
  return sock_.valid();
}

bool AnnodClient::RoundTrip(MsgType req, const std::string& payload,
                            MsgType want, std::string* reply_payload,
                            std::string* err) {
  if (!sock_.valid()) {
    if (err != nullptr) {
      *err = "not connected";
    }
    return false;
  }
  if (!WriteFrame(sock_, req, payload, err)) {
    sock_.Close();
    return false;
  }
  Frame reply;
  int r = ReadFrame(sock_, &reply, err);
  if (r <= 0) {
    if (r == 0 && err != nullptr) {
      *err = "server closed the connection";
    }
    sock_.Close();
    return false;
  }
  if (reply.type == MsgType::kError) {
    ErrorMsg e;
    if (err != nullptr) {
      *err = e.Decode(reply.payload) ? e.message : "undecodable error reply";
    }
    return false;
  }
  if (reply.type != want) {
    if (err != nullptr) {
      *err = std::string("unexpected reply type ") + MsgTypeName(reply.type) +
             " (wanted " + MsgTypeName(want) + ")";
    }
    sock_.Close();  // reply framing no longer trustworthy
    return false;
  }
  if (reply_payload != nullptr) {
    *reply_payload = std::move(reply.payload);
  }
  return true;
}

bool AnnodClient::Ping(std::string* err) {
  CorpusMsg m;
  return RoundTrip(MsgType::kPing, m.Encode(), MsgType::kOk, nullptr, err);
}

bool AnnodClient::OpenCorpus(const std::string& corpus, std::string* err) {
  CorpusMsg m;
  m.corpus = corpus;
  return RoundTrip(MsgType::kOpenCorpus, m.Encode(), MsgType::kOk, nullptr, err);
}

bool AnnodClient::CloseCorpus(const std::string& corpus, std::string* err) {
  CorpusMsg m;
  m.corpus = corpus;
  return RoundTrip(MsgType::kCloseCorpus, m.Encode(), MsgType::kOk, nullptr, err);
}

bool AnnodClient::QueryFindings(const FindingsQueryMsg& q, RowsReplyMsg* out,
                                std::string* err) {
  std::string payload;
  if (!RoundTrip(MsgType::kQueryFindings, q.Encode(), MsgType::kFindings,
                 &payload, err)) {
    return false;
  }
  if (!out->Decode(payload)) {
    if (err != nullptr) {
      *err = "undecodable findings reply";
    }
    return false;
  }
  return true;
}

bool AnnodClient::QuerySummaries(const SummariesQueryMsg& q, RowsReplyMsg* out,
                                 std::string* err) {
  std::string payload;
  if (!RoundTrip(MsgType::kQuerySummaries, q.Encode(), MsgType::kSummaries,
                 &payload, err)) {
    return false;
  }
  if (!out->Decode(payload)) {
    if (err != nullptr) {
      *err = "undecodable summaries reply";
    }
    return false;
  }
  return true;
}

namespace {
bool DecodeEpochInto(const std::string& payload, uint64_t* epoch,
                     std::string* err) {
  EpochMsg e;
  if (!e.Decode(payload)) {
    if (err != nullptr) {
      *err = "undecodable epoch reply";
    }
    return false;
  }
  if (epoch != nullptr) {
    *epoch = e.epoch;
  }
  return true;
}
}  // namespace

bool AnnodClient::UpsertModule(const std::string& corpus, const std::string& module,
                               std::vector<std::pair<std::string, std::string>> files,
                               uint64_t* epoch_at_enqueue, std::string* err) {
  UpsertModuleMsg m;
  m.corpus = corpus;
  m.module = module;
  m.files = std::move(files);
  std::string payload;
  if (!RoundTrip(MsgType::kUpsertModule, m.Encode(), MsgType::kEpoch, &payload,
                 err)) {
    return false;
  }
  return DecodeEpochInto(payload, epoch_at_enqueue, err);
}

bool AnnodClient::ReplaceFunction(const std::string& corpus, const std::string& module,
                                  const std::string& function,
                                  const std::string& definition,
                                  uint64_t* epoch_at_enqueue, std::string* err) {
  ReplaceFunctionMsg m;
  m.corpus = corpus;
  m.module = module;
  m.function = function;
  m.definition = definition;
  std::string payload;
  if (!RoundTrip(MsgType::kReplaceFunction, m.Encode(), MsgType::kEpoch,
                 &payload, err)) {
    return false;
  }
  return DecodeEpochInto(payload, epoch_at_enqueue, err);
}

bool AnnodClient::RemoveModule(const std::string& corpus, const std::string& module,
                               uint64_t* epoch_at_enqueue, std::string* err) {
  RemoveModuleMsg m;
  m.corpus = corpus;
  m.module = module;
  std::string payload;
  if (!RoundTrip(MsgType::kRemoveModule, m.Encode(), MsgType::kEpoch, &payload,
                 err)) {
    return false;
  }
  return DecodeEpochInto(payload, epoch_at_enqueue, err);
}

bool AnnodClient::Stats(const std::string& corpus, StatsReplyMsg* out,
                        std::string* err) {
  CorpusMsg m;
  m.corpus = corpus;
  std::string payload;
  if (!RoundTrip(MsgType::kStats, m.Encode(), MsgType::kStatsReply, &payload,
                 err)) {
    return false;
  }
  if (!out->Decode(payload)) {
    if (err != nullptr) {
      *err = "undecodable stats reply";
    }
    return false;
  }
  return true;
}

bool AnnodClient::Sync(const std::string& corpus, uint64_t* epoch,
                       std::string* err) {
  CorpusMsg m;
  m.corpus = corpus;
  std::string payload;
  if (!RoundTrip(MsgType::kSync, m.Encode(), MsgType::kEpoch, &payload, err)) {
    return false;
  }
  return DecodeEpochInto(payload, epoch, err);
}

bool AnnodClient::Shutdown(std::string* err) {
  CorpusMsg m;
  bool ok = RoundTrip(MsgType::kShutdown, m.Encode(), MsgType::kOk, nullptr, err);
  sock_.Close();
  return ok;
}

}  // namespace ivy
