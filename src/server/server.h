// annod: the persistent analysis-server daemon (the ROADMAP's "annodb as a
// long-lived analysis server" — kernel-quality static checking as an
// always-available service, not a batch job).
//
// One AnnodServer owns one warm AnalysisSession per opened corpus and serves
// three request families over the framed wire protocol (src/server/wire.h):
//
//   queries    kQueryFindings / kQuerySummaries — answered from the pinned
//              EpochSnapshot only; a query NEVER touches the session and
//              never blocks on an in-flight fixpoint.
//   mutations  kUpsertModule / kReplaceFunction / kRemoveModule — appended
//              to the corpus's edit queue; a background relink task on the
//              corpus's single-worker WorkQueue drains the queue, applies
//              the edits to the warm session, runs the incremental
//              RunLinked() fixpoint, and publishes the next epoch.
//   control    kOpenCorpus / kCloseCorpus / kStats / kSync / kShutdown /
//              kPing.
//
// Threading model (who touches what):
//   - the AnalysisSession of a corpus is touched ONLY by its relink tasks,
//     which are serialized by a one-worker WorkQueue — no lock needed;
//   - connection handler threads read the EpochPublisher (shared_ptr pin)
//     and the corpus's small control state (mutex mu);
//   - Corpus::mu guards the edit queue, counters, and the sync/closing
//     condition; it is never held across analysis work.
//
// Shutdown is a drain, not an abort-at-any-cost: RequestShutdown() stops the
// acceptor, cancels queued relink tasks (TaskGroup::Cancel — payloads
// skipped), cancels the in-flight fixpoint cooperatively
// (AnalysisSession::RequestCancel — stops at the next module boundary), and
// unblocks every connection. A cancelled relink publishes NOTHING: epochs
// are only ever whole converged snapshots (regression-tested by
// ServerTest.ShutdownWhileRelinking).
#ifndef SRC_SERVER_SERVER_H_
#define SRC_SERVER_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/server/epoch.h"
#include "src/server/wire.h"
#include "src/support/socket.h"
#include "src/support/trace.h"
#include "src/support/work_queue.h"
#include "src/tool/session.h"

namespace ivy {

class AnnodServer {
 public:
  struct Options {
    Pipeline pipeline;    // session template: every opened corpus runs this
    int epoch_retain = 8;  // published snapshots kept for pinned queries
    // When non-empty, each corpus persists its converged facts to
    // <store_dir>/<corpus>.store (src/store/store.h): the first relink
    // after open warm-starts from the file, and the drain on close/shutdown
    // writes it back — a restarted daemon's first fixpoint costs one
    // incremental relink instead of a cold corpus analysis.
    std::string store_dir;
  };

  explicit AnnodServer(Options opts);
  ~AnnodServer();

  AnnodServer(const AnnodServer&) = delete;
  AnnodServer& operator=(const AnnodServer&) = delete;

  // Binds + starts the acceptor thread. Address syntax per support/socket.h;
  // "host:0" resolves an ephemeral port, see bound_address().
  bool Start(const std::string& address, std::string* err);
  const std::string& bound_address() const { return listener_.bound_address(); }

  // Graceful drain (idempotent, any thread — including a connection handler
  // serving kShutdown). Signals only; the join happens in Wait()/dtor.
  void RequestShutdown();

  // Blocks until RequestShutdown() (wire or direct), then joins every
  // thread and drains every corpus. Returns once fully stopped.
  void Wait();

  // ------------------------------------------------------------------
  // In-process control plane: the same operations the wire handlers run,
  // callable directly — annod's main uses it to seed corpora before
  // Start(), tests and the benchmark use it to steer without a socket.
  // ------------------------------------------------------------------
  bool OpenCorpus(const std::string& name);
  bool CloseCorpus(const std::string& name);
  bool EnqueueUpsert(const std::string& corpus, ModuleSources module);
  bool EnqueueReplaceFunction(const std::string& corpus, const std::string& module,
                              const std::string& function, const std::string& definition);
  bool EnqueueRemoveModule(const std::string& corpus, const std::string& module);
  // Blocks until the corpus's edit queue is empty and no relink is queued or
  // running, then returns the latest epoch id (0: no corpus / nothing
  // published / server closing).
  uint64_t SyncEpoch(const std::string& corpus);
  // Pins an epoch (id 0 = latest). Null if unknown corpus/epoch.
  std::shared_ptr<const EpochSnapshot> Snapshot(const std::string& corpus,
                                                uint64_t epoch = 0);

  std::vector<std::string> CorpusNames() const;

 private:
  struct Edit {
    enum Kind { kUpsert, kReplace, kRemove } kind = kUpsert;
    ModuleSources upsert;     // kUpsert
    std::string module;       // kReplace / kRemove
    std::string function;     // kReplace
    std::string definition;   // kReplace
  };

  // Field order is the shutdown order in reverse: relink_group's destructor
  // drains against relink_queue, which must still be alive; both go before
  // session so no task can outlive the state it touches.
  struct Corpus {
    Corpus(Pipeline pipeline, int retain)
        : session(std::move(pipeline)), epochs(retain), relink_queue(1),
          relink_group(relink_queue) {}

    std::mutex mu;
    std::condition_variable cv;    // sync waiters + drain
    std::deque<Edit> edits;
    int pending_relinks = 0;       // scheduled or running relink tasks
    int64_t relinks_done = 0;
    bool closing = false;
    uint64_t next_epoch = 1;
    std::vector<std::string> apply_errors;  // rolling window, capped
    std::string store_path;        // empty: no persistence (set at open)
    // Deepest the edit queue has been since open (under mu). Served by
    // kStats so operators can see backlog pressure between relinks.
    uint32_t edit_queue_peak = 0;
    // Converged-relink -> snapshot-visible wall time. Always-on (not gated
    // on trace::Enabled()): kStats must serve live percentiles from an
    // untraced daemon. Histogram::Record is two relaxed atomic adds.
    trace::Histogram publish_us;

    AnalysisSession session;       // relink tasks only
    EpochPublisher epochs;
    WorkQueue relink_queue;        // 1 worker: relinks are serialized
    TaskGroup relink_group;
  };

  std::shared_ptr<Corpus> FindCorpus(const std::string& name) const;
  void ScheduleRelink(const std::shared_ptr<Corpus>& c);
  void RelinkTask(const std::shared_ptr<Corpus>& c);
  void DrainCorpus(const std::shared_ptr<Corpus>& c);

  void AcceptLoop();
  void HandleConnection(uint64_t conn_id, Socket sock);
  // One request -> one response frame. Returns false when the connection
  // should close (shutdown handshake).
  bool Dispatch(const Frame& req, Socket& sock);
  void ReapFinishedConnections();

  Options opts_;
  ListenSocket listener_;
  std::thread acceptor_;

  // Per-request Dispatch wall time across every connection and request
  // type. Always-on for the same reason as Corpus::publish_us: the kStats
  // metrics block is live operational data, not a tracing artifact.
  trace::Histogram request_latency_us_;

  mutable std::mutex corpora_mu_;
  std::map<std::string, std::shared_ptr<Corpus>> corpora_;

  std::mutex conns_mu_;
  std::map<uint64_t, std::thread> conns_;
  std::map<uint64_t, int> live_fds_;      // for ShutdownBoth on drain
  std::vector<uint64_t> finished_;        // reaped by acceptor / Wait
  uint64_t next_conn_id_ = 1;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool joined_ = false;
};

}  // namespace ivy

#endif  // SRC_SERVER_SERVER_H_
