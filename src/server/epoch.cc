#include "src/server/epoch.h"

#include <algorithm>
#include <utility>

namespace ivy {

std::shared_ptr<EpochSnapshot> BuildEpochSnapshot(uint64_t id,
                                                  const SessionResult& result,
                                                  const AnnoDb& link_table) {
  auto snap = std::make_shared<EpochSnapshot>();
  snap->id = id;
  snap->findings = result.findings;
  snap->findings_canon.reserve(snap->findings.size());
  for (const Finding& f : snap->findings) {
    snap->findings_canon.push_back(f.ToJson(nullptr).Dump(-1));
  }
  snap->summaries.reserve(link_table.summaries().size());
  for (const auto& [key, row] : link_table.summaries()) {
    (void)key;
    snap->summaries.push_back(row);
    snap->summaries_canon.push_back(row.Canonical());
  }
  snap->modules = static_cast<int>(result.modules.size());
  snap->compile_failures = result.compile_failures;
  return snap;
}

void EpochPublisher::Publish(std::shared_ptr<const EpochSnapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(snap));
  while (static_cast<int>(ring_.size()) > retain_) {
    ring_.pop_front();
  }
}

std::shared_ptr<const EpochSnapshot> EpochPublisher::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? nullptr : ring_.back();
}

std::shared_ptr<const EpochSnapshot> EpochPublisher::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& snap : ring_) {
    if (snap->id == id) {
      return snap;
    }
  }
  return nullptr;
}

uint64_t EpochPublisher::current_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.empty() ? 0 : ring_.back()->id;
}

}  // namespace ivy
