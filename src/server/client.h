// AnnodClient: the one request-encoding path to an annod server. Everything
// that talks to the daemon — annodb_query --connect, the server tests, the
// benchmark's latency probes, the CI smoke script — goes through this class,
// so a wire-format change has exactly one encode site and one decode site
// per message on the client half.
//
// Synchronous request/response: each call writes one frame, blocks for one
// reply frame, and decodes it. A kError reply surfaces as `false` with the
// server's message in *err; a transport failure closes the connection (a
// half-read frame leaves the stream unframed, so the only safe recovery is
// reconnecting).
#ifndef SRC_SERVER_CLIENT_H_
#define SRC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/server/wire.h"
#include "src/support/socket.h"

namespace ivy {

class AnnodClient {
 public:
  AnnodClient() = default;

  bool Connect(const std::string& address, std::string* err);
  bool connected() const { return sock_.valid(); }
  void Disconnect() { sock_.Close(); }

  bool Ping(std::string* err);
  bool OpenCorpus(const std::string& corpus, std::string* err);
  bool CloseCorpus(const std::string& corpus, std::string* err);

  // Queries. The reply carries the pinned epoch id, the epoch's total row
  // count, and the matching rows in canonical JSON byte form.
  bool QueryFindings(const FindingsQueryMsg& q, RowsReplyMsg* out, std::string* err);
  bool QuerySummaries(const SummariesQueryMsg& q, RowsReplyMsg* out, std::string* err);

  // Mutations. `*epoch_at_enqueue` (optional) receives the epoch current
  // when the server accepted the edit — the new epoch exists only after a
  // later Sync() observes the relink.
  bool UpsertModule(const std::string& corpus, const std::string& module,
                    std::vector<std::pair<std::string, std::string>> files,
                    uint64_t* epoch_at_enqueue, std::string* err);
  bool ReplaceFunction(const std::string& corpus, const std::string& module,
                       const std::string& function, const std::string& definition,
                       uint64_t* epoch_at_enqueue, std::string* err);
  bool RemoveModule(const std::string& corpus, const std::string& module,
                    uint64_t* epoch_at_enqueue, std::string* err);

  bool Stats(const std::string& corpus, StatsReplyMsg* out, std::string* err);

  // Blocks until the corpus's edit queue is drained and every scheduled
  // relink has finished; `*epoch` receives the then-latest epoch id.
  bool Sync(const std::string& corpus, uint64_t* epoch, std::string* err);

  // Asks the whole server to drain and stop, then disconnects.
  bool Shutdown(std::string* err);

 private:
  // One frame out, one frame back. Decodes a kError reply into *err;
  // enforces `want` on anything else. Closes the socket on transport
  // failure.
  bool RoundTrip(MsgType req, const std::string& payload, MsgType want,
                 std::string* reply_payload, std::string* err);

  Socket sock_;
};

}  // namespace ivy

#endif  // SRC_SERVER_CLIENT_H_
