#include "src/server/server.h"

#include <algorithm>
#include <utility>

#include "src/support/clock.h"

namespace ivy {

namespace {
// Rolling window of mutation failures kept per corpus for kStats.
constexpr size_t kMaxApplyErrors = 64;
}  // namespace

AnnodServer::AnnodServer(Options opts) : opts_(std::move(opts)) {}

AnnodServer::~AnnodServer() {
  RequestShutdown();
  Wait();
}

bool AnnodServer::Start(const std::string& address, std::string* err) {
  if (!listener_.Listen(address, err)) {
    return false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void AnnodServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopping_) {
      return;
    }
    stopping_ = true;
  }
  stop_cv_.notify_all();
  // Unblock the acceptor.
  listener_.Close();
  // Signal every corpus: no new epochs, abandon queued relinks, abort the
  // in-flight fixpoint at its next module boundary. The actual drain (Wait
  // on the relink group) happens in Wait() — never here, because a
  // connection handler serving kShutdown calls this and must not join
  // against itself or block on analysis work.
  std::vector<std::shared_ptr<Corpus>> all;
  {
    std::lock_guard<std::mutex> lock(corpora_mu_);
    for (auto& [name, c] : corpora_) {
      all.push_back(c);
    }
  }
  for (auto& c : all) {
    {
      std::lock_guard<std::mutex> lock(c->mu);
      c->closing = true;
    }
    c->relink_group.Cancel();
    c->session.RequestCancel();
    c->cv.notify_all();
  }
  // Unblock every connection thread parked in recv().
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& [id, fd] : live_fds_) {
      (void)id;
      Socket::ShutdownFd(fd);
    }
  }
}

void AnnodServer::Wait() {
  {
    std::unique_lock<std::mutex> lock(stop_mu_);
    stop_cv_.wait(lock, [this] { return stopping_; });
    if (joined_) {
      return;
    }
    joined_ = true;
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  // Join every connection thread (RequestShutdown already unblocked them).
  std::map<uint64_t, std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
    finished_.clear();
  }
  for (auto& [id, t] : conns) {
    (void)id;
    if (t.joinable()) {
      t.join();
    }
  }
  // Drain every corpus: cancelled queued tasks complete instantly, the
  // in-flight relink stops at its next cancellation check and publishes
  // nothing. Drained corpora stay in the map (closing, so mutations are
  // rejected) — published epochs remain inspectable post-shutdown.
  std::vector<std::shared_ptr<Corpus>> all;
  {
    std::lock_guard<std::mutex> lock(corpora_mu_);
    for (auto& [name, c] : corpora_) {
      (void)name;
      all.push_back(c);
    }
  }
  for (auto& c : all) {
    DrainCorpus(c);
  }
}

void AnnodServer::DrainCorpus(const std::shared_ptr<Corpus>& c) {
  {
    std::lock_guard<std::mutex> lock(c->mu);
    c->closing = true;
  }
  c->relink_group.Cancel();
  c->session.RequestCancel();
  c->cv.notify_all();
  c->relink_group.Wait(/*rethrow=*/false);
  c->relink_queue.Shutdown();
  // The session is quiescent now (no task can touch it), so the snapshot is
  // single-threaded. A cancelled fixpoint saves as linked-but-unconverged:
  // the loader marks everything dirty and re-derives — never a wrong warm
  // start, at worst a cold-priced one.
  if (!c->store_path.empty()) {
    std::string serr;
    c->session.SaveStore(c->store_path, &serr);
  }
}

// ---------------------------------------------------------------------------
// Control plane (shared by wire handlers and in-process callers)
// ---------------------------------------------------------------------------

std::shared_ptr<AnnodServer::Corpus> AnnodServer::FindCorpus(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(corpora_mu_);
  auto it = corpora_.find(name);
  return it == corpora_.end() ? nullptr : it->second;
}

bool AnnodServer::OpenCorpus(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  std::shared_ptr<Corpus> c;
  {
    std::lock_guard<std::mutex> lock(corpora_mu_);
    auto it = corpora_.find(name);
    if (it != corpora_.end()) {
      return true;  // idempotent
    }
    c = std::make_shared<Corpus>(opts_.pipeline, opts_.epoch_retain);
    if (!opts_.store_dir.empty()) {
      c->store_path = opts_.store_dir + "/" + name + ".store";
    }
    corpora_.emplace(name, c);
  }
  // Publish epoch 1 (the empty corpus) so queries have something to pin
  // immediately after Sync.
  ScheduleRelink(c);
  return true;
}

bool AnnodServer::CloseCorpus(const std::string& name) {
  std::shared_ptr<Corpus> c;
  {
    std::lock_guard<std::mutex> lock(corpora_mu_);
    auto it = corpora_.find(name);
    if (it == corpora_.end()) {
      return false;
    }
    c = it->second;
    corpora_.erase(it);
  }
  DrainCorpus(c);
  return true;
}

bool AnnodServer::EnqueueUpsert(const std::string& corpus, ModuleSources module) {
  auto c = FindCorpus(corpus);
  if (!c || module.name.empty()) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->closing) {
      return false;
    }
    Edit e;
    e.kind = Edit::kUpsert;
    e.upsert = std::move(module);
    c->edits.push_back(std::move(e));
    c->edit_queue_peak = std::max(c->edit_queue_peak,
                                  static_cast<uint32_t>(c->edits.size()));
  }
  ScheduleRelink(c);
  return true;
}

bool AnnodServer::EnqueueReplaceFunction(const std::string& corpus,
                                         const std::string& module,
                                         const std::string& function,
                                         const std::string& definition) {
  auto c = FindCorpus(corpus);
  if (!c || module.empty() || function.empty()) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->closing) {
      return false;
    }
    Edit e;
    e.kind = Edit::kReplace;
    e.module = module;
    e.function = function;
    e.definition = definition;
    c->edits.push_back(std::move(e));
    c->edit_queue_peak = std::max(c->edit_queue_peak,
                                  static_cast<uint32_t>(c->edits.size()));
  }
  ScheduleRelink(c);
  return true;
}

bool AnnodServer::EnqueueRemoveModule(const std::string& corpus,
                                      const std::string& module) {
  auto c = FindCorpus(corpus);
  if (!c || module.empty()) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->closing) {
      return false;
    }
    Edit e;
    e.kind = Edit::kRemove;
    e.module = module;
    c->edits.push_back(std::move(e));
    c->edit_queue_peak = std::max(c->edit_queue_peak,
                                  static_cast<uint32_t>(c->edits.size()));
  }
  ScheduleRelink(c);
  return true;
}

uint64_t AnnodServer::SyncEpoch(const std::string& corpus) {
  auto c = FindCorpus(corpus);
  if (!c) {
    return 0;
  }
  {
    std::unique_lock<std::mutex> lock(c->mu);
    c->cv.wait(lock, [&c] {
      return c->closing || (c->edits.empty() && c->pending_relinks == 0);
    });
    if (c->closing) {
      return 0;
    }
  }
  return c->epochs.current_id();
}

std::shared_ptr<const EpochSnapshot> AnnodServer::Snapshot(
    const std::string& corpus, uint64_t epoch) {
  auto c = FindCorpus(corpus);
  if (!c) {
    return nullptr;
  }
  return epoch == 0 ? c->epochs.Current() : c->epochs.Get(epoch);
}

std::vector<std::string> AnnodServer::CorpusNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(corpora_mu_);
  names.reserve(corpora_.size());
  for (const auto& [name, c] : corpora_) {
    (void)c;
    names.push_back(name);
  }
  return names;
}

// ---------------------------------------------------------------------------
// The relink worker
// ---------------------------------------------------------------------------

void AnnodServer::ScheduleRelink(const std::shared_ptr<Corpus>& c) {
  {
    std::lock_guard<std::mutex> lock(c->mu);
    if (c->closing) {
      return;
    }
    ++c->pending_relinks;
  }
  c->relink_group.Submit([this, c] { RelinkTask(c); });
}

void AnnodServer::RelinkTask(const std::shared_ptr<Corpus>& c) {
  // Drain whatever accumulated; a burst of edits rides one fixpoint, and the
  // later tasks the burst scheduled find an empty queue and skip.
  std::deque<Edit> batch;
  bool first = false;
  {
    std::lock_guard<std::mutex> lock(c->mu);
    batch.swap(c->edits);
    first = c->relinks_done == 0;
  }
  if (batch.empty() && !first) {
    std::lock_guard<std::mutex> lock(c->mu);
    --c->pending_relinks;
    c->cv.notify_all();
    return;
  }

  std::vector<std::string> errors;
  if (first && !c->store_path.empty()) {
    // Warm start before the seed edits apply: modules the batch re-adds with
    // byte-identical sources stay clean (AddModule's no-op contract), edited
    // ones go dirty over the restored table — the first fixpoint costs one
    // incremental relink. Any load failure just means a cold run.
    std::string lerr;
    c->session.LoadStore(c->store_path, &lerr);
  }
  for (Edit& e : batch) {
    switch (e.kind) {
      case Edit::kUpsert:
        c->session.AddModule(std::move(e.upsert));
        break;
      case Edit::kReplace:
        if (!c->session.ReplaceFunction(e.module, e.function, e.definition)) {
          errors.push_back("replace_function " + e.module + ":" + e.function +
                           ": no such module/function");
        }
        break;
      case Edit::kRemove:
        if (!c->session.RemoveModule(e.module)) {
          errors.push_back("remove_module " + e.module + ": no such module");
        }
        break;
    }
  }

  trace::Span relink_span("server.relink", {"edits", static_cast<int64_t>(batch.size())});
  SessionResult result = c->session.RunLinked();

  // A cancelled fixpoint is incomplete by contract: publish nothing, leave
  // the touched modules dirty. A surviving server would re-run them on the
  // next relink; a shutting-down one just drains.
  if (!result.cancelled) {
    // Publish timing feeds the always-on per-corpus histogram kStats serves;
    // the span on top of it only exists when tracing is enabled.
    const uint64_t publish_t0 = MonotonicNowNs();
    trace::Span publish_span("server.publish");
    auto snap = BuildEpochSnapshot(0, result, c->session.link_table());
    snap->link = c->session.link_stats();
    snap->apply_errors = errors;
    {
      std::lock_guard<std::mutex> lock(c->mu);
      snap->id = c->next_epoch++;
    }
    c->epochs.Publish(std::move(snap));
    c->publish_us.Record((MonotonicNowNs() - publish_t0) / 1000);
  }

  {
    std::lock_guard<std::mutex> lock(c->mu);
    --c->pending_relinks;
    ++c->relinks_done;
    for (std::string& e : errors) {
      c->apply_errors.push_back(std::move(e));
    }
    while (c->apply_errors.size() > kMaxApplyErrors) {
      c->apply_errors.erase(c->apply_errors.begin());
    }
    c->cv.notify_all();
  }
}

// ---------------------------------------------------------------------------
// Wire plumbing
// ---------------------------------------------------------------------------

void AnnodServer::AcceptLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stopping_) {
        return;
      }
    }
    Socket sock = listener_.Accept();
    if (!sock.valid()) {
      // Listener closed (shutdown) or transient error; re-check stopping.
      std::lock_guard<std::mutex> lock(stop_mu_);
      if (stopping_) {
        return;
      }
      continue;
    }
    ReapFinishedConnections();
    uint64_t id;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      id = next_conn_id_++;
      live_fds_[id] = sock.fd();
    }
    std::thread t([this, id, s = std::move(sock)]() mutable {
      HandleConnection(id, std::move(s));
    });
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(id, std::move(t));
    }
  }
}

void AnnodServer::ReapFinishedConnections() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (uint64_t id : finished_) {
      auto it = conns_.find(id);
      if (it != conns_.end()) {
        done.push_back(std::move(it->second));
        conns_.erase(it);
      }
    }
    finished_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) {
      t.join();
    }
  }
}

void AnnodServer::HandleConnection(uint64_t conn_id, Socket sock) {
  for (;;) {
    Frame req;
    std::string err;
    int r = ReadFrame(sock, &req, &err);
    if (r <= 0) {
      break;  // clean EOF, malformed frame, or shutdown-unblocked recv
    }
    // Request latency is always measured (kStats serves it live); the span
    // is the only part that needs tracing on.
    const uint64_t t0 = MonotonicNowNs();
    trace::Span span("server.request", {"type", static_cast<int64_t>(req.type)});
    const bool keep = Dispatch(req, sock);
    request_latency_us_.Record((MonotonicNowNs() - t0) / 1000);
    if (!keep) {
      break;
    }
  }
  std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.erase(conn_id);
  finished_.push_back(conn_id);
}

bool AnnodServer::Dispatch(const Frame& req, Socket& sock) {
  std::string werr;
  auto reply_error = [&](const std::string& message) {
    ErrorMsg e;
    e.message = message;
    return WriteFrame(sock, MsgType::kError, e.Encode(), &werr);
  };
  auto reply_ok = [&](const std::string& corpus = std::string()) {
    CorpusMsg ok;
    ok.corpus = corpus;
    return WriteFrame(sock, MsgType::kOk, ok.Encode(), &werr);
  };
  auto reply_epoch = [&](uint64_t epoch) {
    EpochMsg e;
    e.epoch = epoch;
    return WriteFrame(sock, MsgType::kEpoch, e.Encode(), &werr);
  };

  switch (req.type) {
    case MsgType::kPing: {
      return reply_ok();
    }
    case MsgType::kOpenCorpus: {
      CorpusMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed open_corpus payload");
      }
      if (!OpenCorpus(m.corpus)) {
        return reply_error("open_corpus: empty corpus name");
      }
      return reply_ok(m.corpus);
    }
    case MsgType::kCloseCorpus: {
      CorpusMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed close_corpus payload");
      }
      if (!CloseCorpus(m.corpus)) {
        return reply_error("close_corpus: unknown corpus '" + m.corpus + "'");
      }
      return reply_ok(m.corpus);
    }
    case MsgType::kQueryFindings: {
      FindingsQueryMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed query_findings payload");
      }
      auto snap = Snapshot(m.corpus, m.epoch);
      if (!snap) {
        if (!FindCorpus(m.corpus)) {
          return reply_error("unknown corpus '" + m.corpus + "'");
        }
        return reply_error(m.epoch == 0
                               ? "no published epoch yet (sync first)"
                               : "epoch " + std::to_string(m.epoch) +
                                     " evicted from retention ring");
      }
      FindingQuery q;
      q.function = m.function;
      q.tool = m.tool;
      q.module = m.module;
      RowsReplyMsg reply;
      reply.epoch = snap->id;
      reply.total = snap->findings.size();
      for (size_t i = 0; i < snap->findings.size(); ++i) {
        if (q.Matches(snap->findings[i])) {
          reply.rows.push_back(snap->findings_canon[i]);
        }
      }
      return WriteFrame(sock, MsgType::kFindings, reply.Encode(), &werr);
    }
    case MsgType::kQuerySummaries: {
      SummariesQueryMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed query_summaries payload");
      }
      auto snap = Snapshot(m.corpus, m.epoch);
      if (!snap) {
        if (!FindCorpus(m.corpus)) {
          return reply_error("unknown corpus '" + m.corpus + "'");
        }
        return reply_error(m.epoch == 0
                               ? "no published epoch yet (sync first)"
                               : "epoch " + std::to_string(m.epoch) +
                                     " evicted from retention ring");
      }
      RowsReplyMsg reply;
      reply.epoch = snap->id;
      reply.total = snap->summaries.size();
      for (size_t i = 0; i < snap->summaries.size(); ++i) {
        const FuncSummary& row = snap->summaries[i];
        if (!m.function.empty() && row.function != m.function) {
          continue;
        }
        if (!m.module.empty() && row.module != m.module) {
          continue;
        }
        reply.rows.push_back(snap->summaries_canon[i]);
      }
      return WriteFrame(sock, MsgType::kSummaries, reply.Encode(), &werr);
    }
    case MsgType::kUpsertModule: {
      UpsertModuleMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed upsert_module payload");
      }
      ModuleSources mod;
      mod.name = m.module;
      for (auto& [name, text] : m.files) {
        mod.files.push_back(SourceFile{name, text});
      }
      auto c = FindCorpus(m.corpus);
      uint64_t at = c ? c->epochs.current_id() : 0;
      if (!EnqueueUpsert(m.corpus, std::move(mod))) {
        return reply_error("upsert_module: unknown corpus or empty module name");
      }
      return reply_epoch(at);
    }
    case MsgType::kReplaceFunction: {
      ReplaceFunctionMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed replace_function payload");
      }
      auto c = FindCorpus(m.corpus);
      uint64_t at = c ? c->epochs.current_id() : 0;
      if (!EnqueueReplaceFunction(m.corpus, m.module, m.function, m.definition)) {
        return reply_error("replace_function: unknown corpus or empty target");
      }
      return reply_epoch(at);
    }
    case MsgType::kRemoveModule: {
      RemoveModuleMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed remove_module payload");
      }
      auto c = FindCorpus(m.corpus);
      uint64_t at = c ? c->epochs.current_id() : 0;
      if (!EnqueueRemoveModule(m.corpus, m.module)) {
        return reply_error("remove_module: unknown corpus or empty module name");
      }
      return reply_epoch(at);
    }
    case MsgType::kStats: {
      CorpusMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed stats payload");
      }
      auto c = FindCorpus(m.corpus);
      if (!c) {
        return reply_error("unknown corpus '" + m.corpus + "'");
      }
      StatsReplyMsg s;
      auto snap = c->epochs.Current();
      if (snap) {
        s.epoch = snap->id;
        s.modules = static_cast<uint32_t>(snap->modules);
        s.findings = snap->findings.size();
        s.summary_rows = snap->summaries.size();
        s.link_rounds = static_cast<uint32_t>(snap->link.rounds);
        s.converged = snap->link.converged ? 1 : 0;
      }
      {
        std::lock_guard<std::mutex> lock(c->mu);
        s.queued_edits = static_cast<uint32_t>(c->edits.size());
        s.relinks = static_cast<uint64_t>(c->relinks_done);
        s.apply_errors = c->apply_errors;
        s.edit_queue_peak = c->edit_queue_peak;
      }
      // v2 metrics block: live percentiles from the always-on histograms.
      s.request_count = request_latency_us_.Count();
      s.request_p50_us = request_latency_us_.Percentile(50);
      s.request_p95_us = request_latency_us_.Percentile(95);
      s.request_p99_us = request_latency_us_.Percentile(99);
      s.publish_count = c->publish_us.Count();
      s.publish_p50_us = c->publish_us.Percentile(50);
      s.publish_p99_us = c->publish_us.Percentile(99);
      return WriteFrame(sock, MsgType::kStatsReply, s.Encode(), &werr);
    }
    case MsgType::kSync: {
      CorpusMsg m;
      if (!m.Decode(req.payload)) {
        return reply_error("malformed sync payload");
      }
      if (!FindCorpus(m.corpus)) {
        return reply_error("unknown corpus '" + m.corpus + "'");
      }
      uint64_t epoch = SyncEpoch(m.corpus);
      if (epoch == 0) {
        return reply_error("sync: corpus closing");
      }
      return reply_epoch(epoch);
    }
    case MsgType::kShutdown: {
      reply_ok();
      RequestShutdown();
      return false;  // close this connection; Wait() joins us later
    }
    default:
      return reply_error(std::string("unexpected message type ") +
                         MsgTypeName(req.type));
  }
}

}  // namespace ivy
