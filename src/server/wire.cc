#include "src/server/wire.h"

#include <cstring>

namespace ivy {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kOpenCorpus:
      return "open_corpus";
    case MsgType::kCloseCorpus:
      return "close_corpus";
    case MsgType::kQueryFindings:
      return "query_findings";
    case MsgType::kQuerySummaries:
      return "query_summaries";
    case MsgType::kUpsertModule:
      return "upsert_module";
    case MsgType::kReplaceFunction:
      return "replace_function";
    case MsgType::kRemoveModule:
      return "remove_module";
    case MsgType::kStats:
      return "stats";
    case MsgType::kSync:
      return "sync";
    case MsgType::kShutdown:
      return "shutdown";
    case MsgType::kOk:
      return "ok";
    case MsgType::kError:
      return "error";
    case MsgType::kEpoch:
      return "epoch";
    case MsgType::kFindings:
      return "findings";
    case MsgType::kSummaries:
      return "summaries";
    case MsgType::kStatsReply:
      return "stats_reply";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void WireWriter::PutStr(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void WireWriter::PutStrVec(const std::vector<std::string>& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) {
    PutStr(s);
  }
}

bool WireReader::GetU8(uint8_t* out) {
  if (!ok_ || data_.size() - pos_ < 1) {
    ok_ = false;
    return false;
  }
  *out = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool WireReader::GetU32(uint32_t* out) {
  if (!ok_ || data_.size() - pos_ < 4) {
    ok_ = false;
    return false;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]))
         << (8 * i);
  }
  pos_ += 4;
  *out = v;
  return true;
}

bool WireReader::GetU64(uint64_t* out) {
  if (!ok_ || data_.size() - pos_ < 8) {
    ok_ = false;
    return false;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + static_cast<size_t>(i)]))
         << (8 * i);
  }
  pos_ += 8;
  *out = v;
  return true;
}

bool WireReader::GetStr(std::string* out) {
  uint32_t len = 0;
  if (!GetU32(&len)) {
    return false;
  }
  if (data_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  out->assign(data_, pos_, len);
  pos_ += len;
  return true;
}

bool WireReader::GetStrVec(std::vector<std::string>* out) {
  uint32_t count = 0;
  if (!GetU32(&count)) {
    return false;
  }
  // Each element costs at least its 4-byte length prefix, so a count beyond
  // remaining/4 is malformed — reject before reserving anything.
  if (count > (data_.size() - pos_) / 4) {
    ok_ = false;
    return false;
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string s;
    if (!GetStr(&s)) {
      return false;
    }
    out->push_back(std::move(s));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

std::string EncodeFrame(MsgType type, const std::string& payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.push_back(static_cast<char>(kWireMagic0));
  out.push_back(static_cast<char>(kWireMagic1));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  out.append(payload);
  return out;
}

bool DecodeFrameHeader(const uint8_t header[kFrameHeaderSize], MsgType* type,
                       uint32_t* length, std::string* err) {
  if (header[0] != kWireMagic0 || header[1] != kWireMagic1) {
    if (err != nullptr) {
      *err = "bad frame magic";
    }
    return false;
  }
  if (header[2] != kWireVersion) {
    if (err != nullptr) {
      *err = "unsupported wire version " + std::to_string(header[2]) +
             " (speaking " + std::to_string(kWireVersion) + ")";
    }
    return false;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    if (err != nullptr) {
      *err = "frame payload length " + std::to_string(len) + " exceeds cap " +
             std::to_string(kMaxFramePayload);
    }
    return false;
  }
  *type = static_cast<MsgType>(header[3]);
  *length = len;
  return true;
}

int ReadFrame(Socket& sock, Frame* out, std::string* err) {
  uint8_t header[kFrameHeaderSize];
  bool eof = false;
  if (!sock.ReadFull(header, sizeof(header), &eof, err)) {
    return eof ? 0 : -1;
  }
  uint32_t len = 0;
  if (!DecodeFrameHeader(header, &out->type, &len, err)) {
    return -1;
  }
  out->payload.resize(len);
  if (len > 0 && !sock.ReadFull(&out->payload[0], len, nullptr, err)) {
    return -1;
  }
  return 1;
}

bool WriteFrame(Socket& sock, MsgType type, const std::string& payload,
                std::string* err) {
  if (payload.size() > kMaxFramePayload) {
    if (err != nullptr) {
      *err = "refusing to send oversized frame";
    }
    return false;
  }
  std::string bytes = EncodeFrame(type, payload);
  return sock.WriteFull(bytes.data(), bytes.size(), err);
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

std::string CorpusMsg::Encode() const {
  WireWriter w;
  w.PutStr(corpus);
  return w.Take();
}

bool CorpusMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetStr(&corpus) && r.Finish();
}

std::string FindingsQueryMsg::Encode() const {
  WireWriter w;
  w.PutStr(corpus);
  w.PutU64(epoch);
  w.PutStr(function);
  w.PutStr(tool);
  w.PutStr(module);
  return w.Take();
}

bool FindingsQueryMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetStr(&corpus) && r.GetU64(&epoch) && r.GetStr(&function) &&
         r.GetStr(&tool) && r.GetStr(&module) && r.Finish();
}

std::string SummariesQueryMsg::Encode() const {
  WireWriter w;
  w.PutStr(corpus);
  w.PutU64(epoch);
  w.PutStr(function);
  w.PutStr(module);
  return w.Take();
}

bool SummariesQueryMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetStr(&corpus) && r.GetU64(&epoch) && r.GetStr(&function) &&
         r.GetStr(&module) && r.Finish();
}

std::string UpsertModuleMsg::Encode() const {
  WireWriter w;
  w.PutStr(corpus);
  w.PutStr(module);
  w.PutU32(static_cast<uint32_t>(files.size()));
  for (const auto& [name, text] : files) {
    w.PutStr(name);
    w.PutStr(text);
  }
  return w.Take();
}

bool UpsertModuleMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  uint32_t count = 0;
  if (!r.GetStr(&corpus) || !r.GetStr(&module) || !r.GetU32(&count)) {
    return false;
  }
  if (count > payload.size() / 8) {  // 8 bytes minimum per (name, text) pair
    return false;
  }
  files.clear();
  files.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    std::string text;
    if (!r.GetStr(&name) || !r.GetStr(&text)) {
      return false;
    }
    files.emplace_back(std::move(name), std::move(text));
  }
  return r.Finish();
}

std::string ReplaceFunctionMsg::Encode() const {
  WireWriter w;
  w.PutStr(corpus);
  w.PutStr(module);
  w.PutStr(function);
  w.PutStr(definition);
  return w.Take();
}

bool ReplaceFunctionMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetStr(&corpus) && r.GetStr(&module) && r.GetStr(&function) &&
         r.GetStr(&definition) && r.Finish();
}

std::string RemoveModuleMsg::Encode() const {
  WireWriter w;
  w.PutStr(corpus);
  w.PutStr(module);
  return w.Take();
}

bool RemoveModuleMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetStr(&corpus) && r.GetStr(&module) && r.Finish();
}

std::string ErrorMsg::Encode() const {
  WireWriter w;
  w.PutStr(message);
  return w.Take();
}

bool ErrorMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetStr(&message) && r.Finish();
}

std::string EpochMsg::Encode() const {
  WireWriter w;
  w.PutU64(epoch);
  return w.Take();
}

bool EpochMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetU64(&epoch) && r.Finish();
}

std::string RowsReplyMsg::Encode() const {
  WireWriter w;
  w.PutU64(epoch);
  w.PutU64(total);
  w.PutStrVec(rows);
  return w.Take();
}

bool RowsReplyMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetU64(&epoch) && r.GetU64(&total) && r.GetStrVec(&rows) && r.Finish();
}

std::string StatsReplyMsg::Encode() const {
  WireWriter w;
  w.PutU64(epoch);
  w.PutU32(modules);
  w.PutU64(findings);
  w.PutU64(summary_rows);
  w.PutU32(link_rounds);
  w.PutU8(converged);
  w.PutU32(queued_edits);
  w.PutU64(relinks);
  w.PutStrVec(apply_errors);
  // v2 metrics block (see wire.h version history).
  w.PutU64(request_count);
  w.PutU64(request_p50_us);
  w.PutU64(request_p95_us);
  w.PutU64(request_p99_us);
  w.PutU64(publish_count);
  w.PutU64(publish_p50_us);
  w.PutU64(publish_p99_us);
  w.PutU32(edit_queue_peak);
  return w.Take();
}

bool StatsReplyMsg::Decode(const std::string& payload) {
  WireReader r(payload);
  return r.GetU64(&epoch) && r.GetU32(&modules) && r.GetU64(&findings) &&
         r.GetU64(&summary_rows) && r.GetU32(&link_rounds) && r.GetU8(&converged) &&
         r.GetU32(&queued_edits) && r.GetU64(&relinks) && r.GetStrVec(&apply_errors) &&
         r.GetU64(&request_count) && r.GetU64(&request_p50_us) &&
         r.GetU64(&request_p95_us) && r.GetU64(&request_p99_us) &&
         r.GetU64(&publish_count) && r.GetU64(&publish_p50_us) &&
         r.GetU64(&publish_p99_us) && r.GetU32(&edit_queue_peak) && r.Finish();
}

}  // namespace ivy
