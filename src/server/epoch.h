// Reader/writer epochs over a warm AnalysisSession.
//
// Every converged relink publishes one immutable EpochSnapshot — the
// session's merged findings plus the converged summary table, frozen into
// plain data with no pointers back into the session. Publication is a
// shared_ptr swap under a small mutex; queries pin an epoch by copying the
// shared_ptr and then read with no lock held, so a query never blocks on an
// in-flight fixpoint and a relink never waits for readers. Responses carry
// the epoch id so clients can detect staleness.
//
// Retention: the publisher keeps the last `retain` snapshots (default 8), so
// a client that pinned epoch N can keep querying N by id while N+1, N+2
// converge behind it; older epochs are evicted and queries for them get an
// "evicted" error rather than silently upgraded data.
//
// Byte-identity contract: a snapshot's canonical rows (CanonicalFindings /
// canonical summary JSON) are exactly what a cold batch RunLinked() over the
// same sources produces — the stress test in tests/server_test.cc holds the
// server to that at every published epoch.
#ifndef SRC_SERVER_EPOCH_H_
#define SRC_SERVER_EPOCH_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/tool/session.h"

namespace ivy {

// One immutable published view of a corpus. Built once by the relink worker,
// then only ever read.
struct EpochSnapshot {
  uint64_t id = 0;
  // The session merge, module-stamped, in the session's deterministic order.
  std::vector<Finding> findings;
  // Canonical JSON per finding, index-parallel with `findings` (cached so
  // query handlers never re-serialize under load).
  std::vector<std::string> findings_canon;
  // The converged summary table in (module, function) key order.
  std::vector<FuncSummary> summaries;
  std::vector<std::string> summaries_canon;
  int modules = 0;
  int compile_failures = 0;
  LinkStats link;
  // Mutations that failed to apply during the relink that produced this
  // epoch (e.g. ReplaceFunction on a function that does not exist). The
  // relink still ran; these edits are dropped, not retried.
  std::vector<std::string> apply_errors;
};

// Builds a snapshot from one converged RunLinked() result. Shared by the
// server's relink worker and annodb_query's offline --from-synth mode, so
// "what the server serves" and "what a cold batch run prints" are the same
// bytes by construction. Returned mutable so the builder can stamp link
// stats / apply errors before handing it to Publish (const from then on).
std::shared_ptr<EpochSnapshot> BuildEpochSnapshot(uint64_t id,
                                                  const SessionResult& result,
                                                  const AnnoDb& link_table);

// The swap point between the relink writer and concurrent query readers.
class EpochPublisher {
 public:
  explicit EpochPublisher(int retain = 8) : retain_(retain < 1 ? 1 : retain) {}

  void Publish(std::shared_ptr<const EpochSnapshot> snap);

  // The latest published snapshot (null before the first publication).
  std::shared_ptr<const EpochSnapshot> Current() const;

  // A specific epoch, or null if never published / already evicted.
  std::shared_ptr<const EpochSnapshot> Get(uint64_t id) const;

  uint64_t current_id() const;

 private:
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const EpochSnapshot>> ring_;  // ascending ids
  int retain_;
};

}  // namespace ivy

#endif  // SRC_SERVER_EPOCH_H_
