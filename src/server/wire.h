// The annod wire protocol: length-prefixed framed binary messages with a
// versioned header, in the spirit of jsfw's hand-rolled framed socket
// protocol (ROADMAP.md exemplar).
//
// Frame layout (little-endian):
//
//   offset  size  field
//   0       1     magic0 = 0xA7
//   1       1     magic1 = 0xDB        ("annodb")
//   2       1     version = kWireVersion
//   3       1     message type (MsgType)
//   4       4     payload length (u32 LE, <= kMaxFramePayload)
//   8       len   payload
//
// Payload encoding is a flat sequence of fixed-width LE scalars and
// u32-length-prefixed strings (WireWriter/WireReader). Decoders are
// bounds-checked and total: any truncated, oversized, or malformed input
// returns false — never a crash, never an over-read (property-tested in
// tests/wire_test.cc).
//
// Findings and summary rows travel as their *canonical JSON byte form*
// (Finding::ToJson(nullptr).Dump(-1), FuncSummary::Canonical()) — the same
// bytes the link fixpoint diffs and the byte-identity contract compares, so
// "what the server returned" and "what a cold batch run produced" can be
// diffed with memcmp.
//
// Version policy: a frame whose version byte differs from kWireVersion is
// rejected before its payload is read (the length still frames it, so a
// future server can skip unknown-version frames without resyncing).
//
// Version history:
//   1  initial protocol (PR 6)
//   2  kStatsReply grew live observability fields — request-latency and
//      epoch-publish p50/p95/p99 plus an edit-queue high-water mark — for
//      `annodb_query --connect --metrics`. Any payload change bumps the
//      version: v1 peers are rejected at the header, never mis-parsed.
#ifndef SRC_SERVER_WIRE_H_
#define SRC_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/support/socket.h"

namespace ivy {

inline constexpr uint8_t kWireMagic0 = 0xA7;
inline constexpr uint8_t kWireMagic1 = 0xDB;
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint32_t kMaxFramePayload = 1u << 26;  // 64 MiB
inline constexpr size_t kFrameHeaderSize = 8;

// Message types. Requests < 64, responses >= 64.
enum class MsgType : uint8_t {
  kPing = 1,
  kOpenCorpus = 2,
  kCloseCorpus = 3,
  kQueryFindings = 4,
  kQuerySummaries = 5,
  kUpsertModule = 6,
  kReplaceFunction = 7,
  kRemoveModule = 8,
  kStats = 9,
  kSync = 10,
  kShutdown = 11,

  kOk = 64,
  kError = 65,
  kEpoch = 66,
  kFindings = 67,
  kSummaries = 68,
  kStatsReply = 69,
};

const char* MsgTypeName(MsgType t);

struct Frame {
  MsgType type = MsgType::kPing;
  std::string payload;
};

// ---------------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutStr(const std::string& s);
  void PutStrVec(const std::vector<std::string>& v);

  std::string Take() { return std::move(buf_); }
  const std::string& buf() const { return buf_; }

 private:
  std::string buf_;
};

// Bounds-checked reader: every Get* returns false once the payload is
// exhausted or a length prefix overruns the remaining bytes; after the first
// failure all further reads fail too.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : data_(payload) {}

  bool GetU8(uint8_t* out);
  bool GetU32(uint32_t* out);
  bool GetU64(uint64_t* out);
  bool GetStr(std::string* out);
  bool GetStrVec(std::vector<std::string>* out);

  // True when every payload byte was consumed and nothing failed — message
  // decoders require exact length (trailing garbage is a malformed frame).
  bool Finish() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------------

// Serializes header + payload into one contiguous byte string.
std::string EncodeFrame(MsgType type, const std::string& payload);

// Validates an 8-byte header. On success fills type/length; on failure sets
// *err (bad magic, unsupported version, oversized length).
bool DecodeFrameHeader(const uint8_t header[kFrameHeaderSize], MsgType* type,
                       uint32_t* length, std::string* err);

// Blocking framed I/O over a socket. ReadFrame returns:
//   1  frame read
//   0  clean EOF before a header byte (peer closed between frames)
//  -1  error (malformed header, short read, socket error) — *err says why
int ReadFrame(Socket& sock, Frame* out, std::string* err);
bool WriteFrame(Socket& sock, MsgType type, const std::string& payload,
                std::string* err);

// ---------------------------------------------------------------------------
// Messages. Each struct has Encode() -> payload and Decode(payload) -> bool.
// The corpus name rides in every request: the daemon serves one warm
// AnalysisSession per corpus.
// ---------------------------------------------------------------------------

// kPing, kOpenCorpus, kCloseCorpus, kStats, kSync, kShutdown, kOk: a bare
// corpus-name payload (empty string where no corpus applies).
struct CorpusMsg {
  std::string corpus;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kQueryFindings. `epoch` 0 pins the latest published epoch; a nonzero id
// pins that exact epoch (error if already evicted from the retention ring).
struct FindingsQueryMsg {
  std::string corpus;
  uint64_t epoch = 0;
  std::string function;  // witness/message match, as in annodb_query
  std::string tool;
  std::string module;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kQuerySummaries.
struct SummariesQueryMsg {
  std::string corpus;
  uint64_t epoch = 0;
  std::string function;
  std::string module;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kUpsertModule: registers or replaces a corpus module (name + sources).
struct UpsertModuleMsg {
  std::string corpus;
  std::string module;
  std::vector<std::pair<std::string, std::string>> files;  // (name, text)

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kReplaceFunction: the keystroke-sized edit path.
struct ReplaceFunctionMsg {
  std::string corpus;
  std::string module;
  std::string function;
  std::string definition;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kRemoveModule.
struct RemoveModuleMsg {
  std::string corpus;
  std::string module;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kError.
struct ErrorMsg {
  std::string message;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kEpoch: mutation acks (epoch current at enqueue time) and kSync replies
// (epoch after quiescence).
struct EpochMsg {
  uint64_t epoch = 0;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kFindings / kSummaries: the pinned epoch id, the epoch's total row count
// (so clients can render "N of M" like the offline CLI), and the matching
// rows in canonical JSON byte form.
struct RowsReplyMsg {
  uint64_t epoch = 0;
  uint64_t total = 0;
  std::vector<std::string> rows;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

// kStatsReply: the control-plane view of one corpus. The metrics block
// (v2) is served from the daemon's always-on latency histograms — it is
// live data, not a tracing artifact, so it works with tracing disabled.
struct StatsReplyMsg {
  uint64_t epoch = 0;
  uint32_t modules = 0;
  uint64_t findings = 0;
  uint64_t summary_rows = 0;
  uint32_t link_rounds = 0;
  uint8_t converged = 0;
  uint32_t queued_edits = 0;
  uint64_t relinks = 0;
  std::vector<std::string> apply_errors;  // edits that failed to apply

  // v2: request-latency histogram readout (all request types, Dispatch
  // wall time in microseconds) ...
  uint64_t request_count = 0;
  uint64_t request_p50_us = 0;
  uint64_t request_p95_us = 0;
  uint64_t request_p99_us = 0;
  // ... epoch-publish timing (converged relink -> snapshot visible) ...
  uint64_t publish_count = 0;
  uint64_t publish_p50_us = 0;
  uint64_t publish_p99_us = 0;
  // ... and the deepest the corpus edit queue has been since startup.
  uint32_t edit_queue_peak = 0;

  std::string Encode() const;
  bool Decode(const std::string& payload);
};

}  // namespace ivy

#endif  // SRC_SERVER_WIRE_H_
