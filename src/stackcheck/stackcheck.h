// StackCheck (§3.1, second future analysis): "the call graph built for
// BlockStop can be used to prevent stack overflow. Given a sound call graph
// and information about the size of each stack frame, as in the Capriccio
// thread package, we can ensure that every possible chain of function calls
// stays within its allotted 4 or 8 kB of stack space. ... For recursive
// calls, run-time checks will be needed."
//
// Frame sizes come from lowering (IrFunc::frame_size). The call graph is
// condensed into strongly connected components first (iterative Tarjan over
// DefinedFuncs() order — deterministic); the worst-case depth is the longest
// path in the condensation DAG, where an SCC's weight is the sum of its
// members' frames (each cycle's frames counted once — the static bound is
// advisory there anyway, because functions on cycles cannot be bounded
// statically and are reported as needing the run-time check, the VM's
// kCheckStack trap).
//
// The condensation is what makes the analysis shardable: per-entry depths
// are pure functions of the DAG, so Run(entries, sharder, wq) computes them
// in parallel shards (each with a private memo) and reduces in shard order —
// byte-identical to the serial Run(entries).
#ifndef SRC_STACKCHECK_STACKCHECK_H_
#define SRC_STACKCHECK_STACKCHECK_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/ir/ir.h"
#include "src/tool/finding.h"

namespace ivy {

class FunctionSharder;
class WorkQueue;

struct StackCheckReport {
  // Worst-case stack bytes per entry point (conservative over all paths).
  std::map<std::string, int64_t> entry_depths;
  // Functions participating in recursion: need run-time checks.
  std::set<std::string> recursive;
  int64_t worst_case = 0;
  std::string worst_entry;
  int64_t budget = 8192;  // the paper's 4 or 8 kB
  bool fits_budget = false;

  std::string ToString() const;

  // Unified-pipeline view: a budget overrun is an error (witness = the worst
  // entry point), each recursive function a warning (needs the run-time
  // kCheckStack trap, as the paper prescribes).
  std::vector<Finding> ToFindings() const;
};

class StackCheck {
 public:
  StackCheck(const CallGraph* cg, const IrModule* module, int64_t budget = 8192);

  // Analyzes the given entry points (default: every defined function is a
  // potential kernel entry; syscalls and IRQ handlers are reported first).
  StackCheckReport Run(const std::vector<std::string>& entries);

  // Sharded depth search: entry points are partitioned by `sharder` and
  // solved in parallel on `wq`, each shard with a private memo over the
  // condensation DAG. Byte-identical report to the serial Run().
  StackCheckReport Run(const std::vector<std::string>& entries,
                       const FunctionSharder& sharder, WorkQueue& wq);

 private:
  // Builds the SCC condensation (idempotent; called by both Run flavors).
  void Prepare();
  // Longest path from `scc` through the condensation; memo is caller-owned
  // so parallel shards never share mutable state. An SCC on a cross-module
  // cycle answers with the link stage's corpus-level depth (the local
  // condensation cannot see the rest of the cycle, and stacking the local
  // weight on top of the imported subtree depth would double-count it) —
  // roots and intermediate callers alike.
  int64_t DepthOfScc(int scc, std::vector<int64_t>* memo) const;
  std::vector<const FuncDecl*> ResolveRoots(const std::vector<std::string>& entries) const;
  StackCheckReport Reduce(const std::vector<const FuncDecl*>& roots,
                          const std::vector<int64_t>& root_depths) const;

  const CallGraph* cg_;
  const IrModule* module_;
  int64_t budget_;

  // Condensation, valid after Prepare().
  bool prepared_ = false;
  std::map<const FuncDecl*, int> func_index_;
  std::vector<int> scc_of_;                 // function index -> scc id
  std::vector<int64_t> scc_weight_;         // sum of member frame sizes
  std::vector<uint8_t> scc_cyclic_;         // size > 1 or self-loop
  // Max imported subtree depth (attrs.stack_below) over the members' calls
  // into extern-declared functions — the consumed half of the link summary.
  std::vector<int64_t> scc_extern_extra_;
  // Corpus-level depth override for SCCs whose members sit on a
  // cross-module cycle (-1 = none); see DepthOfScc.
  std::vector<int64_t> scc_link_depth_;
  std::vector<std::vector<int>> scc_succs_; // deduped, ascending
  std::vector<std::vector<int>> scc_members_;  // function indices, ascending
};

}  // namespace ivy

#endif  // SRC_STACKCHECK_STACKCHECK_H_
