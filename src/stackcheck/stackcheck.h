// StackCheck (§3.1, second future analysis): "the call graph built for
// BlockStop can be used to prevent stack overflow. Given a sound call graph
// and information about the size of each stack frame, as in the Capriccio
// thread package, we can ensure that every possible chain of function calls
// stays within its allotted 4 or 8 kB of stack space. ... For recursive
// calls, run-time checks will be needed."
//
// Frame sizes come from lowering (IrFunc::frame_size); the worst-case depth
// is the longest path in the call graph (indirect edges included). Functions
// on call-graph cycles cannot be bounded statically and are reported as
// needing the run-time check (the VM's kCheckStack trap).
#ifndef SRC_STACKCHECK_STACKCHECK_H_
#define SRC_STACKCHECK_STACKCHECK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/ir/ir.h"
#include "src/tool/finding.h"

namespace ivy {

struct StackCheckReport {
  // Worst-case stack bytes per entry point (conservative over all paths).
  std::map<std::string, int64_t> entry_depths;
  // Functions participating in recursion: need run-time checks.
  std::set<std::string> recursive;
  int64_t worst_case = 0;
  std::string worst_entry;
  int64_t budget = 8192;  // the paper's 4 or 8 kB
  bool fits_budget = false;

  std::string ToString() const;

  // Unified-pipeline view: a budget overrun is an error (witness = the worst
  // entry point), each recursive function a warning (needs the run-time
  // kCheckStack trap, as the paper prescribes).
  std::vector<Finding> ToFindings() const;
};

class StackCheck {
 public:
  StackCheck(const CallGraph* cg, const IrModule* module, int64_t budget = 8192);

  // Analyzes the given entry points (default: every defined function is a
  // potential kernel entry; syscalls and IRQ handlers are reported first).
  StackCheckReport Run(const std::vector<std::string>& entries);

 private:
  int64_t DepthOf(const FuncDecl* fn, std::set<const FuncDecl*>* on_path,
                  std::set<std::string>* recursive);

  const CallGraph* cg_;
  const IrModule* module_;
  int64_t budget_;
  std::map<const FuncDecl*, int64_t> memo_;
};

}  // namespace ivy

#endif  // SRC_STACKCHECK_STACKCHECK_H_
