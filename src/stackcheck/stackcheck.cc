#include "src/stackcheck/stackcheck.h"

#include <algorithm>

#include "src/support/scc.h"
#include "src/tool/function_sharder.h"

namespace ivy {

StackCheck::StackCheck(const CallGraph* cg, const IrModule* module, int64_t budget)
    : cg_(cg), module_(module), budget_(budget) {}

void StackCheck::Prepare() {
  if (prepared_) {
    return;
  }
  prepared_ = true;
  const std::vector<const FuncDecl*>& funcs = cg_->DefinedFuncs();
  const int n = static_cast<int>(funcs.size());
  for (int i = 0; i < n; ++i) {
    func_index_[funcs[i]] = i;
  }
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  std::vector<uint8_t> self_loop(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (const CallSite& site : cg_->SitesOf(funcs[static_cast<size_t>(i)])) {
      for (const FuncDecl* callee : site.McCallees()) {
        auto it = func_index_.find(callee);
        if (it == func_index_.end()) {
          continue;  // declared-only callee: no body, no frame
        }
        if (it->second == i) {
          self_loop[static_cast<size_t>(i)] = 1;
        }
        adj[static_cast<size_t>(i)].push_back(it->second);
      }
    }
  }

  // Tarjan in DefinedFuncs() order (src/support/scc.h): SCC ids and member
  // lists come out the same no matter who asks, which is the root of the
  // sharding determinism contract.
  SccCondensation scc = TarjanScc(adj);
  scc_of_ = std::move(scc.scc_of);
  scc_members_ = std::move(scc.members);

  // Imported callee summaries: a call into an extern-declared function
  // contributes that function's corpus-level subtree depth (attrs.stack_below,
  // set by the session's link stage) as a leaf edge.
  std::vector<int64_t> extern_extra(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (const CallSite& site : cg_->SitesOf(funcs[static_cast<size_t>(i)])) {
      for (const FuncDecl* callee : site.McCallees()) {
        if (callee->body == nullptr && !callee->is_builtin &&
            callee->attrs.stack_below > extern_extra[static_cast<size_t>(i)]) {
          extern_extra[static_cast<size_t>(i)] = callee->attrs.stack_below;
        }
      }
    }
  }

  const size_t scc_count = scc_members_.size();
  scc_weight_.assign(scc_count, 0);
  scc_cyclic_.assign(scc_count, 0);
  scc_extern_extra_.assign(scc_count, 0);
  scc_link_depth_.assign(scc_count, -1);
  scc_succs_.assign(scc_count, {});
  for (size_t s = 0; s < scc_count; ++s) {
    for (int v : scc_members_[s]) {
      const FuncDecl* fn = funcs[static_cast<size_t>(v)];
      int64_t frame = 0;
      if (fn->func_id >= 0 && static_cast<size_t>(fn->func_id) < module_->funcs.size()) {
        frame = module_->funcs[static_cast<size_t>(fn->func_id)].frame_size;
      }
      scc_weight_[s] += frame;
      scc_extern_extra_[s] = std::max(scc_extern_extra_[s], extern_extra[static_cast<size_t>(v)]);
      if (fn->attrs.cross_recursive && fn->attrs.stack_below >= 0) {
        scc_link_depth_[s] = std::max(scc_link_depth_[s], fn->attrs.stack_below);
      }
      if (self_loop[static_cast<size_t>(v)]) {
        scc_cyclic_[s] = 1;
      }
    }
    if (scc_members_[s].size() > 1) {
      scc_cyclic_[s] = 1;
    }
  }
  for (int v = 0; v < n; ++v) {
    for (int w : adj[static_cast<size_t>(v)]) {
      int sv = scc_of_[static_cast<size_t>(v)];
      int sw = scc_of_[static_cast<size_t>(w)];
      if (sv != sw) {
        scc_succs_[static_cast<size_t>(sv)].push_back(sw);
      }
    }
  }
  for (std::vector<int>& succs : scc_succs_) {
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
  }
}

int64_t StackCheck::DepthOfScc(int scc, std::vector<int64_t>* memo) const {
  int64_t& slot = (*memo)[static_cast<size_t>(scc)];
  if (slot >= 0) {
    return slot;
  }
  // Cross-module cycle member: the corpus-level depth already counts this
  // SCC's frames (once) plus everything below the whole cycle.
  if (scc_link_depth_[static_cast<size_t>(scc)] >= 0) {
    slot = scc_link_depth_[static_cast<size_t>(scc)];
    return slot;
  }
  int64_t deepest = scc_extern_extra_[static_cast<size_t>(scc)];
  for (int succ : scc_succs_[static_cast<size_t>(scc)]) {
    deepest = std::max(deepest, DepthOfScc(succ, memo));
  }
  slot = scc_weight_[static_cast<size_t>(scc)] + deepest;
  return slot;
}

std::vector<const FuncDecl*> StackCheck::ResolveRoots(
    const std::vector<std::string>& entries) const {
  if (entries.empty()) {
    return cg_->DefinedFuncs();
  }
  std::map<std::string, const FuncDecl*> by_name;
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    by_name[fn->name] = fn;
  }
  std::vector<const FuncDecl*> roots;
  for (const std::string& name : entries) {
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      roots.push_back(it->second);
    }
  }
  return roots;
}

StackCheckReport StackCheck::Reduce(const std::vector<const FuncDecl*>& roots,
                                    const std::vector<int64_t>& root_depths) const {
  StackCheckReport report;
  report.budget = budget_;
  for (size_t i = 0; i < roots.size(); ++i) {
    report.entry_depths[roots[i]->name] = root_depths[i];
    if (root_depths[i] > report.worst_case) {
      report.worst_case = root_depths[i];
      report.worst_entry = roots[i]->name;
    }
  }
  // Recursive functions: members of cyclic SCCs reachable from any root.
  std::vector<uint8_t> seen(scc_members_.size(), 0);
  std::vector<int> worklist;
  for (const FuncDecl* root : roots) {
    auto it = func_index_.find(root);
    if (it == func_index_.end()) {
      continue;
    }
    int s = scc_of_[static_cast<size_t>(it->second)];
    if (!seen[static_cast<size_t>(s)]) {
      seen[static_cast<size_t>(s)] = 1;
      worklist.push_back(s);
    }
  }
  while (!worklist.empty()) {
    int s = worklist.back();
    worklist.pop_back();
    if (scc_cyclic_[static_cast<size_t>(s)]) {
      for (int v : scc_members_[static_cast<size_t>(s)]) {
        report.recursive.insert(cg_->DefinedFuncs()[static_cast<size_t>(v)]->name);
      }
    }
    for (int succ : scc_succs_[static_cast<size_t>(s)]) {
      if (!seen[static_cast<size_t>(succ)]) {
        seen[static_cast<size_t>(succ)] = 1;
        worklist.push_back(succ);
      }
    }
  }
  // Members of cross-module cycles (imported from the link stage's corpus
  // condensation): recursive exactly like local cyclic-SCC members.
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    if (!fn->attrs.cross_recursive) {
      continue;
    }
    auto it = func_index_.find(fn);
    if (it != func_index_.end() &&
        seen[static_cast<size_t>(scc_of_[static_cast<size_t>(it->second)])]) {
      report.recursive.insert(fn->name);
    }
  }
  report.fits_budget = report.worst_case <= budget_ && report.recursive.empty();
  return report;
}

StackCheckReport StackCheck::Run(const std::vector<std::string>& entries) {
  Prepare();
  std::vector<const FuncDecl*> roots = ResolveRoots(entries);
  std::vector<int64_t> memo(scc_members_.size(), -1);
  std::vector<int64_t> depths;
  depths.reserve(roots.size());
  for (const FuncDecl* root : roots) {
    int idx = func_index_.at(root);
    depths.push_back(DepthOfScc(scc_of_[static_cast<size_t>(idx)], &memo));
  }
  return Reduce(roots, depths);
}

StackCheckReport StackCheck::Run(const std::vector<std::string>& entries,
                                 const FunctionSharder& sharder, WorkQueue& wq) {
  Prepare();
  std::vector<const FuncDecl*> roots = ResolveRoots(entries);
  std::vector<int64_t> depths(roots.size(), 0);
  sharder.ParallelChunks(wq, roots.size(),
                         [this, &roots, &depths](int, size_t begin, size_t end) {
                           // Private memo per shard: recomputation across
                           // shards is possible, divergence is not — DAG
                           // depths are pure.
                           std::vector<int64_t> memo(scc_members_.size(), -1);
                           for (size_t i = begin; i < end; ++i) {
                             int idx = func_index_.at(roots[i]);
                             depths[i] =
                                 DepthOfScc(scc_of_[static_cast<size_t>(idx)], &memo);
                           }
                         });
  return Reduce(roots, depths);
}

std::string StackCheckReport::ToString() const {
  std::string out = "StackCheck: worst-case stack " + std::to_string(worst_case) +
                    " bytes via '" + worst_entry + "' (budget " + std::to_string(budget) +
                    ")\n";
  out += std::string("  verdict: ") +
         (fits_budget ? "every call chain fits the budget"
                      : (recursive.empty() ? "BUDGET EXCEEDED"
                                           : "recursion present: run-time checks required")) +
         "\n";
  for (const auto& [name, depth] : entry_depths) {
    out += "    " + name + ": " + std::to_string(depth) + " bytes\n";
  }
  if (!recursive.empty()) {
    out += "  recursive functions (need kCheckStack run-time checks):\n";
    for (const std::string& f : recursive) {
      out += "    " + f + "\n";
    }
  }
  return out;
}

std::vector<Finding> StackCheckReport::ToFindings() const {
  std::vector<Finding> out;
  if (worst_case > budget) {
    Finding f;
    f.tool = "stackcheck";
    f.severity = FindingSeverity::kError;
    f.message = "worst-case stack " + std::to_string(worst_case) + " bytes exceeds budget " +
                std::to_string(budget);
    f.witness = {worst_entry};
    out.push_back(std::move(f));
  }
  for (const std::string& fn : recursive) {
    Finding f;
    f.tool = "stackcheck";
    f.severity = FindingSeverity::kWarning;
    f.message = "function '" + fn + "' is recursive: stack bound needs run-time checks";
    f.witness = {fn};
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace ivy
