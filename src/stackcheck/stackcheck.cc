#include "src/stackcheck/stackcheck.h"

namespace ivy {

StackCheck::StackCheck(const CallGraph* cg, const IrModule* module, int64_t budget)
    : cg_(cg), module_(module), budget_(budget) {}

int64_t StackCheck::DepthOf(const FuncDecl* fn, std::set<const FuncDecl*>* on_path,
                            std::set<std::string>* recursive) {
  auto memo = memo_.find(fn);
  if (memo != memo_.end()) {
    return memo->second;
  }
  if (on_path->count(fn) != 0) {
    // Recursion: unbounded statically; the whole cycle needs run-time checks.
    recursive->insert(fn->name);
    return 0;
  }
  int64_t frame = 0;
  if (fn->func_id >= 0 && static_cast<size_t>(fn->func_id) < module_->funcs.size()) {
    frame = module_->funcs[static_cast<size_t>(fn->func_id)].frame_size;
  }
  on_path->insert(fn);
  int64_t deepest = 0;
  for (const CallSite& site : cg_->SitesOf(fn)) {
    for (const FuncDecl* callee : site.McCallees()) {
      int64_t d = DepthOf(callee, on_path, recursive);
      if (d > deepest) {
        deepest = d;
      }
    }
  }
  on_path->erase(fn);
  int64_t total = frame + deepest;
  if (recursive->count(fn->name) == 0) {
    memo_[fn] = total;
  }
  return total;
}

StackCheckReport StackCheck::Run(const std::vector<std::string>& entries) {
  StackCheckReport report;
  report.budget = budget_;
  std::map<std::string, const FuncDecl*> by_name;
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    by_name[fn->name] = fn;
  }
  std::vector<const FuncDecl*> roots;
  if (entries.empty()) {
    roots = cg_->DefinedFuncs();
  } else {
    for (const std::string& name : entries) {
      auto it = by_name.find(name);
      if (it != by_name.end()) {
        roots.push_back(it->second);
      }
    }
  }
  for (const FuncDecl* fn : roots) {
    std::set<const FuncDecl*> on_path;
    int64_t depth = DepthOf(fn, &on_path, &report.recursive);
    report.entry_depths[fn->name] = depth;
    if (depth > report.worst_case) {
      report.worst_case = depth;
      report.worst_entry = fn->name;
    }
  }
  report.fits_budget = report.worst_case <= budget_ && report.recursive.empty();
  return report;
}

std::string StackCheckReport::ToString() const {
  std::string out = "StackCheck: worst-case stack " + std::to_string(worst_case) +
                    " bytes via '" + worst_entry + "' (budget " + std::to_string(budget) +
                    ")\n";
  out += std::string("  verdict: ") +
         (fits_budget ? "every call chain fits the budget"
                      : (recursive.empty() ? "BUDGET EXCEEDED"
                                           : "recursion present: run-time checks required")) +
         "\n";
  for (const auto& [name, depth] : entry_depths) {
    out += "    " + name + ": " + std::to_string(depth) + " bytes\n";
  }
  if (!recursive.empty()) {
    out += "  recursive functions (need kCheckStack run-time checks):\n";
    for (const std::string& f : recursive) {
      out += "    " + f + "\n";
    }
  }
  return out;
}

std::vector<Finding> StackCheckReport::ToFindings() const {
  std::vector<Finding> out;
  if (worst_case > budget) {
    Finding f;
    f.tool = "stackcheck";
    f.severity = FindingSeverity::kError;
    f.message = "worst-case stack " + std::to_string(worst_case) + " bytes exceeds budget " +
                std::to_string(budget);
    f.witness = {worst_entry};
    out.push_back(std::move(f));
  }
  for (const std::string& fn : recursive) {
    Finding f;
    f.tool = "stackcheck";
    f.severity = FindingSeverity::kWarning;
    f.message = "function '" + fn + "' is recursive: stack bound needs run-time checks";
    f.witness = {fn};
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace ivy
