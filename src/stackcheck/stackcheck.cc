#include "src/stackcheck/stackcheck.h"

#include <algorithm>

#include "src/tool/function_sharder.h"

namespace ivy {

StackCheck::StackCheck(const CallGraph* cg, const IrModule* module, int64_t budget)
    : cg_(cg), module_(module), budget_(budget) {}

void StackCheck::Prepare() {
  if (prepared_) {
    return;
  }
  prepared_ = true;
  const std::vector<const FuncDecl*>& funcs = cg_->DefinedFuncs();
  const int n = static_cast<int>(funcs.size());
  for (int i = 0; i < n; ++i) {
    func_index_[funcs[i]] = i;
  }
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  std::vector<uint8_t> self_loop(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (const CallSite& site : cg_->SitesOf(funcs[static_cast<size_t>(i)])) {
      for (const FuncDecl* callee : site.McCallees()) {
        auto it = func_index_.find(callee);
        if (it == func_index_.end()) {
          continue;  // declared-only callee: no body, no frame
        }
        if (it->second == i) {
          self_loop[static_cast<size_t>(i)] = 1;
        }
        adj[static_cast<size_t>(i)].push_back(it->second);
      }
    }
  }

  // Iterative Tarjan in DefinedFuncs() order: SCC ids and member lists come
  // out the same no matter who asks, which is the root of the sharding
  // determinism contract.
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> low(static_cast<size_t>(n), 0);
  std::vector<uint8_t> on_stack(static_cast<size_t>(n), 0);
  std::vector<int> stack;
  scc_of_.assign(static_cast<size_t>(n), -1);
  int next_index = 0;
  struct Frame {
    int v;
    size_t edge;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) {
      continue;
    }
    std::vector<Frame> dfs;
    dfs.push_back({root, 0});
    index[static_cast<size_t>(root)] = low[static_cast<size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = 1;
    while (!dfs.empty()) {
      Frame& f = dfs.back();
      const std::vector<int>& edges = adj[static_cast<size_t>(f.v)];
      if (f.edge < edges.size()) {
        int w = edges[f.edge++];
        if (index[static_cast<size_t>(w)] == -1) {
          index[static_cast<size_t>(w)] = low[static_cast<size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<size_t>(w)] = 1;
          dfs.push_back({w, 0});
        } else if (on_stack[static_cast<size_t>(w)]) {
          low[static_cast<size_t>(f.v)] =
              std::min(low[static_cast<size_t>(f.v)], index[static_cast<size_t>(w)]);
        }
      } else {
        if (low[static_cast<size_t>(f.v)] == index[static_cast<size_t>(f.v)]) {
          int scc = static_cast<int>(scc_members_.size());
          scc_members_.emplace_back();
          int w;
          do {
            w = stack.back();
            stack.pop_back();
            on_stack[static_cast<size_t>(w)] = 0;
            scc_of_[static_cast<size_t>(w)] = scc;
            scc_members_.back().push_back(w);
          } while (w != f.v);
          std::sort(scc_members_.back().begin(), scc_members_.back().end());
        }
        int v = f.v;
        dfs.pop_back();
        if (!dfs.empty()) {
          low[static_cast<size_t>(dfs.back().v)] =
              std::min(low[static_cast<size_t>(dfs.back().v)], low[static_cast<size_t>(v)]);
        }
      }
    }
  }

  const size_t scc_count = scc_members_.size();
  scc_weight_.assign(scc_count, 0);
  scc_cyclic_.assign(scc_count, 0);
  scc_succs_.assign(scc_count, {});
  for (size_t s = 0; s < scc_count; ++s) {
    for (int v : scc_members_[s]) {
      const FuncDecl* fn = funcs[static_cast<size_t>(v)];
      int64_t frame = 0;
      if (fn->func_id >= 0 && static_cast<size_t>(fn->func_id) < module_->funcs.size()) {
        frame = module_->funcs[static_cast<size_t>(fn->func_id)].frame_size;
      }
      scc_weight_[s] += frame;
      if (self_loop[static_cast<size_t>(v)]) {
        scc_cyclic_[s] = 1;
      }
    }
    if (scc_members_[s].size() > 1) {
      scc_cyclic_[s] = 1;
    }
  }
  for (int v = 0; v < n; ++v) {
    for (int w : adj[static_cast<size_t>(v)]) {
      int sv = scc_of_[static_cast<size_t>(v)];
      int sw = scc_of_[static_cast<size_t>(w)];
      if (sv != sw) {
        scc_succs_[static_cast<size_t>(sv)].push_back(sw);
      }
    }
  }
  for (std::vector<int>& succs : scc_succs_) {
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
  }
}

int64_t StackCheck::DepthOfScc(int scc, std::vector<int64_t>* memo) const {
  int64_t& slot = (*memo)[static_cast<size_t>(scc)];
  if (slot >= 0) {
    return slot;
  }
  int64_t deepest = 0;
  for (int succ : scc_succs_[static_cast<size_t>(scc)]) {
    deepest = std::max(deepest, DepthOfScc(succ, memo));
  }
  slot = scc_weight_[static_cast<size_t>(scc)] + deepest;
  return slot;
}

std::vector<const FuncDecl*> StackCheck::ResolveRoots(
    const std::vector<std::string>& entries) const {
  if (entries.empty()) {
    return cg_->DefinedFuncs();
  }
  std::map<std::string, const FuncDecl*> by_name;
  for (const FuncDecl* fn : cg_->DefinedFuncs()) {
    by_name[fn->name] = fn;
  }
  std::vector<const FuncDecl*> roots;
  for (const std::string& name : entries) {
    auto it = by_name.find(name);
    if (it != by_name.end()) {
      roots.push_back(it->second);
    }
  }
  return roots;
}

StackCheckReport StackCheck::Reduce(const std::vector<const FuncDecl*>& roots,
                                    const std::vector<int64_t>& root_depths) const {
  StackCheckReport report;
  report.budget = budget_;
  for (size_t i = 0; i < roots.size(); ++i) {
    report.entry_depths[roots[i]->name] = root_depths[i];
    if (root_depths[i] > report.worst_case) {
      report.worst_case = root_depths[i];
      report.worst_entry = roots[i]->name;
    }
  }
  // Recursive functions: members of cyclic SCCs reachable from any root.
  std::vector<uint8_t> seen(scc_members_.size(), 0);
  std::vector<int> worklist;
  for (const FuncDecl* root : roots) {
    auto it = func_index_.find(root);
    if (it == func_index_.end()) {
      continue;
    }
    int s = scc_of_[static_cast<size_t>(it->second)];
    if (!seen[static_cast<size_t>(s)]) {
      seen[static_cast<size_t>(s)] = 1;
      worklist.push_back(s);
    }
  }
  while (!worklist.empty()) {
    int s = worklist.back();
    worklist.pop_back();
    if (scc_cyclic_[static_cast<size_t>(s)]) {
      for (int v : scc_members_[static_cast<size_t>(s)]) {
        report.recursive.insert(cg_->DefinedFuncs()[static_cast<size_t>(v)]->name);
      }
    }
    for (int succ : scc_succs_[static_cast<size_t>(s)]) {
      if (!seen[static_cast<size_t>(succ)]) {
        seen[static_cast<size_t>(succ)] = 1;
        worklist.push_back(succ);
      }
    }
  }
  report.fits_budget = report.worst_case <= budget_ && report.recursive.empty();
  return report;
}

StackCheckReport StackCheck::Run(const std::vector<std::string>& entries) {
  Prepare();
  std::vector<const FuncDecl*> roots = ResolveRoots(entries);
  std::vector<int64_t> memo(scc_members_.size(), -1);
  std::vector<int64_t> depths;
  depths.reserve(roots.size());
  for (const FuncDecl* root : roots) {
    int idx = func_index_.at(root);
    depths.push_back(DepthOfScc(scc_of_[static_cast<size_t>(idx)], &memo));
  }
  return Reduce(roots, depths);
}

StackCheckReport StackCheck::Run(const std::vector<std::string>& entries,
                                 const FunctionSharder& sharder, WorkQueue& wq) {
  Prepare();
  std::vector<const FuncDecl*> roots = ResolveRoots(entries);
  std::vector<int64_t> depths(roots.size(), 0);
  sharder.ParallelChunks(wq, roots.size(),
                         [this, &roots, &depths](int, size_t begin, size_t end) {
                           // Private memo per shard: recomputation across
                           // shards is possible, divergence is not — DAG
                           // depths are pure.
                           std::vector<int64_t> memo(scc_members_.size(), -1);
                           for (size_t i = begin; i < end; ++i) {
                             int idx = func_index_.at(roots[i]);
                             depths[i] =
                                 DepthOfScc(scc_of_[static_cast<size_t>(idx)], &memo);
                           }
                         });
  return Reduce(roots, depths);
}

std::string StackCheckReport::ToString() const {
  std::string out = "StackCheck: worst-case stack " + std::to_string(worst_case) +
                    " bytes via '" + worst_entry + "' (budget " + std::to_string(budget) +
                    ")\n";
  out += std::string("  verdict: ") +
         (fits_budget ? "every call chain fits the budget"
                      : (recursive.empty() ? "BUDGET EXCEEDED"
                                           : "recursion present: run-time checks required")) +
         "\n";
  for (const auto& [name, depth] : entry_depths) {
    out += "    " + name + ": " + std::to_string(depth) + " bytes\n";
  }
  if (!recursive.empty()) {
    out += "  recursive functions (need kCheckStack run-time checks):\n";
    for (const std::string& f : recursive) {
      out += "    " + f + "\n";
    }
  }
  return out;
}

std::vector<Finding> StackCheckReport::ToFindings() const {
  std::vector<Finding> out;
  if (worst_case > budget) {
    Finding f;
    f.tool = "stackcheck";
    f.severity = FindingSeverity::kError;
    f.message = "worst-case stack " + std::to_string(worst_case) + " bytes exceeds budget " +
                std::to_string(budget);
    f.witness = {worst_entry};
    out.push_back(std::move(f));
  }
  for (const std::string& fn : recursive) {
    Finding f;
    f.tool = "stackcheck";
    f.severity = FindingSeverity::kWarning;
    f.message = "function '" + fn + "' is recursive: stack bound needs run-time checks";
    f.witness = {fn};
    out.push_back(std::move(f));
  }
  return out;
}

}  // namespace ivy
