// The Ivy driver: assembles source files (prelude + kernel modules + test
// snippets) into one whole program, runs the frontend and the enabled tools,
// and produces an executable IrModule plus a configured VM.
//
// This mirrors the paper's workflow: "we replace gcc with deputy in the
// kernel makefiles" (§2.1) — here, one Compile() call is the whole-kernel
// build, and ToolConfig selects which soundness tools are in play.
#ifndef SRC_DRIVER_COMPILER_H_
#define SRC_DRIVER_COMPILER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ccount/layouts.h"
#include "src/ir/ir.h"
#include "src/ir/lower.h"
#include "src/mc/ast.h"
#include "src/mc/sema.h"
#include "src/support/diag.h"
#include "src/support/source.h"
#include "src/bc/bcvm.h"
#include "src/vm/vm.h"

namespace ivy {

struct SourceFile {
  std::string name;
  std::string text;
};

// Which tools are enabled for a build+run. Deputy choices affect lowering
// (check emission); CCount choices affect the VM run.
//
// This is the legacy flat bag; new code should configure builds through
// PipelineBuilder (src/tool/pipeline.h), which adds per-tool option bags,
// pass selection by registry name, and parallel scheduling. Compile() and
// CompileOne() below delegate there.
struct ToolConfig {
  bool deputy = true;
  bool discharge = true;
  bool ccount = false;
  bool smp = false;
  bool track_locals = false;
  int rc_width_bits = 8;
  bool include_prelude = true;
  bool heap_ast = false;  // per-node heap AST (A/B baseline; see PipelineBuilder::HeapAst)
};

// One compiled program: owns every stage's artifacts.
class Compilation {
 public:
  SourceManager sm;
  std::unique_ptr<DiagEngine> diags;
  Program prog;
  std::unique_ptr<Sema> sema;
  IrModule module;
  TypeLayoutRegistry layouts;
  ToolConfig config;
  CheckStats check_stats;
  bool ok = false;

  // Renders all diagnostics (for examples and error reporting). Null-safe:
  // a default-constructed Compilation has no DiagEngine yet.
  std::string Errors() const { return diags ? diags->Render() : std::string(); }
};

// Compiles `files` (prepending the prelude unless disabled). Never returns
// null; check `->ok`.
std::unique_ptr<Compilation> Compile(const std::vector<SourceFile>& files,
                                     const ToolConfig& config);

// Convenience: compile a single snippet named "input.mc".
std::unique_ptr<Compilation> CompileOne(const std::string& text, const ToolConfig& config);

// Builds a VM for the compilation with cost/feature settings derived from
// the ToolConfig (plus any overrides the caller makes afterwards).
std::unique_ptr<Vm> MakeVm(const Compilation& comp, VmConfig vm_cfg = VmConfig{});

// Same settings derivation, but compiles the module to ivybc bytecode and
// returns the fast interpreter. `bc` may be a module compiled earlier (e.g.
// shared across workload functions); when null, one is compiled here.
// Returns null only if bytecode compilation fails (capacity limits).
std::unique_ptr<BcVm> MakeBcVm(const Compilation& comp, VmConfig vm_cfg = VmConfig{},
                               std::shared_ptr<const BcModule> bc = nullptr,
                               std::string* err = nullptr);

}  // namespace ivy

#endif  // SRC_DRIVER_COMPILER_H_
