#include "src/driver/compiler.h"

#include "src/kernel/prelude.h"
#include "src/mc/lexer.h"
#include "src/mc/parser.h"
#include "src/vm/builtins.h"

namespace ivy {

std::unique_ptr<Compilation> Compile(const std::vector<SourceFile>& files,
                                     const ToolConfig& config) {
  auto comp = std::make_unique<Compilation>();
  comp->config = config;
  comp->diags = std::make_unique<DiagEngine>(&comp->sm);

  std::vector<int32_t> file_ids;
  if (config.include_prelude) {
    file_ids.push_back(comp->sm.AddFile("<prelude>", PreludeSource()));
  }
  for (const SourceFile& f : files) {
    file_ids.push_back(comp->sm.AddFile(f.name, f.text));
  }

  // Lex + parse every file into one Program (whole-program merge).
  for (int32_t id : file_ids) {
    Lexer lexer(comp->sm, id, comp->diags.get());
    Parser parser(&comp->prog, lexer.Lex(), comp->diags.get());
    parser.ParseTranslationUnit();
  }
  if (!comp->diags->ok()) {
    return comp;
  }

  comp->sema = std::make_unique<Sema>(&comp->prog, comp->diags.get(),
                                      [](const std::string& name) {
                                        return BuiltinIdForName(name);
                                      });
  if (!comp->sema->Run()) {
    return comp;
  }

  LowerOptions lopts;
  lopts.deputy = config.deputy;
  lopts.discharge = config.discharge;
  Lowerer lowerer(&comp->prog, comp->sema.get(), comp->diags.get(), lopts);
  comp->module = lowerer.Lower();
  comp->check_stats = lowerer.check_stats();
  if (!comp->diags->ok()) {
    return comp;
  }

  comp->layouts = TypeLayoutRegistry::Build(comp->prog);
  comp->ok = true;
  return comp;
}

std::unique_ptr<Compilation> CompileOne(const std::string& text, const ToolConfig& config) {
  return Compile({SourceFile{"input.mc", text}}, config);
}

std::unique_ptr<Vm> MakeVm(const Compilation& comp, VmConfig vm_cfg) {
  vm_cfg.ccount = comp.config.ccount;
  vm_cfg.smp = comp.config.smp;
  vm_cfg.track_locals = comp.config.track_locals;
  vm_cfg.rc_width_bits = comp.config.rc_width_bits;
  return std::make_unique<Vm>(&comp.module, &comp.layouts, vm_cfg);
}

}  // namespace ivy
