#include "src/driver/compiler.h"

#include "src/tool/pipeline.h"

namespace ivy {

// Compile()/CompileOne() are compatibility shims over the unified pipeline:
// the frontend sequence lives in Pipeline::Compile (src/tool/pipeline.cc),
// and the flat ToolConfig maps onto a PipelineBuilder.
std::unique_ptr<Compilation> Compile(const std::vector<SourceFile>& files,
                                     const ToolConfig& config) {
  return PipelineBuilder::FromToolConfig(config).Build().Compile(files);
}

std::unique_ptr<Compilation> CompileOne(const std::string& text, const ToolConfig& config) {
  return Compile({SourceFile{"input.mc", text}}, config);
}

std::unique_ptr<Vm> MakeVm(const Compilation& comp, VmConfig vm_cfg) {
  vm_cfg.ccount = comp.config.ccount;
  vm_cfg.smp = comp.config.smp;
  vm_cfg.track_locals = comp.config.track_locals;
  vm_cfg.rc_width_bits = comp.config.rc_width_bits;
  return std::make_unique<Vm>(&comp.module, &comp.layouts, vm_cfg);
}

}  // namespace ivy
