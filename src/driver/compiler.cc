#include "src/driver/compiler.h"

#include "src/bc/compile.h"
#include "src/tool/pipeline.h"

namespace ivy {

// Compile()/CompileOne() are compatibility shims over the unified pipeline:
// the frontend sequence lives in Pipeline::Compile (src/tool/pipeline.cc),
// and the flat ToolConfig maps onto a PipelineBuilder.
std::unique_ptr<Compilation> Compile(const std::vector<SourceFile>& files,
                                     const ToolConfig& config) {
  return PipelineBuilder::FromToolConfig(config).Build().Compile(files);
}

std::unique_ptr<Compilation> CompileOne(const std::string& text, const ToolConfig& config) {
  return Compile({SourceFile{"input.mc", text}}, config);
}

std::unique_ptr<Vm> MakeVm(const Compilation& comp, VmConfig vm_cfg) {
  vm_cfg.ccount = comp.config.ccount;
  vm_cfg.smp = comp.config.smp;
  vm_cfg.track_locals = comp.config.track_locals;
  vm_cfg.rc_width_bits = comp.config.rc_width_bits;
  return std::make_unique<Vm>(&comp.module, &comp.layouts, vm_cfg);
}

std::unique_ptr<BcVm> MakeBcVm(const Compilation& comp, VmConfig vm_cfg,
                               std::shared_ptr<const BcModule> bc, std::string* err) {
  vm_cfg.ccount = comp.config.ccount;
  vm_cfg.smp = comp.config.smp;
  vm_cfg.track_locals = comp.config.track_locals;
  vm_cfg.rc_width_bits = comp.config.rc_width_bits;
  if (bc == nullptr) {
    bc = CompileToBc(comp.module, err);
    if (bc == nullptr) {
      return nullptr;
    }
  }
  return std::make_unique<BcVm>(std::move(bc), &comp.layouts, vm_cfg);
}

}  // namespace ivy
