// CCount type layout registry (§2.2).
//
// CCount "requires accurate type information when objects are freed, copied
// (memcpy), or cleared (memset)": to free an object soundly its *outgoing*
// pointer fields must first stop contributing to their targets' reference
// counts. This registry is that type information: for every record type id,
// the byte offsets of its pointer-typed slots (recursing through nested
// records and arrays). The paper hand-described 32 layouts; we derive them
// from the Mini-C declarations, which is what the authors say the annotation
// repository (§3.2) should eventually provide.
//
// Pipeline integration: registered as the "ccount" ToolPass (see
// src/tool/passes.cc) — layout metrics always, plus the VM's free-audit
// findings when a finished run is attached to the AnalysisContext.
#ifndef SRC_CCOUNT_LAYOUTS_H_
#define SRC_CCOUNT_LAYOUTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/mc/ast.h"

namespace ivy {

// Pseudo type ids used at allocation sites without a record type.
constexpr int32_t kTypeIdUnknown = -1;   // no RTTI: free cannot scan (unsound)
constexpr int32_t kTypeIdNoPtr = -2;     // payload has no pointers (char/int)
constexpr int32_t kTypeIdAllPtr = -3;    // every 8-byte word is a pointer

struct TypeLayout {
  std::string name;
  int64_t stride = 0;                 // size of one record; arrays repeat it
  std::vector<int64_t> ptr_offsets;   // pointer slots within one record
};

class TypeLayoutRegistry {
 public:
  // Derives a layout for every record in `prog` (indexed by type_id).
  static TypeLayoutRegistry Build(const Program& prog);

  // Returns the layout for a record type id, or nullptr for pseudo ids.
  const TypeLayout* Get(int32_t type_id) const;

  int count() const { return static_cast<int>(layouts_.size()); }

  // Number of record types that contain at least one pointer (E3 stat:
  // "we had to describe the layout of N types").
  int PointerBearingCount() const;

 private:
  std::vector<TypeLayout> layouts_;
};

}  // namespace ivy

#endif  // SRC_CCOUNT_LAYOUTS_H_
