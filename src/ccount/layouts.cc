#include "src/ccount/layouts.h"

namespace ivy {

namespace {

void Collect(const Type* t, int64_t base, std::vector<int64_t>* out) {
  switch (t->kind) {
    case TypeKind::kPointer:
      out->push_back(base);
      return;
    case TypeKind::kArray: {
      int64_t esz = TypeSize(t->elem);
      for (int64_t i = 0; i < t->array_len; ++i) {
        Collect(t->elem, base + i * esz, out);
      }
      return;
    }
    case TypeKind::kRecord: {
      for (const RecordField& f : t->record->fields) {
        Collect(f.type, base + f.offset, out);
      }
      return;
    }
    default:
      return;
  }
}

}  // namespace

TypeLayoutRegistry TypeLayoutRegistry::Build(const Program& prog) {
  TypeLayoutRegistry reg;
  reg.layouts_.resize(prog.records.size());
  for (const RecordDecl* rec : prog.records) {
    if (rec->type_id < 0 || static_cast<size_t>(rec->type_id) >= reg.layouts_.size()) {
      continue;
    }
    TypeLayout& layout = reg.layouts_[static_cast<size_t>(rec->type_id)];
    layout.name = rec->name;
    layout.stride = rec->size;
    for (const RecordField& f : rec->fields) {
      // Union members alias; collecting every arm would double-count. For
      // unions we conservatively skip pointer scanning unless every member is
      // a pointer at offset 0 (then one scan slot suffices).
      Collect(f.type, f.offset, &layout.ptr_offsets);
      if (rec->is_union) {
        break;  // scan only the first member's view of the storage
      }
    }
  }
  return reg;
}

const TypeLayout* TypeLayoutRegistry::Get(int32_t type_id) const {
  if (type_id < 0 || static_cast<size_t>(type_id) >= layouts_.size()) {
    return nullptr;
  }
  return &layouts_[static_cast<size_t>(type_id)];
}

int TypeLayoutRegistry::PointerBearingCount() const {
  int n = 0;
  for (const TypeLayout& l : layouts_) {
    if (!l.ptr_offsets.empty()) {
      ++n;
    }
  }
  return n;
}

}  // namespace ivy
