// The persistent analysis store: a versioned on-disk snapshot of a
// session's converged facts, so a fresh process warm-starts from the
// previous run's fixpoint instead of paying a full cold analysis — the
// paper's "analysis cost scales with the edit" property extended across
// process restarts, and the exchange medium for multi-process distributed
// relink (tools/annolink).
//
// File layout (little-endian):
//
//   offset  size  field
//   0       1     magic0 = 0xA7
//   1       1     magic1 = 0xD5        (store; the wire protocol is 0xDB)
//   2       1     version = kStoreVersion
//   3       1     flags (bit0 = linked, bit1 = converged; others reserved)
//   4       ...   body: WireWriter-encoded sections (src/server/wire.h)
//
// Body encoding:
//
//   u64  corpus_digest          pipeline recipe hash — see
//                               AnalysisSession::CorpusDigest(); a mismatch
//                               rejects the whole file (stale recipe)
//   u32  module_count
//        per module:            name, source digest, sources, and — when
//                               `analyzed` — the incremental snapshot
//                               (preamble/function/signature fingerprints,
//                               import signature, link name sets) plus the
//                               module's unstamped canonical findings
//   u32  summary_count
//        per row:               module, function, FuncSummary::Canonical()
//
// Every field of a module record is always written (zeroed when
// !analyzed), so the decoder is total: fixed schema, no optional sections.
// Decoders are bounds-checked in the wire.h style — truncated, oversized,
// or mutated input returns false, never a crash (fuzzed in
// tests/store_test.cc).
//
// Version policy: strict. kStoreVersion bumps on any schema change and a
// version mismatch rejects the file — a store is a cache of re-derivable
// facts, so the correct fallback is always a cold run, never a migration.
//
// Concurrency: the store file is shared by annolink's worker processes.
// Writers take an advisory flock on `<path>.lock` (StoreLock), write
// `<path>.tmp.<pid>`, and rename() over `<path>` — readers of the plain
// path therefore always see a complete file (append-then-swap), and a
// worker killed mid-merge leaves either the old or the new store, never a
// torn one.
#ifndef SRC_STORE_STORE_H_
#define SRC_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ivy {

inline constexpr uint8_t kStoreMagic0 = 0xA7;
inline constexpr uint8_t kStoreMagic1 = 0xD5;
// v2: function fingerprints switched to the linear arena-slab hash
// (src/analysis/fingerprint.h) — old stored fingerprints are incomparable.
inline constexpr uint8_t kStoreVersion = 2;
inline constexpr uint8_t kStoreFlagLinked = 1u << 0;
inline constexpr uint8_t kStoreFlagConverged = 1u << 1;
inline constexpr size_t kStoreHeaderSize = 4;
// A store holds sources + facts for one corpus; far below this in practice.
inline constexpr uint64_t kMaxStoreBytes = 256ull << 20;

// One module's persisted state. When `analyzed` is false only the sources
// are meaningful (the module was dirty at save time — its snapshot fields
// are written zeroed and it re-analyzes cold on load).
struct StoreModule {
  std::string name;
  uint64_t source_digest = 0;  // SourcesDigest(files)
  std::vector<std::pair<std::string, std::string>> files;  // (name, text)

  bool analyzed = false;
  bool ok = false;  // compiled successfully (false: compile_errors applies)
  std::string compile_errors;
  uint64_t preamble_fp = 0;
  // function name -> (full fingerprint, signature fingerprint)
  std::map<std::string, std::pair<uint64_t, uint64_t>> func_fps;
  std::string import_sig;
  bool has_link_names = false;
  std::vector<std::string> defined_names;
  std::vector<std::string> extern_refs;
  // Unstamped canonical finding JSON (Finding::ToJson(nullptr).Dump(-1)),
  // exactly what the session caches per module.
  std::vector<std::string> findings_canon;
};

struct StoreFile {
  uint64_t corpus_digest = 0;
  bool linked = false;     // a RunLinked() table (vs per-module Run() only)
  bool converged = false;  // table reached its fixpoint; false after a
                           // mid-run crash — loaders re-derive from scratch
  std::map<std::string, StoreModule> modules;
  // (module, function) -> FuncSummary::Canonical()
  std::map<std::pair<std::string, std::string>, std::string> summaries;
};

// In-memory encode/decode (the unit the format tests fuzz).
std::string EncodeStore(const StoreFile& sf);
bool DecodeStore(const std::string& bytes, StoreFile* out, std::string* err);

// Whole-file read. Returns false (with *err) on I/O errors, oversized
// files, or any decode failure.
bool ReadStoreFile(const std::string& path, StoreFile* out, std::string* err);

// Atomic replace: write `<path>.tmp.<pid>`, rename() over `<path>`. Does
// NOT take the lock — for callers that already hold a StoreLock (the
// worker merge) or own the file exclusively (a coordinator, a daemon).
bool WriteStoreFile(const std::string& path, const StoreFile& sf, std::string* err);

// RAII advisory lock on `<path>.lock` — serializes the workers'
// read-merge-write cycles against each other. Blocks until acquired.
class StoreLock {
 public:
  StoreLock() = default;
  ~StoreLock() { Release(); }
  StoreLock(const StoreLock&) = delete;
  StoreLock& operator=(const StoreLock&) = delete;

  bool Acquire(const std::string& store_path, std::string* err);
  void Release();
  bool held() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// Locked read-modify-write convenience: lock, read-or-empty, mutate via
// `fn`, write, unlock. `fn` returns false to abort without writing.
bool UpdateStoreFileLocked(const std::string& path,
                           bool (*fn)(StoreFile*, void*), void* arg,
                           std::string* err);

// FNV-1a 64 over length-framed (name, text) pairs — the per-module source
// identity the warm-start check compares.
uint64_t SourcesDigest(const std::vector<std::pair<std::string, std::string>>& files);
uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed);

}  // namespace ivy

#endif  // SRC_STORE_STORE_H_
