#include "src/store/store.h"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/server/wire.h"

namespace ivy {

namespace {

void SetErr(std::string* err, const std::string& what) {
  if (err != nullptr) {
    *err = what;
  }
}

void SetErrno(std::string* err, const std::string& what) {
  if (err != nullptr) {
    *err = what + ": " + std::strerror(errno);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Digests
// ---------------------------------------------------------------------------

uint64_t Fnv1a64(const void* data, size_t n, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SourcesDigest(const std::vector<std::pair<std::string, std::string>>& files) {
  // Length framing keeps ("ab","c") and ("a","bc") distinct.
  uint64_t h = 14695981039346656037ull;
  for (const auto& [name, text] : files) {
    uint64_t n = name.size();
    h = Fnv1a64(&n, sizeof n, h);
    h = Fnv1a64(name.data(), name.size(), h);
    uint64_t t = text.size();
    h = Fnv1a64(&t, sizeof t, h);
    h = Fnv1a64(text.data(), text.size(), h);
  }
  return h;
}

// ---------------------------------------------------------------------------
// Encode / decode
// ---------------------------------------------------------------------------

std::string EncodeStore(const StoreFile& sf) {
  std::string out;
  out.push_back(static_cast<char>(kStoreMagic0));
  out.push_back(static_cast<char>(kStoreMagic1));
  out.push_back(static_cast<char>(kStoreVersion));
  uint8_t flags = 0;
  if (sf.linked) {
    flags |= kStoreFlagLinked;
  }
  if (sf.converged) {
    flags |= kStoreFlagConverged;
  }
  out.push_back(static_cast<char>(flags));

  WireWriter w;
  w.PutU64(sf.corpus_digest);
  w.PutU32(static_cast<uint32_t>(sf.modules.size()));
  for (const auto& [name, m] : sf.modules) {
    (void)name;
    w.PutStr(m.name);
    w.PutU64(m.source_digest);
    w.PutU32(static_cast<uint32_t>(m.files.size()));
    for (const auto& [fname, text] : m.files) {
      w.PutStr(fname);
      w.PutStr(text);
    }
    w.PutU8(m.analyzed ? 1 : 0);
    w.PutU8(m.ok ? 1 : 0);
    w.PutStr(m.compile_errors);
    w.PutU64(m.preamble_fp);
    w.PutU32(static_cast<uint32_t>(m.func_fps.size()));
    for (const auto& [fname, fp] : m.func_fps) {
      w.PutStr(fname);
      w.PutU64(fp.first);
      w.PutU64(fp.second);
    }
    w.PutStr(m.import_sig);
    w.PutU8(m.has_link_names ? 1 : 0);
    w.PutStrVec(m.defined_names);
    w.PutStrVec(m.extern_refs);
    w.PutStrVec(m.findings_canon);
  }
  w.PutU32(static_cast<uint32_t>(sf.summaries.size()));
  for (const auto& [key, canon] : sf.summaries) {
    w.PutStr(key.first);
    w.PutStr(key.second);
    w.PutStr(canon);
  }
  out += w.Take();
  return out;
}

bool DecodeStore(const std::string& bytes, StoreFile* out, std::string* err) {
  *out = StoreFile{};
  if (bytes.size() < kStoreHeaderSize) {
    SetErr(err, "store file shorter than its header");
    return false;
  }
  const uint8_t m0 = static_cast<uint8_t>(bytes[0]);
  const uint8_t m1 = static_cast<uint8_t>(bytes[1]);
  const uint8_t version = static_cast<uint8_t>(bytes[2]);
  const uint8_t flags = static_cast<uint8_t>(bytes[3]);
  if (m0 != kStoreMagic0 || m1 != kStoreMagic1) {
    SetErr(err, "bad store magic");
    return false;
  }
  if (version != kStoreVersion) {
    SetErr(err, "unsupported store version " + std::to_string(version) +
                    " (this build reads version " +
                    std::to_string(kStoreVersion) + ")");
    return false;
  }
  if ((flags & ~(kStoreFlagLinked | kStoreFlagConverged)) != 0) {
    SetErr(err, "unknown store flags");
    return false;
  }
  out->linked = (flags & kStoreFlagLinked) != 0;
  out->converged = (flags & kStoreFlagConverged) != 0;

  const std::string body = bytes.substr(kStoreHeaderSize);
  WireReader r(body);
  if (!r.GetU64(&out->corpus_digest)) {
    SetErr(err, "truncated store body");
    return false;
  }
  uint32_t module_count = 0;
  if (!r.GetU32(&module_count) || module_count > body.size()) {
    // Every record is several bytes long, so a count beyond the body size
    // is malformed — reject it before looping (bounds, not trust).
    SetErr(err, "bad module count");
    return false;
  }
  for (uint32_t i = 0; i < module_count && r.ok(); ++i) {
    StoreModule m;
    uint8_t analyzed = 0;
    uint8_t ok = 0;
    uint8_t has_names = 0;
    uint32_t file_count = 0;
    uint32_t fp_count = 0;
    if (!r.GetStr(&m.name) || !r.GetU64(&m.source_digest) ||
        !r.GetU32(&file_count) || file_count > body.size()) {
      SetErr(err, "malformed module record");
      return false;
    }
    for (uint32_t f = 0; f < file_count; ++f) {
      std::string fname;
      std::string text;
      if (!r.GetStr(&fname) || !r.GetStr(&text)) {
        SetErr(err, "malformed module sources");
        return false;
      }
      m.files.emplace_back(std::move(fname), std::move(text));
    }
    if (!r.GetU8(&analyzed) || !r.GetU8(&ok) || !r.GetStr(&m.compile_errors) ||
        !r.GetU64(&m.preamble_fp) || !r.GetU32(&fp_count) ||
        fp_count > body.size()) {
      SetErr(err, "malformed module record");
      return false;
    }
    for (uint32_t f = 0; f < fp_count; ++f) {
      std::string fname;
      uint64_t full = 0;
      uint64_t sig = 0;
      if (!r.GetStr(&fname) || !r.GetU64(&full) || !r.GetU64(&sig)) {
        SetErr(err, "malformed fingerprint table");
        return false;
      }
      m.func_fps[std::move(fname)] = {full, sig};
    }
    if (!r.GetStr(&m.import_sig) || !r.GetU8(&has_names) ||
        !r.GetStrVec(&m.defined_names) || !r.GetStrVec(&m.extern_refs) ||
        !r.GetStrVec(&m.findings_canon)) {
      SetErr(err, "malformed module record");
      return false;
    }
    if (analyzed > 1 || ok > 1 || has_names > 1) {
      SetErr(err, "malformed module flags");
      return false;
    }
    m.analyzed = analyzed != 0;
    m.ok = ok != 0;
    m.has_link_names = has_names != 0;
    if (m.name.empty() || out->modules.count(m.name) != 0) {
      SetErr(err, "empty or duplicate module name in store");
      return false;
    }
    std::string key = m.name;
    out->modules.emplace(std::move(key), std::move(m));
  }
  uint32_t summary_count = 0;
  if (!r.GetU32(&summary_count) || summary_count > body.size()) {
    SetErr(err, "bad summary count");
    return false;
  }
  for (uint32_t i = 0; i < summary_count; ++i) {
    std::string module;
    std::string function;
    std::string canon;
    if (!r.GetStr(&module) || !r.GetStr(&function) || !r.GetStr(&canon)) {
      SetErr(err, "malformed summary row");
      return false;
    }
    out->summaries[{std::move(module), std::move(function)}] = std::move(canon);
  }
  if (!r.Finish()) {
    SetErr(err, "trailing bytes after store payload");
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// File I/O
// ---------------------------------------------------------------------------

bool ReadStoreFile(const std::string& path, StoreFile* out, std::string* err) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    SetErr(err, "cannot open store '" + path + "'");
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    SetErr(err, "read error on store '" + path + "'");
    return false;
  }
  std::string bytes = buf.str();
  if (bytes.size() > kMaxStoreBytes) {
    SetErr(err, "store '" + path + "' exceeds the size cap");
    return false;
  }
  std::string derr;
  if (!DecodeStore(bytes, out, &derr)) {
    SetErr(err, "store '" + path + "': " + derr);
    return false;
  }
  return true;
}

bool WriteStoreFile(const std::string& path, const StoreFile& sf, std::string* err) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      SetErr(err, "cannot create '" + tmp + "'");
      return false;
    }
    const std::string bytes = EncodeStore(sf);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out.good()) {
      SetErr(err, "write error on '" + tmp + "'");
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetErrno(err, "rename('" + tmp + "' -> '" + path + "')");
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// StoreLock
// ---------------------------------------------------------------------------

bool StoreLock::Acquire(const std::string& store_path, std::string* err) {
  Release();
  const std::string lock_path = store_path + ".lock";
  int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    SetErrno(err, "open('" + lock_path + "')");
    return false;
  }
  // Blocking: workers queue up behind each other's merge cycles; a cycle is
  // one read + one rename, so the wait is short.
  int rc;
  do {
    rc = ::flock(fd, LOCK_EX);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    SetErrno(err, "flock('" + lock_path + "')");
    ::close(fd);
    return false;
  }
  fd_ = fd;
  return true;
}

void StoreLock::Release() {
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
    fd_ = -1;
  }
}

bool UpdateStoreFileLocked(const std::string& path, bool (*fn)(StoreFile*, void*),
                           void* arg, std::string* err) {
  StoreLock lock;
  if (!lock.Acquire(path, err)) {
    return false;
  }
  StoreFile sf;
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0) {
    if (!ReadStoreFile(path, &sf, err)) {
      return false;
    }
  }
  if (!fn(&sf, arg)) {
    return false;  // fn sets *err (or aborts deliberately)
  }
  return WriteStoreFile(path, sf, err);
}

}  // namespace ivy
