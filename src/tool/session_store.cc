// The persistent half of AnalysisSession: SaveStore/LoadStore (warm starts
// across process restarts) and the multi-process distributed relink
// (RunLinkedDistributed / RunStoreWorker). Split from session.cc so the
// in-memory pipeline code stays independent of src/store.
//
// Soundness of the warm start and of cold worker re-analysis both reduce to
// the determinism contract: analysis is a pure function of (sources, recipe,
// imported facts), so restored state is byte-identical to what re-analysis
// would produce, and a worker that re-analyzes a module cold against the
// coordinator's round table exports exactly the rows an in-process round
// would have. Crash recovery rests on the fixpoint being monotone from a
// retracted base: any store written mid-run holds a table ≤ the least
// fixpoint, and the fixpoint is source-determined, so reloading an
// unconverged store with every module dirty converges to identical bytes.
#include <cstdio>
#include <future>
#include <utility>

#include "src/store/store.h"
#include "src/support/clock.h"
#include "src/support/subprocess.h"
#include "src/support/trace.h"
#include "src/tool/session.h"
#include "src/tool/session_state.h"

namespace ivy {

namespace {

void SetErr(std::string* err, const std::string& what) {
  if (err != nullptr) {
    *err = what;
  }
}

std::vector<std::pair<std::string, std::string>> FilePairs(
    const std::vector<SourceFile>& files) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(files.size());
  for (const SourceFile& f : files) {
    out.emplace_back(f.name, f.text);
  }
  return out;
}

// Strict parse of one stored summary row; the store's canon strings must
// round-trip exactly or the fixpoint diff would chase phantom changes.
bool ParseSummaryRow(const std::pair<std::string, std::string>& key,
                     const std::string& canon, FuncSummary* out, std::string* err) {
  std::string jerr;
  Json j = Json::Parse(canon, &jerr);
  if (!jerr.empty()) {
    SetErr(err, "bad summary row " + key.first + ":" + key.second + ": " + jerr);
    return false;
  }
  std::string serr;
  if (!FuncSummary::FromJson(j, out, &serr)) {
    SetErr(err, "bad summary row " + key.first + ":" + key.second + ": " + serr);
    return false;
  }
  if (out->module != key.first || out->function != key.second) {
    SetErr(err, "summary row key mismatch for " + key.first + ":" + key.second);
    return false;
  }
  if (out->Canonical() != canon) {
    SetErr(err, "summary row " + key.first + ":" + key.second +
                    " is not in canonical form");
    return false;
  }
  return true;
}

bool ParseFindings(const StoreModule& rec, std::vector<Finding>* out,
                   std::string* err) {
  out->clear();
  for (const std::string& canon : rec.findings_canon) {
    std::string jerr;
    Json j = Json::Parse(canon, &jerr);
    if (!jerr.empty()) {
      SetErr(err, "bad finding in store record '" + rec.name + "': " + jerr);
      return false;
    }
    out->push_back(Finding::FromJson(j));
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Corpus digest
// ---------------------------------------------------------------------------

uint64_t AnalysisSession::CorpusDigest() const {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](const std::string& s) {
    uint64_t n = s.size();
    h = Fnv1a64(&n, sizeof n, h);
    h = Fnv1a64(s.data(), s.size(), h);
  };
  for (const std::string& step : pipeline_.Plan()) {
    mix(step);
  }
  for (const std::string& tool : pipeline_.tools()) {
    mix(tool);
  }
  for (const auto& [tool, opts] : pipeline_.tool_options()) {
    for (const auto& [key, value] : opts.entries()) {
      if (key == "shards") {
        continue;  // sharding cannot change results (the PR 2 contract)
      }
      mix(tool);
      mix(key);
      mix(value);
    }
  }
  const ToolConfig& c = pipeline_.config();
  const uint8_t knobs[7] = {
      static_cast<uint8_t>(c.deputy),       static_cast<uint8_t>(c.discharge),
      static_cast<uint8_t>(c.ccount),       static_cast<uint8_t>(c.smp),
      static_cast<uint8_t>(c.track_locals), static_cast<uint8_t>(c.include_prelude),
      static_cast<uint8_t>(pipeline_.field_sensitive())};
  h = Fnv1a64(knobs, sizeof knobs, h);
  const uint64_t rc_bits = static_cast<uint64_t>(c.rc_width_bits);
  h = Fnv1a64(&rc_bits, sizeof rc_bits, h);
  return h;
}

// ---------------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------------

StoreFile AnalysisSession::BuildStoreSnapshot(bool linked, bool converged) const {
  StoreFile sf;
  sf.corpus_digest = CorpusDigest();
  sf.linked = linked;
  sf.converged = converged;
  for (const auto& [name, st] : modules_) {
    StoreModule m;
    m.name = name;
    m.files = FilePairs(st->files);
    m.source_digest = SourcesDigest(m.files);
    // A dirty module's cached analysis (if any) belongs to *older* sources;
    // persisting the pair would let a loader treat stale facts as current.
    // Dirty modules are stored sources-only and re-analyze cold on load.
    m.analyzed = !st->dirty;
    if (m.analyzed) {
      m.ok = st->ok;
      m.compile_errors = st->compile_errors;
      m.preamble_fp = st->preamble_fp;
      for (const auto& [fname, fp] : st->func_fps) {
        auto sig = st->sig_fps.find(fname);
        m.func_fps[fname] = {fp, sig != st->sig_fps.end() ? sig->second : 0};
      }
      m.import_sig = st->import_sig;
      m.has_link_names = st->have_link_names;
      m.defined_names.assign(st->defined_names.begin(), st->defined_names.end());
      m.extern_refs.assign(st->extern_refs.begin(), st->extern_refs.end());
      if (st->ok) {
        for (const Finding& f : st->result.findings) {
          // Unstamped, location-raw canonical form — exactly the per-module
          // cache MergeResult stamps, so a restored module merges
          // byte-identically.
          m.findings_canon.push_back(f.ToJson(nullptr).Dump(-1));
        }
      }
    }
    sf.modules.emplace(name, std::move(m));
  }
  for (const auto& [key, row] : link_table_.summaries()) {
    sf.summaries[key] = row.Canonical();
  }
  return sf;
}

bool AnalysisSession::ImportStoreRecord(const StoreModule& rec, std::string* err) {
  if (!rec.analyzed) {
    SetErr(err, "module '" + rec.name + "' has no analysis state to import");
    return false;
  }
  // Parse everything before touching state, so a malformed record never
  // leaves a half-imported module behind.
  std::vector<Finding> findings;
  if (rec.ok && !ParseFindings(rec, &findings, err)) {
    return false;
  }
  auto& st = modules_[rec.name];
  if (st == nullptr) {
    st = std::make_unique<ModuleState>();
  }
  if (st->files.empty()) {
    for (const auto& [fname, text] : rec.files) {
      st->files.push_back(SourceFile{fname, text});
    }
  } else if (SourcesDigest(FilePairs(st->files)) != rec.source_digest) {
    SetErr(err, "module '" + rec.name + "': record sources differ from the session's");
    return false;
  }

  const bool keep_names = !rec.has_link_names && st->have_link_names;
  // Destroy the live context before touching the snapshot/hint storage it
  // points into (hints.pointsto_prev → pt_snapshot, link seeds).
  st->ctx.reset();
  st->comp.reset();
  st->dirty = false;
  st->ok = rec.ok;
  st->analyzed_now = false;
  st->compile_errors = rec.compile_errors;
  // The in-memory solver snapshots (points-to deltas, may-block memo) are
  // not persisted: the next source edit re-solves this module cold, which
  // the warm gate (have_snapshot) makes exact by construction.
  st->have_snapshot = false;
  st->have_mayblock = false;
  st->prev_mayblock.clear();
  st->pt_snapshot = PointsToSnapshot{};
  st->callee_hashes.clear();
  st->func_refs.clear();
  st->preamble_fp = rec.preamble_fp;
  st->func_fps.clear();
  st->sig_fps.clear();
  for (const auto& [fname, fp] : rec.func_fps) {
    st->func_fps[fname] = fp.first;
    st->sig_fps[fname] = fp.second;
  }
  st->import_sig = rec.import_sig;
  st->link_seeds.clear();
  if (!keep_names) {
    // A compile-failed worker record carries no names; the coordinator
    // keeps the module's previous edge structure — exactly what the
    // in-process path does when Analyze never runs.
    st->have_link_names = rec.has_link_names;
    st->defined_names =
        std::set<std::string>(rec.defined_names.begin(), rec.defined_names.end());
    st->extern_refs =
        std::set<std::string>(rec.extern_refs.begin(), rec.extern_refs.end());
  }
  st->stats = ModuleStats{};
  st->hints = IncrementalHints{};
  st->result = PipelineResult{};
  st->result.findings = std::move(findings);
  return true;
}

bool AnalysisSession::SaveStore(const std::string& path, std::string* err) const {
  const bool converged = linked_ever_ && link_stats_.converged;
  return WriteStoreFile(path, BuildStoreSnapshot(linked_ever_, converged), err);
}

bool AnalysisSession::LoadStore(const std::string& path, std::string* err) {
  StoreFile sf;
  if (!ReadStoreFile(path, &sf, err)) {
    return false;
  }
  if (sf.corpus_digest != CorpusDigest()) {
    SetErr(err, "store '" + path + "' has a stale corpus digest (the analysis recipe changed)");
    return false;
  }
  // Validate everything up front: LoadStore either restores or leaves the
  // session untouched — never half-warm.
  std::vector<FuncSummary> rows;
  rows.reserve(sf.summaries.size());
  for (const auto& [key, canon] : sf.summaries) {
    FuncSummary s;
    if (!ParseSummaryRow(key, canon, &s, err)) {
      return false;
    }
    rows.push_back(std::move(s));
  }
  for (const auto& [name, rec] : sf.modules) {
    (void)name;
    std::vector<Finding> scratch;
    if (rec.analyzed && rec.ok && !ParseFindings(rec, &scratch, err)) {
      return false;
    }
  }

  for (const auto& [name, rec] : sf.modules) {
    auto it = modules_.find(name);
    if (it != modules_.end()) {
      ModuleState* st = it->second.get();
      if (SourcesDigest(FilePairs(st->files)) != rec.source_digest) {
        // The session already holds *newer* sources: keep them (and the
        // dirty bit), but adopt the record's link-name sets when the
        // session has none — that is the edge structure an in-process
        // session would remember from the pre-edit analysis, and it is
        // what scopes the next RunLinked's retraction component.
        if (rec.has_link_names && !st->have_link_names) {
          st->have_link_names = true;
          st->defined_names =
              std::set<std::string>(rec.defined_names.begin(), rec.defined_names.end());
          st->extern_refs =
              std::set<std::string>(rec.extern_refs.begin(), rec.extern_refs.end());
        }
        continue;
      }
      if (!st->dirty) {
        continue;  // already warm in memory; its state is richer than ours
      }
    }
    if (!rec.analyzed) {
      // Stored mid-edit: sources only, analyzes cold.
      if (it == modules_.end()) {
        std::vector<SourceFile> files;
        for (const auto& [fname, text] : rec.files) {
          files.push_back(SourceFile{fname, text});
        }
        AddModule(name, std::move(files));
      }
      continue;
    }
    if (!ImportStoreRecord(rec, err)) {
      return false;
    }
  }

  link_table_ = AnnoDb();
  for (FuncSummary& s : rows) {
    link_table_.AddSummary(std::move(s));
  }
  linked_ever_ = sf.linked;
  link_stats_ = LinkStats{};
  link_stats_.converged = sf.linked && sf.converged;
  link_stats_.summary_rows = static_cast<int>(link_table_.summaries().size());
  link_conflicts_.clear();
  if (sf.linked) {
    // Rebuilds link_conflicts_ and re-derives the corpus stack facts from
    // the loaded rows — idempotent on a converged table (the facts are part
    // of the canonical rows), so a warm RunLinked sees no diff.
    ComputeLinkStackFacts();
    if (!sf.converged) {
      // The store was written mid-fixpoint (a crash, a killed worker). The
      // table is ≤ the least fixpoint but possibly mixed-round; the one
      // safe warm start is "everything dirty": a monotone re-derivation
      // from the retracted base converges to the same source-determined
      // fixpoint a cold run reaches.
      for (auto& [name, st] : modules_) {
        (void)name;
        st->dirty = true;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Distributed relink
// ---------------------------------------------------------------------------

SessionResult AnalysisSession::RunLinkedDistributed(const DistributedLinkOptions& opts) {
  PrepareLinkedRun();
  const int max_rounds = static_cast<int>(modules_.size()) * 4 + 8;
  const std::string round_path = opts.store_path + ".round";
  SessionResult result;
  std::string err;
  bool failed = false;

  for (;;) {
    if (cancel_requested()) {
      link_stats_.cancelled = true;
      result.cancelled = true;
      break;
    }
    ++link_stats_.rounds;

    std::vector<std::string> dirty_names;
    for (auto& [name, st] : modules_) {
      st->analyzed_now = false;
      if (st->dirty) {
        dirty_names.push_back(name);
      }
    }
    // Fleet observability: one span per coordinator round, one
    // "relink.worker_us" histogram sample per worker (spawn→join for
    // subprocess workers, call duration for in-process ones) — the skew
    // between the fastest and slowest worker is the fleet's idle cost.
    trace::Span round_span("relink.round",
                           {"round", static_cast<int64_t>(link_stats_.rounds)},
                           {"dirty", static_cast<int64_t>(dirty_names.size())});

    if (!dirty_names.empty()) {
      // Publish the round base. Workers read the immutable `.round`
      // snapshot — never the live store — so every worker in a round
      // imports the same pre-round table regardless of sibling merge
      // order; the live store is the merge target they fold deltas into.
      const StoreFile base = BuildStoreSnapshot(/*linked=*/true, /*converged=*/false);
      if (!WriteStoreFile(opts.store_path, base, &err) ||
          !WriteStoreFile(round_path, base, &err)) {
        failed = true;
        break;
      }

      // Deterministic assignment: round-robin over the sorted dirty list.
      // Byte-identity across worker counts is a tested property, so the
      // assignment is a performance choice, not a correctness one.
      const int nworkers =
          std::min<int>(std::max(1, opts.workers), static_cast<int>(dirty_names.size()));
      std::vector<std::vector<std::string>> shards(static_cast<size_t>(nworkers));
      for (size_t i = 0; i < dirty_names.size(); ++i) {
        shards[i % static_cast<size_t>(nworkers)].push_back(dirty_names[i]);
      }

      if (opts.run_worker) {
        std::vector<std::future<std::pair<bool, std::string>>> futures;
        futures.reserve(shards.size());
        for (const std::vector<std::string>& shard : shards) {
          futures.push_back(std::async(std::launch::async, [&opts, shard] {
            trace::Span wspan("relink.worker",
                             {"modules", static_cast<int64_t>(shard.size())});
            const uint64_t t0 = trace::Enabled() ? MonotonicNowNs() : 0;
            std::string werr;
            bool ok = opts.run_worker(shard, &werr);
            if (trace::Enabled()) {
              trace::GetHistogram("relink.worker_us")
                  ->Record((MonotonicNowNs() - t0) / 1000);
            }
            return std::make_pair(ok, werr);
          }));
        }
        for (auto& f : futures) {
          auto [ok, werr] = f.get();
          if (!ok && !failed) {
            failed = true;
            err = werr;
          }
        }
      } else {
        std::vector<Subprocess> procs(shards.size());
        // Subprocess workers trace in their own address space; their rings
        // are invisible here. The coordinator emits one relink.worker span
        // per child covering its observed lifetime (spawn -> join), heap-
        // held so the RAII scope can straddle the two loops.
        std::vector<std::unique_ptr<trace::Span>> wspans(shards.size());
        const uint64_t spawn_t0 = trace::Enabled() ? MonotonicNowNs() : 0;
        for (size_t s = 0; s < shards.size(); ++s) {
          std::string mods;
          for (const std::string& m : shards[s]) {
            if (!mods.empty()) {
              mods += ',';
            }
            mods += m;
          }
          std::vector<std::string> argv = {opts.worker_argv0, "--worker",
                                           "--store", opts.store_path,
                                           "--modules", mods};
          wspans[s] = std::make_unique<trace::Span>(
              "relink.worker",
              trace::SpanArg{"modules", static_cast<int64_t>(shards[s].size())});
          if (!SpawnProcess(argv, &procs[s], &err)) {
            failed = true;
            break;
          }
        }
        // Join every spawned worker even after a failure — no zombies, and
        // the store is quiescent before we decide anything.
        for (size_t s = 0; s < procs.size(); ++s) {
          Subprocess& p = procs[s];
          if (p.pid < 0) {
            wspans[s].reset();
            continue;
          }
          std::string werr;
          bool ok = WaitProcess(&p, &werr);
          wspans[s].reset();
          if (trace::Enabled()) {
            trace::GetHistogram("relink.worker_us")
                ->Record((MonotonicNowNs() - spawn_t0) / 1000);
          }
          if (!ok && !failed) {
            failed = true;
            err = werr;
          }
        }
      }
      if (failed) {
        break;
      }

      StoreFile merged;
      if (!ReadStoreFile(opts.store_path, &merged, &err)) {
        failed = true;
        break;
      }
      LinkTableSnapshot before = SnapshotLinkTable();
      for (const std::string& name : dirty_names) {
        auto rec = merged.modules.find(name);
        if (rec == merged.modules.end() || !rec->second.analyzed) {
          err = "worker produced no result for module '" + name + "'";
          failed = true;
          break;
        }
        if (!ImportStoreRecord(rec->second, &err)) {
          failed = true;
          break;
        }
        modules_[name]->analyzed_now = true;
        link_table_.RetractModule(name);
        for (auto it = merged.summaries.lower_bound({name, std::string()});
             it != merged.summaries.end() && it->first.first == name; ++it) {
          FuncSummary s;
          if (!ParseSummaryRow(it->first, it->second, &s, &err)) {
            failed = true;
            break;
          }
          link_table_.AddSummary(std::move(s));
        }
        if (failed) {
          break;
        }
      }
      if (failed) {
        break;
      }
      link_stats_.module_analyses += static_cast<int>(dirty_names.size());
      ComputeLinkStackFacts();
      std::set<std::string> dirty = DiffLinkTable(before, SnapshotLinkTable());
      result = MergeResult(false);
      if (dirty.empty()) {
        link_stats_.converged = true;
        break;
      }
      for (const std::string& m : dirty) {
        Invalidate(m);
      }
      if (link_stats_.rounds >= max_rounds) {
        break;
      }
      continue;
    }

    // Idle round (warm start, or nothing changed): mirror the in-process
    // round shape — recompute stack facts, diff, converge on no change.
    LinkTableSnapshot before = SnapshotLinkTable();
    ComputeLinkStackFacts();
    std::set<std::string> dirty = DiffLinkTable(before, SnapshotLinkTable());
    result = MergeResult(false);
    if (dirty.empty()) {
      link_stats_.converged = true;
      break;
    }
    for (const std::string& m : dirty) {
      Invalidate(m);
    }
    if (link_stats_.rounds >= max_rounds) {
      break;
    }
  }

  if (failed) {
    result = MergeResult(false);
    Finding f;
    f.tool = "session";
    f.severity = FindingSeverity::kError;
    f.message = "distributed relink failed: " + err;
    result.findings.push_back(std::move(f));
  }
  FinishLinkedRun(max_rounds, &result);

  // Persist the outcome (converged or resumable-unconverged) and drop the
  // round snapshot. A failure to write is reported but does not poison the
  // in-memory result.
  std::string werr;
  if (!result.cancelled && !SaveStore(opts.store_path, &werr)) {
    Finding f;
    f.tool = "session";
    f.severity = FindingSeverity::kError;
    f.message = "distributed relink: cannot write store: " + werr;
    result.findings.push_back(std::move(f));
  }
  std::remove(round_path.c_str());
  return result;
}

bool AnalysisSession::RunStoreWorker(Pipeline pipeline, const std::string& store_path,
                                     const std::vector<std::string>& modules,
                                     std::string* err) {
  StoreFile round;
  if (!ReadStoreFile(store_path + ".round", &round, err)) {
    return false;
  }
  AnalysisSession session(std::move(pipeline));
  if (session.CorpusDigest() != round.corpus_digest) {
    SetErr(err, "round snapshot has a different corpus digest");
    return false;
  }
  // Only the assigned shard is registered; the rest of the corpus is
  // visible solely through the summary table — which is the whole point of
  // summary-based linking (a worker's memory footprint is its shard).
  for (const std::string& name : modules) {
    auto it = round.modules.find(name);
    if (it == round.modules.end()) {
      SetErr(err, "module '" + name + "' is not in the round snapshot");
      return false;
    }
    std::vector<SourceFile> files;
    for (const auto& [fname, text] : it->second.files) {
      files.push_back(SourceFile{fname, text});
    }
    session.AddModule(name, std::move(files));
  }
  for (const auto& [key, canon] : round.summaries) {
    FuncSummary s;
    if (!ParseSummaryRow(key, canon, &s, err)) {
      return false;
    }
    session.link_table_.AddSummary(std::move(s));
  }

  // Plain Run(), not RunLinked: the coordinator owns the fixpoint; a worker
  // contributes exactly one round's worth of analysis. Cold re-analysis is
  // exact by the determinism contract.
  SessionResult r = session.Run();
  if (r.cancelled) {
    SetErr(err, "worker run was cancelled");
    return false;
  }

  // Build the delta: this shard's records + fresh summary rows.
  StoreFile snap = session.BuildStoreSnapshot(/*linked=*/false, /*converged=*/false);
  std::map<std::string, StoreModule> records;
  std::map<std::pair<std::string, std::string>, std::string> rows;
  for (const std::string& name : modules) {
    auto rec = snap.modules.find(name);
    if (rec == snap.modules.end()) {
      SetErr(err, "internal: no snapshot record for '" + name + "'");
      return false;
    }
    records.emplace(name, std::move(rec->second));
    ModuleState* st = session.modules_.find(name)->second.get();
    for (const FuncSummary& row : session.ExtractSummaries(name, *st)) {
      rows[{row.module, row.function}] = row.Canonical();
    }
  }

  // Merge into the live store under the advisory lock: replace our own
  // records and our modules' summary rows, leave everything else (sibling
  // deltas included) untouched, write-temp + rename.
  StoreLock lock;
  if (!lock.Acquire(store_path, err)) {
    return false;
  }
  StoreFile cur;
  if (!ReadStoreFile(store_path, &cur, err)) {
    return false;
  }
  for (auto& [name, rec] : records) {
    for (auto it = cur.summaries.lower_bound({name, std::string()});
         it != cur.summaries.end() && it->first.first == name;) {
      it = cur.summaries.erase(it);
    }
    cur.modules[name] = std::move(rec);
  }
  for (auto& [key, canon] : rows) {
    cur.summaries[key] = std::move(canon);
  }
  return WriteStoreFile(store_path, cur, err);
}

}  // namespace ivy
