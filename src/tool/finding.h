// The unified finding record shared by every tool pass (the API half of the
// paper's "suite of tools" story): one schema for what a tool reports — which
// tool, how severe, where, what, and the witness chain explaining *why*
// (e.g. the call path by which a callee may block). The six bespoke report
// structs (BlockStopReport, LockSafeReport, ...) remain available as
// tool-specific views through ToolResult::DetailAs<>, but everything that
// crosses tool boundaries — merging, JSON export, the annotation repository —
// speaks Finding.
#ifndef SRC_TOOL_FINDING_H_
#define SRC_TOOL_FINDING_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <typeinfo>
#include <vector>

#include "src/support/json.h"
#include "src/support/source.h"

namespace ivy {

class SourceManager;

enum class FindingSeverity { kNote, kWarning, kError };

const char* FindingSeverityName(FindingSeverity s);

struct Finding {
  std::string tool;
  FindingSeverity severity = FindingSeverity::kWarning;
  SourceLoc loc;
  std::string message;
  // The justification chain, innermost first (e.g. caller, callee, the
  // blocking primitive at the root; or the lock cycle for a deadlock).
  std::vector<std::string> witness;
  // Provenance: which corpus module produced this finding. Stamped by
  // AnalysisSession on its merged output; empty for single-program runs
  // (and then absent from the JSON, so legacy exports are unchanged). The
  // annotation repository retracts by this key when a module is re-analyzed.
  std::string module;

  // `sm` is optional: with it the JSON carries a rendered "at" location in
  // addition to the raw file/line/col triple.
  Json ToJson(const SourceManager* sm = nullptr) const;
  static Finding FromJson(const Json& j);

  std::string ToString(const SourceManager* sm = nullptr) const;
};

// One findings query, shared by the annodb_query CLI (file mode), the annod
// server's query handler, and the client library — a single definition of
// "matches" so connected and offline queries can never diverge. Empty fields
// match everything; `function` matches a finding whose witness chain mentions
// the function (bare or as "calls <fn>") or whose message quotes it ('name').
struct FindingQuery {
  std::string function;
  std::string tool;
  std::string module;

  bool Matches(const Finding& f) const;
};

// What one pass returns: findings, scalar metrics (the counters the old
// report structs carried), a one-paragraph summary, and the legacy
// tool-specific report for callers that still want the full view.
class ToolResult {
 public:
  ToolResult() = default;
  explicit ToolResult(std::string tool) : tool_(std::move(tool)) {}

  const std::string& tool() const { return tool_; }

  void AddFinding(Finding f) { findings_.push_back(std::move(f)); }
  const std::vector<Finding>& findings() const { return findings_; }
  std::vector<Finding>& findings() { return findings_; }

  // Findings at least as severe as `min`.
  int CountAtLeast(FindingSeverity min) const;

  void SetMetric(const std::string& key, int64_t v) { metrics_[key] = v; }
  int64_t Metric(const std::string& key, int64_t def = 0) const;
  const std::map<std::string, int64_t>& metrics() const { return metrics_; }

  void set_summary(std::string s) { summary_ = std::move(s); }
  const std::string& summary() const { return summary_; }

  // Legacy view: stores the tool's original report struct. DetailAs is
  // type-checked: asking for the wrong type (e.g. after a registered pass
  // was shadowed by one storing a different report) returns nullptr.
  template <typename T>
  void SetDetail(T value) {
    detail_ = std::make_shared<T>(std::move(value));
    detail_type_ = &typeid(T);
  }
  template <typename T>
  const T* DetailAs() const {
    if (detail_type_ == nullptr || *detail_type_ != typeid(T)) {
      return nullptr;
    }
    return static_cast<const T*>(detail_.get());
  }

  Json ToJson(const SourceManager* sm = nullptr) const;

 private:
  std::string tool_;
  std::vector<Finding> findings_;
  std::map<std::string, int64_t> metrics_;
  std::string summary_;
  std::shared_ptr<const void> detail_;
  const std::type_info* detail_type_ = nullptr;
};

}  // namespace ivy

#endif  // SRC_TOOL_FINDING_H_
