// AnalysisSession: the corpus-level pipeline API (the paper's "apply sound
// static analysis at a large scale" made long-lived).
//
// A session owns a corpus of named modules, one shared worker pool for every
// sharded pass kernel (TaskGroup isolation instead of one pool per pass),
// a frontend cache that lexes the prelude once for the whole corpus, and a
// dirty-tracking layer over AnalysisContext:
//
//   AnalysisSession session = PipelineBuilder()
//                                 .AllTools()
//                                 .ShardFunctions(0)
//                                 .ForEachModule(modules)
//                                 .BuildSession();
//   SessionResult cold = session.Run();          // analyzes every module
//   session.ReplaceFunction("net", "udp_sendmsg", edited_definition);
//   SessionResult warm = session.Run();          // re-analyzes only "net",
//                                                // re-solving only the
//                                                // edited region inside it
//
// Determinism contract (extends PR 2's): the merged findings are
// byte-identical regardless of module registration order, shard count, pool
// size, and cold-vs-incremental execution. Modules merge in sorted-name
// order; within a module the pipeline's request-order merge applies; the
// incremental machinery (points-to warm start, BlockStop may-block
// memoization) is exact, not heuristic — see src/analysis/pointsto.h.
//
// Incremental granularity: a module is the re-analysis unit (clean modules'
// cached results are reused verbatim); within a re-analyzed module,
// per-function dirty bits (src/analysis/fingerprint.h) scope the points-to
// re-solve to the constraints whose origins changed and freeze the may-block
// bits of functions with no call path into the edit. ModuleStats exposes the
// solver counters so tests can assert the dirty region stayed small.
#ifndef SRC_TOOL_SESSION_H_
#define SRC_TOOL_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/support/work_queue.h"
#include "src/tool/pipeline.h"

namespace ivy {

struct StoreFile;    // src/store/store.h
struct StoreModule;

// Per-module outcome of one Run(). `result` is the module's pass output with
// unstamped findings — byte-identical to an independent single-module
// CompileAndRun of the same sources.
struct ModuleRunResult {
  std::string module;
  bool ok = false;          // compiled successfully
  bool reanalyzed = false;  // analyzed during this Run (false: cache reused)
  PipelineResult result;
  std::string compile_errors;
};

struct SessionResult {
  std::vector<ModuleRunResult> modules;  // sorted by module name
  // Every module's findings concatenated in that same order, each stamped
  // with its module name (Finding::module) — the corpus-level merge.
  // Compile failures contribute a severity-error finding from tool
  // "session" so they can never vanish silently.
  std::vector<Finding> findings;
  int modules_analyzed = 0;
  int modules_reused = 0;
  int compile_failures = 0;
  // True when RequestCancel() aborted the run: the result is INCOMPLETE
  // (unanalyzed modules contribute stale or empty findings) and must be
  // discarded. The abandoned modules stay dirty, so the next Run()/
  // RunLinked() resumes exactly where the cancel hit.
  bool cancelled = false;

  const ModuleRunResult* ModuleFor(const std::string& name) const;
  int ErrorCount() const;
};

// Outcome counters of the last RunLinked() fixpoint.
struct LinkStats {
  int rounds = 0;              // analysis rounds until the table stabilized
  int module_analyses = 0;     // sum of modules analyzed across rounds
  int summary_rows = 0;        // rows in the converged fact table
  int cross_edges = 0;         // (importer, definer) module pairs
  bool converged = false;      // false if the safety cap fired or cancelled
  bool cancelled = false;      // RequestCancel() aborted the fixpoint
};

// Multi-process distributed relink (see RunLinkedDistributed). The
// coordinator shards each round's dirty modules across `workers` processes
// that exchange summary deltas through the shared store file at
// `store_path` (src/store/store.h: advisory-locked append-then-swap).
struct DistributedLinkOptions {
  std::string store_path;
  int workers = 3;
  // The binary to exec per shard; it must handle
  //   <worker_argv0> --worker --store <store_path> --modules a,b,c
  // by calling AnalysisSession::RunStoreWorker (tools/annolink does).
  std::string worker_argv0;
  // Test hook: when set, dispatch runs this in-process instead of spawning
  // a process — the distributed protocol becomes unit-testable (and
  // TSan-able) without binary paths.
  std::function<bool(const std::vector<std::string>& modules, std::string* err)>
      run_worker;
};

// Solver-effort counters from a module's most recent analysis — how much of
// it the incremental layer actually re-derived.
struct ModuleStats {
  bool valid = false;   // module exists and was analyzed at least once
  bool cold = true;     // last analysis was a full re-solve
  int dirty_functions = -1;  // fingerprint-dirty functions (-1 when cold)
  int64_t pointsto_propagations = 0;
  int64_t pointsto_seeded_facts = 0;
  int64_t mayblock_evals = 0;
};

class AnalysisSession {
 public:
  // `track_incremental` keeps the name-keyed snapshots that warm later
  // Run()s; the one-shot CompileAndRun shim turns it off.
  explicit AnalysisSession(Pipeline pipeline, bool track_incremental = true);
  ~AnalysisSession();

  AnalysisSession(AnalysisSession&&) = default;
  AnalysisSession& operator=(AnalysisSession&&) = default;

  // Registers (or replaces) a module. Names key provenance and must be
  // unique; re-adding an existing name replaces its sources and marks it
  // dirty — unless the new sources are byte-identical to a clean module's,
  // which is a no-op (analysis is deterministic, so the cached state is
  // exactly what re-analysis would produce; this is what lets a daemon
  // re-seed its corpus after LoadStore without discarding the warm start).
  void AddModule(const std::string& name, std::vector<SourceFile> files);
  void AddModule(ModuleSources module);
  bool RemoveModule(const std::string& name);

  // Marks a module for re-analysis. Cached snapshots are kept, so the next
  // Run() recomputes per-function dirty bits against the (possibly edited)
  // sources and re-solves only the affected region.
  void Invalidate(const std::string& name);

  // Textually replaces one top-level function definition inside the
  // module's sources with `new_definition` (a complete definition including
  // signature and body) and invalidates the module. Returns false if the
  // module or a definition of `function` was not found. Dirty bits are
  // derived from AST fingerprints at Run() time, so the edit's blast radius
  // is measured, never assumed.
  bool ReplaceFunction(const std::string& module, const std::string& function,
                       const std::string& new_definition);

  // Wholesale source replacement + Invalidate (for arbitrary edits).
  bool ReplaceModuleSources(const std::string& name, std::vector<SourceFile> files);

  // Compiles and analyzes every dirty module (batched: shared prelude
  // tokens, shared pool, modules analyzed concurrently when the pipeline is
  // Parallel), reuses every clean module's cached result, and returns the
  // deterministic corpus merge. Modules are analyzed as independent
  // programs — calls into other modules are opaque (see RunLinked).
  SessionResult Run();

  // The link stage: Run() in rounds, with per-function summaries flowing
  // between modules through the annodb fact table until it stops changing.
  // After each round the summaries of every re-analyzed module are
  // re-exported and diffed; modules that import a changed fact — callers of
  // a function whose bottom-up summary changed, or the definer of a
  // function whose observed usage changed — are marked dirty for the next
  // round, so round N+1 re-analyzes only importers of changed facts.
  //
  // Determinism contract (extends Run()'s): the converged findings are
  // byte-identical regardless of module registration order, shard count,
  // and cold-vs-incremental linking; on a corpus whose modules share facts
  // only through declared extern functions, the converged finding set
  // equals the merged-source single-program run's (see
  // tests/session_linked_test.cc and docs/ARCHITECTURE.md for the exact
  // statement, including the stackcheck per-report caveat).
  //
  // Incremental: a later RunLinked() after source edits retracts and
  // re-derives only the cross-module dependency component containing the
  // edited modules; everything outside keeps its converged facts and cached
  // results.
  SessionResult RunLinked();
  const LinkStats& link_stats() const { return link_stats_; }

  // RunLinked() split across processes: the same diff-driven round
  // scheduler, but each round's dirty modules are partitioned across
  // worker processes that analyze their shard cold (exact by the
  // determinism contract) and merge summary deltas into the shared store.
  // Converged findings are byte-identical to single-process RunLinked()
  // regardless of worker count and module assignment; a worker failure
  // aborts the round with an error finding, leaves the fixpoint resumable
  // (dirty modules stay dirty, the store stays consistent), and reports
  // converged=false.
  SessionResult RunLinkedDistributed(const DistributedLinkOptions& opts);

  // The worker side of RunLinkedDistributed: reads the coordinator's
  // round snapshot (`store_path + ".round"`), analyzes `modules` against
  // the snapshot's summary table, and merges the resulting records + rows
  // into `store_path` under the store lock.
  static bool RunStoreWorker(Pipeline pipeline, const std::string& store_path,
                             const std::vector<std::string>& modules,
                             std::string* err);

  // Persistent warm start (src/store/store.h). SaveStore snapshots every
  // module's sources + incremental state + findings and the link table;
  // LoadStore restores them into a fresh session, so the next RunLinked()
  // costs ≈ one incremental relink (one idle round when nothing changed)
  // and produces byte-identical findings. LoadStore returns false — and
  // leaves the session as-is, cold — on a missing/corrupt/stale-digest
  // store; the caller just runs cold. Modules whose current sources differ
  // from the stored ones keep the session's sources and stay dirty.
  bool SaveStore(const std::string& path, std::string* err) const;
  bool LoadStore(const std::string& path, std::string* err);

  // Hash of the analysis recipe (pass plan, per-tool options, points-to
  // precision — deliberately NOT the shard count, which cannot change
  // results): stores carry it so facts computed under one recipe are never
  // warm-started into another.
  uint64_t CorpusDigest() const;

  // Cooperative cancellation for an in-flight Run()/RunLinked() on another
  // thread (the annod server's shutdown-while-relinking path). Checked
  // between module analyses and between link rounds — never mid-kernel — so
  // a cancelled run stops at the next module boundary, leaves every
  // unprocessed module dirty, and reports cancelled=true. The flag is
  // sticky until ClearCancel(); a cancelled session is resumable, not
  // poisoned.
  void RequestCancel() { cancel_->store(true, std::memory_order_release); }
  void ClearCancel() { cancel_->store(false, std::memory_order_release); }
  bool cancel_requested() const { return cancel_->load(std::memory_order_acquire); }

  // The converged fact table (empty before the first RunLinked). The same
  // rows are merged into ExportAnnoDb()'s repository view.
  const AnnoDb& link_table() const { return link_table_; }

  // The §3.2 repository view of the whole corpus: per-module facts merged,
  // findings stamped with module provenance (so a later Run can
  // RetractModule + re-merge without touching other modules' records).
  AnnoDb ExportAnnoDb();

  ModuleStats StatsFor(const std::string& name) const;
  int64_t prelude_reuses() const { return cache_.prelude_reuses; }
  size_t module_count() const { return modules_.size(); }
  const Pipeline& pipeline() const { return pipeline_; }

  // The module's frontend artifacts from its last analysis (null before the
  // first Run or after a compile failure). Callers render finding locations
  // through ->sm; file ids are private to each module's compilation.
  const Compilation* CompilationFor(const std::string& name) const;

  // Moves a module's artifacts out of the session (its cached state is
  // erased). The CompileAndRun shim: a one-module session, run, taken.
  PipelineRun TakeModule(const std::string& name);

 private:
  struct ModuleState;  // defined in session_state.h

  // What the link fixpoint diffs per summary row between rounds.
  struct LinkRowState {
    std::string canon;
    bool defined = false;
    bool cross_recursive = false;
    int64_t stack_below = -1;
  };
  using LinkTableSnapshot = std::map<std::pair<std::string, std::string>, LinkRowState>;

  WorkQueue* pool();
  void Analyze(const std::string& name, ModuleState* st);
  // Phase C of Run(): the deterministic corpus merge over the current
  // module states (shared by Run and the distributed coordinator, which
  // imports worker results into the states instead of analyzing).
  SessionResult MergeResult(bool cancelled) const;
  // RunLinked()'s retraction preamble: reset stats, clear or
  // component-retract the table for source-dirty modules.
  void PrepareLinkedRun();
  LinkTableSnapshot SnapshotLinkTable() const;
  // Importers of changed facts between two snapshots — the modules the
  // next round must re-analyze.
  std::set<std::string> DiffLinkTable(const LinkTableSnapshot& before,
                                      const LinkTableSnapshot& after) const;
  // RunLinked()'s trailer: row/edge counters, non-convergence and
  // multiply-defined-function findings.
  void FinishLinkedRun(int max_rounds, SessionResult* result);

  // Store plumbing (session_store.cc). BuildStoreSnapshot serializes the
  // whole session; ImportStoreRecord restores one module's persisted state
  // (warm starts and the distributed coordinator share it — the coordinator
  // imports worker records instead of analyzing).
  StoreFile BuildStoreSnapshot(bool linked, bool converged) const;
  bool ImportStoreRecord(const StoreModule& rec, std::string* err);
  // Rebuilds a module's exported summary rows from its last analysis.
  std::vector<FuncSummary> ExtractSummaries(const std::string& name, ModuleState& st) const;
  // Corpus-level stack facts over the current table (condensation of the
  // exported call edges; cross-module cyclic SCC members marked recursive).
  void ComputeLinkStackFacts();
  // Modules transitively connected to `roots` through shared function names
  // (in either import direction), per the last exported name sets.
  std::set<std::string> LinkedComponentOf(const std::set<std::string>& roots) const;

  Pipeline pipeline_;
  bool track_incremental_;
  FrontendCache cache_;
  // shared_ptr, not a member atomic: the session stays movable, and
  // RequestCancel() from another thread races only with the atomic load,
  // never with the pointer (which changes only under single-threaded moves).
  std::shared_ptr<std::atomic<bool>> cancel_;
  std::unique_ptr<WorkQueue> pool_;
  // std::map: sorted iteration is what makes every merge order-independent
  // of registration order. Node stability also keeps ModuleState addresses
  // (and the IncrementalHints the contexts point at) valid across inserts.
  std::map<std::string, std::unique_ptr<ModuleState>> modules_;
  // The link stage's fact table and its outcome counters. The table holds
  // only summary rows; per-module facts/findings stay with the modules and
  // are merged on ExportAnnoDb().
  AnnoDb link_table_;
  bool linked_ever_ = false;
  LinkStats link_stats_;
  // Function names defined in more than one module (a merged-source corpus
  // would reject them); surfaced as session findings by RunLinked.
  std::set<std::string> link_conflicts_;
};

}  // namespace ivy

#endif  // SRC_TOOL_SESSION_H_
