// AnalysisSession: the corpus-level pipeline API (the paper's "apply sound
// static analysis at a large scale" made long-lived).
//
// A session owns a corpus of named modules, one shared worker pool for every
// sharded pass kernel (TaskGroup isolation instead of one pool per pass),
// a frontend cache that lexes the prelude once for the whole corpus, and a
// dirty-tracking layer over AnalysisContext:
//
//   AnalysisSession session = PipelineBuilder()
//                                 .AllTools()
//                                 .ShardFunctions(0)
//                                 .ForEachModule(modules)
//                                 .BuildSession();
//   SessionResult cold = session.Run();          // analyzes every module
//   session.ReplaceFunction("net", "udp_sendmsg", edited_definition);
//   SessionResult warm = session.Run();          // re-analyzes only "net",
//                                                // re-solving only the
//                                                // edited region inside it
//
// Determinism contract (extends PR 2's): the merged findings are
// byte-identical regardless of module registration order, shard count, pool
// size, and cold-vs-incremental execution. Modules merge in sorted-name
// order; within a module the pipeline's request-order merge applies; the
// incremental machinery (points-to warm start, BlockStop may-block
// memoization) is exact, not heuristic — see src/analysis/pointsto.h.
//
// Incremental granularity: a module is the re-analysis unit (clean modules'
// cached results are reused verbatim); within a re-analyzed module,
// per-function dirty bits (src/analysis/fingerprint.h) scope the points-to
// re-solve to the constraints whose origins changed and freeze the may-block
// bits of functions with no call path into the edit. ModuleStats exposes the
// solver counters so tests can assert the dirty region stayed small.
#ifndef SRC_TOOL_SESSION_H_
#define SRC_TOOL_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/annodb/annodb.h"
#include "src/support/work_queue.h"
#include "src/tool/pipeline.h"

namespace ivy {

// Per-module outcome of one Run(). `result` is the module's pass output with
// unstamped findings — byte-identical to an independent single-module
// CompileAndRun of the same sources.
struct ModuleRunResult {
  std::string module;
  bool ok = false;          // compiled successfully
  bool reanalyzed = false;  // analyzed during this Run (false: cache reused)
  PipelineResult result;
  std::string compile_errors;
};

struct SessionResult {
  std::vector<ModuleRunResult> modules;  // sorted by module name
  // Every module's findings concatenated in that same order, each stamped
  // with its module name (Finding::module) — the corpus-level merge.
  // Compile failures contribute a severity-error finding from tool
  // "session" so they can never vanish silently.
  std::vector<Finding> findings;
  int modules_analyzed = 0;
  int modules_reused = 0;
  int compile_failures = 0;

  const ModuleRunResult* ModuleFor(const std::string& name) const;
  int ErrorCount() const;
};

// Solver-effort counters from a module's most recent analysis — how much of
// it the incremental layer actually re-derived.
struct ModuleStats {
  bool valid = false;   // module exists and was analyzed at least once
  bool cold = true;     // last analysis was a full re-solve
  int dirty_functions = -1;  // fingerprint-dirty functions (-1 when cold)
  int64_t pointsto_propagations = 0;
  int64_t pointsto_seeded_facts = 0;
  int64_t mayblock_evals = 0;
};

class AnalysisSession {
 public:
  // `track_incremental` keeps the name-keyed snapshots that warm later
  // Run()s; the one-shot CompileAndRun shim turns it off.
  explicit AnalysisSession(Pipeline pipeline, bool track_incremental = true);
  ~AnalysisSession();

  AnalysisSession(AnalysisSession&&) = default;
  AnalysisSession& operator=(AnalysisSession&&) = default;

  // Registers (or replaces) a module. Names key provenance and must be
  // unique; re-adding an existing name replaces its sources and marks it
  // dirty.
  void AddModule(const std::string& name, std::vector<SourceFile> files);
  void AddModule(ModuleSources module);
  bool RemoveModule(const std::string& name);

  // Marks a module for re-analysis. Cached snapshots are kept, so the next
  // Run() recomputes per-function dirty bits against the (possibly edited)
  // sources and re-solves only the affected region.
  void Invalidate(const std::string& name);

  // Textually replaces one top-level function definition inside the
  // module's sources with `new_definition` (a complete definition including
  // signature and body) and invalidates the module. Returns false if the
  // module or a definition of `function` was not found. Dirty bits are
  // derived from AST fingerprints at Run() time, so the edit's blast radius
  // is measured, never assumed.
  bool ReplaceFunction(const std::string& module, const std::string& function,
                       const std::string& new_definition);

  // Wholesale source replacement + Invalidate (for arbitrary edits).
  bool ReplaceModuleSources(const std::string& name, std::vector<SourceFile> files);

  // Compiles and analyzes every dirty module (batched: shared prelude
  // tokens, shared pool, modules analyzed concurrently when the pipeline is
  // Parallel), reuses every clean module's cached result, and returns the
  // deterministic corpus merge.
  SessionResult Run();

  // The §3.2 repository view of the whole corpus: per-module facts merged,
  // findings stamped with module provenance (so a later Run can
  // RetractModule + re-merge without touching other modules' records).
  AnnoDb ExportAnnoDb();

  ModuleStats StatsFor(const std::string& name) const;
  int64_t prelude_reuses() const { return cache_.prelude_reuses; }
  size_t module_count() const { return modules_.size(); }
  const Pipeline& pipeline() const { return pipeline_; }

  // Moves a module's artifacts out of the session (its cached state is
  // erased). The CompileAndRun shim: a one-module session, run, taken.
  PipelineRun TakeModule(const std::string& name);

 private:
  struct ModuleState;

  WorkQueue* pool();
  void Analyze(const std::string& name, ModuleState* st);

  Pipeline pipeline_;
  bool track_incremental_;
  FrontendCache cache_;
  std::unique_ptr<WorkQueue> pool_;
  // std::map: sorted iteration is what makes every merge order-independent
  // of registration order. Node stability also keeps ModuleState addresses
  // (and the IncrementalHints the contexts point at) valid across inserts.
  std::map<std::string, std::unique_ptr<ModuleState>> modules_;
};

}  // namespace ivy

#endif  // SRC_TOOL_SESSION_H_
