#include "src/tool/session.h"

#include <algorithm>
#include <cctype>
#include <future>
#include <utility>

#include "src/analysis/fingerprint.h"
#include "src/blockstop/blockstop.h"

namespace ivy {

// ---------------------------------------------------------------------------
// SessionResult
// ---------------------------------------------------------------------------

const ModuleRunResult* SessionResult::ModuleFor(const std::string& name) const {
  for (const ModuleRunResult& m : modules) {
    if (m.module == name) {
      return &m;
    }
  }
  return nullptr;
}

int SessionResult::ErrorCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kError) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------------
// ModuleState
// ---------------------------------------------------------------------------

struct AnalysisSession::ModuleState {
  std::vector<SourceFile> files;
  bool dirty = true;
  bool ok = false;
  bool analyzed_now = false;  // re-analyzed during the current Run()
  std::string compile_errors;

  // Name-keyed snapshots from the last successful analysis: the inputs to
  // the next run's dirty bits and warm starts.
  bool have_snapshot = false;
  uint64_t preamble_fp = 0;
  std::map<std::string, uint64_t> func_fps;
  std::map<std::string, uint64_t> sig_fps;
  std::map<std::string, std::set<std::string>> func_refs;
  PointsToSnapshot pt_snapshot;
  std::map<std::string, uint64_t> callee_hashes;
  bool have_mayblock = false;
  std::set<std::string> prev_mayblock;

  ModuleStats stats;

  // Declaration order matters: `ctx` points into `hints` and `comp`, so it
  // must be destroyed first.
  IncrementalHints hints;
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<AnalysisContext> ctx;
  PipelineResult result;
};

// ---------------------------------------------------------------------------
// Textual function replacement
// ---------------------------------------------------------------------------

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Skips a comment or string/char literal starting at `i`; returns true if it
// advanced. Keeps the top-level scan from miscounting braces in text.
bool SkipNonCode(const std::string& text, size_t* i) {
  const size_t n = text.size();
  size_t p = *i;
  if (text[p] == '/' && p + 1 < n && text[p + 1] == '/') {
    while (p < n && text[p] != '\n') {
      ++p;
    }
  } else if (text[p] == '/' && p + 1 < n && text[p + 1] == '*') {
    p += 2;
    while (p + 1 < n && !(text[p] == '*' && text[p + 1] == '/')) {
      ++p;
    }
    p = p + 2 > n ? n : p + 2;
  } else if (text[p] == '"' || text[p] == '\'') {
    char quote = text[p];
    ++p;
    while (p < n && text[p] != quote) {
      if (text[p] == '\\') {
        ++p;
      }
      ++p;
    }
    if (p < n) {
      ++p;
    }
  } else {
    return false;
  }
  *i = p;
  return true;
}

// Locates the top-level *definition* of `name` (declarations are skipped):
// identifier at brace depth 0, then a parameter list, then optional
// attribute words — errcode(...) arguments included — then a brace-matched
// body. `out_begin` is the start of the line holding the identifier (Mini-C
// signatures are single-line), `out_end` one past the closing brace.
bool FindDefinition(const std::string& text, const std::string& name, size_t* out_begin,
                    size_t* out_end) {
  const size_t n = text.size();
  int depth = 0;
  size_t i = 0;
  while (i < n) {
    if (SkipNonCode(text, &i)) {
      continue;
    }
    char c = text[i];
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      ++i;
      continue;
    }
    if (depth != 0 || !IsIdentChar(c) || (i > 0 && IsIdentChar(text[i - 1]))) {
      ++i;
      continue;
    }
    size_t ident_start = i;
    while (i < n && IsIdentChar(text[i])) {
      ++i;
    }
    if (text.compare(ident_start, i - ident_start, name) != 0) {
      continue;
    }
    size_t j = i;
    while (j < n && std::isspace(static_cast<unsigned char>(text[j])) != 0) {
      ++j;
    }
    if (j >= n || text[j] != '(') {
      continue;  // a variable or call of the same name
    }
    int paren = 0;
    while (j < n) {
      if (SkipNonCode(text, &j)) {
        continue;
      }
      if (text[j] == '(') {
        ++paren;
      } else if (text[j] == ')') {
        --paren;
        if (paren == 0) {
          ++j;
          break;
        }
      }
      ++j;
    }
    if (paren != 0) {
      return false;
    }
    // Attribute region: words, whitespace, and parenthesized arguments.
    bool is_definition = false;
    size_t k = j;
    while (k < n) {
      if (SkipNonCode(text, &k)) {
        continue;
      }
      char d = text[k];
      if (d == '{') {
        is_definition = true;
        break;
      }
      if (d == '(') {
        int attr_paren = 0;
        while (k < n) {
          if (SkipNonCode(text, &k)) {
            continue;
          }
          if (text[k] == '(') {
            ++attr_paren;
          } else if (text[k] == ')') {
            --attr_paren;
            if (attr_paren == 0) {
              ++k;
              break;
            }
          }
          ++k;
        }
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(d)) != 0 || IsIdentChar(d)) {
        ++k;
        continue;
      }
      break;  // ';' or anything else: a declaration
    }
    if (!is_definition) {
      continue;  // keep scanning from i (body braces still tracked)
    }
    size_t begin = text.rfind('\n', ident_start);
    begin = begin == std::string::npos ? 0 : begin + 1;
    int braces = 0;
    size_t m = k;
    while (m < n) {
      if (SkipNonCode(text, &m)) {
        continue;
      }
      if (text[m] == '{') {
        ++braces;
      } else if (text[m] == '}') {
        --braces;
        if (braces == 0) {
          ++m;
          break;
        }
      }
      ++m;
    }
    if (braces != 0) {
      return false;
    }
    *out_begin = begin;
    *out_end = m;
    return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// AnalysisSession
// ---------------------------------------------------------------------------

AnalysisSession::AnalysisSession(Pipeline pipeline, bool track_incremental)
    : pipeline_(std::move(pipeline)), track_incremental_(track_incremental) {}

AnalysisSession::~AnalysisSession() = default;

void AnalysisSession::AddModule(const std::string& name, std::vector<SourceFile> files) {
  auto& st = modules_[name];
  if (st == nullptr) {
    st = std::make_unique<ModuleState>();
  }
  st->files = std::move(files);
  st->dirty = true;
}

void AnalysisSession::AddModule(ModuleSources module) {
  AddModule(module.name, std::move(module.files));
}

bool AnalysisSession::RemoveModule(const std::string& name) {
  return modules_.erase(name) != 0;
}

void AnalysisSession::Invalidate(const std::string& name) {
  auto it = modules_.find(name);
  if (it != modules_.end()) {
    it->second->dirty = true;
  }
}

bool AnalysisSession::ReplaceFunction(const std::string& module, const std::string& function,
                                      const std::string& new_definition) {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return false;
  }
  // The replaced span ends at the closing brace (exclusive of the original
  // trailing newline), so strip trailing whitespace from the replacement —
  // otherwise every edit would grow the file by a line and shift the
  // locations of everything below it.
  std::string def = new_definition;
  while (!def.empty() && (def.back() == '\n' || def.back() == '\r' || def.back() == ' ')) {
    def.pop_back();
  }
  for (SourceFile& f : it->second->files) {
    size_t begin = 0;
    size_t end = 0;
    if (FindDefinition(f.text, function, &begin, &end)) {
      f.text = f.text.substr(0, begin) + def + f.text.substr(end);
      it->second->dirty = true;
      return true;
    }
  }
  return false;
}

bool AnalysisSession::ReplaceModuleSources(const std::string& name,
                                           std::vector<SourceFile> files) {
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return false;
  }
  it->second->files = std::move(files);
  it->second->dirty = true;
  return true;
}

WorkQueue* AnalysisSession::pool() {
  if (pipeline_.shard_functions() == 1) {
    return nullptr;  // serial kernels never touch a pool
  }
  if (pool_ == nullptr) {
    int shards = pipeline_.shard_functions();
    int workers =
        shards == 0 ? WorkQueue::ResolveHardware() : (shards > 1 ? shards - 1 : 1);
    pool_ = std::make_unique<WorkQueue>(workers);
  }
  return pool_.get();
}

void AnalysisSession::Analyze(const std::string& name, ModuleState* st) {
  (void)name;
  Compilation* comp = st->comp.get();

  // Per-function dirty bits: fingerprint the fresh AST, diff against the
  // last successful analysis. Everything is keyed by name, so the diff
  // survives the wholesale AST replacement a recompile is. One-shot
  // sessions (track_incremental off) skip the bookkeeping entirely.
  uint64_t preamble = 0;
  std::map<std::string, uint64_t> fps;
  std::map<std::string, uint64_t> sigs;
  std::map<std::string, std::set<std::string>> refs;
  if (track_incremental_) {
    preamble = FingerprintPreamble(comp->prog);
    for (const auto& [fname, fn] : comp->sema->func_map()) {
      if (fn->body == nullptr || fn->func_id < 0) {
        continue;
      }
      FunctionFingerprint fingerprint = FingerprintFunctionFull(fn);
      fps[fname] = fingerprint.full;
      sigs[fname] = fingerprint.sig;
      refs[fname] = std::move(fingerprint.refs);
    }
  }

  bool warm = track_incremental_ && st->have_snapshot && preamble == st->preamble_fp;
  std::set<std::string> dirty_funcs;
  if (warm) {
    // Changed/added bodies...
    std::set<std::string> renamed;  // added, removed, or signature-changed
    for (const auto& [fname, fp] : fps) {
      auto it = st->func_fps.find(fname);
      if (it == st->func_fps.end()) {
        dirty_funcs.insert(fname);
        renamed.insert(fname);
      } else if (it->second != fp) {
        dirty_funcs.insert(fname);
        if (st->sig_fps[fname] != sigs[fname]) {
          renamed.insert(fname);
        }
      }
    }
    // ...removed functions...
    for (const auto& [fname, fp] : st->func_fps) {
      if (fps.count(fname) == 0) {
        dirty_funcs.insert(fname);
        renamed.insert(fname);
      }
    }
    // ...and functions whose name resolution changed: an unchanged body that
    // references an added/removed/re-signed function generates different
    // constraints, so it is dirty too.
    if (!renamed.empty()) {
      for (const auto& [fname, names] : refs) {
        if (dirty_funcs.count(fname) != 0) {
          continue;
        }
        for (const std::string& r : renamed) {
          if (names.count(r) != 0) {
            dirty_funcs.insert(fname);
            break;
          }
        }
      }
    }
  }

  st->hints = IncrementalHints{};
  if (warm) {
    st->hints.pointsto_prev = &st->pt_snapshot;
    st->hints.pointsto_dirty = dirty_funcs;
  }
  st->ctx = pipeline_.MakeContext(comp);
  if (track_incremental_) {
    st->ctx->EnableIncrementalTracking();
  }
  st->ctx->SetIncrementalHints(&st->hints);
  st->ctx->AttachPool(pool());

  // Warm the analyses the pipeline will need. Doing the call graph here (not
  // inside RunTools) lets the BlockStop seed be scoped to the affected
  // region before any pass runs.
  bool need_pt = false;
  bool need_cg = false;
  for (const std::string& step : pipeline_.Plan()) {
    need_pt |= step == "analysis:pointsto";
    need_cg |= step == "analysis:callgraph";
  }
  std::map<std::string, uint64_t> new_callees;
  if (need_cg) {
    const CallGraph& cg = st->ctx->callgraph();
    new_callees = cg.CalleeNameHashes();
    if (warm && st->have_mayblock) {
      // The edited region: fingerprint-dirty functions plus clean-bodied
      // functions whose resolved callee lists changed (an edit elsewhere
      // retargeted one of their indirect sites). Everything that can reach
      // the region is affected; everything else keeps its may-block bit.
      std::set<const FuncDecl*> changed;
      for (const FuncDecl* fn : cg.DefinedFuncs()) {
        auto it = st->callee_hashes.find(fn->name);
        if (dirty_funcs.count(fn->name) != 0 || it == st->callee_hashes.end() ||
            it->second != new_callees[fn->name]) {
          changed.insert(fn);
        }
      }
      std::set<const FuncDecl*> affected = cg.AncestorsOf(changed);
      st->hints.has_blockstop_seed = true;
      for (const FuncDecl* fn : cg.DefinedFuncs()) {
        if (affected.count(fn) == 0) {
          st->hints.blockstop_clean.insert(fn->name);
        }
      }
      st->hints.blockstop_prev_mayblock = st->prev_mayblock;
    }
  } else if (need_pt) {
    st->ctx->pointsto();
  }

  st->result = pipeline_.RunTools(*st->ctx);
  st->ok = true;
  st->compile_errors.clear();

  st->stats = ModuleStats{};
  st->stats.valid = true;
  st->stats.cold = !warm;
  st->stats.dirty_functions = warm ? static_cast<int>(dirty_funcs.size()) : -1;
  if (st->ctx->pointsto_builds() > 0) {
    const PointsTo& pt = st->ctx->pointsto();
    st->stats.pointsto_propagations = pt.solve_propagations();
    st->stats.pointsto_seeded_facts = pt.seeded_facts();
  }
  if (const ToolResult* r = st->result.ResultFor("blockstop")) {
    st->stats.mayblock_evals = r->Metric("mayblock_evals");
  }

  // Refresh the snapshots the next incremental run diffs against.
  st->have_snapshot = false;
  st->have_mayblock = false;
  if (track_incremental_) {
    st->preamble_fp = preamble;
    st->func_fps = std::move(fps);
    st->sig_fps = std::move(sigs);
    st->func_refs = std::move(refs);
    st->callee_hashes = std::move(new_callees);
    if (st->ctx->pointsto_builds() > 0) {
      st->pt_snapshot = st->ctx->pointsto().Snapshot();
      st->have_snapshot = true;
    }
    if (const ToolResult* r = st->result.ResultFor("blockstop")) {
      if (const BlockStopReport* report = r->DetailAs<BlockStopReport>()) {
        st->prev_mayblock = report->mayblock;
        st->have_mayblock = true;
      }
    }
  }
  st->dirty = false;
}

SessionResult AnalysisSession::Run() {
  // Phase A — frontend, serial: the FrontendCache hands every compilation
  // the same prelude token stream (lexed exactly once per session).
  std::vector<std::pair<const std::string*, ModuleState*>> to_analyze;
  for (auto& [name, st] : modules_) {
    st->analyzed_now = false;
    if (!st->dirty) {
      continue;
    }
    st->analyzed_now = true;
    st->ctx.reset();
    st->comp.reset();
    st->result = PipelineResult{};
    st->comp = pipeline_.Compile(st->files, &cache_);
    if (!st->comp->ok) {
      st->ok = false;
      st->compile_errors = st->comp->Errors();
      st->have_snapshot = false;
      st->have_mayblock = false;
      st->stats = ModuleStats{};
      st->dirty = false;  // until the sources change again
      continue;
    }
    to_analyze.push_back({&name, st.get()});
  }

  // Phase B — analysis: independent per module (private Compilation +
  // AnalysisContext; the shared pool isolates kernels via TaskGroup), so
  // dirty modules run concurrently in bounded batches when the pipeline is
  // parallel. Merge order never depends on completion order. The pool is
  // materialized here, before any Analyze thread exists — lazy construction
  // inside concurrent Analyze calls would race.
  pool();
  size_t batch = static_cast<size_t>(WorkQueue::ResolveHardware());
  if (pipeline_.parallel() && to_analyze.size() > 1 && batch > 1) {
    for (size_t i = 0; i < to_analyze.size(); i += batch) {
      size_t end = std::min(i + batch, to_analyze.size());
      std::vector<std::future<void>> futures;
      futures.reserve(end - i);
      for (size_t j = i; j < end; ++j) {
        auto [mod_name, st] = to_analyze[j];
        futures.push_back(std::async(std::launch::async,
                                     [this, mod_name, st] { Analyze(*mod_name, st); }));
      }
      for (std::future<void>& f : futures) {
        f.get();
      }
    }
  } else {
    for (auto [mod_name, st] : to_analyze) {
      Analyze(*mod_name, st);
    }
  }

  // Phase C — deterministic corpus merge, in sorted-module-name order.
  SessionResult out;
  for (auto& [name, st] : modules_) {
    ModuleRunResult mr;
    mr.module = name;
    mr.ok = st->ok;
    mr.reanalyzed = st->analyzed_now;
    mr.result = st->result;
    mr.compile_errors = st->compile_errors;
    if (st->analyzed_now) {
      ++out.modules_analyzed;
    } else {
      ++out.modules_reused;
    }
    if (!st->ok) {
      ++out.compile_failures;
      Finding f;
      f.tool = "session";
      f.severity = FindingSeverity::kError;
      f.module = name;
      f.message = "module '" + name + "' failed to compile";
      out.findings.push_back(std::move(f));
    } else {
      for (const Finding& f : st->result.findings) {
        Finding stamped = f;
        stamped.module = name;
        out.findings.push_back(std::move(stamped));
      }
    }
    out.modules.push_back(std::move(mr));
  }
  return out;
}

AnnoDb AnalysisSession::ExportAnnoDb() {
  AnnoDb merged;
  for (auto& [name, st] : modules_) {
    if (!st->ok || st->ctx == nullptr) {
      continue;
    }
    AnnoDb db = AnnoDb::Extract(*st->ctx, &st->result);
    std::vector<Finding> stamped = st->result.findings;
    for (Finding& f : stamped) {
      f.module = name;
    }
    db.SetFindings(std::move(stamped), &st->ctx->sm());
    merged.Merge(db);
  }
  return merged;
}

ModuleStats AnalysisSession::StatsFor(const std::string& name) const {
  auto it = modules_.find(name);
  return it == modules_.end() ? ModuleStats{} : it->second->stats;
}

PipelineRun AnalysisSession::TakeModule(const std::string& name) {
  PipelineRun run;
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return run;
  }
  ModuleState& st = *it->second;
  if (st.ctx != nullptr) {
    // The session (hints storage, pool) will not outlive these artifacts.
    st.ctx->SetIncrementalHints(nullptr);
    st.ctx->AttachPool(nullptr);
  }
  run.comp = std::move(st.comp);
  run.ctx = std::move(st.ctx);
  run.result = std::move(st.result);
  modules_.erase(it);
  return run;
}

// ---------------------------------------------------------------------------
// The pipeline-level shims: one code path for one-shot and corpus runs.
// ---------------------------------------------------------------------------

PipelineRun Pipeline::CompileAndRun(const std::vector<SourceFile>& files) const {
  AnalysisSession session(*this, /*track_incremental=*/false);
  session.AddModule("", files);
  session.Run();
  return session.TakeModule("");
}

AnalysisSession PipelineBuilder::BuildSession() const {
  AnalysisSession session(pipeline_);
  for (const ModuleSources& m : modules_) {
    session.AddModule(m);
  }
  return session;
}

}  // namespace ivy
