#include "src/tool/session.h"

#include <algorithm>
#include <future>
#include <utility>

#include "src/analysis/fingerprint.h"
#include "src/blockstop/blockstop.h"
#include "src/errcheck/errcheck.h"
#include "src/locksafe/locksafe.h"
#include "src/mc/lexer.h"
#include "src/support/clock.h"
#include "src/support/diag.h"
#include "src/support/scc.h"
#include "src/support/trace.h"
#include "src/tool/session_state.h"

namespace ivy {

// ---------------------------------------------------------------------------
// SessionResult
// ---------------------------------------------------------------------------

const ModuleRunResult* SessionResult::ModuleFor(const std::string& name) const {
  for (const ModuleRunResult& m : modules) {
    if (m.module == name) {
      return &m;
    }
  }
  return nullptr;
}

int SessionResult::ErrorCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kError) {
      ++n;
    }
  }
  return n;
}

// ModuleState lives in src/tool/session_state.h, shared with the
// persistent-store half of the session (session_store.cc).

// ---------------------------------------------------------------------------
// Textual function replacement
// ---------------------------------------------------------------------------

namespace {

// Skips a balanced parenthesized token group starting at *k (which must
// point at kLParen). Returns false on an unbalanced stream.
bool SkipParenGroup(const std::vector<Token>& toks, size_t* k) {
  int paren = 0;
  for (size_t j = *k; j < toks.size(); ++j) {
    if (toks[j].kind == Tok::kEof) {
      return false;
    }
    if (toks[j].kind == Tok::kLParen) {
      ++paren;
    } else if (toks[j].kind == Tok::kRParen) {
      if (--paren == 0) {
        *k = j + 1;
        return true;
      }
    }
  }
  return false;
}

// Locates the top-level *definition* of `name` (declarations are skipped) as
// a [begin, end) byte range of `text`: identifier at brace depth 0, then a
// parameter list, then optional attribute words — errcode(...) arguments
// included — then a brace-matched body. `out_begin` is the start of the line
// holding the identifier (Mini-C signatures are single-line), `out_end` one
// past the closing brace.
//
// The scan runs over the real lexer's token stream, so braces and parens
// inside string/char literals and comments can never miscount — the textual
// scanner this replaced did miscount them (see
// SessionTest.ReplaceFunctionBodyWithBraceLiterals).
bool FindDefinition(const std::string& text, const std::string& name, size_t* out_begin,
                    size_t* out_end) {
  SourceManager sm;
  DiagEngine diags(&sm);
  Lexer lexer(sm, sm.AddFile("<replace>", text), &diags);
  std::vector<Token> toks = lexer.Lex();

  std::vector<size_t> line_starts{0};
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      line_starts.push_back(i + 1);
    }
  }
  auto offset_of = [&text, &line_starts](const SourceLoc& loc) -> size_t {
    size_t line = loc.line >= 1 ? static_cast<size_t>(loc.line - 1) : 0;
    if (line >= line_starts.size()) {
      return text.size();
    }
    size_t col = loc.col >= 1 ? static_cast<size_t>(loc.col - 1) : 0;
    return std::min(line_starts[line] + col, text.size());
  };

  int depth = 0;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == Tok::kLBrace) {
      ++depth;
      continue;
    }
    if (t.kind == Tok::kRBrace) {
      --depth;
      continue;
    }
    if (depth != 0 || t.kind != Tok::kIdent || t.text != name ||
        toks[i + 1].kind != Tok::kLParen) {
      continue;
    }
    size_t j = i + 1;
    if (!SkipParenGroup(toks, &j)) {
      return false;
    }
    // Attribute region: words and parenthesized argument lists until the
    // body brace; anything else (';') makes this a declaration.
    bool is_definition = false;
    size_t k = j;
    while (k < toks.size()) {
      Tok kind = toks[k].kind;
      if (kind == Tok::kLBrace) {
        is_definition = true;
        break;
      }
      if (kind == Tok::kLParen) {
        if (!SkipParenGroup(toks, &k)) {
          return false;
        }
        continue;
      }
      if (kind == Tok::kSemi || kind == Tok::kEof) {
        break;
      }
      ++k;
    }
    if (!is_definition) {
      continue;  // keep scanning from i (outer depth tracking undisturbed)
    }
    int braces = 0;
    size_t m = k;
    for (; m < toks.size(); ++m) {
      if (toks[m].kind == Tok::kEof) {
        return false;
      }
      if (toks[m].kind == Tok::kLBrace) {
        ++braces;
      } else if (toks[m].kind == Tok::kRBrace && --braces == 0) {
        break;
      }
    }
    if (m >= toks.size() || braces != 0) {
      return false;
    }
    size_t ident_off = offset_of(t.loc);
    size_t begin = ident_off == 0 ? std::string::npos : text.rfind('\n', ident_off - 1);
    *out_begin = begin == std::string::npos ? 0 : begin + 1;
    *out_end = offset_of(toks[m].loc) + 1;  // one past the closing brace
    return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// AnalysisSession
// ---------------------------------------------------------------------------

AnalysisSession::AnalysisSession(Pipeline pipeline, bool track_incremental)
    : pipeline_(std::move(pipeline)),
      track_incremental_(track_incremental),
      cancel_(std::make_shared<std::atomic<bool>>(false)) {}

AnalysisSession::~AnalysisSession() = default;

void AnalysisSession::AddModule(const std::string& name, std::vector<SourceFile> files) {
  auto& st = modules_[name];
  if (st == nullptr) {
    st = std::make_unique<ModuleState>();
  } else if (!st->dirty && st->files.size() == files.size()) {
    // Re-adding byte-identical sources over a clean module is a no-op:
    // analysis is deterministic, so the cached state IS what re-analysis
    // would produce. This keeps a LoadStore warm start alive when a daemon
    // re-seeds its corpus with the same generated/derived sources.
    bool same = true;
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i].name != st->files[i].name || files[i].text != st->files[i].text) {
        same = false;
        break;
      }
    }
    if (same) {
      return;
    }
  }
  st->files = std::move(files);
  st->dirty = true;
}

void AnalysisSession::AddModule(ModuleSources module) {
  AddModule(module.name, std::move(module.files));
}

bool AnalysisSession::RemoveModule(const std::string& name) {
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return false;
  }
  // A linked table must not keep seeding importers with a departed module's
  // facts: retract its component and let the next RunLinked re-derive it.
  if (!link_table_.summaries().empty()) {
    for (const std::string& m : LinkedComponentOf({name})) {
      link_table_.RetractModule(m);
      if (m != name) {
        Invalidate(m);
      }
    }
  }
  modules_.erase(it);
  return true;
}

void AnalysisSession::Invalidate(const std::string& name) {
  auto it = modules_.find(name);
  if (it != modules_.end()) {
    it->second->dirty = true;
  }
}

bool AnalysisSession::ReplaceFunction(const std::string& module, const std::string& function,
                                      const std::string& new_definition) {
  auto it = modules_.find(module);
  if (it == modules_.end()) {
    return false;
  }
  // The replaced span ends at the closing brace (exclusive of the original
  // trailing newline), so strip trailing whitespace from the replacement —
  // otherwise every edit would grow the file by a line and shift the
  // locations of everything below it.
  std::string def = new_definition;
  while (!def.empty() && (def.back() == '\n' || def.back() == '\r' || def.back() == ' ')) {
    def.pop_back();
  }
  for (SourceFile& f : it->second->files) {
    size_t begin = 0;
    size_t end = 0;
    if (FindDefinition(f.text, function, &begin, &end)) {
      f.text = f.text.substr(0, begin) + def + f.text.substr(end);
      it->second->dirty = true;
      return true;
    }
  }
  return false;
}

bool AnalysisSession::ReplaceModuleSources(const std::string& name,
                                           std::vector<SourceFile> files) {
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return false;
  }
  it->second->files = std::move(files);
  it->second->dirty = true;
  return true;
}

WorkQueue* AnalysisSession::pool() {
  if (pipeline_.shard_functions() == 1) {
    return nullptr;  // serial kernels never touch a pool
  }
  if (pool_ == nullptr) {
    int shards = pipeline_.shard_functions();
    int workers =
        shards == 0 ? WorkQueue::ResolveHardware() : (shards > 1 ? shards - 1 : 1);
    pool_ = std::make_unique<WorkQueue>(workers);
  }
  return pool_.get();
}

void AnalysisSession::Analyze(const std::string& name, ModuleState* st) {
  Compilation* comp = st->comp.get();

  // Per-function dirty bits: fingerprint the fresh AST, diff against the
  // last successful analysis. Everything is keyed by name, so the diff
  // survives the wholesale AST replacement a recompile is. One-shot
  // sessions (track_incremental off) skip the bookkeeping entirely.
  uint64_t preamble = 0;
  std::map<std::string, uint64_t> fps;
  std::map<std::string, uint64_t> sigs;
  std::map<std::string, std::set<std::string>> refs;
  if (track_incremental_) {
    const uint64_t fp_t0 = MonotonicNowNs();
    preamble = FingerprintPreamble(comp->prog);
    for (const auto& [fname, fn] : comp->sema->func_map()) {
      if (fn->body == nullptr || fn->func_id < 0) {
        continue;
      }
      FunctionFingerprint fingerprint = FingerprintFunctionFull(comp->prog, fn);
      std::string key(fname);
      fps[key] = fingerprint.full;
      sigs[key] = fingerprint.sig;
      refs[key] = std::move(fingerprint.refs);
    }
    trace::GetHistogram("frontend.fingerprint_us")->Record((MonotonicNowNs() - fp_t0) / 1000);
  }

  // Cross-module imports: seed this compilation's AST (and the points-to
  // solve) with the current fact table. The fingerprints above were taken
  // first — imports are not source edits; the import signature below is
  // what detects their changes.
  std::string import_sig;
  st->link_seeds.clear();
  if (!link_table_.summaries().empty()) {
    AnnoDb::ImportOptions iopts;
    iopts.importer = name;
    iopts.out_seeds = &st->link_seeds;
    iopts.out_signature = &import_sig;
    link_table_.ApplyAttributes(&comp->prog, iopts);
  }

  // Warm only when sources AND imports are unchanged-compatible: the
  // function-granular machinery is exact for source diffs, but imported
  // facts are invisible to fingerprints, so any import change re-solves the
  // module cold (module granularity is the link stage's incremental unit).
  bool warm = track_incremental_ && st->have_snapshot && preamble == st->preamble_fp &&
              import_sig == st->import_sig;
  std::set<std::string> dirty_funcs;
  if (warm) {
    // Changed/added bodies...
    std::set<std::string> renamed;  // added, removed, or signature-changed
    for (const auto& [fname, fp] : fps) {
      auto it = st->func_fps.find(fname);
      if (it == st->func_fps.end()) {
        dirty_funcs.insert(fname);
        renamed.insert(fname);
      } else if (it->second != fp) {
        dirty_funcs.insert(fname);
        if (st->sig_fps[fname] != sigs[fname]) {
          renamed.insert(fname);
        }
      }
    }
    // ...removed functions...
    for (const auto& [fname, fp] : st->func_fps) {
      if (fps.count(fname) == 0) {
        dirty_funcs.insert(fname);
        renamed.insert(fname);
      }
    }
    // ...and functions whose name resolution changed: an unchanged body that
    // references an added/removed/re-signed function generates different
    // constraints, so it is dirty too.
    if (!renamed.empty()) {
      for (const auto& [fname, names] : refs) {
        if (dirty_funcs.count(fname) != 0) {
          continue;
        }
        for (const std::string& r : renamed) {
          if (names.count(r) != 0) {
            dirty_funcs.insert(fname);
            break;
          }
        }
      }
    }
  }

  st->hints = IncrementalHints{};
  if (warm) {
    st->hints.pointsto_prev = &st->pt_snapshot;
    st->hints.pointsto_dirty = dirty_funcs;
  }
  if (!st->link_seeds.empty()) {
    st->hints.pointsto_link = &st->link_seeds;
  }
  st->ctx = pipeline_.MakeContext(comp);
  if (track_incremental_) {
    st->ctx->EnableIncrementalTracking();
  }
  st->ctx->SetIncrementalHints(&st->hints);
  st->ctx->AttachPool(pool());

  // Warm the analyses the pipeline will need. Doing the call graph here (not
  // inside RunTools) lets the BlockStop seed be scoped to the affected
  // region before any pass runs.
  bool need_pt = false;
  bool need_cg = false;
  for (const std::string& step : pipeline_.Plan()) {
    need_pt |= step == "analysis:pointsto";
    need_cg |= step == "analysis:callgraph";
  }
  std::map<std::string, uint64_t> new_callees;
  if (need_cg) {
    const CallGraph& cg = st->ctx->callgraph();
    new_callees = cg.CalleeNameHashes();
    if (warm && st->have_mayblock) {
      // The edited region: fingerprint-dirty functions plus clean-bodied
      // functions whose resolved callee lists changed (an edit elsewhere
      // retargeted one of their indirect sites). Everything that can reach
      // the region is affected; everything else keeps its may-block bit.
      std::set<const FuncDecl*> changed;
      for (const FuncDecl* fn : cg.DefinedFuncs()) {
        auto it = st->callee_hashes.find(fn->name);
        if (dirty_funcs.count(fn->name) != 0 || it == st->callee_hashes.end() ||
            it->second != new_callees[fn->name]) {
          changed.insert(fn);
        }
      }
      std::set<const FuncDecl*> affected = cg.AncestorsOf(changed);
      st->hints.has_blockstop_seed = true;
      for (const FuncDecl* fn : cg.DefinedFuncs()) {
        if (affected.count(fn) == 0) {
          st->hints.blockstop_clean.insert(fn->name);
        }
      }
      st->hints.blockstop_prev_mayblock = st->prev_mayblock;
    }
  } else if (need_pt) {
    st->ctx->pointsto();
  }

  st->result = pipeline_.RunTools(*st->ctx);
  st->ok = true;
  st->compile_errors.clear();

  st->stats = ModuleStats{};
  st->stats.valid = true;
  st->stats.cold = !warm;
  st->stats.dirty_functions = warm ? static_cast<int>(dirty_funcs.size()) : -1;
  // Warm-vs-cold solve accounting for --metrics: how often the incremental
  // machinery actually pays off across a session's lifetime.
  if (trace::Enabled()) {
    trace::GetCounter(warm ? "session.solve_warm" : "session.solve_cold")->Add();
  }
  if (st->ctx->pointsto_builds() > 0) {
    const PointsTo& pt = st->ctx->pointsto();
    st->stats.pointsto_propagations = pt.solve_propagations();
    st->stats.pointsto_seeded_facts = pt.seeded_facts();
  }
  if (const ToolResult* r = st->result.ResultFor("blockstop")) {
    st->stats.mayblock_evals = r->Metric("mayblock_evals");
  }

  // Refresh the snapshots the next incremental run diffs against.
  st->import_sig = std::move(import_sig);
  st->defined_names.clear();
  st->extern_refs.clear();
  for (const auto& [fname, fn] : comp->sema->func_map()) {
    if (fn->func_id < 0 || fn->is_builtin) {
      continue;
    }
    (fn->body != nullptr ? st->defined_names : st->extern_refs).insert(std::string(fname));
  }
  st->have_link_names = true;
  st->have_snapshot = false;
  st->have_mayblock = false;
  if (track_incremental_) {
    st->preamble_fp = preamble;
    st->func_fps = std::move(fps);
    st->sig_fps = std::move(sigs);
    st->func_refs = std::move(refs);
    st->callee_hashes = std::move(new_callees);
    if (st->ctx->pointsto_builds() > 0) {
      st->pt_snapshot = st->ctx->pointsto().Snapshot();
      st->have_snapshot = true;
    }
    if (const ToolResult* r = st->result.ResultFor("blockstop")) {
      if (const BlockStopReport* report = r->DetailAs<BlockStopReport>()) {
        st->prev_mayblock = report->mayblock;
        st->have_mayblock = true;
      }
    }
  }
  st->dirty = false;
}

SessionResult AnalysisSession::Run() {
  // Phase A — frontend, serial: the FrontendCache hands every compilation
  // the same prelude token stream (lexed exactly once per session).
  std::vector<std::pair<const std::string*, ModuleState*>> to_analyze;
  for (auto& [name, st] : modules_) {
    st->analyzed_now = false;
    if (!st->dirty) {
      continue;
    }
    st->analyzed_now = true;
    st->ctx.reset();
    st->comp.reset();
    st->result = PipelineResult{};
    st->comp = pipeline_.Compile(st->files, &cache_);
    if (!st->comp->ok) {
      st->ok = false;
      st->compile_errors = st->comp->Errors();
      st->have_snapshot = false;
      st->have_mayblock = false;
      st->stats = ModuleStats{};
      st->dirty = false;  // until the sources change again
      continue;
    }
    to_analyze.push_back({&name, st.get()});
  }

  // Phase B — analysis: independent per module (private Compilation +
  // AnalysisContext; the shared pool isolates kernels via TaskGroup), so
  // dirty modules run concurrently in bounded batches when the pipeline is
  // parallel. Merge order never depends on completion order. The pool is
  // materialized here, before any Analyze thread exists — lazy construction
  // inside concurrent Analyze calls would race.
  pool();
  bool cancelled = false;
  size_t batch = static_cast<size_t>(WorkQueue::ResolveHardware());
  if (pipeline_.parallel() && to_analyze.size() > 1 && batch > 1) {
    for (size_t i = 0; i < to_analyze.size(); i += batch) {
      // Cancellation boundary: a batch that started finishes (kernels are
      // never interrupted); everything after it stays dirty for the resume.
      if (cancel_requested()) {
        cancelled = true;
        break;
      }
      size_t end = std::min(i + batch, to_analyze.size());
      std::vector<std::future<void>> futures;
      futures.reserve(end - i);
      for (size_t j = i; j < end; ++j) {
        auto [mod_name, st] = to_analyze[j];
        futures.push_back(std::async(std::launch::async,
                                     [this, mod_name, st] { Analyze(*mod_name, st); }));
      }
      for (std::future<void>& f : futures) {
        f.get();
      }
    }
  } else {
    for (auto [mod_name, st] : to_analyze) {
      if (cancel_requested()) {
        cancelled = true;
        break;
      }
      Analyze(*mod_name, st);
    }
  }

  // Phase C — deterministic corpus merge, in sorted-module-name order.
  return MergeResult(cancelled);
}

SessionResult AnalysisSession::MergeResult(bool cancelled) const {
  SessionResult out;
  out.cancelled = cancelled;
  for (const auto& [name, st] : modules_) {
    ModuleRunResult mr;
    mr.module = name;
    mr.ok = st->ok;
    mr.reanalyzed = st->analyzed_now;
    mr.result = st->result;
    mr.compile_errors = st->compile_errors;
    if (st->analyzed_now) {
      ++out.modules_analyzed;
    } else {
      ++out.modules_reused;
    }
    if (!st->ok) {
      ++out.compile_failures;
      Finding f;
      f.tool = "session";
      f.severity = FindingSeverity::kError;
      f.module = name;
      f.message = "module '" + name + "' failed to compile";
      out.findings.push_back(std::move(f));
    } else {
      for (const Finding& f : st->result.findings) {
        Finding stamped = f;
        stamped.module = name;
        out.findings.push_back(std::move(stamped));
      }
    }
    out.modules.push_back(std::move(mr));
  }
  return out;
}

// ---------------------------------------------------------------------------
// The link stage: per-function summary exchange between modules.
// ---------------------------------------------------------------------------

std::vector<FuncSummary> AnalysisSession::ExtractSummaries(const std::string& name,
                                                           ModuleState& st) const {
  std::vector<FuncSummary> out;
  if (!st.ok || st.ctx == nullptr) {
    return out;
  }
  const BlockStopReport* bs = nullptr;
  const ErrCheckReport* ec = nullptr;
  const LockSafeReport* ls = nullptr;
  if (const ToolResult* r = st.result.ResultFor("blockstop")) {
    bs = r->DetailAs<BlockStopReport>();
  }
  if (const ToolResult* r = st.result.ResultFor("errcheck")) {
    ec = r->DetailAs<ErrCheckReport>();
  }
  if (const ToolResult* r = st.result.ResultFor("locksafe")) {
    ls = r->DetailAs<LockSafeReport>();
  }
  // Read-only views of what the analyses already built; never force a build
  // here (a pipeline without the consuming pass exports no such facts).
  const CallGraph* cg = st.ctx->callgraph_builds() > 0 ? &st.ctx->callgraph() : nullptr;
  const PointsTo* pt = st.ctx->pointsto_builds() > 0 ? &st.ctx->pointsto() : nullptr;
  const IrModule& ir = st.ctx->module();

  for (const auto& [fname, fn] : st.ctx->sema().func_map()) {
    if (fn->func_id < 0 || fn->is_builtin) {
      continue;
    }
    FuncSummary row;
    row.module = name;
    row.function = fname;
    if (fn->body != nullptr) {
      // Definer row: bottom-up facts. The attrs here are source-pure — the
      // import path only mutates extern declarations' behavioural attrs.
      row.defined = true;
      row.blocking = fn->attrs.blocking;
      row.noblock = fn->attrs.noblock;
      row.blocking_if_param = fn->attrs.blocking_if_param;
      row.errcodes = fn->attrs.errcodes;
      row.frame_size = static_cast<size_t>(fn->func_id) < ir.funcs.size()
                           ? ir.funcs[static_cast<size_t>(fn->func_id)].frame_size
                           : fn->frame_size;
      if (bs != nullptr) {
        row.may_block = bs->mayblock.count(row.function) != 0;
        auto w = bs->mayblock_witness.find(row.function);
        if (w != bs->mayblock_witness.end()) {
          row.block_witness = w->second;
        }
      }
      if (ec != nullptr) {
        row.returns_error = ec->err_funcs.count(row.function) != 0;
      }
      if (ls != nullptr) {
        auto lk = ls->locks_acquired.find(row.function);
        if (lk != ls->locks_acquired.end()) {
          row.locks_acquired = lk->second;
        }
      }
      if (cg != nullptr) {
        std::set<std::string> callees;
        for (const CallSite& site : cg->SitesOf(fn)) {
          for (const FuncDecl* callee : site.McCallees()) {
            callees.insert(callee->name);
          }
        }
        row.callees.assign(callees.begin(), callees.end());
      }
      if (pt != nullptr) {
        row.returns_points = pt->FuncNamesInCell(fn, -1);
      }
    } else {
      // Usage row: top-down facts about an extern-declared function.
      if (bs != nullptr) {
        auto b = bs->extern_entry_bits.find(row.function);
        row.entered_atomic = b != bs->extern_entry_bits.end() && (b->second & 2) != 0;
      }
      if (ls != nullptr) {
        row.entered_in_irq =
            std::binary_search(ls->extern_irq_callees.begin(),
                               ls->extern_irq_callees.end(), fname);
      }
      if (pt != nullptr) {
        for (size_t p = 0; p < fn->params.size(); ++p) {
          std::vector<std::string> names = pt->FuncNamesInCell(fn, static_cast<int>(p));
          if (!names.empty()) {
            row.param_points[static_cast<int>(p)] = std::move(names);
          }
        }
      }
    }
    out.push_back(std::move(row));
  }
  return out;
}

void AnalysisSession::ComputeLinkStackFacts() {
  link_conflicts_.clear();
  // Definer rows only; first (sorted-module) definer wins a conflicted name.
  std::map<std::string, std::pair<std::string, const FuncSummary*>> definer;
  for (const auto& [key, row] : link_table_.summaries()) {
    if (!row.defined) {
      continue;
    }
    auto [it, inserted] = definer.emplace(row.function, std::make_pair(key.first, &row));
    if (!inserted) {
      link_conflicts_.insert(row.function);
    }
  }
  const int n = static_cast<int>(definer.size());
  std::vector<std::string> names;
  std::vector<std::string> owner;
  std::vector<int64_t> frames;
  names.reserve(static_cast<size_t>(n));
  std::map<std::string, int> index;
  for (const auto& [fname, def] : definer) {
    index[fname] = static_cast<int>(names.size());
    names.push_back(fname);
    owner.push_back(def.first);
    frames.push_back(def.second->frame_size);
  }
  std::vector<std::vector<int>> adj(static_cast<size_t>(n));
  std::vector<uint8_t> self_loop(static_cast<size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (const std::string& callee : definer[names[static_cast<size_t>(i)]].second->callees) {
      auto it = index.find(callee);
      if (it == index.end()) {
        continue;  // builtin or never-defined name: no frame, no edge
      }
      if (it->second == i) {
        self_loop[static_cast<size_t>(i)] = 1;
      }
      adj[static_cast<size_t>(i)].push_back(it->second);
    }
  }

  // Tarjan in sorted-name order (src/support/scc.h) — literally the same
  // condensation code StackCheck runs per module, applied corpus-wide.
  SccCondensation scc = TarjanScc(adj);
  const std::vector<int>& scc_of = scc.scc_of;
  const std::vector<std::vector<int>>& scc_members = scc.members;

  const size_t scc_count = scc_members.size();
  std::vector<int64_t> weight(scc_count, 0);
  std::vector<uint8_t> cyclic(scc_count, 0);
  std::vector<uint8_t> multi_module(scc_count, 0);
  std::vector<std::vector<int>> succs(scc_count);
  for (size_t s = 0; s < scc_count; ++s) {
    std::set<std::string> mods;
    for (int v : scc_members[s]) {
      weight[s] += frames[static_cast<size_t>(v)];
      mods.insert(owner[static_cast<size_t>(v)]);
      if (self_loop[static_cast<size_t>(v)]) {
        cyclic[s] = 1;
      }
    }
    if (scc_members[s].size() > 1) {
      cyclic[s] = 1;
    }
    multi_module[s] = mods.size() > 1 ? 1 : 0;
  }
  for (int v = 0; v < n; ++v) {
    for (int w : adj[static_cast<size_t>(v)]) {
      int sv = scc_of[static_cast<size_t>(v)];
      int sw = scc_of[static_cast<size_t>(w)];
      if (sv != sw) {
        succs[static_cast<size_t>(sv)].push_back(sw);
      }
    }
  }
  // Tarjan emits SCCs in reverse topological order: successors of s always
  // have smaller scc ids, so one ascending sweep computes the depths.
  std::vector<int64_t> depth(scc_count, 0);
  for (size_t s = 0; s < scc_count; ++s) {
    int64_t deepest = 0;
    for (int succ : succs[s]) {
      deepest = std::max(deepest, depth[static_cast<size_t>(succ)]);
    }
    depth[s] = weight[s] + deepest;
  }

  for (int v = 0; v < n; ++v) {
    FuncSummary* row =
        link_table_.FindSummary(owner[static_cast<size_t>(v)], names[static_cast<size_t>(v)]);
    if (row == nullptr) {
      continue;
    }
    size_t s = static_cast<size_t>(scc_of[static_cast<size_t>(v)]);
    row->stack_below = depth[s];
    row->cross_recursive = cyclic[s] != 0 && multi_module[s] != 0;
  }
}

std::set<std::string> AnalysisSession::LinkedComponentOf(
    const std::set<std::string>& roots) const {
  std::map<std::string, std::vector<std::string>> definers;
  std::map<std::string, std::vector<std::string>> referencers;
  for (const auto& [mname, st] : modules_) {
    if (!st->have_link_names) {
      continue;
    }
    for (const std::string& f : st->defined_names) {
      definers[f].push_back(mname);
    }
    for (const std::string& f : st->extern_refs) {
      referencers[f].push_back(mname);
    }
  }
  std::set<std::string> out;
  std::vector<std::string> work(roots.begin(), roots.end());
  while (!work.empty()) {
    std::string m = std::move(work.back());
    work.pop_back();
    if (!out.insert(m).second) {
      continue;
    }
    auto it = modules_.find(m);
    if (it == modules_.end() || !it->second->have_link_names) {
      continue;
    }
    for (const std::string& f : it->second->defined_names) {
      for (const std::string& user : referencers[f]) {
        if (out.count(user) == 0) {
          work.push_back(user);
        }
      }
    }
    for (const std::string& f : it->second->extern_refs) {
      for (const std::string& def : definers[f]) {
        if (out.count(def) == 0) {
          work.push_back(def);
        }
      }
    }
  }
  return out;
}

void AnalysisSession::PrepareLinkedRun() {
  link_stats_ = LinkStats{};

  // Retraction safety. A monotone fixpoint cannot un-derive facts, and a
  // stale "f may block" row can keep supporting itself around a
  // cross-module cycle after the edit that justified it is gone. So every
  // edit clears the whole cross-module dependency component containing the
  // edited modules — their rows are re-derived from below, while modules
  // outside the component keep their converged facts and cached results.
  std::set<std::string> source_dirty;
  for (auto& [name, st] : modules_) {
    if (st->dirty) {
      source_dirty.insert(name);
    }
  }
  if (!linked_ever_) {
    link_table_ = AnnoDb();
    for (auto& [name, st] : modules_) {
      (void)name;
      st->dirty = true;
    }
  } else if (!source_dirty.empty()) {
    for (const std::string& m : LinkedComponentOf(source_dirty)) {
      link_table_.RetractModule(m);
      Invalidate(m);
    }
  }
}

AnalysisSession::LinkTableSnapshot AnalysisSession::SnapshotLinkTable() const {
  LinkTableSnapshot snap;
  for (const auto& [key, row] : link_table_.summaries()) {
    snap[key] = {row.Canonical(), row.defined, row.cross_recursive, row.stack_below};
  }
  return snap;
}

std::set<std::string> AnalysisSession::DiffLinkTable(const LinkTableSnapshot& before,
                                                     const LinkTableSnapshot& after) const {
  // Mark exactly the importers of changed facts dirty: a changed definer
  // row dirties the modules that declare the function extern; a changed
  // usage row dirties its definer; changed link-stage stack facts feed back
  // into the definer itself when a cross-module cycle appears or
  // disappears.
  std::set<std::string> dirty;
  auto visit_changed = [this, &dirty](const std::pair<std::string, std::string>& key,
                                      const LinkRowState* oldr, const LinkRowState* newr) {
    const std::string& exporter = key.first;
    const std::string& fname = key.second;
    bool defined = newr != nullptr ? newr->defined : oldr->defined;
    for (const auto& [mname, st] : modules_) {
      if (mname == exporter || !st->have_link_names) {
        continue;
      }
      if (defined ? st->extern_refs.count(fname) != 0
                  : st->defined_names.count(fname) != 0) {
        dirty.insert(mname);
      }
    }
    if (defined) {
      bool xrec_changed =
          (oldr == nullptr ? false : oldr->cross_recursive) !=
              (newr == nullptr ? false : newr->cross_recursive) ||
          ((oldr != nullptr && oldr->cross_recursive) &&
           (newr != nullptr && newr->cross_recursive) &&
           oldr->stack_below != newr->stack_below);
      if (xrec_changed) {
        dirty.insert(exporter);
      }
    }
  };
  for (const auto& [key, oldr] : before) {
    auto it = after.find(key);
    if (it == after.end()) {
      visit_changed(key, &oldr, nullptr);
    } else if (it->second.canon != oldr.canon) {
      visit_changed(key, &oldr, &it->second);
    }
  }
  for (const auto& [key, newr] : after) {
    if (before.count(key) == 0) {
      visit_changed(key, nullptr, &newr);
    }
  }
  return dirty;
}

void AnalysisSession::FinishLinkedRun(int max_rounds, SessionResult* result) {
  link_stats_.summary_rows = static_cast<int>(link_table_.summaries().size());
  for (const auto& [mname, st] : modules_) {
    if (!st->have_link_names) {
      continue;
    }
    for (const auto& [nname, nst] : modules_) {
      if (mname == nname || !nst->have_link_names) {
        continue;
      }
      for (const std::string& f : st->extern_refs) {
        if (nst->defined_names.count(f) != 0) {
          ++link_stats_.cross_edges;
          break;
        }
      }
    }
  }
  linked_ever_ = true;

  if (!link_stats_.converged && !link_stats_.cancelled) {
    Finding f;
    f.tool = "session";
    f.severity = FindingSeverity::kError;
    f.message = "cross-module link fixpoint did not converge within " +
                std::to_string(max_rounds) + " rounds";
    result->findings.push_back(std::move(f));
  }
  for (const std::string& fname : link_conflicts_) {
    Finding f;
    f.tool = "session";
    f.severity = FindingSeverity::kError;
    f.message = "function '" + fname +
                "' is defined in multiple modules; linking used the first definer's facts";
    f.witness = {fname};
    result->findings.push_back(std::move(f));
  }
}

SessionResult AnalysisSession::RunLinked() {
  PrepareLinkedRun();

  // Safety cap: facts grow monotonically within a linked run, so the
  // fixpoint terminates on its own; the cap only guards against a future
  // non-monotone exporter bug turning into an infinite loop.
  const int max_rounds = static_cast<int>(modules_.size()) * 4 + 8;
  SessionResult result;
  for (;;) {
    // Cancellation boundary between rounds (Run() also checks between
    // modules): an aborted fixpoint reports cancelled, leaves the dirty
    // modules dirty, and skips the summary re-export — the table keeps the
    // last fully-exported round, so a resumed RunLinked() re-derives from a
    // consistent base.
    if (cancel_requested()) {
      link_stats_.cancelled = true;
      result.cancelled = true;
      break;
    }
    ++link_stats_.rounds;
    // One span per fixpoint round (dirty count attached once the diff is
    // known) plus a round-latency histogram — the fixpoint's progress curve
    // in a Perfetto view.
    trace::Span round_span("session.link_round",
                           {"round", static_cast<int64_t>(link_stats_.rounds)});
    const uint64_t round_t0 = trace::Enabled() ? MonotonicNowNs() : 0;
    result = Run();
    if (result.cancelled) {
      link_stats_.cancelled = true;
      break;
    }
    link_stats_.module_analyses += result.modules_analyzed;

    LinkTableSnapshot before = SnapshotLinkTable();
    for (auto& [name, st] : modules_) {
      if (!st->analyzed_now) {
        continue;
      }
      link_table_.RetractModule(name);  // the table holds only summary rows
      for (FuncSummary& row : ExtractSummaries(name, *st)) {
        link_table_.AddSummary(std::move(row));
      }
    }
    ComputeLinkStackFacts();

    std::set<std::string> dirty = DiffLinkTable(before, SnapshotLinkTable());
    round_span.AddArg({"dirty", static_cast<int64_t>(dirty.size())});
    if (trace::Enabled()) {
      trace::GetHistogram("session.link_round_us")
          ->Record((MonotonicNowNs() - round_t0) / 1000);
      trace::GetCounter("session.dirty_modules")->Add(dirty.size());
    }
    if (dirty.empty()) {
      link_stats_.converged = true;
      break;
    }
    // Invalidate BEFORE the cap check: if the cap fires, the unconverged
    // modules stay dirty, so a follow-up RunLinked() resumes the fixpoint
    // instead of reporting the stale table as converged.
    for (const std::string& m : dirty) {
      Invalidate(m);
    }
    if (link_stats_.rounds >= max_rounds) {
      break;
    }
  }

  FinishLinkedRun(max_rounds, &result);
  return result;
}

AnnoDb AnalysisSession::ExportAnnoDb() {
  AnnoDb merged;
  for (auto& [name, st] : modules_) {
    if (!st->ok || st->ctx == nullptr) {
      continue;
    }
    AnnoDb db = AnnoDb::Extract(*st->ctx, &st->result);
    db.StampModule(name);
    std::vector<Finding> stamped = st->result.findings;
    for (Finding& f : stamped) {
      f.module = name;
    }
    db.SetFindings(std::move(stamped), &st->ctx->sm());
    merged.Merge(db);
  }
  // The summary fact table rides along: the converged link table when the
  // session has linked, else fresh per-module rows (no corpus stack facts —
  // those need the link fixpoint).
  if (linked_ever_) {
    merged.Merge(link_table_);
  } else {
    for (auto& [name, st] : modules_) {
      for (FuncSummary& row : ExtractSummaries(name, *st)) {
        merged.AddSummary(std::move(row));
      }
    }
  }
  return merged;
}

const Compilation* AnalysisSession::CompilationFor(const std::string& name) const {
  auto it = modules_.find(name);
  return it == modules_.end() ? nullptr : it->second->comp.get();
}

ModuleStats AnalysisSession::StatsFor(const std::string& name) const {
  auto it = modules_.find(name);
  return it == modules_.end() ? ModuleStats{} : it->second->stats;
}

PipelineRun AnalysisSession::TakeModule(const std::string& name) {
  PipelineRun run;
  auto it = modules_.find(name);
  if (it == modules_.end()) {
    return run;
  }
  ModuleState& st = *it->second;
  if (st.ctx != nullptr) {
    // The session (hints storage, pool) will not outlive these artifacts.
    st.ctx->SetIncrementalHints(nullptr);
    st.ctx->AttachPool(nullptr);
  }
  run.comp = std::move(st.comp);
  run.ctx = std::move(st.ctx);
  run.result = std::move(st.result);
  modules_.erase(it);
  return run;
}

// ---------------------------------------------------------------------------
// The pipeline-level shims: one code path for one-shot and corpus runs.
// ---------------------------------------------------------------------------

PipelineRun Pipeline::CompileAndRun(const std::vector<SourceFile>& files) const {
  AnalysisSession session(*this, /*track_incremental=*/false);
  session.AddModule("", files);
  session.Run();
  return session.TakeModule("");
}

AnalysisSession PipelineBuilder::BuildSession() const {
  AnalysisSession session(pipeline_);
  for (const ModuleSources& m : modules_) {
    session.AddModule(m);
  }
  return session;
}

}  // namespace ivy
