#include "src/tool/function_sharder.h"

#include <exception>

#include "src/support/clock.h"
#include "src/support/trace.h"

namespace ivy {

FunctionSharder::FunctionSharder(std::vector<const FuncDecl*> funcs, int shards)
    : funcs_(std::move(funcs)) {
  int n = shards > 0 ? shards : WorkQueue::ResolveHardware();
  if (!funcs_.empty() && static_cast<size_t>(n) > funcs_.size()) {
    n = static_cast<int>(funcs_.size());
  }
  shard_count_ = n < 1 ? 1 : n;
  for (size_t i = 0; i < funcs_.size(); ++i) {
    index_[funcs_[i]] = i;
  }
}

size_t FunctionSharder::IndexOf(const FuncDecl* fn) const {
  auto it = index_.find(fn);
  return it == index_.end() ? funcs_.size() : it->second;
}

std::vector<std::pair<size_t, size_t>> FunctionSharder::Partition(size_t n_items) const {
  std::vector<std::pair<size_t, size_t>> ranges;
  if (n_items == 0) {
    return ranges;
  }
  size_t chunks = static_cast<size_t>(shard_count_);
  if (chunks > n_items) {
    chunks = n_items;
  }
  size_t base = n_items / chunks;
  size_t extra = n_items % chunks;  // first `extra` chunks get one more item
  size_t begin = 0;
  for (size_t c = 0; c < chunks; ++c) {
    size_t len = base + (c < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + len);
    begin += len;
  }
  return ranges;
}

void FunctionSharder::ParallelChunks(
    WorkQueue& wq, size_t n_items,
    const std::function<void(int, size_t, size_t)>& kernel) const {
  RunChunks(wq, Partition(n_items), kernel);
}

void FunctionSharder::RunChunks(WorkQueue& wq,
                                const std::vector<std::pair<size_t, size_t>>& ranges,
                                const std::function<void(int, size_t, size_t)>& kernel) const {
  if (ranges.empty()) {
    return;
  }
  // Chunks 1..k-1 run through a TaskGroup (scoped to this round, so several
  // kernels can share one pool without seeing each other's completion or
  // exceptions); chunk 0 runs help-first on the calling thread.
  //
  // Queue-wait observability: when tracing is on, each submitted chunk
  // carries its submission timestamp and records Submit→start latency into
  // "sharder.queue_wait_us" plus a "shard.chunk" span for the kernel run.
  // The chunk index rides in the span args, so a Perfetto view shows which
  // shard sat behind which.
  TaskGroup group(wq);
  const bool traced = trace::Enabled();
  for (size_t c = 1; c < ranges.size(); ++c) {
    const uint64_t submit_ns = traced ? MonotonicNowNs() : 0;
    group.Submit([c, submit_ns, traced, &ranges, &kernel] {
      if (traced) {
        trace::GetHistogram("sharder.queue_wait_us")
            ->Record((MonotonicNowNs() - submit_ns) / 1000);
        trace::Span span("shard.chunk", {"chunk", static_cast<int64_t>(c)});
        kernel(static_cast<int>(c), ranges[c].first, ranges[c].second);
        return;
      }
      kernel(static_cast<int>(c), ranges[c].first, ranges[c].second);
    });
  }
  std::exception_ptr inline_err;
  try {
    kernel(0, ranges[0].first, ranges[0].second);
  } catch (...) {
    inline_err = std::current_exception();
  }
  if (ranges.size() > 1) {
    try {
      group.Wait();
    } catch (...) {
      if (!inline_err) {
        throw;
      }
    }
  }
  if (inline_err) {
    std::rethrow_exception(inline_err);
  }
}

}  // namespace ivy
