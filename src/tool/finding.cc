#include "src/tool/finding.h"

#include "src/support/source.h"

namespace ivy {

const char* FindingSeverityName(FindingSeverity s) {
  switch (s) {
    case FindingSeverity::kNote:
      return "note";
    case FindingSeverity::kWarning:
      return "warning";
    case FindingSeverity::kError:
      return "error";
  }
  return "unknown";
}

namespace {

FindingSeverity SeverityFromName(const std::string& name) {
  if (name == "note") {
    return FindingSeverity::kNote;
  }
  if (name == "error") {
    return FindingSeverity::kError;
  }
  return FindingSeverity::kWarning;
}

}  // namespace

Json Finding::ToJson(const SourceManager* sm) const {
  Json j = Json::MakeObject();
  j["tool"] = Json::MakeString(tool);
  j["severity"] = Json::MakeString(FindingSeverityName(severity));
  j["file"] = Json::MakeInt(loc.file);
  j["line"] = Json::MakeInt(loc.line);
  j["col"] = Json::MakeInt(loc.col);
  if (sm != nullptr && loc.IsValid()) {
    j["at"] = Json::MakeString(sm->Render(loc));
  }
  j["message"] = Json::MakeString(message);
  Json w = Json::MakeArray();
  for (const std::string& step : witness) {
    w.Append(Json::MakeString(step));
  }
  j["witness"] = std::move(w);
  if (!module.empty()) {
    j["module"] = Json::MakeString(module);
  }
  return j;
}

Finding Finding::FromJson(const Json& j) {
  Finding f;
  if (const Json* t = j.Find("tool")) {
    f.tool = t->AsString();
  }
  if (const Json* s = j.Find("severity")) {
    f.severity = SeverityFromName(s->AsString());
  }
  if (const Json* v = j.Find("file")) {
    f.loc.file = static_cast<int32_t>(v->AsInt(-1));
  }
  if (const Json* v = j.Find("line")) {
    f.loc.line = static_cast<int32_t>(v->AsInt());
  }
  if (const Json* v = j.Find("col")) {
    f.loc.col = static_cast<int32_t>(v->AsInt());
  }
  if (const Json* m = j.Find("message")) {
    f.message = m->AsString();
  }
  if (const Json* w = j.Find("witness")) {
    for (const Json& step : w->array()) {
      f.witness.push_back(step.AsString());
    }
  }
  if (const Json* m = j.Find("module")) {
    f.module = m->AsString();
  }
  return f;
}

std::string Finding::ToString(const SourceManager* sm) const {
  std::string out = "[" + tool + "] ";
  out += FindingSeverityName(severity);
  if (sm != nullptr && loc.IsValid()) {
    out += " at " + sm->Render(loc);
  }
  out += ": " + message;
  if (!witness.empty()) {
    out += " (";
    for (size_t i = 0; i < witness.size(); ++i) {
      if (i > 0) {
        out += " -> ";
      }
      out += witness[i];
    }
    out += ")";
  }
  return out;
}

bool FindingQuery::Matches(const Finding& f) const {
  if (!tool.empty() && f.tool != tool) {
    return false;
  }
  if (!module.empty() && f.module != module) {
    return false;
  }
  if (function.empty()) {
    return true;
  }
  for (const std::string& step : f.witness) {
    if (step == function || step == "calls " + function) {
      return true;
    }
  }
  return f.message.find("'" + function + "'") != std::string::npos;
}

int ToolResult::CountAtLeast(FindingSeverity min) const {
  int n = 0;
  for (const Finding& f : findings_) {
    if (static_cast<int>(f.severity) >= static_cast<int>(min)) {
      ++n;
    }
  }
  return n;
}

int64_t ToolResult::Metric(const std::string& key, int64_t def) const {
  auto it = metrics_.find(key);
  return it == metrics_.end() ? def : it->second;
}

Json ToolResult::ToJson(const SourceManager* sm) const {
  Json j = Json::MakeObject();
  j["tool"] = Json::MakeString(tool_);
  if (!summary_.empty()) {
    j["summary"] = Json::MakeString(summary_);
  }
  Json fs = Json::MakeArray();
  for (const Finding& f : findings_) {
    fs.Append(f.ToJson(sm));
  }
  j["findings"] = std::move(fs);
  Json ms = Json::MakeObject();
  for (const auto& [key, v] : metrics_) {
    ms[key] = Json::MakeInt(v);
  }
  j["metrics"] = std::move(ms);
  return j;
}

}  // namespace ivy
