// The unified tool pipeline (the driver redesign): a fluent PipelineBuilder
// configures which passes run and with what options, Pipeline::Compile runs
// the frontend (lex/parse/sema/lower — what the old free Compile() did), and
// Pipeline::RunTools schedules every configured pass over one shared
// AnalysisContext. Passes that declared their analyses via Requires() run in
// parallel (std::async) — results are still merged in request order, so
// parallel and serial runs produce byte-identical finding lists.
//
// Corpus scale lives one layer up: PipelineBuilder::ForEachModule(...) +
// BuildSession() produce an AnalysisSession (src/tool/session.h) that runs
// this pipeline over N named modules with one shared worker pool, reused
// prelude tokens, and incremental re-analysis. CompileAndRun is itself a
// thin shim over a single-module session, so every driver goes through the
// same path.
//
// The old entry points survive as shims: Compile()/CompileOne() in
// src/driver/compiler.h delegate here, and the flat ToolConfig maps onto a
// builder via PipelineBuilder::FromToolConfig.
#ifndef SRC_TOOL_PIPELINE_H_
#define SRC_TOOL_PIPELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/compiler.h"
#include "src/mc/token.h"
#include "src/tool/analysis_context.h"
#include "src/tool/finding.h"
#include "src/tool/tool_pass.h"

namespace ivy {

class AnalysisSession;

// One named corpus member: what AnalysisSession compiles and analyzes as a
// unit. Names are the provenance key (Finding::module) and must be unique
// within a session.
struct ModuleSources {
  std::string name;
  std::vector<SourceFile> files;
};

// Frontend artifacts shared across the compilations of a corpus. The
// prelude's token stream is identical for every module (always the first
// file registered, so even the embedded file ids match); lexing it once and
// re-parsing from the cached tokens is the "reuse prelude parse results"
// half of batched compilation. The counter exists for tests.
struct FrontendCache {
  std::shared_ptr<std::vector<Token>> prelude_tokens;
  int64_t prelude_reuses = 0;
  // Interned prelude strings, snapshotted after the first module's prelude
  // parse and seeded into every later module's interner (same ids, one copy
  // of the bytes). Arena mode only — heap-mode interners don't deduplicate.
  std::shared_ptr<const InternSnapshot> prelude_interns;
  int64_t intern_seeds = 0;
};

// Merged output of one RunTools call. `results` holds one entry per
// configured pass in request order; `findings` is the concatenation of every
// pass's findings in that same order (the deterministic merge).
struct PipelineResult {
  std::vector<ToolResult> results;
  std::vector<Finding> findings;
  bool parallel = false;
  int pointsto_builds = 0;   // snapshot of the context counters after the run
  int callgraph_builds = 0;

  const ToolResult* ResultFor(const std::string& tool) const;
  int ErrorCount() const;

  Json ToJson(const SourceManager* sm = nullptr) const;
  std::string ToString(const SourceManager* sm = nullptr) const;
};

// A compiled program together with the pipeline artifacts that analyzed it.
struct PipelineRun {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<AnalysisContext> ctx;  // declared after comp: destroyed first
  PipelineResult result;
};

class Pipeline {
 public:
  // Frontend only: source -> Compilation (never null; check ->ok). With a
  // FrontendCache, the prelude token stream is lexed once and reused across
  // calls (what AnalysisSession passes for corpus builds).
  std::unique_ptr<Compilation> Compile(const std::vector<SourceFile>& files,
                                       FrontendCache* cache = nullptr) const;

  // Context at this pipeline's configured points-to precision. Prefer this
  // over constructing AnalysisContext directly so FieldSensitive() cannot
  // silently diverge from the context the tools actually run against.
  std::unique_ptr<AnalysisContext> MakeContext(Compilation* comp) const;

  // Runs every configured pass over `ctx`. Unknown tool names become
  // severity-error findings attributed to tool "pipeline".
  PipelineResult RunTools(AnalysisContext& ctx) const;

  // Compile + analyze in one step. If compilation fails, `result` is empty
  // and `ctx` is null. Implemented as a single-module AnalysisSession (see
  // src/tool/session.cc), so one-shot runs and corpus runs share one code
  // path.
  PipelineRun CompileAndRun(const std::vector<SourceFile>& files) const;

  // The schedule RunTools would execute: required analyses first (in
  // dependency order, each exactly once), then the passes in request order.
  // Entries look like "analysis:callgraph" and "pass:blockstop".
  std::vector<std::string> Plan() const;

  const ToolConfig& config() const { return config_; }
  const std::vector<std::string>& tools() const { return tools_; }
  const std::map<std::string, ToolOptions>& tool_options() const { return options_; }
  bool parallel() const { return parallel_; }
  bool field_sensitive() const { return field_sensitive_; }
  int shard_functions() const { return shards_; }

 private:
  friend class PipelineBuilder;

  ToolConfig config_;                 // frontend + VM knobs (legacy bag)
  std::vector<std::string> tools_;    // pass names, request order
  std::map<std::string, ToolOptions> options_;
  bool parallel_ = true;
  bool field_sensitive_ = true;
  int shards_ = 1;                    // per-function shards (0 = hardware)
};

class PipelineBuilder {
 public:
  // Enables a pass by registry name (deduplicated; first request wins the
  // position, later options replace earlier ones).
  PipelineBuilder& Tool(const std::string& name);
  PipelineBuilder& Tool(const std::string& name, ToolOptions opts);
  // Every registered pass, in sorted-name order.
  PipelineBuilder& AllTools();

  // Schedules VM workload functions as the dynamic "workload" pass: each
  // spec is "fn" or "fn:arg:arg..." and runs in its own bytecode VM (over
  // one shared compiled image) on the pipeline's worker pool; `boot` is an
  // optional spec executed first in every workload VM (e.g.
  // "boot_kernel:5"). Traps, might-sleep violations, and CCount bad frees
  // observed by the runs become findings — stamped with module provenance
  // by sessions, like any static pass's.
  PipelineBuilder& RunWorkload(const std::vector<std::string>& fns,
                               const std::string& boot = std::string());

  PipelineBuilder& Parallel(bool on);
  PipelineBuilder& FieldSensitive(bool on);

  // Per-function sharding inside the passes that support it (blockstop,
  // stackcheck): split the intra-pass fixpoints over `n` shards driven by a
  // work queue. `n == 0` means hardware concurrency, `n == 1` (the default)
  // keeps the serial reference kernels. Findings are byte-identical for any
  // value — the sharding layer merges in function-declaration order. Reaches
  // the passes as the "shards" ToolOptions key; a per-tool option set
  // explicitly via Tool(name, opts) wins over this pipeline-wide value.
  PipelineBuilder& ShardFunctions(int n);

  // Frontend / VM knobs (the surviving ToolConfig fields).
  PipelineBuilder& Deputy(bool on);
  PipelineBuilder& Discharge(bool on);
  PipelineBuilder& CCount(bool on);
  PipelineBuilder& Smp(bool on);
  PipelineBuilder& TrackLocals(bool on);
  PipelineBuilder& RcWidthBits(int bits);
  PipelineBuilder& IncludePrelude(bool on);
  // A/B knob: allocate AST nodes individually on the heap instead of in the
  // per-module arena (the pre-arena cost model). Analyses and fingerprints
  // are byte-identical either way; only allocation behaviour differs.
  PipelineBuilder& HeapAst(bool on);

  // Maps the legacy flat config onto a builder (the Compile() shim).
  static PipelineBuilder FromToolConfig(const ToolConfig& config);

  // Corpus mode: registers named modules for BuildSession(). One builder
  // call then compiles every module (reusing prelude tokens) and schedules
  // the configured passes across the whole corpus; the session's merged
  // findings are byte-identical regardless of module registration order or
  // shard count. Appends to any modules registered earlier; duplicate names
  // replace the earlier sources.
  PipelineBuilder& ForEachModule(std::vector<ModuleSources> modules);

  // Builds a long-lived AnalysisSession over the configured pipeline and
  // the ForEachModule corpus (possibly empty — AddModule later). Defined in
  // src/tool/session.cc.
  AnalysisSession BuildSession() const;

  Pipeline Build() const { return pipeline_; }

 private:
  Pipeline pipeline_;
  std::vector<ModuleSources> modules_;
};

}  // namespace ivy

#endif  // SRC_TOOL_PIPELINE_H_
