// String-keyed registry of tool passes. Tools self-register at static
// initialization time (see the ToolPassRegistrar objects in passes.cc), so
// adding a seventh tool is: implement ToolPass, declare one registrar —
// no driver edits, no switch statements.
#ifndef SRC_TOOL_REGISTRY_H_
#define SRC_TOOL_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/tool/tool_pass.h"

namespace ivy {

class ToolRegistry {
 public:
  using Factory = std::function<std::unique_ptr<ToolPass>()>;

  static ToolRegistry& Instance();

  // First registration for a name wins: a duplicate is rejected (returns
  // false, keeps the original factory) instead of silently replacing a tool
  // other pipelines may already reference by name.
  bool Register(const std::string& name, Factory factory);

  // Fresh pass instance, or nullptr for an unknown tool.
  std::unique_ptr<ToolPass> Create(const std::string& name) const;

  bool Has(const std::string& name) const { return factories_.count(name) != 0; }

  // All registered names, sorted (deterministic AllTools() pipelines).
  std::vector<std::string> Names() const;

 private:
  ToolRegistry() = default;
  std::map<std::string, Factory> factories_;
};

// Static self-registration hook:
//   static ToolPassRegistrar reg("blockstop", [] { return std::make_unique<...>(); });
struct ToolPassRegistrar {
  ToolPassRegistrar(const std::string& name, ToolRegistry::Factory factory);
};

}  // namespace ivy

#endif  // SRC_TOOL_REGISTRY_H_
