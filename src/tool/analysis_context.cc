#include "src/tool/analysis_context.h"

namespace ivy {

AnalysisContext::AnalysisContext(Compilation* comp, bool field_sensitive)
    : comp_(comp), field_sensitive_(field_sensitive) {}

AnalysisContext::~AnalysisContext() = default;

const PointsTo& AnalysisContext::pointsto() {
  std::call_once(pt_once_, [this] {
    pt_ = std::make_unique<PointsTo>(&comp_->prog, comp_->sema.get(), field_sensitive_);
    if (incremental_) {
      pt_->EnableIncremental(hints_ != nullptr ? hints_->pointsto_prev : nullptr,
                             hints_ != nullptr ? &hints_->pointsto_dirty : nullptr);
    }
    if (hints_ != nullptr && hints_->pointsto_link != nullptr) {
      pt_->SetLinkSeeds(hints_->pointsto_link);
    }
    pt_->Solve();
    pt_builds_.fetch_add(1);
  });
  return *pt_;
}

const CallGraph& AnalysisContext::callgraph() {
  std::call_once(cg_once_, [this] {
    const PointsTo& pt = pointsto();
    cg_ = std::make_unique<CallGraph>(CallGraph::Build(comp_->prog, *comp_->sema, pt));
    cg_builds_.fetch_add(1);
  });
  return *cg_;
}

}  // namespace ivy
