#include "src/tool/tool_pass.h"

#include <cstdlib>

namespace ivy {

const char* AnalysisKindName(AnalysisKind k) {
  switch (k) {
    case AnalysisKind::kPointsTo:
      return "pointsto";
    case AnalysisKind::kCallGraph:
      return "callgraph";
  }
  return "unknown";
}

std::string ToolOptions::GetString(const std::string& key, const std::string& def) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

int64_t ToolOptions::GetInt(const std::string& key, int64_t def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) {
    return def;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

bool ToolOptions::GetBool(const std::string& key, bool def) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) {
    return def;
  }
  return it->second == "1" || it->second == "true" || it->second == "on";
}

}  // namespace ivy
