#include "src/tool/pipeline.h"

#include <algorithm>
#include <future>

#include "src/kernel/prelude.h"
#include "src/mc/lexer.h"
#include "src/mc/parser.h"
#include "src/tool/registry.h"
#include "src/vm/builtins.h"

namespace ivy {

// ---------------------------------------------------------------------------
// PipelineResult
// ---------------------------------------------------------------------------

const ToolResult* PipelineResult::ResultFor(const std::string& tool) const {
  for (const ToolResult& r : results) {
    if (r.tool() == tool) {
      return &r;
    }
  }
  return nullptr;
}

int PipelineResult::ErrorCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kError) {
      ++n;
    }
  }
  return n;
}

Json PipelineResult::ToJson(const SourceManager* sm) const {
  Json j = Json::MakeObject();
  Json tools = Json::MakeArray();
  for (const ToolResult& r : results) {
    tools.Append(r.ToJson(sm));
  }
  j["tools"] = std::move(tools);
  // Pipeline-level findings (configuration errors such as unknown tool
  // names) belong to no ToolResult; everything else already lives under
  // tools[].findings, and `findings` is their concatenation — serializing
  // it too would double every record.
  Json config = Json::MakeArray();
  for (const Finding& f : findings) {
    if (f.tool == "pipeline") {
      config.Append(f.ToJson(sm));
    }
  }
  if (config.size() > 0) {
    j["pipeline_findings"] = std::move(config);
  }
  j["finding_count"] = Json::MakeInt(static_cast<int64_t>(findings.size()));
  j["error_count"] = Json::MakeInt(ErrorCount());
  j["parallel"] = Json::MakeBool(parallel);
  j["pointsto_builds"] = Json::MakeInt(pointsto_builds);
  j["callgraph_builds"] = Json::MakeInt(callgraph_builds);
  return j;
}

std::string PipelineResult::ToString(const SourceManager* sm) const {
  std::string out;
  // Configuration errors first — they belong to no tool section and must
  // not vanish from the human-readable report.
  for (const Finding& f : findings) {
    if (f.tool == "pipeline") {
      out += f.ToString(sm) + "\n";
    }
  }
  for (const ToolResult& r : results) {
    out += "== " + r.tool() + " ==\n";
    if (!r.summary().empty()) {
      out += r.summary();
      if (out.back() != '\n') {
        out += '\n';
      }
    }
    for (const Finding& f : r.findings()) {
      out += "  " + f.ToString(sm) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pipeline: frontend
// ---------------------------------------------------------------------------

std::unique_ptr<Compilation> Pipeline::Compile(const std::vector<SourceFile>& files) const {
  auto comp = std::make_unique<Compilation>();
  comp->config = config_;
  comp->diags = std::make_unique<DiagEngine>(&comp->sm);

  std::vector<int32_t> file_ids;
  if (config_.include_prelude) {
    file_ids.push_back(comp->sm.AddFile("<prelude>", PreludeSource()));
  }
  for (const SourceFile& f : files) {
    file_ids.push_back(comp->sm.AddFile(f.name, f.text));
  }

  // Lex + parse every file into one Program (whole-program merge).
  for (int32_t id : file_ids) {
    Lexer lexer(comp->sm, id, comp->diags.get());
    Parser parser(&comp->prog, lexer.Lex(), comp->diags.get());
    parser.ParseTranslationUnit();
  }
  if (!comp->diags->ok()) {
    return comp;
  }

  comp->sema = std::make_unique<Sema>(&comp->prog, comp->diags.get(),
                                      [](const std::string& name) {
                                        return BuiltinIdForName(name);
                                      });
  if (!comp->sema->Run()) {
    return comp;
  }

  LowerOptions lopts;
  lopts.deputy = config_.deputy;
  lopts.discharge = config_.discharge;
  Lowerer lowerer(&comp->prog, comp->sema.get(), comp->diags.get(), lopts);
  comp->module = lowerer.Lower();
  comp->check_stats = lowerer.check_stats();
  if (!comp->diags->ok()) {
    return comp;
  }

  comp->layouts = TypeLayoutRegistry::Build(comp->prog);
  comp->ok = true;
  return comp;
}

std::unique_ptr<AnalysisContext> Pipeline::MakeContext(Compilation* comp) const {
  return std::make_unique<AnalysisContext>(comp, field_sensitive_);
}

// ---------------------------------------------------------------------------
// Pipeline: pass scheduling
// ---------------------------------------------------------------------------

namespace {

// Instantiates + configures the requested passes. Unknown names produce an
// error finding instead of a pass.
std::vector<std::unique_ptr<ToolPass>> MakePasses(
    const std::vector<std::string>& tools,
    const std::map<std::string, ToolOptions>& options,
    std::vector<Finding>* errors) {
  std::vector<std::unique_ptr<ToolPass>> passes;
  for (const std::string& name : tools) {
    std::unique_ptr<ToolPass> pass = ToolRegistry::Instance().Create(name);
    if (pass == nullptr) {
      Finding f;
      f.tool = "pipeline";
      f.severity = FindingSeverity::kError;
      f.message = "unknown tool '" + name + "'";
      errors->push_back(std::move(f));
      continue;
    }
    auto it = options.find(name);
    if (it != options.end()) {
      pass->Configure(it->second);
    }
    passes.push_back(std::move(pass));
  }
  return passes;
}

// The union of every pass's Requires(), reduced to the strongest form
// (callgraph implies pointsto).
void RequiredAnalyses(const std::vector<std::unique_ptr<ToolPass>>& passes,
                      bool* need_pt, bool* need_cg) {
  *need_pt = false;
  *need_cg = false;
  for (const auto& pass : passes) {
    for (AnalysisKind k : pass->Requires()) {
      if (k == AnalysisKind::kPointsTo) {
        *need_pt = true;
      } else if (k == AnalysisKind::kCallGraph) {
        *need_cg = true;
      }
    }
  }
}

}  // namespace

PipelineResult Pipeline::RunTools(AnalysisContext& ctx) const {
  PipelineResult out;
  out.parallel = parallel_;

  std::vector<Finding> config_errors;
  std::vector<std::unique_ptr<ToolPass>> passes =
      MakePasses(tools_, options_, &config_errors);

  // Warm the shared cache serially so parallel passes only ever read it.
  bool need_pt = false;
  bool need_cg = false;
  RequiredAnalyses(passes, &need_pt, &need_cg);
  if (need_cg) {
    ctx.callgraph();
  } else if (need_pt) {
    ctx.pointsto();
  }

  std::vector<ToolResult> results(passes.size());
  if (parallel_ && passes.size() > 1) {
    std::vector<std::future<ToolResult>> futures;
    futures.reserve(passes.size());
    for (auto& pass : passes) {
      ToolPass* p = pass.get();
      futures.push_back(
          std::async(std::launch::async, [p, &ctx] { return p->Run(ctx); }));
    }
    // Gathering by index keeps the merge order equal to the request order no
    // matter which pass finished first.
    for (size_t i = 0; i < futures.size(); ++i) {
      results[i] = futures[i].get();
    }
  } else {
    for (size_t i = 0; i < passes.size(); ++i) {
      results[i] = passes[i]->Run(ctx);
    }
  }

  out.findings = std::move(config_errors);
  for (ToolResult& r : results) {
    out.findings.insert(out.findings.end(), r.findings().begin(), r.findings().end());
    out.results.push_back(std::move(r));
  }
  out.pointsto_builds = ctx.pointsto_builds();
  out.callgraph_builds = ctx.callgraph_builds();
  return out;
}

PipelineRun Pipeline::CompileAndRun(const std::vector<SourceFile>& files) const {
  PipelineRun run;
  run.comp = Compile(files);
  if (!run.comp->ok) {
    return run;
  }
  run.ctx = MakeContext(run.comp.get());
  run.result = RunTools(*run.ctx);
  return run;
}

std::vector<std::string> Pipeline::Plan() const {
  std::vector<std::string> plan;
  std::vector<Finding> ignored;
  std::vector<std::unique_ptr<ToolPass>> passes = MakePasses(tools_, options_, &ignored);
  bool need_pt = false;
  bool need_cg = false;
  RequiredAnalyses(passes, &need_pt, &need_cg);
  if (need_pt || need_cg) {
    plan.push_back("analysis:pointsto");
  }
  if (need_cg) {
    plan.push_back("analysis:callgraph");
  }
  for (const auto& pass : passes) {
    plan.push_back("pass:" + pass->name());
  }
  return plan;
}

// ---------------------------------------------------------------------------
// PipelineBuilder
// ---------------------------------------------------------------------------

PipelineBuilder& PipelineBuilder::Tool(const std::string& name) {
  auto& tools = pipeline_.tools_;
  if (std::find(tools.begin(), tools.end(), name) == tools.end()) {
    tools.push_back(name);
  }
  return *this;
}

PipelineBuilder& PipelineBuilder::Tool(const std::string& name, ToolOptions opts) {
  Tool(name);
  pipeline_.options_[name] = std::move(opts);
  return *this;
}

PipelineBuilder& PipelineBuilder::AllTools() {
  for (const std::string& name : ToolRegistry::Instance().Names()) {
    Tool(name);
  }
  return *this;
}

PipelineBuilder& PipelineBuilder::Parallel(bool on) {
  pipeline_.parallel_ = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::FieldSensitive(bool on) {
  pipeline_.field_sensitive_ = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::Deputy(bool on) {
  pipeline_.config_.deputy = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::Discharge(bool on) {
  pipeline_.config_.discharge = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::CCount(bool on) {
  pipeline_.config_.ccount = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::Smp(bool on) {
  pipeline_.config_.smp = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::TrackLocals(bool on) {
  pipeline_.config_.track_locals = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::RcWidthBits(int bits) {
  pipeline_.config_.rc_width_bits = bits;
  return *this;
}

PipelineBuilder& PipelineBuilder::IncludePrelude(bool on) {
  pipeline_.config_.include_prelude = on;
  return *this;
}

PipelineBuilder PipelineBuilder::FromToolConfig(const ToolConfig& config) {
  PipelineBuilder b;
  b.pipeline_.config_ = config;
  return b;
}

}  // namespace ivy
