#include "src/tool/pipeline.h"

#include <algorithm>
#include <future>
#include <set>

#include "src/kernel/prelude.h"
#include "src/mc/lexer.h"
#include "src/mc/parser.h"
#include "src/support/clock.h"
#include "src/support/trace.h"
#include "src/support/work_queue.h"
#include "src/tool/registry.h"
#include "src/vm/builtins.h"

namespace ivy {

// ---------------------------------------------------------------------------
// PipelineResult
// ---------------------------------------------------------------------------

const ToolResult* PipelineResult::ResultFor(const std::string& tool) const {
  for (const ToolResult& r : results) {
    if (r.tool() == tool) {
      return &r;
    }
  }
  return nullptr;
}

int PipelineResult::ErrorCount() const {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.severity == FindingSeverity::kError) {
      ++n;
    }
  }
  return n;
}

Json PipelineResult::ToJson(const SourceManager* sm) const {
  Json j = Json::MakeObject();
  Json tools = Json::MakeArray();
  for (const ToolResult& r : results) {
    tools.Append(r.ToJson(sm));
  }
  j["tools"] = std::move(tools);
  // Pipeline-level findings (configuration errors such as unknown tool
  // names) belong to no ToolResult; everything else already lives under
  // tools[].findings, and `findings` is their concatenation — serializing
  // it too would double every record.
  Json config = Json::MakeArray();
  for (const Finding& f : findings) {
    if (f.tool == "pipeline") {
      config.Append(f.ToJson(sm));
    }
  }
  if (config.size() > 0) {
    j["pipeline_findings"] = std::move(config);
  }
  j["finding_count"] = Json::MakeInt(static_cast<int64_t>(findings.size()));
  j["error_count"] = Json::MakeInt(ErrorCount());
  j["parallel"] = Json::MakeBool(parallel);
  j["pointsto_builds"] = Json::MakeInt(pointsto_builds);
  j["callgraph_builds"] = Json::MakeInt(callgraph_builds);
  return j;
}

std::string PipelineResult::ToString(const SourceManager* sm) const {
  std::string out;
  // Configuration errors first — they belong to no tool section and must
  // not vanish from the human-readable report.
  for (const Finding& f : findings) {
    if (f.tool == "pipeline") {
      out += f.ToString(sm) + "\n";
    }
  }
  for (const ToolResult& r : results) {
    out += "== " + r.tool() + " ==\n";
    if (!r.summary().empty()) {
      out += r.summary();
      if (out.back() != '\n') {
        out += '\n';
      }
    }
    for (const Finding& f : r.findings()) {
      out += "  " + f.ToString(sm) + "\n";
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pipeline: frontend
// ---------------------------------------------------------------------------

std::unique_ptr<Compilation> Pipeline::Compile(const std::vector<SourceFile>& files,
                                               FrontendCache* cache) const {
  auto comp = std::make_unique<Compilation>();
  comp->config = config_;
  comp->diags = std::make_unique<DiagEngine>(&comp->sm);
  if (config_.heap_ast) {
    comp->prog.SetAllocMode(AstAllocMode::kHeap);
  } else if (cache != nullptr && cache->prelude_interns != nullptr) {
    // Later corpus module: pre-load the prelude's interned strings so every
    // module shares one copy of the bytes (and the same string ids).
    comp->prog.SeedInterner(cache->prelude_interns);
    ++cache->intern_seeds;
  }

  const uint64_t parse_t0 = MonotonicNowNs();

  // Lex + parse every file into one Program (whole-program merge). The
  // prelude is always the first file registered, so its token stream —
  // embedded file ids included — is identical across compilations and can
  // come from the corpus cache.
  auto parse_file = [&comp](int32_t id) {
    Lexer lexer(comp->sm, id, comp->diags.get());
    Parser parser(&comp->prog, lexer.Lex(), comp->diags.get());
    parser.ParseTranslationUnit();
  };
  if (config_.include_prelude) {
    int32_t prelude_id = comp->sm.AddFile("<prelude>", PreludeSource());
    if (cache != nullptr) {
      if (cache->prelude_tokens == nullptr) {
        Lexer lexer(comp->sm, prelude_id, comp->diags.get());
        cache->prelude_tokens = std::make_shared<std::vector<Token>>(lexer.Lex());
      } else {
        ++cache->prelude_reuses;
      }
      // Borrowed, not copied: the cached stream outlives the parser.
      Parser parser(&comp->prog, cache->prelude_tokens.get(), comp->diags.get());
      parser.ParseTranslationUnit();
      if (cache->prelude_interns == nullptr && !config_.heap_ast) {
        // First corpus module: everything interned so far is prelude text.
        cache->prelude_interns = comp->prog.interner().Snapshot();
      }
    } else {
      parse_file(prelude_id);
    }
  }
  for (const SourceFile& f : files) {
    parse_file(comp->sm.AddFile(f.name, f.text));
  }
  const uint64_t parse_t1 = MonotonicNowNs();
  trace::GetHistogram("frontend.parse_us")->Record((parse_t1 - parse_t0) / 1000);
  if (!comp->diags->ok()) {
    return comp;
  }

  comp->sema = std::make_unique<Sema>(&comp->prog, comp->diags.get(),
                                      [](const std::string& name) {
                                        return BuiltinIdForName(name);
                                      });
  bool sema_ok = comp->sema->Run();
  trace::GetHistogram("frontend.sema_us")->Record((MonotonicNowNs() - parse_t1) / 1000);
  trace::GetGauge("arena.bytes")->RecordMax(
      static_cast<int64_t>(comp->prog.arena().TotalBytes()));
  if (!sema_ok) {
    return comp;
  }

  LowerOptions lopts;
  lopts.deputy = config_.deputy;
  lopts.discharge = config_.discharge;
  Lowerer lowerer(&comp->prog, comp->sema.get(), comp->diags.get(), lopts);
  comp->module = lowerer.Lower();
  comp->check_stats = lowerer.check_stats();
  if (!comp->diags->ok()) {
    return comp;
  }

  comp->layouts = TypeLayoutRegistry::Build(comp->prog);
  comp->ok = true;
  return comp;
}

std::unique_ptr<AnalysisContext> Pipeline::MakeContext(Compilation* comp) const {
  return std::make_unique<AnalysisContext>(comp, field_sensitive_);
}

// ---------------------------------------------------------------------------
// Pipeline: pass scheduling
// ---------------------------------------------------------------------------

namespace {

// Instantiates + configures the requested passes. Unknown names produce an
// error finding instead of a pass. The pipeline-wide shard count reaches
// every pass as the "shards" option unless the tool's own option bag
// already set one.
std::vector<std::unique_ptr<ToolPass>> MakePasses(
    const std::vector<std::string>& tools,
    const std::map<std::string, ToolOptions>& options, int shards,
    std::vector<Finding>* errors) {
  std::vector<std::unique_ptr<ToolPass>> passes;
  for (const std::string& name : tools) {
    std::unique_ptr<ToolPass> pass = ToolRegistry::Instance().Create(name);
    if (pass == nullptr) {
      Finding f;
      f.tool = "pipeline";
      f.severity = FindingSeverity::kError;
      f.message = "unknown tool '" + name + "'";
      errors->push_back(std::move(f));
      continue;
    }
    ToolOptions opts;
    auto it = options.find(name);
    if (it != options.end()) {
      opts = it->second;
    }
    if (!opts.Has("shards")) {
      opts.SetInt("shards", shards);
    }
    pass->Configure(std::move(opts));
    passes.push_back(std::move(pass));
  }
  return passes;
}

// True if pass `start` can reach itself through RunAfter() edges restricted
// to the unscheduled set — i.e. it is ON a cycle rather than merely
// downstream of one. O(m^2) worst case over a handful of passes.
bool OnDependencyCycle(const std::vector<std::unique_ptr<ToolPass>>& passes,
                       const std::set<size_t>& stuck, size_t start) {
  std::map<std::string, size_t> pos;
  for (size_t i : stuck) {
    pos[passes[i]->name()] = i;
  }
  std::vector<size_t> worklist = {start};
  std::set<size_t> seen;
  while (!worklist.empty()) {
    size_t i = worklist.back();
    worklist.pop_back();
    for (const std::string& dep : passes[i]->RunAfter()) {
      auto it = pos.find(dep);
      if (it == pos.end() || it->second == i) {
        continue;
      }
      if (it->second == start) {
        return true;
      }
      if (seen.insert(it->second).second) {
        worklist.push_back(it->second);
      }
    }
  }
  return false;
}

// Topological waves over the RunAfter() pass-dependency edges (Kahn's
// algorithm, stable in request order). Passes left unscheduled sit on — or
// behind — a dependency cycle; they are returned through `cyclic` so the
// pipeline can report them as errors instead of spinning forever.
std::vector<std::vector<size_t>> ScheduleWaves(
    const std::vector<std::unique_ptr<ToolPass>>& passes, std::vector<size_t>* cyclic) {
  const size_t m = passes.size();
  std::map<std::string, size_t> pos;
  for (size_t i = 0; i < m; ++i) {
    pos[passes[i]->name()] = i;
  }
  std::vector<std::vector<size_t>> succ(m);
  std::vector<int> indegree(m, 0);
  for (size_t i = 0; i < m; ++i) {
    for (const std::string& dep : passes[i]->RunAfter()) {
      auto it = pos.find(dep);
      if (it != pos.end() && it->second != i) {
        succ[it->second].push_back(i);
        ++indegree[i];
      }
    }
  }
  std::vector<std::vector<size_t>> waves;
  std::vector<char> scheduled(m, 0);
  std::vector<size_t> ready;
  for (size_t i = 0; i < m; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  while (!ready.empty()) {
    std::vector<size_t> next;
    for (size_t i : ready) {
      scheduled[i] = 1;
      for (size_t s : succ[i]) {
        if (--indegree[s] == 0) {
          next.push_back(s);
        }
      }
    }
    std::sort(next.begin(), next.end());
    waves.push_back(std::move(ready));
    ready = std::move(next);
  }
  for (size_t i = 0; i < m; ++i) {
    if (!scheduled[i]) {
      cyclic->push_back(i);
    }
  }
  return waves;
}

// The union of every pass's Requires(), reduced to the strongest form
// (callgraph implies pointsto).
void RequiredAnalyses(const std::vector<std::unique_ptr<ToolPass>>& passes,
                      bool* need_pt, bool* need_cg) {
  *need_pt = false;
  *need_cg = false;
  for (const auto& pass : passes) {
    for (AnalysisKind k : pass->Requires()) {
      if (k == AnalysisKind::kPointsTo) {
        *need_pt = true;
      } else if (k == AnalysisKind::kCallGraph) {
        *need_cg = true;
      }
    }
  }
}

}  // namespace

PipelineResult Pipeline::RunTools(AnalysisContext& ctx) const {
  PipelineResult out;
  out.parallel = parallel_;

  std::vector<Finding> config_errors;
  std::vector<std::unique_ptr<ToolPass>> passes =
      MakePasses(tools_, options_, shards_, &config_errors);

  // One worker pool for every sharded pass in this run (TaskGroup keeps
  // their waits isolated) — unless a session already attached a longer-lived
  // one. Sized for the help-first model: k shards need k-1 workers. The
  // guard detaches on every exit path: a throwing pass must not leave the
  // context pointing at a pool that dies with this frame.
  struct RunPool {
    AnalysisContext* ctx = nullptr;
    std::unique_ptr<WorkQueue> pool;
    ~RunPool() {
      if (ctx != nullptr) {
        ctx->AttachPool(nullptr);
      }
    }
  } run_pool;
  if (shards_ != 1 && ctx.pool() == nullptr && !passes.empty()) {
    int workers = shards_ == 0 ? WorkQueue::ResolveHardware()
                               : (shards_ > 1 ? shards_ - 1 : 1);
    run_pool.pool = std::make_unique<WorkQueue>(workers);
    run_pool.ctx = &ctx;
    ctx.AttachPool(run_pool.pool.get());
  }

  // Warm the shared cache serially so parallel passes only ever read it.
  bool need_pt = false;
  bool need_cg = false;
  RequiredAnalyses(passes, &need_pt, &need_cg);
  if (need_cg) {
    ctx.callgraph();
  } else if (need_pt) {
    ctx.pointsto();
  }

  // Pass-level RunAfter() dependencies schedule in topological waves; a
  // cycle is a configuration error. Every unscheduled pass is skipped (its
  // result slot stays an empty ToolResult so merge order is undisturbed),
  // but the report distinguishes actual cycle members from healthy passes
  // that merely depend on one.
  std::vector<size_t> unscheduled;
  std::vector<std::vector<size_t>> waves = ScheduleWaves(passes, &unscheduled);
  std::vector<ToolResult> results(passes.size());
  if (!unscheduled.empty()) {
    std::set<size_t> stuck(unscheduled.begin(), unscheduled.end());
    std::vector<size_t> on_cycle;
    std::vector<size_t> blocked;
    for (size_t i : unscheduled) {
      if (OnDependencyCycle(passes, stuck, i)) {
        on_cycle.push_back(i);
      } else {
        blocked.push_back(i);
      }
      results[i] = ToolResult(passes[i]->name());
    }
    Finding f;
    f.tool = "pipeline";
    f.severity = FindingSeverity::kError;
    f.message = "tool dependency cycle involving";
    for (size_t k = 0; k < on_cycle.size(); ++k) {
      f.message += (k == 0 ? " '" : ", '") + passes[on_cycle[k]]->name() + "'";
      f.witness.push_back(passes[on_cycle[k]]->name());
    }
    config_errors.push_back(std::move(f));
    for (size_t i : blocked) {
      Finding skip;
      skip.tool = "pipeline";
      skip.severity = FindingSeverity::kError;
      skip.message = "tool '" + passes[i]->name() + "' not run: it depends on a cyclic tool";
      skip.witness.push_back(passes[i]->name());
      config_errors.push_back(std::move(skip));
    }
  }
  // Per-pass wall time: a "pass.<tool>" span plus a "pipeline.pass_us"
  // histogram sample per pass, observed from whichever thread runs it.
  // Disabled-path cost is the one Enabled() check.
  auto run_pass = [&ctx](ToolPass* p) {
    if (!trace::Enabled()) {
      return p->Run(ctx);
    }
    trace::Span span("pass." + p->name());
    const uint64_t t0 = MonotonicNowNs();
    ToolResult r = p->Run(ctx);
    trace::GetHistogram("pipeline.pass_us")->Record((MonotonicNowNs() - t0) / 1000);
    return r;
  };
  for (const std::vector<size_t>& wave : waves) {
    if (parallel_ && wave.size() > 1) {
      std::vector<std::future<ToolResult>> futures;
      futures.reserve(wave.size());
      for (size_t i : wave) {
        ToolPass* p = passes[i].get();
        futures.push_back(
            std::async(std::launch::async, [p, &run_pass] { return run_pass(p); }));
      }
      // Gathering by index keeps the merge order equal to the request order
      // no matter which pass finished first.
      for (size_t k = 0; k < wave.size(); ++k) {
        results[wave[k]] = futures[k].get();
      }
    } else {
      for (size_t i : wave) {
        results[i] = run_pass(passes[i].get());
      }
    }
  }

  out.findings = std::move(config_errors);
  for (ToolResult& r : results) {
    out.findings.insert(out.findings.end(), r.findings().begin(), r.findings().end());
    out.results.push_back(std::move(r));
  }
  out.pointsto_builds = ctx.pointsto_builds();
  out.callgraph_builds = ctx.callgraph_builds();
  return out;
}

// Pipeline::CompileAndRun lives in src/tool/session.cc: it is a thin shim
// over a single-module AnalysisSession.

std::vector<std::string> Pipeline::Plan() const {
  std::vector<std::string> plan;
  std::vector<Finding> ignored;
  std::vector<std::unique_ptr<ToolPass>> passes =
      MakePasses(tools_, options_, shards_, &ignored);
  bool need_pt = false;
  bool need_cg = false;
  RequiredAnalyses(passes, &need_pt, &need_cg);
  if (need_pt || need_cg) {
    plan.push_back("analysis:pointsto");
  }
  if (need_cg) {
    plan.push_back("analysis:callgraph");
  }
  for (const auto& pass : passes) {
    plan.push_back("pass:" + pass->name());
  }
  return plan;
}

// ---------------------------------------------------------------------------
// PipelineBuilder
// ---------------------------------------------------------------------------

PipelineBuilder& PipelineBuilder::Tool(const std::string& name) {
  auto& tools = pipeline_.tools_;
  if (std::find(tools.begin(), tools.end(), name) == tools.end()) {
    tools.push_back(name);
  }
  return *this;
}

PipelineBuilder& PipelineBuilder::Tool(const std::string& name, ToolOptions opts) {
  Tool(name);
  pipeline_.options_[name] = std::move(opts);
  return *this;
}

PipelineBuilder& PipelineBuilder::AllTools() {
  for (const std::string& name : ToolRegistry::Instance().Names()) {
    Tool(name);
  }
  return *this;
}

PipelineBuilder& PipelineBuilder::RunWorkload(const std::vector<std::string>& fns,
                                              const std::string& boot) {
  ToolOptions opts;
  std::string joined;
  for (const std::string& fn : fns) {
    if (!joined.empty()) {
      joined += ",";
    }
    joined += fn;
  }
  opts.Set("fns", joined);
  if (!boot.empty()) {
    opts.Set("boot", boot);
  }
  return Tool("workload", std::move(opts));
}

PipelineBuilder& PipelineBuilder::Parallel(bool on) {
  pipeline_.parallel_ = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::FieldSensitive(bool on) {
  pipeline_.field_sensitive_ = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::ShardFunctions(int n) {
  pipeline_.shards_ = n < 0 ? 1 : n;
  return *this;
}

PipelineBuilder& PipelineBuilder::Deputy(bool on) {
  pipeline_.config_.deputy = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::Discharge(bool on) {
  pipeline_.config_.discharge = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::CCount(bool on) {
  pipeline_.config_.ccount = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::Smp(bool on) {
  pipeline_.config_.smp = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::TrackLocals(bool on) {
  pipeline_.config_.track_locals = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::RcWidthBits(int bits) {
  pipeline_.config_.rc_width_bits = bits;
  return *this;
}

PipelineBuilder& PipelineBuilder::IncludePrelude(bool on) {
  pipeline_.config_.include_prelude = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::HeapAst(bool on) {
  pipeline_.config_.heap_ast = on;
  return *this;
}

PipelineBuilder& PipelineBuilder::ForEachModule(std::vector<ModuleSources> modules) {
  for (ModuleSources& m : modules) {
    auto it = std::find_if(modules_.begin(), modules_.end(),
                           [&m](const ModuleSources& have) { return have.name == m.name; });
    if (it != modules_.end()) {
      *it = std::move(m);
    } else {
      modules_.push_back(std::move(m));
    }
  }
  return *this;
}

PipelineBuilder PipelineBuilder::FromToolConfig(const ToolConfig& config) {
  PipelineBuilder b;
  b.pipeline_.config_ = config;
  return b;
}

}  // namespace ivy
