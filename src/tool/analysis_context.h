// The shared analysis cache behind the pass pipeline (§3.1: "the call graph
// built for BlockStop can be used to prevent stack overflow").
//
// The seed built the points-to results and the call graph once *per tool* —
// four times or more for a full run over the corpus. AnalysisContext owns
// them, computes each exactly once on first request (thread-safe, so the
// parallel scheduler's passes can all demand them), and hands out const
// references. The build counters exist so tests and benches can assert the
// compute-once property instead of trusting it.
//
// Two session hooks ride on the context:
//   - AttachPool: a shared WorkQueue the sharded passes use instead of
//     constructing one pool each (TaskGroup keeps their waits isolated).
//   - incremental hints: AnalysisSession's dirty-tracking layer. When set
//     before the first pointsto() demand, the solve warm-starts from the
//     previous module snapshot and re-derives only the dirty region; the
//     BlockStop pass picks up the may-block seed the same way.
#ifndef SRC_TOOL_ANALYSIS_CONTEXT_H_
#define SRC_TOOL_ANALYSIS_CONTEXT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "src/analysis/callgraph.h"
#include "src/analysis/pointsto.h"
#include "src/driver/compiler.h"

namespace ivy {

class Machine;
class WorkQueue;

// What AnalysisSession learned from previous runs of the same module, keyed
// entirely by names so it survives recompilation. Owned by the session; the
// context only points at it (must outlive the analyses).
struct IncrementalHints {
  // Points-to warm start: the previous solution and the constraint origins
  // (function names) whose constraints changed.
  const PointsToSnapshot* pointsto_prev = nullptr;
  std::set<std::string> pointsto_dirty;
  // BlockStop may-block memoization: functions with no call path into the
  // edited region, and the previous run's may-block set.
  bool has_blockstop_seed = false;
  std::set<std::string> blockstop_clean;
  std::set<std::string> blockstop_prev_mayblock;
  // Cross-module link seeds for the points-to solve (the session's import of
  // other modules' escape facts). Not owned; must outlive the solve.
  const PointsToLinkSeeds* pointsto_link = nullptr;
};

class AnalysisContext {
 public:
  // Does not take ownership; `comp` must outlive the context. The precision
  // switch is fixed per context: one context = one points-to variant.
  explicit AnalysisContext(Compilation* comp, bool field_sensitive = true);
  ~AnalysisContext();

  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  Compilation& comp() { return *comp_; }
  const Compilation& comp() const { return *comp_; }
  const Program& prog() const { return comp_->prog; }
  const Sema& sema() const { return *comp_->sema; }
  const IrModule& module() const { return comp_->module; }
  const SourceManager& sm() const { return comp_->sm; }
  bool field_sensitive() const { return field_sensitive_; }

  // Memoized: the first caller (from any thread) builds, everyone else
  // reuses. callgraph() implies pointsto().
  const PointsTo& pointsto();
  const CallGraph& callgraph();

  // Optional runtime results for the hybrid tools (LockSafe's dynamic half,
  // CCount's free audit). Any Machine qualifies — the tree Vm and the
  // bytecode BcVm expose identical runtime facts. Not owned; may stay null
  // for static-only runs.
  void AttachVm(const Machine* vm) { vm_ = vm; }
  const Machine* vm() const { return vm_; }

  // Optional shared worker pool for sharded pass kernels. Not owned; must
  // outlive every pass run against this context. Null means each pass builds
  // its own pool (the pre-session behaviour).
  void AttachPool(WorkQueue* pool) { pool_ = pool; }
  WorkQueue* pool() const { return pool_; }

  // Incremental session support. Tracking makes pointsto() record cell keys
  // and constraint origins (so its Snapshot() works); hints additionally
  // warm-start it. Both must be set before the first pointsto() demand.
  void EnableIncrementalTracking() { incremental_ = true; }
  bool incremental_tracking() const { return incremental_; }
  void SetIncrementalHints(const IncrementalHints* hints) { hints_ = hints; }
  const IncrementalHints* incremental_hints() const { return hints_; }

  int pointsto_builds() const { return pt_builds_.load(); }
  int callgraph_builds() const { return cg_builds_.load(); }

 private:
  Compilation* comp_;
  bool field_sensitive_;
  const Machine* vm_ = nullptr;
  WorkQueue* pool_ = nullptr;
  bool incremental_ = false;
  const IncrementalHints* hints_ = nullptr;

  std::once_flag pt_once_;
  std::once_flag cg_once_;
  std::unique_ptr<PointsTo> pt_;
  std::unique_ptr<CallGraph> cg_;
  std::atomic<int> pt_builds_{0};
  std::atomic<int> cg_builds_{0};
};

}  // namespace ivy

#endif  // SRC_TOOL_ANALYSIS_CONTEXT_H_
