// AnalysisSession's per-module state — split out of session.cc so the
// persistent-store half of the session (session_store.cc: SaveStore /
// LoadStore / distributed relink) can share it. Private to the session
// implementation; nothing outside src/tool should include this.
#ifndef SRC_TOOL_SESSION_STATE_H_
#define SRC_TOOL_SESSION_STATE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/tool/session.h"

namespace ivy {

struct AnalysisSession::ModuleState {
  std::vector<SourceFile> files;
  bool dirty = true;
  bool ok = false;
  bool analyzed_now = false;  // re-analyzed during the current Run()
  std::string compile_errors;

  // Name-keyed snapshots from the last successful analysis: the inputs to
  // the next run's dirty bits and warm starts.
  bool have_snapshot = false;
  uint64_t preamble_fp = 0;
  std::map<std::string, uint64_t> func_fps;
  std::map<std::string, uint64_t> sig_fps;
  std::map<std::string, std::set<std::string>> func_refs;
  PointsToSnapshot pt_snapshot;
  std::map<std::string, uint64_t> callee_hashes;
  bool have_mayblock = false;
  std::set<std::string> prev_mayblock;

  // Link stage. `import_sig` is the canonical form of every summary row the
  // last analysis imported: when it changes, the module re-solves cold —
  // imported facts are invisible to the source fingerprints, so the
  // function-granular warm machinery must not run across an import change.
  // `link_seeds` is the storage the context's IncrementalHints point at.
  std::string import_sig;
  PointsToLinkSeeds link_seeds;
  // Name sets from the last analysis: what this module defines and which
  // extern functions it references — the cross-module edge structure.
  bool have_link_names = false;
  std::set<std::string> defined_names;
  std::set<std::string> extern_refs;

  ModuleStats stats;

  // Declaration order matters: `ctx` points into `hints` and `comp`, so it
  // must be destroyed first.
  IncrementalHints hints;
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<AnalysisContext> ctx;
  PipelineResult result;
};

}  // namespace ivy

#endif  // SRC_TOOL_SESSION_STATE_H_
