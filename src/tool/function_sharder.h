// Per-function sharding for analysis kernels (the ROADMAP's "one tool
// saturates all cores" item). A FunctionSharder partitions an ordered
// function list — canonically CallGraph::DefinedFuncs(), which is in
// declaration order — into contiguous shards and drives per-function kernels
// over a WorkQueue.
//
// Determinism contract (what makes sharded output bit-identical to serial):
//   1. Shards are contiguous index ranges of the declaration order, so shard
//      0 holds the first functions, shard 1 the next, and so on.
//   2. Kernels write only into their own shard's slot (ParallelChunks hands
//      each chunk its index); no kernel reads another shard's output.
//   3. Reductions happen after the Wait() barrier, in shard-index order —
//      i.e. function-declaration order — never in completion order.
//   4. Fixpoints are run as Jacobi rounds: every round reads the state frozen
//      at the last barrier and publishes additions at the next one (each
//      ParallelChunks/MapChunks call is one such global convergence
//      barrier). Monotone kernels converge to the same least fixpoint as
//      the serial Gauss-Seidel loop.
// A kernel that follows 1-4 produces the same bytes under shards=1,
// shards=8, and the serial reference implementation.
#ifndef SRC_TOOL_FUNCTION_SHARDER_H_
#define SRC_TOOL_FUNCTION_SHARDER_H_

#include <cstddef>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "src/mc/ast.h"
#include "src/support/work_queue.h"

namespace ivy {

class FunctionSharder {
 public:
  // `shards` == 0 means hardware concurrency; values are clamped to at least
  // 1 and at most one shard per function (empty shards are never created).
  FunctionSharder(std::vector<const FuncDecl*> funcs, int shards = 0);

  int shard_count() const { return shard_count_; }
  // Pool size matching the help-first execution model: the caller runs
  // chunk 0 itself, so k shards need only k-1 workers (min 1). Use this for
  // the WorkQueue a kernel will drive through ParallelChunks/MapChunks.
  int worker_count() const { return shard_count_ > 1 ? shard_count_ - 1 : 1; }
  size_t size() const { return funcs_.size(); }
  const std::vector<const FuncDecl*>& functions() const { return funcs_; }
  const FuncDecl* At(size_t i) const { return funcs_[i]; }

  // Declaration index of `fn`, or size() if it is not a sharded function.
  size_t IndexOf(const FuncDecl* fn) const;

  // Splits [0, n_items) into at most shard_count() contiguous ranges of
  // near-equal size (deterministic: depends only on n_items and the shard
  // count). Used for function ranges and for frontier worklists alike.
  std::vector<std::pair<size_t, size_t>> Partition(size_t n_items) const;

  // Runs kernel(chunk_index, begin, end) for every chunk of [0, n_items) on
  // `wq` and waits for all of them (the barrier). Kernel exceptions
  // propagate out of the barrier, lowest chunk index first.
  void ParallelChunks(WorkQueue& wq, size_t n_items,
                      const std::function<void(int, size_t, size_t)>& kernel) const;

  // ParallelChunks with a deterministic reduction: each chunk produces a
  // vector<R>; the per-chunk vectors are returned in chunk order, so
  // flattening them reproduces the order a serial loop over [0, n_items)
  // would have produced.
  //
  // Help-first execution: the caller runs chunk 0 itself and only chunks
  // 1..k-1 go through the queue. A single-chunk round (shards == 1, or a
  // frontier smaller than the shard count) therefore costs zero scheduler
  // handshakes — fixpoints with many tiny rounds stay cheap.
  template <typename R>
  std::vector<std::vector<R>> MapChunks(
      WorkQueue& wq, size_t n_items,
      const std::function<std::vector<R>(int, size_t, size_t)>& kernel) const {
    std::vector<std::pair<size_t, size_t>> ranges = Partition(n_items);
    std::vector<std::vector<R>> out(ranges.size());
    RunChunks(wq, ranges, [&out, &kernel](int c, size_t begin, size_t end) {
      out[static_cast<size_t>(c)] = kernel(c, begin, end);
    });
    return out;
  }

 private:
  // Shared help-first driver: chunks 1..k-1 on the queue, chunk 0 on the
  // calling thread, then the barrier. If both the inline chunk and a queued
  // chunk throw, chunk 0's exception wins (lowest index — the same "what a
  // serial loop would have hit first" rule WorkQueue::Wait applies).
  void RunChunks(WorkQueue& wq, const std::vector<std::pair<size_t, size_t>>& ranges,
                 const std::function<void(int, size_t, size_t)>& kernel) const;

  std::vector<const FuncDecl*> funcs_;
  std::map<const FuncDecl*, size_t> index_;
  int shard_count_ = 1;
};

}  // namespace ivy

#endif  // SRC_TOOL_FUNCTION_SHARDER_H_
