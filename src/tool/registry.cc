#include "src/tool/registry.h"

namespace ivy {

// Defined in passes.cc. Calling it from Instance() forces the linker to pull
// the passes translation unit (and its registrar objects) out of the static
// library even when a binary only references the registry.
void EnsureBuiltinPassesLinked();

ToolRegistry& ToolRegistry::Instance() {
  static ToolRegistry* registry = new ToolRegistry();
  EnsureBuiltinPassesLinked();
  return *registry;
}

bool ToolRegistry::Register(const std::string& name, Factory factory) {
  return factories_.emplace(name, std::move(factory)).second;
}

std::unique_ptr<ToolPass> ToolRegistry::Create(const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return nullptr;
  }
  return it->second();
}

std::vector<std::string> ToolRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;
}

ToolPassRegistrar::ToolPassRegistrar(const std::string& name, ToolRegistry::Factory factory) {
  ToolRegistry::Instance().Register(name, std::move(factory));
}

}  // namespace ivy
