// The uniform pass interface every tool implements. The seed gave each tool
// a bespoke entry point (`BlockStop::Run()`, `StackCheck::Run(entries)`,
// `LockSafe::ValidateRuntime(vm, module)`, ...); a ToolPass normalizes them
// to name() / Requires() / Run(AnalysisContext&) -> ToolResult so the driver
// can schedule any set of tools — including ones registered by code the
// driver has never heard of — over one shared analysis cache.
#ifndef SRC_TOOL_TOOL_PASS_H_
#define SRC_TOOL_TOOL_PASS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/tool/finding.h"

namespace ivy {

class AnalysisContext;

// The shared analyses a pass may declare in Requires(). The scheduler
// computes each required analysis exactly once (through the AnalysisContext
// cache) before any pass runs, so passes never race on a cold cache and
// never trigger a rebuild.
enum class AnalysisKind {
  kPointsTo,
  kCallGraph,  // implies kPointsTo
};

const char* AnalysisKindName(AnalysisKind k);

// Per-tool option bag (replaces one-flag-per-tool fields in the old flat
// ToolConfig). Stringly-typed on purpose: options survive serialization and
// unknown keys are ignored by passes that don't understand them.
class ToolOptions {
 public:
  ToolOptions() = default;

  ToolOptions& Set(const std::string& key, std::string value) {
    kv_[key] = std::move(value);
    return *this;
  }
  ToolOptions& SetInt(const std::string& key, int64_t value) {
    return Set(key, std::to_string(value));
  }
  ToolOptions& SetBool(const std::string& key, bool value) {
    return Set(key, value ? "1" : "0");
  }

  bool Has(const std::string& key) const { return kv_.count(key) != 0; }
  std::string GetString(const std::string& key, const std::string& def = "") const;
  int64_t GetInt(const std::string& key, int64_t def = 0) const;
  bool GetBool(const std::string& key, bool def = false) const;

  const std::map<std::string, std::string>& entries() const { return kv_; }

 private:
  std::map<std::string, std::string> kv_;
};

class ToolPass {
 public:
  virtual ~ToolPass() = default;

  virtual std::string name() const = 0;

  // Shared analyses this pass consumes; drives scheduling order.
  virtual std::vector<AnalysisKind> Requires() const { return {}; }

  // Pass-level ordering: names of passes that must finish before this one
  // runs (e.g. a summarizer consuming another pass's findings). Names absent
  // from the current pipeline are ignored. The scheduler topologically sorts
  // these edges; a cycle is reported as a pipeline error finding and the
  // cyclic passes are skipped — never a hang.
  virtual std::vector<std::string> RunAfter() const { return {}; }

  virtual ToolResult Run(AnalysisContext& ctx) = 0;

  // Called by the pipeline before Run with the tool's option bag.
  void Configure(ToolOptions opts) { options_ = std::move(opts); }
  const ToolOptions& options() const { return options_; }

 private:
  ToolOptions options_;
};

}  // namespace ivy

#endif  // SRC_TOOL_TOOL_PASS_H_
