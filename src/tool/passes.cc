// The builtin tool passes: thin ToolPass adapters over the existing tool
// modules, registered under the names the paper uses. Each pass pulls its
// analyses from the shared AnalysisContext (never rebuilding them), converts
// the tool's report to unified Findings, and keeps the original report
// reachable through ToolResult::DetailAs<> for legacy callers. The workload
// pass at the bottom is the dynamic stage: it runs bytecode VMs instead of
// static analyses, but reports through the same schema.
//
// Adding another tool is this file's pattern in ~30 lines: subclass
// ToolPass, convert your report, add one ToolPassRegistrar. See
// docs/ARCHITECTURE.md.
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>

#include "src/bc/bcvm.h"
#include "src/bc/compile.h"
#include "src/blockstop/blockstop.h"
#include "src/ccount/layouts.h"
#include "src/deputy/facts.h"
#include "src/errcheck/errcheck.h"
#include "src/locksafe/locksafe.h"
#include "src/stackcheck/stackcheck.h"
#include "src/tool/analysis_context.h"
#include "src/tool/function_sharder.h"
#include "src/tool/registry.h"
#include "src/vm/heap.h"
#include "src/vm/vm.h"

namespace ivy {
namespace {

// The "shards" option (injected pipeline-wide by PipelineBuilder::
// ShardFunctions, overridable per tool): 1 = serial reference kernels,
// 0 = hardware concurrency, n = that many shards. Findings are byte-
// identical for every value; only wall-clock changes.
int ShardsFromOptions(const ToolOptions& options) {
  int64_t shards = options.GetInt("shards", 1);
  return shards < 0 ? 1 : static_cast<int>(shards);
}

// The worker pool for a sharded kernel: the shared one a pipeline run or
// session attached to the context (TaskGroup keeps concurrent passes
// isolated on it), else a pass-local pool as before.
struct PoolRef {
  WorkQueue* pool = nullptr;
  std::unique_ptr<WorkQueue> owned;
};
PoolRef PoolFor(AnalysisContext& ctx, const FunctionSharder& sharder) {
  PoolRef r;
  r.pool = ctx.pool();
  if (r.pool == nullptr) {
    r.owned = std::make_unique<WorkQueue>(sharder.worker_count());
    r.pool = r.owned.get();
  }
  return r;
}

// --------------------------------------------------------------------------
// deputy: type-safety checks + static discharge (§2.1). The work happened at
// lowering time; this pass surfaces the check statistics and the deputy
// diagnostics through the unified schema.
// --------------------------------------------------------------------------
class DeputyPass : public ToolPass {
 public:
  std::string name() const override { return "deputy"; }

  ToolResult Run(AnalysisContext& ctx) override {
    ToolResult r(name());
    const CheckStats& cs = ctx.comp().check_stats;
    r.SetMetric("nonnull_emitted", cs.nonnull_emitted);
    r.SetMetric("nonnull_discharged", cs.nonnull_discharged);
    r.SetMetric("bounds_emitted", cs.bounds_emitted);
    r.SetMetric("bounds_discharged", cs.bounds_discharged);
    r.SetMetric("when_emitted", cs.when_emitted);
    r.SetMetric("nt_emitted", cs.nt_emitted);
    r.SetMetric("callsite_emitted", cs.callsite_emitted);
    r.SetMetric("callsite_discharged", cs.callsite_discharged);
    r.SetMetric("trusted_skipped", cs.trusted_skipped);
    r.SetMetric("total_emitted", cs.TotalEmitted());
    r.SetMetric("total_discharged", cs.TotalDischarged());
    for (const Diagnostic& d : ctx.comp().diags->diagnostics()) {
      if (d.tool != "deputy") {
        continue;
      }
      Finding f;
      f.tool = name();
      f.severity = d.severity == Severity::kError ? FindingSeverity::kError
                   : d.severity == Severity::kNote ? FindingSeverity::kNote
                                                   : FindingSeverity::kWarning;
      f.loc = d.loc;
      f.message = d.message;
      r.AddFinding(std::move(f));
    }
    r.set_summary("Deputy: " + std::to_string(cs.TotalEmitted()) + " run-time checks, " +
                  std::to_string(cs.TotalDischarged()) + " discharged statically");
    r.SetDetail(cs);
    return r;
  }
};

// --------------------------------------------------------------------------
// ccount: the free audit (§2.2). The static half is the derived type-layout
// registry; the dynamic half (bad frees observed by the VM) reports when a
// finished run is attached to the context.
// --------------------------------------------------------------------------
class CCountPass : public ToolPass {
 public:
  std::string name() const override { return "ccount"; }

  ToolResult Run(AnalysisContext& ctx) override {
    ToolResult r(name());
    const TypeLayoutRegistry& layouts = ctx.comp().layouts;
    r.SetMetric("layouts", layouts.count());
    r.SetMetric("pointer_bearing_layouts", layouts.PointerBearingCount());
    std::string summary = "CCount: " + std::to_string(layouts.PointerBearingCount()) +
                          " pointer-bearing layouts of " + std::to_string(layouts.count());
    if (const Machine* vm = ctx.vm()) {
      const HeapStats& hs = vm->heap().stats();
      r.SetMetric("allocs", hs.allocs);
      r.SetMetric("frees_attempted", hs.frees_attempted);
      r.SetMetric("frees_good", hs.frees_good);
      r.SetMetric("frees_bad", hs.frees_bad);
      r.SetMetric("frees_deferred", hs.frees_deferred);
      r.SetMetric("rc_increments", hs.rc_increments);
      r.SetMetric("rc_decrements", hs.rc_decrements);
      for (const auto& [key, site] : vm->heap().bad_free_sites()) {
        Finding f;
        f.tool = name();
        f.severity = FindingSeverity::kWarning;
        f.loc = site.loc;
        f.message = "bad free (" + std::to_string(site.count) + "x, " +
                    std::to_string(site.inbound_refs) +
                    " residual references) — object leaked, kernel kept running";
        r.AddFinding(std::move(f));
      }
      summary += "; " + std::to_string(hs.frees_good) + "/" +
                 std::to_string(hs.frees_attempted) + " frees verified good";
      r.SetDetail(hs);
    }
    r.set_summary(summary);
    return r;
  }
};

// --------------------------------------------------------------------------
// blockstop (§2.3).
// --------------------------------------------------------------------------
class BlockStopPass : public ToolPass {
 public:
  std::string name() const override { return "blockstop"; }

  std::vector<AnalysisKind> Requires() const override {
    return {AnalysisKind::kPointsTo, AnalysisKind::kCallGraph};
  }

  ToolResult Run(AnalysisContext& ctx) override {
    const CallGraph& cg = ctx.callgraph();
    BlockStop bs(&ctx.prog(), &ctx.sema(), &cg);
    // Session-provided incremental seed: freeze the may-block bits of
    // functions outside the edited call-graph region (exact memoization;
    // findings stay byte-identical to a cold run).
    const IncrementalHints* hints = ctx.incremental_hints();
    if (hints != nullptr && hints->has_blockstop_seed) {
      bs.SeedMayBlock(&hints->blockstop_clean, &hints->blockstop_prev_mayblock);
    }
    int shards = ShardsFromOptions(options());
    BlockStopReport report;
    if (shards == 1) {
      report = bs.Run();
    } else {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      PoolRef pool = PoolFor(ctx, sharder);
      report = bs.Run(sharder, *pool.pool);
      shards = sharder.shard_count();
    }
    ToolResult r(name());
    r.SetMetric("shards", shards);
    for (Finding& f : report.ToFindings()) {
      r.AddFinding(std::move(f));
    }
    r.SetMetric("defined_funcs", report.num_defined_funcs);
    r.SetMetric("callgraph_edges", report.callgraph_edges);
    r.SetMetric("indirect_sites", report.indirect_sites);
    r.SetMetric("indirect_target_total", report.indirect_target_total);
    r.SetMetric("mayblock_funcs", static_cast<int64_t>(report.mayblock.size()));
    r.SetMetric("violations", static_cast<int64_t>(report.violations.size()));
    r.SetMetric("silenced", static_cast<int64_t>(report.silenced.size()));
    r.SetMetric("runtime_checks", report.runtime_checks);
    // Strategy-dependent observability (rounds differ between the serial
    // rescan loop and the sharded BFS, evals shrink under an incremental
    // seed); findings never depend on either.
    r.SetMetric("context_rounds", report.context_rounds);
    r.SetMetric("mayblock_evals", report.mayblock_evals);
    r.set_summary(report.ToString());
    r.SetDetail(std::move(report));
    return r;
  }
};

// --------------------------------------------------------------------------
// locksafe (§3.1): static lock-order walk, plus the runtime validator when a
// finished VM run is attached.
// --------------------------------------------------------------------------
class LockSafePass : public ToolPass {
 public:
  std::string name() const override { return "locksafe"; }

  std::vector<AnalysisKind> Requires() const override {
    return {AnalysisKind::kCallGraph};
  }

  ToolResult Run(AnalysisContext& ctx) override {
    const CallGraph& cg = ctx.callgraph();
    LockSafe ls(&ctx.prog(), &ctx.sema(), &cg);
    int shards = ShardsFromOptions(options());
    LockSafeReport report;
    if (shards == 1) {
      report = ls.Run();
    } else {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      PoolRef pool = PoolFor(ctx, sharder);
      report = ls.Run(sharder, *pool.pool);
      shards = sharder.shard_count();
    }
    ToolResult r(name());
    r.SetMetric("shards", shards);
    for (Finding& f : report.ToFindings("static")) {
      r.AddFinding(std::move(f));
    }
    r.SetMetric("locks_seen", report.locks_seen);
    r.SetMetric("order_edges", static_cast<int64_t>(report.edges.size()));
    r.SetMetric("deadlock_cycles", static_cast<int64_t>(report.deadlock_cycles.size()));
    r.SetMetric("irq_unsafe_locks", static_cast<int64_t>(report.irq_unsafe_locks.size()));
    std::string summary = report.ToString();
    if (const Machine* vm = ctx.vm()) {
      LockSafeReport rt = LockSafe::ValidateRuntime(*vm, ctx.module());
      for (Finding& f : rt.ToFindings("runtime")) {
        r.AddFinding(std::move(f));
      }
      r.SetMetric("runtime_deadlock_cycles",
                  static_cast<int64_t>(rt.deadlock_cycles.size()));
      r.SetMetric("runtime_irq_unsafe_locks",
                  static_cast<int64_t>(rt.irq_unsafe_locks.size()));
      summary += "  (runtime validation)\n" + rt.ToString();
    }
    r.set_summary(summary);
    r.SetDetail(std::move(report));
    return r;
  }
};

// --------------------------------------------------------------------------
// stackcheck (§3.1). Options: "budget" (bytes, default 8192 — the paper's
// 8 kB), "entries" (comma-separated entry points; default all defined
// functions, since any of them may be a kernel entry).
// --------------------------------------------------------------------------
class StackCheckPass : public ToolPass {
 public:
  std::string name() const override { return "stackcheck"; }

  std::vector<AnalysisKind> Requires() const override {
    return {AnalysisKind::kCallGraph};
  }

  ToolResult Run(AnalysisContext& ctx) override {
    const CallGraph& cg = ctx.callgraph();
    int64_t budget = options().GetInt("budget", 8192);
    std::vector<std::string> entries;
    if (options().Has("entries")) {
      std::stringstream ss(options().GetString("entries"));
      std::string entry;
      while (std::getline(ss, entry, ',')) {
        // Trim whitespace: "a, b" must mean {"a","b"} — a spaced name that
        // silently matches nothing would under-analyze without a trace.
        size_t first = entry.find_first_not_of(" \t");
        size_t last = entry.find_last_not_of(" \t");
        if (first != std::string::npos) {
          entries.push_back(entry.substr(first, last - first + 1));
        }
      }
    }
    StackCheck sc(&cg, &ctx.module(), budget);
    int shards = ShardsFromOptions(options());
    StackCheckReport report;
    if (shards == 1) {
      report = sc.Run(entries);
    } else {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      PoolRef pool = PoolFor(ctx, sharder);
      report = sc.Run(entries, sharder, *pool.pool);
      shards = sharder.shard_count();
    }
    ToolResult r(name());
    r.SetMetric("shards", shards);
    for (Finding& f : report.ToFindings()) {
      r.AddFinding(std::move(f));
    }
    r.SetMetric("worst_case", report.worst_case);
    r.SetMetric("budget", report.budget);
    r.SetMetric("entries", static_cast<int64_t>(report.entry_depths.size()));
    r.SetMetric("recursive_funcs", static_cast<int64_t>(report.recursive.size()));
    r.SetMetric("fits_budget", report.fits_budget ? 1 : 0);
    r.set_summary(report.ToString());
    r.SetDetail(std::move(report));
    return r;
  }
};

// --------------------------------------------------------------------------
// errcheck (§3.1).
// --------------------------------------------------------------------------
class ErrCheckPass : public ToolPass {
 public:
  std::string name() const override { return "errcheck"; }

  std::vector<AnalysisKind> Requires() const override {
    return {AnalysisKind::kCallGraph};
  }

  ToolResult Run(AnalysisContext& ctx) override {
    const CallGraph& cg = ctx.callgraph();
    ErrCheck ec(&ctx.prog(), &ctx.sema(), &cg);
    int shards = ShardsFromOptions(options());
    ErrCheckReport report;
    if (shards == 1) {
      report = ec.Run();
    } else {
      FunctionSharder sharder(cg.DefinedFuncs(), shards);
      PoolRef pool = PoolFor(ctx, sharder);
      report = ec.Run(sharder, *pool.pool);
      shards = sharder.shard_count();
    }
    ToolResult r(name());
    r.SetMetric("shards", shards);
    for (Finding& f : report.ToFindings()) {
      r.AddFinding(std::move(f));
    }
    r.SetMetric("err_returning_funcs", report.err_returning_funcs);
    r.SetMetric("annotated_funcs", report.annotated_funcs);
    r.SetMetric("inferred_funcs", report.inferred_funcs);
    r.SetMetric("checked_sites", report.checked_sites);
    r.SetMetric("unchecked_sites", static_cast<int64_t>(report.findings.size()));
    r.set_summary(report.ToString());
    r.SetDetail(std::move(report));
    return r;
  }
};

// --------------------------------------------------------------------------
// workload: the dynamic stage of the pipeline. Runs VM workload functions —
// compiled once to ivybc bytecode, executed by one BcVm per function — as a
// scheduled pass on the shared WorkQueue, and turns what the runs observe
// (traps, might-sleep-in-atomic, CCount bad frees) into findings that merge
// and persist like any static pass's. Options:
//   "fns"       comma-separated workload specs, each "fn" or "fn:arg:arg..."
//   "boot"      one spec run first in every workload VM (e.g. "boot_kernel:5")
//   "max_steps" per-VM watchdog override
// With no "fns" the pass is a no-op, so it is safe under AllTools().
// --------------------------------------------------------------------------
struct WorkloadSpec {
  std::string fn;
  std::vector<int64_t> args;
};

std::vector<WorkloadSpec> ParseWorkloadSpecs(const std::string& joined) {
  std::vector<WorkloadSpec> out;
  std::stringstream ss(joined);
  std::string item;
  while (std::getline(ss, item, ',')) {
    size_t first = item.find_first_not_of(" \t");
    if (first == std::string::npos) {
      continue;
    }
    size_t last = item.find_last_not_of(" \t");
    item = item.substr(first, last - first + 1);
    WorkloadSpec spec;
    std::stringstream parts(item);
    std::string tok;
    while (std::getline(parts, tok, ':')) {
      if (spec.fn.empty()) {
        spec.fn = tok;
      } else {
        spec.args.push_back(std::strtoll(tok.c_str(), nullptr, 10));
      }
    }
    if (!spec.fn.empty()) {
      out.push_back(std::move(spec));
    }
  }
  return out;
}

std::string DescribeTrap(const std::string& what, const VmResult& r) {
  return what + " trapped: " + TrapKindName(r.trap) + ": " + r.trap_msg;
}

class WorkloadPass : public ToolPass {
 public:
  std::string name() const override { return "workload"; }

  ToolResult Run(AnalysisContext& ctx) override {
    ToolResult r(name());
    std::vector<WorkloadSpec> specs = ParseWorkloadSpecs(options().GetString("fns"));
    if (specs.empty()) {
      r.set_summary("Workload: no workload functions configured");
      return r;
    }
    std::vector<WorkloadSpec> boots = ParseWorkloadSpecs(options().GetString("boot"));
    const WorkloadSpec* boot = boots.empty() ? nullptr : &boots.front();

    Compilation& comp = ctx.comp();
    std::string err;
    std::shared_ptr<const BcModule> bc = CompileToBc(comp.module, &err);
    if (bc == nullptr) {
      Finding f;
      f.tool = name();
      f.severity = FindingSeverity::kError;
      f.message = "bytecode compilation failed: " + err;
      r.AddFinding(std::move(f));
      r.set_summary("Workload: bytecode compilation failed");
      return r;
    }
    VmConfig vcfg;
    vcfg.ccount = comp.config.ccount;
    vcfg.smp = comp.config.smp;
    vcfg.track_locals = comp.config.track_locals;
    vcfg.rc_width_bits = comp.config.rc_width_bits;
    vcfg.max_steps = options().GetInt("max_steps", vcfg.max_steps);

    // One run per spec, each in its own VM over the shared bytecode module.
    // Slots are index-addressed and merged in spec order after the barrier,
    // so parallel and serial runs report byte-identical findings.
    struct Slot {
      bool missing = false;
      bool boot_failed = false;
      VmResult boot;
      VmResult result;
      HeapStats heap;
      std::map<std::pair<int, int>, BadFreeSite> bad_frees;
      int64_t might_sleep_checks = 0;
    };
    std::vector<Slot> slots(specs.size());
    auto run_one = [&](size_t i) {
      Slot& slot = slots[i];
      const WorkloadSpec& spec = specs[i];
      if (bc->FindFunc(spec.fn) < 0) {
        slot.missing = true;
        return;
      }
      BcVm vm(bc, &comp.layouts, vcfg);
      if (boot != nullptr) {
        slot.boot = vm.Call(boot->fn, boot->args);
        if (!slot.boot.ok) {
          slot.boot_failed = true;
          return;
        }
      }
      slot.result = vm.Call(spec.fn, spec.args);
      slot.heap = vm.heap().stats();
      slot.bad_frees = vm.heap().bad_free_sites();
      slot.might_sleep_checks = vm.might_sleep_checks();
    };
    WorkQueue* pool = ctx.pool();
    std::unique_ptr<WorkQueue> owned;
    if (pool == nullptr) {
      owned = std::make_unique<WorkQueue>(0);
      pool = owned.get();
    }
    {
      TaskGroup group(*pool);
      for (size_t i = 0; i < specs.size(); ++i) {
        group.Submit([&run_one, i] { run_one(i); });
      }
      group.Wait();
    }

    int64_t ran = 0;
    int64_t traps = 0;
    int64_t bad_free_sites = 0;
    int64_t cycles = 0;
    int64_t steps = 0;
    for (size_t i = 0; i < specs.size(); ++i) {
      const Slot& slot = slots[i];
      const std::string& fn = specs[i].fn;
      if (slot.missing) {
        Finding f;
        f.tool = name();
        f.severity = FindingSeverity::kWarning;
        f.message = "workload function '" + fn + "' is not defined; skipped";
        f.witness = {fn};
        r.AddFinding(std::move(f));
        continue;
      }
      if (slot.boot_failed) {
        Finding f;
        f.tool = name();
        f.severity = FindingSeverity::kError;
        f.loc = slot.boot.trap_loc;
        f.message = DescribeTrap("workload boot '" + boot->fn + "'", slot.boot);
        f.witness = {fn};
        r.AddFinding(std::move(f));
        ++traps;
        continue;
      }
      ++ran;
      cycles += slot.result.cycles;
      steps += slot.result.steps;
      if (!slot.result.ok) {
        ++traps;
        Finding f;
        f.tool = name();
        f.severity = FindingSeverity::kError;
        f.loc = slot.result.trap_loc;
        f.message = DescribeTrap("workload '" + fn + "'", slot.result);
        f.witness = {fn};
        r.AddFinding(std::move(f));
      }
      for (const auto& [key, site] : slot.bad_frees) {
        ++bad_free_sites;
        Finding f;
        f.tool = name();
        f.severity = FindingSeverity::kWarning;
        f.loc = site.loc;
        f.message = "bad free (" + std::to_string(site.count) + "x, " +
                    std::to_string(site.inbound_refs) +
                    " residual references) — object leaked, kernel kept running";
        f.witness = {fn};
        r.AddFinding(std::move(f));
      }
    }
    r.SetMetric("functions", static_cast<int64_t>(specs.size()));
    r.SetMetric("ran", ran);
    r.SetMetric("traps", traps);
    r.SetMetric("bad_free_sites", bad_free_sites);
    r.SetMetric("cycles", cycles);
    r.SetMetric("steps", steps);
    r.SetMetric("image_words", static_cast<int64_t>(bc->code.size()));
    r.set_summary("Workload (ivybc): " + std::to_string(specs.size()) + " functions, " +
                  std::to_string(traps) + " traps, " + std::to_string(bad_free_sites) +
                  " bad-free sites");
    return r;
  }
};

template <typename PassT>
ToolRegistry::Factory FactoryFor() {
  return [] { return std::make_unique<PassT>(); };
}

const ToolPassRegistrar kDeputyReg("deputy", FactoryFor<DeputyPass>());
const ToolPassRegistrar kCCountReg("ccount", FactoryFor<CCountPass>());
const ToolPassRegistrar kBlockStopReg("blockstop", FactoryFor<BlockStopPass>());
const ToolPassRegistrar kLockSafeReg("locksafe", FactoryFor<LockSafePass>());
const ToolPassRegistrar kStackCheckReg("stackcheck", FactoryFor<StackCheckPass>());
const ToolPassRegistrar kErrCheckReg("errcheck", FactoryFor<ErrCheckPass>());
const ToolPassRegistrar kWorkloadReg("workload", FactoryFor<WorkloadPass>());

}  // namespace

// See registry.cc: referenced from ToolRegistry::Instance() so that linking
// the registry always links the builtin passes (and their registrars) too.
void EnsureBuiltinPassesLinked() {}

}  // namespace ivy
