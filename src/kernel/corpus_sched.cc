// kernel/sched.mc, kernel/signal.mc, kernel/module.mc, kernel/syscall.mc and
// the timer subsystem: process management (the fork benchmark of E2), signal
// delivery (lat_sig), the module loader (E2's module-loading benchmark), the
// syscall table (lat_syscall) and timer dispatch (BlockStop's atomic
// contexts).
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusSched() {
  return R"MC(
// ===== kernel/sched.mc ====================================================
enum sched_consts {
  MAX_PT = 128,
  COMM_LEN = 16,
  TASK_RUNNING = 0,
  TASK_ZOMBIE = 2
};

struct mm_struct {
  int npages;
  int lock;
  struct page* opt page_table[128];
};

struct task_struct {
  int pid;
  int state;
  int prio;
  int utime;
  struct task_struct* opt next;
  struct task_struct* opt parent;
  struct mm_struct* opt mm;
  struct sigqueue* opt sig_pending;
  char comm[16];
};

struct runqueue {
  struct task_struct* opt head;
  int count;
  int lock;
};

struct runqueue rq;
struct task_struct* opt current_task;
int current_pid;
int next_pid = 1;
int total_forks;

// Allocation-site RTTI wrappers (the paper's "explicit runtime type
// information" sites, §2.2).
struct task_struct* alloc_task(void) {
  return (struct task_struct*)kmalloc(sizeof(struct task_struct), GFP_KERNEL);
}

struct mm_struct* alloc_mm(void) {
  return (struct mm_struct*)kmalloc(sizeof(struct mm_struct), GFP_KERNEL);
}

void enqueue_task(struct task_struct* t) {
  int flags = spin_lock_irqsave(&rq.lock);
  t->next = rq.head;
  rq.head = t;
  rq.count = rq.count + 1;
  spin_unlock_irqrestore(&rq.lock, flags);
}

// Unlinks `t` from the runqueue, nulling the link that referenced it so the
// eventual kfree passes the CCount inbound-reference check.
void dequeue_task(struct task_struct* t) {
  int flags = spin_lock_irqsave(&rq.lock);
  if (rq.head == t) {
    rq.head = t->next;
  } else {
    struct task_struct* opt p = rq.head;
    while (p) {
      if (p->next == t) {
        p->next = t->next;
        p = null;
      } else {
        p = p->next;
      }
    }
  }
  t->next = null;
  rq.count = rq.count - 1;
  spin_unlock_irqrestore(&rq.lock, flags);
}

// copy_process: the core of fork. Duplicates the task and shares the parent
// address space copy-on-write style (every page-table slot is a *pointer*
// store, which is exactly the write traffic CCount instruments, E2).
struct task_struct* opt copy_process(struct task_struct* parent) {
  struct task_struct* child = alloc_task();
  if (!child) {
    return null;
  }
  struct mm_struct* mm = alloc_mm();
  if (!mm) {
    kfree(child);
    return null;
  }
  child->pid = next_pid;
  next_pid = next_pid + 1;
  child->state = TASK_RUNNING;
  child->prio = parent->prio;
  child->parent = parent;
  child->mm = mm;
  strlcpy_s(child->comm, COMM_LEN, parent->comm);
  struct mm_struct* opt pmm = parent->mm;
  if (pmm) {
    mm->npages = pmm->npages;
    for (int i = 0; i < pmm->npages; i++) {
      struct page* opt pg = pmm->page_table[i];
      mm->page_table[i] = pg;
      if (pg) {
        pg->refcnt = pg->refcnt + 1;
      }
    }
  }
  enqueue_task(child);
  total_forks = total_forks + 1;
  return child;
}

// Releases the address space: drop page references, nulling each slot before
// a possible free (a CCount porting fix: "nulling out some extra pointers,
// usually around the time the corresponding object is freed").
void exit_mm(struct task_struct* t) {
  struct mm_struct* opt mm = t->mm;
  if (!mm) {
    return;
  }
  for (int i = 0; i < mm->npages; i++) {
    struct page* opt pg = mm->page_table[i];
    mm->page_table[i] = null;
    if (pg) {
      pg->refcnt = pg->refcnt - 1;
      if (pg->refcnt == 0) {
        free_page_s(pg);
      }
    }
  }
  t->mm = null;
  kfree(mm);
}

void do_exit(struct task_struct* t) {
  dequeue_task(t);
  exit_mm(t);
  t->state = TASK_ZOMBIE;
  t->parent = null;
  kfree(t);
}

// Round-robin scheduler step: rotate the runqueue and charge a context
// switch (lat_ctx).
void schedule_once(void) {
  int flags = spin_lock_irqsave(&rq.lock);
  struct task_struct* opt prev = rq.head;
  if (prev) {
    struct task_struct* opt nxt = prev->next;
    if (nxt) {
      // Move head to tail.
      rq.head = nxt;
      struct task_struct* opt tail = nxt;
      while (tail->next) {
        tail = tail->next;
      }
      tail->next = prev;
      prev->next = null;
      current_task = nxt;
      current_pid = nxt->pid;
      spin_unlock_irqrestore(&rq.lock, flags);
      context_switch((void*)prev, (void*)nxt);
      return;
    }
  }
  spin_unlock_irqrestore(&rq.lock, flags);
}

void sched_init(void) {
  rq.head = null;
  rq.count = 0;
  struct task_struct* init_task = alloc_task();
  if (!init_task) {
    panic("sched_init: cannot allocate init task");
  }
  init_task->pid = 0;
  strlcpy_s(init_task->comm, COMM_LEN, "swapper");
  init_task->mm = alloc_mm();
  enqueue_task(init_task);
  current_task = init_task;
  current_pid = 0;
}
)MC";
}

const char* CorpusSignal() {
  return R"MC(
// ===== kernel/signal.mc ===================================================
enum signals { SIGHUP = 1, SIGINT = 2, SIGKILL = 9, SIGTERM = 15, NSIG = 32 };

struct sigqueue {
  int signo;
  int info;
  int plen;
  struct sigqueue* opt next;
  char payload[24];
};

int signals_sent;
int signals_delivered;
int pending_set[32];
char siginfo_log[256];

struct sigqueue* alloc_sigqueue(int flags) blocking_if(flags) {
  return (struct sigqueue*)kmalloc(sizeof(struct sigqueue), flags);
}

int send_signal(struct task_struct* t, int signo) errcode(-22, -12) {
  if (signo <= 0 || signo >= NSIG) {
    return -22;
  }
  struct sigqueue* q = alloc_sigqueue(GFP_ATOMIC);
  if (!q) {
    return -12;
  }
  q->signo = signo;
  q->info = current_pid;
  q->plen = 24;
  for (int i = 0; i < 24; i++) {
    q->payload[i] = signo + i;
  }
  q->next = t->sig_pending;
  t->sig_pending = q;
  signals_sent = signals_sent + 1;
  return 0;
}

// Delivers (and frees) all pending signals. Each queue node is unlinked and
// its forward pointer nulled before kfree — the CCount discipline.
int deliver_signals(struct task_struct* t) {
  int delivered = 0;
  while (t->sig_pending) {
    struct sigqueue* q = t->sig_pending;
    t->sig_pending = q->next;
    q->next = null;
    // The signo indexes the pending set and the payload copy has dynamic
    // bounds: these checks survive static discharge (lat_sig's 1.31).
    pending_set[q->signo] = q->info;
    int base = (q->signo * 8) % 200;
    for (int i = 0; i < q->plen; i++) {
      siginfo_log[base + i] = q->payload[i];
    }
    delivered = delivered + 1;
    kfree(q);
  }
  signals_delivered = signals_delivered + delivered;
  return delivered;
}
)MC";
}

const char* CorpusModuleLoader() {
  return R"MC(
// ===== kernel/module.mc ===================================================
// The module loader: E2's second benchmark. Loading copies the module image
// (bulk char traffic) and patches a small relocation table of function
// pointers (a little pointer traffic) — which is why CCount's overhead here
// is much smaller than on fork.
enum mod_consts { MOD_NRELOCS = 8 };

typedef int mod_fn(void);

struct module {
  int size;
  int nrelocs;
  char* opt core;
  struct module* opt next;
  mod_fn* opt entries[8];
  char name[32];
};

struct module* opt modules_head;
int mod_lock;
int modules_loaded;

int mod_nop(void) { return 0; }

struct module* opt load_module(char* nullterm name, char* count(n) image, int n) noblock {
  assert_nonatomic();
  struct module* m = (struct module*)kmalloc(sizeof(struct module), GFP_KERNEL);
  if (!m) {
    return null;
  }
  char* count(n) opt core = (char*)kmalloc(n, GFP_KERNEL);
  if (!core) {
    kfree(m);
    return null;
  }
  m->size = n;
  m->core = core;
  memcpy(core, image, n);
  strlcpy_s(m->name, 32, name);
  m->nrelocs = MOD_NRELOCS;
  for (int i = 0; i < MOD_NRELOCS; i++) {
    m->entries[i] = mod_nop;
  }
  mutex_lock(&mod_lock);
  m->next = modules_head;
  modules_head = m;
  modules_loaded = modules_loaded + 1;
  mutex_unlock(&mod_lock);
  // Run the module entry point through its relocation slot.
  mod_fn* entry = m->entries[0];
  if (entry) {
    entry();
  }
  return m;
}

int unload_module(struct module* m) noblock errcode(-2) {
  assert_nonatomic();
  mutex_lock(&mod_lock);
  if (modules_head == m) {
    modules_head = m->next;
  } else {
    struct module* opt p = modules_head;
    while (p) {
      if (p->next == m) {
        p->next = m->next;
        p = null;
      } else {
        p = p->next;
      }
    }
  }
  m->next = null;
  modules_loaded = modules_loaded - 1;
  mutex_unlock(&mod_lock);
  char* opt core = m->core;
  m->core = null;
  for (int i = 0; i < m->nrelocs; i++) {
    m->entries[i] = null;
  }
  kfree((void*)core);
  kfree(m);
  return 0;
}
)MC";
}

const char* CorpusSyscall() {
  return R"MC(
// ===== kernel/syscall.mc ==================================================
// The syscall table: a function-pointer array dispatched on every
// lat_syscall iteration. The bounds check on sys_table[nr] is the Deputy
// run-time check lat_syscall pays for.
enum syscalls {
  NR_SYSCALLS = 64,
  SYS_GETPID = 1,
  SYS_READ = 2,
  SYS_WRITE = 3,
  SYS_FORK = 4,
  SYS_KILL = 5,
  ENOSYS = 38
};

typedef int sys_fn(int a, int b, int c);

sys_fn* opt sys_table[64];

int sys_ni(int a, int b, int c) { return 0 - ENOSYS; }

int sys_getpid(int a, int b, int c) { return current_pid; }

int sys_kill_impl(int pid, int signo, int unused) {
  struct task_struct* opt t = rq.head;
  while (t) {
    if (t->pid == pid) {
      return send_signal(t, signo);
    }
    t = t->next;
  }
  return -3;
}

int syscall_entry(int nr, int a, int b, int c) {
  if (nr < 0 || nr >= NR_SYSCALLS) {
    return 0 - ENOSYS;
  }
  sys_fn* opt f = sys_table[nr];
  if (!f) {
    return 0 - ENOSYS;
  }
  return f(a, b, c);
}

void syscalls_init(void) {
  for (int i = 0; i < NR_SYSCALLS; i++) {
    sys_table[i] = sys_ni;
  }
  sys_table[SYS_GETPID] = sys_getpid;
  sys_table[SYS_KILL] = sys_kill_impl;
}

// ===== kernel/timer.mc ====================================================
// Timers run from the timer interrupt: their callbacks execute with
// interrupts disabled, which is the atomic context BlockStop reasons about.
typedef void timer_fn(int data);

struct timer {
  int expires;
  int data;
  timer_fn* opt fn;
  struct timer* opt next;
};

struct timer* opt timers_head;
int timers_lock;
int jiffies;

void add_timer(struct timer* t) {
  int flags = spin_lock_irqsave(&timers_lock);
  t->next = timers_head;
  timers_head = t;
  spin_unlock_irqrestore(&timers_lock, flags);
}

// The timer interrupt handler: entered via trigger_irq, so interrupts are
// disabled for the whole walk, and every t->fn(...) call is an atomic-context
// indirect call site.
void timer_tick(int now) interrupt_handler {
  jiffies = now;
  struct timer* opt t = timers_head;
  while (t) {
    if (t->expires <= now) {
      timer_fn* opt fn = t->fn;
      if (fn) {
        fn(t->data);
      }
    }
    t = t->next;
  }
}
)MC";
}

}  // namespace ivy
