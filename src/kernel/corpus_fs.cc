// fs/vfs.mc, fs/ramfs.mc, fs/pipe.mc: VFS dispatch through file_operations
// tables (lat_fslayer), a page-backed ram filesystem (bw_file_rd, lat_fs) and
// pipes (bw_pipe, lat_pipe).
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusVfs() {
  return R"MC(
// ===== fs/vfs.mc ==========================================================
enum vfs_consts {
  NAME_LEN = 32,
  RAMFS_MAX_PAGES = 64,
  EBADF = 9,
  EINVAL = 22,
  ENOENT = 2,
  EFBIG = 27
};

typedef int fop_read(struct file* f, char* count(n) buf, int n);
typedef int fop_write(struct file* f, char* count(n) buf, int n);
typedef int fop_open(struct inode* ino, struct file* f);

struct file_operations {
  fop_open* opt open;
  fop_read* opt read;
  fop_write* opt write;
};

struct inode {
  int ino;
  int size;
  int nlink;
  int lock;
  int npages;
  struct file_operations* opt fops;
  struct page* opt pages[64];
};

struct dentry {
  struct inode* opt ino;
  struct dentry* opt next;
  char name[32];
};

struct file {
  struct inode* opt ino;
  int pos;
  int flags;
  int refcnt;
};

struct dentry* opt dentry_list;
int vfs_lock;
int next_ino = 1;
int vfs_files_created;

struct inode* alloc_inode(void) {
  return (struct inode*)kmalloc(sizeof(struct inode), GFP_KERNEL);
}

struct dentry* alloc_dentry(void) {
  return (struct dentry*)kmalloc(sizeof(struct dentry), GFP_KERNEL);
}

struct file* alloc_file(void) {
  return (struct file*)kmalloc(sizeof(struct file), GFP_KERNEL);
}

struct dentry* opt vfs_lookup(char* nullterm name) {
  struct dentry* opt d = dentry_list;
  while (d) {
    if (strcmp_s(d->name, name) == 0) {
      return d;
    }
    d = d->next;
  }
  return null;
}

struct inode* opt vfs_create(char* nullterm name, struct file_operations* fops) {
  if (vfs_lookup(name)) {
    return null;
  }
  struct inode* ino = alloc_inode();
  struct dentry* d = alloc_dentry();
  if (!ino || !d) {
    kfree(ino);
    kfree(d);
    return null;
  }
  ino->ino = next_ino;
  next_ino = next_ino + 1;
  ino->nlink = 1;
  ino->fops = fops;
  strlcpy_s(d->name, NAME_LEN, name);
  d->ino = ino;
  mutex_lock(&vfs_lock);
  d->next = dentry_list;
  dentry_list = d;
  mutex_unlock(&vfs_lock);
  vfs_files_created = vfs_files_created + 1;
  return ino;
}

// Drops the inode: release every data page (nulling the slots first) and
// free the inode itself.
void iput(struct inode* ino) {
  ino->nlink = ino->nlink - 1;
  if (ino->nlink > 0) {
    return;
  }
  for (int i = 0; i < ino->npages; i++) {
    struct page* opt pg = ino->pages[i];
    ino->pages[i] = null;
    if (pg) {
      free_page_s(pg);
    }
  }
  ino->fops = null;
  kfree(ino);
}

int vfs_unlink(char* nullterm name) errcode(-2) {
  mutex_lock(&vfs_lock);
  struct dentry* opt d = dentry_list;
  struct dentry* opt prev = null;
  while (d) {
    if (strcmp_s(d->name, name) == 0) {
      if (prev) {
        prev->next = d->next;
      } else {
        dentry_list = d->next;
      }
      d->next = null;
      mutex_unlock(&vfs_lock);
      struct inode* opt ino = d->ino;
      d->ino = null;
      if (ino) {
        iput(ino);
      }
      kfree(d);
      return 0;
    }
    prev = d;
    d = d->next;
  }
  mutex_unlock(&vfs_lock);
  return -ENOENT;
}

struct file* opt vfs_open(char* nullterm name) {
  struct dentry* opt d = vfs_lookup(name);
  if (!d) {
    return null;
  }
  struct inode* opt ino = d->ino;
  if (!ino) {
    return null;
  }
  struct file* f = alloc_file();
  if (!f) {
    return null;
  }
  f->ino = ino;
  f->pos = 0;
  f->refcnt = 1;
  struct file_operations* opt fops = ino->fops;
  if (fops) {
    fop_open* opt op = fops->open;
    if (op) {
      op(ino, f);
    }
  }
  return f;
}

// The VFS layer dispatch measured by lat_fslayer: resolve the inode, the
// operations table and the function pointer, then call through it.
int vfs_read(struct file* f, char* count(n) buf, int n) errcode(-9, -22) {
  struct inode* opt ino = f->ino;
  if (!ino) {
    return -EBADF;
  }
  struct file_operations* opt fops = ino->fops;
  if (!fops) {
    return -EINVAL;
  }
  fop_read* opt op = fops->read;
  if (!op) {
    return -EINVAL;
  }
  return op(f, buf, n);
}

int vfs_write(struct file* f, char* count(n) buf, int n) errcode(-9, -22) {
  struct inode* opt ino = f->ino;
  if (!ino) {
    return -EBADF;
  }
  struct file_operations* opt fops = ino->fops;
  if (!fops) {
    return -EINVAL;
  }
  fop_write* opt op = fops->write;
  if (!op) {
    return -EINVAL;
  }
  return op(f, buf, n);
}

void vfs_close(struct file* f) {
  f->refcnt = f->refcnt - 1;
  if (f->refcnt == 0) {
    f->ino = null;
    kfree(f);
  }
}
)MC";
}

const char* CorpusRamfs() {
  return R"MC(
// ===== fs/ramfs.mc ========================================================
// A page-backed ram filesystem. The read path (bw_file_rd) is page-sized
// memcpy traffic; the write path allocates pages on demand (pointer stores
// into inode->pages, which CCount counts).

struct file_operations ramfs_fops;
int ramfs_reads;
int ramfs_writes;

int ramfs_open(struct inode* ino, struct file* f) {
  return 0;
}

// Reads up to n bytes at f->pos. Carries the paper's run-time check: the
// page-cache walk must never run in atomic context.
int ramfs_read(struct file* f, char* count(n) buf, int n) noblock errcode(-9) {
  assert_nonatomic();
  struct inode* opt ino = f->ino;
  if (!ino) {
    return -EBADF;
  }
  int copied = 0;
  while (copied < n && f->pos < ino->size) {
    int pgidx = f->pos / PAGE_SIZE;
    int off = f->pos % PAGE_SIZE;
    if (pgidx >= ino->npages) {
      return copied;
    }
    struct page* opt pg = ino->pages[pgidx];
    if (!pg) {
      return copied;
    }
    int chunk = PAGE_SIZE - off;
    if (chunk > n - copied) {
      chunk = n - copied;
    }
    if (chunk > ino->size - f->pos) {
      chunk = ino->size - f->pos;
    }
    trusted {
      memcpy(buf + copied, pg->data + off, chunk);
    }
    copied = copied + chunk;
    f->pos = f->pos + chunk;
  }
  ramfs_reads = ramfs_reads + 1;
  return copied;
}

int ramfs_write(struct file* f, char* count(n) buf, int n) noblock errcode(-27) {
  assert_nonatomic();
  struct inode* opt ino = f->ino;
  if (!ino) {
    return -EBADF;
  }
  int written = 0;
  while (written < n) {
    int pgidx = f->pos / PAGE_SIZE;
    int off = f->pos % PAGE_SIZE;
    if (pgidx >= RAMFS_MAX_PAGES) {
      return -EFBIG;
    }
    if (pgidx >= ino->npages) {
      struct page* pg = alloc_page(GFP_KERNEL);
      if (!pg) {
        return written;
      }
      pg->index = pgidx;
      ino->pages[pgidx] = pg;
      ino->npages = pgidx + 1;
    }
    struct page* opt pg = ino->pages[pgidx];
    if (!pg) {
      return written;
    }
    int chunk = PAGE_SIZE - off;
    if (chunk > n - written) {
      chunk = n - written;
    }
    trusted {
      memcpy(pg->data + off, buf + written, chunk);
    }
    written = written + chunk;
    f->pos = f->pos + chunk;
    if (f->pos > ino->size) {
      ino->size = f->pos;
    }
  }
  ramfs_writes = ramfs_writes + 1;
  return written;
}

void ramfs_init(void) {
  ramfs_fops.open = ramfs_open;
  ramfs_fops.read = ramfs_read;
  ramfs_fops.write = ramfs_write;
}
)MC";
}

const char* CorpusPipe() {
  return R"MC(
// ===== fs/pipe.mc =========================================================
enum pipe_consts { PIPE_CAP = 4096, EPIPE = 32 };

struct pipe {
  int head;
  int tail;
  int used;
  int lock;
  int reader_wq;
  int writer_wq;
  char* opt buf;
};

int pipes_created;

struct pipe* opt pipe_create(void) {
  struct pipe* p = (struct pipe*)kmalloc(sizeof(struct pipe), GFP_KERNEL);
  if (!p) {
    return null;
  }
  char* b = (char*)kmalloc(PIPE_CAP, GFP_KERNEL);
  if (!b) {
    kfree(p);
    return null;
  }
  p->buf = b;
  pipes_created = pipes_created + 1;
  return p;
}

void pipe_destroy(struct pipe* p) {
  char* opt b = p->buf;
  p->buf = null;
  kfree((void*)b);
  kfree(p);
}

// Writes n bytes; sleeps (wait_event) when the ring is full.
int pipe_write(struct pipe* p, char* count(n) src, int n) noblock errcode(-32) {
  assert_nonatomic();
  char* opt rb = p->buf;
  if (!rb) {
    return -EPIPE;
  }
  int written = 0;
  spin_lock(&p->lock);
  while (written < n) {
    if (p->used == PIPE_CAP) {
      spin_unlock(&p->lock);
      wait_event(&p->writer_wq);
      spin_lock(&p->lock);
    }
    int chunk = PIPE_CAP - p->used;
    int tailroom = PIPE_CAP - p->head;
    if (chunk > tailroom) {
      chunk = tailroom;
    }
    if (chunk > n - written) {
      chunk = n - written;
    }
    trusted {
      memcpy(rb + p->head, src + written, chunk);
    }
    p->head = (p->head + chunk) % PIPE_CAP;
    p->used = p->used + chunk;
    written = written + chunk;
  }
  spin_unlock(&p->lock);
  wake_up(&p->reader_wq);
  return written;
}

int pipe_read(struct pipe* p, char* count(n) dst, int n) noblock errcode(-32) {
  assert_nonatomic();
  char* opt rb = p->buf;
  if (!rb) {
    return -EPIPE;
  }
  int got = 0;
  spin_lock(&p->lock);
  while (got < n) {
    if (p->used == 0) {
      spin_unlock(&p->lock);
      wait_event(&p->reader_wq);
      spin_lock(&p->lock);
      if (p->used == 0) {
        spin_unlock(&p->lock);
        return got;
      }
    }
    int chunk = p->used;
    int headroom = PIPE_CAP - p->tail;
    if (chunk > headroom) {
      chunk = headroom;
    }
    if (chunk > n - got) {
      chunk = n - got;
    }
    trusted {
      memcpy(dst + got, rb + p->tail, chunk);
    }
    p->tail = (p->tail + chunk) % PIPE_CAP;
    p->used = p->used - chunk;
    got = got + chunk;
  }
  spin_unlock(&p->lock);
  wake_up(&p->writer_wq);
  return got;
}
)MC";
}

}  // namespace ivy
