// lib/string.mc and mm/slab.mc: string routines with Deputy annotations and
// the slab layer over the CCount-instrumented allocator.
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusLib() {
  return R"MC(
// ===== lib/string.mc ======================================================
// String helpers in the Deputy style: sources are nullterm, destinations
// carry explicit counts, and iteration advances one element at a time so the
// nullterm checks stay cheap.

int strlen_s(char* nullterm s) {
  int n = 0;
  while (*s) {
    s = s + 1;
    n = n + 1;
  }
  return n;
}

// Copies at most cap-1 chars and always terminates. Returns chars copied.
int strlcpy_s(char* count(cap) dst, int cap, char* nullterm src) {
  int i = 0;
  while (*src && i < cap - 1) {
    dst[i] = *src;
    src = src + 1;
    i = i + 1;
  }
  dst[i] = 0;
  return i;
}

int strcmp_s(char* nullterm a, char* nullterm b) {
  while (*a && *b) {
    if (*a != *b) {
      return *a - *b;
    }
    a = a + 1;
    b = b + 1;
  }
  return *a - *b;
}

void memzero(char* count(n) p, int n) {
  memset(p, 0, n);
}

// Simple deterministic hash used by several subsystems.
int str_hash(char* nullterm s) {
  int h = 5381;
  while (*s) {
    h = h * 33 + *s;
    s = s + 1;
  }
  if (h < 0) {
    h = -h;
  }
  return h;
}

// ===== mm/slab.mc =========================================================
// The slab layer: per-size caches for pointer-free payloads. Typed objects
// use dedicated wrappers (CCount needs allocation-site type info, which the
// compiler can only infer from a cast at a direct kmalloc call — the paper's
// "explicit runtime type information" sites).

struct kmem_cache {
  int obj_size;
  int allocated;
  int freed;
  int lock;
  char name[32];
};

struct kmem_cache* kmem_cache_create(char* nullterm name, int size) {
  struct kmem_cache* c =
      (struct kmem_cache*)kmalloc(sizeof(struct kmem_cache), GFP_KERNEL);
  if (!c) {
    panic("kmem_cache_create: out of memory");
  }
  c->obj_size = size;
  c->allocated = 0;
  c->freed = 0;
  strlcpy_s(c->name, 32, name);
  return c;
}

// Allocates a pointer-free object from the cache (char payload).
void* kmem_cache_alloc(struct kmem_cache* c, int flags) blocking_if(flags) {
  char* obj = (char*)kmalloc(c->obj_size, flags);
  if (obj) {
    spin_lock(&c->lock);
    c->allocated = c->allocated + 1;
    spin_unlock(&c->lock);
  }
  return (void*)obj;
}

void kmem_cache_free(struct kmem_cache* c, void* opt obj) {
  if (!obj) {
    return;
  }
  spin_lock(&c->lock);
  c->freed = c->freed + 1;
  spin_unlock(&c->lock);
  kfree(obj);
}

// ===== mm/page.mc =========================================================
enum pagesz { PAGE_SIZE = 256 };

struct page {
  int flags;
  int index;
  int refcnt;
  char data[256];
};

int pages_allocated;

struct page* alloc_page(int flags) blocking_if(flags) {
  struct page* pg = (struct page*)kmalloc(sizeof(struct page), flags);
  if (!pg) {
    return null;
  }
  pg->refcnt = 1;
  pages_allocated = pages_allocated + 1;
  return pg;
}

void free_page_s(struct page* opt pg) {
  if (!pg) {
    return;
  }
  pages_allocated = pages_allocated - 1;
  kfree(pg);
}
)MC";
}

}  // namespace ivy
