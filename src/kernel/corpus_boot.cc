// init/boot.mc: the boot-to-login workload (E3's ~107k verified frees), the
// "light use" workload (idle + network + file copy, with the residual bad
// frees), and the hbench entry points that regenerate Table 1.
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusBoot() {
  return R"MC(
// ===== init/boot.mc =======================================================

struct timer flush_timer;

// Resource limit on mapped pages; a tunable, so the page-table loops below
// have *dynamic* bounds the static discharger cannot remove (the realistic
// case for mmap paths — this is where lat_mmap's 1.41 comes from).
int mm_limit = 128;

// Maps `n` fresh pages into the current task (lat_mmap's map half).
int do_mmap(struct task_struct* t, int n) errcode(-12) {
  struct mm_struct* opt mm = t->mm;
  if (!mm) {
    return -12;
  }
  int mapped = 0;
  for (int i = 0; i < mm_limit && mapped < n; i++) {
    if (!mm->page_table[i]) {
      struct page* pg = alloc_page(GFP_KERNEL);
      if (!pg) {
        return -12;
      }
      mm->page_table[i] = pg;
      if (i + 1 > mm->npages) {
        mm->npages = i + 1;
      }
      mapped = mapped + 1;
    }
  }
  return mapped;
}

int do_munmap(struct task_struct* t, int n) {
  struct mm_struct* opt mm = t->mm;
  if (!mm) {
    return 0;
  }
  int unmapped = 0;
  for (int i = mm_limit - 1; i >= 0; i--) {
    if (unmapped >= n) {
      return unmapped;
    }
    struct page* opt pg = mm->page_table[i];
    if (pg) {
      mm->page_table[i] = null;
      if (atomic_dec_and_test(&pg->refcnt)) {
        free_page_s(pg);
      }
      unmapped = unmapped + 1;
    }
  }
  return unmapped;
}

// One boot-time churn round: exercises every subsystem's alloc/free paths
// the way init scripts do (process spawning, file traffic, sockets, module
// loads, signals). Every free in here verifies under CCount.
void boot_churn_round(int serial) {
  // Process churn.
  struct task_struct* opt self = current_task;
  if (self) {
    struct task_struct* opt child = copy_process(self);
    if (child) {
      send_signal(child, SIGTERM);
      deliver_signals(child);
      do_exit(child);
    }
  }
  // File churn.
  char name[32];
  name[0] = 'f';
  name[1] = '0' + serial % 10;
  name[2] = 0;
  struct inode* opt ino = vfs_create(name, &ramfs_fops);
  if (ino) {
    struct file* opt f = vfs_open(name);
    if (f) {
      char blk[256];
      memzero(blk, 256);
      vfs_write(f, blk, 256);
      f->pos = 0;
      vfs_read(f, blk, 256);
      vfs_close(f);
    }
    vfs_unlink(name);
  }
  // Socket churn.
  struct sock* a = alloc_sock(PROTO_UDP);
  struct sock* b = alloc_sock(PROTO_UDP);
  a->peer = b;
  b->peer = a;
  char msg[64];
  memzero(msg, 64);
  udp_sendmsg(a, msg, 64);
  udp_recvmsg(b, msg, 64);
  a->peer = null;
  b->peer = null;
  sock_release(a);
  sock_release(b);
  // Module churn.
  char image[512];
  memzero(image, 512);
  struct module* opt m = load_module("mod", image, 512);
  if (m) {
    unload_module(m);
  }
  // procfs + block churn.
  char pbuf[128];
  proc_read("stat", pbuf, 128);
  char sector[64];
  memzero(sector, 64);
  blk_write_sync(serial % 64, sector, 64);
  // Pipe churn.
  struct pipe* opt p = pipe_create();
  if (p) {
    char byte[1];
    byte[0] = 'x';
    pipe_write(p, byte, 1);
    pipe_read(p, byte, 1);
    pipe_destroy(p);
  }
}

// Boot to login prompt. `scale` multiplies the init churn so the free
// population matches the paper's ~107k (the bench calibrates it).
int boot_kernel(int scale) {
  sched_init();
  syscalls_init();
  ramfs_init();
  procfs_init();
  tty_init();
  netdev_init();
  flush_timer.expires = 1;
  flush_timer.fn = flush_to_ldisc;
  add_timer(&flush_timer);
  for (int round = 0; round < scale; round++) {
    boot_churn_round(round);
  }
  printk("ivy-linux booted: %d forks, %d files\n", total_forks, vfs_files_created);
  return __good_frees();
}

// Light use after boot: idle timer ticks, network receive traffic and an
// scp-like file copy. The tcp_reset path keeps its bad free (E3's 98.5%).
int light_use(int rounds) {
  struct sock* a = alloc_sock(PROTO_TCP);
  struct sock* b = alloc_sock(PROTO_TCP);
  tcp_connect(a, b);
  char blk[1024];
  memzero(blk, 1024);
  for (int r = 0; r < rounds; r++) {
    // Idle: timer interrupts fire.
    trigger_irq(timer_tick, r);
    // Network rx via the driver interrupt, drained into a UDP socket.
    trigger_irq(e1000_interrupt, 4);
    struct sock* u = alloc_sock(PROTO_UDP);
    netdev_rx_drain(u);
    char tmp[128];
    int got = udp_recvmsg(u, tmp, 128);
    while (got > 0) {
      got = udp_recvmsg(u, tmp, 128);
    }
    sock_release(u);
    // scp-like copy: file -> tcp -> file.
    char name[32];
    name[0] = 's';
    name[1] = 'c';
    name[2] = 'p';
    name[3] = '0' + r % 10;
    name[4] = 0;
    struct inode* opt ino = vfs_create(name, &ramfs_fops);
    if (ino) {
      struct file* opt f = vfs_open(name);
      if (f) {
        vfs_write(f, blk, 1024);
        f->pos = 0;
        vfs_read(f, blk, 1024);
        tcp_sendmsg(a, blk, 1024);
        tcp_recvmsg(b, blk, 1024);
        vfs_close(f);
      }
      vfs_unlink(name);
    }
    // Every few rounds the stack sees a spurious RST: the unfixed bad-free
    // path runs (logged and leaked by CCount, never released).
    if (r % 16 == 11) {
      tcp_sendmsg(a, blk, 64);
      tcp_sendmsg(a, blk, 64);
      tcp_sendmsg(a, blk, 64);
      tcp_reset(b);
      struct sk_buff* opt stale = skb_dequeue(&b->rxq);
      while (stale) {
        kfree_skb(stale);
        stale = skb_dequeue(&b->rxq);
      }
      tcp_connect(a, b);
    }
  }
  sock_release(a);
  sock_release(b);
  return __bad_frees();
}
)MC";
}

const char* CorpusHbench() {
  return R"MC(
// ===== hbench.mc ==========================================================
// Entry points for the 21 hbench benchmarks of Table 1. Each hb_* function
// performs `iters` repetitions of the measured operation; the C++ harness
// reads the VM cycle counter around the call.
enum hb_consts { HB_BUF = 65536, HB_INTS = 8192 };

char hb_src[65536];
char hb_dst[65536];
int hb_ints[8192];
struct sock* opt hb_tcp_a;
struct sock* opt hb_tcp_b;
struct sock* opt hb_udp_a;
struct sock* opt hb_udp_b;
struct pipe* opt hb_pipe;
struct file* opt hb_file;

int hb_setup(void) {
  for (int i = 0; i < HB_BUF; i++) {
    hb_src[i] = i % 251;
  }
  // Populate the runqueue so the context-switch benchmarks schedule between
  // real tasks.
  struct task_struct* opt self = current_task;
  if (self) {
    do_mmap(self, 96);
    copy_process(self);
    copy_process(self);
    copy_process(self);
  }
  hb_tcp_a = alloc_sock(PROTO_TCP);
  hb_tcp_b = alloc_sock(PROTO_TCP);
  tcp_connect(hb_tcp_a, hb_tcp_b);
  hb_udp_a = alloc_sock(PROTO_UDP);
  hb_udp_b = alloc_sock(PROTO_UDP);
  hb_udp_a->peer = hb_udp_b;
  hb_udp_b->peer = hb_udp_a;
  hb_pipe = pipe_create();
  vfs_create("hbench.dat", &ramfs_fops);
  hb_file = vfs_open("hbench.dat");
  if (hb_file) {
    struct file* f = hb_file;
    vfs_write(f, hb_src, 16384);
  }
  return 0;
}

// ---- bandwidth tests -----------------------------------------------------

int hb_bw_bzero(int bytes, int iters) {
  for (int it = 0; it < iters; it++) {
    memzero(hb_dst, bytes);
  }
  return hb_dst[0];
}

int hb_bw_file_rd(int iters) {
  struct file* opt f = hb_file;
  if (!f) {
    return -1;
  }
  int total = 0;
  for (int it = 0; it < iters; it++) {
    f->pos = 0;
    total = total + vfs_read(f, hb_dst, 16384);
  }
  return total;
}

int hb_bw_mem_cp(int bytes, int iters) {
  for (int it = 0; it < iters; it++) {
    memcpy(hb_dst, hb_src, bytes);
  }
  return hb_dst[1];
}

int hb_bw_mem_rd(int iters) {
  int sum = 0;
  for (int it = 0; it < iters; it++) {
    for (int i = 0; i < HB_INTS; i++) {
      sum = sum + hb_ints[i];
    }
  }
  return sum;
}

int hb_bw_mem_wr(int iters) {
  for (int it = 0; it < iters; it++) {
    for (int i = 0; i < HB_INTS; i++) {
      hb_ints[i] = i + it;
    }
  }
  return hb_ints[7];
}

int hb_bw_mmap_rd(int iters) {
  struct file* opt f = hb_file;
  if (!f) {
    return -1;
  }
  struct inode* opt ino = f->ino;
  if (!ino) {
    return -1;
  }
  int sum = 0;
  for (int it = 0; it < iters; it++) {
    for (int pgi = 0; pgi < ino->npages; pgi++) {
      struct page* opt pg = ino->pages[pgi];
      if (pg) {
        for (int i = 0; i < PAGE_SIZE; i++) {
          sum = sum + pg->data[i];
        }
      }
    }
  }
  return sum;
}

int hb_bw_pipe(int iters) {
  struct pipe* opt p = hb_pipe;
  if (!p) {
    return -1;
  }
  int total = 0;
  for (int it = 0; it < iters; it++) {
    pipe_write(p, hb_src, 4096);
    total = total + pipe_read(p, hb_dst, 4096);
  }
  return total;
}

int hb_bw_tcp(int iters) {
  struct sock* opt a = hb_tcp_a;
  struct sock* opt b = hb_tcp_b;
  if (!a || !b) {
    return -1;
  }
  int total = 0;
  for (int it = 0; it < iters; it++) {
    tcp_sendmsg(a, hb_src, 16384);
    total = total + tcp_recvmsg(b, hb_dst, 16384);
  }
  return total;
}

// ---- latency tests -------------------------------------------------------

int hb_lat_connect(int iters) {
  for (int it = 0; it < iters; it++) {
    struct sock* c = alloc_sock(PROTO_TCP);
    struct sock* s = alloc_sock(PROTO_TCP);
    tcp_connect(c, s);
    c->peer = null;
    s->peer = null;
    sock_release(c);
    sock_release(s);
  }
  return 0;
}

int hb_lat_ctx(int iters) {
  for (int it = 0; it < iters; it++) {
    schedule_once();
  }
  return current_pid;
}

// lat_ctx2: context switches with a working set — walk every runnable
// task's page table between switches (pointer-chasing with dynamic bounds,
// the un-dischargeable checks that make this row 1.35 in the paper).
int hb_lat_ctx2(int iters) {
  int sum = 0;
  for (int it = 0; it < iters; it++) {
    schedule_once();
    struct task_struct* opt t = rq.head;
    while (t) {
      struct mm_struct* opt mm = t->mm;
      if (mm) {
        for (int i = 0; i < mm->npages; i++) {
          struct page* opt pg = mm->page_table[i];
          if (pg) {
            sum = sum + pg->data[i % PAGE_SIZE] + pg->refcnt;
          }
        }
      }
      t = t->next;
    }
  }
  return sum;
}

int hb_lat_fs(int iters) {
  char blk[1024];
  memzero(blk, 1024);
  for (int it = 0; it < iters; it++) {
    struct inode* opt ino = vfs_create("lat_fs.tmp", &ramfs_fops);
    if (ino) {
      struct file* opt f = vfs_open("lat_fs.tmp");
      if (f) {
        vfs_write(f, blk, 1024);
        vfs_close(f);
      }
      vfs_unlink("lat_fs.tmp");
    }
  }
  return 0;
}

int hb_lat_fslayer(int iters) {
  struct file* opt f = hb_file;
  if (!f) {
    return -1;
  }
  int total = 0;
  for (int it = 0; it < iters; it++) {
    f->pos = 0;
    total = total + vfs_read(f, hb_dst, 1);
  }
  return total;
}

int hb_lat_mmap(int iters) {
  struct task_struct* opt t = current_task;
  if (!t) {
    return -1;
  }
  for (int it = 0; it < iters; it++) {
    do_mmap(t, 16);
    do_munmap(t, 16);
  }
  return 0;
}

int hb_lat_pipe(int iters) {
  struct pipe* opt p = hb_pipe;
  if (!p) {
    return -1;
  }
  char byte[1];
  byte[0] = 'x';
  int total = 0;
  for (int it = 0; it < iters; it++) {
    pipe_write(p, byte, 1);
    total = total + pipe_read(p, byte, 1);
  }
  return total;
}

int hb_lat_proc(int iters) {
  struct task_struct* opt self = current_task;
  if (!self) {
    return -1;
  }
  for (int it = 0; it < iters; it++) {
    struct task_struct* opt child = copy_process(self);
    if (child) {
      do_exit(child);
    }
  }
  return 0;
}

// E2's second benchmark: module load/unload (image copy + relocations).
int hb_mod_load(int iters) {
  char image[24576];
  memzero(image, 24576);
  for (int it = 0; it < iters; it++) {
    struct module* opt m = load_module("bench_mod", image, 24576);
    if (m) {
      unload_module(m);
    }
  }
  return modules_loaded;
}

int hb_lat_rpc(int iters) {
  struct sock* opt a = hb_udp_a;
  struct sock* opt b = hb_udp_b;
  if (!a || !b) {
    return -1;
  }
  char req[64];
  memzero(req, 64);
  int total = 0;
  for (int it = 0; it < iters; it++) {
    udp_sendmsg(a, req, 64);
    udp_recvmsg(b, req, 64);
    udp_sendmsg(b, req, 64);
    total = total + udp_recvmsg(a, req, 64);
  }
  return total;
}

int hb_lat_sig(int iters) {
  struct task_struct* opt t = current_task;
  if (!t) {
    return -1;
  }
  int total = 0;
  for (int it = 0; it < iters; it++) {
    send_signal(t, SIGINT);
    total = total + deliver_signals(t);
  }
  return total;
}

int hb_lat_syscall(int iters) {
  int r = 0;
  for (int it = 0; it < iters; it++) {
    r = syscall_entry(SYS_GETPID, 0, 0, 0);
  }
  return r;
}

int hb_lat_tcp(int iters) {
  struct sock* opt a = hb_tcp_a;
  struct sock* opt b = hb_tcp_b;
  if (!a || !b) {
    return -1;
  }
  char byte[1];
  byte[0] = 'y';
  int total = 0;
  for (int it = 0; it < iters; it++) {
    tcp_sendmsg(a, byte, 1);
    total = total + tcp_recvmsg(b, byte, 1);
  }
  return total;
}

int hb_lat_udp(int iters) {
  struct sock* opt a = hb_udp_a;
  struct sock* opt b = hb_udp_b;
  if (!a || !b) {
    return -1;
  }
  char byte[1];
  byte[0] = 'z';
  int total = 0;
  for (int it = 0; it < iters; it++) {
    udp_sendmsg(a, byte, 1);
    total = total + udp_recvmsg(b, byte, 1);
  }
  return total;
}
)MC";
}

const std::vector<CorpusModule>& KernelModules() {
  static const auto* kModules = new std::vector<CorpusModule>{
      {"lib/string.mc", CorpusLib()},
      {"kernel/sched.mc", CorpusSched()},
      {"kernel/signal.mc", CorpusSignal()},
      {"kernel/module.mc", CorpusModuleLoader()},
      {"kernel/syscall.mc", CorpusSyscall()},
      {"fs/vfs.mc", CorpusVfs()},
      {"fs/ramfs.mc", CorpusRamfs()},
      {"fs/pipe.mc", CorpusPipe()},
      {"net/core.mc", CorpusNetCore()},
      {"net/udp.mc", CorpusUdp()},
      {"net/tcp.mc", CorpusTcp()},
      {"fs/procfs.mc", CorpusProcfs()},
      {"block/bio.mc", CorpusBio()},
      {"tty/ldisc.mc", CorpusTty()},
      {"drivers/netdev.mc", CorpusNetdev()},
      {"init/boot.mc", CorpusBoot()},
      {"hbench/hbench.mc", CorpusHbench()},
  };
  return *kModules;
}

std::vector<SourceFile> KernelSources() {
  std::vector<SourceFile> files;
  for (const CorpusModule& m : KernelModules()) {
    files.push_back(SourceFile{m.path, m.source});
  }
  return files;
}

std::unique_ptr<Compilation> CompileKernel(const ToolConfig& config) {
  return Compile(KernelSources(), config);
}

}  // namespace ivy
