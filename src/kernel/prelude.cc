#include "src/kernel/prelude.h"

namespace ivy {

const char* PreludeSource() {
  return R"MC(
// ===== Ivy prelude: kernel substrate API ==================================
// GFP allocation flags: GFP_WAIT makes kmalloc a (conditionally) blocking
// call; GFP_ATOMIC must be used in atomic context.
enum gfp {
  GFP_ATOMIC = 0,
  GFP_WAIT = 1,
  GFP_KERNEL = 1
};

typedef void irq_handler(int arg);

// Memory management (the CCount-instrumented allocator).
void* kmalloc(int size, int flags) blocking_if(flags);
void kfree(void* opt p);
void memset(char* count(n) p, int c, int n);
void memcpy(char* count(n) dst, char* count(n) src, int n);

// Diagnostics.
int printk(char* nullterm fmt, ...);
void panic(char* nullterm msg);
void __assert(int cond);

// Interrupt state.
int local_irq_save(void);
void local_irq_restore(int flags);
void local_irq_disable(void);
void local_irq_enable(void);
int irqs_disabled(void);

// Spinlocks and mutexes (lock word lives in an int).
void spin_lock(int* lock);
void spin_unlock(int* lock);
int spin_lock_irqsave(int* lock);
void spin_unlock_irqrestore(int* lock, int flags);
void mutex_lock(int* m) blocking;
void mutex_unlock(int* m);

// Blocking primitives (BlockStop's seed set).
void might_sleep(void) blocking;
void schedule(void) blocking;
void msleep(int ms) blocking;
void udelay(int us);
void wait_event(int* q) blocking;
void wake_up(int* q);
void wait_for_completion(int* c) blocking;
void complete(int* c);
int copy_to_user(int uaddr, char* count(n) src, int n) blocking;
int copy_from_user(char* count(n) dst, int uaddr, int n) blocking;

// The paper's run-time check: panics if interrupts are disabled. Functions
// that begin with this call are annotated `noblock` so BlockStop treats
// their atomic-context reachability as dynamically checked.
void assert_nonatomic(void);

// Interrupt dispatch: runs `h(arg)` with interrupts disabled.
void trigger_irq(irq_handler* h, int arg);

// Atomics.
void atomic_inc(int* v);
int atomic_dec_and_test(int* v);

// Introspection (used by tests and benchmarks, not by kernel code).
int __cycles(void);
int __rc_of(void* opt p);
int __good_frees(void);
int __bad_frees(void);
void context_switch(void* opt prev, void* opt next);
// ===== end prelude ========================================================
)MC";
}

}  // namespace ivy
