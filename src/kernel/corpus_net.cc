// net/core.mc, net/udp.mc, net/tcp.mc: sk_buffs with a when()-guarded
// control-block union (the Deputy union checks that make lat_udp the worst
// row of Table 1), UDP datagram paths, and a TCP-ish stream with a
// retransmit queue torn down inside a delayed_free scope (the cyclic
// structure CCount's scopes exist for).
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusNetCore() {
  return R"MC(
// ===== net/core.mc ========================================================
enum net_consts {
  SKB_DATA_LEN = 1536,
  PROTO_TCP = 6,
  PROTO_UDP = 17,
  EAGAIN = 11,
  EMSGSIZE = 90,
  ECONNRESET = 104
};

struct tcp_cb {
  int seq;
  int ack;
  int win;
};

struct udp_cb {
  int sport;
  int dport;
  int ulen;
};

struct sk_buff {
  int len;
  int protocol;
  int csum;
  struct sk_buff* opt next;
  struct sock* opt sk;
  union {
    struct tcp_cb tcp when(protocol == PROTO_TCP);
    struct udp_cb udp when(protocol == PROTO_UDP);
  } cb;
  char data[1536];
};

struct sk_buff_head {
  struct sk_buff* opt head;
  struct sk_buff* opt tail;
  int qlen;
  int lock;
};

struct sock {
  int state;
  int port;
  int proto;
  int lock;
  int rx_wq;
  struct sk_buff_head rxq;
  struct sock* opt peer;
  struct sock* opt next;
};

int skbs_alloced;
int skbs_freed;

struct sk_buff* opt alloc_skb(int flags) blocking_if(flags) {
  struct sk_buff* skb = (struct sk_buff*)kmalloc(sizeof(struct sk_buff), flags);
  if (skb) {
    skbs_alloced = skbs_alloced + 1;
  }
  return skb;
}

// Frees an skb after detaching it from everything it references.
void kfree_skb(struct sk_buff* skb) {
  skb->next = null;
  skb->sk = null;
  skbs_freed = skbs_freed + 1;
  kfree(skb);
}

void skb_queue_tail(struct sk_buff_head* q, struct sk_buff* skb) {
  int flags = spin_lock_irqsave(&q->lock);
  skb->next = null;
  if (q->tail) {
    struct sk_buff* t = q->tail;
    t->next = skb;
  } else {
    q->head = skb;
  }
  q->tail = skb;
  q->qlen = q->qlen + 1;
  spin_unlock_irqrestore(&q->lock, flags);
}

struct sk_buff* opt skb_dequeue(struct sk_buff_head* q) {
  int flags = spin_lock_irqsave(&q->lock);
  struct sk_buff* opt skb = q->head;
  if (skb) {
    q->head = skb->next;
    if (!q->head) {
      q->tail = null;
    }
    skb->next = null;
    q->qlen = q->qlen - 1;
  }
  spin_unlock_irqrestore(&q->lock, flags);
  return skb;
}

// Internet checksum over the payload; the canonical counted loop that Deputy
// discharges statically (bw paths stay near 1.00 in Table 1).
int csum_partial(char* count(n) data, int n) {
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum = sum + data[i];
    if (sum > 0xffff) {
      sum = (sum & 0xffff) + 1;
    }
  }
  return sum;
}

struct sock* alloc_sock(int proto) {
  struct sock* sk = (struct sock*)kmalloc(sizeof(struct sock), GFP_KERNEL);
  if (!sk) {
    panic("alloc_sock: out of memory");
  }
  sk->proto = proto;
  return sk;
}

// Drains and releases a socket. The rx queue and the skb->sk back-pointers
// form a cycle, so the frees happen inside a delayed_free scope: all
// reference-count decrements run before any check (§2.2).
void sock_release(struct sock* sk) {
  delayed_free {
    struct sk_buff* opt skb = skb_dequeue(&sk->rxq);
    while (skb) {
      kfree_skb(skb);
      skb = skb_dequeue(&sk->rxq);
    }
    sk->peer = null;
    sk->next = null;
    kfree(sk);
  }
}
)MC";
}

const char* CorpusUdp() {
  return R"MC(
// ===== net/udp.mc =========================================================
int udp_packets_sent;
int udp_packets_rcvd;

// Sends one datagram to sk->peer. Touches the when()-guarded udp control
// block — every access is a Deputy union check (lat_udp's overhead).
int udp_sendmsg(struct sock* sk, char* count(n) buf, int n) noblock errcode(-90, -11) {
  assert_nonatomic();
  if (n > SKB_DATA_LEN) {
    return -EMSGSIZE;
  }
  struct sock* opt peer = sk->peer;
  if (!peer) {
    return -EAGAIN;
  }
  struct sk_buff* opt skb = alloc_skb(GFP_KERNEL);
  if (!skb) {
    return -EAGAIN;
  }
  skb->protocol = PROTO_UDP;
  skb->cb.udp.sport = sk->port;
  skb->cb.udp.dport = peer->port;
  skb->cb.udp.ulen = n;
  skb->len = n;
  trusted {
    memcpy(skb->data, buf, n);
  }
  skb->csum = csum_partial(buf, n);
  skb->sk = peer;
  skb_queue_tail(&peer->rxq, skb);
  wake_up(&peer->rx_wq);
  udp_packets_sent = udp_packets_sent + 1;
  return n;
}

int udp_recvmsg(struct sock* sk, char* count(n) buf, int n) noblock errcode(-11) {
  assert_nonatomic();
  struct sk_buff* opt skb = skb_dequeue(&sk->rxq);
  if (!skb) {
    wait_event(&sk->rx_wq);
    skb = skb_dequeue(&sk->rxq);
    if (!skb) {
      return -EAGAIN;
    }
  }
  int ulen = skb->cb.udp.ulen;
  int got = ulen;
  if (got > n) {
    got = n;
  }
  // Datagrams are short: copy out element-by-element. The destination bound
  // (n) and the copy length (got) are different variables, so Deputy keeps a
  // run-time check per element — the reason lat_udp is Table 1's worst row.
  for (int i = 0; i < got; i++) {
    buf[i] = skb->data[i];
  }
  int sum = 0;
  trusted {
    sum = csum_partial(skb->data, skb->len);
  }
  if (sum != skb->csum) {
    kfree_skb(skb);
    return -EAGAIN;
  }
  kfree_skb(skb);
  udp_packets_rcvd = udp_packets_rcvd + 1;
  return got;
}
)MC";
}

const char* CorpusTcp() {
  return R"MC(
// ===== net/tcp.mc =========================================================
enum tcp_consts {
  TCP_CLOSED = 0,
  TCP_SYN_SENT = 1,
  TCP_ESTABLISHED = 2,
  TCP_MSS = 1024
};

int tcp_segments_sent;
int tcp_resets;

// Three-way-handshake stand-in: wires two sockets together.
int tcp_connect(struct sock* client, struct sock* server) noblock errcode(-104) {
  assert_nonatomic();
  client->state = TCP_SYN_SENT;
  struct sk_buff* opt syn = alloc_skb(GFP_KERNEL);
  if (!syn) {
    return -ECONNRESET;
  }
  syn->protocol = PROTO_TCP;
  syn->cb.tcp.seq = 1;
  syn->sk = server;
  skb_queue_tail(&server->rxq, syn);
  // SYN-ACK + ACK collapse into direct state updates.
  struct sk_buff* opt ack = skb_dequeue(&server->rxq);
  if (ack) {
    kfree_skb(ack);
  }
  client->peer = server;
  server->peer = client;
  client->state = TCP_ESTABLISHED;
  server->state = TCP_ESTABLISHED;
  return 0;
}

// Segments the payload, checksums each segment and delivers to the peer's
// rx queue (bw_tcp / lat_tcp).
int tcp_sendmsg(struct sock* sk, char* count(n) buf, int n) noblock errcode(-104, -11) {
  assert_nonatomic();
  if (sk->state != TCP_ESTABLISHED) {
    return -ECONNRESET;
  }
  struct sock* opt peer = sk->peer;
  if (!peer) {
    return -ECONNRESET;
  }
  int sent = 0;
  int seq = 0;
  while (sent < n) {
    int chunk = TCP_MSS;
    if (chunk > n - sent) {
      chunk = n - sent;
    }
    struct sk_buff* opt skb = alloc_skb(GFP_KERNEL);
    if (!skb) {
      return sent > 0 ? sent : -EAGAIN;
    }
    skb->protocol = PROTO_TCP;
    skb->cb.tcp.seq = seq;
    skb->cb.tcp.win = 65535;
    skb->len = chunk;
    trusted {
      memcpy(skb->data, buf + sent, chunk);
      skb->csum = csum_partial(skb->data, chunk);
    }
    skb->sk = peer;
    skb_queue_tail(&peer->rxq, skb);
    sent = sent + chunk;
    seq = seq + chunk;
    tcp_segments_sent = tcp_segments_sent + 1;
  }
  wake_up(&peer->rx_wq);
  return sent;
}

int tcp_recvmsg(struct sock* sk, char* count(n) buf, int n) noblock errcode(-11) {
  assert_nonatomic();
  int got = 0;
  struct sk_buff* opt skb = skb_dequeue(&sk->rxq);
  while (skb && got < n) {
    int chunk = skb->len;
    if (chunk > n - got) {
      chunk = n - got;
    }
    int ack = skb->cb.tcp.seq + chunk;
    if (chunk < 64) {
      // Short segments (the lat_tcp path) copy element-wise under checks.
      for (int i = 0; i < chunk; i++) {
        buf[got + i] = skb->data[i];
      }
    } else {
      trusted {
        memcpy(buf + got, skb->data, chunk);
      }
    }
    got = got + ack - skb->cb.tcp.seq;
    kfree_skb(skb);
    if (got < n) {
      skb = skb_dequeue(&sk->rxq);
    } else {
      skb = null;
    }
  }
  return got;
}

// RST handling: the rare path that still has a bad free. The skb is freed
// while the peer's queue may still reference it — CCount logs it and leaks
// the buffer (this is one of the residual 1.5% bad frees of E3).
void tcp_reset(struct sock* sk) {
  // BUG (intentionally preserved, mirrors the unfixed kernel paths behind
  // E3's residual 1.5%): tears down the receive queue by freeing each skb
  // *without unlinking it first*, so the queue links still reference the
  // buffers when the CCount check runs.
  struct sk_buff* opt victim = sk->rxq.head;
  while (victim) {
    struct sk_buff* opt nxt = victim->next;
    kfree(victim);
    victim = nxt;
    tcp_resets = tcp_resets + 1;
  }
  sk->state = TCP_CLOSED;
}
)MC";
}

}  // namespace ivy
