// The synthetic Linux kernel corpus (the paper's "stripped-down version of
// the Linux 2.6.15.5 kernel", §2).
//
// Every module is Mini-C source embedded as a string constant. The corpus is
// deliberately written in the idioms the paper's tools must handle: Deputy
// sibling-field bounds and nullterm strings, CCount alloc/free discipline
// with pointer nullings and delayed_free scopes, function-pointer dispatch
// tables (file_operations, line disciplines, the syscall table), IRQ-disabled
// regions, and the two planted BlockStop bugs plus the read_chan-style false
// positive (§2.3).
#ifndef SRC_KERNEL_CORPUS_H_
#define SRC_KERNEL_CORPUS_H_

#include <string>
#include <vector>

#include "src/driver/compiler.h"

namespace ivy {

struct CorpusModule {
  const char* path;    // display path, e.g. "kernel/sched.mc"
  const char* source;  // Mini-C text
};

// All kernel modules, in dependency order.
const std::vector<CorpusModule>& KernelModules();

// The corpus as compiler inputs (all modules + the hbench workload file).
std::vector<SourceFile> KernelSources();

// Compiles the whole kernel with the given tool configuration.
std::unique_ptr<Compilation> CompileKernel(const ToolConfig& config);

// Individual module groups (used by incremental-porting examples/tests).
const char* CorpusLib();      // lib/string.mc
const char* CorpusMm();       // mm/slab.mc
const char* CorpusSched();    // kernel/sched.mc (tasks, fork, runqueue)
const char* CorpusSignal();   // kernel/signal.mc
const char* CorpusModuleLoader();  // kernel/module.mc
const char* CorpusSyscall();  // kernel/syscall.mc
const char* CorpusVfs();      // fs/vfs.mc
const char* CorpusRamfs();    // fs/ramfs.mc
const char* CorpusPipe();     // fs/pipe.mc
const char* CorpusNetCore();  // net/core.mc (sk_buff)
const char* CorpusUdp();      // net/udp.mc
const char* CorpusTcp();      // net/tcp.mc
const char* CorpusTty();      // tty/ldisc.mc (the false-positive scenario)
const char* CorpusNetdev();   // drivers/netdev.mc (planted bug #1)
const char* CorpusProcfs();   // fs/procfs.mc
const char* CorpusBio();      // block/bio.mc
const char* CorpusBoot();     // init/boot.mc
const char* CorpusHbench();   // hbench workload entry points

}  // namespace ivy

#endif  // SRC_KERNEL_CORPUS_H_
