// tty/ldisc.mc and drivers/netdev.mc: the paper's BlockStop case study. The
// line-discipline ops table mixes a blocking `read` (read_chan) with an
// atomically-invoked `receive_buf`; a field-insensitive points-to analysis
// merges the two slots and reports flush_to_ldisc -> read_chan, the false
// positive the paper silences with a run-time check at the top of read_chan
// (§2.3). The two *real* planted bugs live in netdev_reset (kmalloc with
// GFP_KERNEL under a spinlock) and console_panic_flush (wait_for_completion
// with interrupts disabled).
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusTty() {
  return R"MC(
// ===== tty/ldisc.mc =======================================================
enum tty_consts { TTY_FLIP_LEN = 256 };

typedef int ld_read_fn(struct tty* t, char* count(n) buf, int n);
typedef void ld_rcv_fn(struct tty* t, char* count(n) cp, int n);

struct ldisc_ops {
  ld_read_fn* opt read;
  ld_rcv_fn* opt receive_buf;
};

struct tty {
  int lock;
  int read_wq;
  int flip_len;
  int chars_rx;
  struct ldisc_ops* opt ldisc;
  char flip_buf[256];
};

struct ldisc_ops n_tty_ops;
struct tty* opt console_tty;
int console_done;
int console_lock;

// The blocking line-discipline read. BlockStop's field-insensitive points-to
// believes flush_to_ldisc can call this with interrupts disabled; the
// assert_nonatomic() call is the paper's manual run-time check asserting it
// never actually happens (the `noblock` annotation records that).
int read_chan(struct tty* t, char* count(n) buf, int n) noblock {
  assert_nonatomic();
  if (t->flip_len == 0) {
    wait_event(&t->read_wq);
  }
  int got = t->flip_len;
  if (got > n) {
    got = n;
  }
  for (int i = 0; i < got; i++) {
    trusted {
      buf[i] = t->flip_buf[i];
    }
  }
  t->flip_len = 0;
  return got;
}

// The interrupt-side half: copies receiver bytes into the flip buffer. Must
// never sleep — it runs from flush_to_ldisc with interrupts disabled.
void n_tty_receive_buf(struct tty* t, char* count(n) cp, int n) {
  int room = TTY_FLIP_LEN - t->flip_len;
  int take = n;
  if (take > room) {
    take = room;
  }
  for (int i = 0; i < take; i++) {
    t->flip_buf[t->flip_len + i] = cp[i];
  }
  t->flip_len = t->flip_len + take;
  t->chars_rx = t->chars_rx + take;
  wake_up(&t->read_wq);
}

// Timer callback (so it runs with interrupts disabled): pushes pending
// receiver data through the line discipline's function-pointer table.
void flush_to_ldisc(int data) {
  struct tty* opt t = console_tty;
  if (!t) {
    return;
  }
  struct ldisc_ops* opt ops = t->ldisc;
  if (!ops) {
    return;
  }
  ld_rcv_fn* opt rcv = ops->receive_buf;
  if (rcv) {
    char pending[16];
    for (int i = 0; i < 16; i++) {
      pending[i] = 'a' + i % 26;
    }
    rcv(t, pending, 16);
  }
}

void tty_init(void) {
  n_tty_ops.read = read_chan;
  n_tty_ops.receive_buf = n_tty_receive_buf;
  struct tty* t = (struct tty*)kmalloc(sizeof(struct tty), GFP_KERNEL);
  if (!t) {
    panic("tty_init: out of memory");
  }
  t->ldisc = &n_tty_ops;
  console_tty = t;
}

// Console write: blocking (takes a mutex and may schedule).
int console_write(char* count(n) buf, int n) noblock {
  assert_nonatomic();
  mutex_lock(&console_lock);
  int sum = 0;
  for (int i = 0; i < n; i++) {
    sum = sum + buf[i];
  }
  mutex_unlock(&console_lock);
  return sum;
}

// PLANTED BUG #2 (found by BlockStop, §2.3 "we found two apparent bugs"):
// waits for the console completion with interrupts disabled. Never executed
// by the benchmarks — exactly the kind of latent bug sound analysis catches
// and testing does not.
void console_panic_flush(void) {
  local_irq_disable();
  wait_for_completion(&console_done);
  local_irq_enable();
}
)MC";
}

const char* CorpusNetdev() {
  return R"MC(
// ===== drivers/netdev.mc ==================================================
enum netdev_consts { RX_RING = 32, TX_RING = 32 };

typedef int ndo_xmit_fn(struct net_device* dev, struct sk_buff* skb);
typedef int ndo_ctl_fn(struct net_device* dev);

struct net_device_ops {
  ndo_xmit_fn* opt ndo_start_xmit;
  ndo_ctl_fn* opt ndo_open;
  ndo_ctl_fn* opt ndo_stop;
};

struct net_device {
  int tx_lock;
  int stats_lock;
  int tx_packets;
  int rx_packets;
  int up;
  int irq_events;
  struct net_device_ops* opt ops;
  struct sk_buff_head rxq;
};

struct net_device_ops e1000_ops;
struct net_device* opt netdev0;

// Blocking: brings the device up (allocates with GFP_KERNEL, sleeps for the
// PHY). Shares an ops table with ndo_start_xmit, which runs under the tx
// spinlock -- the field-insensitive merge makes every xmit site look like it
// could call this, another run-time-check-silenced false positive.
int e1000_open(struct net_device* dev) noblock {
  assert_nonatomic();
  msleep(1);
  dev->up = 1;
  return 0;
}

int e1000_stop(struct net_device* dev) noblock {
  assert_nonatomic();
  dev->up = 0;
  return 0;
}

// Runs under dev->tx_lock (atomic): must not sleep.
int e1000_start_xmit(struct net_device* dev, struct sk_buff* skb) {
  dev->tx_packets = dev->tx_packets + 1;
  int sum = 0;
  trusted {
    sum = csum_partial(skb->data, skb->len);
  }
  skb->csum = sum;
  return 0;
}

int netdev_xmit(struct net_device* dev, struct sk_buff* skb) {
  int flags = spin_lock_irqsave(&dev->tx_lock);
  struct net_device_ops* opt ops = dev->ops;
  int r = -1;
  if (ops) {
    ndo_xmit_fn* opt xmit = ops->ndo_start_xmit;
    if (xmit) {
      r = xmit(dev, skb);
    }
  }
  // Stats bump while still holding the tx lock: establishes the lock order
  // tx_lock -> stats_lock.
  spin_lock(&dev->stats_lock);
  dev->tx_packets = dev->tx_packets + 0;
  spin_unlock(&dev->stats_lock);
  spin_unlock_irqrestore(&dev->tx_lock, flags);
  return r;
}

// PLANTED DEADLOCK (LockSafe, §3.1): reads stats under stats_lock, then
// peeks at the tx state under tx_lock — the order stats_lock -> tx_lock,
// inverted with respect to netdev_xmit. Also acquires stats_lock in process
// context with interrupts enabled while e1000_interrupt takes the same lock
// in IRQ context — the paper's Linux-specific spinlock invariant.
int netdev_get_stats(struct net_device* dev) {
  spin_lock(&dev->stats_lock);
  int rx = dev->rx_packets;
  spin_lock(&dev->tx_lock);
  int tx = dev->tx_packets;
  spin_unlock(&dev->tx_lock);
  spin_unlock(&dev->stats_lock);
  return rx + tx;
}

// The receive interrupt handler: refills the rx queue with GFP_ATOMIC
// allocations (correct) and bumps stats under the stats lock.
void e1000_interrupt(int budget) interrupt_handler {
  struct net_device* opt dev = netdev0;
  if (!dev) {
    return;
  }
  dev->irq_events = dev->irq_events + 1;
  for (int i = 0; i < budget; i++) {
    struct sk_buff* opt skb = alloc_skb(GFP_ATOMIC);
    if (!skb) {
      return;
    }
    skb->protocol = PROTO_UDP;
    skb->cb.udp.ulen = 64;
    skb->len = 64;
    spin_lock(&dev->stats_lock);
    dev->rx_packets = dev->rx_packets + 1;
    spin_unlock(&dev->stats_lock);
    skb_queue_tail(&dev->rxq, skb);
  }
}

// PLANTED BUG #1 (found by BlockStop): the error-recovery path allocates
// with GFP_KERNEL while holding the tx spinlock with interrupts disabled.
// kmalloc(GFP_WAIT) may sleep -> blocking call in atomic context.
int netdev_reset(struct net_device* dev) {
  int flags = spin_lock_irqsave(&dev->tx_lock);
  char* count(512) opt scratch = (char*)kmalloc(512, GFP_KERNEL);
  if (scratch) {
    memset(scratch, 0, 512);
    kfree((void*)scratch);
  }
  spin_unlock_irqrestore(&dev->tx_lock, flags);
  return 0;
}

void netdev_init(void) {
  e1000_ops.ndo_start_xmit = e1000_start_xmit;
  e1000_ops.ndo_open = e1000_open;
  e1000_ops.ndo_stop = e1000_stop;
  struct net_device* dev =
      (struct net_device*)kmalloc(sizeof(struct net_device), GFP_KERNEL);
  if (!dev) {
    panic("netdev_init: out of memory");
  }
  dev->ops = &e1000_ops;
  netdev0 = dev;
  ndo_ctl_fn* opt open_fn = e1000_ops.ndo_open;
  if (open_fn) {
    open_fn(dev);
  }
}

// Drains the device rx queue into the UDP receive path (light_use traffic).
int netdev_rx_drain(struct sock* sk) {
  struct net_device* opt dev = netdev0;
  if (!dev) {
    return 0;
  }
  int n = 0;
  struct sk_buff* opt skb = skb_dequeue(&dev->rxq);
  while (skb) {
    skb->sk = sk;
    skb_queue_tail(&sk->rxq, skb);
    n = n + 1;
    skb = skb_dequeue(&dev->rxq);
  }
  return n;
}
)MC";
}

}  // namespace ivy
