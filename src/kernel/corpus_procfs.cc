// fs/procfs.mc and block/bio.mc: the paper's kernel conversion explicitly
// covered "several file systems including ext2 and procfs" — procfs is the
// nullterm-string-heavy read path (generator functions formatting kernel
// state), and the bio layer is the sorted-request block substrate under the
// ram filesystem.
#include "src/kernel/corpus.h"

namespace ivy {

const char* CorpusProcfs() {
  return R"MC(
// ===== fs/procfs.mc =======================================================
enum proc_consts { PROC_MAX = 16, PROC_BUF = 256 };

typedef int proc_show_fn(char* count(n) buf, int n);

struct proc_entry {
  proc_show_fn* opt show;
  char name[32];
};

struct proc_entry proc_table[16];
int proc_count;
int proc_reads;

// Formats v into buf (decimal, null-terminated). Returns chars written.
int format_int(char* count(cap) buf, int cap, int v) {
  int neg = 0;
  if (v < 0) {
    neg = 1;
    v = -v;
  }
  char tmp[24];
  int n = 0;
  if (v == 0) {
    tmp[n] = '0';
    n = 1;
  }
  while (v > 0 && n < 20) {
    tmp[n] = '0' + v % 10;
    v = v / 10;
    n = n + 1;
  }
  int w = 0;
  if (neg && w < cap - 1) {
    buf[w] = '-';
    w = w + 1;
  }
  while (n > 0 && w < cap - 1) {
    n = n - 1;
    buf[w] = tmp[n];
    w = w + 1;
  }
  buf[w] = 0;
  return w;
}

// Appends src to buf at offset off; returns the new offset.
int buf_append(char* count(cap) buf, int cap, int off, char* nullterm src) {
  while (*src && off < cap - 1) {
    buf[off] = *src;
    src = src + 1;
    off = off + 1;
  }
  buf[off] = 0;
  return off;
}

int proc_stat_show(char* count(n) buf, int n) {
  int off = buf_append(buf, n, 0, "forks ");
  char num[24];
  format_int(num, 24, total_forks);
  off = buf_append(buf, n, off, num);
  off = buf_append(buf, n, off, "\nsignals ");
  format_int(num, 24, signals_delivered);
  off = buf_append(buf, n, off, num);
  off = buf_append(buf, n, off, "\n");
  return off;
}

int proc_meminfo_show(char* count(n) buf, int n) {
  int off = buf_append(buf, n, 0, "pages ");
  char num[24];
  format_int(num, 24, pages_allocated);
  off = buf_append(buf, n, off, num);
  off = buf_append(buf, n, off, "\nskbs ");
  format_int(num, 24, skbs_alloced - skbs_freed);
  off = buf_append(buf, n, off, num);
  off = buf_append(buf, n, off, "\n");
  return off;
}

int proc_uptime_show(char* count(n) buf, int n) {
  char num[24];
  format_int(num, 24, jiffies);
  int off = buf_append(buf, n, 0, num);
  return buf_append(buf, n, off, "\n");
}

int proc_register(char* nullterm name, proc_show_fn* show) errcode(-28) {
  if (proc_count >= PROC_MAX) {
    return -28;
  }
  struct proc_entry* e = &proc_table[proc_count];
  strlcpy_s(e->name, 32, name);
  e->show = show;
  proc_count = proc_count + 1;
  return 0;
}

// The /proc read path: resolve the entry by name (nullterm compares), run
// its generator into the caller's buffer through a function pointer.
int proc_read(char* nullterm name, char* count(n) buf, int n) errcode(-2) {
  for (int i = 0; i < proc_count; i++) {
    struct proc_entry* e = &proc_table[i];
    if (strcmp_s(e->name, name) == 0) {
      proc_show_fn* opt show = e->show;
      if (show) {
        proc_reads = proc_reads + 1;
        return show(buf, n);
      }
      return -ENOENT;
    }
  }
  return -ENOENT;
}

void procfs_init(void) {
  proc_register("stat", proc_stat_show);
  proc_register("meminfo", proc_meminfo_show);
  proc_register("uptime", proc_uptime_show);
}
)MC";
}

const char* CorpusBio() {
  return R"MC(
// ===== block/bio.mc =======================================================
// A minimal block layer under the ram filesystem: requests queue sorted by
// sector (the elevator), a flush drains them to "disk" pages under the queue
// lock, completions signal waiters.
enum bio_consts { SECTOR_SIZE = 256, DISK_SECTORS = 256 };

struct bio {
  int sector;
  int len;
  int write;
  int done;
  struct bio* opt next;
  char data[256];
};

struct request_queue {
  struct bio* opt head;
  int lock;
  int depth;
  int merged;
};

struct request_queue blk_queue;
struct page* opt disk[256];
int bios_submitted;
int bios_completed;

struct bio* opt bio_alloc(int flags) blocking_if(flags) {
  return (struct bio*)kmalloc(sizeof(struct bio), flags);
}

// Sorted (elevator) insert by sector.
void blk_submit(struct bio* b) {
  int flags = spin_lock_irqsave(&blk_queue.lock);
  struct bio* opt cur = blk_queue.head;
  if (!cur) {
    b->next = null;
    blk_queue.head = b;
  } else {
    struct bio* first = blk_queue.head;
    if (b->sector < first->sector) {
      b->next = first;
      blk_queue.head = b;
    } else {
      struct bio* p = first;
      int placed = 0;
      while (!placed) {
        struct bio* opt nxt = p->next;
        if (!nxt) {
          b->next = null;
          p->next = b;
          placed = 1;
        } else if (b->sector < nxt->sector) {
          b->next = nxt;
          p->next = b;
          placed = 1;
        } else {
          p = nxt;
        }
      }
    }
  }
  blk_queue.depth = blk_queue.depth + 1;
  bios_submitted = bios_submitted + 1;
  spin_unlock_irqrestore(&blk_queue.lock, flags);
}

// Drains the queue to the disk pages. Runs in process context; each bio is
// detached (links nulled) before its free so CCount verifies it.
int blk_flush(void) {
  int completed = 0;
  int flags = spin_lock_irqsave(&blk_queue.lock);
  struct bio* opt b = blk_queue.head;
  blk_queue.head = null;
  blk_queue.depth = 0;
  spin_unlock_irqrestore(&blk_queue.lock, flags);
  while (b) {
    struct bio* opt nxt = b->next;
    b->next = null;
    if (b->sector >= 0 && b->sector < DISK_SECTORS) {
      if (!disk[b->sector]) {
        disk[b->sector] = alloc_page(GFP_KERNEL);
      }
      struct page* opt pg = disk[b->sector];
      if (pg) {
        int len = b->len;
        if (len > SECTOR_SIZE) {
          len = SECTOR_SIZE;
        }
        if (b->write) {
          trusted {
            memcpy(pg->data, b->data, len);
          }
        } else {
          trusted {
            memcpy(b->data, pg->data, len);
          }
        }
      }
    }
    b->done = 1;
    kfree(b);
    completed = completed + 1;
    bios_completed = bios_completed + 1;
    b = nxt;
  }
  return completed;
}

// Synchronous sector write used by fsync-style paths.
int blk_write_sync(int sector, char* count(n) src, int n) errcode(-5) {
  struct bio* opt b = bio_alloc(GFP_KERNEL);
  if (!b) {
    return -5;
  }
  b->sector = sector;
  b->len = n;
  b->write = 1;
  int len = n;
  if (len > SECTOR_SIZE) {
    len = SECTOR_SIZE;
  }
  trusted {
    memcpy(b->data, src, len);
  }
  blk_submit(b);
  blk_flush();
  return len;
}

int blk_read_sync(int sector, char* count(n) dst, int n) errcode(-5) {
  if (sector < 0 || sector >= DISK_SECTORS) {
    return -5;
  }
  struct page* opt pg = disk[sector];
  if (!pg) {
    memset(dst, 0, n);
    return n;
  }
  int len = n;
  if (len > SECTOR_SIZE) {
    len = SECTOR_SIZE;
  }
  trusted {
    memcpy(dst, pg->data, len);
  }
  return len;
}
)MC";
}

}  // namespace ivy
