// The Mini-C prelude: declarations of every VM builtin with its Deputy
// bounds annotations and BlockStop blocking attributes. Prepended to every
// compilation, exactly as the kernel's own headers carry the paper's
// annotations for copy_to_user, kmalloc(GFP_WAIT), etc. (§2.3).
#ifndef SRC_KERNEL_PRELUDE_H_
#define SRC_KERNEL_PRELUDE_H_

namespace ivy {

const char* PreludeSource();

}  // namespace ivy

#endif  // SRC_KERNEL_PRELUDE_H_
