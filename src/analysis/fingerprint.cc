#include "src/analysis/fingerprint.h"

#include "src/mc/types.h"

namespace ivy {
namespace {

// FNV-1a, 64-bit. Streams tagged bytes so "ab"+"c" and "a"+"bc" differ.
class Fp {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      Byte(static_cast<uint8_t>(v >> (i * 8)));
    }
  }
  void Mix(int64_t v) { Mix(static_cast<uint64_t>(v)); }
  void Mix(int v) { Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void Mix(std::string_view s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) {
      Byte(static_cast<uint8_t>(c));
    }
  }
  void Tag(uint8_t t) { Byte(t); }
  uint64_t hash() const { return h_; }

 private:
  void Byte(uint8_t b) {
    h_ ^= b;
    h_ *= kFnvPrime;
  }
  uint64_t h_ = kFnvOffset;
};

void MixExpr(Fp* fp, const Expr* e);

// Structural type hash — no string rendering (this runs for every local
// declaration on every re-analysis). Records are mixed by name/id, not by
// recursing into fields: field changes are the preamble fingerprint's job,
// and stopping there keeps recursive record types finite.
void MixType(Fp* fp, const Type* t) {
  if (t == nullptr) {
    fp->Tag(0);
    return;
  }
  fp->Tag(1);
  fp->Mix(static_cast<int>(t->kind));
  switch (t->kind) {
    case TypeKind::kPointer:
      fp->Mix(static_cast<int>(t->annot.bounds));
      fp->Tag(static_cast<uint8_t>((t->annot.opt ? 1 : 0) | (t->annot.trusted ? 2 : 0)));
      MixExpr(fp, t->annot.count);
      MixExpr(fp, t->annot.lo);
      MixExpr(fp, t->annot.hi);
      MixType(fp, t->pointee);
      return;
    case TypeKind::kArray:
      fp->Mix(t->array_len);
      MixType(fp, t->elem);
      return;
    case TypeKind::kRecord:
      if (t->record != nullptr) {
        fp->Mix(t->record->name);
        fp->Mix(t->record->type_id);
        fp->Tag(t->record->is_union ? 1 : 0);
      }
      return;
    case TypeKind::kFunc:
      MixType(fp, t->ret);
      fp->Mix(static_cast<uint64_t>(t->params.size()));
      for (const Type* p : t->params) {
        MixType(fp, p);
      }
      fp->Tag(t->varargs ? 1 : 0);
      return;
    default:
      return;
  }
}

// Recursive expression mix — used only off the hot path (preamble records /
// globals and the annotation expressions reachable from MixType). Function
// bodies go through the linear slab walk below instead.
void MixExpr(Fp* fp, const Expr* e) {
  if (e == nullptr) {
    fp->Tag(0);
    return;
  }
  fp->Tag(1);
  fp->Mix(static_cast<int>(e->kind));
  fp->Mix(e->int_val);
  fp->Mix(e->str_val);
  fp->Mix(static_cast<int>(e->bin_op));
  fp->Mix(static_cast<int>(e->assign_op));
  fp->Mix(static_cast<int>(e->un_op));
  fp->Tag(static_cast<uint8_t>((e->is_arrow ? 1 : 0) | (e->is_inc ? 2 : 0) |
                               (e->is_prefix ? 4 : 0)));
  if (e->kind == ExprKind::kCast || e->kind == ExprKind::kSizeof) {
    MixType(fp, e->cast_type);
  }
  MixExpr(fp, e->a);
  MixExpr(fp, e->b);
  MixExpr(fp, e->c);
  fp->Mix(static_cast<uint64_t>(e->args.size()));
  for (const Expr* arg : e->args) {
    MixExpr(fp, arg);
  }
}

void MixSignature(Fp* fp, const FuncDecl* fn) {
  fp->Mix(fn->name);
  MixType(fp, fn->type);
  fp->Mix(static_cast<uint64_t>(fn->params.size()));
  for (const Symbol* p : fn->params) {
    fp->Mix(p->name);
    MixType(fp, p->type);
  }
  fp->Tag(static_cast<uint8_t>((fn->attrs.blocking ? 1 : 0) | (fn->attrs.noblock ? 2 : 0) |
                               (fn->attrs.interrupt_handler ? 4 : 0) |
                               (fn->attrs.trusted ? 8 : 0)));
  fp->Mix(fn->attrs.blocking_if_param);
  fp->Mix(static_cast<uint64_t>(fn->attrs.errcodes.size()));
  for (int64_t code : fn->attrs.errcodes) {
    fp->Mix(static_cast<uint64_t>(code));
  }
}

}  // namespace

FunctionFingerprint FingerprintFunctionFull(const Program& prog, const FuncDecl* fn) {
  FunctionFingerprint out;
  Fp fp;
  MixSignature(&fp, fn);
  out.sig = fp.hash();  // the signature is a prefix of the full stream

  // Linear slab walk. Tree shape is captured by mixing child ids relative to
  // the span start (kNoNode for null), so the hash is independent of where
  // the function's nodes sit in the module-wide slabs; string content enters
  // through the interner's cached content hashes. No pointer is chased and
  // no node outside [begin, end) is touched.
  const uint32_t eb = fn->expr_begin;
  const uint32_t sb = fn->stmt_begin;
  const uint32_t db = fn->decl_begin;
  auto rel_e = [eb](const Expr* e) -> uint64_t {
    return e == nullptr ? kNoNode : e->id - eb;
  };
  auto rel_s = [sb](const Stmt* s) -> uint64_t {
    return s == nullptr ? kNoNode : s->id - sb;
  };

  fp.Mix(static_cast<uint64_t>(fn->expr_end - eb));
  for (uint32_t i = eb; i < fn->expr_end; ++i) {
    const Expr* e = prog.ExprAt(ExprId{i});
    fp.Mix(static_cast<int>(e->kind));
    fp.Mix(e->int_val);
    fp.Mix(e->str_id == kNoStr ? uint64_t{0} : prog.StrHash(e->str_id));
    fp.Mix(static_cast<int>(e->bin_op));
    fp.Mix(static_cast<int>(e->assign_op));
    fp.Mix(static_cast<int>(e->un_op));
    fp.Tag(static_cast<uint8_t>((e->is_arrow ? 1 : 0) | (e->is_inc ? 2 : 0) |
                                (e->is_prefix ? 4 : 0)));
    if (e->kind == ExprKind::kCast || e->kind == ExprKind::kSizeof) {
      MixType(&fp, e->cast_type);
    }
    fp.Mix(rel_e(e->a));
    fp.Mix(rel_e(e->b));
    fp.Mix(rel_e(e->c));
    fp.Mix(static_cast<uint64_t>(e->args.size()));
    for (const Expr* arg : e->args) {
      fp.Mix(rel_e(arg));
    }
    if (e->kind == ExprKind::kIdent && !e->no_refs) {
      out.refs.insert(std::string(e->str_val));
    }
  }

  fp.Mix(static_cast<uint64_t>(fn->stmt_end - sb));
  for (uint32_t i = sb; i < fn->stmt_end; ++i) {
    const Stmt* s = prog.StmtAt(StmtId{i});
    fp.Mix(static_cast<int>(s->kind));
    fp.Mix(rel_e(s->expr));
    fp.Mix(s->decl == nullptr ? kNoNode : uint64_t{s->decl->id - db});
    fp.Mix(rel_s(s->init));
    fp.Mix(rel_e(s->cond));
    fp.Mix(rel_e(s->step));
    fp.Mix(rel_s(s->then_stmt));
    fp.Mix(rel_s(s->else_stmt));
    fp.Mix(static_cast<uint64_t>(s->body.size()));
    for (const Stmt* child : s->body) {
      fp.Mix(rel_s(child));
    }
  }

  fp.Mix(static_cast<uint64_t>(fn->decl_end - db));
  for (uint32_t i = db; i < fn->decl_end; ++i) {
    const VarDecl* d = prog.DeclAt(DeclId{i});
    fp.Mix(d->name_id == kNoStr ? uint64_t{0} : prog.StrHash(d->name_id));
    MixType(&fp, d->type);
    fp.Mix(rel_e(d->init));
  }

  fp.Mix(rel_s(fn->body));  // which stmt is the body root
  out.full = fp.hash();
  return out;
}

uint64_t FingerprintFunction(const Program& prog, const FuncDecl* fn) {
  return FingerprintFunctionFull(prog, fn).full;
}

uint64_t FingerprintSignature(const FuncDecl* fn) {
  Fp fp;
  MixSignature(&fp, fn);
  return fp.hash();
}

uint64_t FingerprintPreamble(const Program& prog) {
  Fp fp;
  fp.Mix(static_cast<uint64_t>(prog.records.size()));
  for (const RecordDecl* rec : prog.records) {
    fp.Mix(rec->name);
    fp.Tag(rec->is_union ? 1 : 0);
    fp.Mix(static_cast<uint64_t>(rec->fields.size()));
    for (const RecordField& f : rec->fields) {
      fp.Mix(f.name);
      MixType(&fp, f.type);
      MixExpr(&fp, f.when);
    }
  }
  fp.Mix(static_cast<uint64_t>(prog.globals.size()));
  for (const VarDecl* g : prog.globals) {
    fp.Mix(g->name);
    MixType(&fp, g->type);
    MixExpr(&fp, g->init);
  }
  return fp.hash();
}

std::set<std::string> ReferencedNames(const Program& prog, const FuncDecl* fn) {
  return FingerprintFunctionFull(prog, fn).refs;
}

}  // namespace ivy
