#include "src/analysis/fingerprint.h"

#include "src/mc/types.h"

namespace ivy {
namespace {

// FNV-1a, 64-bit. Streams tagged bytes so "ab"+"c" and "a"+"bc" differ.
class Fp {
 public:
  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      Byte(static_cast<uint8_t>(v >> (i * 8)));
    }
  }
  void Mix(int64_t v) { Mix(static_cast<uint64_t>(v)); }
  void Mix(int v) { Mix(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void Mix(const std::string& s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) {
      Byte(static_cast<uint8_t>(c));
    }
  }
  void Tag(uint8_t t) { Byte(t); }
  uint64_t hash() const { return h_; }

 private:
  void Byte(uint8_t b) {
    h_ ^= b;
    h_ *= kFnvPrime;
  }
  uint64_t h_ = kFnvOffset;
};

void MixExpr(Fp* fp, const Expr* e, std::set<std::string>* refs);

// Structural type hash — no string rendering (this runs for every local
// declaration on every re-analysis). Records are mixed by name/id, not by
// recursing into fields: field changes are the preamble fingerprint's job,
// and stopping there keeps recursive record types finite.
void MixType(Fp* fp, const Type* t) {
  if (t == nullptr) {
    fp->Tag(0);
    return;
  }
  fp->Tag(1);
  fp->Mix(static_cast<int>(t->kind));
  switch (t->kind) {
    case TypeKind::kPointer:
      fp->Mix(static_cast<int>(t->annot.bounds));
      fp->Tag(static_cast<uint8_t>((t->annot.opt ? 1 : 0) | (t->annot.trusted ? 2 : 0)));
      MixExpr(fp, t->annot.count, nullptr);
      MixExpr(fp, t->annot.lo, nullptr);
      MixExpr(fp, t->annot.hi, nullptr);
      MixType(fp, t->pointee);
      return;
    case TypeKind::kArray:
      fp->Mix(t->array_len);
      MixType(fp, t->elem);
      return;
    case TypeKind::kRecord:
      if (t->record != nullptr) {
        fp->Mix(t->record->name);
        fp->Mix(t->record->type_id);
        fp->Tag(t->record->is_union ? 1 : 0);
      }
      return;
    case TypeKind::kFunc:
      MixType(fp, t->ret);
      fp->Mix(static_cast<uint64_t>(t->params.size()));
      for (const Type* p : t->params) {
        MixType(fp, p);
      }
      fp->Tag(t->varargs ? 1 : 0);
      return;
    default:
      return;
  }
}

void MixExpr(Fp* fp, const Expr* e, std::set<std::string>* refs) {
  if (e == nullptr) {
    fp->Tag(0);
    return;
  }
  fp->Tag(1);
  fp->Mix(static_cast<int>(e->kind));
  fp->Mix(e->int_val);
  fp->Mix(e->str_val);
  if (refs != nullptr && e->kind == ExprKind::kIdent) {
    refs->insert(e->str_val);
  }
  fp->Mix(static_cast<int>(e->bin_op));
  fp->Mix(static_cast<int>(e->assign_op));
  fp->Mix(static_cast<int>(e->un_op));
  fp->Tag(static_cast<uint8_t>((e->is_arrow ? 1 : 0) | (e->is_inc ? 2 : 0) |
                               (e->is_prefix ? 4 : 0)));
  if (e->kind == ExprKind::kCast || e->kind == ExprKind::kSizeof) {
    MixType(fp, e->cast_type);
  }
  MixExpr(fp, e->a, refs);
  MixExpr(fp, e->b, refs);
  MixExpr(fp, e->c, refs);
  fp->Mix(static_cast<uint64_t>(e->args.size()));
  for (const Expr* arg : e->args) {
    MixExpr(fp, arg, refs);
  }
}

void MixStmt(Fp* fp, const Stmt* s, std::set<std::string>* refs) {
  if (s == nullptr) {
    fp->Tag(0);
    return;
  }
  fp->Tag(2);
  fp->Mix(static_cast<int>(s->kind));
  MixExpr(fp, s->expr, refs);
  if (s->decl != nullptr) {
    fp->Tag(3);
    fp->Mix(s->decl->name);
    MixType(fp, s->decl->type);
    MixExpr(fp, s->decl->init, refs);
  } else {
    fp->Tag(0);
  }
  MixStmt(fp, s->init, refs);
  MixExpr(fp, s->cond, refs);
  MixExpr(fp, s->step, refs);
  MixStmt(fp, s->then_stmt, refs);
  MixStmt(fp, s->else_stmt, refs);
  fp->Mix(static_cast<uint64_t>(s->body.size()));
  for (const Stmt* child : s->body) {
    MixStmt(fp, child, refs);
  }
}

void MixSignature(Fp* fp, const FuncDecl* fn) {
  fp->Mix(fn->name);
  MixType(fp, fn->type);
  fp->Mix(static_cast<uint64_t>(fn->params.size()));
  for (const Symbol* p : fn->params) {
    fp->Mix(p->name);
    MixType(fp, p->type);
  }
  fp->Tag(static_cast<uint8_t>((fn->attrs.blocking ? 1 : 0) | (fn->attrs.noblock ? 2 : 0) |
                               (fn->attrs.interrupt_handler ? 4 : 0) |
                               (fn->attrs.trusted ? 8 : 0)));
  fp->Mix(fn->attrs.blocking_if_param);
  fp->Mix(static_cast<uint64_t>(fn->attrs.errcodes.size()));
  for (int64_t code : fn->attrs.errcodes) {
    fp->Mix(static_cast<uint64_t>(code));
  }
}

}  // namespace

FunctionFingerprint FingerprintFunctionFull(const FuncDecl* fn) {
  FunctionFingerprint out;
  Fp fp;
  MixSignature(&fp, fn);
  out.sig = fp.hash();  // the signature is a prefix of the full stream
  MixStmt(&fp, fn->body, &out.refs);
  out.full = fp.hash();
  return out;
}

uint64_t FingerprintFunction(const FuncDecl* fn) { return FingerprintFunctionFull(fn).full; }

uint64_t FingerprintSignature(const FuncDecl* fn) {
  Fp fp;
  MixSignature(&fp, fn);
  return fp.hash();
}

uint64_t FingerprintPreamble(const Program& prog) {
  Fp fp;
  fp.Mix(static_cast<uint64_t>(prog.records.size()));
  for (const RecordDecl* rec : prog.records) {
    fp.Mix(rec->name);
    fp.Tag(rec->is_union ? 1 : 0);
    fp.Mix(static_cast<uint64_t>(rec->fields.size()));
    for (const RecordField& f : rec->fields) {
      fp.Mix(f.name);
      MixType(&fp, f.type);
      MixExpr(&fp, f.when, nullptr);
    }
  }
  fp.Mix(static_cast<uint64_t>(prog.globals.size()));
  for (const VarDecl* g : prog.globals) {
    fp.Mix(g->name);
    MixType(&fp, g->type);
    MixExpr(&fp, g->init, nullptr);
  }
  return fp.hash();
}

std::set<std::string> ReferencedNames(const FuncDecl* fn) {
  return FingerprintFunctionFull(fn).refs;
}

}  // namespace ivy
