// Whole-program points-to analysis for function pointers (§2.3).
//
// BlockStop's call graph "must account for calls through function pointers;
// we use a whole-program points-to analysis to determine which functions a
// given pointer could refer to." This is an inclusion-based (Andersen-style),
// field-based analysis: every variable and every record field is an abstract
// cell, function constants flow through assignment/parameter/return edges,
// and indirect call sites are resolved on the fly (newly discovered callees
// add their parameter/return bindings until a fixpoint).
//
// The `field_sensitive` switch is the paper's precision story: the simple
// (field-insensitive) variant merges all fields of a record into one cell,
// which is what produces BlockStop's false positives ("mostly due to the
// overly-conservative points-to analysis of function pointers"); the
// field-sensitive variant is the improvement the paper proposes (A2).
#ifndef SRC_ANALYSIS_POINTSTO_H_
#define SRC_ANALYSIS_POINTSTO_H_

#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/mc/ast.h"
#include "src/mc/sema.h"

namespace ivy {

class PointsTo {
 public:
  PointsTo(const Program* prog, const Sema* sema, bool field_sensitive);

  // Builds constraints from every function body and solves to fixpoint.
  void Solve();

  // Candidate callees of an indirect call expression (kCall whose callee is
  // not a direct function name). Empty if the site was never seen.
  const std::vector<const FuncDecl*>& TargetsOf(const Expr* call) const;

  // Candidate handlers of trigger_irq(h, ...) sites, by the handler expr.
  const std::vector<const FuncDecl*>& HandlerTargets(const Expr* handler_expr) const;

  // Functions whose address is ever taken (flow into some cell).
  const std::set<const FuncDecl*>& address_taken() const { return address_taken_; }

  int node_count() const { return static_cast<int>(node_funcs_.size()); }
  int64_t solve_iterations() const { return iterations_; }

 private:
  int NewNode();
  int VarNode(const Symbol* sym);
  int FieldNode(const RecordDecl* rec, int field_index);
  int RetNode(const FuncDecl* fn);
  int NodeOfExpr(const Expr* e);
  void AddEdge(int src, int dst);
  void AddFunc(int node, const FuncDecl* fn);
  // Flows the value of `rhs` into `dst` (a node id).
  void FlowInto(const Expr* rhs, int dst);
  void GenStmt(const Stmt* s);
  void GenExpr(const Expr* e);
  void GenCall(const Expr* e);
  const FuncDecl* AsFunctionName(const Expr* e) const;

  const Program* prog_;
  const Sema* sema_;
  bool field_sensitive_;
  const FuncDecl* cur_fn_ = nullptr;

  std::unordered_map<const Symbol*, int> var_nodes_;
  std::map<std::pair<const RecordDecl*, int>, int> field_nodes_;
  std::unordered_map<const FuncDecl*, int> ret_nodes_;
  std::vector<std::set<int>> node_funcs_;       // node -> set of func ids
  std::vector<std::vector<int>> edges_;         // node -> successor nodes
  std::vector<const FuncDecl*> funcs_by_id_;

  struct IndirectSite {
    const Expr* call = nullptr;         // the kCall expr (or handler expr)
    const FuncDecl* caller = nullptr;
    int callee_node = -1;
    std::vector<const Expr*> args;      // for param binding
    int ret_node = -1;                  // results flow here
    std::set<int> bound;                // func ids already bound
  };
  std::vector<IndirectSite> sites_;
  std::map<const Expr*, int> site_of_expr_;
  std::map<const Expr*, std::vector<const FuncDecl*>> resolved_;
  std::set<const FuncDecl*> address_taken_;
  int64_t iterations_ = 0;
  std::vector<const FuncDecl*> empty_;
};

}  // namespace ivy

#endif  // SRC_ANALYSIS_POINTSTO_H_
