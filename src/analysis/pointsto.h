// Whole-program points-to analysis for function pointers (§2.3).
//
// BlockStop's call graph "must account for calls through function pointers;
// we use a whole-program points-to analysis to determine which functions a
// given pointer could refer to." This is an inclusion-based (Andersen-style),
// field-based analysis: every variable and every record field is an abstract
// cell, function constants flow through assignment/parameter/return edges,
// and indirect call sites are resolved on the fly (newly discovered callees
// add their parameter/return bindings until a fixpoint).
//
// The `field_sensitive` switch is the paper's precision story: the simple
// (field-insensitive) variant merges all fields of a record into one cell,
// which is what produces BlockStop's false positives ("mostly due to the
// overly-conservative points-to analysis of function pointers"); the
// field-sensitive variant is the improvement the paper proposes (A2).
//
// Incremental re-solve (AnalysisSession): with EnableIncremental, every cell
// gets a *name-stable* key (survives recompilation of the same program
// text), every constraint carries the name of the function that generated
// it, and facts record the set of origins they flowed through. A later solve
// over an edited program seeds each cell whose recorded origins avoid the
// dirty set from the previous solution and runs the ordinary fixpoint from
// there. Seeds are provably below the new least fixpoint (clean origins
// regenerate identical constraints), so the warm solve converges to exactly
// the cold solution — byte-identical resolved target lists — while
// solve_propagations() counts only the facts actually re-derived, i.e. the
// dirty region.
#ifndef SRC_ANALYSIS_POINTSTO_H_
#define SRC_ANALYSIS_POINTSTO_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/mc/ast.h"
#include "src/mc/sema.h"

namespace ivy {

// Name-keyed image of a solved instance: cell key -> the function names in
// the cell plus the constraint origins its facts flowed through. Stable
// across recompilations of unchanged text, so a session can carry it from
// one Compilation to the next.
struct PointsToCellSnap {
  std::vector<std::string> funcs;
  std::vector<std::string> origins;
};
using PointsToSnapshot = std::map<std::string, PointsToCellSnap>;

// Cross-module link seeds: function names known (from another module's
// summaries) to flow into a parameter cell ((function, param index)) or a
// return cell ((function, -1)). Names that resolve to nothing in this
// compilation (not even an extern declaration) are dropped — a repository
// consumer that wants those facts must declare the functions it imports.
using PointsToLinkSeeds = std::map<std::pair<std::string, int>, std::set<std::string>>;

class PointsTo {
 public:
  PointsTo(const Program* prog, const Sema* sema, bool field_sensitive);

  // Turns on cell keys + origin tracking (so Snapshot() works), and — when
  // `prev` is non-null — seeds the solve from `prev`, resetting every cell
  // whose origins intersect `dirty_origins` (function names; the session
  // derives them from fingerprint diffs). Must be called before Solve().
  // `prev` and `dirty_origins` must outlive Solve().
  void EnableIncremental(const PointsToSnapshot* prev,
                         const std::set<std::string>* dirty_origins);

  // Cross-module import: seeds the named parameter/return cells before the
  // fixpoint runs (AnalysisSession's link stage). Must be called before
  // Solve(); `seeds` must outlive it. Seeded facts carry the reserved
  // "<link>" origin, so incremental snapshots keep them clean across warm
  // re-solves with an unchanged import set.
  void SetLinkSeeds(const PointsToLinkSeeds* seeds);

  // Builds constraints from every function body and solves to fixpoint.
  void Solve();

  // Valid after Solve() with EnableIncremental: the name-keyed solution to
  // carry into the next incremental solve.
  PointsToSnapshot Snapshot() const;

  // Candidate callees of an indirect call expression (kCall whose callee is
  // not a direct function name). Empty if the site was never seen.
  const std::vector<const FuncDecl*>& TargetsOf(const Expr* call) const;

  // Candidate handlers of trigger_irq(h, ...) sites, by the handler expr.
  const std::vector<const FuncDecl*>& HandlerTargets(const Expr* handler_expr) const;

  // Functions whose address is ever taken (flow into some cell).
  const std::set<const FuncDecl*>& address_taken() const { return address_taken_; }

  // Post-solve cell reads for the link-stage summary export: the sorted
  // function names in a parameter cell ((fn, index)) or return cell
  // ((fn, -1)). Empty if the cell was never materialized.
  std::vector<std::string> FuncNamesInCell(const FuncDecl* fn, int slot) const;

  int node_count() const { return static_cast<int>(node_funcs_.size()); }
  int64_t solve_iterations() const { return iterations_; }
  // Successful fact insertions during the solve fixpoint — the facts the
  // solver actually derived. Seeds are excluded, and so are indirect-site
  // re-bindings (linear bookkeeping both solves pay identically), so a warm
  // solve over a small edit re-derives only the dirty region and this is
  // the solver counter AnalysisSession's incremental tests assert on.
  int64_t solve_propagations() const { return propagations_; }
  // Facts adopted from the previous solution without re-derivation.
  int64_t seeded_facts() const { return seeded_facts_; }

 private:
  int NewNode();
  int VarNode(const Symbol* sym, const FuncDecl* owner);
  int FieldNode(const RecordDecl* rec, int field_index);
  int RetNode(const FuncDecl* fn);
  int NodeOfExpr(const Expr* e);
  void AddEdge(int src, int dst);
  void AddFunc(int node, const FuncDecl* fn);
  // Flows the value of `rhs` into `dst` (a node id).
  void FlowInto(const Expr* rhs, int dst);
  void GenStmt(const Stmt* s);
  void GenExpr(const Expr* e);
  void GenCall(const Expr* e);
  const FuncDecl* AsFunctionName(const Expr* e) const;

  // Incremental bookkeeping (no-ops unless EnableIncremental was called).
  int OriginId(const std::string& name);
  void SetKey(int node, std::string key);
  std::string SiteKey(char tag);
  void SeedFromPrev();

  const Program* prog_;
  const Sema* sema_;
  bool field_sensitive_;
  const FuncDecl* cur_fn_ = nullptr;

  std::unordered_map<const Symbol*, int> var_nodes_;
  std::map<std::pair<const RecordDecl*, int>, int> field_nodes_;
  std::unordered_map<const FuncDecl*, int> ret_nodes_;
  std::vector<std::set<int>> node_funcs_;       // node -> set of func ids
  std::vector<std::vector<int>> edges_;         // node -> successor nodes
  std::vector<const FuncDecl*> funcs_by_id_;

  struct IndirectSite {
    const Expr* call = nullptr;         // the kCall expr (or handler expr)
    const FuncDecl* caller = nullptr;
    int callee_node = -1;
    std::vector<const Expr*> args;      // for param binding
    int ret_node = -1;                  // results flow here
    std::set<int> bound;                // func ids already bound
  };
  std::vector<IndirectSite> sites_;
  std::map<const Expr*, int> site_of_expr_;
  std::map<const Expr*, std::vector<const FuncDecl*>> resolved_;
  std::set<const FuncDecl*> address_taken_;
  int64_t iterations_ = 0;
  int64_t propagations_ = 0;
  int64_t seeded_facts_ = 0;

  // Incremental state. `gen_origins_` is the origin set stamped on every
  // constraint currently being generated: {function} during body walks,
  // {<globals>} for global initializers, {site caller} ∪ origins(callee
  // cell) while expanding an indirect-call binding.
  bool track_ = false;
  const PointsToSnapshot* prev_ = nullptr;
  const std::set<std::string>* dirty_ = nullptr;
  const PointsToLinkSeeds* link_seeds_ = nullptr;
  std::vector<std::string> node_keys_;                 // node -> stable key
  std::unordered_map<std::string, int> key_to_node_;
  std::vector<std::set<int>> node_origins_;            // node -> origin ids
  std::vector<std::vector<std::vector<int>>> edge_origins_;  // per edge
  std::vector<std::string> origin_names_;
  std::unordered_map<std::string, int> origin_ids_;
  std::map<std::pair<std::string, std::string>, int> local_occurrence_;
  std::map<std::string, int> site_ordinal_;
  std::vector<int> gen_origins_;
  std::vector<const FuncDecl*> empty_;
};

}  // namespace ivy

#endif  // SRC_ANALYSIS_POINTSTO_H_
