// Whole-program call graph (§2.3): direct calls, builtin calls, and
// indirect calls resolved by the points-to analysis. "Once we know which
// functions can be called where, we can begin to analyze important
// control-flow properties" — BlockStop, StackCheck and ErrCheck all consume
// this structure.
#ifndef SRC_ANALYSIS_CALLGRAPH_H_
#define SRC_ANALYSIS_CALLGRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/pointsto.h"
#include "src/mc/ast.h"
#include "src/mc/sema.h"

namespace ivy {

struct CallSite {
  const Expr* expr = nullptr;
  SourceLoc loc;
  const FuncDecl* caller = nullptr;
  const FuncDecl* direct = nullptr;   // defined Mini-C callee
  const FuncDecl* builtin = nullptr;  // builtin callee (declaration)
  std::vector<const FuncDecl*> indirect;  // candidates for fn-ptr calls
  bool is_irq_dispatch = false;       // trigger_irq(handler, ...)

  // All Mini-C functions this site may enter.
  std::vector<const FuncDecl*> McCallees() const {
    std::vector<const FuncDecl*> out = indirect;
    if (direct != nullptr) {
      out.push_back(direct);
    }
    return out;
  }
};

class CallGraph {
 public:
  static CallGraph Build(const Program& prog, const Sema& sema, const PointsTo& pt);

  const std::vector<CallSite>& SitesOf(const FuncDecl* fn) const;
  const std::vector<const FuncDecl*>& DefinedFuncs() const { return defined_; }
  // Unique Mini-C callees of `fn` (through any site).
  std::set<const FuncDecl*> Callees(const FuncDecl* fn) const;
  // Reverse adjacency: every defined function with a site (direct or
  // indirect, irq dispatch included) that may enter `fn`. Deterministic:
  // callers appear in DefinedFuncs() order, each once. Worklist solvers
  // (e.g. BlockStop's sharded may-block propagation) use this to rescan only
  // the callers of functions whose facts changed last round.
  const std::vector<const FuncDecl*>& CallersOf(const FuncDecl* fn) const;

  // Region hooks for incremental re-analysis (AnalysisSession).
  //
  // AncestorsOf: every defined function that can reach a root through call
  // edges (the roots themselves included) — i.e. the region whose bottom-up
  // facts (BlockStop's may-block, ErrCheck's err-func influence) an edit to
  // the roots can perturb. Deterministic: a subset of DefinedFuncs().
  std::set<const FuncDecl*> AncestorsOf(const std::set<const FuncDecl*>& roots) const;
  // A per-function hash of the resolved callee-name multiset (direct +
  // indirect + irq-dispatch targets, in site order). Comparing these across
  // recompilations finds functions whose bodies are unchanged but whose
  // resolution changed — e.g. an indirect site gaining a target because an
  // edited function stored a new hook.
  std::map<std::string, uint64_t> CalleeNameHashes() const;

  int64_t edge_count() const { return edges_; }
  int64_t indirect_site_count() const { return indirect_sites_; }
  // Total candidate count across indirect sites (precision metric, A2).
  int64_t indirect_target_total() const { return indirect_targets_; }

  // Functions entered with interrupts disabled (trigger_irq targets and
  // `interrupt_handler`-annotated functions).
  const std::set<const FuncDecl*>& irq_entries() const { return irq_entries_; }

 private:
  void Walk(const FuncDecl* caller, const Stmt* s, const Sema& sema, const PointsTo& pt);
  void WalkExpr(const FuncDecl* caller, const Expr* e, const Sema& sema, const PointsTo& pt);

  std::map<const FuncDecl*, std::vector<CallSite>> sites_;
  std::map<const FuncDecl*, std::vector<const FuncDecl*>> callers_;
  std::vector<const FuncDecl*> defined_;
  std::vector<const FuncDecl*> empty_funcs_;
  std::set<const FuncDecl*> irq_entries_;
  int64_t edges_ = 0;
  int64_t indirect_sites_ = 0;
  int64_t indirect_targets_ = 0;
  std::vector<CallSite> empty_;
};

}  // namespace ivy

#endif  // SRC_ANALYSIS_CALLGRAPH_H_
