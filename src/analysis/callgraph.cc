#include "src/analysis/callgraph.h"

#include "src/analysis/fingerprint.h"

namespace ivy {

namespace {

const FuncDecl* NamedCallee(const Sema& sema, const Expr* callee) {
  if (callee == nullptr || callee->kind != ExprKind::kIdent || callee->sym != nullptr) {
    return nullptr;
  }
  auto it = sema.func_map().find(callee->str_val);
  return it == sema.func_map().end() ? nullptr : it->second;
}

}  // namespace

CallGraph CallGraph::Build(const Program& /*prog*/, const Sema& sema, const PointsTo& pt) {
  CallGraph cg;
  for (const auto& [name, fn] : sema.func_map()) {
    if (fn->body == nullptr) {
      continue;
    }
    cg.defined_.push_back(fn);
    if (fn->attrs.interrupt_handler) {
      cg.irq_entries_.insert(fn);
    }
  }
  std::sort(cg.defined_.begin(), cg.defined_.end(),
            [](const FuncDecl* a, const FuncDecl* b) { return a->name < b->name; });
  for (const FuncDecl* fn : cg.defined_) {
    cg.Walk(fn, fn->body, sema, pt);
  }
  // Reverse edges, deduplicated, callers in DefinedFuncs() order (the outer
  // loop order) so worklist consumers stay deterministic.
  std::set<std::pair<const FuncDecl*, const FuncDecl*>> seen;
  for (const FuncDecl* fn : cg.defined_) {
    for (const CallSite& site : cg.SitesOf(fn)) {
      for (const FuncDecl* callee : site.McCallees()) {
        if (seen.insert({callee, fn}).second) {
          cg.callers_[callee].push_back(fn);
        }
      }
    }
  }
  return cg;
}

void CallGraph::WalkExpr(const FuncDecl* caller, const Expr* e, const Sema& sema,
                         const PointsTo& pt) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kCall) {
    CallSite site;
    site.expr = e;
    site.loc = e->loc;
    site.caller = caller;
    const FuncDecl* callee = NamedCallee(sema, e->a);
    if (callee != nullptr) {
      if (callee->is_builtin) {
        site.builtin = callee;
        if (callee->name == "trigger_irq" && !e->args.empty()) {
          site.is_irq_dispatch = true;
          site.indirect = pt.HandlerTargets(e->args[0]);
          if (const FuncDecl* named = NamedCallee(sema, e->args[0])) {
            site.indirect.push_back(named);
          }
          for (const FuncDecl* h : site.indirect) {
            irq_entries_.insert(h);
          }
          indirect_targets_ += static_cast<int64_t>(site.indirect.size());
        }
      } else {
        site.direct = callee;
        ++edges_;
      }
    } else {
      site.indirect = pt.TargetsOf(e);
      ++indirect_sites_;
      indirect_targets_ += static_cast<int64_t>(site.indirect.size());
      edges_ += static_cast<int64_t>(site.indirect.size());
    }
    sites_[caller].push_back(site);
  }
  WalkExpr(caller, e->a, sema, pt);
  WalkExpr(caller, e->b, sema, pt);
  WalkExpr(caller, e->c, sema, pt);
  for (const Expr* arg : e->args) {
    WalkExpr(caller, arg, sema, pt);
  }
}

void CallGraph::Walk(const FuncDecl* caller, const Stmt* s, const Sema& sema,
                     const PointsTo& pt) {
  if (s == nullptr) {
    return;
  }
  WalkExpr(caller, s->expr, sema, pt);
  WalkExpr(caller, s->cond, sema, pt);
  WalkExpr(caller, s->step, sema, pt);
  if (s->decl != nullptr) {
    WalkExpr(caller, s->decl->init, sema, pt);
  }
  Walk(caller, s->init, sema, pt);
  Walk(caller, s->then_stmt, sema, pt);
  Walk(caller, s->else_stmt, sema, pt);
  for (const Stmt* child : s->body) {
    Walk(caller, child, sema, pt);
  }
}

const std::vector<CallSite>& CallGraph::SitesOf(const FuncDecl* fn) const {
  auto it = sites_.find(fn);
  return it == sites_.end() ? empty_ : it->second;
}

const std::vector<const FuncDecl*>& CallGraph::CallersOf(const FuncDecl* fn) const {
  auto it = callers_.find(fn);
  return it == callers_.end() ? empty_funcs_ : it->second;
}

std::set<const FuncDecl*> CallGraph::AncestorsOf(const std::set<const FuncDecl*>& roots) const {
  std::set<const FuncDecl*> out;
  std::vector<const FuncDecl*> work(roots.begin(), roots.end());
  while (!work.empty()) {
    const FuncDecl* fn = work.back();
    work.pop_back();
    if (!out.insert(fn).second) {
      continue;
    }
    for (const FuncDecl* caller : CallersOf(fn)) {
      if (out.count(caller) == 0) {
        work.push_back(caller);
      }
    }
  }
  return out;
}

std::map<std::string, uint64_t> CallGraph::CalleeNameHashes() const {
  std::map<std::string, uint64_t> out;
  for (const FuncDecl* fn : defined_) {
    NameStreamHasher h;
    for (const CallSite& site : SitesOf(fn)) {
      if (site.direct != nullptr) {
        h.Mix(site.direct->name);
      }
      if (site.builtin != nullptr) {
        h.Mix(site.builtin->name);
      }
      for (const FuncDecl* t : site.indirect) {
        h.Mix(t->name);
      }
      h.Mix(site.is_irq_dispatch ? "|irq" : "|");
    }
    out[fn->name] = h.hash();
  }
  return out;
}

std::set<const FuncDecl*> CallGraph::Callees(const FuncDecl* fn) const {
  std::set<const FuncDecl*> out;
  for (const CallSite& site : SitesOf(fn)) {
    if (site.direct != nullptr) {
      out.insert(site.direct);
    }
    for (const FuncDecl* t : site.indirect) {
      out.insert(t);
    }
  }
  return out;
}

}  // namespace ivy
