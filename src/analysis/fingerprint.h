// Structural fingerprints of Mini-C declarations — the dirty-bit layer under
// AnalysisSession's incremental re-analysis. A fingerprint hashes what an
// analysis can observe (names, operators, literals, declared types,
// attributes) and deliberately ignores SourceLocs, so an edit that only
// shifts later functions down the file leaves them clean.
//
// Three granularities:
//   - FingerprintFunction: signature + attributes + body structure. Equal
//     fingerprints => the function generates identical analysis constraints
//     (points-to edges, call sites, lock/err scans) up to name resolution.
//   - FingerprintSignature: the part callers can observe (name, type,
//     attributes). A signature change dirties callers, not just the body.
//   - FingerprintPreamble: globals + records. Covers everything outside
//     function bodies that analyses read (field layout, global initializers);
//     a preamble change makes the whole module dirty (cold re-solve).
//
// The per-function fingerprint is a LINEAR walk over the function's
// contiguous arena slab spans (FuncDecl::{expr,stmt,decl}_{begin,end}) — no
// recursive pointer chase in the hot path. Tree shape is captured by mixing
// each node's child ids RELATIVE to the span start, and string content
// enters through the interner's cached per-id content hashes, so the result
// is independent of where the function sits in the module (absolute ids,
// SourceLocs) and identical across allocation modes. Node ids are
// deterministic given the source bytes, so so is the fingerprint.
//
// ReferencedNames collects every identifier a body mentions (skipping
// Expr::no_refs annotation/const-eval nodes), so the session can dirty the
// functions whose name resolution changed when a function is added, removed,
// or re-declared.
#ifndef SRC_ANALYSIS_FINGERPRINT_H_
#define SRC_ANALYSIS_FINGERPRINT_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>

#include "src/mc/ast.h"

namespace ivy {

// Streams separator-tagged strings into an FNV-1a hash ("ab"+"c" differs
// from "a"+"bc"). Used by CallGraph::CalleeNameHashes; the richer AST
// fingerprints below build on the same constants (see src/mc/arena.h for
// kFnvOffset/kFnvPrime).
class NameStreamHasher {
 public:
  void Mix(std::string_view s) {
    for (char c : s) {
      Byte(static_cast<uint8_t>(c));
    }
    Byte(0xff);
  }
  uint64_t hash() const { return h_; }

 private:
  void Byte(uint8_t b) {
    h_ ^= b;
    h_ *= kFnvPrime;
  }
  uint64_t h_ = kFnvOffset;
};

uint64_t FingerprintFunction(const Program& prog, const FuncDecl* fn);
uint64_t FingerprintSignature(const FuncDecl* fn);
uint64_t FingerprintPreamble(const Program& prog);

// Identifier spellings referenced anywhere in `fn`'s body (call targets,
// variable reads, address-of operands). Used to find callers-by-name of
// added/removed/re-declared functions.
std::set<std::string> ReferencedNames(const Program& prog, const FuncDecl* fn);

// All three in one pass — what AnalysisSession computes per function on
// every re-analysis, so this is the hot path: one linear sweep over the
// function's slab spans.
struct FunctionFingerprint {
  uint64_t full = 0;  // signature + attributes + body
  uint64_t sig = 0;   // what callers can observe
  std::set<std::string> refs;
};
FunctionFingerprint FingerprintFunctionFull(const Program& prog, const FuncDecl* fn);

}  // namespace ivy

#endif  // SRC_ANALYSIS_FINGERPRINT_H_
