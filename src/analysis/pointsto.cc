#include "src/analysis/pointsto.h"

#include <algorithm>

namespace ivy {

namespace {
const char kGlobalsOrigin[] = "<globals>";
// Origin stamped on imported cross-module facts: never a function name, so
// fingerprint-derived dirty sets cannot taint it — link facts survive warm
// re-solves for as long as the session's import set is unchanged (an import
// change cold-solves the module instead).
const char kLinkOrigin[] = "<link>";
}  // namespace

PointsTo::PointsTo(const Program* prog, const Sema* sema, bool field_sensitive)
    : prog_(prog), sema_(sema), field_sensitive_(field_sensitive) {}

void PointsTo::EnableIncremental(const PointsToSnapshot* prev,
                                 const std::set<std::string>* dirty_origins) {
  track_ = true;
  prev_ = prev;
  dirty_ = dirty_origins;
}

void PointsTo::SetLinkSeeds(const PointsToLinkSeeds* seeds) { link_seeds_ = seeds; }

int PointsTo::NewNode() {
  node_funcs_.emplace_back();
  edges_.emplace_back();
  if (track_) {
    node_keys_.emplace_back();
    node_origins_.emplace_back();
    edge_origins_.emplace_back();
  }
  return static_cast<int>(node_funcs_.size()) - 1;
}

int PointsTo::OriginId(const std::string& name) {
  auto [it, inserted] = origin_ids_.emplace(name, -1);
  if (inserted) {
    it->second = static_cast<int>(origin_names_.size());
    origin_names_.push_back(name);
  }
  return it->second;
}

void PointsTo::SetKey(int node, std::string key) {
  if (!track_ || node < 0) {
    return;
  }
  auto [it, inserted] = key_to_node_.emplace(key, node);
  if (!inserted) {
    // Defensive: a colliding key would cross-seed two cells; make it unique
    // (such cells simply never match a previous snapshot).
    key += "~" + std::to_string(node);
    key_to_node_.emplace(key, node);
  }
  node_keys_[static_cast<size_t>(node)] = std::move(key);
}

std::string PointsTo::SiteKey(char tag) {
  std::string caller = cur_fn_ != nullptr ? cur_fn_->name : std::string(kGlobalsOrigin);
  int ordinal = site_ordinal_[caller]++;
  return std::string(1, tag) + ":" + caller + ":" + std::to_string(ordinal);
}

int PointsTo::VarNode(const Symbol* sym, const FuncDecl* owner) {
  auto [it, inserted] = var_nodes_.emplace(sym, -1);
  if (inserted) {
    it->second = NewNode();
    if (track_) {
      const std::string owner_name =
          owner != nullptr ? owner->name : std::string(kGlobalsOrigin);
      if (sym->kind == SymKind::kGlobal) {
        SetKey(it->second, "g:" + sym->name);
      } else if (sym->kind == SymKind::kParam) {
        SetKey(it->second, "p:" + owner_name + ":" + std::to_string(sym->param_index));
      } else if (sym->local_id >= 0) {
        // Dense per-function numbering from lowering: stable for unchanged
        // bodies, immune to solve-order effects.
        SetKey(it->second, "l:" + owner_name + ":" + std::to_string(sym->local_id));
      } else {
        int occ = local_occurrence_[{owner_name, sym->name}]++;
        SetKey(it->second, "l:" + owner_name + ":" + sym->name + "#" + std::to_string(occ));
      }
    }
  }
  return it->second;
}

int PointsTo::FieldNode(const RecordDecl* rec, int field_index) {
  int idx = field_sensitive_ ? field_index : -1;
  auto [it, inserted] = field_nodes_.emplace(std::make_pair(rec, idx), -1);
  if (inserted) {
    it->second = NewNode();
    if (track_) {
      // type_id is dense in sema order — stable while the preamble is
      // unchanged (a preamble change cold-solves anyway). Named records also
      // carry the name for readability.
      SetKey(it->second, "f:" + rec->name + "#" + std::to_string(rec->type_id) + ":" +
                             std::to_string(idx));
    }
  }
  return it->second;
}

int PointsTo::RetNode(const FuncDecl* fn) {
  auto [it, inserted] = ret_nodes_.emplace(fn, -1);
  if (inserted) {
    it->second = NewNode();
    if (track_) {
      SetKey(it->second, "r:" + fn->name);
    }
  }
  return it->second;
}

const FuncDecl* PointsTo::AsFunctionName(const Expr* e) const {
  if (e == nullptr || e->kind != ExprKind::kIdent || e->sym != nullptr) {
    return nullptr;
  }
  auto it = sema_->func_map().find(e->str_val);
  return it == sema_->func_map().end() ? nullptr : it->second;
}

int PointsTo::NodeOfExpr(const Expr* e) {
  if (e == nullptr) {
    return -1;
  }
  switch (e->kind) {
    case ExprKind::kIdent:
      return e->sym != nullptr ? VarNode(e->sym, cur_fn_) : -1;
    case ExprKind::kMember:
      if (e->field != nullptr && e->field_record != nullptr) {
        return FieldNode(e->field_record, e->field->index);
      }
      return -1;
    case ExprKind::kIndex:
      // Arrays collapse to the cell of the array expression itself.
      return NodeOfExpr(e->a);
    case ExprKind::kDeref:
      // `(*fp)(...)` — dereference of a function pointer value.
      return NodeOfExpr(e->a);
    case ExprKind::kCast:
      return NodeOfExpr(e->a);
    default:
      return -1;
  }
}

void PointsTo::AddEdge(int src, int dst) {
  if (src < 0 || dst < 0 || src == dst) {
    return;
  }
  edges_[static_cast<size_t>(src)].push_back(dst);
  if (track_) {
    edge_origins_[static_cast<size_t>(src)].push_back(gen_origins_);
  }
}

void PointsTo::AddFunc(int node, const FuncDecl* fn) {
  if (node < 0 || fn == nullptr || fn->func_id < 0) {
    return;
  }
  if (static_cast<size_t>(fn->func_id) >= funcs_by_id_.size()) {
    funcs_by_id_.resize(static_cast<size_t>(fn->func_id) + 1, nullptr);
  }
  funcs_by_id_[static_cast<size_t>(fn->func_id)] = fn;
  node_funcs_[static_cast<size_t>(node)].insert(fn->func_id);
  if (track_) {
    node_origins_[static_cast<size_t>(node)].insert(gen_origins_.begin(), gen_origins_.end());
  }
  address_taken_.insert(fn);
}

void PointsTo::FlowInto(const Expr* rhs, int dst) {
  if (rhs == nullptr || dst < 0) {
    return;
  }
  const FuncDecl* named = AsFunctionName(rhs);
  if (named != nullptr) {
    AddFunc(dst, named);
    return;
  }
  switch (rhs->kind) {
    case ExprKind::kCond:
      FlowInto(rhs->b, dst);
      FlowInto(rhs->c, dst);
      return;
    case ExprKind::kCast:
      FlowInto(rhs->a, dst);
      return;
    case ExprKind::kAssign:
      FlowInto(rhs->b, dst);  // value of an assignment is its rhs
      return;
    case ExprKind::kCall: {
      const FuncDecl* callee = AsFunctionName(rhs->a);
      if (callee != nullptr) {
        AddEdge(RetNode(callee), dst);
      } else {
        auto site = site_of_expr_.find(rhs);
        if (site != site_of_expr_.end()) {
          AddEdge(sites_[static_cast<size_t>(site->second)].ret_node, dst);
        }
      }
      return;
    }
    default: {
      int src = NodeOfExpr(rhs);
      AddEdge(src, dst);
      return;
    }
  }
}

void PointsTo::GenCall(const Expr* e) {
  const FuncDecl* callee = AsFunctionName(e->a);
  if (callee != nullptr) {
    // Special-case the interrupt dispatcher: its handler argument is an
    // indirect callee with one parameter.
    if (callee->is_builtin && callee->name == "trigger_irq" && !e->args.empty()) {
      IndirectSite site;
      site.call = e->args[0];
      site.caller = cur_fn_;
      site.callee_node = NodeOfExpr(e->args[0]);
      if (e->args.size() > 1) {
        site.args.push_back(e->args[1]);
      }
      site.ret_node = NewNode();
      if (track_) {
        SetKey(site.ret_node, SiteKey('s'));
      }
      site_of_expr_[e->args[0]] = static_cast<int>(sites_.size());
      sites_.push_back(site);
      // The handler reference itself may be a function name.
      if (const FuncDecl* h = AsFunctionName(e->args[0])) {
        int handler_node = site.callee_node;
        if (handler_node < 0) {
          handler_node = NewNode();
          if (track_) {
            SetKey(handler_node, SiteKey('a'));
          }
        }
        AddFunc(handler_node, h);
        int idx = site_of_expr_[e->args[0]];
        sites_[static_cast<size_t>(idx)].callee_node = handler_node;
      }
      return;
    }
    // Direct call: bind arguments to parameters.
    for (size_t i = 0; i < e->args.size() && i < callee->params.size(); ++i) {
      FlowInto(e->args[i], VarNode(callee->params[i], callee));
    }
    return;
  }
  // Indirect call site.
  IndirectSite site;
  site.call = e;
  site.caller = cur_fn_;
  site.callee_node = NodeOfExpr(e->a);
  for (const Expr* a : e->args) {
    site.args.push_back(a);
  }
  site.ret_node = NewNode();
  if (track_) {
    SetKey(site.ret_node, SiteKey('s'));
  }
  site_of_expr_[e] = static_cast<int>(sites_.size());
  sites_.push_back(site);
}

void PointsTo::GenExpr(const Expr* e) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kAssign && e->assign_op == BinOp::kNone) {
    FlowInto(e->b, NodeOfExpr(e->a));
  }
  if (e->kind == ExprKind::kCall) {
    GenCall(e);
  }
  GenExpr(e->a);
  GenExpr(e->b);
  GenExpr(e->c);
  for (const Expr* arg : e->args) {
    GenExpr(arg);
  }
}

void PointsTo::GenStmt(const Stmt* s) {
  if (s == nullptr) {
    return;
  }
  if (s->kind == StmtKind::kDecl && s->decl != nullptr && s->decl->init != nullptr &&
      s->decl->sym != nullptr) {
    FlowInto(s->decl->init, VarNode(s->decl->sym, cur_fn_));
  }
  if (s->kind == StmtKind::kReturn && s->expr != nullptr && cur_fn_ != nullptr) {
    FlowInto(s->expr, RetNode(cur_fn_));
  }
  GenExpr(s->expr);
  GenExpr(s->cond);
  GenExpr(s->step);
  if (s->decl != nullptr) {
    GenExpr(s->decl->init);
  }
  GenStmt(s->init);
  GenStmt(s->then_stmt);
  GenStmt(s->else_stmt);
  for (const Stmt* child : s->body) {
    GenStmt(child);
  }
}

void PointsTo::SeedFromPrev() {
  if (prev_ == nullptr) {
    return;
  }
  for (const auto& [key, snap] : *prev_) {
    bool tainted = false;
    if (dirty_ != nullptr) {
      for (const std::string& origin : snap.origins) {
        if (dirty_->count(origin) != 0) {
          tainted = true;
          break;
        }
      }
    }
    if (tainted) {
      continue;  // the dirty region: re-derive from scratch
    }
    auto it = key_to_node_.find(key);
    if (it == key_to_node_.end()) {
      continue;  // cell no longer exists (e.g. local of a removed function)
    }
    size_t node = static_cast<size_t>(it->second);
    for (const std::string& fname : snap.funcs) {
      auto fit = sema_->func_map().find(fname);
      if (fit == sema_->func_map().end() || fit->second == nullptr ||
          fit->second->func_id < 0) {
        continue;
      }
      const FuncDecl* fn = fit->second;
      if (static_cast<size_t>(fn->func_id) >= funcs_by_id_.size()) {
        funcs_by_id_.resize(static_cast<size_t>(fn->func_id) + 1, nullptr);
      }
      funcs_by_id_[static_cast<size_t>(fn->func_id)] = fn;
      if (node_funcs_[node].insert(fn->func_id).second) {
        ++seeded_facts_;
      }
    }
    for (const std::string& origin : snap.origins) {
      node_origins_[node].insert(OriginId(origin));
    }
  }
}

void PointsTo::Solve() {
  for (const auto& [name, fn] : sema_->func_map()) {
    if (fn->body == nullptr || fn->func_id < 0) {
      continue;
    }
    cur_fn_ = fn;
    if (track_) {
      gen_origins_ = {OriginId(fn->name)};
    }
    GenStmt(fn->body);
  }
  cur_fn_ = nullptr;
  if (track_) {
    gen_origins_ = {OriginId(kGlobalsOrigin)};
  }
  for (const VarDecl* g : prog_->globals) {
    if (g->init != nullptr && g->sym != nullptr) {
      FlowInto(g->init, VarNode(g->sym, nullptr));
    }
  }

  // Cross-module link seeds: facts another module proved about parameter and
  // return cells of functions this module shares with it. Applied before the
  // fixpoint so they propagate like any locally-generated fact.
  if (link_seeds_ != nullptr) {
    if (track_) {
      gen_origins_ = {OriginId(kLinkOrigin)};
    }
    for (const auto& [cell, names] : *link_seeds_) {
      auto fit = sema_->func_map().find(cell.first);
      if (fit == sema_->func_map().end() || fit->second == nullptr) {
        continue;
      }
      const FuncDecl* fn = fit->second;
      int node = -1;
      if (cell.second < 0) {
        node = RetNode(fn);
      } else if (static_cast<size_t>(cell.second) < fn->params.size()) {
        node = VarNode(fn->params[static_cast<size_t>(cell.second)], fn);
      }
      if (node < 0) {
        continue;
      }
      for (const std::string& name : names) {
        auto tit = sema_->func_map().find(name);
        if (tit != sema_->func_map().end()) {
          AddFunc(node, tit->second);
        }
      }
    }
    gen_origins_.clear();
  }

  // Warm start: adopt the previous solution outside the dirty region. Every
  // seeded fact is re-derivable from clean constraints, so the fixpoint
  // below converges to exactly the cold least fixpoint — it just skips
  // re-deriving what the seeds already state.
  SeedFromPrev();

  // Fixpoint: propagate function sets along edges; expand indirect sites.
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations_;
    for (size_t n = 0; n < edges_.size(); ++n) {
      for (size_t j = 0; j < edges_[n].size(); ++j) {
        size_t dst = static_cast<size_t>(edges_[n][j]);
        for (int f : node_funcs_[n]) {
          if (node_funcs_[dst].insert(f).second) {
            changed = true;
            ++propagations_;
            if (track_) {
              node_origins_[dst].insert(node_origins_[n].begin(), node_origins_[n].end());
              const std::vector<int>& eo = edge_origins_[n][j];
              node_origins_[dst].insert(eo.begin(), eo.end());
            }
          }
        }
      }
    }
    for (IndirectSite& site : sites_) {
      if (site.callee_node < 0) {
        continue;
      }
      // Copy: binding below creates nodes, which reallocates node_funcs_ and
      // would invalidate a by-reference iteration.
      const std::set<int> fids = node_funcs_[static_cast<size_t>(site.callee_node)];
      for (int fid : fids) {
        if (site.bound.count(fid) != 0) {
          continue;
        }
        site.bound.insert(fid);
        changed = true;
        const FuncDecl* target = funcs_by_id_[static_cast<size_t>(fid)];
        if (target == nullptr) {
          continue;
        }
        // Derived constraints: generated on behalf of the site's caller,
        // conditional on the callee cell's contents — both go into the
        // origin stamp so a later edit to either re-derives the bindings.
        cur_fn_ = site.caller;
        if (track_) {
          gen_origins_.clear();
          gen_origins_.push_back(OriginId(
              site.caller != nullptr ? site.caller->name : std::string(kGlobalsOrigin)));
          const std::set<int>& co = node_origins_[static_cast<size_t>(site.callee_node)];
          gen_origins_.insert(gen_origins_.end(), co.begin(), co.end());
        }
        for (size_t i = 0; i < site.args.size() && i < target->params.size(); ++i) {
          FlowInto(site.args[i], VarNode(target->params[i], target));
        }
        AddEdge(RetNode(target), site.ret_node);
        cur_fn_ = nullptr;
      }
    }
  }

  // Materialize resolved target lists.
  for (const IndirectSite& site : sites_) {
    std::vector<const FuncDecl*> targets;
    if (site.callee_node >= 0) {
      for (int fid : node_funcs_[static_cast<size_t>(site.callee_node)]) {
        const FuncDecl* f = funcs_by_id_[static_cast<size_t>(fid)];
        if (f != nullptr) {
          targets.push_back(f);
        }
      }
    }
    std::sort(targets.begin(), targets.end(),
              [](const FuncDecl* a, const FuncDecl* b) { return a->name < b->name; });
    resolved_[site.call] = std::move(targets);
  }
}

PointsToSnapshot PointsTo::Snapshot() const {
  PointsToSnapshot out;
  if (!track_) {
    return out;
  }
  for (size_t n = 0; n < node_keys_.size(); ++n) {
    if (node_keys_[n].empty() || node_funcs_[n].empty()) {
      continue;
    }
    PointsToCellSnap snap;
    for (int fid : node_funcs_[n]) {
      const FuncDecl* f = funcs_by_id_[static_cast<size_t>(fid)];
      if (f != nullptr) {
        snap.funcs.push_back(f->name);
      }
    }
    std::sort(snap.funcs.begin(), snap.funcs.end());
    for (int o : node_origins_[n]) {
      snap.origins.push_back(origin_names_[static_cast<size_t>(o)]);
    }
    std::sort(snap.origins.begin(), snap.origins.end());
    out[node_keys_[n]] = std::move(snap);
  }
  return out;
}

const std::vector<const FuncDecl*>& PointsTo::TargetsOf(const Expr* call) const {
  auto it = resolved_.find(call);
  return it == resolved_.end() ? empty_ : it->second;
}

const std::vector<const FuncDecl*>& PointsTo::HandlerTargets(const Expr* handler_expr) const {
  return TargetsOf(handler_expr);
}

std::vector<std::string> PointsTo::FuncNamesInCell(const FuncDecl* fn, int slot) const {
  std::vector<std::string> out;
  if (fn == nullptr) {
    return out;
  }
  int node = -1;
  if (slot < 0) {
    auto it = ret_nodes_.find(fn);
    node = it == ret_nodes_.end() ? -1 : it->second;
  } else if (static_cast<size_t>(slot) < fn->params.size()) {
    auto it = var_nodes_.find(fn->params[static_cast<size_t>(slot)]);
    node = it == var_nodes_.end() ? -1 : it->second;
  }
  if (node < 0) {
    return out;
  }
  for (int fid : node_funcs_[static_cast<size_t>(node)]) {
    const FuncDecl* f = funcs_by_id_[static_cast<size_t>(fid)];
    if (f != nullptr) {
      out.push_back(f->name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ivy
