#include "src/analysis/pointsto.h"

#include <algorithm>

namespace ivy {

PointsTo::PointsTo(const Program* prog, const Sema* sema, bool field_sensitive)
    : prog_(prog), sema_(sema), field_sensitive_(field_sensitive) {}

int PointsTo::NewNode() {
  node_funcs_.emplace_back();
  edges_.emplace_back();
  return static_cast<int>(node_funcs_.size()) - 1;
}

int PointsTo::VarNode(const Symbol* sym) {
  auto [it, inserted] = var_nodes_.emplace(sym, -1);
  if (inserted) {
    it->second = NewNode();
  }
  return it->second;
}

int PointsTo::FieldNode(const RecordDecl* rec, int field_index) {
  int idx = field_sensitive_ ? field_index : -1;
  auto [it, inserted] = field_nodes_.emplace(std::make_pair(rec, idx), -1);
  if (inserted) {
    it->second = NewNode();
  }
  return it->second;
}

int PointsTo::RetNode(const FuncDecl* fn) {
  auto [it, inserted] = ret_nodes_.emplace(fn, -1);
  if (inserted) {
    it->second = NewNode();
  }
  return it->second;
}

const FuncDecl* PointsTo::AsFunctionName(const Expr* e) const {
  if (e == nullptr || e->kind != ExprKind::kIdent || e->sym != nullptr) {
    return nullptr;
  }
  auto it = sema_->func_map().find(e->str_val);
  return it == sema_->func_map().end() ? nullptr : it->second;
}

int PointsTo::NodeOfExpr(const Expr* e) {
  if (e == nullptr) {
    return -1;
  }
  switch (e->kind) {
    case ExprKind::kIdent:
      return e->sym != nullptr ? VarNode(e->sym) : -1;
    case ExprKind::kMember:
      if (e->field != nullptr && e->field_record != nullptr) {
        return FieldNode(e->field_record, e->field->index);
      }
      return -1;
    case ExprKind::kIndex:
      // Arrays collapse to the cell of the array expression itself.
      return NodeOfExpr(e->a);
    case ExprKind::kDeref:
      // `(*fp)(...)` — dereference of a function pointer value.
      return NodeOfExpr(e->a);
    case ExprKind::kCast:
      return NodeOfExpr(e->a);
    default:
      return -1;
  }
}

void PointsTo::AddEdge(int src, int dst) {
  if (src < 0 || dst < 0 || src == dst) {
    return;
  }
  edges_[static_cast<size_t>(src)].push_back(dst);
}

void PointsTo::AddFunc(int node, const FuncDecl* fn) {
  if (node < 0 || fn == nullptr || fn->func_id < 0) {
    return;
  }
  if (static_cast<size_t>(fn->func_id) >= funcs_by_id_.size()) {
    funcs_by_id_.resize(static_cast<size_t>(fn->func_id) + 1, nullptr);
  }
  funcs_by_id_[static_cast<size_t>(fn->func_id)] = fn;
  node_funcs_[static_cast<size_t>(node)].insert(fn->func_id);
  address_taken_.insert(fn);
}

void PointsTo::FlowInto(const Expr* rhs, int dst) {
  if (rhs == nullptr || dst < 0) {
    return;
  }
  const FuncDecl* named = AsFunctionName(rhs);
  if (named != nullptr) {
    AddFunc(dst, named);
    return;
  }
  switch (rhs->kind) {
    case ExprKind::kCond:
      FlowInto(rhs->b, dst);
      FlowInto(rhs->c, dst);
      return;
    case ExprKind::kCast:
      FlowInto(rhs->a, dst);
      return;
    case ExprKind::kAssign:
      FlowInto(rhs->b, dst);  // value of an assignment is its rhs
      return;
    case ExprKind::kCall: {
      const FuncDecl* callee = AsFunctionName(rhs->a);
      if (callee != nullptr) {
        AddEdge(RetNode(callee), dst);
      } else {
        auto site = site_of_expr_.find(rhs);
        if (site != site_of_expr_.end()) {
          AddEdge(sites_[static_cast<size_t>(site->second)].ret_node, dst);
        }
      }
      return;
    }
    default: {
      int src = NodeOfExpr(rhs);
      AddEdge(src, dst);
      return;
    }
  }
}

void PointsTo::GenCall(const Expr* e) {
  const FuncDecl* callee = AsFunctionName(e->a);
  if (callee != nullptr) {
    // Special-case the interrupt dispatcher: its handler argument is an
    // indirect callee with one parameter.
    if (callee->is_builtin && callee->name == "trigger_irq" && !e->args.empty()) {
      IndirectSite site;
      site.call = e->args[0];
      site.caller = cur_fn_;
      site.callee_node = NodeOfExpr(e->args[0]);
      if (e->args.size() > 1) {
        site.args.push_back(e->args[1]);
      }
      site.ret_node = NewNode();
      site_of_expr_[e->args[0]] = static_cast<int>(sites_.size());
      sites_.push_back(site);
      // The handler reference itself may be a function name.
      if (const FuncDecl* h = AsFunctionName(e->args[0])) {
        AddFunc(site.callee_node >= 0 ? site.callee_node : NewNode(), h);
        // ensure named handlers resolve even without a cell
        int idx = site_of_expr_[e->args[0]];
        sites_[static_cast<size_t>(idx)].callee_node =
            site.callee_node >= 0 ? site.callee_node : static_cast<int>(node_funcs_.size()) - 1;
      }
      return;
    }
    // Direct call: bind arguments to parameters.
    for (size_t i = 0; i < e->args.size() && i < callee->params.size(); ++i) {
      FlowInto(e->args[i], VarNode(callee->params[i]));
    }
    return;
  }
  // Indirect call site.
  IndirectSite site;
  site.call = e;
  site.caller = cur_fn_;
  site.callee_node = NodeOfExpr(e->a);
  for (const Expr* a : e->args) {
    site.args.push_back(a);
  }
  site.ret_node = NewNode();
  site_of_expr_[e] = static_cast<int>(sites_.size());
  sites_.push_back(site);
}

void PointsTo::GenExpr(const Expr* e) {
  if (e == nullptr) {
    return;
  }
  if (e->kind == ExprKind::kAssign && e->assign_op == BinOp::kNone) {
    FlowInto(e->b, NodeOfExpr(e->a));
  }
  if (e->kind == ExprKind::kCall) {
    GenCall(e);
  }
  GenExpr(e->a);
  GenExpr(e->b);
  GenExpr(e->c);
  for (const Expr* arg : e->args) {
    GenExpr(arg);
  }
}

void PointsTo::GenStmt(const Stmt* s) {
  if (s == nullptr) {
    return;
  }
  if (s->kind == StmtKind::kDecl && s->decl != nullptr && s->decl->init != nullptr &&
      s->decl->sym != nullptr) {
    FlowInto(s->decl->init, VarNode(s->decl->sym));
  }
  if (s->kind == StmtKind::kReturn && s->expr != nullptr && cur_fn_ != nullptr) {
    FlowInto(s->expr, RetNode(cur_fn_));
  }
  GenExpr(s->expr);
  GenExpr(s->cond);
  GenExpr(s->step);
  if (s->decl != nullptr) {
    GenExpr(s->decl->init);
  }
  GenStmt(s->init);
  GenStmt(s->then_stmt);
  GenStmt(s->else_stmt);
  for (const Stmt* child : s->body) {
    GenStmt(child);
  }
}

void PointsTo::Solve() {
  for (const auto& [name, fn] : sema_->func_map()) {
    if (fn->body == nullptr || fn->func_id < 0) {
      continue;
    }
    cur_fn_ = fn;
    GenStmt(fn->body);
  }
  cur_fn_ = nullptr;
  for (const VarDecl* g : prog_->globals) {
    if (g->init != nullptr && g->sym != nullptr) {
      FlowInto(g->init, VarNode(g->sym));
    }
  }

  // Fixpoint: propagate function sets along edges; expand indirect sites.
  bool changed = true;
  while (changed) {
    changed = false;
    ++iterations_;
    for (size_t n = 0; n < edges_.size(); ++n) {
      for (int dst : edges_[n]) {
        for (int f : node_funcs_[n]) {
          if (node_funcs_[static_cast<size_t>(dst)].insert(f).second) {
            changed = true;
          }
        }
      }
    }
    for (IndirectSite& site : sites_) {
      if (site.callee_node < 0) {
        continue;
      }
      // Copy: binding below creates nodes, which reallocates node_funcs_ and
      // would invalidate a by-reference iteration.
      const std::set<int> fids = node_funcs_[static_cast<size_t>(site.callee_node)];
      for (int fid : fids) {
        if (site.bound.count(fid) != 0) {
          continue;
        }
        site.bound.insert(fid);
        changed = true;
        const FuncDecl* target = funcs_by_id_[static_cast<size_t>(fid)];
        if (target == nullptr) {
          continue;
        }
        for (size_t i = 0; i < site.args.size() && i < target->params.size(); ++i) {
          FlowInto(site.args[i], VarNode(target->params[i]));
        }
        AddEdge(RetNode(target), site.ret_node);
      }
    }
  }

  // Materialize resolved target lists.
  for (const IndirectSite& site : sites_) {
    std::vector<const FuncDecl*> targets;
    if (site.callee_node >= 0) {
      for (int fid : node_funcs_[static_cast<size_t>(site.callee_node)]) {
        const FuncDecl* f = funcs_by_id_[static_cast<size_t>(fid)];
        if (f != nullptr) {
          targets.push_back(f);
        }
      }
    }
    std::sort(targets.begin(), targets.end(),
              [](const FuncDecl* a, const FuncDecl* b) { return a->name < b->name; });
    resolved_[site.call] = std::move(targets);
  }
}

const std::vector<const FuncDecl*>& PointsTo::TargetsOf(const Expr* call) const {
  auto it = resolved_.find(call);
  return it == resolved_.end() ? empty_ : it->second;
}

const std::vector<const FuncDecl*>& PointsTo::HandlerTargets(const Expr* handler_expr) const {
  return TargetsOf(handler_expr);
}

}  // namespace ivy
