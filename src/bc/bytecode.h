// ivybc: the compact stack bytecode executed by BcVm (src/bc/bcvm.h).
//
// The register IR (src/ir/ir.h) is a vector-of-blocks-of-structs: ~90 bytes
// per Instr, two levels of indirection per fetch, and a fresh register vector
// per call. ivybc flattens a whole module into one uint32_t code array with
// absolute program counters, so the interpreter's hot loop is a single word
// fetch plus a switch — the zero-allocation dispatch shape of the cedar
// engine exemplar (ROADMAP).
//
// Word layout. Every instruction starts with one header word
//
//   w0 = opcode | aux << 8 | r0 << 16
//
// where `aux` is an 8-bit immediate (load/store size, builtin id, argument
// count, trap kind, has-value flag) and `r0` is the primary register operand
// (destination, or first source for stores/checks). Additional operands
// follow as one u32 word each; 64-bit immediates take two words (lo, hi).
// kBcNoReg / kBcNoWord mark absent register operands.
//
// Source locations are kept out of the instruction stream: a deduplicated
// `loc_pool` plus a run-length `pc_locs` table (sorted (pc, loc) change
// points) recover the IR instruction's SourceLoc on trap paths only.
// kIntrinsic is the exception — it carries its loc index inline, because
// kfree logs its call site on every execution, not just on traps.
//
// Images serialize with the bounds-checked LE idiom of src/server/wire.h;
// DecodeBcImage is total on arbitrary bytes and VerifyBcModule rejects
// anything the interpreter would have to trust (see src/bc/verify.h).
#ifndef SRC_BC_BYTECODE_H_
#define SRC_BC_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/ir/ir.h"
#include "src/vm/machine.h"

namespace ivy {

enum class BcOp : uint8_t {
  kConst = 0,   // r0 = imm64(w1, w2)
  kMove,        // r0 = reg(w1)
  kNeg,         // r0 = -reg(w1)
  kLogNot,      // r0 = !reg(w1)
  kBitNot,      // r0 = ~reg(w1)
  kAdd,         // r0 = reg(w1) + reg(w2)  (binops share this shape)
  kSub,
  kMul,
  kDiv,
  kRem,
  kShl,
  kShr,
  kLt,
  kGt,
  kLe,
  kGe,
  kEq,
  kNe,
  kBitAnd,
  kBitOr,
  kBitXor,
  kLogAnd,
  kLogOr,
  kLoad,        // r0 = mem[reg(w1)], aux = size (1 or 8)
  kStore,       // mem[reg(r0)] = reg(w1), aux = size
  kStorePtr,    // mem[reg(r0)] = reg(w1), 8 bytes + CCount RC update
  kFrameAddr,   // r0 = frame_base + imm64(w1, w2)
  kGlobalAddr,  // r0 = imm64(w1, w2)
  kFuncConst,   // r0 = kFuncPtrBase + w1
  kStrConst,    // r0 = address of string literal w1
  kCall,        // reg(r0 or none) = funcs[w1](args…), aux = nargs, args follow
  kCallInd,     // reg(r0 or none) = (reg(w1))(args…), aux = nargs
  kIntrinsic,   // reg(r0 or none) = builtin aux(args…);
                // w1 = loc index, w2 = alloc_type_id, w3 = nargs
  kRet,         // return reg(r0) if aux else 0
  kImplicitRet, // block fell off the end: return 0 (uncounted, like tree VM)
  kJump,        // pc = w1
  kBranch,      // pc = reg(r0) != 0 ? w1 : w2
  kCheckNonNull,   // trap NullDeref if reg(r0) == 0
  kCheckBounds,    // trap Bounds unless lo <= reg(r0) && reg(r0)+imm <= hi;
                   // w1 = lo reg or kBcNoWord (lo = 0), w2 = hi reg,
                   // w3/w4 = imm64
  kCheckWhen,      // trap UnionTag if reg(r0) == 0
  kCheckNtAdvance, // trap NtOverrun if mem[reg(r0)] (1 byte) == 0
  kCheckStack,     // trap StackOverflow if stack depth exceeds budget
  kDelayedPush,
  kDelayedPop,
  kTrap,           // unconditional trap; aux = TrapKind
  kCount_,
};

inline constexpr uint16_t kBcNoReg = 0xFFFF;
inline constexpr uint32_t kBcNoWord = 0xFFFFFFFFu;

inline constexpr uint32_t BcWord0(BcOp op, uint8_t aux, uint16_t r0) {
  return static_cast<uint32_t>(op) | static_cast<uint32_t>(aux) << 8 |
         static_cast<uint32_t>(r0) << 16;
}
inline constexpr BcOp BcOpOf(uint32_t w0) { return static_cast<BcOp>(w0 & 0xFF); }
inline constexpr uint8_t BcAuxOf(uint32_t w0) { return static_cast<uint8_t>(w0 >> 8); }
inline constexpr uint16_t BcR0Of(uint32_t w0) { return static_cast<uint16_t>(w0 >> 16); }

// Instruction length in words given its header word (variable-length calls
// read the argument count from aux/w3). Returns 0 for an invalid opcode.
// `w` must point at at least the fixed prefix; callers that cannot trust the
// stream (the verifier) bounds-check the prefix themselves.
uint32_t BcInstrLen(const uint32_t* w);

// Mnemonic for an opcode ("const", "add", ...); "<bad-op>" when out of
// range. Shared by the disassembler and ivybc's --profile readout.
const char* BcOpName(BcOp op);

// One function's metadata — everything the tree VM reads off IrFunc/FuncDecl
// at call boundaries, AST-free so a decoded image can run standalone.
struct BcFunc {
  std::string name;        // empty when the IR had no decl
  SourceLoc decl_loc;      // undefined-call / stack-overflow trap location
  uint8_t defined = 0;     // had a body (IrFunc::blocks non-empty)
  uint32_t entry_pc = 0;   // first code word (== code_end when undefined)
  uint32_t code_end = 0;   // one past the last code word
  uint32_t num_regs = 0;
  int64_t frame_size = 0;
  std::vector<int64_t> param_offsets;
  std::vector<uint8_t> param_sizes;
  std::vector<int64_t> ptr_slots;
};

// A compiled module: flat code + the constant pools and layout tables the
// Machine runtime needs. GlobalSlot::decl is null after decode; the runtime
// only consults addr/size/ptr_offsets.
struct BcModule {
  std::vector<uint32_t> code;
  std::vector<BcFunc> funcs;               // indexed by IR func_id
  std::vector<std::string> string_pool;
  std::vector<GlobalSlot> globals;
  std::vector<GlobalInit> global_inits;
  uint64_t globals_end = 0;

  std::vector<SourceLoc> loc_pool;
  std::vector<std::pair<uint32_t, uint32_t>> pc_locs;  // (pc, loc_pool index)

  // The SourceLoc in effect at `pc`: the last change point at or before it.
  SourceLoc LocAt(uint32_t pc) const;

  int FindFunc(const std::string& name) const;  // -1 if absent
};

// ---------------------------------------------------------------------------
// Image serialization (header 0xA7 0xBC, version, then a wire.h-style
// bounds-checked LE payload).
// ---------------------------------------------------------------------------

inline constexpr uint8_t kBcMagic0 = 0xA7;
inline constexpr uint8_t kBcMagic1 = 0xBC;
inline constexpr uint8_t kBcVersion = 1;

std::string EncodeBcImage(const BcModule& m);

// Total on arbitrary bytes: any truncated, oversized, or malformed image
// returns false with *err set — never a crash, never an over-read. A decoded
// module is structurally well-formed but NOT yet trusted: run VerifyBcModule
// before executing it.
bool DecodeBcImage(const std::string& bytes, BcModule* out, std::string* err);

// Human-readable disassembly of the whole module (tools/ivybc --dump).
std::string DisassembleBc(const BcModule& m);

}  // namespace ivy

#endif  // SRC_BC_BYTECODE_H_
