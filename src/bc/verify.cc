#include "src/bc/verify.h"

#include <set>

#include "src/vm/builtins.h"

namespace ivy {

namespace {

bool Fail(std::string* err, size_t fi, uint32_t pc, const std::string& why) {
  if (err != nullptr) {
    *err = "func " + std::to_string(fi) + " @" + std::to_string(pc) + ": " + why;
  }
  return false;
}

bool IsBcTerminator(BcOp op) {
  return op == BcOp::kRet || op == BcOp::kImplicitRet || op == BcOp::kJump ||
         op == BcOp::kBranch || op == BcOp::kTrap;
}

}  // namespace

bool VerifyBcModule(const BcModule& m, std::string* err) {
  // The Machine lays rodata and the stack out above globals_end with
  // unchecked writes; cap the data image well below any configured memory
  // size so a forged layout cannot reach past the arena.
  if (m.globals_end > (uint64_t{1} << 24)) {
    if (err != nullptr) {
      *err = "globals region exceeds cap";
    }
    return false;
  }
  uint64_t str_bytes = 0;
  for (const std::string& s : m.string_pool) {
    str_bytes += s.size() + 16;
  }
  if (str_bytes > (uint64_t{1} << 24)) {
    if (err != nullptr) {
      *err = "string pool exceeds cap";
    }
    return false;
  }
  for (size_t i = 0; i < m.global_inits.size(); ++i) {
    const GlobalInit& gi = m.global_inits[i];
    if (gi.size != 1 && gi.size != 8) {
      if (err != nullptr) {
        *err = "global init " + std::to_string(i) + ": bad size";
      }
      return false;
    }
    if (gi.is_string != 0 &&
        static_cast<uint64_t>(gi.value) >= m.string_pool.size()) {
      if (err != nullptr) {
        *err = "global init " + std::to_string(i) + ": string index out of range";
      }
      return false;
    }
    if (gi.addr < 4096 || gi.addr + gi.size > m.globals_end) {
      if (err != nullptr) {
        *err = "global init " + std::to_string(i) + ": address outside globals";
      }
      return false;
    }
  }
  for (size_t i = 1; i < m.pc_locs.size(); ++i) {
    if (m.pc_locs[i].first < m.pc_locs[i - 1].first) {
      if (err != nullptr) {
        *err = "pc_locs not sorted at entry " + std::to_string(i);
      }
      return false;
    }
  }
  for (const auto& e : m.pc_locs) {
    if (e.second >= m.loc_pool.size()) {
      if (err != nullptr) {
        *err = "pc_locs references loc " + std::to_string(e.second) + " out of range";
      }
      return false;
    }
  }

  for (size_t fi = 0; fi < m.funcs.size(); ++fi) {
    const BcFunc& f = m.funcs[fi];
    if (f.entry_pc > f.code_end || f.code_end > m.code.size()) {
      return Fail(err, fi, f.entry_pc, "code range outside module");
    }
    if (f.num_regs >= kBcNoReg) {
      return Fail(err, fi, f.entry_pc, "register count exceeds encoding");
    }
    // Frame writes (params, pointer slots) are unchecked once the stack
    // bound passes, so every slot must sit inside the declared frame, and
    // the frame size must be small enough that `stack_top_ + frame_size`
    // can never wrap past the overflow check.
    if (f.frame_size < 0 || f.frame_size > (int64_t{1} << 30)) {
      return Fail(err, fi, f.entry_pc, "frame size out of range");
    }
    if (f.param_offsets.size() != f.param_sizes.size()) {
      return Fail(err, fi, f.entry_pc, "param offset/size tables disagree");
    }
    for (size_t p = 0; p < f.param_offsets.size(); ++p) {
      uint8_t s = f.param_sizes[p];
      if (s != 1 && s != 8) {
        return Fail(err, fi, f.entry_pc, "bad param store size");
      }
      if (f.param_offsets[p] < 0 || f.param_offsets[p] + s > f.frame_size) {
        return Fail(err, fi, f.entry_pc, "param slot outside frame");
      }
    }
    for (int64_t slot : f.ptr_slots) {
      if (slot < 0 || slot + 8 > f.frame_size) {
        return Fail(err, fi, f.entry_pc, "pointer slot outside frame");
      }
    }
    if (f.defined == 0) {
      if (f.entry_pc != f.code_end) {
        return Fail(err, fi, f.entry_pc, "undefined function with code");
      }
      continue;
    }
    if (f.entry_pc == f.code_end) {
      return Fail(err, fi, f.entry_pc, "defined function with empty code");
    }

    auto check_reg = [&](uint32_t r) { return r < f.num_regs; };

    // Pass 1: walk instruction starts, validating operands.
    std::set<uint32_t> starts;
    uint32_t pc = f.entry_pc;
    BcOp last_op = BcOp::kCount_;
    while (pc < f.code_end) {
      const uint32_t w0 = m.code[pc];
      BcOp op = BcOpOf(w0);
      if (op >= BcOp::kCount_) {
        return Fail(err, fi, pc, "invalid opcode");
      }
      // kIntrinsic reads its length from w3; make sure the fixed prefix is
      // in range before BcInstrLen dereferences it.
      if (op == BcOp::kIntrinsic && pc + 4 > f.code_end) {
        return Fail(err, fi, pc, "truncated intrinsic");
      }
      uint32_t len = BcInstrLen(m.code.data() + pc);
      if (len == 0 || pc + len > f.code_end) {
        return Fail(err, fi, pc, "instruction overruns function");
      }
      starts.insert(pc);
      const uint32_t* w = m.code.data() + pc;
      uint8_t aux = BcAuxOf(w0);
      uint16_t r0 = BcR0Of(w0);
      switch (op) {
        case BcOp::kConst:
        case BcOp::kFrameAddr:
        case BcOp::kGlobalAddr:
          if (!check_reg(r0)) {
            return Fail(err, fi, pc, "destination register out of range");
          }
          break;
        case BcOp::kMove:
        case BcOp::kNeg:
        case BcOp::kLogNot:
        case BcOp::kBitNot:
          if (!check_reg(r0) || !check_reg(w[1])) {
            return Fail(err, fi, pc, "register out of range");
          }
          break;
        case BcOp::kAdd:
        case BcOp::kSub:
        case BcOp::kMul:
        case BcOp::kDiv:
        case BcOp::kRem:
        case BcOp::kShl:
        case BcOp::kShr:
        case BcOp::kLt:
        case BcOp::kGt:
        case BcOp::kLe:
        case BcOp::kGe:
        case BcOp::kEq:
        case BcOp::kNe:
        case BcOp::kBitAnd:
        case BcOp::kBitOr:
        case BcOp::kBitXor:
        case BcOp::kLogAnd:
        case BcOp::kLogOr:
          if (!check_reg(r0) || !check_reg(w[1]) || !check_reg(w[2])) {
            return Fail(err, fi, pc, "register out of range");
          }
          break;
        case BcOp::kLoad:
          if (!check_reg(r0) || !check_reg(w[1])) {
            return Fail(err, fi, pc, "register out of range");
          }
          if (aux != 1 && aux != 8) {
            return Fail(err, fi, pc, "bad load size");
          }
          break;
        case BcOp::kStore:
          if (!check_reg(r0) || !check_reg(w[1])) {
            return Fail(err, fi, pc, "register out of range");
          }
          if (aux != 1 && aux != 8) {
            return Fail(err, fi, pc, "bad store size");
          }
          break;
        case BcOp::kStorePtr:
          if (!check_reg(r0) || !check_reg(w[1])) {
            return Fail(err, fi, pc, "register out of range");
          }
          break;
        case BcOp::kFuncConst:
          if (!check_reg(r0)) {
            return Fail(err, fi, pc, "register out of range");
          }
          if (w[1] >= m.funcs.size()) {
            return Fail(err, fi, pc, "function index out of range");
          }
          break;
        case BcOp::kStrConst:
          if (!check_reg(r0)) {
            return Fail(err, fi, pc, "register out of range");
          }
          if (w[1] >= m.string_pool.size()) {
            return Fail(err, fi, pc, "string index out of range");
          }
          break;
        case BcOp::kCall:
        case BcOp::kCallInd:
          if (r0 != kBcNoReg && !check_reg(r0)) {
            return Fail(err, fi, pc, "return register out of range");
          }
          if (op == BcOp::kCall) {
            if (w[1] >= m.funcs.size()) {
              return Fail(err, fi, pc, "callee index out of range");
            }
          } else if (!check_reg(w[1])) {
            return Fail(err, fi, pc, "function-pointer register out of range");
          }
          for (uint32_t a = 0; a < aux; ++a) {
            if (!check_reg(w[2 + a])) {
              return Fail(err, fi, pc, "argument register out of range");
            }
          }
          break;
        case BcOp::kIntrinsic:
          if (r0 != kBcNoReg && !check_reg(r0)) {
            return Fail(err, fi, pc, "destination register out of range");
          }
          if (aux >= static_cast<uint8_t>(Builtin::kCount_)) {
            return Fail(err, fi, pc, "builtin id out of range");
          }
          if (w[1] >= m.loc_pool.size()) {
            return Fail(err, fi, pc, "loc index out of range");
          }
          if (w[3] > 255) {
            return Fail(err, fi, pc, "intrinsic argument count out of range");
          }
          for (uint32_t a = 0; a < w[3]; ++a) {
            if (!check_reg(w[4 + a])) {
              return Fail(err, fi, pc, "argument register out of range");
            }
          }
          break;
        case BcOp::kRet:
          if (aux != 0 && !check_reg(r0)) {
            return Fail(err, fi, pc, "return-value register out of range");
          }
          break;
        case BcOp::kBranch:
          if (!check_reg(r0)) {
            return Fail(err, fi, pc, "condition register out of range");
          }
          break;
        case BcOp::kCheckNonNull:
        case BcOp::kCheckWhen:
        case BcOp::kCheckNtAdvance:
          if (!check_reg(r0)) {
            return Fail(err, fi, pc, "check register out of range");
          }
          break;
        case BcOp::kCheckBounds:
          if (!check_reg(r0) || !check_reg(w[2]) ||
              (w[1] != kBcNoWord && !check_reg(w[1]))) {
            return Fail(err, fi, pc, "bounds-check register out of range");
          }
          break;
        case BcOp::kTrap:
          if (aux > static_cast<uint8_t>(TrapKind::kTimeout)) {
            return Fail(err, fi, pc, "trap kind out of range");
          }
          break;
        case BcOp::kImplicitRet:
        case BcOp::kJump:
        case BcOp::kCheckStack:
        case BcOp::kDelayedPush:
        case BcOp::kDelayedPop:
          break;
        case BcOp::kCount_:
          return Fail(err, fi, pc, "invalid opcode");
      }
      last_op = op;
      pc += len;
    }
    if (!IsBcTerminator(last_op)) {
      return Fail(err, fi, pc, "function can fall off its last instruction");
    }

    // Pass 2: every control-transfer target is an instruction start in this
    // function (jumps never cross functions).
    for (uint32_t at : starts) {
      const uint32_t* w = m.code.data() + at;
      BcOp op = BcOpOf(w[0]);
      if (op == BcOp::kJump) {
        if (starts.count(w[1]) == 0) {
          return Fail(err, fi, at, "jump target is not an instruction start");
        }
      } else if (op == BcOp::kBranch) {
        if (starts.count(w[1]) == 0 || starts.count(w[2]) == 0) {
          return Fail(err, fi, at, "branch target is not an instruction start");
        }
      }
    }
  }
  return true;
}

}  // namespace ivy
