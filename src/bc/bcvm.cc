#include "src/bc/bcvm.h"

#include <algorithm>

namespace ivy {

BcVm::BcVm(std::shared_ptr<const BcModule> module, const TypeLayoutRegistry* layouts,
           VmConfig cfg)
    : Machine(layouts, cfg), owned_(std::move(module)), mod_(owned_.get()) {
  SetupMemory(mod_->globals_end, mod_->string_pool, &mod_->globals, mod_->global_inits);
  num_funcs_ = mod_->funcs.size();
  for (size_t i = 0; i < mod_->funcs.size(); ++i) {
    if (!mod_->funcs[i].name.empty()) {
      func_ids_[mod_->funcs[i].name] = static_cast<int>(i);
    }
  }
  frames_.reserve(64);
  regs_.reserve(4096);
  call_scratch_.reserve(16);
  if (cfg_.profile) {
    op_counts_.assign(static_cast<size_t>(BcOp::kCount_), 0);
  }
}

BcVm::BcVm(const BcModule* module, const TypeLayoutRegistry* layouts, VmConfig cfg)
    : BcVm(std::shared_ptr<const BcModule>(module, [](const BcModule*) {}), layouts, cfg) {}

int64_t BcVm::ExecEntry(int func_id, const std::vector<int64_t>& args) {
  return Run(func_id, args.data(), args.size());
}

int64_t BcVm::ExecIrqHandler(int func_id, int64_t arg) {
  return Run(func_id, &arg, 1);
}

void BcVm::PushBcFrame(int func_id, const int64_t* args, size_t nargs, int32_t ret_dst) {
  if (func_id < 0 || static_cast<size_t>(func_id) >= mod_->funcs.size()) {
    throw Trap{TrapKind::kBadIndirectCall, SourceLoc{}, "bad function id"};
  }
  const BcFunc& fn = mod_->funcs[static_cast<size_t>(func_id)];
  if (fn.defined == 0) {
    throw Trap{TrapKind::kBadIndirectCall, fn.decl_loc,
               "call to undefined function '" + (fn.name.empty() ? "?" : fn.name) + "'"};
  }
  if (stack_top_ + static_cast<uint64_t>(fn.frame_size) >
      mem_->stack_base + mem_->stack_size) {
    throw Trap{TrapKind::kStackOverflow, fn.decl_loc, "kernel stack exhausted"};
  }
  BcFrame f;
  f.func = static_cast<uint32_t>(func_id);
  f.pc = fn.entry_pc;
  f.reg_base = static_cast<uint32_t>(regs_top_);
  f.ret_dst = ret_dst;
  f.base = stack_top_;
  f.delayed_at_entry = heap_->delayed_depth();
  stack_top_ += static_cast<uint64_t>(fn.frame_size);
  if (cfg_.track_locals && fn.frame_size > 0) {
    // Zero the frame so pointer-slot tracking starts from a clean state.
    mem_->ZeroRange(f.base, static_cast<uint64_t>(fn.frame_size));
    cycles_ += fn.frame_size * cfg_.cost.zero_per_byte_q / 4;
  }
  size_t need = regs_top_ + fn.num_regs;
  if (need > regs_.size()) {
    regs_.resize(std::max(need, regs_.size() * 2));
  }
  std::fill(regs_.begin() + static_cast<ptrdiff_t>(regs_top_),
            regs_.begin() + static_cast<ptrdiff_t>(need), 0);
  regs_top_ = need;
  for (size_t i = 0; i < fn.param_offsets.size() && i < nargs; ++i) {
    uint64_t slot = f.base + static_cast<uint64_t>(fn.param_offsets[i]);
    if (cfg_.track_locals && heap_->ccount() && fn.param_sizes[i] == 8) {
      // Pointer-typed parameter slots participate in counting.
      bool is_ptr = false;
      for (int64_t off : fn.ptr_slots) {
        if (off == fn.param_offsets[i]) {
          is_ptr = true;
          break;
        }
      }
      if (is_ptr) {
        heap_->RcWrite(0, static_cast<uint64_t>(args[i]));
        ChargeRc(1);
      }
    }
    mem_->Write(slot, args[i], fn.param_sizes[i]);
  }
  cycles_ += cfg_.cost.call;
  frames_.push_back(f);
}

void BcVm::PopBcFrame() {
  const BcFrame& f = frames_.back();
  if (cfg_.track_locals && heap_->ccount()) {
    // Drop references held by pointer slots in this frame.
    const BcFunc& fn = mod_->funcs[f.func];
    for (int64_t off : fn.ptr_slots) {
      int64_t v = mem_->Read(f.base + static_cast<uint64_t>(off), 8);
      if (mem_->Countable(static_cast<uint64_t>(v))) {
        heap_->RcWrite(static_cast<uint64_t>(v), 0);  // dec only
        ChargeRc(1);
      }
    }
  }
  stack_top_ = f.base;
  cycles_ += cfg_.cost.ret;
  regs_top_ = f.reg_base;
  frames_.pop_back();
}

int64_t BcVm::Run(int func_id, const int64_t* args, size_t nargs) {
  size_t watermark = frames_.size();
  size_t regs_watermark = regs_top_;
  try {
    PushBcFrame(func_id, args, nargs, -1);
    return RunLoop(watermark);
  } catch (...) {
    // Roll the interpreter stacks back to the entry point; Machine state
    // (stack_top_, locks, IRQ flag) intentionally stays as the trap left it,
    // matching the tree VM's unwind.
    frames_.resize(watermark);
    regs_top_ = regs_watermark;
    throw;
  }
}

int64_t BcVm::RunLoop(size_t watermark) {
  const uint32_t* const code = mod_->code.data();
  const CostModel& cost = cfg_.cost;
  // Profiling fast path: one null check per dispatch when off (the common
  // case), one plain increment when on. Never feeds back into steps/cycles.
  uint64_t* const prof = op_counts_.empty() ? nullptr : op_counts_.data();

  BcFrame* fr = &frames_.back();
  int64_t* regs = regs_.data() + fr->reg_base;
  uint64_t base = fr->base;
  uint32_t pc = fr->pc;

  // steps_ and cycles_ live in locals across the dispatch loop so the hot
  // arithmetic cases pay register adds, not member read-modify-writes. Every
  // exit from the loop — calls into Machine helpers that account cycles
  // themselves (and may reenter RunLoop via trigger_irq), trap throws, and
  // the final return — flushes the locals back first; helper returns reload.
  int64_t steps = steps_;
  int64_t cycles = cycles_;
  const int64_t max_steps = cfg_.max_steps;
  auto flush = [&] {
    steps_ = steps;
    cycles_ = cycles;
  };
  auto reload = [&] {
    steps = steps_;
    cycles = cycles_;
  };

  // Cold paths, kept out of the dispatch switch: recover the SourceLoc only
  // when a trap actually fires.
  auto throw_access = [this, &flush](uint64_t addr, uint32_t at) {
    flush();
    throw Trap{addr < 4096 ? TrapKind::kNullDeref : TrapKind::kMemFault, mod_->LocAt(at),
               "access at address " + std::to_string(addr)};
  };

  for (;;) {
    const uint32_t w0 = code[pc];
    const BcOp op = BcOpOf(w0);
    if (prof != nullptr) {
      ++prof[static_cast<size_t>(op)];
    }
    if (op != BcOp::kImplicitRet) {
      // Synthesized implicit returns have no IR counterpart and are not
      // counted as steps (the tree VM's fell-off-the-end path).
      if (++steps > max_steps) {
        flush();
        throw Trap{TrapKind::kTimeout, mod_->LocAt(pc), "instruction budget exceeded"};
      }
    }
    const uint16_t r0 = BcR0Of(w0);
    switch (op) {
      case BcOp::kConst:
        regs[r0] = static_cast<int64_t>(static_cast<uint64_t>(code[pc + 1]) |
                                        static_cast<uint64_t>(code[pc + 2]) << 32);
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kMove:
        regs[r0] = regs[code[pc + 1]];
        cycles += cost.op;
        pc += 2;
        break;
      case BcOp::kNeg:
        regs[r0] = -regs[code[pc + 1]];
        cycles += cost.op;
        pc += 2;
        break;
      case BcOp::kLogNot:
        regs[r0] = regs[code[pc + 1]] == 0 ? 1 : 0;
        cycles += cost.op;
        pc += 2;
        break;
      case BcOp::kBitNot:
        regs[r0] = ~regs[code[pc + 1]];
        cycles += cost.op;
        pc += 2;
        break;
      case BcOp::kAdd:
        regs[r0] = regs[code[pc + 1]] + regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kSub:
        regs[r0] = regs[code[pc + 1]] - regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kMul:
        regs[r0] = regs[code[pc + 1]] * regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kDiv: {
        int64_t b = regs[code[pc + 2]];
        if (b == 0) {
          flush();
          throw Trap{TrapKind::kDivByZero, mod_->LocAt(pc), "division by zero"};
        }
        regs[r0] = regs[code[pc + 1]] / b;
        cycles += cost.op;
        pc += 3;
        break;
      }
      case BcOp::kRem: {
        int64_t b = regs[code[pc + 2]];
        if (b == 0) {
          flush();
          throw Trap{TrapKind::kDivByZero, mod_->LocAt(pc), "remainder by zero"};
        }
        regs[r0] = regs[code[pc + 1]] % b;
        cycles += cost.op;
        pc += 3;
        break;
      }
      case BcOp::kShl:
        regs[r0] = regs[code[pc + 1]] << (regs[code[pc + 2]] & 63);
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kShr:
        regs[r0] = regs[code[pc + 1]] >> (regs[code[pc + 2]] & 63);
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kLt:
        regs[r0] = regs[code[pc + 1]] < regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kGt:
        regs[r0] = regs[code[pc + 1]] > regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kLe:
        regs[r0] = regs[code[pc + 1]] <= regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kGe:
        regs[r0] = regs[code[pc + 1]] >= regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kEq:
        regs[r0] = regs[code[pc + 1]] == regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kNe:
        regs[r0] = regs[code[pc + 1]] != regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kBitAnd:
        regs[r0] = regs[code[pc + 1]] & regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kBitOr:
        regs[r0] = regs[code[pc + 1]] | regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kBitXor:
        regs[r0] = regs[code[pc + 1]] ^ regs[code[pc + 2]];
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kLogAnd:
        regs[r0] = (regs[code[pc + 1]] != 0 && regs[code[pc + 2]] != 0) ? 1 : 0;
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kLogOr:
        regs[r0] = (regs[code[pc + 1]] != 0 || regs[code[pc + 2]] != 0) ? 1 : 0;
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kLoad: {
        uint64_t addr = static_cast<uint64_t>(regs[code[pc + 1]]);
        uint8_t size = BcAuxOf(w0);
        if (!mem_->Valid(addr, size)) {
          throw_access(addr, pc);
        }
        regs[r0] = mem_->Read(addr, size);
        cycles += cost.load;
        pc += 2;
        break;
      }
      case BcOp::kStore: {
        uint64_t addr = static_cast<uint64_t>(regs[r0]);
        uint8_t size = BcAuxOf(w0);
        if (!mem_->Valid(addr, size)) {
          throw_access(addr, pc);
        }
        mem_->Write(addr, regs[code[pc + 1]], size);
        cycles += cost.store;
        pc += 2;
        break;
      }
      case BcOp::kStorePtr: {
        uint64_t addr = static_cast<uint64_t>(regs[r0]);
        if (!mem_->Valid(addr, 8)) {
          throw_access(addr, pc);
        }
        flush();
        DoStorePtrUnchecked(addr, regs[code[pc + 1]]);
        reload();
        pc += 2;
        break;
      }
      case BcOp::kFrameAddr:
        regs[r0] = static_cast<int64_t>(base) +
                   static_cast<int64_t>(static_cast<uint64_t>(code[pc + 1]) |
                                        static_cast<uint64_t>(code[pc + 2]) << 32);
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kGlobalAddr:
        regs[r0] = static_cast<int64_t>(static_cast<uint64_t>(code[pc + 1]) |
                                        static_cast<uint64_t>(code[pc + 2]) << 32);
        cycles += cost.op;
        pc += 3;
        break;
      case BcOp::kFuncConst:
        regs[r0] = static_cast<int64_t>(kFuncPtrBase + code[pc + 1]);
        cycles += cost.op;
        pc += 2;
        break;
      case BcOp::kStrConst:
        regs[r0] = static_cast<int64_t>(string_addrs_[code[pc + 1]]);
        cycles += cost.op;
        pc += 2;
        break;
      case BcOp::kCall:
      case BcOp::kCallInd: {
        const uint32_t nargs = BcAuxOf(w0);
        int callee;
        if (op == BcOp::kCall) {
          callee = static_cast<int>(code[pc + 1]);
        } else {
          uint64_t fp = static_cast<uint64_t>(regs[code[pc + 1]]);
          if (fp < kFuncPtrBase || fp - kFuncPtrBase >= mod_->funcs.size()) {
            flush();
            throw Trap{TrapKind::kBadIndirectCall, mod_->LocAt(pc),
                       "indirect call through invalid function pointer"};
          }
          callee = static_cast<int>(fp - kFuncPtrBase);
        }
        call_scratch_.clear();
        for (uint32_t i = 0; i < nargs; ++i) {
          call_scratch_.push_back(regs[code[pc + 2 + i]]);
        }
        fr->pc = pc + 2 + nargs;  // resume point
        flush();
        PushBcFrame(callee, call_scratch_.data(), nargs,
                    r0 == kBcNoReg ? -1 : static_cast<int32_t>(r0));
        reload();
        fr = &frames_.back();
        regs = regs_.data() + fr->reg_base;
        base = fr->base;
        pc = fr->pc;
        break;
      }
      case BcOp::kIntrinsic: {
        const uint32_t nargs = code[pc + 3];
        call_scratch_.clear();
        for (uint32_t i = 0; i < nargs; ++i) {
          call_scratch_.push_back(regs[code[pc + 4 + i]]);
        }
        flush();
        int64_t v = DoIntrinsic(static_cast<Builtin>(BcAuxOf(w0)),
                                mod_->loc_pool[code[pc + 1]],
                                static_cast<int32_t>(code[pc + 2]), call_scratch_.data(),
                                nargs);
        reload();
        // trigger_irq may have nested another Run, growing the stacks.
        fr = &frames_.back();
        regs = regs_.data() + fr->reg_base;
        if (r0 != kBcNoReg) {
          regs[r0] = v;
        }
        cycles += cost.intrinsic;
        pc += 4 + nargs;
        break;
      }
      case BcOp::kRet:
      case BcOp::kImplicitRet: {
        int64_t value = 0;
        flush();
        if (op == BcOp::kRet) {
          // Unwind any delayed_free scopes this function opened but left
          // open via an early return.
          while (heap_->delayed_depth() > fr->delayed_at_entry) {
            heap_->PopDelayedScope();
          }
          if (BcAuxOf(w0) != 0) {
            value = regs[r0];
          }
        }
        const int32_t ret_dst = fr->ret_dst;
        PopBcFrame();
        reload();
        if (frames_.size() == watermark) {
          flush();
          return value;
        }
        fr = &frames_.back();
        regs = regs_.data() + fr->reg_base;
        base = fr->base;
        pc = fr->pc;
        if (ret_dst >= 0) {
          regs[ret_dst] = value;
        }
        break;
      }
      case BcOp::kJump:
        pc = code[pc + 1];
        cycles += cost.op;
        break;
      case BcOp::kBranch:
        pc = regs[r0] != 0 ? code[pc + 1] : code[pc + 2];
        cycles += cost.op;
        break;
      case BcOp::kCheckNonNull:
        if (regs[r0] == 0) {
          flush();
          throw Trap{TrapKind::kNullDeref, mod_->LocAt(pc), "Deputy: null pointer"};
        }
        cycles += cost.check;
        pc += 1;
        break;
      case BcOp::kCheckBounds: {
        int64_t v = regs[r0];
        int64_t lo = code[pc + 1] == kBcNoWord ? 0 : regs[code[pc + 1]];
        int64_t hi = regs[code[pc + 2]];
        int64_t imm = static_cast<int64_t>(static_cast<uint64_t>(code[pc + 3]) |
                                           static_cast<uint64_t>(code[pc + 4]) << 32);
        if (v < lo || v + imm > hi) {
          flush();
          throw Trap{TrapKind::kBounds, mod_->LocAt(pc),
                     "Deputy: bounds check failed (" + std::to_string(v) + " not in [" +
                         std::to_string(lo) + ", " + std::to_string(hi) + "))"};
        }
        cycles += cost.check_bounds;
        pc += 5;
        break;
      }
      case BcOp::kCheckWhen:
        if (regs[r0] == 0) {
          flush();
          throw Trap{TrapKind::kUnionTag, mod_->LocAt(pc), "Deputy: union when() guard failed"};
        }
        cycles += cost.check;
        pc += 1;
        break;
      case BcOp::kCheckNtAdvance: {
        uint64_t addr = static_cast<uint64_t>(regs[r0]);
        if (!mem_->Valid(addr, 1)) {
          throw_access(addr, pc);
        }
        if (mem_->Read(addr, 1) == 0) {
          flush();
          throw Trap{TrapKind::kNtOverrun, mod_->LocAt(pc),
                     "Deputy: advancing nullterm pointer past terminator"};
        }
        cycles += cost.check;
        pc += 1;
        break;
      }
      case BcOp::kCheckStack:
        if (static_cast<int64_t>(stack_top_ - mem_->stack_base) > cfg_.stack_limit) {
          flush();
          throw Trap{TrapKind::kStackOverflow, mod_->LocAt(pc),
                     "StackCheck: stack budget exceeded"};
        }
        cycles += cost.check;
        pc += 1;
        break;
      case BcOp::kDelayedPush:
        heap_->PushDelayedScope();
        cycles += cost.op;
        pc += 1;
        break;
      case BcOp::kDelayedPop:
        heap_->PopDelayedScope();
        cycles += cost.op;
        pc += 1;
        break;
      case BcOp::kTrap:
        flush();
        throw Trap{static_cast<TrapKind>(BcAuxOf(w0)), mod_->LocAt(pc), "explicit trap"};
      case BcOp::kCount_:
        flush();
        throw Trap{TrapKind::kUnreachable, mod_->LocAt(pc), "invalid opcode"};
    }
  }
}

}  // namespace ivy
