// BcVm: the zero-allocation bytecode interpreter over the shared Machine
// runtime (src/vm/machine.h).
//
// Where the tree-walking Vm allocates a register vector per call and chases
// blocks-of-structs per instruction, BcVm runs one flat uint32_t stream with
// persistent frame and register stacks that grow to steady state and are
// then reused — the dispatch loop performs no allocation at all. Everything
// observable (memory, heap, cycles, steps, traps, log, lock facts) goes
// through Machine, so a BcVm run is result-identical to a Vm run on every
// program; tests/bcvm_diff_test.cc holds that line.
//
// BcVm trusts its module: construct it only from CompileToBc output or a
// decoded image that passed VerifyBcModule.
#ifndef SRC_BC_BCVM_H_
#define SRC_BC_BCVM_H_

#include <memory>
#include <vector>

#include "src/bc/bytecode.h"
#include "src/vm/machine.h"

namespace ivy {

class BcVm : public Machine {
 public:
  // Shared ownership: workload runs spawn one BcVm per workload function
  // over a single compiled module.
  BcVm(std::shared_ptr<const BcModule> module, const TypeLayoutRegistry* layouts,
       VmConfig cfg);
  // Non-owning: `module` must outlive the VM.
  BcVm(const BcModule* module, const TypeLayoutRegistry* layouts, VmConfig cfg);

  const BcModule& module() const { return *mod_; }

  // Per-opcode executed-instruction counts, indexed by BcOp. Empty unless
  // VmConfig::profile was set. Counts observe the dispatch loop without
  // touching it: cycles/steps/traps are identical with profiling on or off.
  const std::vector<uint64_t>& op_profile() const { return op_counts_; }

 private:
  struct BcFrame {
    uint32_t func = 0;
    uint32_t pc = 0;        // resume point while a callee runs
    uint32_t reg_base = 0;  // window into regs_
    int32_t ret_dst = -1;
    uint64_t base = 0;      // kernel stack frame base
    int delayed_at_entry = 0;
  };

  int64_t ExecEntry(int func_id, const std::vector<int64_t>& args) override;
  int64_t ExecIrqHandler(int func_id, int64_t arg) override;

  // Runs func_id to completion on top of whatever frames are already live
  // (trigger_irq nests). Throws Trap; the catch in here rolls the frame and
  // register stacks back to the entry watermark before rethrowing, leaving
  // Machine state (stack_top_, locks, IRQ flag) dirty exactly as the tree VM
  // does.
  int64_t Run(int func_id, const int64_t* args, size_t nargs);
  int64_t RunLoop(size_t watermark);
  void PushBcFrame(int func_id, const int64_t* args, size_t nargs, int32_t ret_dst);
  void PopBcFrame();

  std::shared_ptr<const BcModule> owned_;
  const BcModule* mod_;

  std::vector<BcFrame> frames_;
  std::vector<int64_t> regs_;
  size_t regs_top_ = 0;
  std::vector<int64_t> call_scratch_;
  std::vector<uint64_t> op_counts_;  // sized BcOp::kCount_ when profiling
};

}  // namespace ivy

#endif  // SRC_BC_BCVM_H_
