// Compiles a lowered IrModule to ivybc bytecode (src/bc/bytecode.h).
//
// The translation is deliberately mechanical — one BC instruction per IR
// instruction, plus a synthesized kImplicitRet wherever a block can fall off
// its end (the tree VM's "empty continuation block" return). Keeping the
// instruction streams 1:1 is what makes step counts, cycle accounting, and
// trap ordering identical between the two interpreters by construction.
#ifndef SRC_BC_COMPILE_H_
#define SRC_BC_COMPILE_H_

#include <memory>
#include <string>

#include "src/bc/bytecode.h"
#include "src/ir/ir.h"

namespace ivy {

// Returns the compiled module, or null with *err set. The only failures are
// capacity limits the encoding cannot express (>= 65535 registers per
// function, > 255 call arguments); real programs never hit them.
std::shared_ptr<BcModule> CompileToBc(const IrModule& module, std::string* err);

}  // namespace ivy

#endif  // SRC_BC_COMPILE_H_
