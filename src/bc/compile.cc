#include "src/bc/compile.h"

#include <map>
#include <tuple>
#include <utility>

namespace ivy {

namespace {

// True for IR ops after which control never falls to the next instruction —
// everything else may need a synthesized implicit return at block end.
bool IsTerminator(Op op) {
  return op == Op::kRet || op == Op::kJump || op == Op::kBranch || op == Op::kTrap;
}

BcOp BinToBc(BinOp b) {
  switch (b) {
    case BinOp::kAdd: return BcOp::kAdd;
    case BinOp::kSub: return BcOp::kSub;
    case BinOp::kMul: return BcOp::kMul;
    case BinOp::kDiv: return BcOp::kDiv;
    case BinOp::kRem: return BcOp::kRem;
    case BinOp::kShl: return BcOp::kShl;
    case BinOp::kShr: return BcOp::kShr;
    case BinOp::kLt: return BcOp::kLt;
    case BinOp::kGt: return BcOp::kGt;
    case BinOp::kLe: return BcOp::kLe;
    case BinOp::kGe: return BcOp::kGe;
    case BinOp::kEq: return BcOp::kEq;
    case BinOp::kNe: return BcOp::kNe;
    case BinOp::kBitAnd: return BcOp::kBitAnd;
    case BinOp::kBitOr: return BcOp::kBitOr;
    case BinOp::kBitXor: return BcOp::kBitXor;
    case BinOp::kLogAnd: return BcOp::kLogAnd;
    case BinOp::kLogOr: return BcOp::kLogOr;
    case BinOp::kNone: break;
  }
  // BinOp::kNone computes 0 in the tree VM; the caller emits kConst 0.
  return BcOp::kConst;
}

class Compiler {
 public:
  explicit Compiler(const IrModule& ir) : ir_(ir), bc_(std::make_shared<BcModule>()) {}

  std::shared_ptr<BcModule> Run(std::string* err) {
    bc_->string_pool = ir_.string_pool;
    bc_->globals = ir_.globals;
    bc_->global_inits = GlobalInitsFromModule(ir_);
    bc_->globals_end = ir_.globals_end;
    for (const IrFunc& fn : ir_.funcs) {
      if (!CompileFunc(fn, err)) {
        return nullptr;
      }
    }
    return bc_;
  }

 private:
  void Emit(BcOp op, uint8_t aux, uint16_t r0) { bc_->code.push_back(BcWord0(op, aux, r0)); }
  void EmitWord(uint32_t w) { bc_->code.push_back(w); }
  void EmitImm64(int64_t v) {
    uint64_t u = static_cast<uint64_t>(v);
    bc_->code.push_back(static_cast<uint32_t>(u));
    bc_->code.push_back(static_cast<uint32_t>(u >> 32));
  }

  static uint16_t Reg(int32_t r) {
    return r < 0 ? kBcNoReg : static_cast<uint16_t>(r);
  }

  uint32_t InternLoc(const SourceLoc& loc) {
    auto key = std::make_tuple(loc.file, loc.line, loc.col);
    auto it = loc_index_.find(key);
    if (it != loc_index_.end()) {
      return it->second;
    }
    uint32_t idx = static_cast<uint32_t>(bc_->loc_pool.size());
    bc_->loc_pool.push_back(loc);
    loc_index_.emplace(key, idx);
    return idx;
  }

  // Records a run-length loc change point if `loc` differs from the one in
  // effect, so BcModule::LocAt(pc of next instruction) recovers it.
  void NoteLoc(const SourceLoc& loc) {
    if (have_loc_ && loc.file == last_loc_.file && loc.line == last_loc_.line &&
        loc.col == last_loc_.col) {
      return;
    }
    have_loc_ = true;
    last_loc_ = loc;
    bc_->pc_locs.push_back({static_cast<uint32_t>(bc_->code.size()), InternLoc(loc)});
  }

  bool CompileFunc(const IrFunc& fn, std::string* err) {
    BcFunc f;
    f.name = fn.decl != nullptr ? fn.decl->name : "";
    f.decl_loc = fn.decl != nullptr ? fn.decl->loc : SourceLoc{};
    f.defined = fn.blocks.empty() ? 0 : 1;
    f.entry_pc = static_cast<uint32_t>(bc_->code.size());
    f.num_regs = static_cast<uint32_t>(fn.num_regs);
    f.frame_size = fn.frame_size;
    f.param_offsets = fn.param_offsets;
    f.param_sizes = fn.param_sizes;
    f.ptr_slots = fn.ptr_slots;
    if (fn.num_regs >= static_cast<int>(kBcNoReg)) {
      *err = "function '" + f.name + "' needs " + std::to_string(fn.num_regs) +
             " registers; ivybc encodes at most 65534";
      return false;
    }

    std::vector<uint32_t> block_pc(fn.blocks.size(), 0);
    // (code index of the word to patch, target block id)
    std::vector<std::pair<size_t, size_t>> fixups;

    for (size_t bi = 0; bi < fn.blocks.size(); ++bi) {
      block_pc[bi] = static_cast<uint32_t>(bc_->code.size());
      const Block& blk = fn.blocks[bi];
      for (const Instr& in : blk.instrs) {
        if (!CompileInstr(fn, in, &fixups, err)) {
          return false;
        }
      }
      if (blk.instrs.empty() || !IsTerminator(blk.instrs.back().op)) {
        // The tree VM returns 0 when a block falls off its end; mirror that
        // with an explicit (uncounted) instruction.
        Emit(BcOp::kImplicitRet, 0, kBcNoReg);
      }
    }

    for (const auto& fix : fixups) {
      bc_->code[fix.first] = block_pc[fix.second];
    }
    f.code_end = static_cast<uint32_t>(bc_->code.size());
    bc_->funcs.push_back(std::move(f));
    return true;
  }

  bool CompileInstr(const IrFunc& fn, const Instr& in,
                    std::vector<std::pair<size_t, size_t>>* fixups, std::string* err) {
    NoteLoc(in.loc);
    switch (in.op) {
      case Op::kConst:
        Emit(BcOp::kConst, 0, Reg(in.dst));
        EmitImm64(in.imm);
        break;
      case Op::kMove:
        Emit(BcOp::kMove, 0, Reg(in.dst));
        EmitWord(static_cast<uint32_t>(in.a));
        break;
      case Op::kUn: {
        BcOp op = in.un == UnOp::kNeg      ? BcOp::kNeg
                  : in.un == UnOp::kLogNot ? BcOp::kLogNot
                                           : BcOp::kBitNot;
        Emit(op, 0, Reg(in.dst));
        EmitWord(static_cast<uint32_t>(in.a));
        break;
      }
      case Op::kBin:
        if (in.bin == BinOp::kNone) {
          Emit(BcOp::kConst, 0, Reg(in.dst));
          EmitImm64(0);
        } else {
          Emit(BinToBc(in.bin), 0, Reg(in.dst));
          EmitWord(static_cast<uint32_t>(in.a));
          EmitWord(static_cast<uint32_t>(in.b));
        }
        break;
      case Op::kLoad:
        Emit(BcOp::kLoad, in.size, Reg(in.dst));
        EmitWord(static_cast<uint32_t>(in.a));
        break;
      case Op::kStore:
        Emit(BcOp::kStore, in.size, Reg(in.a));
        EmitWord(static_cast<uint32_t>(in.b));
        break;
      case Op::kStorePtr:
        Emit(BcOp::kStorePtr, 0, Reg(in.a));
        EmitWord(static_cast<uint32_t>(in.b));
        break;
      case Op::kFrameAddr:
        Emit(BcOp::kFrameAddr, 0, Reg(in.dst));
        EmitImm64(in.imm);
        break;
      case Op::kGlobalAddr:
        Emit(BcOp::kGlobalAddr, 0, Reg(in.dst));
        EmitImm64(in.imm);
        break;
      case Op::kFuncConst:
        Emit(BcOp::kFuncConst, 0, Reg(in.dst));
        EmitWord(static_cast<uint32_t>(in.imm));
        break;
      case Op::kStrConst:
        Emit(BcOp::kStrConst, 0, Reg(in.dst));
        EmitWord(static_cast<uint32_t>(in.imm));
        break;
      case Op::kCall:
      case Op::kCallInd: {
        if (in.args.size() > 255) {
          *err = "call in '" + (fn.decl != nullptr ? fn.decl->name : std::string("?")) +
                 "' passes " + std::to_string(in.args.size()) +
                 " arguments; ivybc encodes at most 255";
          return false;
        }
        Emit(in.op == Op::kCall ? BcOp::kCall : BcOp::kCallInd,
             static_cast<uint8_t>(in.args.size()), Reg(in.dst));
        EmitWord(in.op == Op::kCall ? static_cast<uint32_t>(in.imm)
                                    : static_cast<uint32_t>(in.a));
        for (int32_t r : in.args) {
          EmitWord(static_cast<uint32_t>(r));
        }
        break;
      }
      case Op::kIntrinsic: {
        if (in.args.size() > 255) {
          *err = "intrinsic call passes too many arguments";
          return false;
        }
        Emit(BcOp::kIntrinsic, static_cast<uint8_t>(in.imm), Reg(in.dst));
        EmitWord(InternLoc(in.loc));
        EmitWord(static_cast<uint32_t>(in.alloc_type_id));
        EmitWord(static_cast<uint32_t>(in.args.size()));
        for (int32_t r : in.args) {
          EmitWord(static_cast<uint32_t>(r));
        }
        break;
      }
      case Op::kRet:
        Emit(BcOp::kRet, in.a >= 0 ? 1 : 0, Reg(in.a));
        break;
      case Op::kJump:
        Emit(BcOp::kJump, 0, kBcNoReg);
        fixups->push_back({bc_->code.size(), static_cast<size_t>(in.imm)});
        EmitWord(0);
        break;
      case Op::kBranch:
        Emit(BcOp::kBranch, 0, Reg(in.a));
        fixups->push_back({bc_->code.size(), static_cast<size_t>(in.imm)});
        EmitWord(0);
        fixups->push_back({bc_->code.size(), static_cast<size_t>(in.imm2)});
        EmitWord(0);
        break;
      case Op::kCheckNonNull:
        Emit(BcOp::kCheckNonNull, 0, Reg(in.a));
        break;
      case Op::kCheckBounds:
        Emit(BcOp::kCheckBounds, 0, Reg(in.a));
        EmitWord(in.b >= 0 ? static_cast<uint32_t>(in.b) : kBcNoWord);
        EmitWord(static_cast<uint32_t>(in.c));
        EmitImm64(in.imm);
        break;
      case Op::kCheckWhen:
        Emit(BcOp::kCheckWhen, 0, Reg(in.a));
        break;
      case Op::kCheckNtAdvance:
        Emit(BcOp::kCheckNtAdvance, 0, Reg(in.a));
        break;
      case Op::kCheckStack:
        Emit(BcOp::kCheckStack, 0, kBcNoReg);
        break;
      case Op::kDelayedPush:
        Emit(BcOp::kDelayedPush, 0, kBcNoReg);
        break;
      case Op::kDelayedPop:
        Emit(BcOp::kDelayedPop, 0, kBcNoReg);
        break;
      case Op::kTrap:
        Emit(BcOp::kTrap, static_cast<uint8_t>(in.imm), kBcNoReg);
        break;
    }
    return true;
  }

  const IrModule& ir_;
  std::shared_ptr<BcModule> bc_;
  std::map<std::tuple<int32_t, int32_t, int32_t>, uint32_t> loc_index_;
  bool have_loc_ = false;
  SourceLoc last_loc_;
};

}  // namespace

std::shared_ptr<BcModule> CompileToBc(const IrModule& module, std::string* err) {
  std::string local_err;
  if (err == nullptr) {
    err = &local_err;
  }
  return Compiler(module).Run(err);
}

}  // namespace ivy
