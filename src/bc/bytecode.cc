#include "src/bc/bytecode.h"

#include <algorithm>
#include <cstring>

#include "src/server/wire.h"
#include "src/vm/builtins.h"

namespace ivy {

uint32_t BcInstrLen(const uint32_t* w) {
  switch (BcOpOf(w[0])) {
    case BcOp::kConst:
    case BcOp::kFrameAddr:
    case BcOp::kGlobalAddr:
      return 3;
    case BcOp::kMove:
    case BcOp::kNeg:
    case BcOp::kLogNot:
    case BcOp::kBitNot:
    case BcOp::kLoad:
    case BcOp::kStore:
    case BcOp::kStorePtr:
    case BcOp::kFuncConst:
    case BcOp::kStrConst:
    case BcOp::kJump:
      return 2;
    case BcOp::kAdd:
    case BcOp::kSub:
    case BcOp::kMul:
    case BcOp::kDiv:
    case BcOp::kRem:
    case BcOp::kShl:
    case BcOp::kShr:
    case BcOp::kLt:
    case BcOp::kGt:
    case BcOp::kLe:
    case BcOp::kGe:
    case BcOp::kEq:
    case BcOp::kNe:
    case BcOp::kBitAnd:
    case BcOp::kBitOr:
    case BcOp::kBitXor:
    case BcOp::kLogAnd:
    case BcOp::kLogOr:
    case BcOp::kBranch:
      return 3;
    case BcOp::kCall:
    case BcOp::kCallInd:
      return 2 + BcAuxOf(w[0]);
    case BcOp::kIntrinsic:
      return 4 + w[3];
    case BcOp::kRet:
    case BcOp::kImplicitRet:
    case BcOp::kCheckNonNull:
    case BcOp::kCheckWhen:
    case BcOp::kCheckNtAdvance:
    case BcOp::kCheckStack:
    case BcOp::kDelayedPush:
    case BcOp::kDelayedPop:
    case BcOp::kTrap:
      return 1;
    case BcOp::kCheckBounds:
      return 5;
    case BcOp::kCount_:
      break;
  }
  return 0;
}

SourceLoc BcModule::LocAt(uint32_t pc) const {
  // Last change point with change.pc <= pc.
  auto it = std::upper_bound(
      pc_locs.begin(), pc_locs.end(), pc,
      [](uint32_t p, const std::pair<uint32_t, uint32_t>& e) { return p < e.first; });
  if (it == pc_locs.begin()) {
    return SourceLoc{};
  }
  uint32_t idx = std::prev(it)->second;
  return idx < loc_pool.size() ? loc_pool[idx] : SourceLoc{};
}

int BcModule::FindFunc(const std::string& name) const {
  for (size_t i = 0; i < funcs.size(); ++i) {
    if (!funcs[i].name.empty() && funcs[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

namespace {

void PutLoc(WireWriter& w, const SourceLoc& loc) {
  w.PutU32(static_cast<uint32_t>(loc.file));
  w.PutU32(static_cast<uint32_t>(loc.line));
  w.PutU32(static_cast<uint32_t>(loc.col));
}

bool GetLoc(WireReader& r, SourceLoc* loc) {
  uint32_t file = 0, line = 0, col = 0;
  if (!r.GetU32(&file) || !r.GetU32(&line) || !r.GetU32(&col)) {
    return false;
  }
  loc->file = static_cast<int32_t>(file);
  loc->line = static_cast<int32_t>(line);
  loc->col = static_cast<int32_t>(col);
  return true;
}

void PutI64Vec(WireWriter& w, const std::vector<int64_t>& v) {
  w.PutU32(static_cast<uint32_t>(v.size()));
  for (int64_t x : v) {
    w.PutU64(static_cast<uint64_t>(x));
  }
}

bool GetI64Vec(WireReader& r, std::vector<int64_t>* out) {
  uint32_t n = 0;
  if (!r.GetU32(&n)) {
    return false;
  }
  out->clear();
  out->reserve(std::min<uint32_t>(n, 1u << 16));
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t x = 0;
    if (!r.GetU64(&x)) {
      return false;
    }
    out->push_back(static_cast<int64_t>(x));
  }
  return true;
}

}  // namespace

std::string EncodeBcImage(const BcModule& m) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(m.code.size()));
  for (uint32_t word : m.code) {
    w.PutU32(word);
  }
  w.PutU32(static_cast<uint32_t>(m.funcs.size()));
  for (const BcFunc& f : m.funcs) {
    w.PutStr(f.name);
    PutLoc(w, f.decl_loc);
    w.PutU8(f.defined);
    w.PutU32(f.entry_pc);
    w.PutU32(f.code_end);
    w.PutU32(f.num_regs);
    w.PutU64(static_cast<uint64_t>(f.frame_size));
    PutI64Vec(w, f.param_offsets);
    w.PutU32(static_cast<uint32_t>(f.param_sizes.size()));
    for (uint8_t s : f.param_sizes) {
      w.PutU8(s);
    }
    PutI64Vec(w, f.ptr_slots);
  }
  w.PutStrVec(m.string_pool);
  w.PutU32(static_cast<uint32_t>(m.globals.size()));
  for (const GlobalSlot& g : m.globals) {
    w.PutU64(g.addr);
    w.PutU64(static_cast<uint64_t>(g.size));
    w.PutU32(static_cast<uint32_t>(g.type_id));
    PutI64Vec(w, g.ptr_offsets);
  }
  w.PutU32(static_cast<uint32_t>(m.global_inits.size()));
  for (const GlobalInit& gi : m.global_inits) {
    w.PutU64(gi.addr);
    w.PutU8(gi.size);
    w.PutU8(gi.is_string);
    w.PutU64(static_cast<uint64_t>(gi.value));
  }
  w.PutU64(m.globals_end);
  w.PutU32(static_cast<uint32_t>(m.loc_pool.size()));
  for (const SourceLoc& loc : m.loc_pool) {
    PutLoc(w, loc);
  }
  w.PutU32(static_cast<uint32_t>(m.pc_locs.size()));
  for (const auto& e : m.pc_locs) {
    w.PutU32(e.first);
    w.PutU32(e.second);
  }

  std::string payload = w.Take();
  std::string image;
  image.reserve(payload.size() + 8);
  image.push_back(static_cast<char>(kBcMagic0));
  image.push_back(static_cast<char>(kBcMagic1));
  image.push_back(static_cast<char>(kBcVersion));
  image.push_back(0);
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    image.push_back(static_cast<char>((len >> (8 * i)) & 0xFF));
  }
  image += payload;
  return image;
}

bool DecodeBcImage(const std::string& bytes, BcModule* out, std::string* err) {
  auto fail = [err](const char* why) {
    if (err != nullptr) {
      *err = why;
    }
    return false;
  };
  if (bytes.size() < 8) {
    return fail("image shorter than header");
  }
  const uint8_t* h = reinterpret_cast<const uint8_t*>(bytes.data());
  if (h[0] != kBcMagic0 || h[1] != kBcMagic1) {
    return fail("bad magic");
  }
  if (h[2] != kBcVersion) {
    return fail("unsupported image version");
  }
  uint32_t len = static_cast<uint32_t>(h[4]) | static_cast<uint32_t>(h[5]) << 8 |
                 static_cast<uint32_t>(h[6]) << 16 | static_cast<uint32_t>(h[7]) << 24;
  if (bytes.size() != static_cast<size_t>(len) + 8) {
    return fail("payload length mismatch");
  }

  std::string payload = bytes.substr(8);
  WireReader r(payload);
  BcModule m;

  uint32_t n = 0;
  if (!r.GetU32(&n)) {
    return fail("truncated code");
  }
  m.code.reserve(std::min<uint32_t>(n, 1u << 20));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t word = 0;
    if (!r.GetU32(&word)) {
      return fail("truncated code");
    }
    m.code.push_back(word);
  }

  if (!r.GetU32(&n)) {
    return fail("truncated function table");
  }
  m.funcs.reserve(std::min<uint32_t>(n, 1u << 16));
  for (uint32_t i = 0; i < n; ++i) {
    BcFunc f;
    uint64_t frame_size = 0;
    uint32_t nsizes = 0;
    if (!r.GetStr(&f.name) || !GetLoc(r, &f.decl_loc) || !r.GetU8(&f.defined) ||
        !r.GetU32(&f.entry_pc) || !r.GetU32(&f.code_end) || !r.GetU32(&f.num_regs) ||
        !r.GetU64(&frame_size) || !GetI64Vec(r, &f.param_offsets) || !r.GetU32(&nsizes)) {
      return fail("truncated function entry");
    }
    f.frame_size = static_cast<int64_t>(frame_size);
    f.param_sizes.reserve(std::min<uint32_t>(nsizes, 1u << 10));
    for (uint32_t j = 0; j < nsizes; ++j) {
      uint8_t s = 0;
      if (!r.GetU8(&s)) {
        return fail("truncated function entry");
      }
      f.param_sizes.push_back(s);
    }
    if (!GetI64Vec(r, &f.ptr_slots)) {
      return fail("truncated function entry");
    }
    m.funcs.push_back(std::move(f));
  }

  if (!r.GetStrVec(&m.string_pool)) {
    return fail("truncated string pool");
  }

  if (!r.GetU32(&n)) {
    return fail("truncated globals");
  }
  m.globals.reserve(std::min<uint32_t>(n, 1u << 16));
  for (uint32_t i = 0; i < n; ++i) {
    GlobalSlot g;
    uint64_t size = 0;
    uint32_t type_id = 0;
    if (!r.GetU64(&g.addr) || !r.GetU64(&size) || !r.GetU32(&type_id) ||
        !GetI64Vec(r, &g.ptr_offsets)) {
      return fail("truncated global entry");
    }
    g.size = static_cast<int64_t>(size);
    g.type_id = static_cast<int>(type_id);
    m.globals.push_back(std::move(g));
  }

  if (!r.GetU32(&n)) {
    return fail("truncated global inits");
  }
  m.global_inits.reserve(std::min<uint32_t>(n, 1u << 16));
  for (uint32_t i = 0; i < n; ++i) {
    GlobalInit gi;
    uint64_t value = 0;
    if (!r.GetU64(&gi.addr) || !r.GetU8(&gi.size) || !r.GetU8(&gi.is_string) ||
        !r.GetU64(&value)) {
      return fail("truncated global init");
    }
    gi.value = static_cast<int64_t>(value);
    m.global_inits.push_back(gi);
  }

  if (!r.GetU64(&m.globals_end)) {
    return fail("truncated globals_end");
  }

  if (!r.GetU32(&n)) {
    return fail("truncated loc pool");
  }
  m.loc_pool.reserve(std::min<uint32_t>(n, 1u << 20));
  for (uint32_t i = 0; i < n; ++i) {
    SourceLoc loc;
    if (!GetLoc(r, &loc)) {
      return fail("truncated loc pool");
    }
    m.loc_pool.push_back(loc);
  }

  if (!r.GetU32(&n)) {
    return fail("truncated pc_locs");
  }
  m.pc_locs.reserve(std::min<uint32_t>(n, 1u << 20));
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t pc = 0, idx = 0;
    if (!r.GetU32(&pc) || !r.GetU32(&idx)) {
      return fail("truncated pc_locs");
    }
    m.pc_locs.push_back({pc, idx});
  }

  if (!r.Finish()) {
    return fail("trailing bytes after payload");
  }
  *out = std::move(m);
  return true;
}

// ---------------------------------------------------------------------------
// Disassembly
// ---------------------------------------------------------------------------

const char* BcOpName(BcOp op) {
  switch (op) {
    case BcOp::kConst: return "const";
    case BcOp::kMove: return "move";
    case BcOp::kNeg: return "neg";
    case BcOp::kLogNot: return "lognot";
    case BcOp::kBitNot: return "bitnot";
    case BcOp::kAdd: return "add";
    case BcOp::kSub: return "sub";
    case BcOp::kMul: return "mul";
    case BcOp::kDiv: return "div";
    case BcOp::kRem: return "rem";
    case BcOp::kShl: return "shl";
    case BcOp::kShr: return "shr";
    case BcOp::kLt: return "lt";
    case BcOp::kGt: return "gt";
    case BcOp::kLe: return "le";
    case BcOp::kGe: return "ge";
    case BcOp::kEq: return "eq";
    case BcOp::kNe: return "ne";
    case BcOp::kBitAnd: return "bitand";
    case BcOp::kBitOr: return "bitor";
    case BcOp::kBitXor: return "bitxor";
    case BcOp::kLogAnd: return "logand";
    case BcOp::kLogOr: return "logor";
    case BcOp::kLoad: return "load";
    case BcOp::kStore: return "store";
    case BcOp::kStorePtr: return "storeptr";
    case BcOp::kFrameAddr: return "frameaddr";
    case BcOp::kGlobalAddr: return "globaladdr";
    case BcOp::kFuncConst: return "funcconst";
    case BcOp::kStrConst: return "strconst";
    case BcOp::kCall: return "call";
    case BcOp::kCallInd: return "callind";
    case BcOp::kIntrinsic: return "intrinsic";
    case BcOp::kRet: return "ret";
    case BcOp::kImplicitRet: return "implicitret";
    case BcOp::kJump: return "jump";
    case BcOp::kBranch: return "branch";
    case BcOp::kCheckNonNull: return "check.nonnull";
    case BcOp::kCheckBounds: return "check.bounds";
    case BcOp::kCheckWhen: return "check.when";
    case BcOp::kCheckNtAdvance: return "check.ntadvance";
    case BcOp::kCheckStack: return "check.stack";
    case BcOp::kDelayedPush: return "delayed.push";
    case BcOp::kDelayedPop: return "delayed.pop";
    case BcOp::kTrap: return "trap";
    case BcOp::kCount_: break;
  }
  return "<bad-op>";
}

namespace {

int64_t Imm64At(const uint32_t* w) {
  return static_cast<int64_t>(static_cast<uint64_t>(w[0]) |
                              static_cast<uint64_t>(w[1]) << 32);
}

std::string RegName(uint32_t r) {
  return r == kBcNoReg || r == kBcNoWord ? std::string("_") : "r" + std::to_string(r);
}

}  // namespace

std::string DisassembleBc(const BcModule& m) {
  std::string out;
  char buf[160];
  for (size_t fi = 0; fi < m.funcs.size(); ++fi) {
    const BcFunc& f = m.funcs[fi];
    std::snprintf(buf, sizeof buf, "func %zu %s%s  regs=%u frame=%lld  [%u, %u)\n", fi,
                  f.name.empty() ? "?" : f.name.c_str(), f.defined != 0 ? "" : " (undefined)",
                  f.num_regs, static_cast<long long>(f.frame_size), f.entry_pc, f.code_end);
    out += buf;
    uint32_t pc = f.entry_pc;
    while (pc < f.code_end && pc < m.code.size()) {
      const uint32_t* w = m.code.data() + pc;
      uint32_t len = BcInstrLen(w);
      if (len == 0 || pc + len > m.code.size()) {
        std::snprintf(buf, sizeof buf, "  %6u  <bad instruction %08x>\n", pc, w[0]);
        out += buf;
        break;
      }
      BcOp op = BcOpOf(w[0]);
      uint8_t aux = BcAuxOf(w[0]);
      uint16_t r0 = BcR0Of(w[0]);
      std::snprintf(buf, sizeof buf, "  %6u  %-15s", pc, BcOpName(op));
      out += buf;
      switch (op) {
        case BcOp::kConst:
        case BcOp::kFrameAddr:
        case BcOp::kGlobalAddr:
          out += RegName(r0) + ", " + std::to_string(Imm64At(w + 1));
          break;
        case BcOp::kMove:
        case BcOp::kNeg:
        case BcOp::kLogNot:
        case BcOp::kBitNot:
          out += RegName(r0) + ", " + RegName(w[1]);
          break;
        case BcOp::kAdd:
        case BcOp::kSub:
        case BcOp::kMul:
        case BcOp::kDiv:
        case BcOp::kRem:
        case BcOp::kShl:
        case BcOp::kShr:
        case BcOp::kLt:
        case BcOp::kGt:
        case BcOp::kLe:
        case BcOp::kGe:
        case BcOp::kEq:
        case BcOp::kNe:
        case BcOp::kBitAnd:
        case BcOp::kBitOr:
        case BcOp::kBitXor:
        case BcOp::kLogAnd:
        case BcOp::kLogOr:
          out += RegName(r0) + ", " + RegName(w[1]) + ", " + RegName(w[2]);
          break;
        case BcOp::kLoad:
          out += RegName(r0) + ", [" + RegName(w[1]) + "], size=" + std::to_string(aux);
          break;
        case BcOp::kStore:
          out += "[" + RegName(r0) + "], " + RegName(w[1]) + ", size=" + std::to_string(aux);
          break;
        case BcOp::kStorePtr:
          out += "[" + RegName(r0) + "], " + RegName(w[1]);
          break;
        case BcOp::kFuncConst: {
          out += RegName(r0) + ", func " + std::to_string(w[1]);
          if (w[1] < m.funcs.size() && !m.funcs[w[1]].name.empty()) {
            out += " (" + m.funcs[w[1]].name + ")";
          }
          break;
        }
        case BcOp::kStrConst: {
          out += RegName(r0) + ", str " + std::to_string(w[1]);
          if (w[1] < m.string_pool.size()) {
            out += " \"" + m.string_pool[w[1]] + "\"";
          }
          break;
        }
        case BcOp::kCall:
        case BcOp::kCallInd: {
          out += RegName(r0) + ", ";
          if (op == BcOp::kCall) {
            out += "func " + std::to_string(w[1]);
            if (w[1] < m.funcs.size() && !m.funcs[w[1]].name.empty()) {
              out += " (" + m.funcs[w[1]].name + ")";
            }
          } else {
            out += "*" + RegName(w[1]);
          }
          out += " (";
          for (uint32_t i = 0; i < aux; ++i) {
            out += (i != 0 ? ", " : "") + RegName(w[2 + i]);
          }
          out += ")";
          break;
        }
        case BcOp::kIntrinsic: {
          out += RegName(r0);
          out += ", ";
          out += BuiltinName(static_cast<Builtin>(aux));
          out += " (";
          for (uint32_t i = 0; i < w[3]; ++i) {
            out += (i != 0 ? ", " : "") + RegName(w[4 + i]);
          }
          out += ")";
          break;
        }
        case BcOp::kRet:
          out += aux != 0 ? RegName(r0) : std::string("void");
          break;
        case BcOp::kImplicitRet:
        case BcOp::kCheckStack:
        case BcOp::kDelayedPush:
        case BcOp::kDelayedPop:
          break;
        case BcOp::kJump:
          out += "-> " + std::to_string(w[1]);
          break;
        case BcOp::kBranch:
          out += RegName(r0) + " ? " + std::to_string(w[1]) + " : " + std::to_string(w[2]);
          break;
        case BcOp::kCheckNonNull:
        case BcOp::kCheckWhen:
        case BcOp::kCheckNtAdvance:
          out += RegName(r0);
          break;
        case BcOp::kCheckBounds:
          out += RegName(r0) + " in [" + (w[1] == kBcNoWord ? "0" : RegName(w[1])) + ", " +
                 RegName(w[2]) + ") +" + std::to_string(Imm64At(w + 3));
          break;
        case BcOp::kTrap:
          out += TrapKindName(static_cast<TrapKind>(aux));
          break;
        case BcOp::kCount_:
          break;
      }
      out += "\n";
      pc += len;
    }
  }
  return out;
}

}  // namespace ivy
