// Static verification of decoded ivybc images.
//
// DecodeBcImage only proves an image parses; this pass proves the
// interpreter can trust it: every opcode valid, every instruction fully
// inside its function, every register below num_regs, every jump landing on
// an instruction start, every pool index in range, and no function that can
// fall off its last instruction. BcVm runs verified images without any
// per-instruction bounds checks — that is where the dispatch loop's speed
// comes from, so nothing unverified may reach it.
#ifndef SRC_BC_VERIFY_H_
#define SRC_BC_VERIFY_H_

#include <string>

#include "src/bc/bytecode.h"

namespace ivy {

// Returns true if the module is safe to execute; otherwise false with *err
// describing the first violation (function index, pc, and reason).
bool VerifyBcModule(const BcModule& m, std::string* err);

}  // namespace ivy

#endif  // SRC_BC_VERIFY_H_
