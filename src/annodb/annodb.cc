#include "src/annodb/annodb.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "src/ccount/layouts.h"
#include "src/tool/analysis_context.h"
#include "src/tool/pipeline.h"

namespace ivy {

AnnoDb AnnoDb::Extract(const Program& prog, const Sema& sema, const IrModule& /*module*/,
                       const BlockStopReport* blockstop) {
  AnnoDb db;
  for (const auto& [name, fn] : sema.func_map()) {
    if (fn->func_id < 0) {
      continue;
    }
    FuncFacts facts;
    facts.name = name;
    for (const Symbol* p : fn->params) {
      facts.param_annots.push_back(TypeToString(p->type));
    }
    facts.blocking = fn->attrs.blocking;
    facts.noblock = fn->attrs.noblock;
    facts.blocking_if_param = fn->attrs.blocking_if_param;
    facts.errcodes = fn->attrs.errcodes;
    facts.frame_size = fn->frame_size;
    if (blockstop != nullptr) {
      facts.may_block = blockstop->mayblock.count(name) != 0;
    }
    db.funcs_[name] = std::move(facts);
  }
  TypeLayoutRegistry layouts = TypeLayoutRegistry::Build(prog);
  for (const RecordDecl* rec : prog.records) {
    if (rec->type_id < 0 || rec->name.empty()) {
      continue;
    }
    RecordFacts facts;
    facts.name = rec->name;
    facts.size = rec->size;
    const TypeLayout* layout = layouts.Get(rec->type_id);
    if (layout != nullptr) {
      facts.ptr_offsets = layout->ptr_offsets;
    }
    db.records_[rec->name] = std::move(facts);
  }
  return db;
}

AnnoDb AnnoDb::Extract(AnalysisContext& ctx, const PipelineResult* pipeline) {
  const BlockStopReport* blockstop = nullptr;
  if (pipeline != nullptr) {
    if (const ToolResult* r = pipeline->ResultFor("blockstop")) {
      blockstop = r->DetailAs<BlockStopReport>();
    }
  }
  AnnoDb db = Extract(ctx.prog(), ctx.sema(), ctx.module(), blockstop);
  if (pipeline != nullptr) {
    db.SetFindings(pipeline->findings, &ctx.sm());
  }
  return db;
}

Json AnnoDb::ToJson() const {
  Json root = Json::MakeObject();
  Json& funcs = root["functions"];
  funcs = Json::MakeObject();
  for (const auto& [name, f] : funcs_) {
    Json& j = funcs[name];
    j = Json::MakeObject();
    Json params = Json::MakeArray();
    for (const std::string& p : f.param_annots) {
      params.Append(Json::MakeString(p));
    }
    j["params"] = std::move(params);
    j["blocking"] = Json::MakeBool(f.blocking);
    j["noblock"] = Json::MakeBool(f.noblock);
    j["may_block"] = Json::MakeBool(f.may_block);
    j["blocking_if_param"] = Json::MakeInt(f.blocking_if_param);
    Json errs = Json::MakeArray();
    for (int64_t e : f.errcodes) {
      errs.Append(Json::MakeInt(e));
    }
    j["errcodes"] = std::move(errs);
    j["frame_size"] = Json::MakeInt(f.frame_size);
  }
  Json& records = root["records"];
  records = Json::MakeObject();
  for (const auto& [name, r] : records_) {
    Json& j = records[name];
    j = Json::MakeObject();
    j["size"] = Json::MakeInt(r.size);
    Json offs = Json::MakeArray();
    for (int64_t o : r.ptr_offsets) {
      offs.Append(Json::MakeInt(o));
    }
    j["ptr_offsets"] = std::move(offs);
  }
  if (!findings_.empty()) {
    Json fs = Json::MakeArray();
    for (const Finding& f : findings_) {
      fs.Append(f.ToJson(findings_sm_));
    }
    root["findings"] = std::move(fs);
  }
  return root;
}

AnnoDb AnnoDb::FromJson(const Json& j) {
  AnnoDb db;
  if (const Json* funcs = j.Find("functions")) {
    for (const auto& [name, f] : funcs->object()) {
      FuncFacts facts;
      facts.name = name;
      if (const Json* params = f.Find("params")) {
        for (const Json& p : params->array()) {
          facts.param_annots.push_back(p.AsString());
        }
      }
      if (const Json* b = f.Find("blocking")) {
        facts.blocking = b->AsBool();
      }
      if (const Json* b = f.Find("noblock")) {
        facts.noblock = b->AsBool();
      }
      if (const Json* b = f.Find("may_block")) {
        facts.may_block = b->AsBool();
      }
      if (const Json* b = f.Find("blocking_if_param")) {
        facts.blocking_if_param = static_cast<int>(b->AsInt(-1));
      }
      if (const Json* errs = f.Find("errcodes")) {
        for (const Json& e : errs->array()) {
          facts.errcodes.push_back(e.AsInt());
        }
      }
      if (const Json* fs = f.Find("frame_size")) {
        facts.frame_size = fs->AsInt();
      }
      db.funcs_[name] = std::move(facts);
    }
  }
  if (const Json* records = j.Find("records")) {
    for (const auto& [name, r] : records->object()) {
      RecordFacts facts;
      facts.name = name;
      if (const Json* s = r.Find("size")) {
        facts.size = s->AsInt();
      }
      if (const Json* offs = r.Find("ptr_offsets")) {
        for (const Json& o : offs->array()) {
          facts.ptr_offsets.push_back(o.AsInt());
        }
      }
      db.records_[name] = std::move(facts);
    }
  }
  if (const Json* fs = j.Find("findings")) {
    for (const Json& f : fs->array()) {
      db.findings_.push_back(Finding::FromJson(f));
    }
  }
  return db;
}

int AnnoDb::Merge(const AnnoDb& other) {
  int added = 0;
  for (const auto& [name, facts] : other.funcs_) {
    auto [it, inserted] = funcs_.emplace(name, facts);
    if (inserted) {
      ++added;
    } else {
      // Conservative union of behavioural facts.
      it->second.blocking = it->second.blocking || facts.blocking;
      it->second.may_block = it->second.may_block || facts.may_block;
      it->second.noblock = it->second.noblock || facts.noblock;
      if (it->second.errcodes.empty()) {
        it->second.errcodes = facts.errcodes;
      }
      if (it->second.param_annots.empty()) {
        it->second.param_annots = facts.param_annots;
      }
    }
  }
  for (const auto& [name, facts] : other.records_) {
    if (records_.emplace(name, facts).second) {
      ++added;
    }
  }
  if (!other.findings_.empty()) {
    // Dedup keyed on (module, tool, loc, message) — the repository policy
    // from the ROADMAP plus per-module provenance, so RetractModule can
    // remove exactly one module's contribution. Known consequence:
    // location-free findings with identical messages *within one module*
    // (e.g. two stackcheck overruns quoting the same byte count) coalesce
    // into one record even when their witness chains differ; the repository
    // keeps the first witness it saw.
    using FindingKey =
        std::tuple<std::string, std::string, int32_t, int32_t, int32_t, std::string>;
    std::set<FindingKey> seen;
    for (const Finding& f : findings_) {
      seen.insert({f.module, f.tool, f.loc.file, f.loc.line, f.loc.col, f.message});
    }
    for (const Finding& f : other.findings_) {
      if (seen.insert({f.module, f.tool, f.loc.file, f.loc.line, f.loc.col, f.message})
              .second) {
        findings_.push_back(f);
      }
    }
    // Imported findings carry file ids from a *foreign* compilation;
    // rendering them through this db's SourceManager would mislabel every
    // location. Fall back to raw triples for the whole merged set.
    findings_sm_ = nullptr;
  }
  return added;
}

int AnnoDb::RetractModule(const std::string& module) {
  size_t before = findings_.size();
  findings_.erase(std::remove_if(findings_.begin(), findings_.end(),
                                 [&module](const Finding& f) { return f.module == module; }),
                  findings_.end());
  return static_cast<int>(before - findings_.size());
}

int AnnoDb::ApplyAttributes(Program* prog) const {
  int updated = 0;
  for (FuncDecl* fn : prog->funcs) {
    auto it = funcs_.find(fn->name);
    if (it == funcs_.end()) {
      continue;
    }
    bool changed = false;
    if (it->second.blocking && !fn->attrs.blocking) {
      fn->attrs.blocking = true;
      changed = true;
    }
    if (it->second.noblock && !fn->attrs.noblock) {
      fn->attrs.noblock = true;
      changed = true;
    }
    if (!it->second.errcodes.empty() && fn->attrs.errcodes.empty()) {
      fn->attrs.errcodes = it->second.errcodes;
      changed = true;
    }
    if (it->second.blocking_if_param >= 0 && fn->attrs.blocking_if_param < 0) {
      fn->attrs.blocking_if_param = it->second.blocking_if_param;
      changed = true;
    }
    if (changed) {
      ++updated;
    }
  }
  return updated;
}

}  // namespace ivy
