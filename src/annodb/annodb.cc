#include "src/annodb/annodb.h"

#include <algorithm>
#include <set>
#include <tuple>

#include "src/ccount/layouts.h"
#include "src/support/numbers.h"
#include "src/tool/analysis_context.h"
#include "src/tool/pipeline.h"

namespace ivy {

AnnoDb AnnoDb::Extract(const Program& prog, const Sema& sema, const IrModule& /*module*/,
                       const BlockStopReport* blockstop) {
  AnnoDb db;
  for (const auto& [name, fn] : sema.func_map()) {
    if (fn->func_id < 0) {
      continue;
    }
    FuncFacts facts;
    facts.name = name;
    for (const Symbol* p : fn->params) {
      facts.param_annots.push_back(TypeToString(p->type));
    }
    facts.blocking = fn->attrs.blocking;
    facts.noblock = fn->attrs.noblock;
    facts.blocking_if_param = fn->attrs.blocking_if_param;
    facts.errcodes = fn->attrs.errcodes;
    facts.frame_size = fn->frame_size;
    std::string key(name);
    if (blockstop != nullptr) {
      facts.may_block = blockstop->mayblock.count(key) != 0;
    }
    db.funcs_[std::move(key)] = std::move(facts);
  }
  TypeLayoutRegistry layouts = TypeLayoutRegistry::Build(prog);
  for (const RecordDecl* rec : prog.records) {
    if (rec->type_id < 0 || rec->name.empty()) {
      continue;
    }
    RecordFacts facts;
    facts.name = rec->name;
    facts.size = rec->size;
    const TypeLayout* layout = layouts.Get(rec->type_id);
    if (layout != nullptr) {
      facts.ptr_offsets = layout->ptr_offsets;
    }
    db.records_[rec->name] = std::move(facts);
  }
  return db;
}

AnnoDb AnnoDb::Extract(AnalysisContext& ctx, const PipelineResult* pipeline) {
  const BlockStopReport* blockstop = nullptr;
  if (pipeline != nullptr) {
    if (const ToolResult* r = pipeline->ResultFor("blockstop")) {
      blockstop = r->DetailAs<BlockStopReport>();
    }
  }
  AnnoDb db = Extract(ctx.prog(), ctx.sema(), ctx.module(), blockstop);
  if (pipeline != nullptr) {
    db.SetFindings(pipeline->findings, &ctx.sm());
  }
  return db;
}

namespace {

Json StringsToJson(const std::vector<std::string>& v) {
  Json arr = Json::MakeArray();
  for (const std::string& s : v) {
    arr.Append(Json::MakeString(s));
  }
  return arr;
}

std::vector<std::string> StringsFromJson(const Json* j) {
  std::vector<std::string> out;
  if (j != nullptr) {
    for (const Json& s : j->array()) {
      out.push_back(s.AsString());
    }
  }
  return out;
}

}  // namespace

Json FuncSummary::ToJson() const {
  Json j = Json::MakeObject();
  j["module"] = Json::MakeString(module);
  j["function"] = Json::MakeString(function);
  j["defined"] = Json::MakeBool(defined);
  if (defined) {
    j["may_block"] = Json::MakeBool(may_block);
    if (!block_witness.empty()) {
      j["block_witness"] = Json::MakeString(block_witness);
    }
    j["blocking"] = Json::MakeBool(blocking);
    j["noblock"] = Json::MakeBool(noblock);
    j["blocking_if_param"] = Json::MakeInt(blocking_if_param);
    j["returns_error"] = Json::MakeBool(returns_error);
    if (!errcodes.empty()) {
      Json errs = Json::MakeArray();
      for (int64_t e : errcodes) {
        errs.Append(Json::MakeInt(e));
      }
      j["errcodes"] = std::move(errs);
    }
    j["frame_size"] = Json::MakeInt(frame_size);
    if (!callees.empty()) {
      j["callees"] = StringsToJson(callees);
    }
    if (!returns_points.empty()) {
      j["returns_points"] = StringsToJson(returns_points);
    }
    if (!locks_acquired.empty()) {
      j["locks_acquired"] = StringsToJson(locks_acquired);
    }
    if (stack_below >= 0) {
      j["stack_below"] = Json::MakeInt(stack_below);
    }
    if (cross_recursive) {
      j["cross_recursive"] = Json::MakeBool(true);
    }
  } else {
    j["entered_atomic"] = Json::MakeBool(entered_atomic);
    j["entered_in_irq"] = Json::MakeBool(entered_in_irq);
    if (!param_points.empty()) {
      Json pp = Json::MakeObject();
      for (const auto& [idx, names] : param_points) {
        pp[std::to_string(idx)] = StringsToJson(names);
      }
      j["param_points"] = std::move(pp);
    }
  }
  return j;
}

FuncSummary FuncSummary::FromJson(const Json& j) {
  FuncSummary s;
  std::string ignored;
  FromJson(j, &s, &ignored);
  return s;
}

bool FuncSummary::FromJson(const Json& j, FuncSummary* out, std::string* error) {
  FuncSummary& s = *out;
  if (const Json* v = j.Find("module")) {
    s.module = v->AsString();
  }
  if (const Json* v = j.Find("function")) {
    s.function = v->AsString();
  }
  if (const Json* v = j.Find("defined")) {
    s.defined = v->AsBool();
  }
  if (const Json* v = j.Find("may_block")) {
    s.may_block = v->AsBool();
  }
  if (const Json* v = j.Find("block_witness")) {
    s.block_witness = v->AsString();
  }
  if (const Json* v = j.Find("blocking")) {
    s.blocking = v->AsBool();
  }
  if (const Json* v = j.Find("noblock")) {
    s.noblock = v->AsBool();
  }
  if (const Json* v = j.Find("blocking_if_param")) {
    s.blocking_if_param = static_cast<int>(v->AsInt(-1));
  }
  if (const Json* v = j.Find("returns_error")) {
    s.returns_error = v->AsBool();
  }
  if (const Json* v = j.Find("errcodes")) {
    for (const Json& e : v->array()) {
      s.errcodes.push_back(e.AsInt());
    }
  }
  if (const Json* v = j.Find("frame_size")) {
    s.frame_size = v->AsInt();
  }
  s.callees = StringsFromJson(j.Find("callees"));
  s.returns_points = StringsFromJson(j.Find("returns_points"));
  s.locks_acquired = StringsFromJson(j.Find("locks_acquired"));
  if (const Json* v = j.Find("stack_below")) {
    s.stack_below = v->AsInt(-1);
  }
  if (const Json* v = j.Find("cross_recursive")) {
    s.cross_recursive = v->AsBool();
  }
  if (const Json* v = j.Find("entered_atomic")) {
    s.entered_atomic = v->AsBool();
  }
  if (const Json* v = j.Find("entered_in_irq")) {
    s.entered_in_irq = v->AsBool();
  }
  if (const Json* v = j.Find("param_points")) {
    for (const auto& [key, names] : v->object()) {
      // The writer emits std::to_string(idx) keys; anything else ("abc",
      // "01", "7x") used to atoi-alias onto parameter 0 and corrupt the
      // imported escape sets. 4095 comfortably exceeds any real arity.
      int idx = 0;
      if (!ParseIndexStrict(key, 4095, &idx)) {
        if (error != nullptr) {
          *error = "bad param_points index \"" + key + "\" in summary row " +
                   s.module + ":" + s.function;
        }
        return false;
      }
      s.param_points[idx] = StringsFromJson(&names);
    }
  }
  return true;
}

Json AnnoDb::ToJson() const {
  Json root = Json::MakeObject();
  Json& funcs = root["functions"];
  funcs = Json::MakeObject();
  for (const auto& [name, f] : funcs_) {
    Json& j = funcs[name];
    j = Json::MakeObject();
    Json params = Json::MakeArray();
    for (const std::string& p : f.param_annots) {
      params.Append(Json::MakeString(p));
    }
    j["params"] = std::move(params);
    j["blocking"] = Json::MakeBool(f.blocking);
    j["noblock"] = Json::MakeBool(f.noblock);
    j["may_block"] = Json::MakeBool(f.may_block);
    j["blocking_if_param"] = Json::MakeInt(f.blocking_if_param);
    Json errs = Json::MakeArray();
    for (int64_t e : f.errcodes) {
      errs.Append(Json::MakeInt(e));
    }
    j["errcodes"] = std::move(errs);
    j["frame_size"] = Json::MakeInt(f.frame_size);
    if (!f.module.empty()) {
      j["module"] = Json::MakeString(f.module);
    }
  }
  Json& records = root["records"];
  records = Json::MakeObject();
  for (const auto& [name, r] : records_) {
    Json& j = records[name];
    j = Json::MakeObject();
    j["size"] = Json::MakeInt(r.size);
    Json offs = Json::MakeArray();
    for (int64_t o : r.ptr_offsets) {
      offs.Append(Json::MakeInt(o));
    }
    j["ptr_offsets"] = std::move(offs);
    if (!r.module.empty()) {
      j["module"] = Json::MakeString(r.module);
    }
  }
  if (!summaries_.empty()) {
    Json rows = Json::MakeArray();
    for (const auto& [key, row] : summaries_) {
      rows.Append(row.ToJson());
    }
    root["summaries"] = std::move(rows);
  }
  if (!findings_.empty()) {
    Json fs = Json::MakeArray();
    for (const Finding& f : findings_) {
      fs.Append(f.ToJson(findings_sm_));
    }
    root["findings"] = std::move(fs);
  }
  return root;
}

AnnoDb AnnoDb::FromJson(const Json& j, std::vector<std::string>* errors) {
  AnnoDb db;
  if (const Json* funcs = j.Find("functions")) {
    for (const auto& [name, f] : funcs->object()) {
      FuncFacts facts;
      facts.name = name;
      if (const Json* params = f.Find("params")) {
        for (const Json& p : params->array()) {
          facts.param_annots.push_back(p.AsString());
        }
      }
      if (const Json* b = f.Find("blocking")) {
        facts.blocking = b->AsBool();
      }
      if (const Json* b = f.Find("noblock")) {
        facts.noblock = b->AsBool();
      }
      if (const Json* b = f.Find("may_block")) {
        facts.may_block = b->AsBool();
      }
      if (const Json* b = f.Find("blocking_if_param")) {
        facts.blocking_if_param = static_cast<int>(b->AsInt(-1));
      }
      if (const Json* errs = f.Find("errcodes")) {
        for (const Json& e : errs->array()) {
          facts.errcodes.push_back(e.AsInt());
        }
      }
      if (const Json* fs = f.Find("frame_size")) {
        facts.frame_size = fs->AsInt();
      }
      if (const Json* m = f.Find("module")) {
        facts.module = m->AsString();
      }
      db.funcs_[name] = std::move(facts);
    }
  }
  if (const Json* records = j.Find("records")) {
    for (const auto& [name, r] : records->object()) {
      RecordFacts facts;
      facts.name = name;
      if (const Json* s = r.Find("size")) {
        facts.size = s->AsInt();
      }
      if (const Json* offs = r.Find("ptr_offsets")) {
        for (const Json& o : offs->array()) {
          facts.ptr_offsets.push_back(o.AsInt());
        }
      }
      if (const Json* m = r.Find("module")) {
        facts.module = m->AsString();
      }
      db.records_[name] = std::move(facts);
    }
  }
  if (const Json* rows = j.Find("summaries")) {
    for (const Json& row : rows->array()) {
      FuncSummary s;
      std::string err;
      if (FuncSummary::FromJson(row, &s, &err)) {
        db.AddSummary(std::move(s));
      } else if (errors != nullptr) {
        errors->push_back(err);
      }
    }
  }
  if (const Json* fs = j.Find("findings")) {
    for (const Json& f : fs->array()) {
      db.findings_.push_back(Finding::FromJson(f));
    }
  }
  return db;
}

int AnnoDb::Merge(const AnnoDb& other) {
  int added = 0;
  for (const auto& [name, facts] : other.funcs_) {
    auto [it, inserted] = funcs_.emplace(name, facts);
    if (inserted) {
      ++added;
    } else {
      // Conservative union of behavioural facts.
      it->second.blocking = it->second.blocking || facts.blocking;
      it->second.may_block = it->second.may_block || facts.may_block;
      it->second.noblock = it->second.noblock || facts.noblock;
      if (it->second.errcodes.empty()) {
        it->second.errcodes = facts.errcodes;
      }
      if (it->second.param_annots.empty()) {
        it->second.param_annots = facts.param_annots;
      }
    }
  }
  for (const auto& [name, facts] : other.records_) {
    if (records_.emplace(name, facts).second) {
      ++added;
    }
  }
  // Summary rows replace on their (module, function) key: a re-imported
  // export overwrites byte-identical rows with themselves (idempotent), and
  // a newer export of the same module wins outright.
  for (const auto& [key, row] : other.summaries_) {
    auto [it, inserted] = summaries_.insert_or_assign(key, row);
    (void)it;
    if (inserted) {
      ++added;
    }
  }
  if (!other.findings_.empty()) {
    // Dedup keyed on (module, tool, loc, message) — the repository policy
    // from the ROADMAP plus per-module provenance, so RetractModule can
    // remove exactly one module's contribution. Known consequence:
    // location-free findings with identical messages *within one module*
    // (e.g. two stackcheck overruns quoting the same byte count) coalesce
    // into one record even when their witness chains differ; the repository
    // keeps the first witness it saw.
    using FindingKey =
        std::tuple<std::string, std::string, int32_t, int32_t, int32_t, std::string>;
    std::set<FindingKey> seen;
    for (const Finding& f : findings_) {
      seen.insert({f.module, f.tool, f.loc.file, f.loc.line, f.loc.col, f.message});
    }
    for (const Finding& f : other.findings_) {
      if (seen.insert({f.module, f.tool, f.loc.file, f.loc.line, f.loc.col, f.message})
              .second) {
        findings_.push_back(f);
      }
    }
    // Imported findings carry file ids from a *foreign* compilation;
    // rendering them through this db's SourceManager would mislabel every
    // location. Fall back to raw triples for the whole merged set.
    findings_sm_ = nullptr;
  }
  return added;
}

int AnnoDb::RetractModule(const std::string& module) {
  size_t before = findings_.size();
  findings_.erase(std::remove_if(findings_.begin(), findings_.end(),
                                 [&module](const Finding& f) { return f.module == module; }),
                  findings_.end());
  int retracted = static_cast<int>(before - findings_.size());
  // Attribute and summary entries carry the same provenance — a retracted
  // module must not leave stale facts behind (they would keep seeding
  // imports after the module left the corpus).
  for (auto it = funcs_.begin(); it != funcs_.end();) {
    if (it->second.module == module) {
      it = funcs_.erase(it);
      ++retracted;
    } else {
      ++it;
    }
  }
  for (auto it = records_.begin(); it != records_.end();) {
    if (it->second.module == module) {
      it = records_.erase(it);
      ++retracted;
    } else {
      ++it;
    }
  }
  for (auto it = summaries_.begin(); it != summaries_.end();) {
    if (it->first.first == module) {
      it = summaries_.erase(it);
      ++retracted;
    } else {
      ++it;
    }
  }
  return retracted;
}

int AnnoDb::ApplyAttributes(Program* prog) const {
  int updated = 0;
  for (FuncDecl* fn : prog->funcs) {
    auto it = funcs_.find(fn->name);
    if (it == funcs_.end()) {
      continue;
    }
    bool changed = false;
    if (it->second.blocking && !fn->attrs.blocking) {
      fn->attrs.blocking = true;
      changed = true;
    }
    if (it->second.noblock && !fn->attrs.noblock) {
      fn->attrs.noblock = true;
      changed = true;
    }
    if (!it->second.errcodes.empty() && fn->attrs.errcodes.empty()) {
      fn->attrs.errcodes = it->second.errcodes;
      changed = true;
    }
    if (it->second.blocking_if_param >= 0 && fn->attrs.blocking_if_param < 0) {
      fn->attrs.blocking_if_param = it->second.blocking_if_param;
      changed = true;
    }
    if (changed) {
      ++updated;
    }
  }
  return updated;
}

void AnnoDb::AddSummary(FuncSummary row) {
  std::pair<std::string, std::string> key{row.module, row.function};
  summaries_.insert_or_assign(std::move(key), std::move(row));
}

FuncSummary* AnnoDb::FindSummary(const std::string& module, const std::string& function) {
  auto it = summaries_.find({module, function});
  return it == summaries_.end() ? nullptr : &it->second;
}

void AnnoDb::StampModule(const std::string& module) {
  for (auto& [name, facts] : funcs_) {
    if (facts.module.empty()) {
      facts.module = module;
    }
  }
  for (auto& [name, facts] : records_) {
    if (facts.module.empty()) {
      facts.module = module;
    }
  }
}

int AnnoDb::ApplyAttributes(Program* prog, const ImportOptions& opts) const {
  // The canonical signature records every row this import *read*, so a
  // session comparing signatures across rounds sees exactly the changes
  // that could alter this module's analysis.
  std::string sig;
  auto note = [&opts, &sig](const FuncSummary& row) {
    if (opts.out_signature != nullptr) {
      sig += row.Canonical();
      sig += '\n';
    }
  };

  // Per-function view of the table: one pass over the rows, then O(lookup)
  // per program function — the table is scanned per module per link round,
  // so a corpus-sized inner loop per function would go quadratic. Vectors
  // keep the sorted-by-module row order, so first-definer-match stays
  // deterministic.
  std::map<std::string, std::vector<const FuncSummary*>> rows_by_func;
  for (const auto& [key, row] : summaries_) {
    rows_by_func[key.second].push_back(&row);
  }
  static const std::vector<const FuncSummary*> kNoRows;

  int updated = 0;
  for (FuncDecl* fn : prog->funcs) {
    if (fn->func_id < 0 || fn->is_builtin) {
      continue;
    }
    auto rows_it = rows_by_func.find(fn->name);
    const std::vector<const FuncSummary*>& fn_rows =
        rows_it == rows_by_func.end() ? kNoRows : rows_it->second;
    bool changed = false;
    if (fn->body == nullptr) {
      // Extern declaration: adopt the defining module's bottom-up summary.
      // Rows are in sorted-module order; at most one definer row per
      // function exists in a well-formed corpus (duplicate definitions are a
      // link error the session reports), so first-match is deterministic.
      for (const FuncSummary* row_ptr : fn_rows) {
        const FuncSummary& row = *row_ptr;
        if (!row.defined || row.module == opts.importer) {
          continue;
        }
        note(row);
        if ((row.may_block || row.blocking) && !fn->attrs.blocking) {
          fn->attrs.blocking = true;
          changed = true;
        }
        if (!row.block_witness.empty() && fn->attrs.block_witness.empty()) {
          fn->attrs.block_witness = row.block_witness;
          changed = true;
        }
        if (row.noblock && !fn->attrs.noblock) {
          fn->attrs.noblock = true;
          changed = true;
        }
        if (row.blocking_if_param >= 0 && fn->attrs.blocking_if_param < 0) {
          fn->attrs.blocking_if_param = row.blocking_if_param;
          changed = true;
        }
        if (row.returns_error && !fn->attrs.returns_error) {
          fn->attrs.returns_error = true;
          changed = true;
        }
        if (!row.errcodes.empty() && fn->attrs.errcodes.empty()) {
          fn->attrs.errcodes = row.errcodes;
          changed = true;
        }
        if (row.stack_below >= 0 && fn->attrs.stack_below < 0) {
          fn->attrs.stack_below = row.stack_below;
          changed = true;
        }
        if (opts.out_seeds != nullptr && !row.returns_points.empty()) {
          (*opts.out_seeds)[{fn->name, -1}].insert(row.returns_points.begin(),
                                                   row.returns_points.end());
        }
        break;
      }
    } else {
      // Defined function: adopt the top-down usage facts other modules
      // observed about it, plus the link stage's corpus-level stack facts
      // (stored on this module's own definer row).
      for (const FuncSummary* row_ptr : fn_rows) {
        const FuncSummary& row = *row_ptr;
        if (row.defined) {
          if (row.module == opts.importer) {
            if (row.cross_recursive && !fn->attrs.cross_recursive) {
              fn->attrs.cross_recursive = true;
              changed = true;
            }
            if (row.cross_recursive && row.stack_below >= 0 && fn->attrs.stack_below < 0) {
              fn->attrs.stack_below = row.stack_below;
              changed = true;
            }
            if (row.cross_recursive) {
              note(row);
            }
          }
          continue;
        }
        if (row.module == opts.importer) {
          continue;
        }
        note(row);
        if (row.entered_atomic && !fn->attrs.noblock && !fn->attrs.entered_atomic) {
          fn->attrs.entered_atomic = true;
          changed = true;
        }
        if (row.entered_in_irq && !fn->attrs.entered_in_irq) {
          fn->attrs.entered_in_irq = true;
          changed = true;
        }
        if (opts.out_seeds != nullptr) {
          for (const auto& [idx, names] : row.param_points) {
            (*opts.out_seeds)[{fn->name, idx}].insert(names.begin(), names.end());
          }
        }
      }
    }
    if (changed) {
      ++updated;
    }
  }
  if (opts.out_signature != nullptr) {
    *opts.out_signature = std::move(sig);
  }
  return updated;
}

}  // namespace ivy
