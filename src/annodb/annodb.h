// The collaborative annotation repository (§3.2).
//
// "We propose the creation of a collaborative database of source code
// information that would allow different researchers and tools to share and
// reuse information about publicly available source code such as the Linux
// kernel. For example, this database could provide pointer alias information
// and bounds information for function arguments and global variables ... We
// can also store information about blocking functions, error codes, and so
// on."
//
// AnnoDb serializes per-function and per-record facts to JSON: parameter
// bounds annotations, blocking/noblock attributes, error codes, inferred
// may-block sets, frame sizes and pointer layouts. Databases can be
// exported from an analyzed program, merged (collaboration), and applied to
// an *unannotated* module as attribute defaults (incremental porting).
#ifndef SRC_ANNODB_ANNODB_H_
#define SRC_ANNODB_ANNODB_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/blockstop/blockstop.h"
#include "src/ir/ir.h"
#include "src/mc/ast.h"
#include "src/support/json.h"
#include "src/tool/finding.h"

namespace ivy {

class AnalysisContext;
struct PipelineResult;

struct FuncFacts {
  std::string name;
  std::vector<std::string> param_annots;  // rendered types, e.g. "char* count(n)"
  bool blocking = false;
  bool noblock = false;
  bool may_block = false;  // inferred by BlockStop
  int blocking_if_param = -1;
  std::vector<int64_t> errcodes;
  int64_t frame_size = 0;
};

struct RecordFacts {
  std::string name;
  int64_t size = 0;
  std::vector<int64_t> ptr_offsets;  // CCount layout
};

class AnnoDb {
 public:
  // Extracts a database from a compiled program (plus optional BlockStop
  // results for the inferred may-block facts).
  static AnnoDb Extract(const Program& prog, const Sema& sema, const IrModule& module,
                        const BlockStopReport* blockstop = nullptr);

  // Pipeline-native extraction: pulls the may-block facts from the
  // pipeline's blockstop result (when that pass ran) and attaches the
  // merged unified findings, so one exported JSON carries both the facts
  // and what the tools concluded from them (§3.2's shared repository).
  static AnnoDb Extract(AnalysisContext& ctx, const PipelineResult* pipeline);

  // Serialization round trip.
  Json ToJson() const;
  static AnnoDb FromJson(const Json& j);

  // Merge: facts from `other` fill gaps in this database; conflicting
  // boolean facts are OR-ed (conservative for blocking). Findings are
  // deduplicated on (module, tool, loc, message) — per-module provenance
  // keeps identical findings from different modules distinct, and
  // re-merging the same export stays idempotent. Returns number of new
  // entries added.
  int Merge(const AnnoDb& other);

  // Drops every finding stamped with `module` (see Finding::module) so a
  // session can retract a re-analyzed module's stale findings before merging
  // its fresh ones. Returns the number retracted.
  int RetractModule(const std::string& module);

  // Applies stored blocking/errcode attributes to functions of `prog` that
  // lack them (incremental porting of unannotated modules). Returns the
  // number of functions updated.
  int ApplyAttributes(Program* prog) const;

  const std::map<std::string, FuncFacts>& funcs() const { return funcs_; }
  const std::map<std::string, RecordFacts>& records() const { return records_; }

  // Unified tool findings carried alongside the facts (serialized under the
  // "findings" key; survives the JSON round trip and Merge). The optional
  // SourceManager (not owned; must outlive ToJson calls) lets the export
  // render human-readable "at" locations — raw file ids are private to the
  // exporting compilation and meaningless to a repository consumer.
  void SetFindings(std::vector<Finding> findings, const SourceManager* sm = nullptr) {
    findings_ = std::move(findings);
    findings_sm_ = sm;
  }
  const std::vector<Finding>& findings() const { return findings_; }

 private:
  std::map<std::string, FuncFacts> funcs_;
  std::map<std::string, RecordFacts> records_;
  std::vector<Finding> findings_;
  const SourceManager* findings_sm_ = nullptr;
};

}  // namespace ivy

#endif  // SRC_ANNODB_ANNODB_H_
