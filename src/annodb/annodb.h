// The collaborative annotation repository (§3.2).
//
// "We propose the creation of a collaborative database of source code
// information that would allow different researchers and tools to share and
// reuse information about publicly available source code such as the Linux
// kernel. For example, this database could provide pointer alias information
// and bounds information for function arguments and global variables ... We
// can also store information about blocking functions, error codes, and so
// on."
//
// AnnoDb serializes per-function and per-record facts to JSON: parameter
// bounds annotations, blocking/noblock attributes, error codes, inferred
// may-block sets, frame sizes and pointer layouts. Databases can be
// exported from an analyzed program, merged (collaboration), and applied to
// an *unannotated* module as attribute defaults (incremental porting).
#ifndef SRC_ANNODB_ANNODB_H_
#define SRC_ANNODB_ANNODB_H_

#include <map>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/blockstop/blockstop.h"
#include "src/ir/ir.h"
#include "src/mc/ast.h"
#include "src/support/json.h"
#include "src/tool/finding.h"

namespace ivy {

class AnalysisContext;
struct PipelineResult;

struct FuncFacts {
  std::string name;
  std::vector<std::string> param_annots;  // rendered types, e.g. "char* count(n)"
  bool blocking = false;
  bool noblock = false;
  bool may_block = false;  // inferred by BlockStop
  int blocking_if_param = -1;
  std::vector<int64_t> errcodes;
  int64_t frame_size = 0;
  // Provenance: the corpus module that first contributed this entry (empty
  // for single-program exports). RetractModule drops stamped entries.
  std::string module;
};

struct RecordFacts {
  std::string name;
  int64_t size = 0;
  std::vector<int64_t> ptr_offsets;  // CCount layout
  std::string module;  // provenance, as in FuncFacts
};

// One function's cross-module summary — the link-stage fact table, keyed by
// (module, function). A row is either a *definer* row (defined == true:
// bottom-up facts the defining module proved about its own function) or a
// *usage* row (defined == false: top-down facts a calling module observed
// about an extern-declared function). AnalysisSession::RunLinked exports
// these after every analysis round and re-imports them into dependent
// modules until the table stops changing.
struct FuncSummary {
  std::string module;    // exporting module
  std::string function;
  bool defined = false;

  // Definer-row facts (bottom-up).
  bool may_block = false;
  std::string block_witness;     // definer's witness chain root
  bool blocking = false;         // source annotations, re-exported
  bool noblock = false;
  int blocking_if_param = -1;
  bool returns_error = false;    // errcheck classification (annotated or inferred)
  std::vector<int64_t> errcodes;
  int64_t frame_size = 0;
  std::vector<std::string> callees;        // resolved Mini-C callees (sorted, unique)
  std::vector<std::string> returns_points; // fn names the return value may point to
  std::vector<std::string> locks_acquired; // lock-delta facts (sorted)
  // Corpus-level stack facts: filled onto definer rows by the session's
  // link stage (they need the whole corpus condensation, not one module).
  int64_t stack_below = -1;
  bool cross_recursive = false;

  // Usage-row facts (top-down, about an extern-declared function).
  bool entered_atomic = false;
  bool entered_in_irq = false;
  std::map<int, std::vector<std::string>> param_points;  // param idx -> fn names

  Json ToJson() const;
  static FuncSummary FromJson(const Json& j);
  // Strict variant: returns false (with a diagnostic in *error) for
  // malformed rows — e.g. a param_points key that is not a canonical
  // in-range decimal index — instead of silently aliasing garbage onto
  // parameter 0. On failure *out holds the fields parsed so far; callers
  // must discard it.
  static bool FromJson(const Json& j, FuncSummary* out, std::string* error);
  // Canonical byte form — what the link fixpoint diffs and import
  // signatures hash. Json objects are sorted maps, so this is stable.
  std::string Canonical() const { return ToJson().Dump(-1); }
};

class AnnoDb {
 public:
  // Extracts a database from a compiled program (plus optional BlockStop
  // results for the inferred may-block facts).
  static AnnoDb Extract(const Program& prog, const Sema& sema, const IrModule& module,
                        const BlockStopReport* blockstop = nullptr);

  // Pipeline-native extraction: pulls the may-block facts from the
  // pipeline's blockstop result (when that pass ran) and attaches the
  // merged unified findings, so one exported JSON carries both the facts
  // and what the tools concluded from them (§3.2's shared repository).
  static AnnoDb Extract(AnalysisContext& ctx, const PipelineResult* pipeline);

  // Serialization round trip. Malformed summary rows are rejected (not
  // loaded); pass `errors` to collect one diagnostic per rejected row.
  Json ToJson() const;
  static AnnoDb FromJson(const Json& j, std::vector<std::string>* errors = nullptr);

  // Merge: facts from `other` fill gaps in this database; conflicting
  // boolean facts are OR-ed (conservative for blocking). Findings are
  // deduplicated on (module, tool, loc, message) — per-module provenance
  // keeps identical findings from different modules distinct, and
  // re-merging the same export stays idempotent. Summary rows replace on
  // their (module, function) key, so re-importing a module's summaries is
  // idempotent too. Returns number of new entries added.
  int Merge(const AnnoDb& other);

  // Drops every finding, summary row, and stamped fact entry from `module`
  // (see Finding::module / FuncFacts::module) so a session can retract a
  // re-analyzed module's stale records before merging its fresh ones.
  // Returns the number retracted.
  int RetractModule(const std::string& module);

  // Applies stored blocking/errcode attributes to functions of `prog` that
  // lack them (incremental porting of unannotated modules). Returns the
  // number of functions updated.
  int ApplyAttributes(Program* prog) const;

  // The cross-module import path (AnalysisSession's link stage). Seeds
  // extern-declared functions of `prog` with definer-row summaries from
  // other modules (may-block + witness, noblock, blocking_if, errcodes,
  // error-return bit, corpus stack depth) and defined functions with
  // usage-row facts other modules observed about them (atomic entry,
  // irq-reachability, cross-recursion). Rows exported by `importer` itself
  // are skipped — a module never imports its own facts, except the
  // link-stage stack facts stored on its definer rows.
  struct ImportOptions {
    std::string importer;
    // Optional out-params: the points-to seeds implied by the summary table
    // (returns_points of extern callees, param_points of own functions) and
    // a canonical signature of everything applied, so a session can detect
    // "imports changed" without re-running an analysis.
    PointsToLinkSeeds* out_seeds = nullptr;
    std::string* out_signature = nullptr;
  };
  int ApplyAttributes(Program* prog, const ImportOptions& opts) const;

  // The summary fact table, keyed by (module, function). AddSummary
  // replaces any existing row with the same key.
  void AddSummary(FuncSummary row);
  const std::map<std::pair<std::string, std::string>, FuncSummary>& summaries() const {
    return summaries_;
  }
  FuncSummary* FindSummary(const std::string& module, const std::string& function);

  const std::map<std::string, FuncFacts>& funcs() const { return funcs_; }
  const std::map<std::string, RecordFacts>& records() const { return records_; }

  // Stamps module provenance onto every (unstamped) fact entry — what a
  // session does per module before merging the corpus view.
  void StampModule(const std::string& module);

  // Unified tool findings carried alongside the facts (serialized under the
  // "findings" key; survives the JSON round trip and Merge). The optional
  // SourceManager (not owned; must outlive ToJson calls) lets the export
  // render human-readable "at" locations — raw file ids are private to the
  // exporting compilation and meaningless to a repository consumer.
  void SetFindings(std::vector<Finding> findings, const SourceManager* sm = nullptr) {
    findings_ = std::move(findings);
    findings_sm_ = sm;
  }
  const std::vector<Finding>& findings() const { return findings_; }

 private:
  std::map<std::string, FuncFacts> funcs_;
  std::map<std::string, RecordFacts> records_;
  std::map<std::pair<std::string, std::string>, FuncSummary> summaries_;
  std::vector<Finding> findings_;
  const SourceManager* findings_sm_ = nullptr;
};

}  // namespace ivy

#endif  // SRC_ANNODB_ANNODB_H_
