// BlockStop (§2.3): a sound whole-program analysis enforcing that the kernel
// never calls a function that may block while interrupts are disabled (or
// while holding a spinlock, or inside an interrupt handler).
//
// Pipeline:
//   1. MAYBLOCK: seed with `blocking` builtins/annotations (plus
//      `blocking_if(flags)` allocators, blocking iff GFP_WAIT may be set at
//      the call site) and propagate backwards over the call graph, through
//      indirect calls resolved by the points-to analysis.
//   2. Atomic contexts: an intraprocedural IRQ/spinlock state walk per
//      function, run under both possible entry states, plus an
//      interprocedural fixpoint over (function, entry-state) contexts seeded
//      by interrupt handlers and trigger_irq targets.
//   3. Violations: an atomic call site whose callee set intersects MAYBLOCK.
//      Candidates annotated `noblock` (they begin with the paper's
//      assert_nonatomic() run-time check) are filtered out; sites whose
//      report disappears purely due to that filter are the "false positives
//      silenced by run-time checks" of the paper (15 in their kernel).
//
// Two execution strategies produce byte-identical reports:
//   - Run(): the serial reference — Gauss-Seidel rescan rounds over every
//     defined function.
//   - Run(sharder, wq): the sharded kernels — may-block propagates along a
//     caller worklist (CallGraph::CallersOf) in parallel Jacobi rounds, and
//     the context fixpoint becomes a parallel BFS that evaluates each
//     (function, entry-state) pair exactly once. Both fixpoints are
//     monotone, so they converge to the same sets as the serial loop;
//     witnesses are assigned from the *final* may-block set and every
//     violation list is sorted by a total order, so the bytes match too.
#ifndef SRC_BLOCKSTOP_BLOCKSTOP_H_
#define SRC_BLOCKSTOP_BLOCKSTOP_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/callgraph.h"
#include "src/mc/ast.h"
#include "src/tool/finding.h"

namespace ivy {

class FunctionSharder;
class WorkQueue;

struct BlockingViolation {
  SourceLoc loc;
  std::string caller;
  std::string callee;   // the may-block function reached at the site
  std::string witness;  // why the callee may block (chain root)
  bool via_indirect = false;
};

struct BlockStopReport {
  std::vector<BlockingViolation> violations;  // survive noblock filtering
  std::vector<BlockingViolation> silenced;    // removed by run-time checks
  std::set<std::string> mayblock;             // names of may-block functions
  int num_defined_funcs = 0;
  int64_t callgraph_edges = 0;
  int64_t indirect_sites = 0;
  int64_t indirect_target_total = 0;
  int runtime_checks = 0;  // functions carrying assert_nonatomic (noblock)
  int context_rounds = 0;  // fixpoint rounds the strategy needed
  // Functions the may-block fixpoint actually (re-)evaluated. A seeded
  // incremental run evaluates only the affected call-graph region, so this
  // is the solver counter the session's dirty-region tests assert on.
  // Strategy- and seed-dependent observability; findings never depend on it.
  int64_t mayblock_evals = 0;
  // Link-stage exports (AnalysisSession::RunLinked). `mayblock_witness` is
  // the per-function witness under the final may-block set — what an
  // importer renders for violations that resolve into this module.
  // `extern_entry_bits` are the context bits observed at calls into
  // extern-declared (defined-elsewhere) functions: bit 1 = may be entered in
  // process context with irqs on, bit 2 = may be entered atomically — the
  // top-down half of the summary exchange. Both are strategy-independent.
  std::map<std::string, std::string> mayblock_witness;
  std::map<std::string, uint8_t> extern_entry_bits;

  std::string ToString() const;

  // The unified-pipeline view: violations become errors, silenced false
  // positives become notes; the witness chain is caller -> callee -> root.
  std::vector<Finding> ToFindings() const;
};

class BlockStop {
 public:
  BlockStop(const Program* prog, const Sema* sema, const CallGraph* cg);

  // Serial reference implementation.
  BlockStopReport Run();

  // Sharded kernels over `sharder` (which must partition this call graph's
  // DefinedFuncs()) driven by `wq`. Byte-identical findings to Run().
  BlockStopReport Run(const FunctionSharder& sharder, WorkQueue& wq);

  // Incremental may-block memoization (AnalysisSession). `clean` holds the
  // defined-function names with no call path into the edited region;
  // `prev_mayblock` the previous run's may-block names. Clean functions
  // adopt their previous bit and the propagation fixpoint evaluates only the
  // affected region. Exact, not heuristic: a clean function's reachable
  // callee subtree is unchanged (bodies, attributes and resolved callee
  // lists), so its may-block bit cannot have changed. Both pointers must
  // outlive Run(); pass nullptrs to return to the cold fixpoint.
  void SeedMayBlock(const std::set<std::string>* clean,
                    const std::set<std::string>* prev_mayblock);

  // True if `fn` may (transitively) block. Valid after Run().
  bool MayBlock(const FuncDecl* fn) const { return mayblock_.count(fn) != 0; }

 private:
  struct IrqState {
    uint8_t irq = 1;  // bit 1 = may-be-enabled, bit 2 = may-be-disabled
    int spin = 0;     // spinlocks held (max over joined paths)
    bool Atomic() const { return (irq & 2) != 0 || spin > 0; }
    void Join(const IrqState& o) {
      irq |= o.irq;
      spin = spin > o.spin ? spin : o.spin;
    }
  };

  // Everything evaluating one (function, entry-state) pair yields: context
  // bits for Mini-C callees plus the violation candidates at atomic sites.
  // Pure given the frozen may-block set, so serial rounds, sharded rounds
  // and the BFS all agree per pair.
  struct EntryEffects {
    std::vector<std::pair<const FuncDecl*, uint8_t>> callee_bits;
    std::vector<std::pair<const Expr*, BlockingViolation>> reported;
    std::vector<std::pair<const Expr*, BlockingViolation>> silenced;
  };
  EntryEffects EvaluateEntry(const FuncDecl* fn, uint8_t entry_bit) const;

  // True if a call to `callee` with argument exprs `args` may block.
  bool CallMayBlock(const FuncDecl* callee, const ExprList& args,
                    const FuncDecl* caller) const;
  // First blocking cause of `fn` under the current may-block set (site
  // order), or nullptr. The shared predicate behind both propagation loops.
  const FuncDecl* BlockingCauseOf(const FuncDecl* fn) const;
  // The witness string for one may-block function under the *final* set —
  // the single definition both the serial and sharded witness passes use,
  // so wording changes cannot split the byte-identical contract.
  std::string WitnessOf(const FuncDecl* fn) const;
  void ComputeMayBlock();                                              // serial
  void ComputeMayBlockSharded(const FunctionSharder& s, WorkQueue& wq);  // worklist
  // Witnesses derived from the *final* may-block set: first cause in site
  // order. Strategy-independent by construction.
  void AssignWitnesses();
  BlockStopReport ReportShell() const;
  void FinishReport(BlockStopReport* report,
                    std::map<const Expr*, BlockingViolation> reported,
                    std::map<const Expr*, BlockingViolation> silenced) const;
  const CallSite* SiteFor(const Expr* e) const;
  void WalkExpr(const FuncDecl* fn, const Expr* e, IrqState* st, uint8_t entry_irq,
                std::vector<std::pair<const Expr*, IrqState>>* out) const;
  void WalkStmt(const FuncDecl* fn, const Stmt* s, IrqState* st, uint8_t entry_irq,
                std::vector<std::pair<const Expr*, IrqState>>* out) const;
  std::string WitnessFor(const FuncDecl* fn) const;

  // True if `fn`'s may-block bit is frozen by the incremental seed.
  bool SeededClean(const FuncDecl* fn) const {
    return seed_clean_ != nullptr && seed_clean_->count(fn->name) != 0;
  }

  const Program* prog_;
  const Sema* sema_;
  const CallGraph* cg_;
  const std::set<std::string>* seed_clean_ = nullptr;
  const std::set<std::string>* seed_prev_mayblock_ = nullptr;
  int64_t mayblock_evals_ = 0;
  std::set<const FuncDecl*> mayblock_;
  std::map<const FuncDecl*, std::string> witness_;
  std::map<const Expr*, const CallSite*> site_index_;
};

}  // namespace ivy

#endif  // SRC_BLOCKSTOP_BLOCKSTOP_H_
